package safehome

import (
	"safehome/internal/device"
	"safehome/internal/kasa"
)

// KasaDriver drives TP-Link Kasa-style smart plugs (HS100/HS105/HS110 and the
// bundled emulator) over TCP and implements Actuator.
type KasaDriver = kasa.Driver

// KasaEmulator serves a fleet of virtual Kasa smart plugs over TCP, so a
// LiveHome (or the safehome-hub binary) can be exercised end to end without
// physical hardware.
type KasaEmulator = kasa.Emulator

// NewKasaDriver builds a driver from a device → "host:port" address map: one
// address per physical plug, or the same address for every device when
// talking to an emulator.
func NewKasaDriver(addrs map[DeviceID]string) *KasaDriver {
	return kasa.NewDriver(addrs)
}

// NewKasaEmulatorDriver maps every listed device to a single emulator address.
func NewKasaEmulatorDriver(addr string, ids []DeviceID) *KasaDriver {
	return kasa.NewSingleEndpointDriver(addr, ids)
}

// NewKasaEmulator builds an emulator that exposes the given devices over the
// Kasa protocol, backed by an in-memory fleet (returned by its Fleet method)
// that supports failure injection. Call Start("127.0.0.1:0") to serve.
func NewKasaEmulator(devices ...DeviceInfo) *KasaEmulator {
	return kasa.NewEmulator(device.NewFleet(device.NewRegistry(devices...)))
}

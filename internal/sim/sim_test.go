package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunOrdersByTimestamp(t *testing.T) {
	s := NewAtEpoch()
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	n := s.Run()
	if n != 3 {
		t.Fatalf("expected 3 events, got %d", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := s.Elapsed(Epoch); got != 30*time.Millisecond {
		t.Fatalf("clock at %v, want 30ms", got)
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	s := NewAtEpoch()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-instant events not FIFO: %v", order)
	}
}

func TestCallbackSchedulesMore(t *testing.T) {
	s := NewAtEpoch()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Minute, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("expected 5 ticks, got %d", count)
	}
	if got := s.Elapsed(Epoch); got != 4*time.Minute {
		t.Fatalf("clock advanced %v, want 4m", got)
	}
}

func TestCancel(t *testing.T) {
	s := NewAtEpoch()
	ran := false
	cancel := s.After(time.Second, func() { ran = true })
	cancel()
	s.Run()
	if ran {
		t.Fatal("canceled event still ran")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after run", s.Pending())
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewAtEpoch()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.After(d, func() { fired = append(fired, d) })
	}
	n := s.RunUntil(Epoch.Add(2 * time.Second))
	if n != 2 || len(fired) != 2 {
		t.Fatalf("expected 2 events before horizon, got %d", n)
	}
	if s.Pending() != 1 {
		t.Fatalf("expected 1 pending event, got %d", s.Pending())
	}
	n = s.Run()
	if n != 1 {
		t.Fatalf("expected remaining event to run, got %d", n)
	}
}

func TestNegativeAndPastSchedules(t *testing.T) {
	s := NewAtEpoch()
	ran := 0
	s.After(-time.Hour, func() { ran++ })
	s.At(Epoch.Add(-time.Hour), func() { ran++ })
	s.Run()
	if ran != 2 {
		t.Fatalf("past-scheduled events should run immediately, ran=%d", ran)
	}
	if !s.Now().Equal(Epoch) {
		t.Fatalf("clock should not go backwards, now=%v", s.Now())
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil callback")
		}
	}()
	NewAtEpoch().After(time.Second, nil)
}

func TestReentrantRunPanics(t *testing.T) {
	s := NewAtEpoch()
	panicked := false
	s.After(0, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		s.Run()
	})
	s.Run()
	if !panicked {
		t.Fatal("expected re-entrant Run to panic")
	}
}

func TestAdvance(t *testing.T) {
	s := NewAtEpoch()
	s.Advance(time.Hour)
	if got := s.Elapsed(Epoch); got != time.Hour {
		t.Fatalf("Advance moved clock by %v", got)
	}
	s.After(time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected Advance over a pending event to panic")
		}
	}()
	s.Advance(time.Minute)
}

func TestProcessedCount(t *testing.T) {
	s := NewAtEpoch()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed())
	}
}

// Property: for random sets of delays, Run executes exactly len(delays)
// events, in non-decreasing timestamp order, and leaves the clock at the
// max delay.
func TestRunOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewAtEpoch()
		var seen []time.Duration
		var max time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			if d > max {
				max = d
			}
			s.After(d, func() { seen = append(seen, d) })
		}
		n := s.Run()
		if n != len(raw) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		if len(raw) > 0 && s.Elapsed(Epoch) != max {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNextEventAt(t *testing.T) {
	s := NewAtEpoch()
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("NextEventAt on an empty queue reported an event")
	}
	cancelNear := s.After(5*time.Millisecond, func() {})
	s.After(20*time.Millisecond, func() {})
	if at, ok := s.NextEventAt(); !ok || !at.Equal(Epoch.Add(5*time.Millisecond)) {
		t.Fatalf("NextEventAt = %v, %v; want epoch+5ms", at, ok)
	}
	// Canceling the head lazily discards it: the next live event surfaces.
	cancelNear()
	if at, ok := s.NextEventAt(); !ok || !at.Equal(Epoch.Add(20*time.Millisecond)) {
		t.Fatalf("NextEventAt after cancel = %v, %v; want epoch+20ms", at, ok)
	}
	s.Run()
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("NextEventAt after Run reported an event")
	}
}

// Package sim implements the discrete-event simulation (DES) timeline that
// SafeHome's workload-driven experiments run on.
//
// The paper evaluates SafeHome "over an emulation" so that long commands
// (e.g. a 40-minute dishwasher cycle) and millions of trials are practical.
// This package provides the virtual clock for that emulation: callbacks are
// scheduled at virtual timestamps and executed in timestamp order by Run.
// All callbacks run on the caller's goroutine, so everything driven by a
// Sim is single-threaded and deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Epoch is the conventional start-of-run instant used by simulations and
// tests. Any time.Time works; using a fixed epoch keeps golden values stable.
var Epoch = time.Date(2021, 4, 26, 8, 0, 0, 0, time.UTC)

// event is a scheduled callback.
type event struct {
	at       time.Time
	seq      uint64 // tie-breaker: FIFO among events at the same instant
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator with a virtual clock.
//
// Sim is not safe for concurrent use: schedule and run from one goroutine
// only (typically the test or harness goroutine).
type Sim struct {
	now       time.Time
	queue     eventHeap
	seq       uint64
	processed int
	running   bool
}

// New returns a simulator whose clock starts at start.
func New(start time.Time) *Sim {
	return &Sim{now: start}
}

// NewAtEpoch returns a simulator starting at the conventional Epoch.
func NewAtEpoch() *Sim { return New(Epoch) }

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Pending reports the number of not-yet-run, not-canceled events.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Processed reports how many events have been executed so far.
func (s *Sim) Processed() int { return s.processed }

// After schedules fn to run d after the current virtual time and returns a
// cancellation function. Negative delays are treated as zero (the event
// fires "now", after already-queued events for this instant).
func (s *Sim) After(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// At schedules fn to run at virtual time t and returns a cancellation
// function. Scheduling in the past is clamped to the current time.
func (s *Sim) At(t time.Time, fn func()) (cancel func()) {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, ev)
	return func() { ev.canceled = true }
}

// NextEventAt reports the timestamp of the earliest pending event, or false
// if the queue is empty. Canceled events at the head of the queue are lazily
// discarded. Like every Sim method it must be called from the owning
// goroutine; publish the result through an atomic if another goroutine (e.g.
// a live-clock pumper) needs it.
func (s *Sim) NextEventAt() (time.Time, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].canceled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at, true
	}
	return time.Time{}, false
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		s.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue drains, and returns
// the number of events processed. Callbacks may schedule further events.
// Run panics if invoked re-entrantly from a callback.
func (s *Sim) Run() int {
	return s.RunUntil(time.Time{})
}

// RunUntil executes events whose timestamp is <= horizon (or all events if
// horizon is the zero time) and returns the number processed. The clock is
// left at the last executed event (it does not jump to the horizon).
func (s *Sim) RunUntil(horizon time.Time) int {
	if s.running {
		panic("sim: Run called re-entrantly from a callback")
	}
	s.running = true
	defer func() { s.running = false }()

	count := 0
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if !horizon.IsZero() && next.at.After(horizon) {
			break
		}
		if !s.Step() {
			break
		}
		count++
	}
	return count
}

// Advance moves the clock forward by d without running events; it panics if
// doing so would skip over pending events (that would violate causality).
// It is mainly useful in tests that want to examine "idle time" behaviour.
func (s *Sim) Advance(d time.Duration) {
	target := s.now.Add(d)
	for _, ev := range s.queue {
		if !ev.canceled && ev.at.Before(target) {
			panic(fmt.Sprintf("sim: Advance(%v) would skip event scheduled at %v", d, ev.at))
		}
	}
	s.now = target
}

// Elapsed returns the virtual time elapsed since start.
func (s *Sim) Elapsed(start time.Time) time.Duration { return s.now.Sub(start) }

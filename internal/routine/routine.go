// Package routine defines SafeHome routines: named sequences of device
// commands, together with the per-command attributes the paper introduces
// (must vs best-effort, long-running duration, optional condition reads), a
// JSON wire representation compatible with the style of Fig 10, and the
// routine bank users store routines in.
package routine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"safehome/internal/device"
)

// ID identifies a submitted routine instance. IDs are assigned by the
// controller at submission time, monotonically increasing, so they double as
// the submission order.
type ID int64

// None is the zero ID, never assigned to a real routine.
const None ID = 0

// Condition is an optional guard on a command: the command only executes if
// the given device is currently in the given state. Conditions are the only
// way a routine reads a device, which matters for the dirty-read restriction
// on post-leases (§4.1).
type Condition struct {
	Device device.ID    `json:"device"`
	Equals device.State `json:"equals"`
}

// Command is one step of a routine: drive Device to Target and hold the
// device exclusively for Duration (zero means a short command whose duration
// is supplied by the controller's default estimate).
type Command struct {
	Device device.ID    `json:"device"`
	Target device.State `json:"target"`
	// Duration is how long the device must be exclusively controlled, e.g.
	// 4 minutes for "make coffee" or 15 minutes for "run sprinklers". Zero
	// means a short command.
	Duration time.Duration `json:"duration,omitempty"`
	// BestEffort marks the command as optional: its failure is reported but
	// does not abort the routine. The default (false) is a "must" command.
	BestEffort bool `json:"best_effort,omitempty"`
	// Condition optionally guards the command (see Condition).
	Condition *Condition `json:"condition,omitempty"`
}

// Must reports whether the command is required for the routine to commit.
func (c Command) Must() bool { return !c.BestEffort }

// Long reports whether the command is long-running relative to the given
// threshold.
func (c Command) Long(threshold time.Duration) bool { return c.Duration >= threshold }

// String renders the command compactly, e.g. "coffee:ON(4m0s)".
func (c Command) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", c.Device, c.Target)
	if c.Duration > 0 {
		fmt.Fprintf(&b, "(%s)", c.Duration)
	}
	if c.BestEffort {
		b.WriteString("[best-effort]")
	}
	return b.String()
}

// Routine is a user- or trigger-initiated sequence of commands. Routines are
// treated as immutable once submitted; all execution state lives in the
// controller.
type Routine struct {
	ID       ID        `json:"id,omitempty"`
	Name     string    `json:"name"`
	Commands []Command `json:"commands"`
	// Submitted is the submission timestamp, stamped by the controller.
	Submitted time.Time `json:"submitted,omitempty"`
	// User optionally records which member of the household initiated it.
	User string `json:"user,omitempty"`

	// devices caches Devices() for cloned instances. Routines are immutable
	// once submitted, and the controllers call Devices() on every scheduling
	// decision, so the submission-time Clone precomputes the set once.
	devices []device.ID
}

// New constructs a routine from commands.
func New(name string, cmds ...Command) *Routine {
	return &Routine{Name: name, Commands: cmds}
}

// Validate checks the routine is well formed against a device registry
// (every command addresses a registered device, has a target, etc.). A nil
// registry skips device existence checks.
func (r *Routine) Validate(reg *device.Registry) error {
	if r == nil {
		return errors.New("routine: nil routine")
	}
	if strings.TrimSpace(r.Name) == "" {
		return errors.New("routine: empty name")
	}
	if len(r.Commands) == 0 {
		return fmt.Errorf("routine %q: no commands", r.Name)
	}
	for i, c := range r.Commands {
		if c.Device == "" {
			return fmt.Errorf("routine %q command %d: empty device", r.Name, i)
		}
		if c.Target == device.StateUnknown {
			return fmt.Errorf("routine %q command %d: empty target state", r.Name, i)
		}
		if c.Duration < 0 {
			return fmt.Errorf("routine %q command %d: negative duration", r.Name, i)
		}
		if reg != nil {
			if _, ok := reg.Get(c.Device); !ok {
				return fmt.Errorf("routine %q command %d: unknown device %q", r.Name, i, c.Device)
			}
			if c.Condition != nil {
				if _, ok := reg.Get(c.Condition.Device); !ok {
					return fmt.Errorf("routine %q command %d: unknown condition device %q", r.Name, i, c.Condition.Device)
				}
			}
		}
	}
	return nil
}

// Devices returns the set of devices the routine touches (writes), in
// first-touch order. For cloned (submitted) routines the set is precomputed;
// callers must treat the result as read-only.
func (r *Routine) Devices() []device.ID {
	if r.devices != nil {
		return r.devices
	}
	return r.computeDevices()
}

func (r *Routine) computeDevices() []device.ID {
	out := make([]device.ID, 0, len(r.Commands))
	for _, c := range r.Commands {
		seen := false
		for _, d := range out {
			if d == c.Device {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, c.Device)
		}
	}
	return out
}

// ReadDevices returns the set of devices the routine reads via conditions,
// in first-read order.
func (r *Routine) ReadDevices() []device.ID {
	seen := make(map[device.ID]bool)
	var out []device.ID
	for _, c := range r.Commands {
		if c.Condition != nil && !seen[c.Condition.Device] {
			seen[c.Condition.Device] = true
			out = append(out, c.Condition.Device)
		}
	}
	return out
}

// Touches reports whether the routine writes the given device.
func (r *Routine) Touches(id device.ID) bool {
	for _, c := range r.Commands {
		if c.Device == id {
			return true
		}
	}
	return false
}

// FirstIndexOn returns the index of the routine's first command on the
// device, or -1.
func (r *Routine) FirstIndexOn(id device.ID) int {
	for i, c := range r.Commands {
		if c.Device == id {
			return i
		}
	}
	return -1
}

// LastIndexOn returns the index of the routine's last command on the device,
// or -1.
func (r *Routine) LastIndexOn(id device.ID) int {
	last := -1
	for i, c := range r.Commands {
		if c.Device == id {
			last = i
		}
	}
	return last
}

// LastWriteTo returns the final state the routine drives the device to, and
// whether the routine writes the device at all. This is what determines the
// device's end state if the routine is the last one serialized on it.
func (r *Routine) LastWriteTo(id device.ID) (device.State, bool) {
	idx := r.LastIndexOn(id)
	if idx < 0 {
		return device.StateUnknown, false
	}
	return r.Commands[idx].Target, true
}

// IdealDuration is the minimum time to run the routine with no lock waits:
// the sum of command durations, substituting defaultShort for zero-duration
// commands. It is the denominator of the stretch-factor metric (Fig 15c).
func (r *Routine) IdealDuration(defaultShort time.Duration) time.Duration {
	var total time.Duration
	for _, c := range r.Commands {
		d := c.Duration
		if d <= 0 {
			d = defaultShort
		}
		total += d
	}
	return total
}

// HoldEstimate returns the estimated time the routine exclusively holds the
// given device: the sum of durations of its commands on that device
// (defaultShort for short commands). Used for lease revocation timeouts.
func (r *Routine) HoldEstimate(id device.ID, defaultShort time.Duration) time.Duration {
	var total time.Duration
	for _, c := range r.Commands {
		if c.Device != id {
			continue
		}
		d := c.Duration
		if d <= 0 {
			d = defaultShort
		}
		total += d
	}
	return total
}

// SpanEstimate returns the estimated time between the routine's first and
// last actions on the device: the sum of effective durations of all commands
// from the first to the last command on that device (inclusive), substituting
// defaultShort for zero-duration commands. It is the basis of the lease
// revocation timeout (§4.1): a routine leased a lock is expected to be done
// with the device within this span (times a leniency factor).
func (r *Routine) SpanEstimate(id device.ID, defaultShort time.Duration) time.Duration {
	first, last := r.FirstIndexOn(id), r.LastIndexOn(id)
	if first < 0 {
		return 0
	}
	var total time.Duration
	for i := first; i <= last; i++ {
		d := r.Commands[i].Duration
		if d <= 0 {
			d = defaultShort
		}
		total += d
	}
	return total
}

// IsLong reports whether the routine contains at least one command with
// duration >= threshold (the paper's definition of a long routine).
func (r *Routine) IsLong(threshold time.Duration) bool {
	for _, c := range r.Commands {
		if c.Long(threshold) {
			return true
		}
	}
	return false
}

// MustCount returns the number of must commands.
func (r *Routine) MustCount() int {
	n := 0
	for _, c := range r.Commands {
		if c.Must() {
			n++
		}
	}
	return n
}

// Clone deep-copies the routine (commands and conditions), so a stored
// definition can be submitted multiple times without aliasing.
func (r *Routine) Clone() *Routine {
	cp := *r
	cp.Commands = make([]Command, len(r.Commands))
	copy(cp.Commands, r.Commands)
	for i, c := range r.Commands {
		if c.Condition != nil {
			cond := *c.Condition
			cp.Commands[i].Condition = &cond
		}
	}
	cp.devices = cp.computeDevices()
	return &cp
}

// String renders the routine like the paper's examples, e.g.
// "cooling{window:CLOSE; ac:ON}".
func (r *Routine) String() string {
	parts := make([]string, len(r.Commands))
	for i, c := range r.Commands {
		parts[i] = c.String()
	}
	return fmt.Sprintf("%s{%s}", r.Name, strings.Join(parts, "; "))
}

// conflictsOn returns the devices two routines both write.
func conflictsOn(a, b *Routine) []device.ID {
	set := make(map[device.ID]bool)
	for _, d := range a.Devices() {
		set[d] = true
	}
	var out []device.ID
	for _, d := range b.Devices() {
		if set[d] {
			out = append(out, d)
		}
	}
	return out
}

// Conflicts reports whether the two routines touch at least one common
// device (the PSV notion of conflicting routines).
func Conflicts(a, b *Routine) bool { return len(conflictsOn(a, b)) > 0 }

// ConflictDevices returns the devices both routines write, sorted.
func ConflictDevices(a, b *Routine) []device.ID {
	ds := conflictsOn(a, b)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

// --- JSON wire format (Fig 10-style) -------------------------------------

// specJSON is the on-the-wire representation of a routine definition, in the
// spirit of the paper's Fig 10(a): a name plus a command list where each
// command names a device, an action, an optional duration in milliseconds,
// and a priority of "must" (default) or "best-effort".
type specJSON struct {
	RoutineName string        `json:"routine_name"`
	User        string        `json:"user,omitempty"`
	Commands    []commandJSON `json:"commands"`
}

type commandJSON struct {
	Device     string     `json:"device"`
	Action     string     `json:"action"`
	DurationMS int64      `json:"duration_ms,omitempty"`
	Priority   string     `json:"priority,omitempty"`
	Condition  *Condition `json:"condition,omitempty"`
}

// MarshalSpec encodes the routine into the Fig 10-style JSON document.
func MarshalSpec(r *Routine) ([]byte, error) {
	if r == nil {
		return nil, errors.New("routine: nil routine")
	}
	spec := specJSON{RoutineName: r.Name, User: r.User}
	for _, c := range r.Commands {
		cj := commandJSON{
			Device:     string(c.Device),
			Action:     string(c.Target),
			DurationMS: c.Duration.Milliseconds(),
			Condition:  c.Condition,
		}
		if c.BestEffort {
			cj.Priority = "best-effort"
		} else {
			cj.Priority = "must"
		}
		spec.Commands = append(spec.Commands, cj)
	}
	return json.MarshalIndent(spec, "", "  ")
}

// ParseSpec decodes a Fig 10-style JSON document into a Routine.
func ParseSpec(data []byte) (*Routine, error) {
	var spec specJSON
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("routine: parsing spec: %w", err)
	}
	if strings.TrimSpace(spec.RoutineName) == "" {
		return nil, errors.New("routine: spec missing routine_name")
	}
	r := &Routine{Name: spec.RoutineName, User: spec.User}
	for i, cj := range spec.Commands {
		if cj.Device == "" || cj.Action == "" {
			return nil, fmt.Errorf("routine: spec command %d missing device or action", i)
		}
		cmd := Command{
			Device:    device.ID(cj.Device),
			Target:    device.State(cj.Action),
			Duration:  time.Duration(cj.DurationMS) * time.Millisecond,
			Condition: cj.Condition,
		}
		switch strings.ToLower(strings.TrimSpace(cj.Priority)) {
		case "", "must", "required":
			cmd.BestEffort = false
		case "best-effort", "besteffort", "optional":
			cmd.BestEffort = true
		default:
			return nil, fmt.Errorf("routine: spec command %d has unknown priority %q", i, cj.Priority)
		}
		r.Commands = append(r.Commands, cmd)
	}
	if len(r.Commands) == 0 {
		return nil, fmt.Errorf("routine: spec %q has no commands", spec.RoutineName)
	}
	return r, nil
}

// --- Routine bank ---------------------------------------------------------

// Bank stores named routine definitions, as in the implementation
// architecture of Fig 11 ("Routine Bank"). Definitions are cloned on
// retrieval so stored routines are never mutated by submission.
type Bank struct {
	mu    sync.RWMutex
	byKey map[string]*Routine
	order []string
}

// NewBank returns an empty routine bank.
func NewBank() *Bank {
	return &Bank{byKey: make(map[string]*Routine)}
}

// Store saves (or replaces) a routine definition under its name.
func (b *Bank) Store(r *Routine) error {
	if err := r.Validate(nil); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	key := strings.ToLower(r.Name)
	if _, exists := b.byKey[key]; !exists {
		b.order = append(b.order, key)
	}
	b.byKey[key] = r.Clone()
	return nil
}

// Get returns a copy of the named routine definition.
func (b *Bank) Get(name string) (*Routine, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.byKey[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// Names lists stored routine names in insertion order.
func (b *Bank) Names() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.order))
	for _, key := range b.order {
		out = append(out, b.byKey[key].Name)
	}
	return out
}

// Len returns the number of stored definitions.
func (b *Bank) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.byKey)
}

// Delete removes a routine definition; it is not an error if absent.
func (b *Bank) Delete(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := b.byKey[key]; !ok {
		return
	}
	delete(b.byKey, key)
	for i, k := range b.order {
		if k == key {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

package routine

import (
	"testing"
	"time"

	"safehome/internal/device"
)

func TestSpanEstimate(t *testing.T) {
	short := 100 * time.Millisecond
	r := New("interleaved",
		Command{Device: "a", Target: device.On, Duration: time.Minute}, // first touch of a
		Command{Device: "b", Target: device.On, Duration: 2 * time.Minute},
		Command{Device: "a", Target: device.Off}, // last touch of a (short)
		Command{Device: "c", Target: device.On},
	)

	// Span on a covers commands 0..2: 1m + 2m + 100ms.
	if got, want := r.SpanEstimate("a", short), 3*time.Minute+short; got != want {
		t.Errorf("SpanEstimate(a) = %v, want %v", got, want)
	}
	// Span on b is just its own command.
	if got, want := r.SpanEstimate("b", short), 2*time.Minute; got != want {
		t.Errorf("SpanEstimate(b) = %v, want %v", got, want)
	}
	// Span on c is the default short duration.
	if got, want := r.SpanEstimate("c", short), short; got != want {
		t.Errorf("SpanEstimate(c) = %v, want %v", got, want)
	}
	// Untouched devices have zero span.
	if got := r.SpanEstimate("ghost", short); got != 0 {
		t.Errorf("SpanEstimate(ghost) = %v, want 0", got)
	}
}

func TestSpanEstimateAtLeastHoldEstimate(t *testing.T) {
	short := 100 * time.Millisecond
	r := New("mixed",
		Command{Device: "x", Target: device.On, Duration: 5 * time.Second},
		Command{Device: "y", Target: device.On},
		Command{Device: "x", Target: device.Off, Duration: 3 * time.Second},
	)
	for _, d := range r.Devices() {
		if r.SpanEstimate(d, short) < r.HoldEstimate(d, short) {
			t.Errorf("SpanEstimate(%s) < HoldEstimate(%s)", d, d)
		}
	}
}

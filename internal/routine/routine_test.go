package routine

import (
	"strings"
	"testing"
	"time"

	"safehome/internal/device"
)

func cooling() *Routine {
	return New("cooling",
		Command{Device: "window", Target: device.Closed},
		Command{Device: "ac", Target: device.On},
	)
}

func breakfast() *Routine {
	return New("breakfast",
		Command{Device: "coffee", Target: device.On, Duration: 4 * time.Minute},
		Command{Device: "coffee", Target: device.Off},
		Command{Device: "pancake", Target: device.On, Duration: 5 * time.Minute},
		Command{Device: "pancake", Target: device.Off},
	)
}

func TestValidate(t *testing.T) {
	reg := device.NewRegistry(
		device.Info{ID: "window", Kind: device.KindWindow},
		device.Info{ID: "ac", Kind: device.KindAC},
	)
	if err := cooling().Validate(reg); err != nil {
		t.Fatalf("valid routine rejected: %v", err)
	}
	cases := []struct {
		name string
		r    *Routine
	}{
		{"nil", nil},
		{"empty name", New("  ", Command{Device: "ac", Target: device.On})},
		{"no commands", New("x")},
		{"empty device", New("x", Command{Target: device.On})},
		{"empty target", New("x", Command{Device: "ac"})},
		{"negative duration", New("x", Command{Device: "ac", Target: device.On, Duration: -1})},
		{"unknown device", New("x", Command{Device: "ghost", Target: device.On})},
		{"unknown condition device", New("x", Command{Device: "ac", Target: device.On,
			Condition: &Condition{Device: "ghost", Equals: device.On}})},
	}
	for _, c := range cases {
		if err := c.r.Validate(reg); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDevicesAndIndices(t *testing.T) {
	r := breakfast()
	devs := r.Devices()
	if len(devs) != 2 || devs[0] != "coffee" || devs[1] != "pancake" {
		t.Fatalf("Devices = %v", devs)
	}
	if r.FirstIndexOn("coffee") != 0 || r.LastIndexOn("coffee") != 1 {
		t.Fatalf("coffee indices = %d,%d", r.FirstIndexOn("coffee"), r.LastIndexOn("coffee"))
	}
	if r.FirstIndexOn("pancake") != 2 || r.LastIndexOn("pancake") != 3 {
		t.Fatal("pancake indices wrong")
	}
	if r.FirstIndexOn("ghost") != -1 || r.LastIndexOn("ghost") != -1 {
		t.Fatal("missing device should yield -1")
	}
	if !r.Touches("coffee") || r.Touches("ghost") {
		t.Fatal("Touches wrong")
	}
	st, ok := r.LastWriteTo("coffee")
	if !ok || st != device.Off {
		t.Fatalf("LastWriteTo(coffee) = %v, %v", st, ok)
	}
	if _, ok := r.LastWriteTo("ghost"); ok {
		t.Fatal("LastWriteTo of untouched device should be !ok")
	}
}

func TestDurationsAndLong(t *testing.T) {
	r := breakfast()
	ideal := r.IdealDuration(100 * time.Millisecond)
	want := 4*time.Minute + 5*time.Minute + 200*time.Millisecond
	if ideal != want {
		t.Fatalf("IdealDuration = %v, want %v", ideal, want)
	}
	if !r.IsLong(time.Minute) {
		t.Fatal("breakfast should be a long routine at 1m threshold")
	}
	if cooling().IsLong(time.Minute) {
		t.Fatal("cooling should not be long")
	}
	hold := r.HoldEstimate("coffee", 100*time.Millisecond)
	if hold != 4*time.Minute+100*time.Millisecond {
		t.Fatalf("HoldEstimate(coffee) = %v", hold)
	}
	if r.HoldEstimate("ghost", time.Second) != 0 {
		t.Fatal("HoldEstimate of untouched device should be 0")
	}
}

func TestMustCountAndBestEffort(t *testing.T) {
	leave := New("leave-home",
		Command{Device: "lights", Target: device.Off, BestEffort: true},
		Command{Device: "door", Target: device.Locked},
	)
	if leave.MustCount() != 1 {
		t.Fatalf("MustCount = %d", leave.MustCount())
	}
	if leave.Commands[0].Must() {
		t.Fatal("best-effort command should not be must")
	}
	if !leave.Commands[1].Must() {
		t.Fatal("default command should be must")
	}
}

func TestConflicts(t *testing.T) {
	r1 := cooling()
	r2 := New("dryer", Command{Device: "dryer", Target: device.On})
	r3 := New("vent", Command{Device: "window", Target: device.Open})
	if Conflicts(r1, r2) {
		t.Fatal("disjoint routines should not conflict")
	}
	if !Conflicts(r1, r3) {
		t.Fatal("routines sharing window should conflict")
	}
	ds := ConflictDevices(r1, r3)
	if len(ds) != 1 || ds[0] != "window" {
		t.Fatalf("ConflictDevices = %v", ds)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New("guarded",
		Command{Device: "ac", Target: device.On, Condition: &Condition{Device: "window", Equals: device.Closed}},
	)
	cp := r.Clone()
	cp.Commands[0].Target = device.Off
	cp.Commands[0].Condition.Equals = device.Open
	if r.Commands[0].Target != device.On {
		t.Fatal("clone shares command slice with original")
	}
	if r.Commands[0].Condition.Equals != device.Closed {
		t.Fatal("clone shares condition pointer with original")
	}
}

func TestReadDevices(t *testing.T) {
	r := New("guarded",
		Command{Device: "ac", Target: device.On, Condition: &Condition{Device: "window", Equals: device.Closed}},
		Command{Device: "fan", Target: device.On, Condition: &Condition{Device: "window", Equals: device.Closed}},
	)
	rd := r.ReadDevices()
	if len(rd) != 1 || rd[0] != "window" {
		t.Fatalf("ReadDevices = %v", rd)
	}
	if len(cooling().ReadDevices()) != 0 {
		t.Fatal("cooling has no reads")
	}
}

func TestStringRendering(t *testing.T) {
	s := breakfast().String()
	if !strings.Contains(s, "coffee:ON(4m0s)") || !strings.HasPrefix(s, "breakfast{") {
		t.Fatalf("String() = %q", s)
	}
	be := Command{Device: "lights", Target: device.Off, BestEffort: true}.String()
	if !strings.Contains(be, "best-effort") {
		t.Fatalf("best-effort not rendered: %q", be)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	orig := New("Prepare Breakfast",
		Command{Device: "coffee-maker", Target: device.On, Duration: 4 * time.Minute},
		Command{Device: "toaster", Target: device.On, BestEffort: true},
		Command{Device: "ac", Target: device.On, Condition: &Condition{Device: "window", Equals: device.Closed}},
	)
	orig.User = "alice"
	data, err := MarshalSpec(orig)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("ParseSpec: %v\n%s", err, data)
	}
	if parsed.Name != orig.Name || parsed.User != "alice" {
		t.Fatalf("name/user lost: %+v", parsed)
	}
	if len(parsed.Commands) != 3 {
		t.Fatalf("command count = %d", len(parsed.Commands))
	}
	if parsed.Commands[0].Duration != 4*time.Minute {
		t.Fatalf("duration lost: %v", parsed.Commands[0].Duration)
	}
	if !parsed.Commands[1].BestEffort || parsed.Commands[0].BestEffort {
		t.Fatal("priority lost")
	}
	if parsed.Commands[2].Condition == nil || parsed.Commands[2].Condition.Device != "window" {
		t.Fatal("condition lost")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"missing name":     `{"commands":[{"device":"a","action":"ON"}]}`,
		"no commands":      `{"routine_name":"x","commands":[]}`,
		"missing device":   `{"routine_name":"x","commands":[{"action":"ON"}]}`,
		"missing action":   `{"routine_name":"x","commands":[{"device":"a"}]}`,
		"unknown priority": `{"routine_name":"x","commands":[{"device":"a","action":"ON","priority":"urgent"}]}`,
	}
	for name, doc := range cases {
		if _, err := ParseSpec([]byte(doc)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseSpecPrioritySynonyms(t *testing.T) {
	doc := `{"routine_name":"x","commands":[
		{"device":"a","action":"ON","priority":"optional"},
		{"device":"b","action":"ON","priority":"required"},
		{"device":"c","action":"ON"}]}`
	r, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Commands[0].BestEffort || r.Commands[1].BestEffort || r.Commands[2].BestEffort {
		t.Fatalf("priority synonyms mis-parsed: %+v", r.Commands)
	}
}

func TestMarshalSpecNil(t *testing.T) {
	if _, err := MarshalSpec(nil); err == nil {
		t.Fatal("expected error for nil routine")
	}
}

func TestBank(t *testing.T) {
	b := NewBank()
	if err := b.Store(cooling()); err != nil {
		t.Fatal(err)
	}
	if err := b.Store(breakfast()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	got, ok := b.Get("COOLING") // case-insensitive
	if !ok || got.Name != "cooling" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Mutating the returned copy must not affect the stored definition.
	got.Commands[0].Target = device.Open
	again, _ := b.Get("cooling")
	if again.Commands[0].Target != device.Closed {
		t.Fatal("bank returned aliased routine")
	}
	names := b.Names()
	if len(names) != 2 || names[0] != "cooling" {
		t.Fatalf("Names = %v", names)
	}
	b.Delete("cooling")
	if _, ok := b.Get("cooling"); ok {
		t.Fatal("deleted routine still present")
	}
	b.Delete("cooling") // idempotent
	if b.Len() != 1 {
		t.Fatalf("Len after delete = %d", b.Len())
	}
	if err := b.Store(New("bad")); err == nil {
		t.Fatal("storing invalid routine should fail")
	}
}

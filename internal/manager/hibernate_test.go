package manager

import (
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	rt "safehome/internal/runtime"
	"safehome/internal/visibility"
)

// hibernatingManager builds a virtual-clock manager with hibernation
// enabled but a threshold long enough that nothing freezes on its own —
// tests drive FreezeHome/FreezeIdle explicitly for determinism.
func hibernatingManager(dir string) *Manager {
	return New(Config{
		Shards:         2,
		DataDir:        dir,
		HibernateAfter: time.Hour,
		Home:           HomeConfig{Model: visibility.EV},
	})
}

// TestColdRegistrationCostsNoRuntime: with hibernation on, AddHome registers
// a fresh home frozen — no loop goroutine, no journal descriptor — and the
// first touch builds it. This is the cheap half of "millions of registered
// homes in one process".
func TestColdRegistrationCostsNoRuntime(t *testing.T) {
	m := hibernatingManager(t.TempDir())
	defer m.Close()
	if err := m.AddHome("attic", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	st, err := m.HomeStatus("attic")
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != rt.HealthFrozen {
		t.Fatalf("cold-added home health = %s, want frozen", st.Health)
	}
	if st.Devices != 2 {
		t.Fatalf("cold status lost the fleet: %+v", st)
	}
	if got := m.Status(); got.Homes != 1 || got.Frozen != 1 {
		t.Fatalf("Status = %d homes / %d frozen, want 1/1", got.Homes, got.Frozen)
	}
	// First touch wakes it and it serves like any home.
	if _, err := m.Submit("attic", durableRoutine(0)); err != nil {
		t.Fatalf("submit to cold home: %v", err)
	}
	if st, _ := m.HomeStatus("attic"); st.Health != rt.HealthOK {
		t.Fatalf("woken home health = %s, want ok", st.Health)
	}
	if got := m.Status(); got.Frozen != 0 {
		t.Fatalf("Status still counts %d frozen after wake", got.Frozen)
	}
}

// TestFreezeWakeExactThroughManager: everything acknowledged before a
// freeze comes back exactly through the manager API, and the intermediate
// frozen state is fully visible in Status/HomeStatus without waking.
func TestFreezeWakeExactThroughManager(t *testing.T) {
	m := hibernatingManager(t.TempDir())
	defer m.Close()
	if err := m.AddHome("den", device.Plugs(3).All()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := m.Submit("den", durableRoutine(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := m.Results("den")
	if err != nil {
		t.Fatal(err)
	}

	if err := m.FreezeHome("den"); err != nil {
		t.Fatalf("FreezeHome: %v", err)
	}
	st, err := m.HomeStatus("den")
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != rt.HealthFrozen || st.Routines != 6 || st.FrozenAt.IsZero() {
		t.Fatalf("frozen status = %+v", st)
	}
	// Freezing a frozen home is a no-op, not an error.
	if err := m.FreezeHome("den"); err != nil {
		t.Fatalf("re-freeze: %v", err)
	}

	after, err := m.Results("den") // wakes
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("woke with %d results, froze with %d", len(after), len(before))
	}
	for i := range before {
		if before[i].ID != after[i].ID || before[i].Status != after[i].Status {
			t.Fatalf("result %d changed across freeze/wake: %+v vs %+v", i, before[i], after[i])
		}
	}
	// The woken home keeps serving with a continuous ID sequence.
	rid, err := m.Submit("den", durableRoutine(7))
	if err != nil {
		t.Fatal(err)
	}
	if rid != routine.ID(len(before)+1) {
		t.Fatalf("post-wake routine ID = %d, want %d", rid, len(before)+1)
	}
}

// TestStatusNeverWakesFrozenHomes: the no-wake reporting satellite. Every
// fleet-level read — Status, Homes, HomeStatus — answers for a frozen home
// from its resident record and leaves it frozen.
func TestStatusNeverWakesFrozenHomes(t *testing.T) {
	m := hibernatingManager(t.TempDir())
	defer m.Close()
	ids, err := m.AddHomes("cabin", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := m.Submit(id, durableRoutine(1)); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.FreezeIdle(0); n != 4 {
		t.Fatalf("FreezeIdle froze %d homes, want 4", n)
	}
	for round := 0; round < 3; round++ {
		if got := m.Status(); got.Frozen != 4 {
			t.Fatalf("round %d: Status.Frozen = %d, want 4", round, got.Frozen)
		}
		for _, hs := range m.Homes() {
			if hs.Health != rt.HealthFrozen {
				t.Fatalf("round %d: home %s health = %s after a status read", round, hs.ID, hs.Health)
			}
			if hs.Routines != 1 {
				t.Fatalf("round %d: frozen record of %s reports %d routines", round, hs.ID, hs.Routines)
			}
		}
		for _, id := range ids {
			if hs, _ := m.HomeStatus(id); hs.Health != rt.HealthFrozen {
				t.Fatalf("round %d: HomeStatus woke %s", round, id)
			}
		}
	}
}

// TestRecoverHomesKeepsHibernatedHomesCold: a restart over a data dir of
// cleanly hibernated homes re-registers them frozen — a million-home fleet
// boots without a million journal recoveries — while a home that crashed
// live (journal state, no marker) recovers live so its aborts surface.
func TestRecoverHomesKeepsHibernatedHomesCold(t *testing.T) {
	dir := t.TempDir()
	m := hibernatingManager(dir)
	if err := m.AddHome("cold", device.Plugs(3).All()...); err != nil {
		t.Fatal(err)
	}
	if err := m.AddHome("warm", device.Plugs(3).All()...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("cold", durableRoutine(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.FreezeHome("cold"); err != nil {
		t.Fatal(err)
	}
	// "warm" stays live through the manager Close: journal state on disk,
	// no frozen marker — the crashed-live shape.
	if _, err := m.Submit("warm", durableRoutine(1)); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2 := hibernatingManager(dir)
	defer m2.Close()
	recovered, err := m2.RecoverHomes()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %v, want both homes", recovered)
	}
	if hs, _ := m2.HomeStatus("cold"); hs.Health != rt.HealthFrozen || hs.Routines != 1 {
		t.Fatalf("hibernated home rebooted as %+v, want frozen with its record", hs)
	}
	if hs, _ := m2.HomeStatus("warm"); hs.Health != rt.HealthOK {
		t.Fatalf("live-closed home rebooted as %s, want live recovery", hs.Health)
	}
	res, err := m2.Results("cold") // wake
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Status != visibility.StatusCommitted {
		t.Fatalf("woke hibernated home with %+v", res)
	}
}

// TestFrozenTriggerFiresOnTime: the deadline-heap satellite. A frozen home
// with a scheduled trigger is reanimated by the manager's waker at the
// trigger deadline — nobody touches the home — and the trigger fires.
func TestFrozenTriggerFiresOnTime(t *testing.T) {
	m := New(Config{
		Shards:         1,
		DataDir:        t.TempDir(),
		Clock:          ClockLive,
		PumpInterval:   5 * time.Millisecond,
		HibernateAfter: time.Hour, // automatic sweep stays out of the way
		Home:           HomeConfig{Model: visibility.EV},
	})
	defer m.Close()
	if err := m.AddHome("alarm", device.Plugs(1).All()...); err != nil {
		t.Fatal(err)
	}
	home, err := m.Runtime("alarm") // wake the cold registration to arm it
	if err != nil {
		t.Fatal(err)
	}
	if err := home.StoreRoutine(routine.New("wakeup", routine.Command{Device: "plug-0", Target: device.On})); err != nil {
		t.Fatal(err)
	}
	if _, err := home.ScheduleAfter("wakeup", 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := m.FreezeHome("alarm"); err != nil {
		t.Fatal(err)
	}
	if hs, _ := m.HomeStatus("alarm"); hs.Health != rt.HealthFrozen || hs.NextFire.IsZero() {
		t.Fatalf("frozen status lost the deadline: %+v", hs)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		hs, err := m.HomeStatus("alarm")
		if err != nil {
			t.Fatal(err)
		}
		if hs.Health == rt.HealthOK && hs.Routines >= 1 {
			break // the waker reanimated it and the trigger submitted
		}
		if time.Now().After(deadline) {
			t.Fatalf("trigger never fired from hibernation: %+v", hs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		results, err := m.Results("alarm")
		if err != nil {
			t.Fatal(err)
		}
		if len(results) == 1 && results[0].Status == visibility.StatusCommitted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trigger fired but never committed: %+v", results)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIdleSweepFreezesUnderLiveClock: the automatic freezer hibernates a
// home that goes quiet past HibernateAfter without any explicit call.
func TestIdleSweepFreezesUnderLiveClock(t *testing.T) {
	m := New(Config{
		Shards:         1,
		DataDir:        t.TempDir(),
		Clock:          ClockLive,
		PumpInterval:   5 * time.Millisecond,
		HibernateAfter: 50 * time.Millisecond,
		Home:           HomeConfig{Model: visibility.EV},
	})
	defer m.Close()
	if err := m.AddHome("nap", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("nap", durableRoutine(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if hs, _ := m.HomeStatus("nap"); hs.Health == rt.HealthFrozen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle home never hibernated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And it still answers exactly after the sweep put it to sleep.
	res, err := m.Results("nap")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("woke with %d results, want 1", len(res))
	}
}

// TestSubmitRacingFreezeNeverLosesWork: a submit that catches the home
// mid-freeze (runtime closed under it) retries once through the wake path;
// across many freeze/submit races every acknowledged submit survives.
func TestSubmitRacingFreezeNeverLosesWork(t *testing.T) {
	m := hibernatingManager(t.TempDir())
	defer m.Close()
	if err := m.AddHome("race", device.Plugs(3).All()...); err != nil {
		t.Fatal(err)
	}
	const rounds = 40
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.FreezeHome("race") // racing: may interleave anywhere
		}()
		if _, err := m.Submit("race", durableRoutine(i)); err != nil {
			t.Fatalf("submit %d lost to the freeze race: %v", i, err)
		}
	}
	wg.Wait()
	res, err := m.Results("race")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != rounds {
		t.Fatalf("acknowledged %d submits, woke with %d results", rounds, len(res))
	}
	for i, r := range res {
		if r.Status != visibility.StatusCommitted && r.Status != visibility.StatusAborted {
			t.Fatalf("result %d in state %s after freeze races", i, r.Status)
		}
	}
}

// TestHibernationRequiresDataDir: the knob silently disables without a data
// directory — nothing durable to wake from — and explicit freezes refuse.
func TestHibernationRequiresDataDir(t *testing.T) {
	m := New(Config{Shards: 1, HibernateAfter: time.Minute, Home: HomeConfig{Model: visibility.EV}})
	defer m.Close()
	if m.hibernating() {
		t.Fatal("memory-only manager believes it can hibernate")
	}
	if err := m.AddHome("ram", device.Plugs(1).All()...); err != nil {
		t.Fatal(err)
	}
	if hs, _ := m.HomeStatus("ram"); hs.Health != rt.HealthOK {
		t.Fatalf("memory-only home health = %s", hs.Health)
	}
	if err := m.FreezeHome("ram"); err == nil {
		t.Fatal("froze a memory-only home")
	}
	if n := m.FreezeIdle(0); n != 0 {
		t.Fatalf("FreezeIdle froze %d memory-only homes", n)
	}
}

package manager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/device"
	rt "safehome/internal/runtime"
	"safehome/internal/stats"
)

// homeSlot is one home's stable identity on a shard: the routing map points
// at slots, and the slot points at the home's current runtime generation.
// When a panic poisons a runtime, the shard's supervisor swaps a freshly
// recovered runtime into the slot — callers holding the slot never see a
// dangling home, only ErrRestarting/ErrQuarantined while it is down.
type homeSlot struct {
	id      HomeID
	devices []device.Info
	rt      atomic.Pointer[rt.HomeRuntime]
	sup     *rt.Supervisor
	// lastPoison caches the home's persisted poison forensics (loaded from
	// poison.json on add, stored by the dying generation on poison, cleared
	// by a clean supervised restart) for Status reads.
	lastPoison atomic.Pointer[rt.PoisonRecord]
}

// health folds supervision state with the runtime's durability: degraded
// means a configured journal died and the home is serving memory-only.
func (slot *homeSlot) health() rt.HomeHealth {
	return slot.sup.Health(slot.rt.Load().JournalError() == nil)
}

// shard is a thin owner of a disjoint subset of the manager's homes: it
// holds the routing map from home ID to home slot, mirrors the home count
// for lock-free Status reads, and runs up to two goroutines — under
// ClockLive the pumper that advances its homes' simulators to the wall
// clock, and (unless supervision is disabled) the supervisor that restarts
// poisoned homes. All per-home state lives inside the runtimes; the shard's
// lock only guards the map itself.
type shard struct {
	m     *Manager
	index int

	mu     sync.RWMutex
	homes  map[HomeID]*homeSlot
	closed bool

	// restartCh feeds poisoned slots to the shard's supervisor goroutine.
	restartCh chan *homeSlot

	// homeCount mirrors len(homes) for lock-free Status reads.
	homeCount stats.Counter
}

func newShard(m *Manager, index int) *shard {
	return &shard{
		m:         m,
		index:     index,
		homes:     make(map[HomeID]*homeSlot),
		restartCh: make(chan *homeSlot, 64),
	}
}

// addHome builds a home runtime and registers it on this shard.
func (s *shard) addHome(id HomeID, devices []device.Info) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, exists := s.homes[id]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateHome, id)
	}
	slot := &homeSlot{
		id:      id,
		devices: append([]device.Info(nil), devices...),
		sup:     rt.NewSupervisor(s.m.cfg.Supervisor),
	}
	if dir := s.m.homeDir(id); dir != "" {
		// A poison record left behind by a previous process is forensics the
		// operator has not acted on yet; surface it until a clean restart.
		slot.lastPoison.Store(rt.LoadPoisonRecord(dir))
	}
	home, err := s.buildRuntime(slot)
	if err != nil {
		return err
	}
	slot.rt.Store(home)
	s.homes[id] = slot
	s.homeCount.Inc()
	return nil
}

// buildRuntime constructs one runtime generation for the slot. With a
// DataDir the new generation recovers from the home's journal; memory-only
// homes restart empty but alive.
func (s *shard) buildRuntime(slot *homeSlot) (*rt.HomeRuntime, error) {
	cfg := s.m.runtimeConfig(slot.id, s.index)
	if !s.m.cfg.Supervisor.Disable {
		cfg.OnPoison = func(err error) { s.notifyPoison(slot, err) }
	}
	return rt.NewSim(cfg, device.NewRegistry(slot.devices...))
}

// notifyPoison runs on the dying home's loop goroutine: record the poison
// and hand the slot to the supervisor without ever blocking the teardown.
func (s *shard) notifyPoison(slot *homeSlot, err error) {
	slot.sup.NotePoison(err)
	if rec := slot.rt.Load().PoisonRecord(); rec != nil {
		slot.lastPoison.Store(rec)
	}
	s.m.poisons.Add(1)
	select {
	case s.restartCh <- slot:
	default:
		go func() {
			select {
			case s.restartCh <- slot:
			case <-s.m.stop:
			}
		}()
	}
}

// runSupervisor restarts poisoned homes one at a time (per shard), applying
// the restart budget and backoff policy in rt.Supervisor.
func (s *shard) runSupervisor() {
	defer s.m.wg.Done()
	for {
		select {
		case <-s.m.stop:
			return
		case slot := <-s.restartCh:
			s.superviseRestart(slot)
		}
	}
}

// superviseRestart swaps a fresh runtime generation into a poisoned slot.
func (s *shard) superviseRestart(slot *homeSlot) {
	// Join the dead loop first. The poison teardown already closed the
	// mailbox and released the journal's file lock, so the data directory is
	// free for the next generation.
	slot.rt.Load().Close()
	ok := slot.sup.Restart(s.m.stop, func() error {
		home, err := s.buildRuntime(slot)
		if err != nil {
			return err
		}
		slot.rt.Store(home)
		return nil
	})
	if ok {
		s.m.restarts.Add(1)
		// The restart came back clean: retire the forensics so Status (and
		// the persisted poison.json) reflect a healthy home again.
		if dir := s.m.homeDir(slot.id); dir != "" {
			rt.ClearPoisonRecord(dir)
		}
		slot.lastPoison.Store(nil)
	} else if slot.sup.Quarantined() {
		s.m.quarantined.Add(1)
	}
}

// slot returns the home's slot, if the shard owns it.
func (s *shard) slot(id HomeID) (*homeSlot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot, ok := s.homes[id]
	return slot, ok
}

// has reports whether the shard currently owns the home.
func (s *shard) has(id HomeID) bool {
	_, ok := s.slot(id)
	return ok
}

// snapshot returns a point-in-time copy of the routing map.
func (s *shard) snapshot() map[HomeID]*homeSlot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[HomeID]*homeSlot, len(s.homes))
	for id, slot := range s.homes {
		out[id] = slot
	}
	return out
}

// runPump is the shard's live-clock loop: on every tick it advances the
// simulators of exactly the homes with an event due at or before now —
// idle homes are skipped entirely (each runtime publishes its next deadline,
// and PumpIfDue also bounds in-flight pumps to one per home).
func (s *shard) runPump() {
	defer s.m.wg.Done()
	ticker := time.NewTicker(s.m.cfg.PumpInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.m.stop:
			return
		case <-ticker.C:
			now := time.Now()
			s.mu.RLock()
			for _, slot := range s.homes {
				slot.rt.Load().PumpIfDue(now)
			}
			s.mu.RUnlock()
		}
	}
}

// closeAll closes every home runtime on this shard (graceful drain) and
// stops accepting new homes.
func (s *shard) closeAll() {
	s.mu.Lock()
	s.closed = true
	slots := make([]*homeSlot, 0, len(s.homes))
	for _, slot := range s.homes {
		slots = append(slots, slot)
	}
	s.mu.Unlock()
	for _, slot := range slots {
		slot.rt.Load().Close()
	}
}

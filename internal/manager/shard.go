package manager

import (
	"fmt"
	"sync"
	"time"

	"safehome/internal/device"
	rt "safehome/internal/runtime"
	"safehome/internal/stats"
)

// shard is a thin owner of a disjoint subset of the manager's homes: it
// holds the routing map from home ID to home runtime, mirrors the home count
// for lock-free Status reads, and — under ClockLive — runs the pumper
// goroutine that advances its homes' simulators to the wall clock. All
// per-home state lives inside the runtimes; the shard's lock only guards the
// map itself.
type shard struct {
	m     *Manager
	index int

	mu     sync.RWMutex
	homes  map[HomeID]*rt.HomeRuntime
	closed bool

	// homeCount mirrors len(homes) for lock-free Status reads.
	homeCount stats.Counter
}

func newShard(m *Manager, index int) *shard {
	return &shard{
		m:     m,
		index: index,
		homes: make(map[HomeID]*rt.HomeRuntime),
	}
}

// addHome builds a home runtime and registers it on this shard.
func (s *shard) addHome(id HomeID, devices []device.Info) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, exists := s.homes[id]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateHome, id)
	}
	home, err := rt.NewSim(s.m.runtimeConfig(id, s.index), device.NewRegistry(devices...))
	if err != nil {
		return err
	}
	s.homes[id] = home
	s.homeCount.Inc()
	return nil
}

// has reports whether the shard currently owns the home.
func (s *shard) has(id HomeID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.homes[id]
	return ok
}

// snapshot returns a point-in-time copy of the routing map.
func (s *shard) snapshot() map[HomeID]*rt.HomeRuntime {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[HomeID]*rt.HomeRuntime, len(s.homes))
	for id, home := range s.homes {
		out[id] = home
	}
	return out
}

// runPump is the shard's live-clock loop: on every tick it advances the
// simulators of exactly the homes with an event due at or before now —
// idle homes are skipped entirely (each runtime publishes its next deadline,
// and PumpIfDue also bounds in-flight pumps to one per home).
func (s *shard) runPump() {
	defer s.m.wg.Done()
	ticker := time.NewTicker(s.m.cfg.PumpInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.m.stop:
			return
		case <-ticker.C:
			now := time.Now()
			s.mu.RLock()
			for _, home := range s.homes {
				home.PumpIfDue(now)
			}
			s.mu.RUnlock()
		}
	}
}

// closeAll closes every home runtime on this shard (graceful drain) and
// stops accepting new homes.
func (s *shard) closeAll() {
	s.mu.Lock()
	s.closed = true
	homes := make([]*rt.HomeRuntime, 0, len(s.homes))
	for _, home := range s.homes {
		homes = append(homes, home)
	}
	s.mu.Unlock()
	for _, home := range homes {
		home.Close()
	}
}

package manager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/device"
	rt "safehome/internal/runtime"
	"safehome/internal/stats"
)

// homeSlot is one home's stable identity on a shard: the routing map points
// at slots, and the slot points at the home's current runtime generation.
// When a panic poisons a runtime, the shard's supervisor swaps a freshly
// recovered runtime into the slot — callers holding the slot never see a
// dangling home, only ErrRestarting/ErrQuarantined while it is down.
type homeSlot struct {
	id      HomeID
	devices []device.Info
	rt      atomic.Pointer[rt.HomeRuntime]
	sup     *rt.Supervisor
	// lastPoison caches the home's persisted poison forensics (loaded from
	// poison.json on add, stored by the dying generation on poison, cleared
	// by a clean supervised restart) for Status reads.
	lastPoison atomic.Pointer[rt.PoisonRecord]

	// frozen holds the hibernation record while the home has no runtime
	// (rt == nil): the few hundred bytes the manager keeps resident per
	// hibernated home. Transition ordering keeps readers consistent —
	// freeze stores frozen before clearing rt; wake stores rt before
	// clearing frozen — so "rt first, frozen as fallback" always finds one.
	frozen atomic.Pointer[rt.FrozenHome]
	// wakeMu is the singleflight guard for freeze/wake transitions: exactly
	// one goroutine reanimates a frozen home; concurrent wakers (a submit, a
	// query, the trigger-deadline waker) block and share the result.
	wakeMu sync.Mutex
}

// health folds supervision state with the runtime's durability: degraded
// means a configured journal died and the home is serving memory-only. A
// slot with no runtime is hibernating.
func (slot *homeSlot) health() rt.HomeHealth {
	home := slot.rt.Load()
	if home == nil {
		return rt.HealthFrozen
	}
	return slot.sup.Health(home.JournalError() == nil)
}

// shard is a thin owner of a disjoint subset of the manager's homes: it
// holds the routing map from home ID to home slot, mirrors the home count
// for lock-free Status reads, and runs up to two goroutines — under
// ClockLive the pumper that advances its homes' simulators to the wall
// clock, and (unless supervision is disabled) the supervisor that restarts
// poisoned homes. All per-home state lives inside the runtimes; the shard's
// lock only guards the map itself.
type shard struct {
	m     *Manager
	index int

	mu     sync.RWMutex
	homes  map[HomeID]*homeSlot
	closed bool

	// live is the subset of homes with a runtime resident. The pumper and
	// the idle freezer scan only this map, so a frozen home costs zero
	// per-tick work — the whole point of hibernation at a million homes.
	live map[HomeID]*homeSlot

	// restartCh feeds poisoned slots to the shard's supervisor goroutine.
	restartCh chan *homeSlot

	// homeCount mirrors len(homes) for lock-free Status reads.
	homeCount stats.Counter
}

func newShard(m *Manager, index int) *shard {
	return &shard{
		m:         m,
		index:     index,
		homes:     make(map[HomeID]*homeSlot),
		live:      make(map[HomeID]*homeSlot),
		restartCh: make(chan *homeSlot, 64),
	}
}

// addHome builds a home runtime and registers it on this shard.
func (s *shard) addHome(id HomeID, devices []device.Info) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, exists := s.homes[id]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateHome, id)
	}
	slot := &homeSlot{
		id:      id,
		devices: append([]device.Info(nil), devices...),
		sup:     rt.NewSupervisor(s.m.cfg.Supervisor),
	}
	if dir := s.m.homeDir(id); dir != "" {
		// A poison record left behind by a previous process is forensics the
		// operator has not acted on yet; surface it until a clean restart.
		slot.lastPoison.Store(rt.LoadPoisonRecord(dir))
	}
	home, err := s.buildRuntime(slot)
	if err != nil {
		return err
	}
	slot.rt.Store(home)
	s.homes[id] = slot
	s.live[id] = slot
	s.homeCount.Inc()
	return nil
}

// addCold registers a hibernated home: just the slot and its frozen record,
// no runtime. First touch (or a due trigger deadline) wakes it. This is how
// a manager registers a million homes without holding a million loops.
func (s *shard) addCold(id HomeID, devices []device.Info, fr *rt.FrozenHome) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, exists := s.homes[id]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateHome, id)
	}
	slot := &homeSlot{
		id:      id,
		devices: append([]device.Info(nil), devices...),
		sup:     rt.NewSupervisor(s.m.cfg.Supervisor),
	}
	if dir := s.m.homeDir(id); dir != "" {
		slot.lastPoison.Store(rt.LoadPoisonRecord(dir))
	}
	slot.frozen.Store(fr)
	s.homes[id] = slot
	s.homeCount.Inc()
	return nil
}

// buildRuntime constructs one runtime generation for the slot. With a
// DataDir the new generation recovers from the home's journal; memory-only
// homes restart empty but alive.
func (s *shard) buildRuntime(slot *homeSlot) (*rt.HomeRuntime, error) {
	cfg := s.m.runtimeConfig(slot.id, s.index)
	if !s.m.cfg.Supervisor.Disable {
		cfg.OnPoison = func(err error) { s.notifyPoison(slot, err) }
	}
	return rt.NewSim(cfg, device.NewRegistry(slot.devices...))
}

// notifyPoison runs on the dying home's loop goroutine: record the poison
// and hand the slot to the supervisor without ever blocking the teardown.
func (s *shard) notifyPoison(slot *homeSlot, err error) {
	slot.sup.NotePoison(err)
	if home := slot.rt.Load(); home != nil {
		if rec := home.PoisonRecord(); rec != nil {
			slot.lastPoison.Store(rec)
		}
	}
	s.m.poisons.Add(1)
	select {
	case s.restartCh <- slot:
	default:
		go func() {
			select {
			case s.restartCh <- slot:
			case <-s.m.stop:
			}
		}()
	}
}

// runSupervisor restarts poisoned homes one at a time (per shard), applying
// the restart budget and backoff policy in rt.Supervisor.
func (s *shard) runSupervisor() {
	defer s.m.wg.Done()
	for {
		select {
		case <-s.m.stop:
			return
		case slot := <-s.restartCh:
			s.superviseRestart(slot)
		}
	}
}

// superviseRestart swaps a fresh runtime generation into a poisoned slot.
func (s *shard) superviseRestart(slot *homeSlot) {
	s.m.restartingNow.Add(1)
	defer s.m.restartingNow.Add(-1)
	// Join the dead loop first. The poison teardown already closed the
	// mailbox and released the journal's file lock, so the data directory is
	// free for the next generation.
	if home := slot.rt.Load(); home != nil {
		home.Close()
	}
	ok := slot.sup.Restart(s.m.stop, func() error {
		home, err := s.buildRuntime(slot)
		if err != nil {
			return err
		}
		slot.rt.Store(home)
		return nil
	})
	if ok {
		s.m.restarts.Add(1)
		// The restart came back clean: retire the forensics so Status (and
		// the persisted poison.json) reflect a healthy home again.
		if dir := s.m.homeDir(slot.id); dir != "" {
			rt.ClearPoisonRecord(dir)
		}
		slot.lastPoison.Store(nil)
	} else if slot.sup.Quarantined() {
		s.m.quarantined.Add(1)
	}
}

// setLive moves the slot in or out of the pumper/freezer scan set. It
// refuses (returning false) once the shard is closed, so a wake racing
// shutdown cannot resurrect a runtime closeAll will never see.
func (s *shard) setLive(slot *homeSlot, live bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if live {
		s.live[slot.id] = slot
	} else {
		delete(s.live, slot.id)
	}
	return true
}

// wake reanimates a hibernated home: remove the frozen marker, rebuild the
// runtime from checkpoint + journal tail, publish it. wakeMu singleflights
// concurrent wakers and serializes against an in-flight freeze — a waker
// arriving mid-freeze blocks, then finds rt nil and reanimates. The marker
// is removed BEFORE the build so a crash mid-wake leaves journal state with
// no marker: an ordinary live recovery next boot, never a stale frozen
// claim over a home that already reanimated.
func (s *shard) wake(slot *homeSlot) (*rt.HomeRuntime, error) {
	wakeStart := time.Now()
	slot.wakeMu.Lock()
	defer slot.wakeMu.Unlock()
	if home := slot.rt.Load(); home != nil {
		return home, nil // another waker (or a failed freeze) got here first
	}
	if dir := s.m.homeDir(slot.id); dir != "" {
		if err := rt.RemoveFrozenRecord(dir); err != nil {
			return nil, err
		}
	}
	home, err := s.buildRuntime(slot)
	if err != nil {
		return nil, err
	}
	if !s.setLive(slot, true) {
		home.Close()
		return nil, ErrClosed
	}
	slot.rt.Store(home)
	slot.frozen.Store(nil)
	s.m.tel.wakes.Inc()
	s.m.tel.wakeSeconds.Observe(time.Since(wakeStart).Seconds())
	return home, nil
}

// freeze hibernates one home: final checkpoint via the graceful Close,
// durable frozen marker, then collapse the slot to the FrozenHome record.
// Only a healthy home freezes — a degraded journal cannot take the final
// checkpoint, and a poisoned home belongs to the supervisor. On a freeze
// error after the Close (which is irrevocable) the slot is rebuilt from
// disk so the home keeps serving.
func (s *shard) freeze(slot *homeSlot) error {
	slot.wakeMu.Lock()
	defer slot.wakeMu.Unlock()
	home := slot.rt.Load()
	if home == nil {
		return nil // already frozen
	}
	if h := slot.sup.Health(home.JournalError() == nil); h != rt.HealthOK {
		return fmt.Errorf("manager: home %q is %s, not freezing", slot.id, h)
	}
	fr, err := home.Freeze()
	if err == nil {
		err = rt.WriteFrozenRecord(fr)
	}
	if err != nil {
		if !slot.sup.Serving() {
			// Poisoned mid-freeze: the dying loop already queued the slot on
			// restartCh; the supervisor owns the rebuild.
			return err
		}
		rebuilt, rerr := s.buildRuntime(slot)
		if rerr != nil {
			return fmt.Errorf("manager: home %q failed to freeze (%v) and to rebuild: %w", slot.id, err, rerr)
		}
		slot.rt.Store(rebuilt)
		return err
	}
	slot.frozen.Store(fr)
	s.setLive(slot, false)
	slot.rt.Store(nil)
	s.m.tel.freezes.Inc()
	if !fr.NextFire.IsZero() {
		s.m.scheduleWake(slot.id, fr.NextFire)
	}
	return nil
}

// slot returns the home's slot, if the shard owns it.
func (s *shard) slot(id HomeID) (*homeSlot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	slot, ok := s.homes[id]
	return slot, ok
}

// has reports whether the shard currently owns the home.
func (s *shard) has(id HomeID) bool {
	_, ok := s.slot(id)
	return ok
}

// snapshot returns a point-in-time copy of the routing map.
func (s *shard) snapshot() map[HomeID]*homeSlot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[HomeID]*homeSlot, len(s.homes))
	for id, slot := range s.homes {
		out[id] = slot
	}
	return out
}

// runPump is the shard's live-clock loop: on every tick it advances the
// simulators of exactly the live homes with an event due at or before now —
// idle homes are skipped entirely (each runtime publishes its next deadline,
// and PumpIfDue also bounds in-flight pumps to one per home), and frozen
// homes are not even visited: the scan walks the live map, not the fleet.
func (s *shard) runPump() {
	defer s.m.wg.Done()
	ticker := time.NewTicker(s.m.cfg.PumpInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.m.stop:
			return
		case <-ticker.C:
			now := time.Now()
			s.mu.RLock()
			for _, slot := range s.live {
				if home := slot.rt.Load(); home != nil {
					home.PumpIfDue(now)
				}
			}
			s.mu.RUnlock()
		}
	}
}

// liveSnapshot returns a point-in-time copy of the live (non-frozen) slots,
// for the idle freezer's scan.
func (s *shard) liveSnapshot() []*homeSlot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*homeSlot, 0, len(s.live))
	for _, slot := range s.live {
		out = append(out, slot)
	}
	return out
}

// closeAll closes every home runtime on this shard (graceful drain) and
// stops accepting new homes.
func (s *shard) closeAll() {
	s.mu.Lock()
	s.closed = true
	slots := make([]*homeSlot, 0, len(s.homes))
	for _, slot := range s.homes {
		slots = append(slots, slot)
	}
	s.mu.Unlock()
	for _, slot := range slots {
		// Frozen homes have no runtime — their final checkpoint already
		// landed; closing the manager costs them nothing.
		if home := slot.rt.Load(); home != nil {
			home.Close()
		}
	}
}

package manager

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/sim"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// shard owns a disjoint subset of the manager's homes. Its run goroutine is
// the only writer of the homes map and of every home's simulator, fleet and
// controller while the manager is open; once Close has drained the shard the
// manager may read the same state inline.
type shard struct {
	m     *Manager
	index int
	ops   chan func()
	homes map[HomeID]*home

	// homeCount mirrors len(homes) for lock-free Status reads.
	homeCount stats.Counter
}

func newShard(m *Manager, index int) *shard {
	return &shard{
		m:     m,
		index: index,
		ops:   make(chan func(), m.cfg.QueueDepth),
		homes: make(map[HomeID]*home),
	}
}

// run is the shard's event loop: execute operations in arrival order and,
// under ClockLive, pump every home's simulator up to the wall clock. When the
// ops channel closes the shard drains every home to quiescence and exits.
func (s *shard) run() {
	defer s.m.wg.Done()
	if s.m.cfg.Clock == ClockLive {
		ticker := time.NewTicker(s.m.cfg.PumpInterval)
		defer ticker.Stop()
		for {
			select {
			case op, ok := <-s.ops:
				if !ok {
					s.drainAll()
					return
				}
				op()
			case <-ticker.C:
				now := time.Now()
				for _, h := range s.homes {
					h.sim.RunUntil(now)
					s.flushEvents(h)
				}
			}
		}
	}
	for op := range s.ops {
		op()
	}
	s.drainAll()
}

// addHome builds a home on this shard. Runs on the shard goroutine.
func (s *shard) addHome(id HomeID, devices []device.Info) error {
	if _, exists := s.homes[id]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateHome, id)
	}
	reg := device.NewRegistry(devices...)
	fleet := device.NewFleet(reg)
	var clock *sim.Sim
	if s.m.cfg.Clock == ClockLive {
		clock = sim.New(time.Now())
	} else {
		clock = sim.NewAtEpoch()
	}
	env := visibility.NewSimEnv(clock, fleet)
	env.ActuationLatency = s.m.cfg.Home.ActuationLatency

	h := &home{
		id:      id,
		shard:   s.index,
		sim:     clock,
		reg:     reg,
		fleet:   fleet,
		created: time.Now(),
	}
	opts := s.m.cfg.Home.options()
	opts.Observer = func(e visibility.Event) {
		switch e.Kind {
		case visibility.EvSubmitted:
			s.m.submitted.Add(s.index, 1)
		case visibility.EvCommitted:
			s.m.committed.Add(s.index, 1)
		case visibility.EvAborted:
			s.m.aborted.Add(s.index, 1)
		}
	}
	h.ctrl = visibility.New(env, fleet.Snapshot(), opts)
	s.homes[id] = h
	s.homeCount.Inc()
	return nil
}

// pump advances a home after a mutating operation: under the virtual clock it
// drains the home's simulator (the operation's routines run to completion at
// virtual speed); under the live clock the ticker advances time instead.
func (s *shard) pump(h *home) {
	if s.m.cfg.Clock == ClockVirtual {
		h.sim.Run()
		s.flushEvents(h)
	}
}

// flushEvents folds the home's newly processed simulator events into the
// manager-wide counter.
func (s *shard) flushEvents(h *home) {
	if p := h.sim.Processed(); p > h.drained {
		s.m.simEvents.Add(s.index, int64(p-h.drained))
		h.drained = p
	}
}

// drainAll finishes every home's in-flight work (graceful shutdown).
func (s *shard) drainAll() {
	for _, h := range s.homes {
		h.sim.Run()
		s.flushEvents(h)
	}
}

// statuses summarizes every home on this shard.
func (s *shard) statuses() []HomeStatus {
	out := make([]HomeStatus, 0, len(s.homes))
	for _, h := range s.homes {
		out = append(out, h.status())
	}
	return out
}

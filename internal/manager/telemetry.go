package manager

import (
	"sync"
	"time"

	"safehome/internal/journal"
	rt "safehome/internal/runtime"
	"safehome/internal/telemetry"
)

// managerTelemetry owns the manager's /metrics surface: the registry, the
// fleet-shared in-loop instruments, the journal stats atomics, and a
// TTL-cached Status so one scrape costs one shard walk at most every
// statusTTL regardless of scrape rate or home count.
type managerTelemetry struct {
	reg  *telemetry.Registry
	loop *rt.LoopMetrics

	// jstats is shared by every home journal and every shard GroupWriter:
	// fleet-wide append/fsync/checkpoint totals with no per-home cardinality.
	jstats journal.Stats

	// Group-commit coalescing shape, observed from the writers' sync cycles.
	cycleBytes   *telemetry.Histogram
	cycleCommits *telemetry.Histogram

	// Hibernation lifecycle.
	freezes     *telemetry.Counter
	wakes       *telemetry.Counter
	wakeSeconds *telemetry.Histogram

	// Status-derived gauges are served from this cache: scraping must never
	// turn into N×(shard walk) under a scrape storm.
	statusMu sync.Mutex
	statusAt time.Time
	status   Status
}

// statusTTL bounds how stale the status-derived gauges may be. Well under
// any sane scrape interval, while capping the walk rate at ~2/s.
const statusTTL = 500 * time.Millisecond

// newManagerTelemetry registers every manager-level family. Called once from
// New, before the shard writers open (they take jstats and the cycle hooks).
func newManagerTelemetry(m *Manager) *managerTelemetry {
	t := &managerTelemetry{reg: telemetry.NewRegistry()}
	t.loop = rt.NewLoopMetrics(t.reg)

	t.reg.CounterFunc("safehome_manager_submitted_total", "Routines accepted across all homes.", m.submitted.Total)
	t.reg.CounterFunc("safehome_manager_committed_total", "Routines committed across all homes.", m.committed.Total)
	t.reg.CounterFunc("safehome_manager_aborted_total", "Routines aborted across all homes.", m.aborted.Total)
	t.reg.CounterFunc("safehome_manager_sim_events_total", "Simulator events processed across all homes.", m.simEvents.Total)

	t.reg.CounterFunc("safehome_supervision_poisons_total", "Home loops torn down by a panic.", m.poisons.Load)
	t.reg.CounterFunc("safehome_supervision_restarts_total", "Supervised restarts that came back clean.", m.restarts.Load)
	t.reg.CounterFunc("safehome_supervision_quarantines_total", "Homes quarantined after exhausting their restart budget.", m.quarantined.Load)

	t.reg.CounterFunc("safehome_journal_appends_total", "Batch records appended to the write-ahead journal, all homes.", t.jstats.Appends.Load)
	t.reg.CounterFunc("safehome_journal_appended_bytes_total", "Framed bytes appended to the write-ahead journal, all homes.", t.jstats.AppendedBytes.Load)
	t.reg.CounterFunc("safehome_journal_fsyncs_total", "Journal data fsyncs: per-home syncs plus shared group-writer cycles.", t.jstats.Fsyncs.Load)
	t.reg.CounterFunc("safehome_journal_checkpoints_total", "Checkpoint images durably published, all homes.", t.jstats.Checkpoints.Load)
	t.reg.GaugeFunc("safehome_journal_checkpoint_age_seconds", "Seconds since the most recent checkpoint anywhere in the fleet (-1 until one lands).", func() float64 {
		last := t.jstats.LastCheckpointUnixNano.Load()
		if last == 0 {
			return -1
		}
		return time.Since(time.Unix(0, last)).Seconds()
	})

	t.cycleBytes = t.reg.Histogram("safehome_journal_group_cycle_bytes",
		"Bytes made durable per shared-writer fsync cycle (the group-commit coalescing factor in bytes).",
		telemetry.ExponentialBuckets(256, 4, 10))
	t.cycleCommits = t.reg.Histogram("safehome_journal_group_cycle_commits",
		"Commit tickets released per shared-writer fsync cycle (how many homes' commits rode one fsync).",
		telemetry.ExponentialBuckets(1, 2, 10))

	t.freezes = t.reg.Counter("safehome_hibernation_freezes_total", "Homes collapsed to a frozen checkpoint.")
	t.wakes = t.reg.Counter("safehome_hibernation_wakes_total", "Frozen homes reanimated from checkpoint + journal tail.")
	t.wakeSeconds = t.reg.Histogram("safehome_hibernation_wake_seconds",
		"Wall-clock latency of reanimating a frozen home, entry to runtime published.",
		telemetry.DefBuckets())

	t.reg.Collect(m.collectStatusGauges)
	return t
}

// onCycle feeds one shared-writer fsync cycle into the coalescing
// histograms. Called from the writer's syncLoop with its lock held, so it
// must stay a pair of plain observations.
func (t *managerTelemetry) onCycle(bytes int64, commits int) {
	t.cycleBytes.Observe(float64(bytes))
	t.cycleCommits.Observe(float64(commits))
}

// cachedStatus returns a Status at most statusTTL old, walking the shards
// only when the cache has expired.
func (m *Manager) cachedStatus() Status {
	t := m.tel
	t.statusMu.Lock()
	defer t.statusMu.Unlock()
	if !t.statusAt.IsZero() && time.Since(t.statusAt) < statusTTL {
		return t.status
	}
	t.status = m.Status()
	t.statusAt = time.Now()
	return t.status
}

// collectStatusGauges emits the families whose values come from the cached
// shard walk: home counts by state and the fleet mailbox totals.
func (m *Manager) collectStatusGauges(e *telemetry.Emitter) {
	st := m.cachedStatus()
	live := st.Homes - st.Frozen
	if live < 0 {
		live = 0
	}
	e.Family("safehome_homes", telemetry.TypeGauge, "Registered homes by lifecycle state: live (runtime resident), frozen (hibernated to checkpoint), restarting (supervisor rebuilding now).")
	e.Value(float64(live), "state", "live")
	e.Value(float64(st.Frozen), "state", "frozen")
	e.Value(float64(m.restartingNow.Load()), "state", "restarting")

	e.Family("safehome_mailbox_accepted_total", telemetry.TypeCounter, "Operations accepted into home mailboxes, all homes (sampled at most every 500ms).")
	e.Value(float64(st.Accepted))
	e.Family("safehome_mailbox_rejected_total", telemetry.TypeCounter, "Operations shed (HTTP 429) by full home mailboxes, all homes (sampled at most every 500ms).")
	e.Value(float64(st.Rejected))
	e.Family("safehome_mailbox_depth", telemetry.TypeGauge, "Operations currently queued across all home mailboxes.")
	e.Value(float64(st.Depth))
}

// Telemetry returns the manager's metrics registry — the handler behind
// `GET /metrics` in manager mode.
func (m *Manager) Telemetry() *telemetry.Registry { return m.tel.reg }

package manager

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"safehome/internal/device"
	"safehome/internal/journal"
	rt "safehome/internal/runtime"
)

// countDataDirFDs counts this process's open file descriptors that resolve
// into dir (journal segments, locks, checkpoints).
func countDataDirFDs(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	n := 0
	for _, e := range entries {
		target, err := os.Readlink("/proc/self/fd/" + e.Name())
		if err != nil {
			continue
		}
		if strings.HasPrefix(target, dir) {
			n++
		}
	}
	return n
}

// TestGroupModeFDsScaleWithShardsNotHomes is the fd-bounding guarantee of
// the shared journal writer: a manager running many journaled homes in group
// mode holds one active segment (plus one shared lock) per shard — not one
// segment and one lock per home, which is what caps tenant counts under
// sync mode. 1000 homes on 4 shards must stay within a few fds of
// 2*shards, not anywhere near O(homes).
func TestGroupModeFDsScaleWithShardsNotHomes(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd accounting reads /proc/self/fd")
	}
	if testing.Short() {
		t.Skip("builds 1000 journaled homes")
	}
	const shards, homes = 4, 1000
	dir := t.TempDir()
	m := New(Config{
		Shards:     shards,
		DataDir:    dir,
		Journal:    journal.Options{Mode: journal.ModeGroup},
		Supervisor: rt.SupervisorConfig{Disable: true},
	})
	defer m.Close()
	if st := m.Status(); st.DurabilityError != "" {
		t.Fatalf("group writers degraded: %s", st.DurabilityError)
	}
	if _, err := m.AddHomes("home", homes, 1); err != nil {
		t.Fatal(err)
	}
	// Drive a few homes so segments are genuinely live, not lazily absent.
	for i := 0; i < shards; i++ {
		id := HomeID(fmt.Sprintf("home-%d", i))
		if _, err := m.Submit(id, plugRoutine("probe", device.On, 0)); err != nil {
			t.Fatalf("submit to %s: %v", id, err)
		}
	}
	got := countDataDirFDs(t, dir)
	if limit := 2*shards + 4; got > limit {
		t.Errorf("open fds under %s = %d with %d homes, want <= %d (O(shards), not O(homes))", dir, got, homes, limit)
	}
}

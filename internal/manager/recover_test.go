package manager

import (
	"fmt"
	"testing"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

func durableManager(dir string) *Manager {
	return New(Config{
		Shards:   2,
		DataDir:  dir,
		EventLog: 32,
		Home:     HomeConfig{Model: visibility.EV},
	})
}

func durableRoutine(n int) *routine.Routine {
	r := routine.New(fmt.Sprintf("r-%d", n))
	r.Commands = append(r.Commands,
		routine.Command{Device: device.ID(fmt.Sprintf("plug-%d", n%3)), Target: device.On},
		routine.Command{Device: device.ID(fmt.Sprintf("plug-%d", (n+1)%3)), Target: device.Off},
	)
	return r
}

// TestManagerRecoversAllHomesOnBoot: a durable manager persists home
// metadata and journals; a fresh manager over the same data dir rediscovers
// every home with its history and keeps serving it.
func TestManagerRecoversAllHomesOnBoot(t *testing.T) {
	dir := t.TempDir()
	m := durableManager(dir)
	ids, err := m.AddHomes("home", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[HomeID]int)
	for i, id := range ids {
		for k := 0; k <= i; k++ { // home-i gets i+1 routines
			if _, err := m.Submit(id, durableRoutine(k)); err != nil {
				t.Fatal(err)
			}
			want[id]++
		}
	}
	m.Close()

	m2 := durableManager(dir)
	defer m2.Close()
	recovered, err := m2.RecoverHomes()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != len(ids) {
		t.Fatalf("recovered %d homes, want %d (%v)", len(recovered), len(ids), recovered)
	}
	for id, n := range want {
		results, err := m2.Results(id)
		if err != nil {
			t.Fatalf("home %s lost: %v", id, err)
		}
		if len(results) != n {
			t.Fatalf("home %s recovered %d results, want %d", id, len(results), n)
		}
		for _, res := range results {
			if res.Status != visibility.StatusCommitted {
				t.Fatalf("home %s routine %d recovered as %s", id, res.ID, res.Status)
			}
		}
		// The home keeps serving: the ID sequence continues.
		rid, err := m2.Submit(id, durableRoutine(9))
		if err != nil {
			t.Fatal(err)
		}
		if rid != routine.ID(n+1) {
			t.Fatalf("home %s post-recovery ID = %d, want %d", id, rid, n+1)
		}
	}
	// RecoverHomes is idempotent on a warm manager.
	again, err := m2.RecoverHomes()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("second RecoverHomes recovered %v", again)
	}
}

// TestManagerRecoversCrashedHome kills one home's runtime without a graceful
// drain; a fresh manager recovers it from its journal tail.
func TestManagerRecoversCrashedHome(t *testing.T) {
	dir := t.TempDir()
	m := durableManager(dir)
	if err := m.AddHome("casa", device.Plugs(3).All()...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := m.Submit("casa", durableRoutine(i)); err != nil {
			t.Fatal(err)
		}
	}
	home, err := m.Runtime("casa")
	if err != nil {
		t.Fatal(err)
	}
	states := home.CommittedStates()
	home.Crash()
	m.Close() // idempotent over the crashed home

	m2 := durableManager(dir)
	defer m2.Close()
	if _, err := m2.RecoverHomes(); err != nil {
		t.Fatal(err)
	}
	results, err := m2.Results("casa")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("recovered %d results, want 7", len(results))
	}
	rec, err := m2.Runtime("casa")
	if err != nil {
		t.Fatal(err)
	}
	for d, s := range states {
		if got, _ := rec.Snapshot().CommittedState(d); got != s {
			t.Fatalf("committed state of %s = %q, want %q", d, got, s)
		}
	}
}

// TestDotHomeIDsRejected: "." and ".." survive path escaping unchanged and
// would resolve into (or above) the homes/ root, so they are invalid IDs.
func TestDotHomeIDsRejected(t *testing.T) {
	m := durableManager(t.TempDir())
	defer m.Close()
	for _, id := range []HomeID{".", ".."} {
		if err := m.AddHome(id, device.Plugs(1).All()...); err == nil {
			t.Fatalf("AddHome(%q) succeeded", id)
		}
	}
}

// TestHomeIDsArePathEscaped: tenant-chosen IDs with path separators must not
// escape the manager's data directory.
func TestHomeIDsArePathEscaped(t *testing.T) {
	dir := t.TempDir()
	m := durableManager(dir)
	id := HomeID("../../evil/home")
	if err := m.AddHome(id, device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(id, durableRoutine(0)); err != nil {
		t.Fatal(err)
	}
	m.Close() // release the home's journal lock before the successor opens it

	m2 := durableManager(dir)
	defer m2.Close()
	recovered, err := m2.RecoverHomes()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != id {
		t.Fatalf("recovered %v, want [%q]", recovered, id)
	}
}

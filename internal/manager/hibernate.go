package manager

import (
	"container/heap"
	"fmt"
	"os"
	"strings"
	"time"

	rt "safehome/internal/runtime"
)

// This file is the manager half of hibernation (see internal/runtime's
// freeze.go for the per-home half): the idle freezer that collapses quiet
// homes to FrozenHome records, the singleflight wake path behind every
// touch of a frozen home, and the manager-level deadline heap that fires
// scheduled triggers of frozen homes on time — the only resident cost a
// hibernated home with a pending alarm imposes is one 24-byte heap entry.

// wakeChurnGuard keeps the freezer from hibernating a home whose next
// simulator event is imminent — freezing it would just bounce it back
// through a checkpoint-load within a second.
const wakeChurnGuard = time.Second

// FreezeHome hibernates one home now, regardless of idleness: the graceful
// Close drains its mailbox and finishes in-flight work, the final
// checkpoint lands, and the slot collapses to a FrozenHome record. Returns
// an error if the home is unknown, unhealthy, or the manager is memory-only
// (nothing durable to wake from). Freezing an already frozen home is a
// no-op.
func (m *Manager) FreezeHome(id HomeID) error {
	if m.cfg.DataDir == "" {
		return fmt.Errorf("manager: cannot freeze home %q without a data directory", id)
	}
	slot, err := m.slotOf(id)
	if err != nil {
		return err
	}
	return m.shards[m.ShardOf(id)].freeze(slot)
}

// FreezeIdle hibernates every healthy home that has been idle (no admitted
// mutating operation) at least olderThan and is quiescent: empty mailbox,
// no pending or active routines, and no simulator event due within the
// churn guard. It returns the number of homes frozen. The automatic
// freezer calls this with Config.HibernateAfter; tests and operators can
// call it directly with any threshold (olderThan 0 freezes everything
// quiescent).
func (m *Manager) FreezeIdle(olderThan time.Duration) int {
	if m.cfg.DataDir == "" {
		return 0
	}
	frozen := 0
	cutoff := time.Now().Add(-olderThan)
	for _, sh := range m.shards {
		for _, slot := range sh.liveSnapshot() {
			home := slot.rt.Load()
			if home == nil || !slot.sup.Serving() || home.JournalError() != nil {
				continue
			}
			if home.IdleSince().After(cutoff) {
				continue
			}
			if home.Mailbox().Depth != 0 {
				continue
			}
			c := home.Counts()
			if c.Pending != 0 || c.Active != 0 {
				continue
			}
			if due := home.NextDueAt(); !due.IsZero() && due.Before(c.Now.Add(wakeChurnGuard)) {
				continue // an event is about to fire; freezing now is churn
			}
			if sh.freeze(slot) == nil {
				frozen++
			}
		}
	}
	return frozen
}

// runFreezer is the manager's hibernation loop (started under ClockLive
// when Config.HibernateAfter is set): it periodically sweeps the live
// homes and freezes the ones idle past the threshold. The sweep walks only
// live slots, so a mostly frozen fleet costs almost nothing to scan.
func (m *Manager) runFreezer() {
	defer m.wg.Done()
	interval := m.cfg.HibernateAfter / 4
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.FreezeIdle(m.cfg.HibernateAfter)
		}
	}
}

// reanimate is the retry half of the submit-racing-freeze contract: a
// mutating method that loaded a runtime just as the freezer closed it gets
// ErrClosed back; one pass through the wake path (which serializes behind
// the in-flight freeze on the slot's wakeMu) yields the next generation.
// If the wake hands back the same runtime the operation already failed on,
// the home is genuinely closed — the error stands.
func (m *Manager) reanimate(id HomeID, stale *rt.HomeRuntime) (*rt.HomeRuntime, error) {
	if m.cfg.DataDir == "" {
		return nil, ErrClosed
	}
	slot, err := m.slotOf(id)
	if err != nil {
		return nil, err
	}
	home, err := m.shards[m.ShardOf(id)].wake(slot)
	if err != nil {
		return nil, err
	}
	if home == stale {
		return nil, ErrClosed
	}
	return home, nil
}

// wakeEntry is one frozen home's earliest scheduled-trigger deadline.
type wakeEntry struct {
	id HomeID
	at time.Time
}

// wakeHeap is a min-heap of wake deadlines (container/heap).
type wakeHeap []wakeEntry

func (h wakeHeap) Len() int            { return len(h) }
func (h wakeHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h wakeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x interface{}) { *h = append(*h, x.(wakeEntry)) }
func (h *wakeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// scheduleWake records that the home must be awake by the given time (its
// earliest retired trigger deadline) and kicks the waker if this deadline
// is now the soonest. Stale entries — the home woke for other reasons, or
// froze again with a new deadline — are skipped lazily by the waker: waking
// an already live home is a single atomic load.
func (m *Manager) scheduleWake(id HomeID, at time.Time) {
	if at.IsZero() {
		return
	}
	m.wakeQMu.Lock()
	heap.Push(&m.wakeQ, wakeEntry{id: id, at: at})
	m.wakeQMu.Unlock()
	select {
	case m.wakeKick <- struct{}{}:
	default:
	}
}

// runWaker sleeps until the earliest wake deadline and reanimates the due
// homes, so a frozen home's scheduled trigger fires on time: the wake is
// ordinary journal recovery, which re-arms a due trigger with zero delay,
// and the freshly published deadline makes the shard pumper fire it on its
// next tick.
func (m *Manager) runWaker() {
	defer m.wg.Done()
	const parked = time.Hour // re-check at least hourly even with no kick
	timer := time.NewTimer(parked)
	defer timer.Stop()
	for {
		m.wakeQMu.Lock()
		now := time.Now()
		wait := parked
		var due []HomeID
		for len(m.wakeQ) > 0 {
			next := m.wakeQ[0]
			if next.at.After(now) {
				wait = next.at.Sub(now)
				break
			}
			heap.Pop(&m.wakeQ)
			due = append(due, next.id)
		}
		m.wakeQMu.Unlock()
		for _, id := range due {
			// Runtime wakes a frozen home and is a no-op on a live one;
			// errors (home removed, manager closing) are not the waker's to
			// handle — the deadline is consumed either way.
			_, _ = m.Runtime(id)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-m.stop:
			return
		case <-m.wakeKick:
		case <-timer.C:
		}
	}
}

// hasJournalState reports whether a home's data directory holds durable
// runtime state (WAL segments, a checkpoint, or sealed chunks). A home
// directory without it — just home.json — can be registered cold: waking
// it builds an empty home, exactly what building it eagerly would produce.
func hasJournalState(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".ckpt") {
			return true
		}
	}
	return false
}

// coldRecord decides whether a home can be registered frozen and returns
// the record to register it with: the durable frozen marker if one exists
// (a cleanly hibernated home — stay cold, wake on demand), or a synthetic
// record for a state-less directory. A directory with journal state but no
// marker crashed live and must recover live — returns nil.
func (m *Manager) coldRecord(id HomeID, devices int) (*rt.FrozenHome, error) {
	dir := m.homeDir(id)
	fr, err := rt.ReadFrozenRecord(dir)
	if err != nil {
		return nil, err
	}
	if fr != nil {
		return fr, nil
	}
	if hasJournalState(dir) {
		return nil, nil
	}
	now := time.Now()
	return &rt.FrozenHome{
		ID:       string(id),
		DataDir:  dir,
		Model:    m.cfg.Home.Model.String(),
		Devices:  devices,
		Created:  now,
		FrozenAt: now,
	}, nil
}

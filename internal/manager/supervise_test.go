package manager

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"safehome/internal/device"
	rt "safehome/internal/runtime"
	"safehome/internal/visibility"
)

// fastSupervisor keeps restart latency test-friendly.
func fastSupervisor() rt.SupervisorConfig {
	return rt.SupervisorConfig{Backoff: 2 * time.Millisecond, BackoffCap: 20 * time.Millisecond}
}

func panicHome(t *testing.T, m *Manager, id HomeID) {
	t.Helper()
	home, err := m.Runtime(id)
	if err != nil {
		t.Fatalf("Runtime(%s): %v", id, err)
	}
	home.PostTimer(func() { panic("test: injected fault") })
}

// waitRestarted waits until the home has completed at least one supervised
// restart and serves healthy again. Polling for HealthOK alone would race:
// the home starts out ok, so the poll could win before the poison lands.
func waitRestarted(t *testing.T, m *Manager, id HomeID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.HomeStatus(id)
		if err != nil {
			t.Fatalf("HomeStatus(%s): %v", id, err)
		}
		if st.Restarts >= 1 && st.Health == rt.HealthOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("home %s never restarted: health=%s restarts=%d", id, st.Health, st.Restarts)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitHealth(t *testing.T, m *Manager, id HomeID, want rt.HomeHealth) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.HomeStatus(id)
		if err != nil {
			t.Fatalf("HomeStatus(%s): %v", id, err)
		}
		if st.Health == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("home %s health = %s, want %s", id, st.Health, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPanickedHomeRestartsFromJournal(t *testing.T) {
	m := New(Config{Shards: 1, DataDir: t.TempDir(), Supervisor: fastSupervisor()})
	defer m.Close()
	ids, err := m.AddHomes("h", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	victim, bystander := ids[0], ids[1]

	rid, err := m.Submit(victim, plugRoutine("acked", device.On, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	panicHome(t, m, victim)
	waitRestarted(t, m, victim)

	// The restarted home recovered its acknowledged work from the journal.
	res, ok, err := m.Result(victim, rid)
	if err != nil || !ok || res.Status != visibility.StatusCommitted {
		t.Errorf("post-restart Result = %+v, %v, %v; want the pre-panic commit", res, ok, err)
	}
	if _, err := m.Submit(victim, plugRoutine("fresh", device.Off, 2)); err != nil {
		t.Errorf("Submit to restarted home: %v", err)
	}
	st, err := m.HomeStatus(victim)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restarts < 1 {
		t.Errorf("victim restarts = %d, want >= 1", st.Restarts)
	}

	// The bystander on the same shard was untouched.
	if _, err := m.Submit(bystander, plugRoutine("calm", device.On, 0)); err != nil {
		t.Errorf("Submit to bystander during/after restart: %v", err)
	}
	bst, err := m.HomeStatus(bystander)
	if err != nil {
		t.Fatal(err)
	}
	if bst.Health != rt.HealthOK || bst.Restarts != 0 {
		t.Errorf("bystander health=%s restarts=%d, want ok/0", bst.Health, bst.Restarts)
	}

	status := m.Status()
	if status.Poisons < 1 || status.Restarts < 1 {
		t.Errorf("manager totals poisons=%d restarts=%d, want >= 1 each", status.Poisons, status.Restarts)
	}
}

func TestMemoryOnlyHomeRestartsEmptyButAlive(t *testing.T) {
	m := New(Config{Shards: 1, Supervisor: fastSupervisor()}) // no DataDir
	defer m.Close()
	ids, err := m.AddHomes("h", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	id := ids[0]
	if _, err := m.Submit(id, plugRoutine("lost", device.On, 0)); err != nil {
		t.Fatal(err)
	}
	panicHome(t, m, id)
	waitRestarted(t, m, id)

	results, err := m.Results(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("memory-only home recovered %d results, want a fresh empty home", len(results))
	}
	if _, err := m.Submit(id, plugRoutine("fresh", device.On, 1)); err != nil {
		t.Errorf("Submit to restarted memory-only home: %v", err)
	}
}

func TestRestartingHomeRejectsUntilServing(t *testing.T) {
	// A long backoff holds the home in "restarting" so the rejection window
	// is observable; other homes keep serving throughout.
	m := New(Config{Shards: 1, Supervisor: rt.SupervisorConfig{
		Backoff: 300 * time.Millisecond, BackoffCap: 300 * time.Millisecond}})
	defer m.Close()
	ids, err := m.AddHomes("h", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	panicHome(t, m, ids[0])

	deadline := time.Now().Add(5 * time.Second)
	sawRestarting := false
	for !sawRestarting {
		if time.Now().After(deadline) {
			t.Fatal("never observed the restarting window")
		}
		_, err := m.Runtime(ids[0])
		if errors.Is(err, ErrRestarting) {
			sawRestarting = true
		}
		time.Sleep(time.Millisecond)
	}
	st, err := m.HomeStatus(ids[0])
	if err != nil {
		t.Fatalf("HomeStatus during restart: %v", err)
	}
	if st.Health != rt.HealthRestarting {
		t.Errorf("health during backoff = %s, want restarting", st.Health)
	}
	if st.LastError == "" {
		t.Error("restarting home reports no last_error")
	}
	if _, err := m.Submit(ids[1], plugRoutine("calm", device.On, 0)); err != nil {
		t.Errorf("bystander submit during restart: %v", err)
	}
	waitRestarted(t, m, ids[0])
}

func TestQuarantineAfterRestartBudget(t *testing.T) {
	m := New(Config{Shards: 1, Supervisor: rt.SupervisorConfig{
		MaxRestarts: -1, // quarantine on the first poison
		Backoff:     time.Millisecond,
	}})
	defer m.Close()
	ids, err := m.AddHomes("h", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	id := ids[0]
	panicHome(t, m, id)
	waitHealth(t, m, id, rt.HealthQuarantined)

	if _, err := m.Runtime(id); !errors.Is(err, ErrQuarantined) {
		t.Errorf("Runtime on quarantined home = %v, want ErrQuarantined", err)
	}
	if _, err := m.Submit(id, plugRoutine("refused", device.On, 0)); !errors.Is(err, ErrQuarantined) {
		t.Errorf("Submit to quarantined home = %v, want ErrQuarantined", err)
	}
	// The quarantined home still shows up in listings with its state.
	st, err := m.HomeStatus(id)
	if err != nil {
		t.Fatalf("HomeStatus on quarantined home: %v", err)
	}
	if st.Health != rt.HealthQuarantined {
		t.Errorf("health = %s, want quarantined", st.Health)
	}
	status := m.Status()
	if status.Quarantined != 1 {
		t.Errorf("Status.Quarantined = %d, want 1", status.Quarantined)
	}
}

func TestSupervisionDisabledLeavesHomeDown(t *testing.T) {
	m := New(Config{Shards: 1, Supervisor: rt.SupervisorConfig{Disable: true}})
	defer m.Close()
	ids, err := m.AddHomes("h", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	home, err := m.Runtime(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	home.PostTimer(func() { panic("test: unsupervised fault") })
	deadline := time.Now().Add(5 * time.Second)
	for !home.Poisoned() {
		if time.Now().After(deadline) {
			t.Fatal("panic never poisoned the home")
		}
		time.Sleep(time.Millisecond)
	}
	// No supervisor: the home stays down and mutations keep failing.
	time.Sleep(20 * time.Millisecond)
	if _, err := m.Submit(ids[0], plugRoutine("down", device.On, 0)); err == nil {
		t.Error("Submit to an unsupervised poisoned home succeeded")
	}
}

// TestPoisonForensicsSurfaceAndClear: a panic's forensics (message + stack)
// surface in the home's Status as last_poison and persist to the home dir's
// poison.json; a clean supervised restart retires both — the operator sees
// *why* the home died for exactly as long as the symptom is unresolved.
func TestPoisonForensicsSurfaceAndClear(t *testing.T) {
	dir := t.TempDir()

	// Supervision off: the poison stays visible instead of being healed away.
	m := New(Config{Shards: 1, DataDir: dir, Supervisor: rt.SupervisorConfig{Disable: true}})
	id := HomeID("victim")
	if err := m.AddHome(id, device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	home, err := m.Runtime(id)
	if err != nil {
		t.Fatal(err)
	}
	home.PostTimer(func() { panic("test: forensic fault") })
	deadline := time.Now().Add(5 * time.Second)
	for home.PoisonRecord() == nil {
		if time.Now().After(deadline) {
			t.Fatal("panic never produced a poison record")
		}
		time.Sleep(time.Millisecond)
	}
	st, err := m.HomeStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastPoison == nil || !strings.Contains(st.LastPoison.Message, "forensic fault") || st.LastPoison.Stack == "" {
		t.Fatalf("HomeStatus.LastPoison = %+v, want the panic's message and stack", st.LastPoison)
	}
	if rec := rt.LoadPoisonRecord(filepath.Join(dir, "homes", string(id))); rec == nil {
		t.Error("poison.json missing from the home's data dir")
	}
	m.Close()

	// A fresh manager over the same data sees the record before any restart
	// (the forensics survive the process), and a clean supervised restart
	// clears it.
	m2 := New(Config{Shards: 1, DataDir: dir, Supervisor: fastSupervisor()})
	defer m2.Close()
	if recovered, err := m2.RecoverHomes(); err != nil || len(recovered) != 1 {
		t.Fatalf("RecoverHomes = %v, %v; want the victim back", recovered, err)
	}
	st, err = m2.HomeStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastPoison == nil {
		t.Fatal("restarted manager lost the persisted poison record")
	}
	panicHome(t, m2, id)
	waitRestarted(t, m2, id)
	st, err = m2.HomeStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastPoison != nil {
		t.Errorf("LastPoison = %+v after a clean supervised restart, want nil", st.LastPoison)
	}
	if rec := rt.LoadPoisonRecord(filepath.Join(dir, "homes", string(id))); rec != nil {
		t.Errorf("poison.json survived a clean supervised restart: %+v", rec)
	}
}

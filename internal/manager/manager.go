// Package manager scales SafeHome from one home to many: a sharded,
// multi-tenant HomeManager that owns N independent homes, each one a
// self-contained home runtime (internal/runtime) with its own visibility
// controller, device fleet, clock and typed operation mailbox, partitioned
// across worker shards.
//
// Every home is hashed to one shard (FNV-1a of the home ID modulo the shard
// count) and every operation on that home — submitting a routine, injecting
// a failure, reading results — is a typed op posted into the home's mailbox
// and applied by the home's single loop goroutine. This preserves the
// visibility controllers' single-threaded execution contract (see
// internal/visibility) without any per-home locking, and adds admission
// control: when a home's mailbox is full, mutating operations return
// ErrOverloaded (HTTP 429 through hub.ManagerHandler) instead of blocking
// callers indefinitely.
//
// Shards are thin owners: each one holds the routing map for its subset of
// homes, a lane in the lock-free cross-shard counters (internal/stats), and
// — under ClockLive — the pumper goroutine that advances its homes'
// simulators to the wall clock, skipping homes with no simulator event due.
//
// Homes run on either a virtual or a live clock:
//
//   - ClockVirtual: each mutating operation drains the home's discrete-event
//     simulator, so a 40-minute routine finishes in microseconds of real
//     time. This is the mode the multi-tenant experiments and benchmarks use.
//   - ClockLive: each shard's pumper advances its homes' simulators up to the
//     wall clock on a fixed interval, so a routine scheduled 5 s out fires
//     5 s later in real time. This is the mode the multi-tenant hub serves.
//
// See ARCHITECTURE.md at the repository root for how the manager layers
// between the public API and the per-home runtime/visibility machinery.
package manager

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/routine"
	rt "safehome/internal/runtime"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// HomeID identifies one tenant home within a manager.
type HomeID string

// Clock selects how a manager's homes experience time.
type Clock int

const (
	// ClockVirtual drains each home's simulator after every operation:
	// routines run to completion at virtual speed. Best for experiments,
	// benchmarks and tests.
	ClockVirtual Clock = iota
	// ClockLive advances each home's simulator to the wall clock on a pump
	// interval: routines take real time. Best for serving the HTTP API.
	ClockLive
)

func (c Clock) String() string {
	switch c {
	case ClockVirtual:
		return "virtual"
	case ClockLive:
		return "live"
	default:
		return fmt.Sprintf("clock(%d)", int(c))
	}
}

// Errors returned by manager operations.
var (
	// ErrClosed is returned by mutating calls after Close (aliased from the
	// home runtime, which reports it for per-home operations).
	ErrClosed = rt.ErrClosed
	// ErrOverloaded is returned when a home's mailbox is full and a mutating
	// operation was load-shed; callers should back off and retry (HTTP 429).
	ErrOverloaded = rt.ErrOverloaded
	// ErrUnknownHome is returned (wrapped, with the ID) for missing homes.
	ErrUnknownHome = errors.New("manager: unknown home")
	// ErrDuplicateHome is returned (wrapped) when re-adding an existing home.
	ErrDuplicateHome = errors.New("manager: home already exists")
	// ErrPoisoned is returned to operations parked in a home whose loop
	// panicked (aliased from the home runtime).
	ErrPoisoned = rt.ErrPoisoned
	// ErrRestarting is returned (wrapped, with the ID) while a poisoned home
	// is being restarted by its shard's supervisor; callers should back off
	// and retry (HTTP 503 with Retry-After).
	ErrRestarting = errors.New("manager: home is restarting")
	// ErrQuarantined is returned (wrapped, with the ID) for a home taken out
	// of service after exhausting its restart budget.
	ErrQuarantined = errors.New("manager: home is quarantined")
)

// HomeConfig selects the visibility model and tuning knobs applied to every
// home the manager creates.
type HomeConfig struct {
	// Model is the visibility model (default EV; zero value WV is remapped —
	// a multi-tenant deployment that wants WV must say so via ExplicitWV).
	Model visibility.Model
	// ExplicitWV keeps Model = WV instead of defaulting it to EV.
	ExplicitWV bool
	// Scheduler is the EV scheduling policy (default Timeline).
	Scheduler visibility.SchedulerKind
	// DefaultShort is the assumed hold of zero-duration commands.
	DefaultShort time.Duration
	// ActuationLatency adds a fixed per-command latency, modelling
	// device/network round trips.
	ActuationLatency time.Duration
}

// Config configures a Manager.
type Config struct {
	// Shards is the number of worker shards (default 4, minimum 1).
	Shards int
	// QueueDepth bounds each home's operation mailbox (default 128). A full
	// mailbox sheds mutating operations with ErrOverloaded.
	QueueDepth int
	// Batch is the maximum operations a home's loop drains per wakeup
	// (default 32), amortizing channel signaling under load.
	Batch int
	// Clock selects virtual or live time (default ClockVirtual).
	Clock Clock
	// PumpInterval is the live-clock advance period (default 10 ms).
	PumpInterval time.Duration
	// ReadConsistency selects how per-home queries are answered (default
	// rt.ReadSnapshot: a burst of status polls costs the home loops
	// nothing). rt.ReadLinearizable restores mailbox-posted queries.
	ReadConsistency rt.ReadConsistency
	// EventLog caps each home's in-memory activity log; 0 (the default)
	// disables per-home event logs — at millions of homes the memory is
	// better spent elsewhere. Enable it to serve /homes/{id}/events.
	EventLog int
	// DataDir enables durability: every home persists its metadata and a
	// write-ahead journal under <DataDir>/homes/<id>, and RecoverHomes
	// rediscovers and recovers all of them on the next boot (finished
	// results, committed states and event cursors come back exactly;
	// routines in flight at the crash come back Aborted). Empty keeps the
	// manager memory-only.
	DataDir string
	// Journal tunes every home's write-ahead journal; only meaningful with
	// DataDir set. Journal.Mode selects the durability tier — the manager
	// defaults it to group (many homes per shard is exactly what group
	// commit is for): homes share one segment stream per shard under
	// <DataDir>/wal, coalescing their commits into one fsync cycle. Mode
	// sync restores per-home segments and per-home fsyncs; async
	// acknowledges ahead of the disk behind Journal.AsyncWindowBytes.
	Journal journal.Options
	// HibernateAfter enables hibernation: a healthy home idle this long —
	// no admitted mutating operation, empty mailbox, nothing pending or
	// active, no simulator event imminent — takes a final checkpoint and
	// collapses to a frozen record of a few hundred bytes; any submit,
	// query or due trigger deadline reanimates it from checkpoint + journal
	// tail. With it set, AddHome registers state-less and cleanly
	// hibernated homes cold (no runtime until first touch), which is what
	// lets one process hold millions of registered homes. Requires DataDir
	// (a memory-only home has nothing to wake from); the automatic idle
	// sweep runs under ClockLive, while FreezeIdle/FreezeHome work under
	// any clock. 0 disables hibernation.
	HibernateAfter time.Duration
	// Supervisor tunes panic recovery: a home whose loop panics is poisoned,
	// torn down, and restarted by its shard's supervisor (from its journal
	// when durable, empty otherwise) with capped exponential backoff, then
	// quarantined after MaxRestarts consecutive failures. The zero value
	// enables supervision with defaults; set Supervisor.Disable to let a
	// panic unwind the process instead (useful in tests hunting bugs).
	Supervisor rt.SupervisorConfig
	// Home configures every home the manager creates.
	Home HomeConfig
}

func (c Config) normalized() Config {
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = rt.DefaultMailboxDepth
	}
	if c.Batch < 1 {
		c.Batch = rt.DefaultBatch
	}
	if c.PumpInterval <= 0 {
		c.PumpInterval = 10 * time.Millisecond
	}
	if c.Home.Model == visibility.WV && !c.Home.ExplicitWV {
		c.Home.Model = visibility.EV
	}
	if c.DataDir == "" {
		c.HibernateAfter = 0 // nothing durable to wake from
	}
	return c
}

// hibernating reports whether the manager registers and parks homes cold.
func (m *Manager) hibernating() bool { return m.cfg.HibernateAfter > 0 }

// Manager owns and schedules many independent home runtimes across worker
// shards. All methods are safe for concurrent use. After Close, mutating
// methods return ErrClosed and read-only methods answer from the quiesced
// state.
type Manager struct {
	cfg    Config
	shards []*shard

	stop chan struct{} // closed to stop the live-clock pumpers
	wg   sync.WaitGroup

	mu     sync.Mutex // serializes Close
	closed bool

	since time.Time

	// Lock-free cross-shard totals; one lane per shard.
	submitted *stats.ShardedCounter
	committed *stats.ShardedCounter
	aborted   *stats.ShardedCounter
	simEvents *stats.ShardedCounter

	// Supervision totals across all shards. restartingNow is the number of
	// supervised rebuilds in flight right now (a gauge, not a total).
	poisons       atomic.Int64
	restarts      atomic.Int64
	quarantined   atomic.Int64
	restartingNow atomic.Int64

	// tel is the /metrics surface: registry, fleet-shared loop instruments,
	// journal stats, and the TTL-cached status gauges.
	tel *managerTelemetry

	// Durability tier wiring: in group/async mode every journaled home on
	// shard i appends through writers[i % len(writers)] — one shared segment
	// stream and one fsync cycle per writer instead of one per home, with at
	// most min(shards, GOMAXPROCS) writers. writerErr records a failed writer
	// fleet open; the manager then degrades to sync mode.
	durability journal.Mode
	writers    []*journal.GroupWriter
	writerErr  error

	// Hibernation wiring: the deadline heap of frozen homes' earliest
	// scheduled-trigger deadlines, drained by the waker goroutine so a
	// hibernated home's alarm still fires on time.
	wakeQMu  sync.Mutex
	wakeQ    wakeHeap
	wakeKick chan struct{}
}

// New builds and starts a manager. The returned manager has no homes; add
// them with AddHome or AddHomes.
func New(cfg Config) *Manager {
	cfg = cfg.normalized()
	m := &Manager{
		cfg:       cfg,
		stop:      make(chan struct{}),
		since:     time.Now(),
		submitted: stats.NewShardedCounter(cfg.Shards),
		committed: stats.NewShardedCounter(cfg.Shards),
		aborted:   stats.NewShardedCounter(cfg.Shards),
		simEvents: stats.NewShardedCounter(cfg.Shards),
		wakeKick:  make(chan struct{}, 1),
	}
	m.tel = newManagerTelemetry(m)
	if cfg.DataDir != "" {
		m.durability = journal.ResolveMode(cfg.Journal, journal.ModeGroup)
		if m.durability != journal.ModeSync {
			// One writer per shard, but never more than GOMAXPROCS: each
			// in-flight fsync burns a core's worth of kernel journaling time,
			// so extra streams past the core count only raise the fsync rate
			// without adding parallelism — fewer, busier writers coalesce
			// more commits per fsync. Shards then share writers round-robin.
			nw := min(cfg.Shards, runtime.GOMAXPROCS(0))
			writers, err := journal.OpenWriters(filepath.Join(cfg.DataDir, "wal"), nw, journal.WriterOptions{
				SegmentBytes: cfg.Journal.SegmentBytes,
				OnSync:       cfg.Journal.OnSync,
				Stats:        &m.tel.jstats,
				OnCycle:      m.tel.onCycle,
			})
			if err != nil {
				// Keep New's no-error signature: fall back to per-home sync
				// journals (strictly more durable) and surface the failure
				// through Status.
				m.writerErr = err
				m.durability = journal.ModeSync
			} else {
				m.writers = writers
			}
		}
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i] = newShard(m, i)
		if cfg.Clock == ClockLive {
			m.wg.Add(1)
			go m.shards[i].runPump()
		}
		if !cfg.Supervisor.Disable {
			m.wg.Add(1)
			go m.shards[i].runSupervisor()
		}
	}
	if cfg.DataDir != "" {
		// The waker serves explicit freezes too, so it runs whenever homes
		// can be frozen at all — not only with automatic hibernation on.
		m.wg.Add(1)
		go m.runWaker()
	}
	if m.hibernating() && cfg.Clock == ClockLive {
		m.wg.Add(1)
		go m.runFreezer()
	}
	return m
}

// NumShards returns the shard count.
func (m *Manager) NumShards() int { return m.cfg.Shards }

// Clock returns the manager's clock mode.
func (m *Manager) Clock() Clock { return m.cfg.Clock }

// ShardOf returns the shard a home ID deterministically routes to.
func (m *Manager) ShardOf(id HomeID) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(m.cfg.Shards))
}

// runtimeConfig builds one home's runtime configuration, wiring the shard's
// counter lane into the observer and sim-event plumbing.
func (m *Manager) runtimeConfig(id HomeID, shard int) rt.Config {
	clock := rt.ClockVirtual
	if m.cfg.Clock == ClockLive {
		clock = rt.ClockPaced
	}
	jopts := m.cfg.Journal
	jopts.Mode = m.durability
	jopts.HomeID = string(id)
	jopts.Stats = &m.tel.jstats
	if m.writers != nil {
		jopts.Writer = m.writers[shard%len(m.writers)]
	}
	return rt.Config{
		ID:               string(id),
		Clock:            clock,
		Model:            m.cfg.Home.Model,
		Scheduler:        m.cfg.Home.Scheduler,
		DefaultShort:     m.cfg.Home.DefaultShort,
		ActuationLatency: m.cfg.Home.ActuationLatency,
		MailboxDepth:     m.cfg.QueueDepth,
		Batch:            m.cfg.Batch,
		ReadConsistency:  m.cfg.ReadConsistency,
		EventLog:         m.cfg.EventLog,
		DataDir:          m.homeDir(id),
		Journal:          jopts,
		Observer: func(e visibility.Event) {
			switch e.Kind {
			case visibility.EvSubmitted:
				m.submitted.Add(shard, 1)
			case visibility.EvCommitted:
				m.committed.Add(shard, 1)
			case visibility.EvAborted:
				m.aborted.Add(shard, 1)
			}
		},
		OnSimEvents: func(n int) { m.simEvents.Add(shard, int64(n)) },
		Metrics:     m.tel.loop,
	}
}

// homeDir returns the home's durable directory ("" when the manager is
// memory-only). Home IDs are path-escaped, so arbitrary tenant-chosen IDs
// cannot traverse outside the data directory.
func (m *Manager) homeDir(id HomeID) string {
	if m.cfg.DataDir == "" {
		return ""
	}
	return filepath.Join(m.cfg.DataDir, "homes", url.PathEscape(string(id)))
}

// homeMeta is the per-home metadata file (home.json) that lets RecoverHomes
// rebuild the home's registry before replaying its journal.
type homeMeta struct {
	ID      HomeID        `json:"id"`
	Devices []device.Info `json:"devices"`
}

// persistHomeMeta writes the home's metadata next to its journal (write to
// a temp file, rename), skipping the write when the content is already
// current — the recovery path re-adds every home with the devices it just
// read from this file. Writing before the runtime opens the journal is
// safe: recovering a home whose runtime was never built just yields an
// empty home with the right devices.
func (m *Manager) persistHomeMeta(id HomeID, devices []device.Info) error {
	dir := m.homeDir(id)
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("manager: creating home dir: %w", err)
	}
	buf, err := json.MarshalIndent(homeMeta{ID: id, Devices: devices}, "", "  ")
	if err != nil {
		return fmt.Errorf("manager: encoding home metadata: %w", err)
	}
	path := filepath.Join(dir, "home.json")
	if prev, err := os.ReadFile(path); err == nil && string(prev) == string(buf) {
		return nil // already current (recovery, or an identical re-add)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("manager: writing home metadata: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("manager: publishing home metadata: %w", err)
	}
	return nil
}

// AddHome creates a home with the given devices on the home's shard. With a
// DataDir configured, the home's metadata and journal are persisted under
// <DataDir>/homes/<id>; re-adding a home whose directory already holds
// durable state recovers it.
func (m *Manager) AddHome(id HomeID, devices ...device.Info) error {
	if id == "" {
		return errors.New("manager: empty home ID")
	}
	// PathEscape leaves "." and ".." untouched (unreserved characters), so
	// they would resolve to homes/ itself or the data dir root and lose
	// their durable state; every other ID escapes to a safe single segment.
	if id == "." || id == ".." {
		return fmt.Errorf("manager: invalid home ID %q", id)
	}
	if len(devices) == 0 {
		return fmt.Errorf("manager: home %q needs at least one device", id)
	}
	sh := m.shards[m.ShardOf(id)]
	// Refuse duplicates before touching durable metadata: a failed re-add
	// (e.g. a restart with a different fleet size re-adding recovered homes)
	// must not rewrite home.json out from under the running home's registry.
	if sh.has(id) {
		return fmt.Errorf("%w: %q", ErrDuplicateHome, id)
	}
	if err := m.persistHomeMeta(id, devices); err != nil {
		return err
	}
	if m.hibernating() {
		// Register cold when the directory is state-less (a fresh home: the
		// first touch builds it) or carries the frozen marker (a cleanly
		// hibernated home: stay cold, wake on demand). Journal state with no
		// marker means the home crashed live — fall through and recover it
		// live so aborts surface and its triggers re-arm now.
		fr, err := m.coldRecord(id, len(devices))
		if err != nil {
			return err
		}
		if fr != nil {
			if err := sh.addCold(id, devices, fr); err != nil {
				return err
			}
			m.scheduleWake(id, fr.NextFire)
			return nil
		}
	} else if dir := m.homeDir(id); dir != "" {
		// Hibernation is off: a leftover frozen marker would go stale the
		// moment the live home journals anything, so retire it now.
		if err := rt.RemoveFrozenRecord(dir); err != nil {
			return err
		}
	}
	return sh.addHome(id, devices)
}

// RecoverHomes rediscovers every home persisted under the manager's DataDir
// and recovers it (results, committed states and event cursors exactly;
// in-flight routines aborted). Homes already present are skipped, so it is
// safe to call on a warm manager. It returns the recovered IDs, sorted.
func (m *Manager) RecoverHomes() ([]HomeID, error) {
	if m.cfg.DataDir == "" {
		return nil, nil
	}
	root := filepath.Join(m.cfg.DataDir, "homes")
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("manager: listing %s: %w", root, err)
	}
	var recovered []HomeID
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(root, e.Name(), "home.json"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a home directory
			}
			return recovered, fmt.Errorf("manager: reading metadata of %s: %w", e.Name(), err)
		}
		var meta homeMeta
		if err := json.Unmarshal(buf, &meta); err != nil {
			return recovered, fmt.Errorf("manager: decoding metadata of %s: %w", e.Name(), err)
		}
		if err := m.AddHome(meta.ID, meta.Devices...); err != nil {
			if errors.Is(err, ErrDuplicateHome) {
				continue
			}
			return recovered, fmt.Errorf("manager: recovering home %q: %w", meta.ID, err)
		}
		recovered = append(recovered, meta.ID)
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i] < recovered[j] })
	return recovered, nil
}

// AddHomes creates n homes named <prefix>-0 .. <prefix>-(n-1), each with the
// given number of generic plug devices, and returns their IDs.
func (m *Manager) AddHomes(prefix string, n, plugs int) ([]HomeID, error) {
	ids := make([]HomeID, 0, n)
	for i := 0; i < n; i++ {
		id := HomeID(fmt.Sprintf("%s-%d", prefix, i))
		if err := m.AddHome(id, device.Plugs(plugs).All()...); err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Runtime returns the home's runtime, for introspection (mailbox stats,
// suspension in tests). Most callers should use the typed Manager methods.
// While the home is down it returns ErrRestarting or ErrQuarantined instead
// of handing out a poisoned runtime. Touching a hibernated home through
// here reanimates it: the wake is ordinary journal recovery behind a
// per-home singleflight guard.
func (m *Manager) Runtime(id HomeID) (*rt.HomeRuntime, error) {
	slot, err := m.slotOf(id)
	if err != nil {
		return nil, err
	}
	switch {
	case slot.sup.Quarantined():
		return nil, fmt.Errorf("%w: %q", ErrQuarantined, id)
	case !slot.sup.Serving():
		return nil, fmt.Errorf("%w: %q", ErrRestarting, id)
	}
	if home := slot.rt.Load(); home != nil {
		return home, nil
	}
	return m.shards[m.ShardOf(id)].wake(slot)
}

// slotOf returns the home's slot regardless of its health — status and
// health reads work while the home is restarting or quarantined.
func (m *Manager) slotOf(id HomeID) (*homeSlot, error) {
	slot, ok := m.shards[m.ShardOf(id)].slot(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHome, id)
	}
	return slot, nil
}

// Submit validates the routine against the home's device registry and
// submits it, returning its assigned routine ID. Under ClockVirtual the
// routine has finished by the time Submit returns; under ClockLive it
// executes in real time. Returns ErrOverloaded when the home's mailbox is
// full.
func (m *Manager) Submit(id HomeID, r *routine.Routine) (routine.ID, error) {
	home, err := m.Runtime(id)
	if err != nil {
		return routine.None, err
	}
	rid, err := home.Submit(r)
	if errors.Is(err, ErrClosed) {
		// The freezer closed the home between the lookup and the submit:
		// one pass through the wake path yields the next generation —
		// nothing acknowledged is lost across the freeze/wake boundary.
		if home, werr := m.reanimate(id, home); werr == nil {
			return home.Submit(r)
		}
	}
	return rid, err
}

// SubmitSpec parses a Fig 10-style JSON routine document and submits it.
func (m *Manager) SubmitSpec(id HomeID, spec []byte) (routine.ID, error) {
	r, err := routine.ParseSpec(spec)
	if err != nil {
		return routine.None, err
	}
	return m.Submit(id, r)
}

// SubmitAfter schedules a routine submission after the given delay on the
// home's clock. Under ClockLive the delay is real time.
func (m *Manager) SubmitAfter(id HomeID, d time.Duration, r *routine.Routine) error {
	home, err := m.Runtime(id)
	if err != nil {
		return err
	}
	err = home.SubmitAfter(d, r)
	if errors.Is(err, ErrClosed) {
		if home, werr := m.reanimate(id, home); werr == nil {
			return home.SubmitAfter(d, r)
		}
	}
	return err
}

// FailDevice injects a fail-stop failure of the device in the home.
func (m *Manager) FailDevice(id HomeID, dev device.ID) error {
	home, err := m.Runtime(id)
	if err != nil {
		return err
	}
	err = home.FailDevice(dev)
	if errors.Is(err, ErrClosed) {
		if home, werr := m.reanimate(id, home); werr == nil {
			return home.FailDevice(dev)
		}
	}
	return err
}

// RestoreDevice injects a restart of a previously failed device.
func (m *Manager) RestoreDevice(id HomeID, dev device.ID) error {
	home, err := m.Runtime(id)
	if err != nil {
		return err
	}
	err = home.RestoreDevice(dev)
	if errors.Is(err, ErrClosed) {
		if home, werr := m.reanimate(id, home); werr == nil {
			return home.RestoreDevice(dev)
		}
	}
	return err
}

// Results returns the home's per-routine outcomes in submission order.
func (m *Manager) Results(id HomeID) ([]visibility.Result, error) {
	home, err := m.Runtime(id)
	if err != nil {
		return nil, err
	}
	return home.Results(), nil
}

// Result returns one routine's outcome in the home.
func (m *Manager) Result(id HomeID, rid routine.ID) (visibility.Result, bool, error) {
	home, err := m.Runtime(id)
	if err != nil {
		return visibility.Result{}, false, err
	}
	res, ok := home.Result(rid)
	return res, ok, nil
}

// DeviceStates returns the ground-truth state of every device in the home.
func (m *Manager) DeviceStates(id HomeID) (map[device.ID]device.State, error) {
	home, err := m.Runtime(id)
	if err != nil {
		return nil, err
	}
	return home.DeviceStates(), nil
}

// Events returns the home's retained activity events with sequence number
// >= since, plus the cursor to pass on the next poll. Homes log events only
// when Config.EventLog is set; otherwise the result is always empty.
func (m *Manager) Events(id HomeID, since uint64) ([]visibility.Event, uint64, error) {
	home, err := m.Runtime(id)
	if err != nil {
		return nil, 0, err
	}
	ev, next := home.EventsSince(since)
	return ev, next, nil
}

// HomeStatus summarizes one home. Health is ok, degraded (serving but the
// journal died — memory-only until restart), restarting (poisoned, being
// rebuilt by the supervisor), quarantined (restart budget exhausted) or
// frozen (hibernated: answered from the resident FrozenHome record, never
// by waking the home).
type HomeStatus struct {
	ID        HomeID        `json:"id"`
	Shard     int           `json:"shard"`
	Model     string        `json:"model"`
	Health    rt.HomeHealth `json:"health"`
	Restarts  int64         `json:"restarts,omitempty"`
	LastError string        `json:"last_error,omitempty"`
	// LastPoison is the forensics record (panic message + stack) of the
	// home's most recent poisoning, persisted in its data directory and
	// cleared once a supervised restart brings the home back clean.
	LastPoison *rt.PoisonRecord `json:"last_poison,omitempty"`
	Devices    int              `json:"devices"`
	Routines   int              `json:"routines"`
	Pending    int              `json:"pending"`
	Active     int              `json:"active"`
	Now        time.Time        `json:"now"`
	Created    time.Time        `json:"created"`
	// FrozenAt and NextFire are set only for hibernated homes: when the
	// final checkpoint landed, and the earliest scheduled-trigger deadline
	// the manager will wake the home for.
	FrozenAt time.Time `json:"frozen_at,omitempty"`
	NextFire time.Time `json:"next_fire,omitempty"`
}

func (m *Manager) statusOf(slot *homeSlot, shard int) HomeStatus {
	home := slot.rt.Load()
	if home == nil {
		fr := slot.frozen.Load()
		if fr == nil {
			// Caught a wake mid-transition (rt published, frozen not yet
			// cleared when we looked, or vice versa): re-read the runtime.
			home = slot.rt.Load()
		}
		if home == nil {
			st := HomeStatus{ID: slot.id, Shard: shard, Health: rt.HealthFrozen}
			if fr != nil {
				st.Model = fr.Model
				st.Devices = fr.Devices
				st.Routines = fr.Routines
				st.Created = fr.Created
				st.FrozenAt = fr.FrozenAt
				st.NextFire = fr.NextFire
			}
			st.LastPoison = slot.lastPoison.Load()
			return st
		}
	}
	c := home.Counts()
	st := HomeStatus{
		ID:       slot.id,
		Shard:    shard,
		Model:    c.Model,
		Health:   slot.health(),
		Restarts: slot.sup.Restarts(),
		Devices:  home.Registry().Len(),
		Routines: c.Routines,
		Pending:  c.Pending,
		Active:   c.Active,
		Now:      c.Now,
		Created:  home.Since(),
	}
	if st.Health != rt.HealthOK {
		if err := slot.sup.LastError(); err != nil {
			st.LastError = err.Error()
		} else if err := home.JournalError(); err != nil {
			st.LastError = err.Error()
		}
	}
	st.LastPoison = slot.lastPoison.Load()
	if st.LastPoison == nil {
		// Supervision may be disabled (no OnPoison hook to fill the cache);
		// the current generation's own record still surfaces.
		st.LastPoison = home.PoisonRecord()
	}
	return st
}

// HomeStatus returns one home's summary. It answers for restarting and
// quarantined homes too — the summary then reflects the last generation's
// quiesced state plus the supervision fields.
func (m *Manager) HomeStatus(id HomeID) (HomeStatus, error) {
	slot, err := m.slotOf(id)
	if err != nil {
		return HomeStatus{}, err
	}
	return m.statusOf(slot, m.ShardOf(id)), nil
}

// Homes lists every home's summary, sorted by ID. Shards are collected in
// parallel — each home's Counts query queues behind that home's mailbox, so
// the listing costs the slowest shard, not the sum of all of them.
func (m *Manager) Homes() []HomeStatus {
	var (
		mu  sync.Mutex
		out []HomeStatus
		wg  sync.WaitGroup
	)
	for _, sh := range m.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			homes := sh.snapshot()
			local := make([]HomeStatus, 0, len(homes))
			for _, slot := range homes {
				local = append(local, m.statusOf(slot, sh.index))
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}(sh)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Status summarizes the whole manager.
type Status struct {
	Shards int `json:"shards"`
	Homes  int `json:"homes"`
	// Frozen counts the hibernated homes (included in Homes). Their
	// lifetime mailbox totals still fold into Accepted/Rejected — read
	// from the resident frozen records, never by waking anyone.
	Frozen      int    `json:"frozen,omitempty"`
	Clock       string `json:"clock"`
	Model       string `json:"model"`
	Submitted   int64  `json:"submitted"`
	Committed   int64  `json:"committed"`
	Aborted     int64  `json:"aborted"`
	SimEvents   int64  `json:"sim_events"`
	Accepted    int64  `json:"mailbox_accepted"`
	Rejected    int64  `json:"mailbox_rejected"`
	Depth       int    `json:"mailbox_depth"`
	Poisons     int64  `json:"poisons,omitempty"`
	Restarts    int64  `json:"restarts,omitempty"`
	Quarantined int64  `json:"quarantined,omitempty"`
	// Durability is the resolved journal tier ("sync", "group", "async");
	// empty when the manager is memory-only. DurabilityError reports a
	// degraded tier (the shared-writer fleet failed to open and homes fell
	// back to per-home sync journals).
	Durability      string    `json:"durability,omitempty"`
	DurabilityError string    `json:"durability_error,omitempty"`
	Since           time.Time `json:"since"`
}

// Status returns manager-wide totals. The counters are read lock-free and
// monotonic, not a point-in-time snapshot; Depth sums the homes' current
// mailbox occupancy.
func (m *Manager) Status() Status {
	st := Status{
		Shards:      m.cfg.Shards,
		Clock:       m.cfg.Clock.String(),
		Model:       m.cfg.Home.Model.String(),
		Submitted:   m.submitted.Total(),
		Committed:   m.committed.Total(),
		Aborted:     m.aborted.Total(),
		SimEvents:   m.simEvents.Total(),
		Poisons:     m.poisons.Load(),
		Restarts:    m.restarts.Load(),
		Quarantined: m.quarantined.Load(),
		Since:       m.since,
	}
	if m.cfg.DataDir != "" {
		st.Durability = m.durability.String()
		if m.writerErr != nil {
			st.DurabilityError = m.writerErr.Error()
		}
	}
	for _, sh := range m.shards {
		st.Homes += int(sh.homeCount.Load())
		for _, slot := range sh.snapshot() {
			if home := slot.rt.Load(); home != nil {
				mb := home.Mailbox()
				st.Accepted += mb.Accepted
				st.Rejected += mb.Rejected
				st.Depth += mb.Depth
			} else if fr := slot.frozen.Load(); fr != nil {
				st.Frozen++
				st.Accepted += fr.Accepted
				st.Rejected += fr.Rejected
			} else {
				st.Frozen++ // mid-transition; counters settle next read
			}
		}
	}
	return st
}

// Close stops the live-clock pumpers and closes every home runtime — queued
// operations run and every home's in-flight routines finish — before
// returning. Close is idempotent; read-only methods keep working on the
// quiesced state afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	close(m.stop)
	m.wg.Wait()
	for _, sh := range m.shards {
		sh.closeAll()
	}
	// Homes first, writers second: each home's Close waits for its covering
	// sync, so by the time the writers close nothing is parked on them.
	for _, w := range m.writers {
		_ = w.Close()
	}
}

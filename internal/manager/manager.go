// Package manager scales SafeHome from one home to many: a sharded,
// multi-tenant HomeManager that owns N independent homes, each with its own
// visibility controller, device fleet and clock, partitioned across worker
// shards.
//
// Every home is hashed to one shard (FNV-1a of the home ID modulo the shard
// count) and every operation on that home — creating it, submitting a
// routine, injecting a failure, reading results — executes on that shard's
// single goroutine. This preserves the visibility controllers'
// single-threaded execution contract (see internal/visibility) without any
// per-home locking: homes on different shards make progress fully in
// parallel, homes on the same shard serialize behind one another, and no home
// ever observes another home's state.
//
// Cross-shard statistics (routines submitted/committed/aborted, simulator
// events processed) are aggregated lock-free through internal/stats sharded
// counters: each shard increments its own cache-line-padded lane and readers
// sum the lanes.
//
// Homes run on either a virtual or a live clock:
//
//   - ClockVirtual: each operation drains the home's discrete-event simulator,
//     so a 40-minute routine finishes in microseconds of real time. This is
//     the mode the multi-tenant experiments and benchmarks use.
//   - ClockLive: each shard pumps its homes' simulators up to the wall clock
//     on a fixed interval, so a routine scheduled 5 s out fires 5 s later in
//     real time. This is the mode the multi-tenant hub serves.
//
// See ARCHITECTURE.md at the repository root for how the manager layers
// between the public API and the per-home hub/visibility machinery.
package manager

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/sim"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// HomeID identifies one tenant home within a manager.
type HomeID string

// Clock selects how a manager's homes experience time.
type Clock int

const (
	// ClockVirtual drains each home's simulator after every operation:
	// routines run to completion at virtual speed. Best for experiments,
	// benchmarks and tests.
	ClockVirtual Clock = iota
	// ClockLive advances each home's simulator to the wall clock on a pump
	// interval: routines take real time. Best for serving the HTTP API.
	ClockLive
)

func (c Clock) String() string {
	switch c {
	case ClockVirtual:
		return "virtual"
	case ClockLive:
		return "live"
	default:
		return fmt.Sprintf("clock(%d)", int(c))
	}
}

// Errors returned by manager operations.
var (
	// ErrClosed is returned by mutating calls after Close.
	ErrClosed = errors.New("manager: closed")
	// ErrUnknownHome is returned (wrapped, with the ID) for missing homes.
	ErrUnknownHome = errors.New("manager: unknown home")
	// ErrDuplicateHome is returned (wrapped) when re-adding an existing home.
	ErrDuplicateHome = errors.New("manager: home already exists")
)

// HomeConfig selects the visibility model and tuning knobs applied to every
// home the manager creates.
type HomeConfig struct {
	// Model is the visibility model (default EV; zero value WV is remapped —
	// a multi-tenant deployment that wants WV must say so via ExplicitWV).
	Model visibility.Model
	// ExplicitWV keeps Model = WV instead of defaulting it to EV.
	ExplicitWV bool
	// Scheduler is the EV scheduling policy (default Timeline).
	Scheduler visibility.SchedulerKind
	// DefaultShort is the assumed hold of zero-duration commands.
	DefaultShort time.Duration
	// ActuationLatency adds a fixed per-command latency, modelling
	// device/network round trips.
	ActuationLatency time.Duration
}

// Config configures a Manager.
type Config struct {
	// Shards is the number of worker shards (default 4, minimum 1).
	Shards int
	// QueueDepth is each shard's operation buffer (default 128).
	QueueDepth int
	// Clock selects virtual or live time (default ClockVirtual).
	Clock Clock
	// PumpInterval is the live-clock advance period (default 10 ms).
	PumpInterval time.Duration
	// Home configures every home the manager creates.
	Home HomeConfig
}

func (c Config) normalized() Config {
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 128
	}
	if c.PumpInterval <= 0 {
		c.PumpInterval = 10 * time.Millisecond
	}
	if c.Home.Model == visibility.WV && !c.Home.ExplicitWV {
		c.Home.Model = visibility.EV
	}
	return c
}

func (c HomeConfig) options() visibility.Options {
	opts := visibility.DefaultOptions(c.Model)
	opts.Scheduler = c.Scheduler
	if c.DefaultShort > 0 {
		opts.DefaultShort = c.DefaultShort
	}
	return opts
}

// home is one tenant: its own simulator, fleet and controller, owned
// exclusively by a shard goroutine (and readable inline once the manager is
// closed and quiescent).
type home struct {
	id      HomeID
	shard   int
	sim     *sim.Sim
	reg     *device.Registry
	fleet   *device.Fleet
	ctrl    visibility.Controller
	created time.Time
	// drained tracks sim.Processed at the last counter flush, so the shard
	// reports only the delta to the manager-wide event counter.
	drained int
}

func (h *home) status() HomeStatus {
	return HomeStatus{
		ID:       h.id,
		Shard:    h.shard,
		Model:    h.ctrl.Model().String(),
		Devices:  h.reg.Len(),
		Routines: h.ctrl.RoutineCount(),
		Pending:  h.ctrl.PendingCount(),
		Active:   h.ctrl.ActiveCount(),
		Now:      h.sim.Now(),
		Created:  h.created,
	}
}

// Manager owns and schedules many independent homes across worker shards.
// All methods are safe for concurrent use. After Close, mutating methods
// return ErrClosed and read-only methods answer from the quiesced state.
type Manager struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. enqueue
	closed bool

	since time.Time

	// Lock-free cross-shard totals; one lane per shard.
	submitted *stats.ShardedCounter
	committed *stats.ShardedCounter
	aborted   *stats.ShardedCounter
	simEvents *stats.ShardedCounter
}

// New builds and starts a manager. The returned manager has no homes; add
// them with AddHome or AddHomes.
func New(cfg Config) *Manager {
	cfg = cfg.normalized()
	m := &Manager{
		cfg:       cfg,
		since:     time.Now(),
		submitted: stats.NewShardedCounter(cfg.Shards),
		committed: stats.NewShardedCounter(cfg.Shards),
		aborted:   stats.NewShardedCounter(cfg.Shards),
		simEvents: stats.NewShardedCounter(cfg.Shards),
	}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i] = newShard(m, i)
		m.wg.Add(1)
		go m.shards[i].run()
	}
	return m
}

// NumShards returns the shard count.
func (m *Manager) NumShards() int { return m.cfg.Shards }

// Clock returns the manager's clock mode.
func (m *Manager) Clock() Clock { return m.cfg.Clock }

// ShardOf returns the shard a home ID deterministically routes to.
func (m *Manager) ShardOf(id HomeID) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum32() % uint32(m.cfg.Shards))
}

// AddHome creates a home with the given devices on the home's shard.
func (m *Manager) AddHome(id HomeID, devices ...device.Info) error {
	if id == "" {
		return errors.New("manager: empty home ID")
	}
	if len(devices) == 0 {
		return fmt.Errorf("manager: home %q needs at least one device", id)
	}
	sh := m.shards[m.ShardOf(id)]
	reply := make(chan error, 1)
	if !m.enqueue(sh, func() { reply <- sh.addHome(id, devices) }) {
		return ErrClosed
	}
	return <-reply
}

// AddHomes creates n homes named <prefix>-0 .. <prefix>-(n-1), each with the
// given number of generic plug devices, and returns their IDs.
func (m *Manager) AddHomes(prefix string, n, plugs int) ([]HomeID, error) {
	ids := make([]HomeID, 0, n)
	for i := 0; i < n; i++ {
		id := HomeID(fmt.Sprintf("%s-%d", prefix, i))
		if err := m.AddHome(id, device.Plugs(plugs).All()...); err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Submit validates the routine against the home's device registry and
// submits it, returning its assigned routine ID. Under ClockVirtual the
// routine has finished by the time Submit returns; under ClockLive it
// executes in real time.
func (m *Manager) Submit(id HomeID, r *routine.Routine) (routine.ID, error) {
	var rid routine.ID
	err := m.mutate(id, func(h *home) error {
		if err := r.Validate(h.reg); err != nil {
			return err
		}
		rid = h.ctrl.Submit(r)
		return nil
	})
	return rid, err
}

// SubmitSpec parses a Fig 10-style JSON routine document and submits it.
func (m *Manager) SubmitSpec(id HomeID, spec []byte) (routine.ID, error) {
	r, err := routine.ParseSpec(spec)
	if err != nil {
		return routine.None, err
	}
	return m.Submit(id, r)
}

// SubmitAfter schedules a routine submission after the given delay on the
// home's clock. Under ClockLive the delay is real time.
func (m *Manager) SubmitAfter(id HomeID, d time.Duration, r *routine.Routine) error {
	return m.mutate(id, func(h *home) error {
		if err := r.Validate(h.reg); err != nil {
			return err
		}
		h.sim.After(d, func() { h.ctrl.Submit(r) })
		return nil
	})
}

// FailDevice injects a fail-stop failure of the device in the home.
func (m *Manager) FailDevice(id HomeID, dev device.ID) error {
	return m.mutate(id, func(h *home) error {
		if err := h.fleet.Fail(dev); err != nil {
			return err
		}
		h.ctrl.NotifyFailure(dev)
		return nil
	})
}

// RestoreDevice injects a restart of a previously failed device.
func (m *Manager) RestoreDevice(id HomeID, dev device.ID) error {
	return m.mutate(id, func(h *home) error {
		if err := h.fleet.Restore(dev); err != nil {
			return err
		}
		h.ctrl.NotifyRestart(dev)
		return nil
	})
}

// Results returns the home's per-routine outcomes in submission order.
func (m *Manager) Results(id HomeID) ([]visibility.Result, error) {
	var out []visibility.Result
	err := m.query(id, func(h *home) error {
		out = h.ctrl.Results()
		return nil
	})
	return out, err
}

// Result returns one routine's outcome in the home.
func (m *Manager) Result(id HomeID, rid routine.ID) (visibility.Result, bool, error) {
	var (
		res visibility.Result
		ok  bool
	)
	err := m.query(id, func(h *home) error {
		res, ok = h.ctrl.Result(rid)
		return nil
	})
	return res, ok, err
}

// DeviceStates returns the ground-truth state of every device in the home.
func (m *Manager) DeviceStates(id HomeID) (map[device.ID]device.State, error) {
	var out map[device.ID]device.State
	err := m.query(id, func(h *home) error {
		out = h.fleet.Snapshot()
		return nil
	})
	return out, err
}

// HomeStatus summarizes one home.
type HomeStatus struct {
	ID       HomeID    `json:"id"`
	Shard    int       `json:"shard"`
	Model    string    `json:"model"`
	Devices  int       `json:"devices"`
	Routines int       `json:"routines"`
	Pending  int       `json:"pending"`
	Active   int       `json:"active"`
	Now      time.Time `json:"now"`
	Created  time.Time `json:"created"`
}

// HomeStatus returns one home's summary.
func (m *Manager) HomeStatus(id HomeID) (HomeStatus, error) {
	var st HomeStatus
	err := m.query(id, func(h *home) error {
		st = h.status()
		return nil
	})
	return st, err
}

// Homes lists every home's summary, sorted by ID.
func (m *Manager) Homes() []HomeStatus {
	var (
		mu  sync.Mutex
		out []HomeStatus
		wg  sync.WaitGroup
	)
	for _, sh := range m.shards {
		sh := sh
		wg.Add(1)
		collect := func() {
			defer wg.Done()
			local := sh.statuses()
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}
		if !m.enqueue(sh, collect) {
			collect() // manager closed and quiescent: read inline
		}
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Status summarizes the whole manager.
type Status struct {
	Shards    int       `json:"shards"`
	Homes     int       `json:"homes"`
	Clock     string    `json:"clock"`
	Model     string    `json:"model"`
	Submitted int64     `json:"submitted"`
	Committed int64     `json:"committed"`
	Aborted   int64     `json:"aborted"`
	SimEvents int64     `json:"sim_events"`
	Since     time.Time `json:"since"`
}

// Status returns manager-wide totals. The counters are read lock-free and
// monotonic, not a point-in-time snapshot.
func (m *Manager) Status() Status {
	homes := 0
	for _, sh := range m.shards {
		homes += int(sh.homeCount.Load())
	}
	return Status{
		Shards:    m.cfg.Shards,
		Homes:     homes,
		Clock:     m.cfg.Clock.String(),
		Model:     m.cfg.Home.Model.String(),
		Submitted: m.submitted.Total(),
		Committed: m.committed.Total(),
		Aborted:   m.aborted.Total(),
		SimEvents: m.simEvents.Total(),
		Since:     m.since,
	}
}

// Close stops accepting mutations, drains every shard — queued operations run
// and every home's in-flight routines finish — and waits for the shard
// goroutines to exit. Close is idempotent; read-only methods keep working on
// the quiesced state afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, sh := range m.shards {
		close(sh.ops)
	}
	m.wg.Wait()
	m.mu.Unlock()
}

// enqueue hands an operation to a shard goroutine; it returns false if the
// manager is closed (shards quiescent, nothing will run the op).
func (m *Manager) enqueue(sh *shard, op func()) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false
	}
	sh.ops <- op
	return true
}

// mutate runs fn against the home on its shard goroutine; ErrClosed after
// Close.
func (m *Manager) mutate(id HomeID, fn func(*home) error) error {
	sh := m.shards[m.ShardOf(id)]
	reply := make(chan error, 1)
	ok := m.enqueue(sh, func() {
		h, found := sh.homes[id]
		if !found {
			reply <- fmt.Errorf("%w: %q", ErrUnknownHome, id)
			return
		}
		err := fn(h)
		sh.pump(h)
		reply <- err
	})
	if !ok {
		return ErrClosed
	}
	return <-reply
}

// query runs fn against the home; after Close it executes inline, which is
// safe because Close returns only once every shard goroutine has exited.
func (m *Manager) query(id HomeID, fn func(*home) error) error {
	sh := m.shards[m.ShardOf(id)]
	reply := make(chan error, 1)
	ok := m.enqueue(sh, func() {
		h, found := sh.homes[id]
		if !found {
			reply <- fmt.Errorf("%w: %q", ErrUnknownHome, id)
			return
		}
		reply <- fn(h)
	})
	if !ok {
		h, found := sh.homes[id]
		if !found {
			return fmt.Errorf("%w: %q", ErrUnknownHome, id)
		}
		return fn(h)
	}
	return <-reply
}

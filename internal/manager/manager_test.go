package manager

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

func plugRoutine(name string, target device.State, plugs ...int) *routine.Routine {
	r := routine.New(name)
	for _, p := range plugs {
		r.Commands = append(r.Commands, routine.Command{
			Device:   device.ID(fmt.Sprintf("plug-%d", p)),
			Target:   target,
			Duration: time.Minute,
		})
	}
	return r
}

func TestShardRoutingDeterministic(t *testing.T) {
	m := New(Config{Shards: 4})
	defer m.Close()

	seen := make(map[int]int)
	for i := 0; i < 256; i++ {
		id := HomeID(fmt.Sprintf("home-%d", i))
		first := m.ShardOf(id)
		for rep := 0; rep < 3; rep++ {
			if got := m.ShardOf(id); got != first {
				t.Fatalf("ShardOf(%q) flapped: %d then %d", id, first, got)
			}
		}
		if first < 0 || first >= m.NumShards() {
			t.Fatalf("ShardOf(%q) = %d, outside [0,%d)", id, first, m.NumShards())
		}
		seen[first]++
	}
	// FNV over 256 IDs must reach every shard (distribution sanity, not
	// uniformity).
	for s := 0; s < m.NumShards(); s++ {
		if seen[s] == 0 {
			t.Errorf("shard %d received no homes out of 256", s)
		}
	}
}

func TestShardRoutingMatchesPlacement(t *testing.T) {
	m := New(Config{Shards: 8})
	defer m.Close()
	ids, err := m.AddHomes("home", 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range m.Homes() {
		if st.Shard != m.ShardOf(st.ID) {
			t.Errorf("home %q placed on shard %d, ShardOf says %d", st.ID, st.Shard, m.ShardOf(st.ID))
		}
	}
	if len(m.Homes()) != len(ids) {
		t.Fatalf("Homes() lists %d homes, want %d", len(m.Homes()), len(ids))
	}
}

func TestConcurrentSubmitsToDistinctHomesDoNotInterleave(t *testing.T) {
	m := New(Config{Shards: 4})
	defer m.Close()

	const homes = 16
	if _, err := m.AddHomes("home", homes, 4); err != nil {
		t.Fatal(err)
	}

	// Every home gets a distinct target state; if any cross-home state leaked,
	// a home would end up with a neighbour's state.
	var wg sync.WaitGroup
	for i := 0; i < homes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := HomeID(fmt.Sprintf("home-%d", i))
			target := device.State(fmt.Sprintf("MODE-%d", i))
			for rep := 0; rep < 5; rep++ {
				if _, err := m.Submit(id, plugRoutine("set", target, 0, 1, 2, 3)); err != nil {
					t.Errorf("submit to %q: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	for i := 0; i < homes; i++ {
		id := HomeID(fmt.Sprintf("home-%d", i))
		want := device.State(fmt.Sprintf("MODE-%d", i))
		states, err := m.DeviceStates(id)
		if err != nil {
			t.Fatal(err)
		}
		for dev, st := range states {
			if st != want {
				t.Errorf("home %q device %s = %s, want %s (cross-tenant interference)", id, dev, st, want)
			}
		}
		results, err := m.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 5 {
			t.Errorf("home %q has %d results, want exactly its own 5", id, len(results))
		}
		for _, res := range results {
			if res.Status != visibility.StatusCommitted {
				t.Errorf("home %q routine %d = %v, want committed", id, res.ID, res.Status)
			}
		}
	}

	st := m.Status()
	if st.Submitted != homes*5 || st.Committed != homes*5 {
		t.Errorf("Status totals = %d submitted / %d committed, want %d/%d",
			st.Submitted, st.Committed, homes*5, homes*5)
	}
}

func TestGracefulShutdownDrainsInFlightRoutines(t *testing.T) {
	// Live clock: submissions return before their routines finish, so Close
	// must drain them.
	m := New(Config{Shards: 4, Clock: ClockLive, PumpInterval: time.Millisecond})
	if _, err := m.AddHomes("home", 8, 2); err != nil {
		t.Fatal(err)
	}

	const perHome = 3
	for i := 0; i < 8; i++ {
		id := HomeID(fmt.Sprintf("home-%d", i))
		for rep := 0; rep < perHome; rep++ {
			// A virtual-duration command scheduled slightly in the future so it
			// is genuinely in flight at Close time.
			if err := m.SubmitAfter(id, 5*time.Millisecond, plugRoutine("drain", device.On, 0, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}

	m.Close()

	for i := 0; i < 8; i++ {
		id := HomeID(fmt.Sprintf("home-%d", i))
		results, err := m.Results(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != perHome {
			t.Fatalf("home %q: %d results after Close, want %d", id, len(results), perHome)
		}
		for _, res := range results {
			if !res.Status.Finished() {
				t.Errorf("home %q routine %d still %v after Close", id, res.ID, res.Status)
			}
		}
		st, err := m.HomeStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Pending != 0 {
			t.Errorf("home %q: %d pending after Close, want 0", id, st.Pending)
		}
	}

	// Mutations are rejected once closed; queries and Close stay usable.
	if _, err := m.Submit("home-0", plugRoutine("late", device.On, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := m.AddHome("new-home", device.Plugs(1).All()...); !errors.Is(err, ErrClosed) {
		t.Errorf("AddHome after Close = %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

func TestUnknownAndDuplicateHomes(t *testing.T) {
	m := New(Config{Shards: 2})
	defer m.Close()

	if _, err := m.Submit("ghost", plugRoutine("r", device.On, 0)); !errors.Is(err, ErrUnknownHome) {
		t.Errorf("Submit to missing home = %v, want ErrUnknownHome", err)
	}
	if _, err := m.Results("ghost"); !errors.Is(err, ErrUnknownHome) {
		t.Errorf("Results of missing home = %v, want ErrUnknownHome", err)
	}
	if err := m.AddHome("h1", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	if err := m.AddHome("h1", device.Plugs(2).All()...); !errors.Is(err, ErrDuplicateHome) {
		t.Errorf("duplicate AddHome = %v, want ErrDuplicateHome", err)
	}
	if err := m.AddHome("", device.Plugs(1).All()...); err == nil {
		t.Error("empty home ID accepted")
	}
	if err := m.AddHome("h2"); err == nil {
		t.Error("home with no devices accepted")
	}
}

func TestFailureInjectionPerHome(t *testing.T) {
	m := New(Config{Shards: 2, Home: HomeConfig{Model: visibility.SGSV}})
	defer m.Close()
	if err := m.AddHome("a", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	if err := m.AddHome("b", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}

	if err := m.FailDevice("a", "plug-0"); err != nil {
		t.Fatal(err)
	}
	// Home a's plug-0 is down: a routine against it aborts under S-GSV.
	rid, err := m.Submit("a", plugRoutine("hit-failed", device.On, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, ok, err := m.Result("a", rid)
	if err != nil || !ok {
		t.Fatalf("Result(a, %d) = %v, %v", rid, ok, err)
	}
	if res.Status != visibility.StatusAborted {
		t.Errorf("routine on failed device = %v, want aborted", res.Status)
	}

	// Home b is unaffected by a's failure.
	rid, err = m.Submit("b", plugRoutine("independent", device.On, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err = m.Result("b", rid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != visibility.StatusCommitted {
		t.Errorf("home b routine = %v, want committed (failure leaked across homes)", res.Status)
	}

	if err := m.RestoreDevice("a", "plug-0"); err != nil {
		t.Fatal(err)
	}
	rid, err = m.Submit("a", plugRoutine("after-restore", device.On, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ = m.Result("a", rid)
	if res.Status != visibility.StatusCommitted {
		t.Errorf("post-restore routine = %v, want committed", res.Status)
	}
}

func TestSubmitSpec(t *testing.T) {
	m := New(Config{Shards: 1})
	defer m.Close()
	if err := m.AddHome("h", device.Plugs(1).All()...); err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"routine_name":"from-spec","commands":[{"device":"plug-0","action":"ON"}]}`)
	rid, err := m.SubmitSpec("h", spec)
	if err != nil {
		t.Fatal(err)
	}
	res, ok, err := m.Result("h", rid)
	if err != nil || !ok || res.Status != visibility.StatusCommitted {
		t.Fatalf("spec routine: res=%+v ok=%v err=%v", res, ok, err)
	}
	if _, err := m.SubmitSpec("h", []byte(`{`)); err == nil {
		t.Error("malformed spec accepted")
	}
	// Submission validates against the home's own registry.
	if _, err := m.Submit("h", plugRoutine("out-of-range", device.On, 7)); err == nil {
		t.Error("routine naming a device the home lacks was accepted")
	}
	if err := m.SubmitAfter("h", time.Millisecond, plugRoutine("out-of-range", device.On, 7)); err == nil {
		t.Error("SubmitAfter with unknown device was accepted")
	}
}

func TestLiveClockPumperAdvancesOnlyBusyHomes(t *testing.T) {
	// Serving mode: the shard pumper must advance a home with due simulator
	// work in real time, while idle homes are skipped (no pump op is ever
	// queued for them — observable as an untouched simulator clock).
	m := New(Config{Shards: 2, Clock: ClockLive, PumpInterval: time.Millisecond})
	defer m.Close()
	if _, err := m.AddHomes("home", 2, 2); err != nil {
		t.Fatal(err)
	}

	busyBefore, err := m.HomeStatus("home-0")
	if err != nil {
		t.Fatal(err)
	}
	wake := routine.New("wake", routine.Command{
		Device: "plug-0", Target: device.On, Duration: 5 * time.Millisecond,
	})
	if err := m.SubmitAfter("home-0", 5*time.Millisecond, wake); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		results, err := m.Results("home-0")
		if err != nil {
			t.Fatal(err)
		}
		if len(results) == 1 && results[0].Status == visibility.StatusCommitted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pumper never ran the due routine to completion: %+v", results)
		}
		time.Sleep(2 * time.Millisecond)
	}
	busyAfter, err := m.HomeStatus("home-0")
	if err != nil {
		t.Fatal(err)
	}
	if !busyAfter.Now.After(busyBefore.Now) {
		t.Errorf("busy home clock did not advance: %v -> %v", busyBefore.Now, busyAfter.Now)
	}

	// The idle home was never pumped: its simulator clock is still at its
	// creation instant (RunUntil only advances to executed events).
	idle, err := m.HomeStatus("home-1")
	if err != nil {
		t.Fatal(err)
	}
	idleRT, err := m.Runtime("home-1")
	if err != nil {
		t.Fatal(err)
	}
	if mb := idleRT.Mailbox(); mb.Accepted != 0 {
		t.Errorf("idle home accepted %d ops, want 0", mb.Accepted)
	}
	if idle.Pending != 0 || idle.Routines != 0 {
		t.Errorf("idle home status = %+v, want untouched", idle)
	}
}

// Package lineage implements SafeHome's locking data-structure (§4.2–4.3 of
// the paper): per-device lineages of lock-access entries, the four
// serializability invariants, gap search for the Timeline scheduler,
// pre-/post-lease placement, commit compaction ("last writer wins"),
// current-device-status inference, and rollback targets for aborts.
//
// The lineage table is a purely in-memory, single-threaded structure owned by
// the Eventual Visibility controller; it never talks to devices.
package lineage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Status is the lock status of a lock-access entry (Fig 5).
type Status int

const (
	// Scheduled means the routine is planned to acquire the lock but has not
	// executed any command on the device yet.
	Scheduled Status = iota
	// Acquired means the routine currently holds and uses the lock.
	Acquired
	// Released means the routine is done with the device (its last command on
	// the device completed, or it finished); successors may acquire.
	Released
)

func (s Status) String() string {
	switch s {
	case Scheduled:
		return "S"
	case Acquired:
		return "A"
	case Released:
		return "R"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Access is one lock-access entry in a device's lineage: which routine plans
// to (or does) hold the device's virtual lock, what state it drives the
// device to, and the estimated start/duration of the hold (used by the
// Timeline scheduler's gap search and by lease revocation timeouts).
type Access struct {
	Routine  routine.ID
	Status   Status
	Target   device.State  // last state this routine has driven / will drive the device to
	Start    time.Time     // estimated start of the exclusive hold
	Duration time.Duration // estimated length of the exclusive hold
}

// End returns the estimated end of the hold.
func (a Access) End() time.Time { return a.Start.Add(a.Duration) }

// String renders the entry compactly, e.g. "R3[A]->ON".
func (a Access) String() string {
	return fmt.Sprintf("R%d[%s]->%s", a.Routine, a.Status, a.Target)
}

// Lineage is the ordered plan of lock transitions for one device: its last
// committed state followed by lock-access entries in serialization order.
type Lineage struct {
	Device    device.ID
	Committed device.State
	Accesses  []Access
}

// Errors returned by table operations.
var (
	ErrNoAccess   = errors.New("lineage: routine has no access on device")
	ErrHasAccess  = errors.New("lineage: routine already has an access on device")
	ErrBadStatus  = errors.New("lineage: invalid status transition")
	ErrViolation  = errors.New("lineage: invariant violation")
	ErrNoSuchSlot = errors.New("lineage: insertion anchor not found")
)

// Table is the virtual locking table: one lineage per device plus the last
// committed state of every device (Fig 4). It is not safe for concurrent use;
// the controllers that own it are single-threaded.
type Table struct {
	byDev map[device.ID]*Lineage
	order []device.ID
	// folded records, per device, the most recent routine whose lock-access
	// was folded away by commit compaction (Compact / CompactBefore). The
	// folded routine's write is the device's committed baseline, so every
	// later placement on the device must serialize after it — but its access
	// is gone from the lineage, so the controllers recover the constraint
	// from here (LastFolded) instead.
	folded map[device.ID]routine.ID
}

// NewTable builds a table whose committed states are the given initial device
// states. Devices not present are added lazily with an unknown committed
// state when first touched.
func NewTable(initial map[device.ID]device.State) *Table {
	t := &Table{byDev: make(map[device.ID]*Lineage), folded: make(map[device.ID]routine.ID)}
	ids := make([]device.ID, 0, len(initial))
	for d := range initial {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, d := range ids {
		t.ensure(d).Committed = initial[d]
	}
	return t
}

func (t *Table) ensure(d device.ID) *Lineage {
	l, ok := t.byDev[d]
	if !ok {
		l = &Lineage{Device: d}
		t.byDev[d] = l
		t.order = append(t.order, d)
	}
	return l
}

// Lineage returns the lineage for a device (creating an empty one if absent).
func (t *Table) Lineage(d device.ID) *Lineage { return t.ensure(d) }

// Devices returns all device IDs known to the table, in insertion order.
func (t *Table) Devices() []device.ID { return append([]device.ID(nil), t.order...) }

// Committed returns the last committed state of the device.
func (t *Table) Committed(d device.ID) device.State { return t.ensure(d).Committed }

// SetCommitted overwrites the committed state of the device.
func (t *Table) SetCommitted(d device.ID, s device.State) { t.ensure(d).Committed = s }

// Find returns the index of rid's access in d's lineage, or -1.
func (t *Table) Find(d device.ID, rid routine.ID) int {
	l := t.ensure(d)
	for i, a := range l.Accesses {
		if a.Routine == rid {
			return i
		}
	}
	return -1
}

// Access returns rid's access entry on d.
func (t *Table) Access(d device.ID, rid routine.ID) (Access, bool) {
	if i := t.Find(d, rid); i >= 0 {
		return t.ensure(d).Accesses[i], true
	}
	return Access{}, false
}

// Append adds a Scheduled access at the tail of d's lineage. It returns the
// routines that precede the new access (its per-device preSet).
func (t *Table) Append(d device.ID, a Access) ([]routine.ID, error) {
	l := t.ensure(d)
	if t.Find(d, a.Routine) >= 0 {
		return nil, fmt.Errorf("%w: R%d on %s", ErrHasAccess, a.Routine, d)
	}
	pre := routinesOf(l.Accesses)
	l.Accesses = append(l.Accesses, a)
	return pre, nil
}

// InsertAt inserts an access at position idx of d's lineage (0 = before
// everything). It returns the per-device preSet and postSet implied by the
// position.
func (t *Table) InsertAt(d device.ID, idx int, a Access) (pre, post []routine.ID, err error) {
	l := t.ensure(d)
	if idx >= 0 && idx <= len(l.Accesses) && t.Find(d, a.Routine) < 0 {
		pre = routinesOf(l.Accesses[:idx])
		post = routinesOf(l.Accesses[idx:])
	}
	if err := t.PlaceAt(d, idx, a); err != nil {
		return nil, nil, err
	}
	return pre, post, nil
}

// PlaceAt is the allocation-free core of InsertAt: it inserts the access at
// position idx of d's lineage without materializing the pre/post routine
// sets. The schedulers use it on the hot path (they track pre/post in
// reusable scratch sets of their own); InsertAt stays as the convenience
// wrapper.
func (t *Table) PlaceAt(d device.ID, idx int, a Access) error {
	l := t.ensure(d)
	if t.Find(d, a.Routine) >= 0 {
		return fmt.Errorf("%w: R%d on %s", ErrHasAccess, a.Routine, d)
	}
	if idx < 0 || idx > len(l.Accesses) {
		return fmt.Errorf("%w: index %d out of range [0,%d]", ErrNoSuchSlot, idx, len(l.Accesses))
	}
	l.Accesses = append(l.Accesses, Access{})
	copy(l.Accesses[idx+1:], l.Accesses[idx:])
	l.Accesses[idx] = a
	return nil
}

// InsertBefore inserts an access immediately before the access of routine
// `anchor` in d's lineage (the pre-lease placement of Fig 6b).
func (t *Table) InsertBefore(d device.ID, a Access, anchor routine.ID) (pre, post []routine.ID, err error) {
	idx := t.Find(d, anchor)
	if idx < 0 {
		return nil, nil, fmt.Errorf("%w: anchor R%d on %s", ErrNoSuchSlot, anchor, d)
	}
	return t.InsertAt(d, idx, a)
}

// InsertAfter inserts an access immediately after the access of routine
// `anchor` in d's lineage (the post-lease placement of Fig 6c).
func (t *Table) InsertAfter(d device.ID, a Access, anchor routine.ID) (pre, post []routine.ID, err error) {
	idx := t.Find(d, anchor)
	if idx < 0 {
		return nil, nil, fmt.Errorf("%w: anchor R%d on %s", ErrNoSuchSlot, anchor, d)
	}
	return t.InsertAt(d, idx+1, a)
}

// SetStatus transitions rid's access on d to the given status. The only legal
// transitions are Scheduled→Acquired, Acquired→Released and (for early
// placement bookkeeping) Scheduled→Released.
func (t *Table) SetStatus(d device.ID, rid routine.ID, s Status) error {
	idx := t.Find(d, rid)
	if idx < 0 {
		return fmt.Errorf("%w: R%d on %s", ErrNoAccess, rid, d)
	}
	a := &t.ensure(d).Accesses[idx]
	if s < a.Status {
		return fmt.Errorf("%w: R%d on %s: %v -> %v", ErrBadStatus, rid, d, a.Status, s)
	}
	a.Status = s
	return nil
}

// SetTarget records the state rid's most recent command drove d to. It keeps
// the lineage usable for current-state inference (Fig 8) and for rollbacks.
func (t *Table) SetTarget(d device.ID, rid routine.ID, st device.State) error {
	idx := t.Find(d, rid)
	if idx < 0 {
		return fmt.Errorf("%w: R%d on %s", ErrNoAccess, rid, d)
	}
	t.ensure(d).Accesses[idx].Target = st
	return nil
}

// Status returns the current status of rid's access on d.
func (t *Table) Status(d device.ID, rid routine.ID) (Status, bool) {
	a, ok := t.Access(d, rid)
	return a.Status, ok
}

// RemoveAccess deletes rid's access from d's lineage (no-op if absent).
func (t *Table) RemoveAccess(d device.ID, rid routine.ID) {
	l := t.ensure(d)
	idx := t.Find(d, rid)
	if idx < 0 {
		return
	}
	l.Accesses = append(l.Accesses[:idx], l.Accesses[idx+1:]...)
}

// RemoveRoutine deletes rid's accesses from every lineage and returns the
// devices it was removed from.
func (t *Table) RemoveRoutine(rid routine.ID) []device.ID {
	var out []device.ID
	for _, d := range t.order {
		if t.Find(d, rid) >= 0 {
			t.RemoveAccess(d, rid)
			out = append(out, d)
		}
	}
	return out
}

// CanAcquire reports whether rid may acquire d's lock right now: rid has an
// access on d and every access before it is Released.
func (t *Table) CanAcquire(d device.ID, rid routine.ID) bool {
	l := t.ensure(d)
	idx := t.Find(d, rid)
	if idx < 0 {
		return false
	}
	for i := 0; i < idx; i++ {
		if l.Accesses[i].Status != Released {
			return false
		}
	}
	return true
}

// Holder returns the routine whose access on d is currently Acquired (at most
// one, by Invariant 2), or routine.None.
func (t *Table) Holder(d device.ID) routine.ID {
	for _, a := range t.ensure(d).Accesses {
		if a.Status == Acquired {
			return a.Routine
		}
	}
	return routine.None
}

// NextWaiter returns the first non-Released access's routine on d (the
// effective current or next lock owner), or routine.None.
func (t *Table) NextWaiter(d device.ID) routine.ID {
	for _, a := range t.ensure(d).Accesses {
		if a.Status != Released {
			return a.Routine
		}
	}
	return routine.None
}

// PreSet returns the routines whose access on d is strictly before rid's.
func (t *Table) PreSet(d device.ID, rid routine.ID) []routine.ID {
	idx := t.Find(d, rid)
	if idx < 0 {
		return nil
	}
	return routinesOf(t.ensure(d).Accesses[:idx])
}

// PostSet returns the routines whose access on d is strictly after rid's.
func (t *Table) PostSet(d device.ID, rid routine.ID) []routine.ID {
	idx := t.Find(d, rid)
	if idx < 0 {
		return nil
	}
	return routinesOf(t.ensure(d).Accesses[idx+1:])
}

// CurrentState infers the device's current state from the lineage alone
// (Fig 8), without querying the device:
//
//  1. an Acquired access exists → its Target;
//  2. otherwise the right-most Released access with a known target → its Target;
//  3. otherwise the committed state.
func (t *Table) CurrentState(d device.ID) device.State {
	l := t.ensure(d)
	for _, a := range l.Accesses {
		if a.Status == Acquired && a.Target != device.StateUnknown {
			return a.Target
		}
	}
	for i := len(l.Accesses) - 1; i >= 0; i-- {
		if l.Accesses[i].Status == Released && l.Accesses[i].Target != device.StateUnknown {
			return l.Accesses[i].Target
		}
	}
	return l.Committed
}

// RollbackTarget returns the state device d should be restored to if routine
// rid aborts: the Target of the access immediately to the left of rid's entry
// (if it has a known target), else the committed state (§4.3 "Aborts and
// Rollbacks").
func (t *Table) RollbackTarget(d device.ID, rid routine.ID) device.State {
	l := t.ensure(d)
	idx := t.Find(d, rid)
	if idx < 0 {
		return l.Committed
	}
	for i := idx - 1; i >= 0; i-- {
		if l.Accesses[i].Target != device.StateUnknown {
			return l.Accesses[i].Target
		}
	}
	return l.Committed
}

// LastAcquirerWas reports whether routine rid is the most recent routine to
// have actually held (Acquired or later Released after acquiring) device d —
// i.e. whether an abort of rid needs to physically restore d (§4.3).
// Accesses that are still Scheduled never held the device.
func (t *Table) LastAcquirerWas(d device.ID, rid routine.ID) bool {
	l := t.ensure(d)
	last := routine.None
	for _, a := range l.Accesses {
		if a.Status == Acquired || (a.Status == Released && a.Target != device.StateUnknown) {
			last = a.Routine
		}
	}
	return last == rid && last != routine.None
}

// Compact performs commit compaction for routine rid (Fig 7): for every
// device rid has an access on, the committed state becomes rid's recorded
// target (when known), and rid's access plus every access before it are
// removed — later routines in the serialization order will overwrite earlier
// routines' effects ("last writer wins"). It returns, per device, the
// routines whose accesses were folded away (excluding rid itself).
func (t *Table) Compact(rid routine.ID) map[device.ID][]routine.ID {
	folded := make(map[device.ID][]routine.ID)
	for _, d := range t.order {
		l := t.byDev[d]
		idx := t.Find(d, rid)
		if idx < 0 {
			continue
		}
		if tgt := l.Accesses[idx].Target; tgt != device.StateUnknown {
			l.Committed = tgt
		}
		if idx > 0 {
			folded[d] = routinesOf(l.Accesses[:idx])
		}
		l.Accesses = append([]Access(nil), l.Accesses[idx+1:]...)
		t.folded[d] = rid
	}
	return folded
}

// LastFolded returns the most recent routine whose access on d was folded
// away by compaction (routine.None if compaction never touched d). Later
// placements on d must serialize after it.
func (t *Table) LastFolded(d device.ID) routine.ID {
	return t.folded[d]
}

// CompactBefore folds away fully released lock-access history older than the
// horizon: for every device, the leading run of Released accesses whose
// estimated hold ended before t is removed, each removed access's known
// target folded into the committed state (last writer wins, exactly like
// commit compaction). It returns the number of accesses removed.
//
// This is the maintenance companion of Compact for long-lived homes: commit
// compaction only folds history beneath a *committing* routine, so a device
// whose later accessors are all still alive (e.g. released early via
// post-lease and blocked elsewhere) accumulates Released entries that every
// gap scan then walks. Folding a Released access makes its effect permanent:
// an abort of its routine after the fold no longer restores the device —
// callers must pick a horizon comfortably above any live routine's span.
func (t *Table) CompactBefore(horizon time.Time) int {
	removed := 0
	for _, d := range t.order {
		l := t.byDev[d]
		cut := 0
		for cut < len(l.Accesses) {
			a := l.Accesses[cut]
			if a.Status != Released || !a.End().Before(horizon) {
				break
			}
			if a.Target != device.StateUnknown {
				l.Committed = a.Target
			}
			t.folded[d] = a.Routine
			cut++
		}
		if cut > 0 {
			l.Accesses = l.Accesses[:copy(l.Accesses, l.Accesses[cut:])]
			removed += cut
		}
	}
	return removed
}

// Gap is a free interval in a device's lineage where a new lock-access can be
// placed. Index is the insertion position into Accesses; End is zero for the
// unbounded gap after the last access.
type Gap struct {
	Index int
	Start time.Time
	End   time.Time
}

// Bounded reports whether the gap has a finite end.
func (g Gap) Bounded() bool { return !g.End.IsZero() }

// Fits reports whether a hold of length dur starting no earlier than earliest
// fits inside the gap, and returns the start time it would get.
func (g Gap) Fits(earliest time.Time, dur time.Duration) (time.Time, bool) {
	start := g.Start
	if earliest.After(start) {
		start = earliest
	}
	if !g.Bounded() {
		return start, true
	}
	if start.Add(dur).After(g.End) {
		return time.Time{}, false
	}
	return start, true
}

// Gaps enumerates the free intervals of d's lineage based on the estimated
// start/duration of its existing accesses, beginning no earlier than `from`.
// The final gap (after the last access) is unbounded. Used by the Timeline
// scheduler's placement search (Fig 9, Algorithm 1).
func (t *Table) Gaps(d device.ID, from time.Time) []Gap {
	return t.GapsInto(nil, d, from)
}

// GapsInto is Gaps writing into a caller-provided buffer: the gaps are
// appended to buf and the extended slice returned, so a caller that reuses
// its buffer (the Timeline scheduler keeps one per search depth) enumerates
// gaps without allocating.
func (t *Table) GapsInto(buf []Gap, d device.ID, from time.Time) []Gap {
	l := t.ensure(d)
	cursor := from
	for i, a := range l.Accesses {
		if a.Start.After(cursor) {
			buf = append(buf, Gap{Index: i, Start: cursor, End: a.Start})
		}
		if e := a.End(); e.After(cursor) {
			cursor = e
		}
	}
	return append(buf, Gap{Index: len(l.Accesses), Start: cursor})
}

// TailStart returns the start of the unbounded gap after the last access of
// d's lineage, i.e. the earliest time a new tail access could begin: the
// later of `from` and the latest estimated access end. It is the
// allocation-free equivalent of Gaps(d, from)[last].Start, used by the
// append-at-end placement path.
func (t *Table) TailStart(d device.ID, from time.Time) time.Time {
	cursor := from
	for _, a := range t.ensure(d).Accesses {
		if e := a.End(); e.After(cursor) {
			cursor = e
		}
	}
	return cursor
}

// --- invariants (§4.3) -----------------------------------------------------

// CheckInvariants verifies invariants 1–4 of §4.3 and returns a descriptive
// error for the first violation found. It is used by tests and can be enabled
// at runtime by the EV controller in debug mode.
func (t *Table) CheckInvariants() error {
	// Invariant 1: lock-accesses in a lineage do not overlap in (estimated)
	// time, when estimates are present.
	for _, d := range t.order {
		l := t.byDev[d]
		for i := 1; i < len(l.Accesses); i++ {
			prev, cur := l.Accesses[i-1], l.Accesses[i]
			if prev.Start.IsZero() || cur.Start.IsZero() || prev.Duration == 0 || cur.Duration == 0 {
				continue
			}
			if prev.End().After(cur.Start) && prev.Status == Scheduled && cur.Status == Scheduled {
				return fmt.Errorf("%w: invariant 1: %s accesses %v and %v overlap", ErrViolation, d, prev, cur)
			}
		}
	}
	// Invariant 2: at most one Acquired access per lineage.
	for _, d := range t.order {
		acquired := 0
		for _, a := range t.byDev[d].Accesses {
			if a.Status == Acquired {
				acquired++
			}
		}
		if acquired > 1 {
			return fmt.Errorf("%w: invariant 2: device %s has %d Acquired accesses", ErrViolation, d, acquired)
		}
	}
	// Invariant 3: [R]* [A]? [S]* per lineage.
	for _, d := range t.order {
		phase := Released // expect Released first
		for _, a := range t.byDev[d].Accesses {
			switch a.Status {
			case Released:
				if phase != Released {
					return fmt.Errorf("%w: invariant 3: device %s has Released after %v", ErrViolation, d, phase)
				}
			case Acquired:
				if phase == Scheduled {
					return fmt.Errorf("%w: invariant 3: device %s has Acquired after Scheduled", ErrViolation, d)
				}
				phase = Acquired
			case Scheduled:
				phase = Scheduled
			}
		}
	}
	// Invariant 4: consistent serialize-before ordering across lineages.
	type pair struct{ a, b routine.ID }
	seen := make(map[pair]device.ID)
	for _, d := range t.order {
		accs := t.byDev[d].Accesses
		for i := 0; i < len(accs); i++ {
			for j := i + 1; j < len(accs); j++ {
				ri, rj := accs[i].Routine, accs[j].Routine
				if ri == rj {
					continue
				}
				if prevDev, ok := seen[pair{rj, ri}]; ok {
					return fmt.Errorf("%w: invariant 4: R%d before R%d on %s but R%d before R%d on %s",
						ErrViolation, rj, ri, prevDev, ri, rj, d)
				}
				if _, ok := seen[pair{ri, rj}]; !ok {
					seen[pair{ri, rj}] = d
				}
			}
		}
	}
	return nil
}

// String renders the whole table, one line per device, in the style of Fig 5.
func (t *Table) String() string {
	var b strings.Builder
	for _, d := range t.order {
		l := t.byDev[d]
		fmt.Fprintf(&b, "%-12s commit=%-8s", d, l.Committed)
		for _, a := range l.Accesses {
			fmt.Fprintf(&b, " | %s", a)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func routinesOf(accs []Access) []routine.ID {
	return AccessRoutinesInto(make([]routine.ID, 0, len(accs)), accs)
}

// AccessRoutinesInto appends the routine IDs of the given accesses to dst
// and returns the extended slice — the append-style, allocation-free
// counterpart of the package-private routinesOf (which backs PreSet/PostSet
// and friends). Hot-path callers that need the IDs as a slice can reuse a
// buffer; the EV schedulers go one step further and accumulate IDs straight
// into their scratch sets without materializing a slice at all.
func AccessRoutinesInto(dst []routine.ID, accs []Access) []routine.ID {
	for _, a := range accs {
		dst = append(dst, a.Routine)
	}
	return dst
}

package lineage

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

var (
	devA = device.ID("ac")
	devB = device.ID("window")
	devC = device.ID("light")
	t0   = time.Date(2021, 4, 26, 8, 0, 0, 0, time.UTC)
)

func newTestTable() *Table {
	return NewTable(map[device.ID]device.State{
		devA: device.Off,
		devB: device.Open,
		devC: device.Off,
	})
}

func TestNewTableCommittedStates(t *testing.T) {
	tab := newTestTable()
	if got := tab.Committed(devA); got != device.Off {
		t.Fatalf("Committed(%s) = %q, want OFF", devA, got)
	}
	if got := tab.Committed(devB); got != device.Open {
		t.Fatalf("Committed(%s) = %q, want OPEN", devB, got)
	}
	if got := tab.Committed("unknown-device"); got != device.StateUnknown {
		t.Fatalf("Committed(unknown) = %q, want unknown", got)
	}
	if len(tab.Devices()) != 4 {
		t.Fatalf("Devices() = %v, want 4 entries (3 initial + lazily added)", tab.Devices())
	}
}

func TestAppendAndFind(t *testing.T) {
	tab := newTestTable()
	pre, err := tab.Append(devA, Access{Routine: 1, Status: Scheduled, Target: device.On})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if len(pre) != 0 {
		t.Fatalf("first append preSet = %v, want empty", pre)
	}
	pre, err = tab.Append(devA, Access{Routine: 2, Status: Scheduled, Target: device.Off})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if len(pre) != 1 || pre[0] != 1 {
		t.Fatalf("second append preSet = %v, want [1]", pre)
	}
	if _, err := tab.Append(devA, Access{Routine: 1}); !errors.Is(err, ErrHasAccess) {
		t.Fatalf("duplicate append err = %v, want ErrHasAccess", err)
	}
	if idx := tab.Find(devA, 2); idx != 1 {
		t.Fatalf("Find(R2) = %d, want 1", idx)
	}
	if idx := tab.Find(devA, 99); idx != -1 {
		t.Fatalf("Find(R99) = %d, want -1", idx)
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled})
	mustAppend(t, tab, devA, Access{Routine: 3, Status: Scheduled})

	pre, post, err := tab.InsertBefore(devA, Access{Routine: 2, Status: Scheduled}, 3)
	if err != nil {
		t.Fatalf("InsertBefore: %v", err)
	}
	if len(pre) != 1 || pre[0] != 1 {
		t.Fatalf("preSet = %v, want [1]", pre)
	}
	if len(post) != 1 || post[0] != 3 {
		t.Fatalf("postSet = %v, want [3]", post)
	}
	wantOrder := []routine.ID{1, 2, 3}
	for i, a := range tab.Lineage(devA).Accesses {
		if a.Routine != wantOrder[i] {
			t.Fatalf("lineage order = %v, want %v", tab.Lineage(devA).Accesses, wantOrder)
		}
	}

	_, _, err = tab.InsertAfter(devA, Access{Routine: 4, Status: Scheduled}, 3)
	if err != nil {
		t.Fatalf("InsertAfter: %v", err)
	}
	if idx := tab.Find(devA, 4); idx != 3 {
		t.Fatalf("R4 at index %d, want 3 (after R3)", idx)
	}

	if _, _, err := tab.InsertBefore(devA, Access{Routine: 5}, 42); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("InsertBefore missing anchor err = %v, want ErrNoSuchSlot", err)
	}
}

func TestStatusTransitions(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled})
	if err := tab.SetStatus(devA, 1, Acquired); err != nil {
		t.Fatalf("Scheduled->Acquired: %v", err)
	}
	if err := tab.SetStatus(devA, 1, Released); err != nil {
		t.Fatalf("Acquired->Released: %v", err)
	}
	if err := tab.SetStatus(devA, 1, Acquired); !errors.Is(err, ErrBadStatus) {
		t.Fatalf("Released->Acquired err = %v, want ErrBadStatus", err)
	}
	if err := tab.SetStatus(devA, 99, Acquired); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("missing access err = %v, want ErrNoAccess", err)
	}
}

func TestCanAcquireAndHolder(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Scheduled})

	if !tab.CanAcquire(devA, 1) {
		t.Fatal("R1 should be able to acquire (head of lineage)")
	}
	if tab.CanAcquire(devA, 2) {
		t.Fatal("R2 must not acquire while R1 is not Released")
	}
	if tab.CanAcquire(devA, 99) {
		t.Fatal("routine without access must not acquire")
	}

	mustStatus(t, tab, devA, 1, Acquired)
	if got := tab.Holder(devA); got != 1 {
		t.Fatalf("Holder = R%d, want R1", got)
	}
	if got := tab.NextWaiter(devA); got != 1 {
		t.Fatalf("NextWaiter = R%d, want R1", got)
	}
	mustStatus(t, tab, devA, 1, Released)
	if got := tab.Holder(devA); got != routine.None {
		t.Fatalf("Holder after release = R%d, want none", got)
	}
	if got := tab.NextWaiter(devA); got != 2 {
		t.Fatalf("NextWaiter = R%d, want R2", got)
	}
	if !tab.CanAcquire(devA, 2) {
		t.Fatal("R2 should be able to acquire after R1 released")
	}
}

func TestCurrentStateInference(t *testing.T) {
	// The three cases of Fig 8.
	tab := newTestTable()

	// Case (c): no accesses -> committed state.
	if got := tab.CurrentState(devA); got != device.Off {
		t.Fatalf("empty lineage current state = %q, want committed OFF", got)
	}

	// Case (b): right-most Released entry.
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Released, Target: device.On})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Released, Target: device.Off})
	if got := tab.CurrentState(devA); got != device.Off {
		t.Fatalf("released-only current state = %q, want OFF (right-most released)", got)
	}

	// Case (a): Acquired entry wins.
	mustAppend(t, tab, devA, Access{Routine: 3, Status: Scheduled})
	mustStatus(t, tab, devA, 3, Acquired)
	if err := tab.SetTarget(devA, 3, device.On); err != nil {
		t.Fatalf("SetTarget: %v", err)
	}
	if got := tab.CurrentState(devA); got != device.On {
		t.Fatalf("acquired current state = %q, want ON", got)
	}

	// An Acquired access that has not executed a command yet (unknown target)
	// should not mask the released history.
	tab2 := newTestTable()
	mustAppend(t, tab2, devA, Access{Routine: 1, Status: Released, Target: device.On})
	mustAppend(t, tab2, devA, Access{Routine: 2, Status: Acquired})
	if got := tab2.CurrentState(devA); got != device.On {
		t.Fatalf("acquired-no-target current state = %q, want ON", got)
	}
}

func TestRollbackTarget(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Released, Target: device.On})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Acquired, Target: device.Off})

	if got := tab.RollbackTarget(devA, 2); got != device.On {
		t.Fatalf("RollbackTarget(R2) = %q, want ON (previous entry)", got)
	}
	if got := tab.RollbackTarget(devA, 1); got != device.Off {
		t.Fatalf("RollbackTarget(R1) = %q, want committed OFF", got)
	}
	if got := tab.RollbackTarget(devA, 99); got != device.Off {
		t.Fatalf("RollbackTarget(missing) = %q, want committed OFF", got)
	}
}

func TestLastAcquirerWas(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Released, Target: device.On})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Acquired, Target: device.Off})
	mustAppend(t, tab, devA, Access{Routine: 3, Status: Scheduled})

	if !tab.LastAcquirerWas(devA, 2) {
		t.Fatal("R2 holds the device; it is the last acquirer")
	}
	if tab.LastAcquirerWas(devA, 1) {
		t.Fatal("R1 is not the last acquirer (R2 acquired after it)")
	}
	if tab.LastAcquirerWas(devA, 3) {
		t.Fatal("R3 is only Scheduled; it never acquired the device")
	}
}

func TestRemoveRoutine(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled})
	mustAppend(t, tab, devB, Access{Routine: 1, Status: Scheduled})
	mustAppend(t, tab, devB, Access{Routine: 2, Status: Scheduled})

	removed := tab.RemoveRoutine(1)
	if len(removed) != 2 {
		t.Fatalf("RemoveRoutine removed from %v, want 2 devices", removed)
	}
	if tab.Find(devA, 1) != -1 || tab.Find(devB, 1) != -1 {
		t.Fatal("R1 accesses should be gone")
	}
	if tab.Find(devB, 2) != 0 {
		t.Fatal("R2 access on window should remain and shift to index 0")
	}
}

func TestCompactLastWriterWins(t *testing.T) {
	// Mirrors Fig 7: R3 commits while earlier routines still have accesses on
	// shared devices; their accesses are folded away and the committed state
	// becomes R3's write.
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Released, Target: device.On})
	mustAppend(t, tab, devA, Access{Routine: 3, Status: Released, Target: device.Off})
	mustAppend(t, tab, devB, Access{Routine: 3, Status: Released, Target: device.Closed})
	mustAppend(t, tab, devB, Access{Routine: 4, Status: Scheduled})

	folded := tab.Compact(3)

	if got := tab.Committed(devA); got != device.Off {
		t.Fatalf("committed(%s) = %q, want OFF (R3's write)", devA, got)
	}
	if got := tab.Committed(devB); got != device.Closed {
		t.Fatalf("committed(%s) = %q, want CLOSED", devB, got)
	}
	if len(tab.Lineage(devA).Accesses) != 0 {
		t.Fatalf("devA lineage should be empty after compaction, got %v", tab.Lineage(devA).Accesses)
	}
	if got := len(tab.Lineage(devB).Accesses); got != 1 {
		t.Fatalf("devB lineage should keep only R4, got %d entries", got)
	}
	if rs := folded[devA]; len(rs) != 1 || rs[0] != 1 {
		t.Fatalf("folded[%s] = %v, want [1]", devA, rs)
	}
}

func TestCompactWithoutTargetKeepsCommitted(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Released})
	tab.Compact(1)
	if got := tab.Committed(devA); got != device.Off {
		t.Fatalf("committed = %q, want original OFF (no target recorded)", got)
	}
}

func TestGapsUnbounded(t *testing.T) {
	tab := newTestTable()
	gaps := tab.Gaps(devA, t0)
	if len(gaps) != 1 {
		t.Fatalf("empty lineage gaps = %v, want a single unbounded gap", gaps)
	}
	if gaps[0].Bounded() || !gaps[0].Start.Equal(t0) || gaps[0].Index != 0 {
		t.Fatalf("unexpected gap %+v", gaps[0])
	}
	if start, ok := gaps[0].Fits(t0.Add(time.Minute), time.Hour); !ok || !start.Equal(t0.Add(time.Minute)) {
		t.Fatalf("unbounded gap should fit anything, got %v %v", start, ok)
	}
}

func TestGapsBetweenAccesses(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled, Start: t0, Duration: 10 * time.Minute})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Scheduled, Start: t0.Add(30 * time.Minute), Duration: 10 * time.Minute})

	gaps := tab.Gaps(devA, t0)
	if len(gaps) != 2 {
		t.Fatalf("gaps = %+v, want 2 (between R1 and R2, and after R2)", gaps)
	}
	mid := gaps[0]
	if mid.Index != 1 {
		t.Fatalf("middle gap index = %d, want 1", mid.Index)
	}
	if !mid.Start.Equal(t0.Add(10*time.Minute)) || !mid.End.Equal(t0.Add(30*time.Minute)) {
		t.Fatalf("middle gap = %+v, want [t0+10m, t0+30m)", mid)
	}
	if _, ok := mid.Fits(t0, 25*time.Minute); ok {
		t.Fatal("25-minute hold must not fit in a 20-minute gap")
	}
	if start, ok := mid.Fits(t0, 15*time.Minute); !ok || !start.Equal(t0.Add(10*time.Minute)) {
		t.Fatalf("15-minute hold should fit starting at gap start, got %v %v", start, ok)
	}
	tail := gaps[1]
	if tail.Bounded() || tail.Index != 2 {
		t.Fatalf("tail gap = %+v, want unbounded at index 2", tail)
	}
}

func TestInvariant2Violation(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Acquired})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Acquired})
	err := tab.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "invariant 2") {
		t.Fatalf("CheckInvariants = %v, want invariant 2 violation", err)
	}
}

func TestInvariant3Violation(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Released})
	err := tab.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "invariant 3") {
		t.Fatalf("CheckInvariants = %v, want invariant 3 violation", err)
	}
}

func TestInvariant4Violation(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Scheduled})
	mustAppend(t, tab, devB, Access{Routine: 2, Status: Scheduled})
	mustAppend(t, tab, devB, Access{Routine: 1, Status: Scheduled})
	err := tab.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "invariant 4") {
		t.Fatalf("CheckInvariants = %v, want invariant 4 violation", err)
	}
}

func TestInvariantsHoldOnWellFormedTable(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Released, Target: device.On})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Acquired, Target: device.Off})
	mustAppend(t, tab, devA, Access{Routine: 3, Status: Scheduled})
	mustAppend(t, tab, devB, Access{Routine: 2, Status: Scheduled})
	mustAppend(t, tab, devB, Access{Routine: 3, Status: Scheduled})
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
	if !strings.Contains(tab.String(), "R2[A]->OFF") {
		t.Fatalf("String() missing acquired entry:\n%s", tab.String())
	}
}

// Property: appending routines in the same relative order to every lineage
// always satisfies the invariants, regardless of which subset of devices each
// routine touches.
func TestPropertyAppendOrderPreservesInvariants(t *testing.T) {
	f := func(masks []uint8) bool {
		if len(masks) > 12 {
			masks = masks[:12]
		}
		devs := []device.ID{devA, devB, devC}
		tab := newTestTable()
		for i, m := range masks {
			rid := routine.ID(i + 1)
			for bit, d := range devs {
				if m&(1<<uint(bit)) == 0 {
					continue
				}
				if _, err := tab.Append(d, Access{Routine: rid, Status: Scheduled}); err != nil {
					return false
				}
			}
		}
		return tab.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CurrentState never invents a state — it is always either the
// committed state or the target of one of the accesses.
func TestPropertyCurrentStateIsKnownValue(t *testing.T) {
	states := []device.State{device.On, device.Off, device.Open, device.Closed}
	f := func(statuses []uint8, targets []uint8) bool {
		tab := newTestTable()
		n := len(statuses)
		if n > 10 {
			n = 10
		}
		valid := map[device.State]bool{device.Off: true} // committed state of devA
		phase := Released
		for i := 0; i < n; i++ {
			st := Status(statuses[i] % 3)
			// Keep invariant 3 satisfied so the table is well-formed.
			if st < phase {
				st = phase
			}
			if st == Acquired && phase == Acquired {
				st = Scheduled
			}
			phase = st
			tgt := states[0]
			if len(targets) > 0 {
				tgt = states[int(targets[i%len(targets)])%len(states)]
			}
			if st == Scheduled {
				tgt = device.StateUnknown
			}
			if _, err := tab.Append(devA, Access{Routine: routine.ID(i + 1), Status: st, Target: tgt}); err != nil {
				return false
			}
			if tgt != device.StateUnknown {
				valid[tgt] = true
			}
		}
		return valid[tab.CurrentState(devA)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func mustAppend(t *testing.T, tab *Table, d device.ID, a Access) {
	t.Helper()
	if _, err := tab.Append(d, a); err != nil {
		t.Fatalf("Append(%s, %v): %v", d, a, err)
	}
}

func mustStatus(t *testing.T, tab *Table, d device.ID, rid routine.ID, s Status) {
	t.Helper()
	if err := tab.SetStatus(d, rid, s); err != nil {
		t.Fatalf("SetStatus(%s, R%d, %v): %v", d, rid, s, err)
	}
}

// --- allocation-free hot-path helpers ----------------------------------------

func TestPlaceAtMatchesInsertAt(t *testing.T) {
	mk := func() *Table {
		tab := newTestTable()
		mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled, Start: t0, Duration: 10 * time.Minute})
		mustAppend(t, tab, devA, Access{Routine: 2, Status: Scheduled, Start: t0.Add(30 * time.Minute), Duration: 10 * time.Minute})
		return tab
	}
	probe := Access{Routine: 7, Status: Scheduled, Start: t0.Add(15 * time.Minute), Duration: time.Minute}

	for idx := 0; idx <= 2; idx++ {
		a, b := mk(), mk()
		if _, _, err := a.InsertAt(devA, idx, probe); err != nil {
			t.Fatalf("InsertAt(%d): %v", idx, err)
		}
		if err := b.PlaceAt(devA, idx, probe); err != nil {
			t.Fatalf("PlaceAt(%d): %v", idx, err)
		}
		if got, want := b.String(), a.String(); got != want {
			t.Fatalf("PlaceAt(%d) diverged from InsertAt:\n got: %s\nwant: %s", idx, got, want)
		}
	}

	tab := mk()
	if err := tab.PlaceAt(devA, 5, probe); !errors.Is(err, ErrNoSuchSlot) {
		t.Fatalf("out-of-range PlaceAt err = %v, want ErrNoSuchSlot", err)
	}
	if err := tab.PlaceAt(devA, 0, Access{Routine: 1}); !errors.Is(err, ErrHasAccess) {
		t.Fatalf("duplicate PlaceAt err = %v, want ErrHasAccess", err)
	}
	if len(tab.Lineage(devA).Accesses) != 2 {
		t.Fatal("failed PlaceAt mutated the lineage")
	}
}

func TestGapsIntoReusesBuffer(t *testing.T) {
	tab := newTestTable()
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled, Start: t0.Add(10 * time.Minute), Duration: 10 * time.Minute})

	buf := make([]Gap, 0, 8)
	got := tab.GapsInto(buf[:0], devA, t0)
	want := tab.Gaps(devA, t0)
	if len(got) != len(want) {
		t.Fatalf("GapsInto = %+v, Gaps = %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GapsInto[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("GapsInto did not write into the caller's buffer")
	}
	// Appending into a reused buffer must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		buf = tab.GapsInto(buf[:0], devA, t0)
	})
	if allocs != 0 {
		t.Fatalf("GapsInto with reused buffer allocated %v times per run", allocs)
	}
}

func TestTailStart(t *testing.T) {
	tab := newTestTable()
	if got := tab.TailStart(devA, t0); !got.Equal(t0) {
		t.Fatalf("empty lineage TailStart = %v, want %v", got, t0)
	}
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Scheduled, Start: t0, Duration: 10 * time.Minute})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Scheduled, Start: t0.Add(30 * time.Minute), Duration: 10 * time.Minute})
	gaps := tab.Gaps(devA, t0)
	if got, want := tab.TailStart(devA, t0), gaps[len(gaps)-1].Start; !got.Equal(want) {
		t.Fatalf("TailStart = %v, want last gap start %v", got, want)
	}
	late := t0.Add(2 * time.Hour)
	if got := tab.TailStart(devA, late); !got.Equal(late) {
		t.Fatalf("TailStart(from late) = %v, want %v", got, late)
	}
}

func TestAccessRoutinesInto(t *testing.T) {
	accs := []Access{{Routine: 3}, {Routine: 1}, {Routine: 2}}
	got := AccessRoutinesInto(nil, accs)
	if len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("AccessRoutinesInto = %v", got)
	}
	// Appends after existing content.
	got = AccessRoutinesInto([]routine.ID{9}, accs[:1])
	if len(got) != 2 || got[0] != 9 || got[1] != 3 {
		t.Fatalf("AccessRoutinesInto(prefixed) = %v", got)
	}
	if AccessRoutinesInto(nil, nil) != nil {
		t.Fatal("empty input should return nil dst unchanged")
	}
}

func TestCompactBeforeFoldsOldReleasedPrefix(t *testing.T) {
	tab := newTestTable()
	// devA: two old Released accesses, then a live (Acquired) one.
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Released, Target: device.On,
		Start: t0, Duration: time.Minute})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Released, Target: device.Off,
		Start: t0.Add(time.Minute), Duration: time.Minute})
	mustAppend(t, tab, devA, Access{Routine: 3, Status: Acquired, Target: device.On,
		Start: t0.Add(2 * time.Minute), Duration: time.Minute})
	// devB: a Released access too *young* to fold.
	mustAppend(t, tab, devB, Access{Routine: 4, Status: Released, Target: device.Closed,
		Start: t0.Add(time.Hour), Duration: time.Minute})

	horizon := t0.Add(30 * time.Minute)
	if got := tab.CompactBefore(horizon); got != 2 {
		t.Fatalf("CompactBefore removed %d accesses, want 2", got)
	}
	if got := tab.Committed(devA); got != device.Off {
		t.Fatalf("committed(%s) = %q, want OFF (last folded writer wins)", devA, got)
	}
	if got := len(tab.Lineage(devA).Accesses); got != 1 {
		t.Fatalf("devA keeps %d accesses, want 1 (the live one)", got)
	}
	if tab.Lineage(devA).Accesses[0].Routine != 3 {
		t.Fatalf("devA kept %v, want R3", tab.Lineage(devA).Accesses[0])
	}
	if got := len(tab.Lineage(devB).Accesses); got != 1 {
		t.Fatalf("devB lost its young access: %d left, want 1", got)
	}
	// CurrentState is preserved by the fold: the folded writer's target moved
	// into the committed state.
	if err := tab.CheckInvariants(); err != nil {
		t.Fatalf("invariants after CompactBefore: %v", err)
	}
	// Idempotent: nothing old remains.
	if got := tab.CompactBefore(horizon); got != 0 {
		t.Fatalf("second CompactBefore removed %d, want 0", got)
	}
}

func TestCompactBeforeStopsAtUnreleasedAccess(t *testing.T) {
	tab := newTestTable()
	// An old Acquired access blocks the fold: everything behind it stays,
	// even Released entries, because removal is prefix-only.
	mustAppend(t, tab, devA, Access{Routine: 1, Status: Acquired, Target: device.On,
		Start: t0, Duration: time.Minute})
	mustAppend(t, tab, devA, Access{Routine: 2, Status: Released, Target: device.Off,
		Start: t0.Add(time.Minute), Duration: time.Minute})

	if got := tab.CompactBefore(t0.Add(time.Hour)); got != 0 {
		t.Fatalf("CompactBefore removed %d accesses behind a live one, want 0", got)
	}
	if got := len(tab.Lineage(devA).Accesses); got != 2 {
		t.Fatalf("devA has %d accesses, want 2", got)
	}
	if got := tab.Committed(devA); got != device.Off {
		t.Fatalf("committed(%s) = %q, want untouched OFF", devA, got)
	}
}

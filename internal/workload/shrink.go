package workload

import (
	"safehome/internal/device"
)

// Shrink reduces a failing spec to a locally minimal one: `fails` must return
// true for specs that reproduce the failure (it is first checked on the input
// itself; if the input passes, it is returned unchanged). Shrinking greedily
// drops submission chunks (delta debugging: halves down to singletons), then
// failure injections, then individual commands inside the surviving routines,
// iterating to a fixpoint. Every accepted step strictly shrinks the spec, so
// the loop terminates. Unreferenced devices are pruned from the result.
//
// The predicate is invoked many times; it should run the spec and report
// whether the original violation reproduces.
func Shrink(spec Spec, fails func(Spec) bool) Spec {
	if !fails(spec) {
		return spec
	}
	cur := spec
	for changed := true; changed; {
		changed = false

		// Pass 1: drop contiguous submission chunks, halving the chunk size.
		for size := (len(cur.Submissions) + 1) / 2; size >= 1; size /= 2 {
			for i := 0; i+size <= len(cur.Submissions); {
				cand := cur.dropSubmissions(i, size)
				if fails(cand) {
					cur, changed = cand, true
				} else {
					i += size
				}
			}
		}

		// Pass 2: drop failure injections one at a time.
		for i := 0; i < len(cur.Failures); {
			cand := cur.dropFailure(i)
			if fails(cand) {
				cur, changed = cand, true
			} else {
				i++
			}
		}

		// Pass 3: drop individual commands, keeping at least one per routine.
		for si := range cur.Submissions {
			for ci := 0; len(cur.Submissions[si].Routine.Commands) > 1 &&
				ci < len(cur.Submissions[si].Routine.Commands); {
				cand := cur.dropCommand(si, ci)
				if fails(cand) {
					cur, changed = cand, true
				} else {
					ci++
				}
			}
		}
	}

	// Prune devices nothing references any more. Pruning cannot change
	// behaviour, but verify anyway and keep the unpruned spec if it somehow
	// stops reproducing.
	pruned := cur.pruneDevices()
	if len(pruned.Devices) < len(cur.Devices) && !fails(pruned) {
		return cur
	}
	return pruned
}

// dropSubmissions returns a copy of the spec without submissions [i, i+n).
func (s Spec) dropSubmissions(i, n int) Spec {
	out := s
	out.Submissions = make([]Submission, 0, len(s.Submissions)-n)
	out.Submissions = append(out.Submissions, s.Submissions[:i]...)
	out.Submissions = append(out.Submissions, s.Submissions[i+n:]...)
	return out
}

// dropFailure returns a copy of the spec without failure event i.
func (s Spec) dropFailure(i int) Spec {
	out := s
	out.Failures = make([]FailureEvent, 0, len(s.Failures)-1)
	out.Failures = append(out.Failures, s.Failures[:i]...)
	out.Failures = append(out.Failures, s.Failures[i+1:]...)
	return out
}

// dropCommand returns a copy of the spec with command ci removed from the
// routine of submission si (the routine is cloned, not mutated).
func (s Spec) dropCommand(si, ci int) Spec {
	out := s
	out.Submissions = make([]Submission, len(s.Submissions))
	copy(out.Submissions, s.Submissions)
	r := s.Submissions[si].Routine.Clone()
	r.Commands = append(r.Commands[:ci], r.Commands[ci+1:]...)
	out.Submissions[si].Routine = r
	return out
}

// pruneDevices drops devices no surviving submission or failure references.
func (s Spec) pruneDevices() Spec {
	used := make(map[device.ID]bool)
	for _, sub := range s.Submissions {
		for _, c := range sub.Routine.Commands {
			used[c.Device] = true
			if c.Condition != nil {
				used[c.Condition.Device] = true
			}
		}
	}
	for _, f := range s.Failures {
		used[f.Device] = true
	}
	out := s
	out.Devices = make([]device.Info, 0, len(used))
	for _, d := range s.Devices {
		if used[d.ID] {
			out.Devices = append(out.Devices, d)
		}
	}
	return out
}

// TotalCommands counts commands across all submissions — the size measure
// shrinking minimizes, and a convenient summary for reports.
func (s Spec) TotalCommands() int {
	n := 0
	for _, sub := range s.Submissions {
		n += len(sub.Routine.Commands)
	}
	return n
}

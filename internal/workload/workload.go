// Package workload generates the routine workloads the paper evaluates
// SafeHome on: the parameterized microbenchmark of Table 3 (§7.3), the
// concurrency workload behind Fig 1, the five-routine example of Fig 2, and
// the three trace-based scenarios of §7.2 (Morning, Party, Factory).
//
// A workload is described by a Spec — a device inventory plus timed routine
// submissions and failure/restart injections — which the harness package
// replays against any visibility model. All generation is deterministic given
// a seed.
package workload

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/stats"
)

// Submission is one routine injected at a virtual-time offset from run start.
type Submission struct {
	At      time.Duration
	Routine *routine.Routine
	// User optionally names who triggered it (trace scenarios).
	User string
}

// FailureEvent is a fail-stop (or restart) injection at a virtual-time offset.
type FailureEvent struct {
	At      time.Duration
	Device  device.ID
	Restart bool // false = fail-stop, true = restart
}

// Spec is a complete, replayable workload.
type Spec struct {
	Name        string
	Devices     []device.Info
	Submissions []Submission
	Failures    []FailureEvent
	// JitterMax, when non-zero, asks the harness to add a uniform random
	// per-command latency in [0, JitterMax], modelling real device variance.
	JitterMax time.Duration
	// PanicAt, when non-zero, asks a robustness-aware replayer to inject a
	// controller panic at this virtual-time offset — with routines in
	// flight, when the generated horizon allows — and verify the home is
	// poisoned, torn down and recovered instead of unwinding the process.
	// Replayers without panic support ignore it.
	PanicAt time.Duration
	// Idle marks a home that never resubmits after its initial setup burst —
	// every submission and failure instant sits in the front sliver of the
	// horizon. Hibernation-aware harnesses use the mark to run a freeze/wake
	// identity check on the quiesced home; others may ignore it.
	Idle bool
}

// Registry builds a device registry for the spec.
func (s Spec) Registry() *device.Registry { return device.NewRegistry(s.Devices...) }

// RoutineCount returns the number of submissions.
func (s Spec) RoutineCount() int { return len(s.Submissions) }

// Horizon returns the latest submission or failure offset — a lower bound on
// the run's duration, useful for scheduling failure injections.
func (s Spec) Horizon() time.Duration {
	var h time.Duration
	for _, sub := range s.Submissions {
		if sub.At > h {
			h = sub.At
		}
	}
	for _, f := range s.Failures {
		if f.At > h {
			h = f.At
		}
	}
	return h
}

// --- Table 3: parameterized microbenchmark ------------------------------------

// MicroParams mirrors Table 3 of the paper.
type MicroParams struct {
	// Routines is R, the total number of routines (default 100).
	Routines int
	// Concurrency is ρ, the number of concurrent routines injected per wave
	// (default 4).
	Concurrency int
	// CommandsPerRoutine is C, the average commands per routine, normally
	// distributed (default 3).
	CommandsPerRoutine float64
	// Alpha is α, the Zipfian coefficient of device popularity (default 0.05).
	Alpha float64
	// LongPct is L%, the percentage of long-running routines (default 10).
	LongPct float64
	// LongMean is |L|, the mean duration of a long command (default 20 min, ND).
	LongMean time.Duration
	// ShortMean is |S|, the mean duration of a short command (default 10 s, ND).
	ShortMean time.Duration
	// MustPct is M, the percentage of must commands per routine (default 100).
	MustPct float64
	// FailedPct is F, the percentage of devices that fail during the run
	// (default 0).
	FailedPct float64
	// Devices is the size of the device fleet (default 25, §7.3).
	Devices int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultMicroParams returns Table 3's default values.
func DefaultMicroParams() MicroParams {
	return MicroParams{
		Routines:           100,
		Concurrency:        4,
		CommandsPerRoutine: 3,
		Alpha:              0.05,
		LongPct:            10,
		LongMean:           20 * time.Minute,
		ShortMean:          10 * time.Second,
		MustPct:            100,
		FailedPct:          0,
		Devices:            25,
		Seed:               1,
	}
}

// normalized fills in zero fields with defaults so partially-specified
// parameter structs behave sensibly.
func (p MicroParams) normalized() MicroParams {
	d := DefaultMicroParams()
	if p.Routines <= 0 {
		p.Routines = d.Routines
	}
	if p.Concurrency <= 0 {
		p.Concurrency = d.Concurrency
	}
	if p.CommandsPerRoutine <= 0 {
		p.CommandsPerRoutine = d.CommandsPerRoutine
	}
	if p.Alpha < 0 {
		p.Alpha = d.Alpha
	}
	if p.LongMean <= 0 {
		p.LongMean = d.LongMean
	}
	if p.ShortMean <= 0 {
		p.ShortMean = d.ShortMean
	}
	// MustPct is honoured as-is: 0 legitimately means "every command is
	// best-effort" (the left edge of Fig 13a/c).
	if p.Devices <= 0 {
		p.Devices = d.Devices
	}
	return p
}

// Micro generates a Table-3 microbenchmark workload.
//
// Routines are injected in waves of ρ: each wave's routines arrive together
// (small per-routine offsets) and waves are separated by the expected routine
// duration, which keeps roughly ρ routines in flight — the open-loop
// approximation of the paper's closed-loop injector.
func Micro(p MicroParams) Spec {
	p = p.normalized()
	rng := stats.NewRNG(p.Seed)
	contentRNG := rng.Fork()
	failRNG := rng.Fork()

	spec := Spec{Name: "micro", Devices: plugFleet(p.Devices)}

	zipf, err := stats.NewZipf(contentRNG, p.Devices, p.Alpha)
	if err != nil {
		panic(fmt.Sprintf("workload: zipf: %v", err))
	}

	// Expected single-routine duration, for spacing waves.
	longFrac := p.LongPct / 100
	expCmd := time.Duration(float64(p.ShortMean)*(1-longFrac) + float64(p.LongMean)*longFrac)
	waveGap := time.Duration(p.CommandsPerRoutine * float64(expCmd))

	for i := 0; i < p.Routines; i++ {
		wave := i / p.Concurrency
		offsetInWave := time.Duration(contentRNG.Intn(1000)) * time.Millisecond
		at := time.Duration(wave)*waveGap + offsetInWave

		r := routine.New(fmt.Sprintf("micro-%03d", i))
		long := contentRNG.Bool(longFrac)
		nCmds := contentRNG.NormInt(p.CommandsPerRoutine, p.CommandsPerRoutine/3, 1)
		used := make(map[int]bool)
		for c := 0; c < nCmds; c++ {
			dev := zipf.Next()
			// Avoid trivially repeated commands on the same device back to back.
			for attempts := 0; used[dev] && attempts < 3; attempts++ {
				dev = zipf.Next()
			}
			used[dev] = true

			var dur time.Duration
			if long && c == 0 {
				dur = contentRNG.NormDuration(p.LongMean, p.LongMean/4, time.Minute)
			} else {
				dur = contentRNG.NormDuration(p.ShortMean, p.ShortMean/4, time.Second)
			}
			target := device.On
			if contentRNG.Bool(0.5) {
				target = device.Off
			}
			r.Commands = append(r.Commands, routine.Command{
				Device:     device.ID(plugID(dev)),
				Target:     target,
				Duration:   dur,
				BestEffort: !contentRNG.Bool(p.MustPct / 100),
			})
		}
		spec.Submissions = append(spec.Submissions, Submission{At: at, Routine: r})
	}

	// F% of devices fail at a uniformly random instant during the run.
	if p.FailedPct > 0 {
		horizon := time.Duration(p.Routines/p.Concurrency+1) * waveGap
		perm := failRNG.Perm(p.Devices)
		nFail := int(float64(p.Devices) * p.FailedPct / 100)
		for i := 0; i < nFail && i < len(perm); i++ {
			spec.Failures = append(spec.Failures, FailureEvent{
				At:     failRNG.UniformDuration(0, horizon),
				Device: device.ID(plugID(perm[i])),
			})
		}
	}
	return spec
}

// --- Fig 1: two conflicting routines over N devices -----------------------------

// Figure1 is the workload of Fig 1: routine R1 turns ON every device, routine
// R2 turns them all OFF, starting `offset` after R1. Real smart plugs have
// variable latencies, which the jitter models.
func Figure1(devices int, offset, jitter time.Duration) Spec {
	spec := Spec{
		Name:      fmt.Sprintf("figure1-d%d-o%s", devices, offset),
		Devices:   plugFleet(devices),
		JitterMax: jitter,
	}
	on := routine.New("all-on")
	off := routine.New("all-off")
	for i := 0; i < devices; i++ {
		on.Commands = append(on.Commands, routine.Command{Device: device.ID(plugID(i)), Target: device.On})
		off.Commands = append(off.Commands, routine.Command{Device: device.ID(plugID(i)), Target: device.Off})
	}
	spec.Submissions = []Submission{
		{At: 0, Routine: on},
		{At: offset, Routine: off},
	}
	return spec
}

// --- Fig 2: the five-routine breakfast / cleaning example ------------------------

// Figure2 reproduces the example of Fig 2: five routines over five devices
// (coffee maker, pancake maker, Roomba, mop, kitchen mop), submitted together.
func Figure2() Spec {
	unit := time.Minute // one "time unit" of the figure
	coffee := func(flavor string) routine.Command {
		return routine.Command{Device: "coffee-maker", Target: device.State("BREW:" + flavor), Duration: unit}
	}
	pancake := func(flavor string) routine.Command {
		return routine.Command{Device: "pancake-maker", Target: device.State("COOK:" + flavor), Duration: unit}
	}
	spec := Spec{
		Name: "figure2",
		Devices: []device.Info{
			{ID: "coffee-maker", Kind: device.KindCoffeeMaker, Initial: device.Off},
			{ID: "pancake-maker", Kind: device.KindPancake, Initial: device.Off},
			{ID: "roomba", Kind: device.KindVacuum, Initial: device.Off},
			{ID: "mop-living", Kind: device.KindMop, Initial: device.Off},
			{ID: "mop-kitchen", Kind: device.KindMop, Initial: device.Off},
		},
	}
	r1 := routine.New("R1-breakfast-espresso", coffee("espresso"), pancake("vanilla"))
	r2 := routine.New("R2-breakfast-americano", coffee("americano"), pancake("strawberry"))
	r3 := routine.New("R3-pancake-regular", pancake("regular"))
	r4 := routine.New("R4-clean-living",
		routine.Command{Device: "roomba", Target: device.On, Duration: unit},
		routine.Command{Device: "mop-living", Target: device.On, Duration: unit})
	r5 := routine.New("R5-mop-kitchen",
		routine.Command{Device: "mop-kitchen", Target: device.On, Duration: unit})
	for _, r := range []*routine.Routine{r1, r2, r3, r4, r5} {
		spec.Submissions = append(spec.Submissions, Submission{At: 0, Routine: r})
	}
	return spec
}

// --- helpers ---------------------------------------------------------------------

func plugID(i int) string { return fmt.Sprintf("plug-%02d", i) }

func plugFleet(n int) []device.Info {
	out := make([]device.Info, n)
	for i := 0; i < n; i++ {
		out[i] = device.Info{
			ID:      device.ID(plugID(i)),
			Name:    fmt.Sprintf("Smart Plug %d", i),
			Kind:    device.KindPlug,
			Room:    "home",
			Initial: device.Off,
		}
	}
	return out
}

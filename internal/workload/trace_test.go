package workload

import (
	"bytes"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

func sampleTrace() *Trace {
	r := routine.New("lights-on",
		routine.Command{Device: "plug-0", Target: device.On, Duration: time.Second},
		routine.Command{Device: "plug-1", Target: device.Off, BestEffort: true},
	)
	pre := true
	epoch := time.Date(2021, 4, 26, 8, 0, 0, 0, time.UTC)
	return &Trace{
		Name:      "sample",
		Model:     "EV",
		Scheduler: "TL",
		Seed:      7,
		Options:   TraceOptions{PreLease: &pre, DefaultShort: 10 * time.Second},
		Devices:   plugFleet(2),
		Submissions: []TraceSubmission{
			{At: 0, User: "alice", Routine: r},
		},
		Failures: []TraceFailure{
			{At: time.Minute, Device: "plug-1"},
			{At: 2 * time.Minute, Device: "plug-1", Restart: true},
		},
		Events: []TraceEvent{
			{Seq: 1, Time: epoch, Kind: "submitted", Routine: 1},
			{Seq: 2, Time: epoch.Add(time.Second), Kind: "committed", Routine: 1, Device: "plug-0", State: "on"},
		},
	}
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleTrace()
	b, err := EncodeTrace(orig)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeTrace(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != orig.Name || got.Model != orig.Model || got.Scheduler != orig.Scheduler || got.Seed != orig.Seed {
		t.Errorf("header diverged: %+v", got)
	}
	if got.Options.PreLease == nil || !*got.Options.PreLease || got.Options.DefaultShort != 10*time.Second {
		t.Errorf("options diverged: %+v", got.Options)
	}
	if len(got.Submissions) != 1 || got.Submissions[0].Routine.Name != "lights-on" {
		t.Fatalf("submissions diverged: %+v", got.Submissions)
	}
	if len(got.Failures) != 2 || !got.Failures[1].Restart {
		t.Errorf("failures diverged: %+v", got.Failures)
	}
	if !bytes.Equal(got.EventBytes(), orig.EventBytes()) {
		t.Errorf("event stream not byte-identical after round trip:\n%s\n%s",
			orig.EventBytes(), got.EventBytes())
	}
}

func TestTraceSpecClearsRuntimeIdentity(t *testing.T) {
	tr := sampleTrace()
	tr.Submissions[0].Routine.ID = 17
	tr.Submissions[0].Routine.Submitted = time.Now()
	spec := tr.Spec()
	r := spec.Submissions[0].Routine
	if r.ID != 0 || !r.Submitted.IsZero() {
		t.Errorf("spec routine keeps runtime identity: id=%d submitted=%v", r.ID, r.Submitted)
	}
	if tr.Submissions[0].Routine.ID != 17 {
		t.Error("Spec mutated the trace's routine")
	}
	if len(spec.Devices) != 2 || len(spec.Failures) != 2 {
		t.Errorf("spec shape diverged: %d devices, %d failures", len(spec.Devices), len(spec.Failures))
	}
}

func TestDecodeTraceRejectsMissingRoutine(t *testing.T) {
	if _, err := DecodeTrace([]byte(`{"name":"x","model":"EV","submissions":[{"at_ns":0}]}`)); err == nil {
		t.Error("decode accepted a submission with no routine")
	}
}

func TestEventBytesOnePerLine(t *testing.T) {
	tr := sampleTrace()
	b := tr.EventBytes()
	lines := bytes.Count(b, []byte("\n"))
	if lines != len(tr.Events) {
		t.Errorf("EventBytes has %d lines, want %d", lines, len(tr.Events))
	}
}

package workload

import (
	"testing"
	"time"

	"safehome/internal/device"
)

func TestGenerateShapeAndValidity(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 11
	spec := Generate(p)
	validateSpec(t, spec)
	if got := spec.RoutineCount(); got != p.Routines {
		t.Errorf("routines = %d, want %d", got, p.Routines)
	}
	if got := len(spec.Devices); got != p.Devices {
		t.Errorf("devices = %d, want %d", got, p.Devices)
	}
	if h := spec.Horizon(); h > p.Horizon {
		t.Errorf("arrival horizon = %v, want <= %v", h, p.Horizon)
	}
	for i := 1; i < len(spec.Submissions); i++ {
		if spec.Submissions[i].At < spec.Submissions[i-1].At {
			t.Fatalf("submissions not sorted by arrival at %d", i)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 42
	a, b := Generate(p), Generate(p)
	if len(a.Submissions) != len(b.Submissions) {
		t.Fatal("same seed produced different submission counts")
	}
	for i := range a.Submissions {
		if a.Submissions[i].At != b.Submissions[i].At ||
			a.Submissions[i].User != b.Submissions[i].User ||
			a.Submissions[i].Routine.String() != b.Submissions[i].Routine.String() {
			t.Fatalf("same seed diverged at submission %d", i)
		}
	}
	p.Seed = 43
	c := Generate(p)
	same := true
	for i := range a.Submissions {
		if a.Submissions[i].Routine.String() != c.Submissions[i].Routine.String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGenerateTriggerBursts(t *testing.T) {
	p := DefaultGenParams()
	p.Routines = 80
	p.TriggerPct = 100
	p.TriggerFanout = 4
	p.Seed = 9
	spec := Generate(p)
	byAt := map[time.Duration]int{}
	for _, sub := range spec.Submissions {
		byAt[sub.At]++
	}
	bursts := 0
	for _, n := range byAt {
		if n >= 2 {
			bursts++
		}
	}
	if bursts == 0 {
		t.Error("TriggerPct=100 produced no simultaneous-arrival burst")
	}

	p.TriggerFanout = 1 // disables bursts entirely
	solo := Generate(p)
	byAt = map[time.Duration]int{}
	for _, sub := range solo.Submissions {
		byAt[sub.At]++
	}
	for at, n := range byAt {
		if n > 1 {
			t.Errorf("fanout=1 still produced a burst of %d at %v", n, at)
		}
	}
}

// maxDeviceShare returns the largest fraction of commands any one device gets.
func maxDeviceShare(s Spec) float64 {
	counts := map[device.ID]int{}
	total := 0
	for _, sub := range s.Submissions {
		for _, c := range sub.Routine.Commands {
			counts[c.Device]++
			total++
		}
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	return float64(max) / float64(total)
}

func TestGenerateConflictDensityKnob(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 5
	p.ConflictAlpha = 0 // uniform
	uniform := maxDeviceShare(Generate(p))
	p.ConflictAlpha = 2 // heavily skewed
	skewed := maxDeviceShare(Generate(p))
	if skewed <= uniform {
		t.Errorf("hot-device share %.3f under alpha=2 not above %.3f under uniform", skewed, uniform)
	}
}

func TestGenerateTenantSkewKnob(t *testing.T) {
	share := func(skew float64) float64 {
		p := DefaultGenParams()
		p.Seed = 5
		p.UserSkew = skew
		spec := Generate(p)
		counts := map[string]int{}
		for _, sub := range spec.Submissions {
			counts[sub.User]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		return float64(max) / float64(len(spec.Submissions))
	}
	if skewed, uniform := share(2), share(0); skewed <= uniform {
		t.Errorf("top-tenant share %.3f under skew=2 not above %.3f under uniform", skewed, uniform)
	}
}

func TestGenerateBestEffortRatio(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 3
	p.BestEffortRatio = 0.5
	spec := Generate(p)
	be, total := 0, 0
	for _, sub := range spec.Submissions {
		for _, c := range sub.Routine.Commands {
			total++
			if c.BestEffort {
				be++
			}
		}
	}
	frac := float64(be) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("best-effort fraction = %.2f, want ~0.5", frac)
	}
}

func TestGenerateFailureAndRestartInjection(t *testing.T) {
	p := DefaultGenParams()
	p.Devices = 50
	p.Seed = 7
	p.FailedPct = 20
	p.RestartPct = 100
	spec := Generate(p)
	validateSpec(t, spec)
	fails, restarts := 0, 0
	lastFail := map[device.ID]time.Duration{}
	for _, f := range spec.Failures {
		if f.Restart {
			restarts++
			if f.At <= lastFail[f.Device] {
				t.Errorf("device %s restarts at %v, before its failure at %v", f.Device, f.At, lastFail[f.Device])
			}
		} else {
			fails++
			lastFail[f.Device] = f.At
		}
	}
	if want := 50 * 20 / 100; fails != want {
		t.Errorf("fail-stop injections = %d, want %d", fails, want)
	}
	if restarts != fails {
		t.Errorf("restarts = %d, want one per failure (%d)", restarts, fails)
	}
}

func TestGenerateFlapInjection(t *testing.T) {
	p := DefaultGenParams()
	p.Devices = 40
	p.Seed = 13
	p.FailedPct = 25
	p.FlapPct = 100 // every failing device flaps
	p.FlapCycles = 3
	spec := Generate(p)
	validateSpec(t, spec)

	fails := map[device.ID]int{}
	restarts := map[device.ID]int{}
	for i, f := range spec.Failures {
		if i > 0 && f.At < spec.Failures[i-1].At {
			t.Fatalf("failures not sorted by time at %d", i)
		}
		if f.Restart {
			restarts[f.Device]++
		} else {
			fails[f.Device]++
		}
	}
	if want := 40 * 25 / 100; len(fails) != want {
		t.Errorf("flapping devices = %d, want %d", len(fails), want)
	}
	for id, n := range fails {
		if n != p.FlapCycles {
			t.Errorf("device %s fails %d times, want %d cycles", id, n, p.FlapCycles)
		}
		if restarts[id] != p.FlapCycles {
			t.Errorf("device %s restarts %d times, want %d cycles", id, restarts[id], p.FlapCycles)
		}
	}

	// Same seed reproduces the exact flap schedule.
	again := Generate(p)
	if len(again.Failures) != len(spec.Failures) {
		t.Fatal("same seed produced different failure counts")
	}
	for i := range spec.Failures {
		if spec.Failures[i] != again.Failures[i] {
			t.Fatalf("same seed diverged at failure %d", i)
		}
	}
}

func TestGeneratePanicInjection(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 21
	p.PanicPct = 100
	spec := Generate(p)
	if spec.PanicAt <= 0 {
		t.Fatal("PanicPct=100 produced no panic injection")
	}
	if spec.PanicAt < p.Horizon/4 || spec.PanicAt > 3*p.Horizon/4 {
		t.Errorf("PanicAt = %v, want inside middle half of horizon %v", spec.PanicAt, p.Horizon)
	}
	if again := Generate(p); again.PanicAt != spec.PanicAt {
		t.Errorf("same seed drew PanicAt %v then %v", spec.PanicAt, again.PanicAt)
	}

	p.PanicPct = 0
	if off := Generate(p); off.PanicAt != 0 {
		t.Errorf("PanicPct=0 still set PanicAt=%v", off.PanicAt)
	}
}

func TestGenerateIdleSkewKnob(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 23
	p.FailedPct = 20
	p.IdlePct = 100
	spec := Generate(p)
	if !spec.Idle {
		t.Fatal("IdlePct=100 produced a non-idle spec")
	}
	window := p.Horizon / 50
	for i, sub := range spec.Submissions {
		if sub.At > window {
			t.Fatalf("idle submission %d arrives at %v, past the setup window %v", i, sub.At, window)
		}
	}
	for i, f := range spec.Failures {
		if f.At > window {
			t.Fatalf("idle failure %d lands at %v, past the setup window %v", i, f.At, window)
		}
	}
	p.PanicPct = 100
	if again := Generate(p); again.PanicAt != 0 {
		t.Errorf("idle home drew a panic injection at %v", again.PanicAt)
	}

	// The knob at zero must leave every (params, seed) byte-identical to the
	// pre-knob generator: idleRNG forks last, so no other stream moves.
	p.IdlePct = 0
	p.PanicPct = 0
	off := Generate(p)
	if off.Idle {
		t.Fatal("IdlePct=0 marked the spec idle")
	}
	if len(off.Submissions) != len(spec.Submissions) {
		t.Fatal("idle knob changed submission count")
	}
	for i := range off.Submissions {
		if off.Submissions[i].At/50 != spec.Submissions[i].At {
			t.Fatalf("submission %d: idle arrival %v is not the non-idle %v compressed 50x",
				i, spec.Submissions[i].At, off.Submissions[i].At)
		}
		if off.Submissions[i].Routine.String() != spec.Submissions[i].Routine.String() {
			t.Fatalf("idle knob reshuffled submission %d content", i)
		}
	}
}

func TestGenerateRobustnessKnobsDoNotReshuffle(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 17
	base := Generate(p)
	p.FlapPct = 50
	p.PanicPct = 50
	faulty := Generate(p)
	if len(base.Submissions) != len(faulty.Submissions) {
		t.Fatal("robustness knobs changed submission count")
	}
	for i := range base.Submissions {
		if base.Submissions[i].At != faulty.Submissions[i].At ||
			base.Submissions[i].Routine.String() != faulty.Submissions[i].Routine.String() {
			t.Fatalf("robustness knobs reshuffled submission %d", i)
		}
	}
}

func TestGenerateZeroValueNormalizes(t *testing.T) {
	spec := Generate(GenParams{Seed: 1})
	validateSpec(t, spec)
	d := DefaultGenParams()
	if len(spec.Devices) != d.Devices {
		t.Errorf("normalized devices = %d, want default %d", len(spec.Devices), d.Devices)
	}
	if spec.RoutineCount() != d.Routines {
		t.Errorf("normalized routines = %d, want default %d", spec.RoutineCount(), d.Routines)
	}
}

package workload

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// validateSpec checks every submission against the spec's device registry.
func validateSpec(t *testing.T, s Spec) {
	t.Helper()
	reg := s.Registry()
	if reg.Len() != len(s.Devices) {
		t.Fatalf("%s: registry has %d devices, spec lists %d", s.Name, reg.Len(), len(s.Devices))
	}
	for i, sub := range s.Submissions {
		if sub.Routine == nil {
			t.Fatalf("%s: submission %d has nil routine", s.Name, i)
		}
		if err := sub.Routine.Validate(reg); err != nil {
			t.Errorf("%s: submission %d (%s): %v", s.Name, i, sub.Routine.Name, err)
		}
		if sub.At < 0 {
			t.Errorf("%s: submission %d has negative offset %v", s.Name, i, sub.At)
		}
	}
	for _, f := range s.Failures {
		if _, ok := reg.Get(f.Device); !ok {
			t.Errorf("%s: failure injection targets unknown device %s", s.Name, f.Device)
		}
	}
}

func TestDefaultMicroParamsMatchTable3(t *testing.T) {
	p := DefaultMicroParams()
	if p.Routines != 100 {
		t.Errorf("R = %d, want 100", p.Routines)
	}
	if p.Concurrency != 4 {
		t.Errorf("rho = %d, want 4", p.Concurrency)
	}
	if p.CommandsPerRoutine != 3 {
		t.Errorf("C = %v, want 3", p.CommandsPerRoutine)
	}
	if p.Alpha != 0.05 {
		t.Errorf("alpha = %v, want 0.05", p.Alpha)
	}
	if p.LongPct != 10 {
		t.Errorf("L%% = %v, want 10", p.LongPct)
	}
	if p.LongMean != 20*time.Minute {
		t.Errorf("|L| = %v, want 20m", p.LongMean)
	}
	if p.ShortMean != 10*time.Second {
		t.Errorf("|S| = %v, want 10s", p.ShortMean)
	}
	if p.MustPct != 100 {
		t.Errorf("M = %v, want 100", p.MustPct)
	}
	if p.FailedPct != 0 {
		t.Errorf("F = %v, want 0", p.FailedPct)
	}
	if p.Devices != 25 {
		t.Errorf("devices = %d, want 25", p.Devices)
	}
}

func TestMicroGeneratesRequestedRoutines(t *testing.T) {
	p := DefaultMicroParams()
	p.Routines = 40
	p.Seed = 7
	spec := Micro(p)
	validateSpec(t, spec)
	if got := spec.RoutineCount(); got != 40 {
		t.Fatalf("routines = %d, want 40", got)
	}
	if len(spec.Devices) != 25 {
		t.Fatalf("devices = %d, want 25", len(spec.Devices))
	}
	// All must commands by default (M = 100%).
	for _, sub := range spec.Submissions {
		for _, c := range sub.Routine.Commands {
			if c.BestEffort {
				t.Fatalf("routine %s has best-effort command with M=100%%", sub.Routine.Name)
			}
		}
	}
}

func TestMicroLongRoutinesFraction(t *testing.T) {
	p := DefaultMicroParams()
	p.Routines = 400
	p.LongPct = 25
	p.Seed = 3
	spec := Micro(p)
	long := 0
	for _, sub := range spec.Submissions {
		if sub.Routine.IsLong(time.Minute) {
			long++
		}
	}
	frac := float64(long) / float64(len(spec.Submissions))
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("long routine fraction = %.2f, want ~0.25", frac)
	}
}

func TestMicroFailureInjection(t *testing.T) {
	p := DefaultMicroParams()
	p.FailedPct = 25
	p.Seed = 5
	spec := Micro(p)
	want := 25 * p.Devices / 100
	if len(spec.Failures) != want {
		t.Errorf("failure injections = %d, want %d", len(spec.Failures), want)
	}
	seen := map[device.ID]bool{}
	for _, f := range spec.Failures {
		if f.Restart {
			t.Errorf("fail-stop scenario should not inject restarts")
		}
		if seen[f.Device] {
			t.Errorf("device %s injected twice", f.Device)
		}
		seen[f.Device] = true
	}
}

func TestMicroDeterministicPerSeed(t *testing.T) {
	p := DefaultMicroParams()
	p.Routines = 20
	a, b := Micro(p), Micro(p)
	if len(a.Submissions) != len(b.Submissions) {
		t.Fatal("same seed produced different submission counts")
	}
	for i := range a.Submissions {
		if a.Submissions[i].At != b.Submissions[i].At ||
			a.Submissions[i].Routine.String() != b.Submissions[i].Routine.String() {
			t.Fatalf("same seed produced different routine %d:\n%v\n%v",
				i, a.Submissions[i].Routine, b.Submissions[i].Routine)
		}
	}
	p2 := p
	p2.Seed = 99
	c := Micro(p2)
	same := true
	for i := range a.Submissions {
		if a.Submissions[i].Routine.String() != c.Submissions[i].Routine.String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestMicroMustPctZeroMeansAllBestEffort(t *testing.T) {
	p := DefaultMicroParams()
	p.Routines = 20
	p.MustPct = 0
	spec := Micro(p)
	for _, sub := range spec.Submissions {
		for _, c := range sub.Routine.Commands {
			if !c.BestEffort {
				t.Fatalf("routine %s has a must command with M=0%%", sub.Routine.Name)
			}
		}
	}
}

func TestMicroZeroValueNormalizes(t *testing.T) {
	spec := Micro(MicroParams{Routines: 5})
	validateSpec(t, spec)
	if len(spec.Devices) != 25 {
		t.Errorf("normalized devices = %d, want default 25", len(spec.Devices))
	}
}

func TestFigure1Workload(t *testing.T) {
	spec := Figure1(6, 100*time.Millisecond, 50*time.Millisecond)
	validateSpec(t, spec)
	if len(spec.Devices) != 6 {
		t.Fatalf("devices = %d, want 6", len(spec.Devices))
	}
	if spec.RoutineCount() != 2 {
		t.Fatalf("routines = %d, want 2", spec.RoutineCount())
	}
	if spec.Submissions[1].At != 100*time.Millisecond {
		t.Errorf("R2 offset = %v, want 100ms", spec.Submissions[1].At)
	}
	if spec.JitterMax != 50*time.Millisecond {
		t.Errorf("jitter = %v, want 50ms", spec.JitterMax)
	}
	for _, sub := range spec.Submissions {
		if len(sub.Routine.Commands) != 6 {
			t.Errorf("routine %s has %d commands, want 6", sub.Routine.Name, len(sub.Routine.Commands))
		}
	}
}

func TestFigure2Workload(t *testing.T) {
	spec := Figure2()
	validateSpec(t, spec)
	if spec.RoutineCount() != 5 {
		t.Fatalf("routines = %d, want 5", spec.RoutineCount())
	}
	if len(spec.Devices) != 5 {
		t.Fatalf("devices = %d, want 5", len(spec.Devices))
	}
	for _, sub := range spec.Submissions {
		if sub.At != 0 {
			t.Errorf("Fig 2 routines are all submitted at t=0, got %v", sub.At)
		}
	}
}

func TestMorningScenarioShape(t *testing.T) {
	spec := Morning(1)
	validateSpec(t, spec)
	if got := spec.RoutineCount(); got != 29 {
		t.Errorf("morning routines = %d, want 29", got)
	}
	if got := len(spec.Devices); got != 31 {
		t.Errorf("morning devices = %d, want 31", got)
	}
	if h := spec.Horizon(); h > 25*time.Minute {
		t.Errorf("morning horizon = %v, want <= 25m", h)
	}
	// Ordering constraints: every user's wake-up precedes their leave-home.
	at := map[string]time.Duration{}
	for _, sub := range spec.Submissions {
		at[sub.Routine.Name] = sub.At
	}
	for _, u := range []string{"alice", "bob", "carol", "dan"} {
		if at[u+"-wake-up"] >= at[u+"-leave-home"] {
			t.Errorf("%s wakes up at %v but leaves at %v", u, at[u+"-wake-up"], at[u+"-leave-home"])
		}
		if at[u+"-wake-up"] >= at[u+"-cook-breakfast"] {
			t.Errorf("%s cooks breakfast before waking up", u)
		}
	}
}

func TestPartyScenarioShape(t *testing.T) {
	spec := Party(1)
	validateSpec(t, spec)
	if got := spec.RoutineCount(); got != 12 {
		t.Errorf("party routines = %d, want 12 (1 long + 11 short)", got)
	}
	long := 0
	for _, sub := range spec.Submissions {
		if sub.Routine.IsLong(5 * time.Minute) {
			long++
		}
	}
	if long != 1 {
		t.Errorf("party long routines = %d, want exactly 1", long)
	}
	// The ambiance routine runs from the very start.
	if spec.Submissions[0].Routine.Name != "party-ambiance" || spec.Submissions[0].At != 0 {
		t.Errorf("first submission should be the ambiance routine at t=0, got %s at %v",
			spec.Submissions[0].Routine.Name, spec.Submissions[0].At)
	}
}

func TestFactoryScenarioShape(t *testing.T) {
	p := DefaultFactoryParams()
	if p.Stages != 50 {
		t.Errorf("default stages = %d, want 50", p.Stages)
	}
	p.Stages = 10
	p.RoutinesPerStage = 3
	spec := Factory(p)
	validateSpec(t, spec)
	if got := spec.RoutineCount(); got != 30 {
		t.Errorf("factory routines = %d, want 30", got)
	}
	// 2 local devices per stage + a belt between consecutive stages + 5 globals.
	wantDevices := 10*2 + 9 + 5
	if got := len(spec.Devices); got != wantDevices {
		t.Errorf("factory devices = %d, want %d", got, wantDevices)
	}
}

func TestFactoryZeroValueUsesDefaults(t *testing.T) {
	spec := Factory(FactoryParams{})
	validateSpec(t, spec)
	if got := spec.RoutineCount(); got != 100 {
		t.Errorf("default factory routines = %d, want 100 (50 stages x 2)", got)
	}
}

func TestScenariosVaryWithSeed(t *testing.T) {
	a, b := Morning(1), Morning(2)
	differ := false
	for i := range a.Submissions {
		if a.Submissions[i].At != b.Submissions[i].At {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("different seeds should shift submission times")
	}
}

func TestSpecHorizonEmpty(t *testing.T) {
	var s Spec
	if s.Horizon() != 0 {
		t.Errorf("empty spec horizon = %v, want 0", s.Horizon())
	}
}

func TestCommandBuilders(t *testing.T) {
	c := cmd("x", device.On)
	if c.Device != "x" || c.Target != device.On || c.BestEffort || c.Duration != 0 {
		t.Errorf("cmd builder wrong: %+v", c)
	}
	cd := cmdDur("y", device.Off, time.Minute)
	if cd.Duration != time.Minute {
		t.Errorf("cmdDur builder wrong: %+v", cd)
	}
	be := bestEffort("z", device.On)
	if !be.BestEffort {
		t.Errorf("bestEffort builder wrong: %+v", be)
	}
	r := routine.New("t", c, cd, be)
	if r.MustCount() != 2 {
		t.Errorf("MustCount = %d, want 2", r.MustCount())
	}
}

package workload

import (
	"testing"

	"safehome/internal/device"
)

// hasCommandOn reports whether any command in the spec targets d — the
// synthetic "bug" the shrink tests reproduce.
func hasCommandOn(s Spec, d device.ID) bool {
	for _, sub := range s.Submissions {
		for _, c := range sub.Routine.Commands {
			if c.Device == d {
				return true
			}
		}
	}
	return false
}

func TestShrinkToSingleCommand(t *testing.T) {
	p := DefaultGenParams()
	p.Seed = 21
	spec := Generate(p)
	last := spec.Submissions[len(spec.Submissions)-1].Routine
	culprit := last.Commands[len(last.Commands)-1].Device
	calls := 0
	min := Shrink(spec, func(s Spec) bool {
		calls++
		return hasCommandOn(s, culprit)
	})
	if len(min.Submissions) != 1 {
		t.Errorf("minimal spec has %d submissions, want 1", len(min.Submissions))
	}
	if got := min.TotalCommands(); got != 1 {
		t.Errorf("minimal spec has %d commands, want 1", got)
	}
	if !hasCommandOn(min, culprit) {
		t.Error("minimal spec no longer reproduces the failure")
	}
	if len(min.Failures) != 0 {
		t.Errorf("minimal spec kept %d irrelevant failures", len(min.Failures))
	}
	if len(min.Devices) >= len(spec.Devices) {
		t.Errorf("minimal spec kept all %d devices", len(min.Devices))
	}
	t.Logf("shrunk %d submissions / %d commands -> %d / %d in %d predicate calls",
		len(spec.Submissions), spec.TotalCommands(), len(min.Submissions), min.TotalCommands(), calls)
}

func TestShrinkPassingSpecUnchanged(t *testing.T) {
	p := DefaultGenParams()
	p.Routines = 10
	p.Seed = 2
	spec := Generate(p)
	min := Shrink(spec, func(Spec) bool { return false })
	if len(min.Submissions) != len(spec.Submissions) || len(min.Devices) != len(spec.Devices) {
		t.Error("passing spec was modified by Shrink")
	}
}

func TestShrinkKeepsNeededFailure(t *testing.T) {
	p := DefaultGenParams()
	p.Devices = 40
	p.Routines = 20
	p.Seed = 13
	p.FailedPct = 25
	spec := Generate(p)
	if len(spec.Failures) < 2 {
		t.Fatalf("want >= 2 failures to shrink, got %d", len(spec.Failures))
	}
	needed := spec.Failures[len(spec.Failures)-1].Device
	min := Shrink(spec, func(s Spec) bool {
		for _, f := range s.Failures {
			if f.Device == needed {
				return true
			}
		}
		return false
	})
	if len(min.Failures) != 1 || min.Failures[0].Device != needed {
		t.Errorf("minimal failures = %v, want exactly the injection on %s", min.Failures, needed)
	}
	if len(min.Submissions) != 0 {
		t.Errorf("minimal spec kept %d irrelevant submissions", len(min.Submissions))
	}
}

func TestShrinkDoesNotMutateInput(t *testing.T) {
	p := DefaultGenParams()
	p.Routines = 12
	p.Seed = 4
	spec := Generate(p)
	before := spec.TotalCommands()
	culprit := spec.Submissions[0].Routine.Commands[0].Device
	Shrink(spec, func(s Spec) bool { return hasCommandOn(s, culprit) })
	if spec.TotalCommands() != before || len(spec.Submissions) != 12 {
		t.Error("Shrink mutated the input spec")
	}
}

// Generative scenario engine: seeded, parameterized workload generation far
// beyond the paper's hand-written fixtures. A GenParams describes a family of
// homes — fleet size into the hundreds, routine shape (length, duration mix,
// best-effort ratio), conflict density, trigger fan-out, tenant skew — and
// Generate draws one deterministic Spec per seed. The harness package runs
// generated specs against every controller and checks congruence and
// weak-ordering invariants; Shrink reduces a failing spec to a minimal one.
package workload

import (
	"fmt"
	"sort"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/stats"
)

// GenParams parameterizes the generative scenario engine. The zero value of
// any field selects the default noted on it (except ConflictAlpha and
// UserSkew, where 0 legitimately means "uniform" and -1 selects the default,
// mirroring MicroParams.Alpha).
type GenParams struct {
	// Devices is the fleet size (default 120).
	Devices int
	// Routines is the total number of routines generated (default 150).
	Routines int
	// Users is the number of tenants routines are attributed to (default 8).
	Users int
	// UserSkew is the Zipf coefficient of tenant activity: higher values
	// concentrate submissions on few users (default 0.8; 0 = uniform, -1 =
	// default).
	UserSkew float64
	// CommandsPerRoutine is the mean routine length, normally distributed
	// (default 3).
	CommandsPerRoutine float64
	// LongPct is the percentage of long-running routines (default 10).
	LongPct float64
	// LongMean / ShortMean are the mean command durations for long and short
	// routines (defaults 20 min / 10 s, both ND).
	LongMean  time.Duration
	ShortMean time.Duration
	// BestEffortRatio is the probability each command is best-effort rather
	// than must (default 0.1).
	BestEffortRatio float64
	// ConflictAlpha is the Zipf coefficient of device popularity: higher
	// values concentrate commands on few hot devices, raising conflict
	// density (default 0.9; 0 = uniform, -1 = default).
	ConflictAlpha float64
	// TriggerFanout is the maximum number of routines fired at the same
	// instant by one trigger (default 4; 1 disables bursts).
	TriggerFanout int
	// TriggerPct is the percentage of arrivals that open a trigger burst
	// rather than arriving alone (default 30).
	TriggerPct float64
	// Horizon is the arrival window routines are spread over (default 10 min).
	Horizon time.Duration
	// FailedPct is the percentage of devices that fail-stop at a uniformly
	// random instant during the run (default 0).
	FailedPct float64
	// RestartPct is the percentage of failed devices that later restart
	// (default 0).
	RestartPct float64
	// FlapPct is the percentage of failing devices that flap — repeated
	// fail/restart cycles instead of one fail-stop — exercising the
	// actuation path's circuit breaker (default 0; only meaningful with
	// FailedPct > 0).
	FlapPct float64
	// FlapCycles is the number of fail/restart cycles a flapping device
	// goes through (default 3).
	FlapCycles int
	// PanicPct is the probability (in percent) that the spec carries a
	// mid-run controller panic injection: PanicAt lands in the middle half
	// of the horizon, where generated routines are in flight (default 0).
	PanicPct float64
	// IdlePct is the probability (in percent) that the generated home is an
	// idle home: all submissions and failure injections land in a setup
	// burst in the first 1/50th of the horizon and the home never resubmits
	// — the cold tail of a realistic fleet where only a few percent of
	// homes stay hot. Idle specs are marked Spec.Idle so harnesses can run
	// the hibernation freeze/wake oracle on them (default 0).
	IdlePct float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenParams returns the default generator configuration: a hundreds-
// of-devices home with moderate conflict density and trigger bursts.
func DefaultGenParams() GenParams {
	return GenParams{
		Devices:            120,
		Routines:           150,
		Users:              8,
		UserSkew:           0.8,
		CommandsPerRoutine: 3,
		LongPct:            10,
		LongMean:           20 * time.Minute,
		ShortMean:          10 * time.Second,
		BestEffortRatio:    0.1,
		ConflictAlpha:      0.9,
		TriggerFanout:      4,
		TriggerPct:         30,
		Horizon:            10 * time.Minute,
		Seed:               1,
	}
}

func (p GenParams) normalized() GenParams {
	d := DefaultGenParams()
	if p.Devices <= 0 {
		p.Devices = d.Devices
	}
	if p.Routines <= 0 {
		p.Routines = d.Routines
	}
	if p.Users <= 0 {
		p.Users = d.Users
	}
	if p.UserSkew < 0 {
		p.UserSkew = d.UserSkew
	}
	if p.CommandsPerRoutine <= 0 {
		p.CommandsPerRoutine = d.CommandsPerRoutine
	}
	if p.LongMean <= 0 {
		p.LongMean = d.LongMean
	}
	if p.ShortMean <= 0 {
		p.ShortMean = d.ShortMean
	}
	if p.ConflictAlpha < 0 {
		p.ConflictAlpha = d.ConflictAlpha
	}
	if p.TriggerFanout <= 0 {
		p.TriggerFanout = d.TriggerFanout
	}
	if p.Horizon <= 0 {
		p.Horizon = d.Horizon
	}
	if p.FlapCycles <= 0 {
		p.FlapCycles = 3
	}
	return p
}

// Generate draws one workload from the parameter family. Generation is fully
// deterministic per (params, seed): independent RNG streams drive device
// choice, routine shape, arrival times, tenant attribution and failure
// injection so that changing one knob does not reshuffle the others.
func Generate(p GenParams) Spec {
	p = p.normalized()
	rng := stats.NewRNG(p.Seed)
	devRNG := rng.Fork()
	shapeRNG := rng.Fork()
	timeRNG := rng.Fork()
	userRNG := rng.Fork()
	failRNG := rng.Fork()
	// Forked last so specs generated before the robustness knobs existed keep
	// their exact historical content for any (params, seed).
	faultRNG := rng.Fork()
	// Forked after faultRNG for the same reason: with IdlePct at 0 every
	// earlier stream draws exactly what it always did.
	idleRNG := rng.Fork()

	spec := Spec{
		Name:    fmt.Sprintf("gen-s%d-d%d-r%d", p.Seed, p.Devices, p.Routines),
		Devices: plugFleet(p.Devices),
	}

	devZipf, err := stats.NewZipf(devRNG, p.Devices, p.ConflictAlpha)
	if err != nil {
		panic(fmt.Sprintf("workload: device zipf: %v", err))
	}
	userZipf, err := stats.NewZipf(userRNG, p.Users, p.UserSkew)
	if err != nil {
		panic(fmt.Sprintf("workload: user zipf: %v", err))
	}

	longFrac := p.LongPct / 100
	for i := 0; i < p.Routines; {
		// One arrival instant serves either a single routine or a trigger
		// burst of up to TriggerFanout routines fired together.
		at := timeRNG.UniformDuration(0, p.Horizon)
		burst := 1
		if p.TriggerFanout > 1 && timeRNG.Bool(p.TriggerPct/100) {
			burst = 2 + timeRNG.Intn(p.TriggerFanout-1)
		}
		for b := 0; b < burst && i < p.Routines; b++ {
			r := routine.New(fmt.Sprintf("gen-%03d", i))
			long := shapeRNG.Bool(longFrac)
			nCmds := shapeRNG.NormInt(p.CommandsPerRoutine, p.CommandsPerRoutine/3, 1)
			used := make(map[int]bool, nCmds)
			for c := 0; c < nCmds; c++ {
				dev := devZipf.Next()
				for attempts := 0; used[dev] && attempts < 3; attempts++ {
					dev = devZipf.Next()
				}
				used[dev] = true

				var dur time.Duration
				if long && c == 0 {
					dur = shapeRNG.NormDuration(p.LongMean, p.LongMean/4, time.Minute)
				} else {
					dur = shapeRNG.NormDuration(p.ShortMean, p.ShortMean/4, time.Second)
				}
				target := device.On
				if shapeRNG.Bool(0.5) {
					target = device.Off
				}
				r.Commands = append(r.Commands, routine.Command{
					Device:     device.ID(plugID(dev)),
					Target:     target,
					Duration:   dur,
					BestEffort: shapeRNG.Bool(p.BestEffortRatio),
				})
			}
			spec.Submissions = append(spec.Submissions, Submission{
				At:      at,
				Routine: r,
				User:    fmt.Sprintf("user-%02d", userZipf.Next()),
			})
			i++
		}
	}
	// Stable sort keeps burst members adjacent and in generation order.
	sort.SliceStable(spec.Submissions, func(i, j int) bool {
		return spec.Submissions[i].At < spec.Submissions[j].At
	})

	if p.FailedPct > 0 {
		perm := failRNG.Perm(p.Devices)
		nFail := int(float64(p.Devices) * p.FailedPct / 100)
		for i := 0; i < nFail && i < len(perm); i++ {
			at := failRNG.UniformDuration(0, p.Horizon)
			id := device.ID(plugID(perm[i]))
			if faultRNG.Bool(p.FlapPct / 100) {
				// A flapping device cycles fail→restart FlapCycles times;
				// cycles are spaced so repeated contact failures land inside
				// the actuation breaker's observation window rather than as
				// isolated fail-stops.
				gap := p.Horizon / time.Duration(2*p.FlapCycles+1)
				if gap <= 0 {
					gap = time.Second
				}
				for c := 0; c < p.FlapCycles; c++ {
					down := at + time.Duration(2*c)*gap
					spec.Failures = append(spec.Failures,
						FailureEvent{At: down, Device: id},
						FailureEvent{At: down + faultRNG.UniformDuration(gap/4, gap), Device: id, Restart: true},
					)
				}
				continue
			}
			spec.Failures = append(spec.Failures, FailureEvent{At: at, Device: id})
			if failRNG.Bool(p.RestartPct / 100) {
				spec.Failures = append(spec.Failures, FailureEvent{
					At:      at + failRNG.UniformDuration(time.Second, p.Horizon/4+time.Second),
					Device:  id,
					Restart: true,
				})
			}
		}
		// Flap restarts may land past the original instants: re-sort so the
		// harness can replay failures strictly in time order.
		sort.SliceStable(spec.Failures, func(i, j int) bool {
			return spec.Failures[i].At < spec.Failures[j].At
		})
	}
	if p.IdlePct > 0 && idleRNG.Bool(p.IdlePct/100) {
		// An idle home does all its work in a setup burst and then goes
		// quiet: compress every arrival and failure instant into the first
		// 1/50th of the horizon. Division preserves relative order, so burst
		// adjacency and fail-before-restart pairing survive untouched.
		spec.Idle = true
		spec.Name += "-idle"
		const idleWindowDiv = 50
		for i := range spec.Submissions {
			spec.Submissions[i].At /= idleWindowDiv
		}
		for i := range spec.Failures {
			spec.Failures[i].At /= idleWindowDiv
		}
	}
	if p.PanicPct > 0 && !spec.Idle && faultRNG.Bool(p.PanicPct/100) {
		// Land the panic in the middle half of the horizon, where generated
		// routines are overwhelmingly likely to be in flight. Idle homes are
		// exempt: their quiet tail has nothing in flight to panic into.
		spec.PanicAt = p.Horizon/4 + faultRNG.UniformDuration(0, p.Horizon/2)
	}
	return spec
}

// Trace capture format: a recorded run — device inventory, timed submissions,
// failure injections and the resulting visibility event stream — serialized so
// it can be replayed through a fresh home. Events use the hub's cursor wire
// shape (the `eventView` JSON of `/api/events?since=N`), so a trace recorded
// from a live hub's event log and one recorded in simulation are directly
// comparable.
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// TraceEvent is one visibility event in the hub's cursor JSON shape
// (seq/time/kind/routine/device/state/detail).
type TraceEvent struct {
	Seq     uint64    `json:"seq,omitempty"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	Routine int64     `json:"routine,omitempty"`
	Device  string    `json:"device,omitempty"`
	State   string    `json:"state,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// TraceSubmission is one timed routine submission. The routine is embedded
// whole (commands, durations, best-effort flags, conditions) via its JSON
// representation.
type TraceSubmission struct {
	At      time.Duration    `json:"at_ns"`
	User    string           `json:"user,omitempty"`
	Routine *routine.Routine `json:"routine"`
}

// TraceFailure is one failure or restart injection.
type TraceFailure struct {
	At      time.Duration `json:"at_ns"`
	Device  device.ID     `json:"device"`
	Restart bool          `json:"restart,omitempty"`
}

// TraceOptions captures the scalar controller knobs a faithful replay needs
// beyond model and scheduler. Pointers distinguish "recorded false" from
// "not recorded" for the lease flags; zero means unrecorded elsewhere.
type TraceOptions struct {
	PreLease      *bool         `json:"pre_lease,omitempty"`
	PostLease     *bool         `json:"post_lease,omitempty"`
	DefaultShort  time.Duration `json:"default_short_ns,omitempty"`
	LeaseLeniency float64       `json:"lease_leniency,omitempty"`
	JiTTTL        time.Duration `json:"jit_ttl_ns,omitempty"`
}

// Trace is a complete recorded run. Model, Scheduler and Seed pin down the
// controller configuration and jitter stream, so a trace is self-contained:
// replaying it needs nothing but this structure.
type Trace struct {
	Name        string            `json:"name"`
	Model       string            `json:"model"`
	Scheduler   string            `json:"scheduler,omitempty"`
	Seed        int64             `json:"seed"`
	Options     TraceOptions      `json:"options,omitempty"`
	JitterMax   time.Duration     `json:"jitter_max_ns,omitempty"`
	Devices     []device.Info     `json:"devices"`
	Submissions []TraceSubmission `json:"submissions"`
	Failures    []TraceFailure    `json:"failures,omitempty"`
	Events      []TraceEvent      `json:"events"`
}

// Spec reconstructs the workload the trace was recorded from. Routines are
// cloned with their runtime identity cleared, so the spec can be resubmitted
// to a fresh controller.
func (t *Trace) Spec() Spec {
	s := Spec{
		Name:      t.Name,
		JitterMax: t.JitterMax,
		Devices:   append([]device.Info(nil), t.Devices...),
	}
	for _, sub := range t.Submissions {
		r := sub.Routine.Clone()
		r.ID = 0
		r.Submitted = time.Time{}
		s.Submissions = append(s.Submissions, Submission{At: sub.At, Routine: r, User: sub.User})
	}
	for _, f := range t.Failures {
		s.Failures = append(s.Failures, FailureEvent{At: f.At, Device: f.Device, Restart: f.Restart})
	}
	return s
}

// EventBytes renders the event stream as canonical JSON lines — one cursor
// event per line. Byte equality of two traces' EventBytes is the replay
// acceptance oracle.
func (t *Trace) EventBytes() []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range t.Events {
		// Encoder.Encode appends a newline after each event.
		if err := enc.Encode(&t.Events[i]); err != nil {
			panic(fmt.Sprintf("workload: encode trace event: %v", err))
		}
	}
	return buf.Bytes()
}

// EncodeTrace serializes a trace (indented JSON, suitable for files).
func EncodeTrace(t *Trace) ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// DecodeTrace parses a trace produced by EncodeTrace.
func DecodeTrace(b []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	for i, sub := range t.Submissions {
		if sub.Routine == nil {
			return nil, fmt.Errorf("workload: decode trace: submission %d has no routine", i)
		}
	}
	return &t, nil
}

// Trace-based scenarios (§7.2): Morning, Party and Factory. The paper built
// these from Google Home traces of three real homes plus the SmartThings and
// IoTBench public app datasets; this package regenerates them from the
// published descriptions (routine counts, device counts, user counts, run
// lengths, and access probabilities), randomized per seed while obeying the
// real-life ordering constraints (e.g. wake-up before cook-breakfast).
package workload

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/stats"
)

// Morning generates the Morning scenario: 4 family members in a 3-bed 2-bath
// home concurrently initiating 29 routines over 25 minutes touching 31
// devices. Each user starts with a wake-up routine and ends with a
// leave-home routine; in between are bedroom/bathroom use, breakfast cooking
// and eating, and sporadic routines such as cleaning up spilled milk.
func Morning(seed int64) Spec {
	rng := stats.NewRNG(seed)
	spec := Spec{Name: "morning", Devices: morningDevices()}

	users := []string{"alice", "bob", "carol", "dan"}
	bedroomOf := map[string]int{"alice": 1, "bob": 1, "carol": 2, "dan": 3}
	bathroomOf := map[string]int{"alice": 1, "bob": 2, "carol": 1, "dan": 2}

	// Per-user timeline within the 25-minute window, obeying the real-life
	// ordering constraints: wake-up < bathroom < breakfast < leave-home.
	for _, u := range users {
		bed := bedroomOf[u]
		bath := bathroomOf[u]
		wake := rng.UniformDuration(0, 4*time.Minute)
		bathAt := wake + rng.UniformDuration(time.Minute, 4*time.Minute)
		cookAt := bathAt + rng.UniformDuration(2*time.Minute, 5*time.Minute)
		eatAt := cookAt + rng.UniformDuration(2*time.Minute, 4*time.Minute)
		leaveAt := 20*time.Minute + rng.UniformDuration(0, 4*time.Minute)

		spec.add(wake, u, routine.New(u+"-wake-up",
			cmd(fmt.Sprintf("bedroom-%d-light", bed), device.On),
			cmd(fmt.Sprintf("bedroom-%d-shade", bed), device.Open),
			cmdDur("water-heater", device.On, 10*time.Minute),
		))
		spec.add(bathAt, u, routine.New(u+"-bathroom",
			cmd(fmt.Sprintf("bathroom-%d-light", bath), device.On),
			cmdDur(fmt.Sprintf("bathroom-%d-fan", bath), device.On, 5*time.Minute),
			cmd(fmt.Sprintf("bathroom-%d-fan", bath), device.Off),
			cmd(fmt.Sprintf("bathroom-%d-light", bath), device.Off),
		))
		spec.add(cookAt, u, routine.New(u+"-cook-breakfast",
			cmd("kitchen-light", device.On),
			cmdDur("coffee-maker", device.State("BREW"), 4*time.Minute),
			cmdDur("toaster", device.On, 3*time.Minute),
			cmd("coffee-maker", device.Off),
			cmd("toaster", device.Off),
		))
		spec.add(eatAt, u, routine.New(u+"-eat-breakfast",
			cmd("tv", device.On),
			cmd("speaker", device.State("NEWS")),
			cmd(fmt.Sprintf("bedroom-%d-light", bed), device.Off),
		))
		spec.add(leaveAt, u, routine.New(u+"-leave-home",
			bestEffort("living-light", device.Off),
			bestEffort("kitchen-light", device.Off),
			cmd("front-door", device.Locked),
			cmd("security", device.State("ARMED")),
		))
	}

	// Shared / sporadic routines to reach the scenario's 29 routines.
	sporadic := []struct {
		name string
		at   time.Duration
		r    *routine.Routine
	}{
		{"thermostat-morning", rng.UniformDuration(0, 2*time.Minute), routine.New("thermostat-morning",
			cmd("thermostat", device.State("HEAT:70F")), cmd("ac", device.Off))},
		{"open-shades", rng.UniformDuration(2*time.Minute, 6*time.Minute), routine.New("open-shades",
			cmd("living-shade", device.Open), cmd("kitchen-light", device.On))},
		{"milk-spill-cleanup", rng.UniformDuration(10*time.Minute, 15*time.Minute), routine.New("milk-spill-cleanup",
			cmdDur("mop", device.On, 3*time.Minute), cmd("mop", device.Off))},
		{"start-dishwasher", rng.UniformDuration(15*time.Minute, 20*time.Minute), routine.New("start-dishwasher",
			cmdDur("dishwasher", device.On, 40*time.Minute))},
		{"morning-vacuum", rng.UniformDuration(12*time.Minute, 18*time.Minute), routine.New("morning-vacuum",
			cmdDur("vacuum", device.On, 8*time.Minute), cmd("vacuum", device.Off))},
		{"pancake-treat", rng.UniformDuration(8*time.Minute, 14*time.Minute), routine.New("pancake-treat",
			cmdDur("pancake-maker", device.On, 5*time.Minute), cmd("pancake-maker", device.Off))},
		{"garage-warmup", rng.UniformDuration(16*time.Minute, 22*time.Minute), routine.New("garage-warmup",
			cmd("garage", device.Open), cmd("hallway-light", device.On))},
		{"close-garage", rng.UniformDuration(22*time.Minute, 25*time.Minute), routine.New("close-garage",
			cmd("garage", device.Closed), cmd("hallway-light", device.Off))},
		{"stove-preheat", rng.UniformDuration(6*time.Minute, 12*time.Minute), routine.New("stove-preheat",
			cmdDur("stove", device.State("HEAT:400F"), 10*time.Minute), cmd("stove", device.Off))},
	}
	for _, s := range sporadic {
		spec.add(s.at, "family", s.r)
	}
	return spec
}

// morningDevices returns the 31-device inventory of the Morning scenario.
func morningDevices() []device.Info {
	var out []device.Info
	add := func(id string, k device.Kind, initial device.State) {
		out = append(out, device.Info{ID: device.ID(id), Kind: k, Room: "home", Initial: initial})
	}
	for i := 1; i <= 3; i++ {
		add(fmt.Sprintf("bedroom-%d-light", i), device.KindLight, device.Off)
		add(fmt.Sprintf("bedroom-%d-shade", i), device.KindShade, device.Closed)
	}
	for i := 1; i <= 2; i++ {
		add(fmt.Sprintf("bathroom-%d-light", i), device.KindLight, device.Off)
		add(fmt.Sprintf("bathroom-%d-fan", i), device.KindSwitch, device.Off)
		add(fmt.Sprintf("bathroom-%d-heater", i), device.KindThermostat, device.Off)
	}
	for _, kitchen := range []struct {
		id string
		k  device.Kind
	}{
		{"coffee-maker", device.KindCoffeeMaker}, {"toaster", device.KindToaster},
		{"pancake-maker", device.KindPancake}, {"stove", device.KindOven},
		{"kitchen-light", device.KindLight}, {"dishwasher", device.KindDishwasher},
	} {
		add(kitchen.id, kitchen.k, device.Off)
	}
	add("living-light", device.KindLight, device.Off)
	add("living-shade", device.KindShade, device.Closed)
	add("tv", device.KindSwitch, device.Off)
	add("speaker", device.KindSpeaker, device.Off)
	add("thermostat", device.KindThermostat, device.Off)
	add("ac", device.KindAC, device.Off)
	add("front-door", device.KindDoorLock, device.Unlocked)
	add("garage", device.KindGarage, device.Closed)
	add("hallway-light", device.KindLight, device.Off)
	add("vacuum", device.KindVacuum, device.Off)
	add("mop", device.KindMop, device.Off)
	add("water-heater", device.KindThermostat, device.Off)
	add("security", device.KindAlarm, device.Off)
	return out
}

// Party generates the Party scenario: one long routine controls the party
// atmosphere for the whole run while 11 short routines cover spontaneous
// events (singing time, announcements, serving food and drinks, ...). The
// long routine steps through the ambiance devices one after another, so
// EV's pre-/post-leasing can slot short routines around it while PSV and GSV
// suffer head-of-line blocking (§7.2).
func Party(seed int64) Spec {
	rng := stats.NewRNG(seed)
	spec := Spec{Name: "party", Devices: partyDevices()}

	ambiance := routine.New("party-ambiance",
		cmdDur("party-light-1", device.State("COLOR:WARM"), 10*time.Minute),
		cmdDur("party-light-2", device.State("COLOR:BLUE"), 10*time.Minute),
		cmdDur("disco-ball", device.On, 10*time.Minute),
		cmdDur("speaker", device.State("PLAYLIST:POP"), 10*time.Minute),
		cmdDur("projector", device.On, 10*time.Minute),
	)
	spec.add(0, "host", ambiance)

	shorts := []*routine.Routine{
		routine.New("welcome-guests", cmd("front-door", device.Unlocked), cmd("hallway-light", device.On)),
		routine.New("serve-drinks", cmd("drink-fridge", device.Open), cmd("drink-fridge", device.Closed)),
		routine.New("serve-food", cmdDur("snack-warmer", device.On, 3*time.Minute), cmd("snack-warmer", device.Off)),
		routine.New("singing-time", cmd("speaker", device.State("KARAOKE")), cmd("mic", device.On)),
		routine.New("announcement", cmd("speaker", device.State("ANNOUNCE")), cmd("party-light-1", device.State("BLINK"))),
		routine.New("coffee-round", cmdDur("coffee-maker", device.On, 4*time.Minute), cmd("coffee-maker", device.Off)),
		routine.New("cool-down-room", cmd("thermostat", device.State("COOL:68F")), cmd("balcony-door", device.Open)),
		routine.New("balcony-time", cmd("balcony-light", device.On), cmd("balcony-door", device.Open)),
		routine.New("cake-moment", cmd("party-light-2", device.State("DIM")), cmd("speaker", device.State("BIRTHDAY"))),
		routine.New("cleanup-spill", cmdDur("mop", device.On, 2*time.Minute), cmd("mop", device.Off)),
		routine.New("wind-down", cmd("disco-ball", device.Off), cmd("projector", device.Off), cmd("party-light-1", device.State("DIM"))),
	}
	horizon := 50 * time.Minute
	for i, r := range shorts {
		// Spread the spontaneous events across the party, in a loosely
		// increasing order so e.g. wind-down lands late.
		lo := time.Duration(i) * horizon / time.Duration(len(shorts)+1)
		spec.add(lo+rng.UniformDuration(0, horizon/time.Duration(len(shorts)+1)), "guest", r)
	}
	return spec
}

func partyDevices() []device.Info {
	names := []struct {
		id string
		k  device.Kind
	}{
		{"party-light-1", device.KindLight}, {"party-light-2", device.KindLight},
		{"disco-ball", device.KindSwitch}, {"speaker", device.KindSpeaker},
		{"mic", device.KindSwitch}, {"projector", device.KindSwitch},
		{"snack-warmer", device.KindOven}, {"drink-fridge", device.KindSwitch},
		{"coffee-maker", device.KindCoffeeMaker}, {"thermostat", device.KindThermostat},
		{"balcony-door", device.KindWindow}, {"balcony-light", device.KindLight},
		{"front-door", device.KindDoorLock}, {"hallway-light", device.KindLight},
		{"mop", device.KindMop},
	}
	out := make([]device.Info, 0, len(names))
	for _, n := range names {
		initial := device.Off
		switch n.k {
		case device.KindDoorLock:
			initial = device.Locked
		case device.KindWindow:
			initial = device.Closed
		}
		out = append(out, device.Info{ID: device.ID(n.id), Kind: n.k, Room: "party", Initial: initial})
	}
	return out
}

// FactoryParams configures the Factory scenario.
type FactoryParams struct {
	// Stages is the number of assembly-line stages/workers (paper: 50).
	Stages int
	// RoutinesPerStage is how many routines each stage runs back to back.
	RoutinesPerStage int
	// CommandDuration is the mean duration of a stage command.
	CommandDuration time.Duration
	Seed            int64
}

// DefaultFactoryParams mirrors §7.2: 50 workers at 50 stages.
func DefaultFactoryParams() FactoryParams {
	return FactoryParams{Stages: 50, RoutinesPerStage: 2, CommandDuration: 10 * time.Second, Seed: 1}
}

// Factory generates the Factory scenario: an assembly line where each stage
// has local devices, devices shared with the neighbouring stages, and 5
// global devices, accessed with probabilities 0.6 / 0.3 / 0.1 respectively.
// Routines are generated back to back to keep every worker occupied.
func Factory(p FactoryParams) Spec {
	if p.Stages <= 0 {
		p = DefaultFactoryParams()
	}
	if p.RoutinesPerStage <= 0 {
		p.RoutinesPerStage = 2
	}
	if p.CommandDuration <= 0 {
		p.CommandDuration = 10 * time.Second
	}
	rng := stats.NewRNG(p.Seed)
	spec := Spec{Name: "factory", Devices: factoryDevices(p.Stages)}

	globals := []string{"power-bus", "compressor", "crane", "qa-scanner", "labeler"}
	// Estimated routine length, used to space each worker's routines so the
	// worker is continuously occupied (no idle time).
	routineSpan := 3 * p.CommandDuration

	for stage := 0; stage < p.Stages; stage++ {
		for round := 0; round < p.RoutinesPerStage; round++ {
			at := time.Duration(round)*routineSpan + rng.UniformDuration(0, p.CommandDuration)
			r := routine.New(fmt.Sprintf("stage-%02d-round-%d", stage, round))
			nCmds := 2 + rng.Intn(3)
			for c := 0; c < nCmds; c++ {
				var dev string
				roll := rng.Float64()
				switch {
				case roll < 0.6: // local device
					dev = fmt.Sprintf("station-%02d-%s", stage, []string{"tool", "conveyor"}[rng.Intn(2)])
				case roll < 0.9: // shared with a neighbouring stage
					if stage == 0 || (stage < p.Stages-1 && rng.Bool(0.5)) {
						dev = fmt.Sprintf("belt-%02d", stage) // belt to the next stage
					} else {
						dev = fmt.Sprintf("belt-%02d", stage-1) // belt from the previous stage
					}
				default: // global device
					dev = globals[rng.Intn(len(globals))]
				}
				target := device.On
				if rng.Bool(0.4) {
					target = device.Off
				}
				r.Commands = append(r.Commands, routine.Command{
					Device:   device.ID(dev),
					Target:   target,
					Duration: rng.NormDuration(p.CommandDuration, p.CommandDuration/4, time.Second),
				})
			}
			spec.add(at, fmt.Sprintf("worker-%02d", stage), r)
		}
	}
	return spec
}

func factoryDevices(stages int) []device.Info {
	var out []device.Info
	add := func(id string, k device.Kind) {
		out = append(out, device.Info{ID: device.ID(id), Kind: k, Room: "factory", Initial: device.Off})
	}
	for i := 0; i < stages; i++ {
		add(fmt.Sprintf("station-%02d-tool", i), device.KindStation)
		add(fmt.Sprintf("station-%02d-conveyor", i), device.KindStation)
		if i < stages-1 {
			add(fmt.Sprintf("belt-%02d", i), device.KindStation)
		}
	}
	for _, g := range []string{"power-bus", "compressor", "crane", "qa-scanner", "labeler"} {
		add(g, device.KindStation)
	}
	return out
}

// --- small builders ---------------------------------------------------------

func (s *Spec) add(at time.Duration, user string, r *routine.Routine) {
	r.User = user
	s.Submissions = append(s.Submissions, Submission{At: at, Routine: r, User: user})
}

func cmd(dev string, target device.State) routine.Command {
	return routine.Command{Device: device.ID(dev), Target: target}
}

func cmdDur(dev string, target device.State, d time.Duration) routine.Command {
	return routine.Command{Device: device.ID(dev), Target: target, Duration: d}
}

func bestEffort(dev string, target device.State) routine.Command {
	return routine.Command{Device: device.ID(dev), Target: target, BestEffort: true}
}

// Package failure implements SafeHome's failure detector (§6): devices are
// explicitly probed with periodic pings, and any successful exchange with a
// device counts as an implicit acknowledgement that suppresses redundant
// pings. Up/down transitions are reported through callbacks, which the hub
// forwards to the concurrency controller as NotifyFailure / NotifyRestart.
package failure

import (
	"context"
	"sync"
	"time"

	"safehome/internal/device"
)

// Defaults mirror the paper's implementation: a 1-second probe period and a
// 100 ms response timeout (the timeout itself is enforced by the actuator).
const (
	DefaultInterval = 1 * time.Second
)

// Options configures a Detector.
type Options struct {
	// Interval is the probe period; devices contacted more recently than this
	// (implicit acks) are not pinged. Defaults to DefaultInterval.
	Interval time.Duration
	// OnFailure is invoked (outside the detector's lock) when a device
	// transitions up → down.
	OnFailure func(device.ID)
	// OnRestart is invoked when a device transitions down → up.
	OnRestart func(device.ID)
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Detector tracks device liveness. It is safe for concurrent use.
type Detector struct {
	actuator device.Actuator
	opts     Options

	mu          sync.Mutex
	devices     []device.ID
	up          map[device.ID]bool
	lastContact map[device.ID]time.Time
	polls       int
	pings       int
}

// NewDetector builds a detector for the given devices. All devices start in
// the "up" state; the first poll corrects that if needed.
func NewDetector(actuator device.Actuator, devices []device.ID, opts Options) *Detector {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	d := &Detector{
		actuator:    actuator,
		opts:        opts,
		devices:     append([]device.ID(nil), devices...),
		up:          make(map[device.ID]bool, len(devices)),
		lastContact: make(map[device.ID]time.Time, len(devices)),
	}
	for _, id := range devices {
		d.up[id] = true
	}
	return d
}

// Up reports whether the device is currently believed to be up.
func (d *Detector) Up(id device.ID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.up[id]
}

// Down returns the devices currently believed failed.
func (d *Detector) Down() []device.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []device.ID
	for _, id := range d.devices {
		if !d.up[id] {
			out = append(out, id)
		}
	}
	return out
}

// Stats reports how many polls have run and how many explicit pings were sent
// (implicit acks reduce the latter).
func (d *Detector) Stats() (polls, pings int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.polls, d.pings
}

// ReportContact records an implicit acknowledgement: some exchange with the
// device succeeded (e.g. a command response), so it is up and need not be
// pinged this period. A down device reported up triggers OnRestart.
func (d *Detector) ReportContact(id device.ID) {
	d.markResult(id, true)
}

// ReportSilence records implicit failure evidence: an exchange with the
// device failed. A device reported down triggers OnFailure.
func (d *Detector) ReportSilence(id device.ID) {
	d.markResult(id, false)
}

// markResult updates liveness state and fires the transition callback.
func (d *Detector) markResult(id device.ID, ok bool) {
	d.mu.Lock()
	known := false
	for _, dev := range d.devices {
		if dev == id {
			known = true
			break
		}
	}
	if !known {
		d.mu.Unlock()
		return
	}
	wasUp := d.up[id]
	d.up[id] = ok
	if ok {
		d.lastContact[id] = d.opts.Now()
	}
	var cb func(device.ID)
	switch {
	case wasUp && !ok:
		cb = d.opts.OnFailure
	case !wasUp && ok:
		cb = d.opts.OnRestart
	}
	d.mu.Unlock()
	if cb != nil {
		cb(id)
	}
}

// Poll probes every device whose last contact is older than the probe
// interval, and reports up/down transitions. It returns the number of pings
// sent.
func (d *Detector) Poll() int {
	d.mu.Lock()
	now := d.opts.Now()
	d.polls++
	var toPing []device.ID
	for _, id := range d.devices {
		if last, ok := d.lastContact[id]; ok && d.up[id] && now.Sub(last) < d.opts.Interval {
			continue // implicit ack is fresh enough
		}
		toPing = append(toPing, id)
	}
	d.pings += len(toPing)
	d.mu.Unlock()

	for _, id := range toPing {
		err := d.actuator.Ping(id)
		d.markResult(id, err == nil)
	}
	return len(toPing)
}

// Run polls at the configured interval until the context is cancelled.
func (d *Detector) Run(ctx context.Context) {
	ticker := time.NewTicker(d.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			d.Poll()
		}
	}
}

package failure

import (
	"context"
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
)

func newFleet(ids ...device.ID) *device.Fleet {
	reg := device.NewRegistry()
	for _, id := range ids {
		reg.Add(device.Info{ID: id, Kind: device.KindPlug, Initial: device.Off})
	}
	return device.NewFleet(reg)
}

// recorder collects transition callbacks.
type recorder struct {
	mu       sync.Mutex
	failures []device.ID
	restarts []device.ID
}

func (r *recorder) onFailure(id device.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failures = append(r.failures, id)
}

func (r *recorder) onRestart(id device.ID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.restarts = append(r.restarts, id)
}

func (r *recorder) counts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.failures), len(r.restarts)
}

func TestDetectorDetectsFailureAndRestart(t *testing.T) {
	fleet := newFleet("a", "b")
	rec := &recorder{}
	now := time.Date(2021, 4, 26, 8, 0, 0, 0, time.UTC)
	det := NewDetector(fleet, []device.ID{"a", "b"}, Options{
		Interval:  time.Second,
		OnFailure: rec.onFailure,
		OnRestart: rec.onRestart,
		Now:       func() time.Time { return now },
	})
	advance := func(d time.Duration) { now = now.Add(d) }

	det.Poll()
	if f, r := rec.counts(); f != 0 || r != 0 {
		t.Fatalf("healthy poll produced transitions: %d failures %d restarts", f, r)
	}

	if err := fleet.Fail("a"); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Second)
	det.Poll()
	if f, _ := rec.counts(); f != 1 {
		t.Fatalf("failures = %d, want 1", f)
	}
	if det.Up("a") {
		t.Error("device a should be down")
	}
	if down := det.Down(); len(down) != 1 || down[0] != "a" {
		t.Errorf("Down() = %v, want [a]", down)
	}

	// Repeated polls while down do not re-fire the failure callback.
	advance(2 * time.Second)
	det.Poll()
	if f, _ := rec.counts(); f != 1 {
		t.Fatalf("failures after repeat poll = %d, want 1", f)
	}

	if err := fleet.Restore("a"); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Second)
	det.Poll()
	if _, r := rec.counts(); r != 1 {
		t.Fatalf("restarts = %d, want 1", r)
	}
	if !det.Up("a") {
		t.Error("device a should be up again")
	}
}

func TestImplicitAcksSuppressPings(t *testing.T) {
	fleet := newFleet("a", "b")
	now := time.Date(2021, 4, 26, 8, 0, 0, 0, time.UTC)
	det := NewDetector(fleet, []device.ID{"a", "b"}, Options{
		Interval: time.Second,
		Now:      func() time.Time { return now },
	})

	// Fresh implicit acks for both devices: the next poll sends no pings.
	det.ReportContact("a")
	det.ReportContact("b")
	if n := det.Poll(); n != 0 {
		t.Fatalf("poll sent %d pings despite fresh implicit acks, want 0", n)
	}

	// Advance past the interval: both get pinged again.
	now = now.Add(2 * time.Second)
	if n := det.Poll(); n != 2 {
		t.Fatalf("poll sent %d pings, want 2", n)
	}
	polls, pings := det.Stats()
	if polls != 2 || pings != 2 {
		t.Fatalf("stats = %d polls %d pings, want 2 and 2", polls, pings)
	}
}

func TestReportSilenceMarksFailure(t *testing.T) {
	fleet := newFleet("a")
	rec := &recorder{}
	det := NewDetector(fleet, []device.ID{"a"}, Options{OnFailure: rec.onFailure, OnRestart: rec.onRestart})

	det.ReportSilence("a")
	if det.Up("a") {
		t.Error("device should be marked down after implicit silence")
	}
	if f, _ := rec.counts(); f != 1 {
		t.Errorf("failures = %d, want 1", f)
	}
	// Contact brings it back.
	det.ReportContact("a")
	if _, r := rec.counts(); r != 1 {
		t.Errorf("restarts = %d, want 1", r)
	}
}

func TestUnknownDeviceReportsIgnored(t *testing.T) {
	fleet := newFleet("a")
	rec := &recorder{}
	det := NewDetector(fleet, []device.ID{"a"}, Options{OnFailure: rec.onFailure})
	det.ReportSilence("ghost")
	if f, _ := rec.counts(); f != 0 {
		t.Errorf("reports about unknown devices should be ignored, got %d failures", f)
	}
}

func TestRunLoopPollsUntilCancelled(t *testing.T) {
	fleet := newFleet("a")
	if err := fleet.Fail("a"); err != nil {
		t.Fatal(err)
	}
	failed := make(chan device.ID, 1)
	det := NewDetector(fleet, []device.ID{"a"}, Options{
		Interval:  10 * time.Millisecond,
		OnFailure: func(id device.ID) { failed <- id },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go det.Run(ctx)

	select {
	case id := <-failed:
		if id != "a" {
			t.Fatalf("failure callback for %s, want a", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run loop never detected the failure")
	}
}

package stats

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("Counter = %d, want 8000", got)
	}
}

func TestShardedCounterLanes(t *testing.T) {
	s := NewShardedCounter(4)
	if s.Lanes() != 4 {
		t.Fatalf("Lanes = %d, want 4", s.Lanes())
	}
	var wg sync.WaitGroup
	for lane := 0; lane < s.Lanes(); lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Add(lane, 2)
			}
		}(lane)
	}
	wg.Wait()
	if got := s.Total(); got != 4*500*2 {
		t.Fatalf("Total = %d, want %d", got, 4*500*2)
	}
	if got := s.Lane(1).Load(); got != 1000 {
		t.Fatalf("Lane(1) = %d, want 1000", got)
	}
}

func TestShardedCounterClampsLanes(t *testing.T) {
	s := NewShardedCounter(0)
	if s.Lanes() != 1 {
		t.Fatalf("Lanes = %d, want clamp to 1", s.Lanes())
	}
	s.Add(0, 7)
	if s.Total() != 7 {
		t.Fatalf("Total = %d, want 7", s.Total())
	}
}

package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Intn(1000) != b.Intn(1000) {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(7)
	f := a.Fork()
	// The fork must not be the same stream as the parent going forward.
	same := true
	for i := 0; i < 20; i++ {
		if a.Intn(1<<30) != f.Intn(1<<30) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forked stream tracked parent stream exactly")
	}
}

func TestNormDurationClamp(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		d := g.NormDuration(10*time.Millisecond, 100*time.Millisecond, time.Millisecond)
		if d < time.Millisecond {
			t.Fatalf("NormDuration returned %v below the minimum", d)
		}
	}
}

func TestNormDurationMean(t *testing.T) {
	g := NewRNG(2)
	var sum time.Duration
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.NormDuration(10*time.Second, time.Second, 0)
	}
	mean := sum / time.Duration(n)
	if mean < 9500*time.Millisecond || mean > 10500*time.Millisecond {
		t.Fatalf("sample mean %v too far from 10s", mean)
	}
}

func TestNormIntClamp(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := g.NormInt(3, 5, 1); v < 1 {
			t.Fatalf("NormInt returned %d below min", v)
		}
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	g := NewRNG(4)
	z, err := NewZipf(g, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(n)
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("alpha=0 should be ~uniform; item %d has fraction %.3f", i, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(5)
	z, err := NewZipf(g, 25, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 25)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("rank 0 (%d draws) should dominate rank 10 (%d draws) at alpha=1.5", counts[0], counts[10])
	}
	if counts[0] < 40000 {
		t.Fatalf("rank 0 should receive a large share at alpha=1.5, got %d/100000", counts[0])
	}
}

func TestZipfErrors(t *testing.T) {
	g := NewRNG(6)
	if _, err := NewZipf(g, 0, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewZipf(g, 5, -1); err == nil {
		t.Fatal("expected error for negative alpha")
	}
}

func TestZipfShuffleRanksKeepsSupport(t *testing.T) {
	g := NewRNG(7)
	z, _ := NewZipf(g, 8, 1.0)
	z.ShuffleRanks()
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		v := z.Next()
		if v < 0 || v >= 8 {
			t.Fatalf("draw %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 6 {
		t.Fatalf("expected most items to appear, saw %d distinct", len(seen))
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {90, 9.1},
	}
	for _, c := range cases {
		got := Percentile(vals, c.p)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty slice should be NaN")
	}
	if Percentile([]float64{3}, 75) != 3 {
		t.Error("Percentile of singleton should be the value")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.Count != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if s.P50 != 5 {
		t.Fatalf("P50 = %v, want 5", s.P50)
	}
	empty := Summarize(nil)
	if empty.Count != 0 {
		t.Fatal("empty summary should have Count 0")
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2000 {
		t.Fatalf("mean should be 2000 ms, got %v", s.Mean)
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	pts := CDF(vals, 4)
	if len(pts) != 4 {
		t.Fatalf("expected 4 points, got %d", len(pts))
	}
	if pts[len(pts)-1].Fraction != 1.0 {
		t.Fatalf("last CDF fraction should be 1.0, got %v", pts[len(pts)-1].Fraction)
	}
	if pts[0].Value > pts[len(pts)-1].Value {
		t.Fatal("CDF values should be non-decreasing")
	}
	if CDF(nil, 10) != nil {
		t.Fatal("CDF of empty slice should be nil")
	}
	down := CDF([]float64{5, 1, 4, 2, 3, 9, 8, 7, 6, 0}, 5)
	if len(down) != 5 {
		t.Fatalf("expected downsample to 5 points, got %d", len(down))
	}
}

func TestMeanAndFraction(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1 2 3]) should be 2")
	}
	if Fraction(0, 0) != 0 {
		t.Fatal("Fraction with zero total should be 0")
	}
	if Fraction(1, 4) != 0.25 {
		t.Fatal("Fraction(1,4) should be 0.25")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(vals, p)
			if v < prev-1e-9 {
				return false
			}
			if v < vals[0]-1e-9 || v > vals[len(vals)-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF fractions are non-decreasing and end at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		pts := CDF(vals, 16)
		if len(vals) == 0 {
			return pts == nil
		}
		prevF, prevV := 0.0, math.Inf(-1)
		for _, p := range pts {
			if p.Fraction < prevF || p.Value < prevV {
				return false
			}
			prevF, prevV = p.Fraction, p.Value
		}
		return math.Abs(pts[len(pts)-1].Fraction-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

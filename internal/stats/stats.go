// Package stats provides the small statistics substrate SafeHome's
// workload generators and experiment harness rely on: seeded random
// streams, Zipf and truncated-normal samplers, percentile summaries and
// empirical CDFs.
//
// Everything in this package is deterministic given a seed, which is what
// makes the simulation experiments reproducible run-to-run.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// RNG is a seeded source of randomness. It wraps math/rand.Rand so that the
// rest of the code base never reaches for the global rand functions (which
// would make trials irreproducible).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic random stream for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from this one. Forked streams are used
// to decouple, e.g., routine-content randomness from failure-injection
// randomness so that toggling one does not perturb the other.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// NormDuration samples a truncated normal distribution with the given mean
// and standard deviation, clamped to [min, +inf). It is used for command
// durations (Table 3 marks |L| and |S| as normally distributed).
func (g *RNG) NormDuration(mean, stddev, min time.Duration) time.Duration {
	v := g.r.NormFloat64()*float64(stddev) + float64(mean)
	if v < float64(min) {
		v = float64(min)
	}
	return time.Duration(v)
}

// NormInt samples round(N(mean, stddev)) clamped to [min, +inf).
func (g *RNG) NormInt(mean, stddev float64, min int) int {
	v := int(math.Round(g.r.NormFloat64()*stddev + mean))
	if v < min {
		v = min
	}
	return v
}

// ExpDuration samples an exponential distribution with the given mean,
// clamped to [0, +inf). Used for inter-arrival times.
func (g *RNG) ExpDuration(mean time.Duration) time.Duration {
	return time.Duration(g.r.ExpFloat64() * float64(mean))
}

// UniformDuration samples uniformly from [lo, hi].
func (g *RNG) UniformDuration(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)+1))
}

// Zipf draws integers in [0, n) with a Zipf-like popularity skew controlled
// by alpha (the paper's α, Table 3). alpha = 0 degenerates to the uniform
// distribution; larger alpha concentrates probability mass on low ranks.
//
// The distribution is P(k) ∝ 1 / (k+1)^alpha, which matches the common
// "Zipfian coefficient" parameterization used by YCSB-style generators and
// by the paper (α = 0.05 default, swept up to ~2 in Fig 16d).
type Zipf struct {
	n      int
	alpha  float64
	cdf    []float64 // cumulative probabilities, len n
	rng    *RNG
	ranked []int // rank -> item id mapping (identity by default)
}

// NewZipf builds a Zipf sampler over n items with skew alpha.
func NewZipf(rng *RNG, n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: zipf requires n > 0, got %d", n)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("stats: zipf requires alpha >= 0, got %g", alpha)
	}
	z := &Zipf{n: n, alpha: alpha, rng: rng, ranked: make([]int, n)}
	weights := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		w := 1.0 / math.Pow(float64(k+1), alpha)
		weights[k] = w
		total += w
		z.ranked[k] = k
	}
	z.cdf = make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += weights[k] / total
		z.cdf[k] = acc
	}
	z.cdf[n-1] = 1.0
	return z, nil
}

// ShuffleRanks randomizes which item gets which popularity rank, so that the
// most popular device is not always device 0.
func (z *Zipf) ShuffleRanks() {
	z.rng.Shuffle(z.n, func(i, j int) { z.ranked[i], z.ranked[j] = z.ranked[j], z.ranked[i] })
}

// Next draws one item index in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	idx := sort.SearchFloat64s(z.cdf, u)
	if idx >= z.n {
		idx = z.n - 1
	}
	return z.ranked[idx]
}

// N returns the number of items the sampler draws from.
func (z *Zipf) N() int { return z.n }

// Summary captures the distributional statistics the paper reports:
// median, p90, p95, mean, min and max.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P95    float64
	P99    float64
	StdDev float64
}

// Summarize computes a Summary over the sample values.
func Summarize(values []float64) Summary {
	s := Summary{Count: len(values)}
	if len(values) == 0 {
		return s
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	varSum := 0.0
	for _, v := range sorted {
		d := v - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(sorted)))
	return s
}

// SummarizeDurations converts durations to milliseconds and summarizes them.
func SummarizeDurations(ds []time.Duration) Summary {
	vals := make([]float64, len(ds))
	for i, d := range ds {
		vals[i] = float64(d) / float64(time.Millisecond)
	}
	return Summarize(vals)
}

// Percentile returns the p-th percentile (0..100) of an already sorted
// slice using linear interpolation between closest ranks. The slice must be
// sorted ascending and non-empty.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value
}

// CDF computes an empirical CDF with at most maxPoints points (downsampled
// evenly). Used for Fig 15c (stretch-factor CDF).
func CDF(values []float64, maxPoints int) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	if maxPoints <= 0 || maxPoints > n {
		maxPoints = n
	}
	points := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := (i + 1) * n / maxPoints
		if idx > n {
			idx = n
		}
		points = append(points, CDFPoint{
			Value:    sorted[idx-1],
			Fraction: float64(idx) / float64(n),
		})
	}
	return points
}

// Mean returns the arithmetic mean of values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Fraction returns hits/total as a float, 0 when total is 0.
func Fraction(hits, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

package stats

import "sync/atomic"

// Counter is a lock-free monotonic counter safe for concurrent use. It is
// padded to a cache line so that adjacent counters written by different
// goroutines (e.g. one per manager shard) never false-share.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// ShardedCounter is a counter split across independent lanes so that
// concurrent writers that each own a lane (a worker shard, a goroutine)
// increment without any cross-writer contention. Reads sum the lanes and are
// monotonic but not a point-in-time snapshot — exactly the semantics
// operational metrics need.
type ShardedCounter struct {
	lanes []Counter
}

// NewShardedCounter returns a counter with n lanes (n < 1 is clamped to 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{lanes: make([]Counter, n)}
}

// Lanes returns the number of lanes.
func (s *ShardedCounter) Lanes() int { return len(s.lanes) }

// Lane returns lane i's counter; the caller must stay within [0, Lanes()).
func (s *ShardedCounter) Lane(i int) *Counter { return &s.lanes[i] }

// Add increments lane i by delta.
func (s *ShardedCounter) Add(i int, delta int64) { s.lanes[i].Add(delta) }

// Total sums every lane.
func (s *ShardedCounter) Total() int64 {
	var sum int64
	for i := range s.lanes {
		sum += s.lanes[i].Load()
	}
	return sum
}

package journal

import (
	"sync/atomic"
	"time"
)

// Stats is a bundle of plain atomic counters the journal layer bumps as it
// works: appended bytes, fsyncs, checkpoints. It exists so the /metrics
// surface can read journal activity without the journal importing the
// telemetry package (the journal stays owner-agnostic) and without any
// callback on the append path — one shared Stats is typically passed to
// every home's Options and to the shard GroupWriters' WriterOptions, giving
// fleet-wide totals for free.
//
// All fields are safe for concurrent use; nil *Stats disables recording.
type Stats struct {
	// AppendedBytes counts framed batch bytes appended, across every tier
	// (standalone segments and shared group logs alike).
	AppendedBytes atomic.Int64
	// Appends counts Batch records appended.
	Appends atomic.Int64
	// Fsyncs counts data fsyncs: standalone per-home syncs plus shared
	// group-writer sync cycles.
	Fsyncs atomic.Int64
	// Checkpoints counts checkpoint images durably published.
	Checkpoints atomic.Int64
	// LastCheckpointUnixNano is the wall-clock time of the most recent
	// checkpoint (0 until one lands) — the scrape side derives checkpoint
	// age from it.
	LastCheckpointUnixNano atomic.Int64
}

// noteAppend records one appended batch frame of n bytes.
func (s *Stats) noteAppend(n int64) {
	if s == nil {
		return
	}
	s.Appends.Add(1)
	s.AppendedBytes.Add(n)
}

// noteFsync records one data fsync.
func (s *Stats) noteFsync() {
	if s == nil {
		return
	}
	s.Fsyncs.Add(1)
}

// noteCheckpoint records one published checkpoint image.
func (s *Stats) noteCheckpoint() {
	if s == nil {
		return
	}
	s.Checkpoints.Add(1)
	s.LastCheckpointUnixNano.Store(time.Now().UnixNano())
}

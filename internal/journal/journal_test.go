package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

func submitRec(id int64) RoutineRecord {
	return RoutineRecord{
		ID:        id,
		Name:      "r",
		Status:    visibility.StatusWaiting.String(),
		Submitted: time.Unix(id, 0).UTC(),
	}
}

func finishRec(id int64, status visibility.RoutineStatus) RoutineRecord {
	r := submitRec(id)
	r.Status = status.String()
	r.Finished = time.Unix(id+100, 0).UTC()
	r.Executed = 2
	return r
}

// TestDirectoryLockExcludesSecondOpener: one process (here: one open
// journal) owns a home's data directory; a racing second opener must fail
// fast instead of truncating acknowledged segments. Closing (or a crash
// releasing the flock) frees the directory for the successor.
func TestDirectoryLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked directory succeeded")
	}
	j.Close()
	j2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	j2.Abandon()
	j3, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Abandon: %v", err)
	}
	j3.Close()
}

func TestOpenFreshDirRecoversNothing(t *testing.T) {
	j, rec, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rec != nil {
		t.Fatalf("fresh dir recovered %+v, want nil", rec)
	}
}

func TestAppendCommitRecover(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh dir recovered state")
	}
	b1 := &Batch{
		Submits:  []RoutineRecord{submitRec(1), submitRec(2)},
		Finishes: []RoutineRecord{finishRec(1, visibility.StatusCommitted)},
		States:   []StateEntry{{Device: "plug-0", State: device.On}},
		FirstSeq: 1,
		Events:   []EventRecord{{Kind: int(visibility.EvSubmitted), Routine: 1}},
	}
	if err := j.Append(b1); err != nil {
		t.Fatal(err)
	}
	b2 := &Batch{
		Finishes: []RoutineRecord{finishRec(2, visibility.StatusAborted)},
		States:   []StateEntry{{Device: "plug-0", State: device.Off}, {Device: "plug-1", State: device.On}},
		FirstSeq: 2,
		Events:   []EventRecord{{Kind: int(visibility.EvAborted), Routine: 2}},
	}
	if err := j.Append(b2); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if b1.LSN != 1 || b2.LSN != 2 {
		t.Fatalf("LSNs = %d, %d; want 1, 2", b1.LSN, b2.LSN)
	}
	j.Close()

	j2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec == nil {
		t.Fatal("recovered nothing")
	}
	if len(rec.Routines) != 2 {
		t.Fatalf("recovered %d routines, want 2", len(rec.Routines))
	}
	if rec.Routines[0].Status != "committed" || rec.Routines[1].Status != "aborted" {
		t.Fatalf("statuses = %s, %s", rec.Routines[0].Status, rec.Routines[1].Status)
	}
	if rec.States["plug-0"] != device.Off || rec.States["plug-1"] != device.On {
		t.Fatalf("states = %v", rec.States)
	}
	if rec.FirstSeq != 1 || len(rec.Events) != 2 || rec.NextSeq() != 3 {
		t.Fatalf("events window = first %d len %d next %d", rec.FirstSeq, len(rec.Events), rec.NextSeq())
	}
	if rec.LSN != 2 {
		t.Fatalf("recovered LSN = %d, want 2", rec.LSN)
	}
	// Appends after recovery continue the LSN sequence.
	b3 := &Batch{Submits: []RoutineRecord{submitRec(3)}}
	if err := j2.Append(b3); err != nil {
		t.Fatal(err)
	}
	if b3.LSN != 3 {
		t.Fatalf("post-recovery LSN = %d, want 3", b3.LSN)
	}
}

// newestSegment returns the path of the segment with the highest first-LSN.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	j := &Journal{dir: dir}
	segs, err := j.listSegments()
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func TestTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Finishes: []RoutineRecord{finishRec(1, visibility.StatusCommitted)}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the final record: chop a few bytes off the segment tail.
	seg := newestSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, buf[:len(buf)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Routines) != 1 {
		t.Fatalf("recovered %+v, want the first batch only", rec)
	}
	if rec.Routines[0].Status != "waiting" {
		t.Fatalf("torn finish applied anyway: %s", rec.Routines[0].Status)
	}
	if rec.LSN != 1 {
		t.Fatalf("LSN = %d, want 1", rec.LSN)
	}
}

// TestTornFirstFrameDoesNotSwallowLaterAppends: when the tear hits the very
// FIRST record of the newest segment, reopening must not append new
// (acknowledged) records behind the torn bytes — that would hide them from
// the next recovery's sequential scan.
func TestTornFirstFrameDoesNotSwallowLaterAppends(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the segment's first (and only) frame mid-payload.
	seg := newestSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, buf[:frameHeaderLen+2], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil && len(rec.Routines) != 0 {
		t.Fatalf("torn-at-first-frame recovery yielded %d routines", len(rec.Routines))
	}
	// An acknowledged append after the reopen...
	if err := j2.Append(&Batch{Submits: []RoutineRecord{submitRec(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Commit(); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	// ...must survive the next recovery.
	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2 == nil || len(rec2.Routines) != 1 {
		t.Fatalf("acknowledged post-tear append lost: recovered %+v", rec2)
	}
}

func TestCorruptPayloadEndsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(2)}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip a payload byte of the last record: the CRC check must reject it.
	seg := newestSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Routines) != 1 {
		t.Fatalf("recovered %+v, want only the intact first batch", rec)
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(i)}, Finishes: []RoutineRecord{finishRec(i, visibility.StatusCommitted)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	before, err := j.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if before < 2 {
		t.Fatalf("expected multiple segments before checkpoint, got %d", before)
	}

	ck := &Checkpoint{FirstSeq: 1}
	for i := int64(1); i <= 20; i++ {
		ck.Routines = append(ck.Routines, finishRec(i, visibility.StatusCommitted))
	}
	ck.States = []StateEntry{{Device: "plug-0", State: device.On}}
	if err := j.Checkpoint(ck); err != nil {
		t.Fatal(err)
	}
	after, err := j.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if after != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1 (fresh tail)", after)
	}
	if j.SinceCheckpoint() != 0 {
		t.Fatalf("SinceCheckpoint = %d after checkpoint", j.SinceCheckpoint())
	}

	// Post-checkpoint appends land after the checkpoint LSN and both survive.
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(21)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Routines) != 21 {
		t.Fatalf("recovered %d routines, want 21", len(rec.Routines))
	}
	if rec.Routines[20].Status != "waiting" {
		t.Fatalf("post-checkpoint submit lost: %+v", rec.Routines[20])
	}
	if rec.States["plug-0"] != device.On {
		t.Fatalf("checkpoint states lost: %v", rec.States)
	}
}

// TestCoveredTornSegmentDoesNotMaskLiveRecords: if a checkpoint-covered
// segment survives truncation (e.g. a failed remove) with a torn tail,
// recovery must skip it rather than let its stale tear end the scan before
// the live segments.
func TestCoveredTornSegmentDoesNotMaskLiveRecords(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	ck := &Checkpoint{Routines: []RoutineRecord{submitRec(1), submitRec(2), submitRec(3)}}
	if err := j.Checkpoint(ck); err != nil { // truncates, rotates to wal-4
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(4)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Re-plant a torn pre-checkpoint segment, as if its removal had failed.
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(rec.Routines) != 4 {
		t.Fatalf("covered torn segment masked live records: recovered %d routines, want 4", len(rec.Routines))
	}
}

func TestShouldCheckpointThreshold(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{CheckpointBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.ShouldCheckpoint() {
		t.Fatal("fresh journal wants a checkpoint")
	}
	for !j.ShouldCheckpoint() {
		if err := j.Append(&Batch{States: []StateEntry{{Device: "d", State: device.On}}}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEventWindowGapKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Seq 5..6, then a gap (7..9 evicted before journaling), then 10..11.
	if err := j.Append(&Batch{FirstSeq: 5, Events: []EventRecord{{Kind: 1}, {Kind: 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{FirstSeq: 10, Events: []EventRecord{{Kind: 3}, {Kind: 4}}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.FirstSeq != 10 || len(rec.Events) != 2 || rec.NextSeq() != 12 {
		t.Fatalf("window = first %d len %d next %d; want 10, 2, 12", rec.FirstSeq, len(rec.Events), rec.NextSeq())
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := visibility.Result{
		ID:     7,
		Status: visibility.StatusAborted,
		Routine: routine.New("cool",
			routine.Command{Device: "window", Target: device.Closed},
			routine.Command{Device: "ac", Target: device.On, Duration: time.Minute},
		),

		Submitted:          time.Unix(1, 0).UTC(),
		Started:            time.Unix(2, 0).UTC(),
		Finished:           time.Unix(3, 0).UTC(),
		Executed:           3,
		Skipped:            1,
		BestEffortFailures: 2,
		RolledBack:         3,
		AbortReason:        "device failure",
	}
	back := FromResult(res).ToResult()
	if back.ID != res.ID || back.Status != res.Status || back.AbortReason != res.AbortReason ||
		back.Executed != res.Executed || back.RolledBack != res.RolledBack ||
		!back.Finished.Equal(res.Finished) {
		t.Fatalf("round trip mangled result: %+v", back)
	}
	if back.Routine == nil || back.Routine.Name != "cool" || len(back.Routine.Commands) != 2 {
		t.Fatalf("round trip mangled routine: %+v", back.Routine)
	}
	if back.Routine.Commands[1].Duration != time.Minute {
		t.Fatalf("command duration lost: %+v", back.Routine.Commands[1])
	}
}

// TestInjectErrSurfacesOnEachWritePath: the fault-injection hook fails each
// write path with the planted error, wrapped in that operation's context, and
// leaves the journal usable once the hook stops failing.
func TestInjectErrSurfacesOnEachWritePath(t *testing.T) {
	var failOp string
	planted := errors.New("planted: disk on fire")
	j, _, err := Open(t.TempDir(), Options{
		TestInjectErr: func(op string) error {
			if op == failOp {
				return planted
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	check := func(op string, call func() error) {
		t.Helper()
		failOp = op
		err := call()
		if !errors.Is(err, planted) {
			t.Fatalf("%s under injection: err = %v, want the planted error", op, err)
		}
		failOp = ""
		if err := call(); err != nil {
			t.Fatalf("%s after injection cleared: %v", op, err)
		}
	}
	n := int64(0)
	check("append", func() error {
		n++
		return j.Append(&Batch{Submits: []RoutineRecord{submitRec(n)}})
	})
	check("commit", j.Commit)
	check("checkpoint", func() error {
		return j.Checkpoint(&Checkpoint{LSN: j.LSN(), FirstSeq: 1})
	})
}

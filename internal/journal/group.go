package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// This file is the shared-log half of the journal: a GroupWriter owns one
// physical segment stream that many homes' journals append into, coalescing
// their commits into one fd/fsync cycle. Per-home fsync cost — the dominant
// term in the journaled benchmarks — becomes per-writer, and so does the
// descriptor count: a manager shard with a thousand journaled homes holds
// one active segment fd, not a thousand.
//
// Layout under the wal root (one tree per manager/hub data directory):
//
//	wal.lock            flock: one process owns the whole tree
//	ep<N>/w<i>/log-<seq>.seg
//
// Every boot opens a fresh epoch directory. That keeps the torn-tail
// contract intact across restarts: a crash tears at most the tail of the
// newest epoch's segments, and nothing is ever appended behind an old tear
// where a sequential scan would miss it. Within an epoch each writer's
// segments are strictly ordered by sequence number.
//
// Homes' records interleave freely inside a segment; each Batch frame
// carries its home ID (Batch.Home) and recovery demultiplexes by it. A
// home's checkpoint (which stays per-home, in its own directory) prunes its
// records from the shared state, and a segment file is deleted once every
// home it contains is checkpointed past the segment's last record for that
// home.

// WriterOptions tunes a GroupWriter fleet.
type WriterOptions struct {
	// SegmentBytes rotates a writer's active shared segment once it exceeds
	// this size (default 4 MiB).
	SegmentBytes int64
	// SyncDelay is the group-commit window: when more than one home shares
	// the writer, its syncer waits this long after noticing new appends
	// before it flushes and fsyncs, so commits arriving close together ride
	// one disk sync instead of one each. Zero means DefaultSyncDelay;
	// negative disables the window (every cycle syncs immediately). A lone
	// attached home never waits — its mailbox batching already coalesces,
	// and the window would be pure latency.
	SyncDelay time.Duration
	// OnSync, when non-nil, is called after each data fsync with the synced
	// segment's path and its size at that sync. Called with the writer's
	// internal lock held — the hook must not call back into the writer or
	// any attached journal.
	OnSync func(path string, syncedBytes int64)
	// Stats, when non-nil, receives the writer's fsync count. Usually the
	// same Stats the attached journals carry, so standalone and group syncs
	// land in one fleet-wide total.
	Stats *Stats
	// OnCycle, when non-nil, is called after each sync cycle with the bytes
	// that cycle made durable and the number of commit tickets it released —
	// the group-commit coalescing factor. Called with the writer's internal
	// lock held; the hook must not call back into the writer or any attached
	// journal (a plain histogram observation is the intended use).
	OnCycle func(bytes int64, commits int)
}

// DefaultSyncDelay is the default group-commit window. At ~1ms it is far
// below device-actuation latency but long enough to gather every busy
// home's appends into one fsync — on a loaded manager it cuts the fsync
// rate by an order of magnitude.
const DefaultSyncDelay = time.Millisecond

// sealedSeg is the shared state's record of one on-disk shared segment: the
// homes it contains and the highest LSN it holds for each, which is exactly
// what checkpoint-driven pruning and per-home tail reads need.
type sealedSeg struct {
	path  string
	homes map[string]uint64
	// scanned marks boot-scan files whose contents already live in
	// walState.tails; TailFor must not read them twice.
	scanned bool
}

// walState is the bookkeeping shared by every GroupWriter of one wal tree:
// the boot-scanned per-home tails from previous epochs, the set of on-disk
// segments, and each home's checkpoint high-water mark.
type walState struct {
	mu      sync.Mutex
	lock    *os.File // flock on wal.lock: one process owns the tree
	refs    int      // live writers; the last release drops the flock
	tails   map[string][]*Batch
	segRecs []sealedSeg
	ckpt    map[string]uint64
}

func (st *walState) addSealed(s sealedSeg) {
	st.mu.Lock()
	st.segRecs = append(st.segRecs, s)
	st.mu.Unlock()
}

// checkpointed records that home is durable through lsn: its boot tail is
// pruned and every segment file whose contents are now fully covered (for
// all homes it holds) is deleted.
func (st *walState) checkpointed(home string, lsn uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if lsn > st.ckpt[home] {
		st.ckpt[home] = lsn
	}
	tail := st.tails[home]
	i := 0
	for i < len(tail) && tail[i].LSN <= st.ckpt[home] {
		i++
	}
	switch {
	case i == len(tail) && i > 0:
		delete(st.tails, home)
	case i > 0:
		st.tails[home] = tail[i:]
	}
	keep := st.segRecs[:0]
	for _, s := range st.segRecs {
		covered := true
		for h, max := range s.homes {
			if st.ckpt[h] < max {
				covered = false
				break
			}
		}
		if covered {
			_ = os.Remove(s.path)
			// Best-effort directory cleanup: succeeds only once a writer or
			// epoch directory is empty.
			_ = os.Remove(filepath.Dir(s.path))
			_ = os.Remove(filepath.Dir(filepath.Dir(s.path)))
		} else {
			keep = append(keep, s)
		}
	}
	st.segRecs = keep
}

func (st *walState) release() {
	st.mu.Lock()
	st.refs--
	last := st.refs == 0
	st.mu.Unlock()
	if last && st.lock != nil {
		_ = st.lock.Close()
	}
}

// syncTicket parks one journal's Commit until the shared log's sync
// position covers pos — the "reply released only after its covering fsync
// lands" half of the group-commit contract.
type syncTicket struct {
	pos  int64
	done chan struct{}
	err  error
}

// GroupWriter owns one shared segment stream and the syncer goroutine that
// periodically fsyncs it. Journals attach to it via Options.Writer; their
// Append calls interleave frames into the active segment under the writer's
// lock, and their Commit calls wait (sync tiers) or window-check (async)
// against the writer's global sync position.
type GroupWriter struct {
	st    *walState
	dir   string
	sopts WriterOptions

	mu       sync.Mutex
	cond     *sync.Cond // wakes the syncer when appends or closes arrive
	seg      *os.File
	segPath  string
	segSeq   int
	segBytes int64
	segHomes map[string]uint64
	// pending buffers appended frames in memory; the syncer writes the whole
	// buffer with one write(2) immediately before each fsync, so a commit
	// window costs two syscalls total no matter how many homes' appends it
	// coalesced. A commit is only acknowledged after its covering fsync, so
	// bytes lost from the buffer in a crash were never acknowledged.
	pending []byte
	// Byte positions are global and monotonic across segment rotations (a
	// rotation only happens when the two are equal), so a commit ticket is
	// a single comparison regardless of which segment its bytes landed in.
	totalAppended int64
	totalSynced   int64
	tickets       []*syncTicket
	attached      map[*Journal]struct{}
	err           error
	closed        bool
	abandoned     bool

	syncerDone chan struct{}
}

const (
	walLockName     = "wal.lock"
	epochPrefix     = "ep"
	writerDirPrefix = "w"
	sharedSegPrefix = "log-"
)

// OpenWriters opens (creating if needed) the shared wal tree rooted at root
// and returns n GroupWriters in a fresh epoch — one per manager shard, or
// one for a single-home hub. It scans every previous epoch's segments into
// per-home tails (stopping each writer's stream at the first torn frame,
// exactly like per-home recovery) so journals that subsequently Open against
// these writers recover everything acknowledged before the last shutdown or
// crash. The returned writers share one flock on root/wal.lock; close every
// one of them (after closing the journals they serve) to release it.
func OpenWriters(root string, n int, opts WriterOptions) ([]*GroupWriter, error) {
	if n <= 0 {
		n = 1
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncDelay == 0 {
		opts.SyncDelay = DefaultSyncDelay
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("journal: creating wal root %s: %w", root, err)
	}
	lock, err := os.OpenFile(filepath.Join(root, walLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: opening wal lock: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("journal: wal root %s is in use by another process: %w", root, err)
	}
	st := &walState{
		lock:  lock,
		refs:  n,
		tails: make(map[string][]*Batch),
		ckpt:  make(map[string]uint64),
	}

	epoch, err := scanEpochs(root, st)
	if err != nil {
		lock.Close()
		return nil, err
	}
	for home := range st.tails {
		tail := st.tails[home]
		sort.Slice(tail, func(a, b int) bool { return tail[a].LSN < tail[b].LSN })
	}

	epochDir := filepath.Join(root, fmt.Sprintf("%s%d", epochPrefix, epoch))
	writers := make([]*GroupWriter, n)
	fail := func(err error) ([]*GroupWriter, error) {
		for _, w := range writers {
			if w != nil && w.seg != nil {
				_ = w.seg.Close()
			}
		}
		lock.Close()
		return nil, err
	}
	for i := range writers {
		dir := filepath.Join(epochDir, fmt.Sprintf("%s%d", writerDirPrefix, i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail(fmt.Errorf("journal: creating writer dir %s: %w", dir, err))
		}
		w := &GroupWriter{
			st:         st,
			dir:        dir,
			sopts:      opts,
			attached:   make(map[*Journal]struct{}),
			syncerDone: make(chan struct{}),
		}
		w.cond = sync.NewCond(&w.mu)
		if err := w.openSegLocked(); err != nil {
			return fail(err)
		}
		writers[i] = w
	}
	for _, w := range writers {
		go w.syncLoop()
	}
	return writers, nil
}

// scanEpochs reads every existing epoch's segments into st and returns the
// number of the fresh epoch to open.
func scanEpochs(root string, st *walState) (int, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return 0, fmt.Errorf("journal: listing wal root: %w", err)
	}
	var epochs []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, ok := parsePrefixedInt(e.Name(), epochPrefix); ok {
			epochs = append(epochs, n)
		}
	}
	sort.Ints(epochs)
	next := 0
	for _, ep := range epochs {
		if ep >= next {
			next = ep + 1
		}
		epDir := filepath.Join(root, fmt.Sprintf("%s%d", epochPrefix, ep))
		wents, err := os.ReadDir(epDir)
		if err != nil {
			return 0, fmt.Errorf("journal: listing epoch %s: %w", epDir, err)
		}
		var wdirs []int
		for _, we := range wents {
			if !we.IsDir() {
				continue
			}
			if n, ok := parsePrefixedInt(we.Name(), writerDirPrefix); ok {
				wdirs = append(wdirs, n)
			}
		}
		sort.Ints(wdirs)
		for _, wi := range wdirs {
			if err := scanWriterDir(filepath.Join(epDir, fmt.Sprintf("%s%d", writerDirPrefix, wi)), st); err != nil {
				return 0, err
			}
		}
	}
	return next, nil
}

// scanWriterDir replays one writer directory's segments in sequence order
// into st's per-home tails, stopping at the first torn or corrupt frame —
// everything past a tear in this writer's stream was never acknowledged.
func scanWriterDir(dir string, st *walState) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("journal: listing writer dir %s: %w", dir, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), sharedSegPrefix) && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded sequence numbers sort lexically
	for _, name := range names {
		path := filepath.Join(dir, name)
		buf, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("journal: reading shared segment %s: %w", path, err)
		}
		homes := make(map[string]uint64)
		clean, serr := scanFrames(buf, func(payload []byte) error {
			b, derr := DecodeBatch(payload)
			if derr != nil {
				return derr
			}
			if b.Home == "" {
				return nil
			}
			st.tails[b.Home] = append(st.tails[b.Home], b)
			if b.LSN > homes[b.Home] {
				homes[b.Home] = b.LSN
			}
			return nil
		})
		if len(homes) > 0 {
			st.segRecs = append(st.segRecs, sealedSeg{path: path, homes: homes, scanned: true})
		}
		if serr != nil || !clean {
			break
		}
	}
	return nil
}

func parsePrefixedInt(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(name, prefix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func (w *GroupWriter) openSegLocked() error {
	path := filepath.Join(w.dir, fmt.Sprintf("%s%08d%s", sharedSegPrefix, w.segSeq, segmentSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening shared segment %s: %w", path, err)
	}
	w.seg = f
	w.segPath = path
	w.segSeq++
	w.segBytes = 0
	w.segHomes = make(map[string]uint64)
	return nil
}

func (w *GroupWriter) attach(j *Journal) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("journal: group writer is closed")
	}
	w.attached[j] = struct{}{}
	return nil
}

// detach removes the journal from the writer; with flush set it first waits
// for a covering sync (a clean Close leaves nothing behind the disk).
func (w *GroupWriter) detach(j *Journal, flush bool) error {
	var err error
	if flush {
		err = w.waitCovered(j.wEnd)
	}
	w.mu.Lock()
	delete(w.attached, j)
	w.mu.Unlock()
	return err
}

// append buffers one framed batch for the active shared segment. The frame
// reaches the file in the syncer's next flush and is durable only once the
// writer's sync position passes the returned-to journal's wEnd; commit
// enforces that per the journal's tier.
func (w *GroupWriter) append(j *Journal, lsn uint64, frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("journal: group writer is closed")
	}
	w.pending = append(w.pending, frame...)
	n := int64(len(frame))
	w.segBytes += n
	w.totalAppended += n
	if lsn > w.segHomes[j.home] {
		w.segHomes[j.home] = lsn
	}
	j.wEnd = w.totalAppended
	if j.mode == ModeAsync {
		j.wUnflushed += n
	}
	return nil
}

// commit is Journal.Commit routed through the shared log: group-tier
// journals park on a ticket until the covering fsync lands; async-tier
// journals return immediately while inside their unflushed window and
// degrade to a blocking wait only when the window is exceeded.
func (w *GroupWriter) commit(j *Journal) error {
	if j.mode == ModeAsync {
		w.mu.Lock()
		if w.err != nil {
			err := w.err
			w.mu.Unlock()
			return err
		}
		if j.wEnd <= w.totalSynced {
			w.mu.Unlock()
			return nil
		}
		if j.opts.AsyncWindowBytes < 0 || j.wUnflushed <= j.opts.AsyncWindowBytes {
			// Ack ahead of the disk; nudge the syncer so the window drains.
			w.cond.Broadcast()
			w.mu.Unlock()
			return nil
		}
		w.mu.Unlock()
	}
	return w.waitCovered(j.wEnd)
}

// waitCovered blocks until the writer's sync position reaches pos, sharing
// whatever fsync cycle gets there first with every other waiting home —
// this is the coalescing point.
func (w *GroupWriter) waitCovered(pos int64) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if pos <= w.totalSynced {
		w.mu.Unlock()
		return nil
	}
	t := &syncTicket{pos: pos, done: make(chan struct{})}
	w.tickets = append(w.tickets, t)
	w.cond.Broadcast()
	w.mu.Unlock()
	<-t.done
	return t.err
}

// flushLocked writes every buffered frame into the active segment with one
// write(2). Called by the syncer before each fsync and by TailFor before it
// reads the active segment image back.
func (w *GroupWriter) flushLocked() error {
	if w.err != nil {
		return w.err
	}
	if len(w.pending) == 0 {
		return nil
	}
	if _, err := w.seg.Write(w.pending); err != nil {
		w.failLocked(fmt.Errorf("journal: writing shared segment: %w", err))
		return w.err
	}
	w.pending = w.pending[:0]
	return nil
}

// failLocked makes err sticky and releases every parked commit with it; the
// owning journals then degrade to memory-only through their journalFail
// paths, exactly like a standalone sync error.
func (w *GroupWriter) failLocked(err error) {
	if w.err == nil {
		w.err = err
	}
	for _, t := range w.tickets {
		t.err = w.err
		close(t.done)
	}
	w.tickets = w.tickets[:0]
	w.cond.Broadcast()
}

// syncLoop is the writer's syncer goroutine: whenever appended bytes are
// ahead of the sync position it fsyncs once — outside the lock, so appends
// from other homes keep landing and ride the next cycle — then completes
// every ticket the new position covers.
func (w *GroupWriter) syncLoop() {
	defer close(w.syncerDone)
	w.mu.Lock()
	for {
		for !w.closed && w.err == nil && w.totalSynced >= w.totalAppended {
			w.cond.Wait()
		}
		if w.err != nil || w.abandoned || (w.closed && w.totalSynced >= w.totalAppended) {
			w.mu.Unlock()
			return
		}
		if w.sopts.SyncDelay > 0 && len(w.attached) > 1 && !w.closed {
			// Group-commit window: let the homes that are about to commit
			// land their appends so one fsync covers them all.
			w.mu.Unlock()
			time.Sleep(w.sopts.SyncDelay)
			w.mu.Lock()
			if w.err != nil || w.abandoned {
				w.mu.Unlock()
				return
			}
		}
		if err := w.flushLocked(); err != nil {
			w.mu.Unlock()
			return
		}
		seg, segPath, segBytes, pos := w.seg, w.segPath, w.segBytes, w.totalAppended
		w.mu.Unlock()
		serr := seg.Sync()
		w.mu.Lock()
		if serr != nil {
			w.failLocked(fmt.Errorf("journal: syncing shared segment: %w", serr))
			w.mu.Unlock()
			return
		}
		cycleBytes := pos - w.totalSynced
		if pos > w.totalSynced {
			w.totalSynced = pos
		}
		w.sopts.Stats.noteFsync()
		if w.sopts.OnSync != nil {
			w.sopts.OnSync(segPath, segBytes)
		}
		commits := 0
		keep := w.tickets[:0]
		for _, t := range w.tickets {
			if t.pos <= w.totalSynced {
				close(t.done)
				commits++
			} else {
				keep = append(keep, t)
			}
		}
		w.tickets = keep
		if w.sopts.OnCycle != nil && cycleBytes > 0 {
			w.sopts.OnCycle(cycleBytes, commits)
		}
		// Credit async journals whose bytes are now fully covered. The
		// all-or-nothing reset over-counts a journal that appended during
		// the fsync, which errs on the side of syncing sooner — the ≤window
		// loss bound is preserved.
		for j := range w.attached {
			if j.mode == ModeAsync && j.wEnd <= w.totalSynced {
				j.wUnflushed = 0
			}
		}
		// Rotate only when the active segment is both oversized and fully
		// synced, so sealed segments are immutable and the global positions
		// never need resetting.
		if w.seg == seg && w.totalSynced == w.totalAppended && w.segBytes >= w.sopts.SegmentBytes {
			_ = w.seg.Close()
			w.st.addSealed(sealedSeg{path: w.segPath, homes: w.segHomes})
			if err := w.openSegLocked(); err != nil {
				w.failLocked(err)
				w.mu.Unlock()
				return
			}
		}
	}
}

// TailFor returns every complete batch the shared log holds for home with
// LSN above its checkpoint high-water mark, in LSN order: the boot-scanned
// records from previous epochs plus anything this process has sealed or is
// still writing. Complete-but-unsynced frames in the active segment are
// included deliberately — reading our own writes through the page cache is
// coherent, and a record that missed its covering fsync was never
// acknowledged, so replaying it is harmless. A poisoned home's supervised
// rebuild depends on seeing exactly this stream.
func (w *GroupWriter) TailFor(home string) ([]*Batch, error) {
	w.st.mu.Lock()
	tail := append([]*Batch(nil), w.st.tails[home]...)
	ckpt := w.st.ckpt[home]
	var paths []string
	for _, s := range w.st.segRecs {
		if s.scanned {
			continue
		}
		if _, ok := s.homes[home]; ok {
			paths = append(paths, s.path)
		}
	}
	w.st.mu.Unlock()

	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			continue // pruned by a checkpoint between the snapshot and the read
		}
		if err := appendHomeBatches(&tail, buf, home); err != nil {
			return nil, err
		}
	}
	// The active segment is read under the writer's lock so no frame is
	// mid-write; buffered frames are flushed first so the image includes
	// them (a supervised rebuild must see its own unsynced appends).
	w.mu.Lock()
	var active []byte
	if w.seg != nil && w.segBytes > 0 {
		if err := w.flushLocked(); err != nil {
			w.mu.Unlock()
			return nil, err
		}
		buf, err := os.ReadFile(w.segPath)
		if err != nil {
			w.mu.Unlock()
			return nil, fmt.Errorf("journal: reading active shared segment: %w", err)
		}
		active = buf
	}
	w.mu.Unlock()
	if err := appendHomeBatches(&tail, active, home); err != nil {
		return nil, err
	}

	out := tail[:0]
	for _, b := range tail {
		if b.LSN > ckpt {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].LSN < out[b].LSN })
	return out, nil
}

// appendHomeBatches scans one segment image and appends home's complete
// batches to dst. A torn tail ends the scan cleanly, like any recovery scan.
func appendHomeBatches(dst *[]*Batch, buf []byte, home string) error {
	_, err := scanFrames(buf, func(payload []byte) error {
		b, derr := DecodeBatch(payload)
		if derr != nil {
			return derr
		}
		if b.Home == home {
			*dst = append(*dst, b)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("journal: scanning shared segment: %w", err)
	}
	return nil
}

// checkpointed forwards a home's checkpoint high-water mark to the shared
// state, pruning its tail and any segment files now fully covered.
func (w *GroupWriter) checkpointed(home string, lsn uint64) {
	w.st.checkpointed(home, lsn)
}

// Err returns the writer's sticky error, if any (diagnostics/Status).
func (w *GroupWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close stops the writer after a final covering sync: everything any
// attached journal appended is on disk when it returns. Close the journals
// first (the manager closes homes, then writers); the wal flock drops when
// the last writer of the fleet closes.
func (w *GroupWriter) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.syncerDone
	w.mu.Lock()
	err := w.err
	if w.seg != nil {
		if cerr := w.seg.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("journal: closing shared segment: %w", cerr)
		}
		w.seg = nil
	}
	w.mu.Unlock()
	w.st.release()
	return err
}

// Abandon tears the writer down without a final sync — the crash-drill
// (SIGKILL-equivalent) path: whatever the syncer already flushed survives,
// parked commits are released with an error, buffered frames are dropped
// (none of them were ever acknowledged).
func (w *GroupWriter) Abandon() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.abandoned = true
	w.failLocked(fmt.Errorf("journal: group writer abandoned"))
	w.mu.Unlock()
	<-w.syncerDone
	w.mu.Lock()
	if w.seg != nil {
		_ = w.seg.Close()
		w.seg = nil
	}
	w.mu.Unlock()
	w.st.release()
}

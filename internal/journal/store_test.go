package journal

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"safehome/internal/visibility"
)

// sealAll appends submit+finish batches for n routines and seals every full
// chunk of size sealSize, returning the count sealed.
func sealAll(t *testing.T, j *Journal, n, sealSize int) int {
	t.Helper()
	recs := make([]RoutineRecord, 0, n)
	for id := int64(1); id <= int64(n); id++ {
		fin := finishRec(id, visibility.StatusCommitted)
		if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(id)}, Finishes: []RoutineRecord{fin}}); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, fin)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	sealed := j.SealedRoutines()
	for sealed+sealSize <= n {
		idx := sealed / sealSize
		if err := j.SealChunk(idx, recs[sealed:sealed+sealSize]); err != nil {
			t.Fatal(err)
		}
		sealed += sealSize
	}
	return sealed
}

// TestSealedChunkCheckpointRecovery: a checkpoint that references sealed
// chunks carries only the unsealed tail, and recovery reassembles the dense
// 1..N history from chunks + tail image + WAL records after the checkpoint.
func TestSealedChunkCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	const total, sealSize = 600, 256
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sealed := sealAll(t, j, total, sealSize) // 512 of 600
	if sealed != 512 {
		t.Fatalf("sealed %d, want 512", sealed)
	}
	tail := make([]RoutineRecord, 0, total-sealed)
	for id := int64(sealed + 1); id <= total; id++ {
		tail = append(tail, finishRec(id, visibility.StatusCommitted))
	}
	if err := j.Checkpoint(&Checkpoint{Sealed: sealed, SealSize: sealSize, Routines: tail}); err != nil {
		t.Fatal(err)
	}
	if j.SealedRoutines() != sealed {
		t.Fatalf("SealedRoutines = %d after checkpoint, want %d", j.SealedRoutines(), sealed)
	}
	// One more routine after the checkpoint rides the WAL tail.
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(total + 1)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec == nil {
		t.Fatal("recovered nothing")
	}
	if len(rec.Routines) != total+1 {
		t.Fatalf("recovered %d routines, want %d", len(rec.Routines), total+1)
	}
	if rec.Sealed != sealed || rec.SealSize != sealSize {
		t.Fatalf("recovered Sealed/SealSize = %d/%d, want %d/%d", rec.Sealed, rec.SealSize, sealed, sealSize)
	}
	if j2.SealedRoutines() != sealed {
		t.Fatalf("reopened SealedRoutines = %d, want %d", j2.SealedRoutines(), sealed)
	}
	// validateDense already ran; spot-check content at the chunk boundary.
	if rec.Routines[511].Status != "committed" || rec.Routines[512].ID != 513 {
		t.Fatalf("chunk boundary records wrong: %+v / %+v", rec.Routines[511], rec.Routines[512])
	}
	if rec.Routines[total].Status != visibility.StatusWaiting.String() {
		t.Fatalf("WAL-tail routine status = %s, want waiting", rec.Routines[total].Status)
	}
}

// TestSealedChunkMissingFailsRecovery: a checkpoint referencing a chunk the
// store lost must fail recovery loudly — silently dropping the prefix would
// break the dense-history invariant and resurrect a truncated past.
func TestSealedChunkMissingFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sealed := sealAll(t, j, 256, 256)
	if err := j.Checkpoint(&Checkpoint{Sealed: sealed, SealSize: 256}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.Remove(filepath.Join(dir, chunkName(0))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("recovery with a missing sealed chunk succeeded")
	} else if !strings.Contains(err.Error(), "sealed chunk 0") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSealChunkRejectsOpenRoutine: sealed chunks are immutable, so a record
// that could still change (an open routine) must be refused.
func TestSealChunkRejectsOpenRoutine(t *testing.T) {
	j, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	recs := []RoutineRecord{finishRec(1, visibility.StatusCommitted), submitRec(2)}
	if err := j.SealChunk(0, recs); err == nil {
		t.Fatal("sealed a chunk containing an open routine")
	}
}

// memStore is an in-memory SegmentStore standing in for an off-box object
// store in tests.
type memStore struct {
	mu      sync.Mutex
	objects map[string][]byte
	puts    int
}

func newMemStore() *memStore { return &memStore{objects: make(map[string][]byte)} }

func (s *memStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[name] = append([]byte(nil), data...)
	s.puts++
	return nil
}

func (s *memStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.objects[name]
	if !ok {
		return nil, fmt.Errorf("memstore: %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), buf...), nil
}

func (s *memStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, name)
	return nil
}

func (s *memStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.objects))
	for name := range s.objects {
		names = append(names, name)
	}
	return names, nil
}

// TestPluggableStoreHoldsCheckpoints: with a custom SegmentStore the
// checkpoint and sealed chunks live in the store — nothing but WAL segments
// and the lock on local disk — and recovery reads them back through it.
func TestPluggableStoreHoldsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	store := newMemStore()
	j, _, err := Open(dir, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	sealed := sealAll(t, j, 300, 256)
	tail := []RoutineRecord{}
	for id := int64(sealed + 1); id <= 300; id++ {
		tail = append(tail, finishRec(id, visibility.StatusCommitted))
	}
	if err := j.Checkpoint(&Checkpoint{Sealed: sealed, SealSize: 256, Routines: tail}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			t.Fatalf("checkpoint artifact %s on local disk despite custom store", e.Name())
		}
	}
	if _, err := store.Get(checkpointName); err != nil {
		t.Fatalf("store holds no checkpoint: %v", err)
	}
	if _, err := store.Get(chunkName(0)); err != nil {
		t.Fatalf("store holds no sealed chunk: %v", err)
	}

	j2, rec, err := Open(dir, Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec == nil || len(rec.Routines) != 300 {
		t.Fatalf("recovered %v routines through the store, want 300", rec)
	}
}

// TestDirStorePutIsAtomic: a DirStore Put replaces the object in one step
// and leaves no tmp debris behind.
func TestDirStorePutIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s := DirStore{Dir: dir}
	if err := s.Put("obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("obj", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	buf, err := s.Get("obj")
	if err != nil || string(buf) != "v2" {
		t.Fatalf("Get = %q, %v; want v2", buf, err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "obj" {
		t.Fatalf("List = %v, %v; want [obj]", names, err)
	}
	if err := s.Delete("obj"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("obj"); err != nil {
		t.Fatalf("double delete errored: %v", err)
	}
	if _, err := s.Get("obj"); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
}

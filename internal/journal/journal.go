// Package journal is SafeHome's per-home durability layer: a segmented,
// CRC-framed write-ahead journal plus checkpointing, giving a home runtime
// crash recovery without giving up its single-writer design.
//
// The home runtime appends one Batch record per mailbox drain — accepted
// submissions, finished routine outcomes, committed device-state changes and
// sequenced activity events — and syncs once per batch (group commit), so
// the fsync cost is amortized over everything the drain produced rather
// than paid per operation. Periodically the runtime cuts a Checkpoint
// (derived from its immutable Snapshot) after which all older segments are
// truncated; recovery therefore reads one checkpoint plus a bounded journal
// tail, never the full history.
//
// Recovery semantics follow the paper's failure-handling story: everything
// acknowledged before the crash — finished results, committed device
// states, event sequence numbers — comes back exactly, while routines that
// were still in flight are surfaced to the runtime as open records, which
// it aborts (with rollback to their pre-routine committed states, which is
// what the recovered committed view already is: a routine's writes only
// enter the committed states when it commits).
//
// All methods are single-goroutine: the journal is owned by the home
// runtime's loop, exactly like the controller it makes durable.
//
// See ARCHITECTURE.md at the repository root ("Durability") for the file
// format and lifecycle.
package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"safehome/internal/device"
)

// Options tunes a journal. The zero value uses the defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// CheckpointBytes is how many journal bytes may accumulate since the last
	// checkpoint before ShouldCheckpoint reports true (default 1 MiB). The
	// owner decides when to actually cut one (the runtime does it between
	// batches, from its published snapshot).
	CheckpointBytes int64
	// NoSync skips the per-batch fsync. Acknowledged operations may then be
	// lost on an OS crash (not on a process crash); useful for benchmarks
	// that want the framing cost without the disk stall.
	NoSync bool
	// TestInjectErr, when non-nil, is consulted at the start of each write
	// path — op is "append", "commit" or "checkpoint" — and a non-nil return
	// is surfaced as that operation's error without touching the disk. It
	// exists so tests can drive the owner's degrade-to-memory-only handling
	// (a full disk, a yanked SD card) deterministically.
	TestInjectErr func(op string) error
}

// Default thresholds.
const (
	DefaultSegmentBytes    = 4 << 20
	DefaultCheckpointBytes = 1 << 20
)

func (o Options) normalized() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = DefaultCheckpointBytes
	}
	return o
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".seg"
	checkpointName = "checkpoint.ckpt"
	checkpointTmp  = "checkpoint.tmp"
	lockName       = "journal.lock"
)

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, firstLSN, segmentSuffix)
}

// parseSegmentName extracts the first LSN a segment file may contain.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	lsn, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// Journal is an open write-ahead journal rooted at one home's data
// directory. It is not safe for concurrent use; the home runtime's loop
// goroutine owns it.
type Journal struct {
	dir  string
	opts Options

	lock      *os.File // held flock: one process owns a home's journal
	seg       *os.File
	segFirst  uint64 // first LSN the active segment may contain
	segBytes  int64
	lsn       uint64 // last assigned LSN
	sinceCkpt int64  // journal bytes appended since the last checkpoint
	buf       []byte // reused frame scratch
}

// Recovered is everything a journal recovery reconstructed: the dense
// routine history (IDs 1..len(Routines), open records last seen unfinished),
// the committed device states, and the retained activity-event window with
// its sequence base.
type Recovered struct {
	Routines []RoutineRecord
	States   map[device.ID]device.State
	Events   []EventRecord
	FirstSeq uint64 // sequence number of Events[0]; NextSeq is FirstSeq+len(Events)
	LSN      uint64 // last applied record; appends continue after it
	// Bank holds the stored routine definitions in first-store order (later
	// stores update in place); Triggers the still-armed scheduled triggers by
	// handle; NextTrigger the highest handle ever issued.
	Bank        []BankRecord
	Triggers    map[int64]TriggerRecord
	NextTrigger int64
}

// NextSeq returns the sequence number the next activity event must get for
// cursors to stay strictly monotonic across the restart.
func (r *Recovered) NextSeq() uint64 {
	if r.FirstSeq == 0 {
		return 1
	}
	return r.FirstSeq + uint64(len(r.Events))
}

// Open opens (creating if needed) the journal in dir and recovers its
// contents: the newest checkpoint plus every complete journal record after
// it. It returns the journal positioned for appending and the recovered
// state, which is nil when the directory holds no durable state yet. A torn
// or corrupt record ends replay at the last acknowledged batch — exactly
// the write-ahead-log contract.
func Open(dir string, opts Options) (*Journal, *Recovered, error) {
	opts = opts.normalized()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	j := &Journal{dir: dir, opts: opts}

	// Exactly one process may own a home's journal: a second opener (e.g. a
	// restart racing a hung predecessor) would recover to the same LSN and
	// truncate segments the first already acknowledged. flock is released
	// automatically when the holder dies, so a SIGKILL'd hub never bricks
	// its own restart.
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening lock: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, nil, fmt.Errorf("journal: data directory %s is in use by another process: %w", dir, err)
	}
	j.lock = lock

	fail := func(err error) (*Journal, *Recovered, error) {
		j.releaseLock()
		return nil, nil, err
	}
	rec, found, err := j.recover()
	if err != nil {
		return fail(err)
	}
	if found {
		j.lsn = rec.LSN
	}

	// Drop every segment that may only contain records beyond the replayed
	// LSN: a tear only ever happens at the tail of the (sequentially synced)
	// write stream, so everything past it was never acknowledged — and left
	// in place it could later collide with fresh records reusing those LSNs.
	segs, err := j.listSegments()
	if err != nil {
		return fail(err)
	}
	for _, seg := range segs {
		if seg.firstLSN > j.lsn {
			if err := os.Remove(filepath.Join(j.dir, seg.name)); err != nil {
				return fail(fmt.Errorf("journal: removing dead segment %s: %w", seg.name, err))
			}
		}
	}

	// Always append into a fresh segment: the previous tail may end in a torn
	// frame, and a fresh segment keeps every fully written segment immutable.
	if err := j.rotate(); err != nil {
		return fail(err)
	}
	if !found {
		rec = nil
	}
	return j, rec, nil
}

// releaseLock closes the lock file, releasing the flock.
func (j *Journal) releaseLock() {
	if j.lock != nil {
		_ = j.lock.Close()
		j.lock = nil
	}
}

// recover loads the checkpoint (if any) and replays the journal tail.
func (j *Journal) recover() (*Recovered, bool, error) {
	rec := &Recovered{
		States:   make(map[device.ID]device.State),
		Triggers: make(map[int64]TriggerRecord),
	}
	found := false

	ckptPath := filepath.Join(j.dir, checkpointName)
	if buf, err := os.ReadFile(ckptPath); err == nil {
		ck, ok := decodeCheckpointFile(buf)
		if !ok {
			return nil, false, fmt.Errorf("journal: checkpoint %s is corrupt", ckptPath)
		}
		applyCheckpoint(rec, ck)
		found = true
	} else if !os.IsNotExist(err) {
		return nil, false, fmt.Errorf("journal: reading checkpoint: %w", err)
	}

	segs, err := j.listSegments()
	if err != nil {
		return nil, false, err
	}
	// Skip segments the checkpoint fully covers: a segment's records end
	// where the next segment begins, so if the next one starts at or below
	// LSN+1 nothing in this one is needed. This keeps recovery correct even
	// when a covered (possibly torn) segment survived a failed truncation —
	// its stale tear must not end the scan before the live segments.
	first := 0
	for first+1 < len(segs) && segs[first+1].firstLSN <= rec.LSN+1 {
		first++
	}
	for _, seg := range segs[first:] {
		buf, err := os.ReadFile(filepath.Join(j.dir, seg.name))
		if err != nil {
			return nil, false, fmt.Errorf("journal: reading segment %s: %w", seg.name, err)
		}
		if len(buf) > 0 {
			found = true
		}
		clean, err := scanFrames(buf, func(payload []byte) error {
			b, err := DecodeBatch(payload)
			if err != nil {
				return err
			}
			if b.LSN <= rec.LSN {
				return nil // already covered by the checkpoint
			}
			applyBatch(rec, b)
			return nil
		})
		if err != nil || !clean {
			// A torn tail, a corrupt frame, or an undecodable payload behind
			// a valid CRC: everything from here on was never acknowledged (or
			// is rot we cannot trust) — stop at the last good record. Later
			// segments, if any, are beyond the tear and are ignored.
			break
		}
	}

	if err := validateDense(rec); err != nil {
		return nil, false, err
	}
	return rec, found, nil
}

type segmentInfo struct {
	name     string
	firstLSN uint64
}

// listSegments returns the journal's segment files in LSN order.
func (j *Journal) listSegments() ([]segmentInfo, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: listing %s: %w", j.dir, err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{name: e.Name(), firstLSN: first})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].firstLSN < segs[b].firstLSN })
	return segs, nil
}

// decodeCheckpointFile parses a checkpoint image (a single frame).
func decodeCheckpointFile(buf []byte) (*Checkpoint, bool) {
	var ck *Checkpoint
	clean, err := scanFrames(buf, func(payload []byte) error {
		c, err := DecodeCheckpoint(payload)
		if err != nil {
			return err
		}
		ck = c
		return nil
	})
	if err != nil || !clean || ck == nil {
		return nil, false
	}
	return ck, true
}

func applyCheckpoint(rec *Recovered, ck *Checkpoint) {
	rec.LSN = ck.LSN
	rec.Routines = append(rec.Routines[:0], ck.Routines...)
	for _, s := range ck.States {
		rec.States[s.Device] = s.State
	}
	rec.FirstSeq = ck.FirstSeq
	rec.Events = append(rec.Events[:0], ck.Events...)
	rec.Bank = append(rec.Bank[:0], ck.Bank...)
	clear(rec.Triggers)
	for _, t := range ck.Triggers {
		rec.Triggers[t.Handle] = t
	}
	rec.NextTrigger = ck.NextTrigger
}

func applyBatch(rec *Recovered, b *Batch) {
	rec.LSN = b.LSN
	for _, r := range b.Submits {
		if int(r.ID) == len(rec.Routines)+1 {
			rec.Routines = append(rec.Routines, r)
		}
	}
	for _, r := range b.Finishes {
		if i := int(r.ID) - 1; i >= 0 && i < len(rec.Routines) {
			rec.Routines[i] = r
		}
	}
	for _, s := range b.States {
		rec.States[s.Device] = s.State
	}
	if len(b.Events) > 0 {
		if len(rec.Events) == 0 {
			rec.FirstSeq = b.FirstSeq
			rec.Events = append(rec.Events, b.Events...)
		} else if b.FirstSeq == rec.FirstSeq+uint64(len(rec.Events)) {
			rec.Events = append(rec.Events, b.Events...)
		} else {
			// A sequence gap means the window before this batch was already
			// evicted when it was journaled; keep the newest window.
			rec.FirstSeq = b.FirstSeq
			rec.Events = append(rec.Events[:0], b.Events...)
		}
	}
	for _, bank := range b.Bank {
		upsertBank(rec, bank)
	}
	// Arms before cancels: handles are monotonic and never re-armed after a
	// cancel, so within one batch a cancel always logically follows any arm
	// of the same handle.
	for _, t := range b.TrigArms {
		rec.Triggers[t.Handle] = t
		if t.Handle > rec.NextTrigger {
			rec.NextTrigger = t.Handle
		}
	}
	for _, h := range b.TrigCancels {
		delete(rec.Triggers, h)
		if h > rec.NextTrigger {
			rec.NextTrigger = h
		}
	}
}

// upsertBank applies one bank store: definitions update in place so the
// recovered bank keeps first-store order, matching the live Bank.
func upsertBank(rec *Recovered, b BankRecord) {
	for i := range rec.Bank {
		if rec.Bank[i].Name == b.Name {
			rec.Bank[i] = b
			return
		}
	}
	rec.Bank = append(rec.Bank, b)
}

// validateDense checks that the recovered routine history is a dense 1..N
// prefix — the invariant controller preloading (and O(1) result lookup by
// ID) depends on. Submissions are journaled in assignment order within and
// across batches, so anything else is corruption.
func validateDense(rec *Recovered) error {
	for i, r := range rec.Routines {
		if int(r.ID) != i+1 {
			return fmt.Errorf("journal: recovered routine history is not dense at index %d (id %d)", i, r.ID)
		}
	}
	return nil
}

// --- appending -------------------------------------------------------------------

// rotate closes the active segment (if any) and starts a new one whose name
// records the first LSN it may contain.
func (j *Journal) rotate() error {
	if j.seg != nil {
		if err := j.seg.Close(); err != nil {
			return fmt.Errorf("journal: closing segment: %w", err)
		}
		j.seg = nil
	}
	j.segFirst = j.lsn + 1
	path := filepath.Join(j.dir, segmentName(j.segFirst))
	// O_TRUNC, not O_APPEND: a rotation always starts a fresh segment, and a
	// leftover file with this name can only hold unacknowledged bytes (a
	// torn tail from a crash) — appending behind them would hide every later
	// record from recovery's sequential scan.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening segment %s: %w", path, err)
	}
	j.seg = f
	j.segBytes = 0
	return nil
}

// Append assigns the batch the next LSN and writes its frame to the active
// segment. The record is durable only after the following Commit; the
// runtime appends and commits once per mailbox drain (group commit).
func (j *Journal) Append(b *Batch) error {
	if j.seg == nil {
		return fmt.Errorf("journal: closed")
	}
	if j.opts.TestInjectErr != nil {
		if err := j.opts.TestInjectErr("append"); err != nil {
			return fmt.Errorf("journal: writing batch: %w", err)
		}
	}
	if j.segBytes >= j.opts.SegmentBytes {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	b.LSN = j.lsn + 1
	payload, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("journal: encoding batch: %w", err)
	}
	if len(payload) > maxFramePayload {
		// Recovery rejects frames over maxFramePayload as garbage lengths;
		// writing (and acknowledging) one anyway would silently lose it and
		// everything after it on the next restart. Refusing degrades the
		// home to memory-only instead.
		return fmt.Errorf("journal: batch is %d bytes, over the %d frame limit", len(payload), maxFramePayload)
	}
	j.buf = appendFrame(j.buf[:0], payload)
	if _, err := j.seg.Write(j.buf); err != nil {
		return fmt.Errorf("journal: writing batch: %w", err)
	}
	j.lsn = b.LSN
	j.segBytes += int64(len(j.buf))
	j.sinceCkpt += int64(len(j.buf))
	return nil
}

// Commit makes every appended record durable (one fsync — the group-commit
// point).
func (j *Journal) Commit() error {
	if j.seg == nil {
		return fmt.Errorf("journal: closed")
	}
	if j.opts.TestInjectErr != nil {
		if err := j.opts.TestInjectErr("commit"); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	if j.opts.NoSync {
		return nil
	}
	if err := j.seg.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// LSN returns the last assigned record LSN.
func (j *Journal) LSN() uint64 { return j.lsn }

// SinceCheckpoint returns the journal bytes appended since the last
// checkpoint.
func (j *Journal) SinceCheckpoint() int64 { return j.sinceCkpt }

// ShouldCheckpoint reports whether enough journal has accumulated since the
// last checkpoint to be worth cutting a new one.
func (j *Journal) ShouldCheckpoint() bool { return j.sinceCkpt >= j.opts.CheckpointBytes }

// Checkpoint durably writes a full state image (write to a temporary file,
// fsync, atomic rename) stamped with the journal's current LSN, then
// truncates every segment the checkpoint covers and starts a fresh one.
// After a successful checkpoint, recovery reads the checkpoint plus only the
// records appended after this call.
func (j *Journal) Checkpoint(ck *Checkpoint) error {
	if j.seg == nil {
		return fmt.Errorf("journal: closed")
	}
	if j.opts.TestInjectErr != nil {
		if err := j.opts.TestInjectErr("checkpoint"); err != nil {
			return fmt.Errorf("journal: writing checkpoint: %w", err)
		}
	}
	ck.LSN = j.lsn
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("journal: encoding checkpoint: %w", err)
	}
	if len(payload) > maxFramePayload {
		// Recovery rejects frames over maxFramePayload; writing one anyway
		// would brick the next restart. Refusing degrades the home to
		// memory-only (the owner's journalFail path) with the state on disk
		// still recoverable. Incremental checkpoints are the real fix (see
		// ROADMAP "Durability follow-ons").
		return fmt.Errorf("journal: checkpoint image is %d bytes, over the %d frame limit", len(payload), maxFramePayload)
	}
	frame := appendFrame(nil, payload)

	tmp := filepath.Join(j.dir, checkpointTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating checkpoint: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing checkpoint: %w", err)
	}
	if !j.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal: syncing checkpoint: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, checkpointName)); err != nil {
		return fmt.Errorf("journal: publishing checkpoint: %w", err)
	}
	j.syncDir()

	// Start a fresh segment so every older one is fully covered by the
	// checkpoint, then truncate them.
	if err := j.rotate(); err != nil {
		return err
	}
	segs, err := j.listSegments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.firstLSN < j.segFirst {
			_ = os.Remove(filepath.Join(j.dir, seg.name))
		}
	}
	j.syncDir()
	j.sinceCkpt = 0
	return nil
}

// syncDir fsyncs the journal directory so renames and removals are durable.
// Best-effort: some filesystems reject directory fsync.
func (j *Journal) syncDir() {
	if j.opts.NoSync {
		return
	}
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// SegmentCount returns the number of on-disk segment files (tests,
// diagnostics).
func (j *Journal) SegmentCount() (int, error) {
	segs, err := j.listSegments()
	return len(segs), err
}

// Close syncs and closes the active segment and releases the directory
// lock. The journal is unusable afterwards.
func (j *Journal) Close() error {
	if j.seg == nil {
		j.releaseLock()
		return nil
	}
	err := j.Commit()
	if cerr := j.seg.Close(); err == nil {
		err = cerr
	}
	j.seg = nil
	j.releaseLock()
	return err
}

// Abandon closes the active segment without syncing — the SIGKILL-equivalent
// teardown used by crash drills: whatever the OS already has (everything
// through the last Commit) survives, nothing else is flushed. The directory
// lock is released, exactly as a killed process's flock would be.
func (j *Journal) Abandon() {
	if j.seg != nil {
		_ = j.seg.Close()
		j.seg = nil
	}
	j.releaseLock()
}

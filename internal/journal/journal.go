// Package journal is SafeHome's per-home durability layer: a segmented,
// CRC-framed write-ahead journal plus checkpointing, giving a home runtime
// crash recovery without giving up its single-writer design.
//
// The home runtime appends one Batch record per mailbox drain — accepted
// submissions, finished routine outcomes, committed device-state changes and
// sequenced activity events — and syncs once per batch (group commit), so
// the fsync cost is amortized over everything the drain produced rather
// than paid per operation. Periodically the runtime cuts a Checkpoint
// (derived from its immutable Snapshot) after which all older segments are
// truncated; recovery therefore reads one checkpoint plus a bounded journal
// tail, never the full history.
//
// Recovery semantics follow the paper's failure-handling story: everything
// acknowledged before the crash — finished results, committed device
// states, event sequence numbers — comes back exactly, while routines that
// were still in flight are surfaced to the runtime as open records, which
// it aborts (with rollback to their pre-routine committed states, which is
// what the recovered committed view already is: a routine's writes only
// enter the committed states when it commits).
//
// All methods are single-goroutine: the journal is owned by the home
// runtime's loop, exactly like the controller it makes durable.
//
// See ARCHITECTURE.md at the repository root ("Durability") for the file
// format and lifecycle.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"safehome/internal/device"
)

// Mode selects a journal's durability tier: how far an acknowledged
// operation may trail the disk.
type Mode int

const (
	// ModeDefault lets the owner pick: standalone journals resolve it to
	// sync; owners that provision a shared GroupWriter resolve it to group.
	ModeDefault Mode = iota
	// ModeSync fsyncs the home's own segment once per batch drain — the
	// original contract: acknowledged ⇒ on disk, one fsync per home per
	// drain.
	ModeSync
	// ModeGroup routes batches through a shared GroupWriter that coalesces
	// many homes' commits into one fd/fsync cycle. Acknowledged ⇒ durable
	// still holds — a drain's replies are released only after the covering
	// fsync lands — but sync traffic and open descriptors are O(writers),
	// not O(homes).
	ModeGroup
	// ModeAsync acknowledges before the fsync. Batches become durable when
	// the next sync lands; an OS crash (not a mere process crash) may lose
	// up to AsyncWindowBytes of acknowledged tail — always a clean suffix of
	// the history, never a reorder.
	ModeAsync
)

func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeGroup:
		return "group"
	case ModeAsync:
		return "async"
	default:
		return "default"
	}
}

// ParseMode parses a durability-tier name as accepted by the -durability
// flags: "sync", "group" or "async".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "sync":
		return ModeSync, nil
	case "group":
		return ModeGroup, nil
	case "async":
		return ModeAsync, nil
	default:
		return ModeDefault, fmt.Errorf("journal: unknown durability mode %q (want sync, group or async)", s)
	}
}

// ResolveMode reports the tier opts selects, substituting def for
// ModeDefault. The deprecated NoSync flag aliases to async (see
// Options.NoSync).
func ResolveMode(opts Options, def Mode) Mode {
	if opts.Mode == ModeDefault {
		if opts.NoSync {
			return ModeAsync
		}
		return def
	}
	return opts.Mode
}

// Options tunes a journal. The zero value uses the defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// CheckpointBytes is how many journal bytes may accumulate since the last
	// checkpoint before ShouldCheckpoint reports true (default 1 MiB). The
	// owner decides when to actually cut one (the runtime does it between
	// batches, from its published snapshot).
	CheckpointBytes int64
	// Mode selects the durability tier (see the Mode constants). ModeDefault
	// resolves to sync for a standalone journal; ModeGroup without a Writer
	// falls back to sync (a group of one home coalesces nothing).
	Mode Mode
	// AsyncWindowBytes bounds how many acknowledged-but-unsynced bytes
	// ModeAsync may accumulate before a commit forces a sync (default 256
	// KiB). Negative means unbounded: nothing syncs until rotation,
	// checkpoint or Close.
	AsyncWindowBytes int64
	// HomeID tags this journal's batches when they share a physical log
	// through Writer; required in group/async-through-writer mode. The home
	// runtime defaults it to the home's configured ID.
	HomeID string
	// Writer, when non-nil, routes appends through a shared GroupWriter
	// instead of per-home segment files. The journal then holds no segment
	// fd and no per-home flock of its own — the writer's wal.lock owns the
	// whole tree — which is what bounds descriptors at high tenant counts.
	// Ignored when the resolved mode is sync.
	Writer *GroupWriter
	// Store, when non-nil, is where checkpoint images and sealed routine
	// chunks live — the cold, write-once artifacts. Nil defaults to a
	// DirStore rooted at the journal directory (everything local). The
	// active segments never route through the store; only the journal tail
	// must be local.
	Store SegmentStore
	// OnSync, when non-nil, is called after each data fsync with the synced
	// file's path and its size at that sync. Crash drills use it to compute
	// exactly which acknowledged bytes an OS crash could lose in async mode.
	// A standalone journal calls it inline from its loop; a GroupWriter
	// calls it with its internal lock held — the hook must not call back
	// into the journal or writer.
	OnSync func(path string, syncedBytes int64)
	// Stats, when non-nil, receives plain atomic counts of appends, fsyncs
	// and checkpoints. The same Stats is typically shared by every home (and
	// the shard GroupWriters) so the /metrics surface gets fleet totals
	// without the journal knowing about telemetry.
	Stats *Stats
	// NoSync skips the per-batch fsync.
	//
	// Deprecated: NoSync predates Mode and now aliases to ModeAsync with an
	// unbounded window (AsyncWindowBytes < 0). Set Mode explicitly instead.
	NoSync bool
	// TestInjectErr, when non-nil, is consulted at the start of each write
	// path — op is "append", "commit" or "checkpoint" — and a non-nil return
	// is surfaced as that operation's error without touching the disk. It
	// exists so tests can drive the owner's degrade-to-memory-only handling
	// (a full disk, a yanked SD card) deterministically.
	TestInjectErr func(op string) error
}

// Default thresholds.
const (
	DefaultSegmentBytes     = 4 << 20
	DefaultCheckpointBytes  = 1 << 20
	DefaultAsyncWindowBytes = 256 << 10
	// DefaultSealSize is how many terminal routines an owner seals per
	// immutable chunk (four of the visibility layer's 64-entry export
	// chunks): small enough that the unsealed tail a checkpoint carries
	// stays bounded, large enough that chunk objects are worth shipping.
	DefaultSealSize = 256
)

func (o Options) normalized() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = DefaultCheckpointBytes
	}
	if o.NoSync && o.Mode == ModeDefault {
		// The deprecated escape hatch maps onto the weakest tier it predates:
		// async with no window bound (historical NoSync never synced inline).
		o.Mode = ModeAsync
		if o.AsyncWindowBytes == 0 {
			o.AsyncWindowBytes = -1
		}
	}
	if o.AsyncWindowBytes == 0 {
		o.AsyncWindowBytes = DefaultAsyncWindowBytes
	}
	return o
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".seg"
	checkpointName = "checkpoint.ckpt"
	lockName       = "journal.lock"
	chunkPrefix    = "ckchunk-"
	chunkSuffix    = ".ckpt"
)

func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, firstLSN, segmentSuffix)
}

// chunkName names the sealed-chunk object with the given index.
func chunkName(index int) string {
	return fmt.Sprintf("%s%08d%s", chunkPrefix, index, chunkSuffix)
}

// parseSegmentName extracts the first LSN a segment file may contain.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	lsn, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// Journal is an open write-ahead journal rooted at one home's data
// directory. It is not safe for concurrent use; the home runtime's loop
// goroutine owns it.
type Journal struct {
	dir  string
	opts Options
	mode Mode
	open bool

	lock      *os.File // held flock: one process owns a home's journal (standalone)
	seg       *os.File
	segPath   string
	segFirst  uint64 // first LSN the active segment may contain
	segBytes  int64
	lsn       uint64 // last assigned LSN
	sinceCkpt int64  // journal bytes appended since the last checkpoint
	unflushed int64  // standalone async: bytes appended since the last data fsync
	buf       []byte // reused frame scratch

	store    SegmentStore // checkpoint + sealed-chunk objects (DirStore default)
	sealed   int          // routines covered by durable sealed chunks
	sealSize int          // chunk size the sealed prefix was cut at (0 = none yet)

	// Shared-log mode (Options.Writer): the journal owns no fd of its own;
	// frames carry home and land in the writer's segments. wEnd and
	// wUnflushed are guarded by writer.mu, not by the loop.
	writer     *GroupWriter
	home       string
	wEnd       int64 // writer offset just past this journal's last appended byte
	wUnflushed int64 // async: appended bytes not yet covered by a writer sync
}

// Recovered is everything a journal recovery reconstructed: the dense
// routine history (IDs 1..len(Routines), open records last seen unfinished),
// the committed device states, and the retained activity-event window with
// its sequence base.
type Recovered struct {
	Routines []RoutineRecord
	States   map[device.ID]device.State
	Events   []EventRecord
	FirstSeq uint64 // sequence number of Events[0]; NextSeq is FirstSeq+len(Events)
	LSN      uint64 // last applied record; appends continue after it
	// Bank holds the stored routine definitions in first-store order (later
	// stores update in place); Triggers the still-armed scheduled triggers by
	// handle; NextTrigger the highest handle ever issued.
	Bank        []BankRecord
	Triggers    map[int64]TriggerRecord
	NextTrigger int64
	// Sealed is how many leading routines the recovery read out of sealed
	// chunk objects (always a multiple of SealSize; zero for pre-chunk
	// checkpoints). The owner's next checkpoint continues sealing from
	// here instead of re-serializing them.
	Sealed   int
	SealSize int
}

// NextSeq returns the sequence number the next activity event must get for
// cursors to stay strictly monotonic across the restart.
func (r *Recovered) NextSeq() uint64 {
	if r.FirstSeq == 0 {
		return 1
	}
	return r.FirstSeq + uint64(len(r.Events))
}

// Open opens (creating if needed) the journal in dir and recovers its
// contents: the newest checkpoint plus every complete journal record after
// it. It returns the journal positioned for appending and the recovered
// state, which is nil when the directory holds no durable state yet. A torn
// or corrupt record ends replay at the last acknowledged batch — exactly
// the write-ahead-log contract.
func Open(dir string, opts Options) (*Journal, *Recovered, error) {
	opts = opts.normalized()
	mode := ResolveMode(opts, ModeSync)
	if opts.Writer == nil && mode == ModeGroup {
		mode = ModeSync // a group of one home coalesces nothing
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	j := &Journal{dir: dir, opts: opts, mode: mode}
	j.store = opts.Store
	if j.store == nil {
		j.store = DirStore{Dir: dir}
	}
	if opts.Writer != nil && mode != ModeSync {
		if opts.HomeID == "" {
			return nil, nil, fmt.Errorf("journal: %s mode through a shared writer requires Options.HomeID", mode)
		}
		j.writer = opts.Writer
		j.home = opts.HomeID
	}

	// Exactly one process may own a home's journal: a second opener (e.g. a
	// restart racing a hung predecessor) would recover to the same LSN and
	// truncate segments the first already acknowledged. flock is released
	// automatically when the holder dies, so a SIGKILL'd hub never bricks
	// its own restart. In shared-writer mode the per-home flock is skipped
	// on purpose — it would put the descriptor count back at O(homes); the
	// GroupWriter's wal.lock owns the whole tree instead, so cross-process
	// exclusion still holds as long as sync-mode and writer-mode openers are
	// not mixed on a live directory (the manager never does; a mode switch
	// requires a clean shutdown).
	if j.writer == nil {
		lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: opening lock: %w", err)
		}
		if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
			lock.Close()
			return nil, nil, fmt.Errorf("journal: data directory %s is in use by another process: %w", dir, err)
		}
		j.lock = lock
	}

	fail := func(err error) (*Journal, *Recovered, error) {
		j.releaseLock()
		return nil, nil, err
	}
	rec, found, err := j.recover()
	if err != nil {
		return fail(err)
	}
	if found {
		j.lsn = rec.LSN
	}

	// Drop every local segment that may only contain records beyond the
	// replayed LSN: a tear only ever happens at the tail of the
	// (sequentially synced) write stream, so everything past it was never
	// acknowledged — and left in place it could later collide with fresh
	// records reusing those LSNs.
	segs, err := j.listSegments()
	if err != nil {
		return fail(err)
	}
	for _, seg := range segs {
		if seg.firstLSN > j.lsn {
			if err := os.Remove(filepath.Join(j.dir, seg.name)); err != nil {
				return fail(fmt.Errorf("journal: removing dead segment %s: %w", seg.name, err))
			}
		}
	}

	if j.writer != nil {
		// Appends go to the shared log; surviving local (sync-era) segments
		// stay on disk until the next checkpoint covers them.
		if err := j.writer.attach(j); err != nil {
			return fail(err)
		}
	} else {
		// Always append into a fresh segment: the previous tail may end in a
		// torn frame, and a fresh segment keeps every fully written segment
		// immutable.
		if err := j.rotate(); err != nil {
			return fail(err)
		}
	}
	j.open = true
	if !found {
		rec = nil
	}
	return j, rec, nil
}

// Mode returns the resolved durability tier the journal runs at.
func (j *Journal) Mode() Mode { return j.mode }

// releaseLock closes the lock file, releasing the flock.
func (j *Journal) releaseLock() {
	if j.lock != nil {
		_ = j.lock.Close()
		j.lock = nil
	}
}

// recover loads the checkpoint (if any) and replays the journal tail.
func (j *Journal) recover() (*Recovered, bool, error) {
	rec := &Recovered{
		States:   make(map[device.ID]device.State),
		Triggers: make(map[int64]TriggerRecord),
	}
	found := false

	if buf, err := j.store.Get(checkpointName); err == nil {
		ck, ok := decodeCheckpointFile(buf)
		if !ok {
			return nil, false, fmt.Errorf("journal: checkpoint for %s is corrupt", j.dir)
		}
		prefix, err := j.loadSealed(ck)
		if err != nil {
			return nil, false, err
		}
		applyCheckpoint(rec, ck)
		if len(prefix) > 0 {
			rec.Routines = append(prefix, rec.Routines...)
		}
		rec.Sealed = ck.Sealed
		rec.SealSize = ck.SealSize
		j.sealed = ck.Sealed
		j.sealSize = ck.SealSize
		found = true
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, false, fmt.Errorf("journal: reading checkpoint: %w", err)
	}

	segs, err := j.listSegments()
	if err != nil {
		return nil, false, err
	}
	// Skip segments the checkpoint fully covers: a segment's records end
	// where the next segment begins, so if the next one starts at or below
	// LSN+1 nothing in this one is needed. This keeps recovery correct even
	// when a covered (possibly torn) segment survived a failed truncation —
	// its stale tear must not end the scan before the live segments.
	first := 0
	for first+1 < len(segs) && segs[first+1].firstLSN <= rec.LSN+1 {
		first++
	}
	var local []*Batch
	for _, seg := range segs[first:] {
		buf, err := os.ReadFile(filepath.Join(j.dir, seg.name))
		if err != nil {
			return nil, false, fmt.Errorf("journal: reading segment %s: %w", seg.name, err)
		}
		if len(buf) > 0 {
			found = true
		}
		clean, err := scanFrames(buf, func(payload []byte) error {
			b, err := DecodeBatch(payload)
			if err != nil {
				return err
			}
			local = append(local, b)
			return nil
		})
		if err != nil || !clean {
			// A torn tail, a corrupt frame, or an undecodable payload behind
			// a valid CRC: everything from here on was never acknowledged (or
			// is rot we cannot trust) — stop at the last good record. Later
			// segments, if any, are beyond the tear and are ignored.
			break
		}
	}

	if j.writer == nil {
		for _, b := range local {
			if b.LSN <= rec.LSN {
				continue // already covered by the checkpoint
			}
			applyBatch(rec, b)
		}
	} else {
		// Merge the home's sync-era local segments (if it ever ran in sync
		// mode) with its tail from the shared log. LSN ranges partition
		// cleanly across a mode switch, so a two-way merge by LSN restores
		// one ordered stream; the contiguity check stops replay at the first
		// gap — a tear in an earlier shared-log epoch means everything past
		// it was never acknowledged.
		tail, err := j.writer.TailFor(j.home)
		if err != nil {
			return nil, false, err
		}
		if len(tail) > 0 {
			found = true
		}
		for _, b := range mergeByLSN(local, tail) {
			if b.LSN <= rec.LSN {
				continue // covered by the checkpoint (or a duplicate)
			}
			if b.LSN != rec.LSN+1 {
				break
			}
			applyBatch(rec, b)
		}
	}

	if err := validateDense(rec); err != nil {
		return nil, false, err
	}
	return rec, found, nil
}

// mergeByLSN merges two LSN-sorted batch slices into one sorted stream.
func mergeByLSN(a, b []*Batch) []*Batch {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]*Batch, 0, len(a)+len(b))
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		if a[i].LSN <= b[k].LSN {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[k])
			k++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[k:]...)
}

type segmentInfo struct {
	name     string
	firstLSN uint64
}

// listSegments returns the journal's segment files in LSN order.
func (j *Journal) listSegments() ([]segmentInfo, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: listing %s: %w", j.dir, err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{name: e.Name(), firstLSN: first})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].firstLSN < segs[b].firstLSN })
	return segs, nil
}

// decodeCheckpointFile parses a checkpoint image (a single frame).
func decodeCheckpointFile(buf []byte) (*Checkpoint, bool) {
	var ck *Checkpoint
	clean, err := scanFrames(buf, func(payload []byte) error {
		c, err := DecodeCheckpoint(payload)
		if err != nil {
			return err
		}
		ck = c
		return nil
	})
	if err != nil || !clean || ck == nil {
		return nil, false
	}
	return ck, true
}

// loadSealed fetches and validates the sealed-chunk prefix a checkpoint
// references: chunks 0..Sealed/SealSize-1, each a dense run of terminal
// records. A missing or corrupt chunk is unrecoverable history the
// checkpoint promised was durable, so it fails recovery loudly rather than
// silently resurrecting a truncated past.
func (j *Journal) loadSealed(ck *Checkpoint) ([]RoutineRecord, error) {
	if ck.Sealed == 0 {
		return nil, nil
	}
	if ck.SealSize <= 0 || ck.Sealed%ck.SealSize != 0 {
		return nil, fmt.Errorf("journal: checkpoint seals %d routines with invalid chunk size %d", ck.Sealed, ck.SealSize)
	}
	prefix := make([]RoutineRecord, 0, ck.Sealed)
	for idx := 0; idx < ck.Sealed/ck.SealSize; idx++ {
		buf, err := j.store.Get(chunkName(idx))
		if err != nil {
			return nil, fmt.Errorf("journal: sealed chunk %d: %w", idx, err)
		}
		var chunk *sealedChunk
		clean, err := scanFrames(buf, func(payload []byte) error {
			c, err := decodeSealedChunk(payload)
			if err != nil {
				return err
			}
			chunk = c
			return nil
		})
		if err != nil || !clean || chunk == nil {
			return nil, fmt.Errorf("journal: sealed chunk %d is corrupt", idx)
		}
		if chunk.Index != idx || len(chunk.Routines) != ck.SealSize {
			return nil, fmt.Errorf("journal: sealed chunk %d holds index %d with %d routines (want %d)",
				idx, chunk.Index, len(chunk.Routines), ck.SealSize)
		}
		prefix = append(prefix, chunk.Routines...)
	}
	return prefix, nil
}

func applyCheckpoint(rec *Recovered, ck *Checkpoint) {
	rec.LSN = ck.LSN
	rec.Routines = append(rec.Routines[:0], ck.Routines...)
	for _, s := range ck.States {
		rec.States[s.Device] = s.State
	}
	rec.FirstSeq = ck.FirstSeq
	rec.Events = append(rec.Events[:0], ck.Events...)
	rec.Bank = append(rec.Bank[:0], ck.Bank...)
	clear(rec.Triggers)
	for _, t := range ck.Triggers {
		rec.Triggers[t.Handle] = t
	}
	rec.NextTrigger = ck.NextTrigger
}

func applyBatch(rec *Recovered, b *Batch) {
	rec.LSN = b.LSN
	for _, r := range b.Submits {
		if int(r.ID) == len(rec.Routines)+1 {
			rec.Routines = append(rec.Routines, r)
		}
	}
	for _, r := range b.Finishes {
		if i := int(r.ID) - 1; i >= 0 && i < len(rec.Routines) {
			rec.Routines[i] = r
		}
	}
	for _, s := range b.States {
		rec.States[s.Device] = s.State
	}
	if len(b.Events) > 0 {
		if len(rec.Events) == 0 {
			rec.FirstSeq = b.FirstSeq
			rec.Events = append(rec.Events, b.Events...)
		} else if b.FirstSeq == rec.FirstSeq+uint64(len(rec.Events)) {
			rec.Events = append(rec.Events, b.Events...)
		} else {
			// A sequence gap means the window before this batch was already
			// evicted when it was journaled; keep the newest window.
			rec.FirstSeq = b.FirstSeq
			rec.Events = append(rec.Events[:0], b.Events...)
		}
	}
	for _, bank := range b.Bank {
		upsertBank(rec, bank)
	}
	// Arms before cancels: handles are monotonic and never re-armed after a
	// cancel, so within one batch a cancel always logically follows any arm
	// of the same handle.
	for _, t := range b.TrigArms {
		rec.Triggers[t.Handle] = t
		if t.Handle > rec.NextTrigger {
			rec.NextTrigger = t.Handle
		}
	}
	for _, h := range b.TrigCancels {
		delete(rec.Triggers, h)
		if h > rec.NextTrigger {
			rec.NextTrigger = h
		}
	}
}

// upsertBank applies one bank store: definitions update in place so the
// recovered bank keeps first-store order, matching the live Bank.
func upsertBank(rec *Recovered, b BankRecord) {
	for i := range rec.Bank {
		if rec.Bank[i].Name == b.Name {
			rec.Bank[i] = b
			return
		}
	}
	rec.Bank = append(rec.Bank, b)
}

// validateDense checks that the recovered routine history is a dense 1..N
// prefix — the invariant controller preloading (and O(1) result lookup by
// ID) depends on. Submissions are journaled in assignment order within and
// across batches, so anything else is corruption.
func validateDense(rec *Recovered) error {
	for i, r := range rec.Routines {
		if int(r.ID) != i+1 {
			return fmt.Errorf("journal: recovered routine history is not dense at index %d (id %d)", i, r.ID)
		}
	}
	return nil
}

// --- appending -------------------------------------------------------------------

// rotate closes the active segment (if any) and starts a new one whose name
// records the first LSN it may contain.
func (j *Journal) rotate() error {
	if j.seg != nil {
		// Bounded async confines its loss window to the newest segment: sync
		// the old one before sealing it, so a drill (or an operator) can
		// reason about at most one file's tail.
		if j.mode == ModeAsync && j.opts.AsyncWindowBytes >= 0 && j.unflushed > 0 {
			if err := j.syncSeg(); err != nil {
				return err
			}
		}
		if err := j.seg.Close(); err != nil {
			return fmt.Errorf("journal: closing segment: %w", err)
		}
		j.seg = nil
	}
	j.segFirst = j.lsn + 1
	path := filepath.Join(j.dir, segmentName(j.segFirst))
	// O_TRUNC, not O_APPEND: a rotation always starts a fresh segment, and a
	// leftover file with this name can only hold unacknowledged bytes (a
	// torn tail from a crash) — appending behind them would hide every later
	// record from recovery's sequential scan.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: opening segment %s: %w", path, err)
	}
	j.seg = f
	j.segPath = path
	j.segBytes = 0
	j.unflushed = 0
	return nil
}

// syncSeg fsyncs the active segment and notifies OnSync.
func (j *Journal) syncSeg() error {
	if err := j.seg.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.unflushed = 0
	j.opts.Stats.noteFsync()
	if j.opts.OnSync != nil {
		j.opts.OnSync(j.segPath, j.segBytes)
	}
	return nil
}

// Append assigns the batch the next LSN and writes its frame to the active
// segment. The record is durable only after the following Commit; the
// runtime appends and commits once per mailbox drain (group commit).
func (j *Journal) Append(b *Batch) error {
	if !j.open {
		return fmt.Errorf("journal: closed")
	}
	if j.opts.TestInjectErr != nil {
		if err := j.opts.TestInjectErr("append"); err != nil {
			return fmt.Errorf("journal: writing batch: %w", err)
		}
	}
	if j.writer == nil && j.segBytes >= j.opts.SegmentBytes {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	b.LSN = j.lsn + 1
	if j.writer != nil {
		b.Home = j.home
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("journal: encoding batch: %w", err)
	}
	if len(payload) > maxFramePayload {
		// Recovery rejects frames over maxFramePayload as garbage lengths;
		// writing (and acknowledging) one anyway would silently lose it and
		// everything after it on the next restart. Refusing degrades the
		// home to memory-only instead.
		return fmt.Errorf("journal: batch is %d bytes, over the %d frame limit", len(payload), maxFramePayload)
	}
	j.buf = appendFrame(j.buf[:0], payload)
	if j.writer != nil {
		if err := j.writer.append(j, b.LSN, j.buf); err != nil {
			return fmt.Errorf("journal: writing batch: %w", err)
		}
	} else {
		if _, err := j.seg.Write(j.buf); err != nil {
			return fmt.Errorf("journal: writing batch: %w", err)
		}
		j.segBytes += int64(len(j.buf))
		if j.mode == ModeAsync {
			j.unflushed += int64(len(j.buf))
		}
	}
	j.lsn = b.LSN
	j.sinceCkpt += int64(len(j.buf))
	j.opts.Stats.noteAppend(int64(len(j.buf)))
	return nil
}

// Commit makes every appended record durable per the journal's tier: sync
// fsyncs the home's segment inline; group parks the caller on a commit
// ticket until the shared writer's covering fsync lands; async returns
// immediately unless the unflushed window is exceeded. The runtime calls it
// once per mailbox drain, before releasing that drain's replies.
func (j *Journal) Commit() error {
	if !j.open {
		return fmt.Errorf("journal: closed")
	}
	if j.opts.TestInjectErr != nil {
		if err := j.opts.TestInjectErr("commit"); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	if j.writer != nil {
		return j.writer.commit(j)
	}
	if j.mode == ModeAsync {
		// Ack ahead of the disk, but never let more than the configured
		// window of acknowledged bytes ride unsynced.
		if j.opts.AsyncWindowBytes >= 0 && j.unflushed > j.opts.AsyncWindowBytes {
			return j.syncSeg()
		}
		return nil
	}
	return j.syncSeg()
}

// LSN returns the last assigned record LSN.
func (j *Journal) LSN() uint64 { return j.lsn }

// SinceCheckpoint returns the journal bytes appended since the last
// checkpoint.
func (j *Journal) SinceCheckpoint() int64 { return j.sinceCkpt }

// ShouldCheckpoint reports whether enough journal has accumulated since the
// last checkpoint to be worth cutting a new one.
func (j *Journal) ShouldCheckpoint() bool { return j.sinceCkpt >= j.opts.CheckpointBytes }

// Checkpoint durably writes a full state image (write to a temporary file,
// fsync, atomic rename) stamped with the journal's current LSN, then
// truncates every segment the checkpoint covers and starts a fresh one.
// After a successful checkpoint, recovery reads the checkpoint plus only the
// records appended after this call.
func (j *Journal) Checkpoint(ck *Checkpoint) error {
	if !j.open {
		return fmt.Errorf("journal: closed")
	}
	if j.opts.TestInjectErr != nil {
		if err := j.opts.TestInjectErr("checkpoint"); err != nil {
			return fmt.Errorf("journal: writing checkpoint: %w", err)
		}
	}
	ck.LSN = j.lsn
	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("journal: encoding checkpoint: %w", err)
	}
	if len(payload) > maxFramePayload {
		// Recovery rejects frames over maxFramePayload; writing one anyway
		// would brick the next restart. Refusing degrades the home to
		// memory-only (the owner's journalFail path) with the state on disk
		// still recoverable. With incremental checkpoints the image carries
		// only the unsealed routine tail, so hitting this guard takes a
		// pathological single-drain burst, not accumulated history.
		return fmt.Errorf("journal: checkpoint image is %d bytes, over the %d frame limit", len(payload), maxFramePayload)
	}
	frame := appendFrame(nil, payload)

	// The store's Put is atomic and durable in every tier, async included:
	// journal records at or below the checkpoint's LSN are truncated right
	// after it lands, so an undurable checkpoint would turn the bounded
	// async window into unbounded loss.
	if err := j.store.Put(checkpointName, frame); err != nil {
		return fmt.Errorf("journal: publishing checkpoint: %w", err)
	}
	j.opts.Stats.noteCheckpoint()
	j.sealed = ck.Sealed
	j.sealSize = ck.SealSize

	if j.writer != nil {
		// Every local (sync-era) segment is now covered, and the shared log
		// can drop this home's records at or below the checkpoint.
		segs, err := j.listSegments()
		if err != nil {
			return err
		}
		for _, seg := range segs {
			_ = os.Remove(filepath.Join(j.dir, seg.name))
		}
		j.syncDir()
		j.writer.checkpointed(j.home, ck.LSN)
		j.sinceCkpt = 0
		return nil
	}

	// Start a fresh segment so every older one is fully covered by the
	// checkpoint, then truncate them.
	if err := j.rotate(); err != nil {
		return err
	}
	segs, err := j.listSegments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.firstLSN < j.segFirst {
			_ = os.Remove(filepath.Join(j.dir, seg.name))
		}
	}
	j.syncDir()
	j.sinceCkpt = 0
	return nil
}

// SealedRoutines returns how many leading routines are covered by durable
// sealed chunks (recovered from the last checkpoint, advanced by
// Checkpoint). The owner seals forward from here.
func (j *Journal) SealedRoutines() int { return j.sealed }

// SealedChunkSize returns the chunk size the sealed prefix was cut at (0
// when nothing is sealed yet). An owner must keep sealing at this size; a
// fresh prefix may pick any size.
func (j *Journal) SealedChunkSize() int { return j.sealSize }

// SealChunk durably writes one immutable chunk object covering routines
// Index*len(recs)+1 .. (Index+1)*len(recs), all terminal. The chunk becomes
// live only when a later Checkpoint references it via Sealed/SealSize; a
// crash in between leaves an orphan object that the next seal overwrites
// with identical content (terminal records never change), so re-sealing is
// idempotent. Called by the owner between batches, off the same immutable
// snapshot the checkpoint is cut from.
func (j *Journal) SealChunk(index int, recs []RoutineRecord) error {
	if !j.open {
		return fmt.Errorf("journal: closed")
	}
	if j.opts.TestInjectErr != nil {
		if err := j.opts.TestInjectErr("seal"); err != nil {
			return fmt.Errorf("journal: writing sealed chunk: %w", err)
		}
	}
	for _, r := range recs {
		if r.Open() {
			return fmt.Errorf("journal: sealing open routine %d", r.ID)
		}
	}
	payload, err := json.Marshal(&sealedChunk{Index: index, Routines: recs})
	if err != nil {
		return fmt.Errorf("journal: encoding sealed chunk: %w", err)
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("journal: sealed chunk is %d bytes, over the %d frame limit", len(payload), maxFramePayload)
	}
	if err := j.store.Put(chunkName(index), appendFrame(nil, payload)); err != nil {
		return fmt.Errorf("journal: writing sealed chunk: %w", err)
	}
	return nil
}

// syncDir fsyncs the journal directory so renames and removals are durable.
// Best-effort: some filesystems reject directory fsync.
func (j *Journal) syncDir() {
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// SegmentCount returns the number of on-disk segment files (tests,
// diagnostics).
func (j *Journal) SegmentCount() (int, error) {
	segs, err := j.listSegments()
	return len(segs), err
}

// Close makes everything appended durable (regardless of tier — a clean
// close leaves nothing behind the disk), closes the active segment or
// detaches from the shared writer, and releases the directory lock. The
// journal is unusable afterwards.
func (j *Journal) Close() error {
	if !j.open {
		j.releaseLock()
		return nil
	}
	if j.writer != nil {
		j.open = false
		return j.writer.detach(j, true)
	}
	var err error
	if j.unflushed > 0 || j.mode != ModeAsync {
		err = j.syncSeg()
	}
	if cerr := j.seg.Close(); err == nil {
		err = cerr
	}
	j.seg = nil
	j.open = false
	j.releaseLock()
	return err
}

// Abandon closes the active segment without syncing — the SIGKILL-equivalent
// teardown used by crash drills and the poison path: whatever the OS already
// has (everything through the last covering sync) survives, nothing else is
// flushed. The directory lock is released, exactly as a killed process's
// flock would be; in shared-writer mode the journal just detaches, leaving
// the writer running for its other homes.
func (j *Journal) Abandon() {
	if j.writer != nil {
		if j.open {
			_ = j.writer.detach(j, false)
		}
		j.open = false
		return
	}
	if j.seg != nil {
		_ = j.seg.Close()
		j.seg = nil
	}
	j.open = false
	j.releaseLock()
}

package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// This file is the journal's wire format: a binary record frame (length +
// CRC-32C over a JSON payload) and the payload records themselves. The frame
// is what makes recovery safe against torn writes — a record interrupted by
// a crash fails its length or checksum test and is cleanly dropped, never
// partially applied — and the JSON payloads keep the on-disk format
// self-describing and forward-extensible (unknown fields are ignored on
// replay).
//
// Frame layout, little-endian:
//
//	[4B payload length] [4B CRC-32C of payload] [payload]
//
// Decoding must never panic on arbitrary bytes (see FuzzScanFrames): every
// length is bounds-checked before any slice indexing, and a frame that fails
// any check ends the scan — everything at and past a torn or corrupt frame
// is discarded, matching write-ahead-log semantics (frames are written and
// synced strictly in order, so bytes after a bad frame were never
// acknowledged).

const (
	frameHeaderLen = 8
	// maxFramePayload bounds a single record. A batch record holds at most
	// one loop drain's worth of routines and events; 64 MiB is far beyond any
	// real batch and exists only to reject garbage lengths during recovery.
	maxFramePayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed payload to dst and returns the extended
// slice.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// scanFrames walks a segment image frame by frame, calling fn for each
// payload that passes the length and CRC checks. It stops at the first
// torn/corrupt frame (or when fn returns an error) and reports whether the
// whole image was consumed cleanly — a false return with a nil error is the
// expected shape of a crash-truncated tail, not a failure.
func scanFrames(buf []byte, fn func(payload []byte) error) (clean bool, err error) {
	for len(buf) > 0 {
		if len(buf) < frameHeaderLen {
			return false, nil // torn header
		}
		n := int64(binary.LittleEndian.Uint32(buf[0:4]))
		if n > maxFramePayload || n > int64(len(buf)-frameHeaderLen) {
			return false, nil // garbage length or torn payload
		}
		payload := buf[frameHeaderLen : frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[4:8]) {
			return false, nil // corrupt payload
		}
		if err := fn(payload); err != nil {
			return false, err
		}
		buf = buf[frameHeaderLen+n:]
	}
	return true, nil
}

// --- payload records -------------------------------------------------------------

// RoutineRecord is the wire form of one routine's outcome (or, for a still
// open routine, its definition and progress so far).
type RoutineRecord struct {
	ID          int64             `json:"id"`
	Name        string            `json:"name"`
	User        string            `json:"user,omitempty"`
	Commands    []routine.Command `json:"commands"`
	Status      string            `json:"status"`
	Submitted   time.Time         `json:"submitted"`
	Started     time.Time         `json:"started,omitempty"`
	Finished    time.Time         `json:"finished,omitempty"`
	Executed    int               `json:"executed,omitempty"`
	Skipped     int               `json:"skipped,omitempty"`
	BestEffort  int               `json:"best_effort,omitempty"`
	RolledBack  int               `json:"rolled_back,omitempty"`
	AbortReason string            `json:"abort_reason,omitempty"`
}

// Open reports whether the routine had not finished when the record was cut.
func (r RoutineRecord) Open() bool {
	return r.Status != visibility.StatusCommitted.String() && r.Status != visibility.StatusAborted.String()
}

// FromResult converts a controller result into its wire record.
func FromResult(res visibility.Result) RoutineRecord {
	rec := RoutineRecord{
		ID:          int64(res.ID),
		Status:      res.Status.String(),
		Submitted:   res.Submitted,
		Started:     res.Started,
		Finished:    res.Finished,
		Executed:    res.Executed,
		Skipped:     res.Skipped,
		BestEffort:  res.BestEffortFailures,
		RolledBack:  res.RolledBack,
		AbortReason: res.AbortReason,
	}
	if res.Routine != nil {
		rec.Name = res.Routine.Name
		rec.User = res.Routine.User
		rec.Commands = res.Routine.Commands
	}
	return rec
}

// ToResult converts a wire record back into a controller result. Open
// records keep their recorded (non-terminal) status; recovery decides what
// to do with them (the runtime aborts them per the paper's failure
// semantics).
func (r RoutineRecord) ToResult() visibility.Result {
	res := visibility.Result{
		ID: routine.ID(r.ID),
		Routine: &routine.Routine{
			ID:        routine.ID(r.ID),
			Name:      r.Name,
			User:      r.User,
			Commands:  r.Commands,
			Submitted: r.Submitted,
		},
		Submitted:          r.Submitted,
		Started:            r.Started,
		Finished:           r.Finished,
		Executed:           r.Executed,
		Skipped:            r.Skipped,
		BestEffortFailures: r.BestEffort,
		RolledBack:         r.RolledBack,
		AbortReason:        r.AbortReason,
	}
	switch r.Status {
	case visibility.StatusCommitted.String():
		res.Status = visibility.StatusCommitted
	case visibility.StatusAborted.String():
		res.Status = visibility.StatusAborted
	case visibility.StatusRunning.String():
		res.Status = visibility.StatusRunning
	default:
		res.Status = visibility.StatusWaiting
	}
	return res
}

// StateEntry is one committed device-state change.
type StateEntry struct {
	Device device.ID    `json:"device"`
	State  device.State `json:"state"`
}

// EventRecord is the wire form of one activity-log event. Sequence numbers
// are implicit: the i-th event of a record has sequence FirstSeq+i.
type EventRecord struct {
	Time    time.Time `json:"time"`
	Kind    int       `json:"kind"`
	Routine int64     `json:"routine,omitempty"`
	Device  string    `json:"device,omitempty"`
	State   string    `json:"state,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// FromEvent converts a controller event into its wire record.
func FromEvent(e visibility.Event) EventRecord {
	return EventRecord{
		Time:    e.Time,
		Kind:    int(e.Kind),
		Routine: int64(e.Routine),
		Device:  string(e.Device),
		State:   string(e.State),
		Detail:  e.Detail,
	}
}

// ToEvent converts a wire record back into a controller event.
func (r EventRecord) ToEvent() visibility.Event {
	return visibility.Event{
		Time:    r.Time,
		Kind:    visibility.EventKind(r.Kind),
		Routine: routine.ID(r.Routine),
		Device:  device.ID(r.Device),
		State:   device.State(r.State),
		Detail:  r.Detail,
	}
}

// BankRecord is the wire form of one stored routine-bank definition.
type BankRecord struct {
	Name     string            `json:"name"`
	User     string            `json:"user,omitempty"`
	Commands []routine.Command `json:"commands"`
}

// TriggerRecord is the wire form of one scheduled trigger arm. A batch
// carries arms (schedule, or a recurring trigger's re-arm after firing) and
// cancellations; on replay the latest arm per handle wins and a cancel —
// explicit, or a one-shot trigger having fired — removes it. Recovery
// re-arms what remains, so automations survive a restart.
type TriggerRecord struct {
	Handle   int64         `json:"handle"`
	Routine  string        `json:"routine"`
	Interval time.Duration `json:"interval,omitempty"` // zero for one-shot triggers
	NextFire time.Time     `json:"next_fire"`
	Fired    int           `json:"fired,omitempty"`
}

// Batch is one group-committed journal record: everything durable that one
// loop drain produced — accepted submissions, finished outcomes, committed
// device-state changes, appended activity events, bank stores and trigger
// arms/cancellations. One Batch is one frame, one write, one fsync.
type Batch struct {
	LSN uint64 `json:"lsn"`
	// Home tags the record with its home ID when many homes share one
	// physical log through a GroupWriter; recovery demultiplexes the shared
	// segments by this field. Per-home segments leave it empty (the
	// directory identifies the home).
	Home        string          `json:"home,omitempty"`
	Submits     []RoutineRecord `json:"submits,omitempty"`
	Finishes    []RoutineRecord `json:"finishes,omitempty"`
	States      []StateEntry    `json:"states,omitempty"`
	FirstSeq    uint64          `json:"first_seq,omitempty"`
	Events      []EventRecord   `json:"events,omitempty"`
	Bank        []BankRecord    `json:"bank,omitempty"`
	TrigArms    []TriggerRecord `json:"trig_arms,omitempty"`
	TrigCancels []int64         `json:"trig_cancels,omitempty"`
}

// Empty reports whether the batch carries nothing durable.
func (b *Batch) Empty() bool {
	return len(b.Submits) == 0 && len(b.Finishes) == 0 && len(b.States) == 0 && len(b.Events) == 0 &&
		len(b.Bank) == 0 && len(b.TrigArms) == 0 && len(b.TrigCancels) == 0
}

// Checkpoint is a full durable image of a home at one instant, derived from
// the runtime's immutable Snapshot. A recovery loads the newest checkpoint
// and replays only the journal records with LSN > Checkpoint.LSN; segments
// at or below the checkpoint are truncated.
//
// Checkpoints are incremental over the routine history: once every routine
// in an aligned SealSize-sized ID range is terminal, the range is sealed
// into an immutable chunk object (SealChunk) that later checkpoints
// reference by count instead of re-serializing — Sealed records how many
// leading routines live in chunks, and the image's own Routines slice
// starts at ID Sealed+1. Cutting a checkpoint is therefore O(new finishes
// since the last one), not O(history), which is what makes the hibernation
// freeze path cheap enough to run continuously. A checkpoint with Sealed ==
// 0 (every image written before chunks existed) recovers exactly as before.
type Checkpoint struct {
	LSN      uint64          `json:"lsn"`
	Sealed   int             `json:"sealed,omitempty"`
	SealSize int             `json:"seal_size,omitempty"`
	Routines []RoutineRecord `json:"routines,omitempty"`
	States   []StateEntry    `json:"states,omitempty"`
	FirstSeq uint64          `json:"first_seq"`
	Events   []EventRecord   `json:"events,omitempty"`
	Bank     []BankRecord    `json:"bank,omitempty"`
	Triggers []TriggerRecord `json:"triggers,omitempty"`
	// NextTrigger is the highest trigger handle ever issued, so recovered
	// homes keep handing out fresh handles.
	NextTrigger int64 `json:"next_trigger,omitempty"`
}

// sealedChunk is the payload of one sealed-chunk object: an immutable,
// dense run of SealSize terminal routine records covering IDs
// Index*SealSize+1 .. (Index+1)*SealSize.
type sealedChunk struct {
	Index    int             `json:"index"`
	Routines []RoutineRecord `json:"routines"`
}

// decodeSealedChunk parses one sealed-chunk payload.
func decodeSealedChunk(payload []byte) (*sealedChunk, error) {
	var c sealedChunk
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("journal: decoding sealed chunk: %w", err)
	}
	return &c, nil
}

// DecodeBatch parses one batch payload. It never panics on arbitrary input.
func DecodeBatch(payload []byte) (*Batch, error) {
	var b Batch
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("journal: decoding batch: %w", err)
	}
	return &b, nil
}

// DecodeCheckpoint parses one checkpoint payload.
func DecodeCheckpoint(payload []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("journal: decoding checkpoint: %w", err)
	}
	return &c, nil
}

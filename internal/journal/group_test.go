package journal

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"safehome/internal/device"
	"safehome/internal/visibility"
)

// TestNoSyncAliasPinsAsyncUnbounded pins the deprecated NoSync flag's fold
// into the Mode enum: NoSync is exactly async durability with an unbounded
// window — acknowledgements never wait for the disk and no window forces a
// sync. An explicit Mode wins over the alias.
func TestNoSyncAliasPinsAsyncUnbounded(t *testing.T) {
	o := Options{NoSync: true}.normalized()
	if o.Mode != ModeAsync {
		t.Errorf("NoSync normalized Mode = %v, want %v", o.Mode, ModeAsync)
	}
	if o.AsyncWindowBytes >= 0 {
		t.Errorf("NoSync normalized AsyncWindowBytes = %d, want unbounded (negative)", o.AsyncWindowBytes)
	}
	if got := ResolveMode(Options{NoSync: true}, ModeGroup); got != ModeAsync {
		t.Errorf("ResolveMode(NoSync, group default) = %v, want %v", got, ModeAsync)
	}
	// An explicit mode beats the alias.
	o = Options{NoSync: true, Mode: ModeSync}.normalized()
	if o.Mode != ModeSync {
		t.Errorf("explicit sync with NoSync set = %v, want %v", o.Mode, ModeSync)
	}
	// And a window set alongside the alias is respected, not forced open.
	o = Options{NoSync: true, AsyncWindowBytes: 1 << 20}.normalized()
	if o.Mode != ModeAsync || o.AsyncWindowBytes != 1<<20 {
		t.Errorf("NoSync with window normalized to mode=%v window=%d", o.Mode, o.AsyncWindowBytes)
	}
}

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeSync, ModeGroup, ModeAsync} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseMode("fancy"); err == nil {
		t.Error("ParseMode accepted an unknown tier")
	}
}

// openGroupJournal opens one home's journal attached to the given writer.
func openGroupJournal(t *testing.T, dir, home string, w *GroupWriter) (*Journal, *Recovered) {
	t.Helper()
	j, rec, err := Open(dir, Options{Mode: ModeGroup, Writer: w, HomeID: home})
	if err != nil {
		t.Fatalf("open group journal %s: %v", home, err)
	}
	return j, rec
}

// TestGroupCommitRecoveryRoundTrip drives two homes over two shared writers
// through append/commit, kills the process image (Abandon without a final
// sync), and reopens everything — fresh writers scan the dead epoch and each
// home must recover exactly its own acknowledged batches.
func TestGroupCommitRecoveryRoundTrip(t *testing.T) {
	root := t.TempDir()
	wal := filepath.Join(root, "wal")
	homeDir := func(h string) string {
		d := filepath.Join(root, h)
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		return d
	}

	ws, err := OpenWriters(wal, 2, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	jA, recA := openGroupJournal(t, homeDir("a"), "a", ws[0])
	jB, recB := openGroupJournal(t, homeDir("b"), "b", ws[1])
	if recA != nil || recB != nil {
		t.Fatalf("fresh homes recovered state: %v, %v", recA, recB)
	}
	for i := int64(1); i <= 3; i++ {
		if err := jA.Append(&Batch{Submits: []RoutineRecord{submitRec(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := jB.Append(&Batch{
		Submits:  []RoutineRecord{submitRec(1)},
		Finishes: []RoutineRecord{finishRec(1, visibility.StatusCommitted)},
		States:   []StateEntry{{Device: "plug-0", State: device.On}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := jB.Commit(); err != nil {
		t.Fatal(err)
	}

	// Kill the process image: no detach flush, no final writer sync. The
	// commits above already waited for their covering fsync, so everything
	// acknowledged is on disk.
	jA.Abandon()
	jB.Abandon()
	ws[0].Abandon()
	ws[1].Abandon()

	ws2, err := OpenWriters(wal, 2, WriterOptions{})
	if err != nil {
		t.Fatalf("reopen writers: %v", err)
	}
	defer ws2[0].Close()
	defer ws2[1].Close()
	// Cross the homes over to the other writer: recovery reads the shared
	// state's epoch scan, not writer-local files.
	jA2, recA2 := openGroupJournal(t, homeDir("a"), "a", ws2[1])
	defer jA2.Close()
	jB2, recB2 := openGroupJournal(t, homeDir("b"), "b", ws2[0])
	defer jB2.Close()

	if recA2 == nil || len(recA2.Routines) != 3 || recA2.LSN != 3 {
		t.Fatalf("home a recovered %+v, want 3 routines at LSN 3", recA2)
	}
	if recB2 == nil || len(recB2.Routines) != 1 || recB2.States["plug-0"] != device.On {
		t.Fatalf("home b recovered %+v, want its finish and state", recB2)
	}
	// LSNs continue per home, and the new epoch accepts appends.
	b := &Batch{Submits: []RoutineRecord{submitRec(4)}}
	if err := jA2.Append(b); err != nil {
		t.Fatal(err)
	}
	if b.LSN != 4 {
		t.Fatalf("post-recovery LSN = %d, want 4", b.LSN)
	}
	if err := jA2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCheckpointPrunesTail: once a home checkpoints, a restart must not
// replay the checkpointed batches again (the watermark filters the shared
// tail), and checkpointing every home that owns records in a sealed epoch
// eventually removes its files.
func TestGroupCheckpointPrunesTail(t *testing.T) {
	root := t.TempDir()
	wal := filepath.Join(root, "wal")
	dir := filepath.Join(root, "a")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	ws, err := OpenWriters(wal, 1, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := Open(dir, Options{Mode: ModeGroup, Writer: ws[0], HomeID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(&Checkpoint{LSN: 1, Routines: []RoutineRecord{finishRec(1, visibility.StatusCommitted)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(); err != nil {
		t.Fatal(err)
	}
	j.Abandon()
	ws[0].Abandon()

	ws2, err := OpenWriters(wal, 1, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ws2[0].Close()
	j2, rec, err := Open(dir, Options{Mode: ModeGroup, Writer: ws2[0], HomeID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec == nil || rec.LSN != 2 || len(rec.Routines) != 2 {
		t.Fatalf("recovered %+v, want checkpoint plus tail batch at LSN 2", rec)
	}
	// The fresh generation checkpoints past everything it recovered; the
	// only home in the log is now fully checkpointed, so the dead epoch's
	// files must be pruned.
	if err := j2.Checkpoint(&Checkpoint{LSN: rec.LSN, Routines: rec.Routines}); err != nil {
		t.Fatal(err)
	}
	var leftover []string
	_ = filepath.Walk(wal, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), sharedSegPrefix) {
			// The new epoch's active segment is allowed; dead epochs are not.
			if !strings.Contains(path, filepath.Join(wal, epochPrefix+"1")) {
				leftover = append(leftover, path)
			}
		}
		return nil
	})
	if len(leftover) > 0 {
		t.Errorf("checkpointed epoch left segments behind: %v", leftover)
	}
}

// TestAsyncWindowBoundsUnflushed pins the async tier's window semantics on a
// standalone journal: a tiny window forces a sync on (nearly) every commit,
// an unbounded window defers every sync to Close.
func TestAsyncWindowBoundsUnflushed(t *testing.T) {
	count := func(window int64) (syncs int) {
		var mu sync.Mutex
		dir := t.TempDir()
		j, _, err := Open(dir, Options{
			Mode:             ModeAsync,
			AsyncWindowBytes: window,
			OnSync: func(string, int64) {
				mu.Lock()
				syncs++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(1); i <= 8; i++ {
			if err := j.Append(&Batch{Submits: []RoutineRecord{submitRec(i)}}); err != nil {
				t.Fatal(err)
			}
			if err := j.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		mu.Lock()
		before := syncs
		mu.Unlock()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return before
	}

	if syncs := count(1); syncs < 7 {
		t.Errorf("window=1: %d syncs over 8 commits, want one per commit", syncs)
	}
	if syncs := count(-1); syncs != 0 {
		t.Errorf("unbounded window: %d syncs before Close, want 0", syncs)
	}
}

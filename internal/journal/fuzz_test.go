package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"safehome/internal/visibility"
)

func writeFile(dir, name string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}

// FuzzScanFrames drives the record codec with arbitrary bytes: frame parsing
// must never panic, and whatever payloads pass the CRC must decode (or be
// rejected) without panicking either — recovery runs this exact path on
// whatever a crash left on disk.
func FuzzScanFrames(f *testing.F) {
	// Seed with well-formed images: single batch, multiple batches, a
	// checkpoint frame, and an empty frame.
	batch, _ := json.Marshal(&Batch{
		LSN:      1,
		Submits:  []RoutineRecord{submitRec(1)},
		Finishes: []RoutineRecord{finishRec(1, visibility.StatusCommitted)},
		States:   []StateEntry{{Device: "plug-0", State: "ON"}},
		FirstSeq: 1,
		Events:   []EventRecord{{Kind: 5, Routine: 1, Detail: "committed"}},
	})
	ckpt, _ := json.Marshal(&Checkpoint{LSN: 9, Routines: []RoutineRecord{finishRec(1, visibility.StatusAborted)}})
	f.Add(appendFrame(nil, batch))
	f.Add(appendFrame(appendFrame(nil, batch), batch))
	f.Add(appendFrame(nil, ckpt))
	f.Add(appendFrame(nil, nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3})
	// A torn tail: a valid frame followed by a truncated one.
	torn := appendFrame(nil, batch)
	torn = append(torn, appendFrame(nil, batch)[:11]...)
	f.Add(torn)

	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded int
		clean, err := scanFrames(data, func(payload []byte) error {
			// Both payload decoders must tolerate arbitrary CRC-valid bytes.
			if b, err := DecodeBatch(payload); err == nil && b != nil {
				_ = b.Empty()
			}
			if c, err := DecodeCheckpoint(payload); err == nil && c != nil {
				_ = len(c.Routines)
			}
			decoded++
			return nil
		})
		if err != nil {
			t.Fatalf("scanFrames callback error: %v", err)
		}
		if clean && decoded == 0 && len(data) > 0 {
			t.Fatalf("non-empty image scanned cleanly but decoded no frames")
		}
	})
}

// FuzzRecoverDir feeds arbitrary bytes to a full directory recovery: a
// segment and a checkpoint file of fuzzer-chosen contents must never panic
// Open, only ever yield (state, nil) or an error.
func FuzzRecoverDir(f *testing.F) {
	batch, _ := json.Marshal(&Batch{LSN: 1, Submits: []RoutineRecord{submitRec(1)}})
	ckpt, _ := json.Marshal(&Checkpoint{LSN: 0})
	f.Add(appendFrame(nil, batch), appendFrame(nil, ckpt))
	f.Add([]byte("not a journal"), []byte("not a checkpoint"))
	f.Add([]byte{}, []byte{})

	f.Fuzz(func(t *testing.T, seg, ck []byte) {
		dir := t.TempDir()
		if err := writeFile(dir, segmentName(1), seg); err != nil {
			t.Skip()
		}
		if len(ck) > 0 {
			if err := writeFile(dir, checkpointName, ck); err != nil {
				t.Skip()
			}
		}
		j, _, err := Open(dir, Options{NoSync: true})
		if err == nil {
			j.Close()
		}
	})
}

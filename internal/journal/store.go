package journal

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// SegmentStore abstracts where a journal's checkpoint artifacts — the tail
// checkpoint image and the sealed, immutable routine chunks it references —
// are kept. The default (DirStore) is the home's own data directory, but an
// owner can plug in an off-box store (object storage, a content-addressed
// cache) so that only the active journal tail lives on the hub's disk.
//
// Contract: Put must publish atomically — a reader (Get) sees either the
// previous object or the complete new one, never a torn write — and must be
// durable when it returns, because the caller truncates journal records the
// object covers immediately afterwards. Get returns an error satisfying
// errors.Is(err, fs.ErrNotExist) for names never Put. Objects are immutable
// in practice (a name is only ever re-Put with identical content after a
// crash re-seal), so aggressive caching is safe.
//
// The active write-ahead segments deliberately do NOT route through the
// store: they are short-lived (rewritten every checkpoint), fsynced on the
// group-commit hot path, and must stay local for latency. Sealed chunks and
// checkpoints are the cold, write-once artifacts worth shipping off-box.
type SegmentStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	Delete(name string) error
	List() ([]string, error)
}

// DirStore is the default SegmentStore: each object is one file in a local
// directory, published with the write-tmp, fsync, rename, sync-dir dance so
// a crash mid-Put leaves either the old object or the new one.
type DirStore struct {
	Dir string
}

// Put atomically replaces the object under name.
func (s DirStore) Put(name string, data []byte) error {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", s.Dir, err)
	}
	tmp := filepath.Join(s.Dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(s.Dir, name)); err != nil {
		return fmt.Errorf("store: publishing %s: %w", name, err)
	}
	// Make the rename itself durable. Best-effort: some filesystems reject
	// directory fsync.
	if d, err := os.Open(s.Dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Get returns the object's full contents, or an error satisfying
// errors.Is(err, fs.ErrNotExist) when it was never Put.
func (s DirStore) Get(name string) ([]byte, error) {
	buf, err := os.ReadFile(filepath.Join(s.Dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s: %w", name, fs.ErrNotExist)
		}
		return nil, fmt.Errorf("store: reading %s: %w", name, err)
	}
	return buf, nil
}

// Delete removes the object. Deleting a name that was never Put is not an
// error.
func (s DirStore) Delete(name string) error {
	err := os.Remove(filepath.Join(s.Dir, name))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting %s: %w", name, err)
	}
	return nil
}

// List returns every stored object name (tmp leftovers excluded).
func (s DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: listing %s: %w", s.Dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

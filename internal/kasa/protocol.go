package kasa

import (
	"encoding/json"
	"fmt"

	"safehome/internal/device"
)

// request is the JSON document sent to a plug. Real HS-series plugs accept
// the system.set_relay_state and system.get_sysinfo commands; the emulation
// adds system.set_device_state so that richer SafeHome states ("BREW",
// "HEAT:400F", ...) survive the round trip. The context block addresses one
// device of a multi-device endpoint, mirroring how Kasa power strips address
// child sockets.
type request struct {
	Context *contextBlock `json:"context,omitempty"`
	System  systemRequest `json:"system"`
}

type contextBlock struct {
	DeviceID string `json:"device_id,omitempty"`
}

type systemRequest struct {
	SetRelayState  *setRelayState  `json:"set_relay_state,omitempty"`
	SetDeviceState *setDeviceState `json:"set_device_state,omitempty"`
	GetSysinfo     *struct{}       `json:"get_sysinfo,omitempty"`
}

type setRelayState struct {
	State int `json:"state"`
}

type setDeviceState struct {
	State string `json:"state"`
}

// response is the JSON document a plug answers with.
type response struct {
	System systemResponse `json:"system"`
}

type systemResponse struct {
	SetRelayState  *errOnly `json:"set_relay_state,omitempty"`
	SetDeviceState *errOnly `json:"set_device_state,omitempty"`
	GetSysinfo     *sysinfo `json:"get_sysinfo,omitempty"`
}

type errOnly struct {
	ErrCode int    `json:"err_code"`
	ErrMsg  string `json:"err_msg,omitempty"`
}

// sysinfo mirrors the subset of the real get_sysinfo reply SafeHome uses,
// plus the emulation's free-form device state.
type sysinfo struct {
	ErrCode    int    `json:"err_code"`
	Alias      string `json:"alias"`
	DeviceID   string `json:"deviceId"`
	Model      string `json:"model"`
	RelayState int    `json:"relay_state"`
	State      string `json:"state,omitempty"`
}

// --- request builders (used by the driver) -----------------------------------

func marshalSetState(id device.ID, target device.State) ([]byte, error) {
	req := request{Context: &contextBlock{DeviceID: string(id)}}
	switch target {
	case device.On:
		req.System.SetRelayState = &setRelayState{State: 1}
	case device.Off:
		req.System.SetRelayState = &setRelayState{State: 0}
	default:
		req.System.SetDeviceState = &setDeviceState{State: string(target)}
	}
	return json.Marshal(req)
}

func marshalGetSysinfo(id device.ID) ([]byte, error) {
	return json.Marshal(request{
		Context: &contextBlock{DeviceID: string(id)},
		System:  systemRequest{GetSysinfo: &struct{}{}},
	})
}

// parseStateResponse extracts the error code of a set_relay_state /
// set_device_state reply.
func parseStateResponse(data []byte) error {
	var resp response
	if err := json.Unmarshal(data, &resp); err != nil {
		return fmt.Errorf("kasa: parsing set-state response: %w", err)
	}
	eo := resp.System.SetRelayState
	if eo == nil {
		eo = resp.System.SetDeviceState
	}
	if eo == nil {
		return fmt.Errorf("kasa: set-state response missing result: %s", data)
	}
	if eo.ErrCode != 0 {
		return fmt.Errorf("kasa: device error %d: %s", eo.ErrCode, eo.ErrMsg)
	}
	return nil
}

// parseSysinfoResponse extracts the device state from a get_sysinfo reply.
func parseSysinfoResponse(data []byte) (device.State, error) {
	var resp response
	if err := json.Unmarshal(data, &resp); err != nil {
		return device.StateUnknown, fmt.Errorf("kasa: parsing sysinfo response: %w", err)
	}
	info := resp.System.GetSysinfo
	if info == nil {
		return device.StateUnknown, fmt.Errorf("kasa: sysinfo response missing payload: %s", data)
	}
	if info.ErrCode != 0 {
		return device.StateUnknown, fmt.Errorf("kasa: device error %d", info.ErrCode)
	}
	if info.State != "" {
		return device.State(info.State), nil
	}
	if info.RelayState == 1 {
		return device.On, nil
	}
	return device.Off, nil
}

// Package kasa implements the TP-Link Kasa-style smart-plug protocol that
// SafeHome's implementation drives real devices with (§6): JSON command
// documents obfuscated with the well-known "autokey" XOR cipher and framed
// with a 4-byte big-endian length prefix over TCP.
//
// The package contains three pieces:
//
//   - the wire codec (this file), byte-compatible with the cipher used by
//     HS100/HS105/HS110 plugs;
//   - an Emulator that serves a whole fleet of virtual plugs over one TCP
//     listener, backed by a device.Fleet (the stand-in for physical plugs);
//   - a Driver that implements device.Actuator over the protocol, so the live
//     hub can control either emulated or real plugs through the same code.
package kasa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// cipherSeed is the initial autokey byte used by TP-Link's obfuscation.
const cipherSeed byte = 171

// maxFrame bounds accepted frame sizes; real plug replies are well under 16 KiB.
const maxFrame = 1 << 20

// Encrypt applies the autokey XOR obfuscation to a plaintext JSON payload.
// Each output byte is the XOR of the plaintext byte with the previous
// ciphertext byte (the seed for the first byte).
func Encrypt(plain []byte) []byte {
	out := make([]byte, len(plain))
	key := cipherSeed
	for i, b := range plain {
		out[i] = b ^ key
		key = out[i]
	}
	return out
}

// Decrypt reverses Encrypt.
func Decrypt(cipher []byte) []byte {
	out := make([]byte, len(cipher))
	key := cipherSeed
	for i, b := range cipher {
		out[i] = b ^ key
		key = b
	}
	return out
}

// WriteFrame writes one length-prefixed, obfuscated message.
func WriteFrame(w io.Writer, plain []byte) error {
	body := Encrypt(plain)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("kasa: writing frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("kasa: writing frame body: %w", err)
	}
	return nil
}

// ErrFrameTooLarge is returned when a peer announces an implausibly large frame.
var ErrFrameTooLarge = errors.New("kasa: frame too large")

// ReadFrame reads one length-prefixed message and returns the decrypted
// plaintext.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("kasa: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("kasa: reading frame body: %w", err)
	}
	return Decrypt(body), nil
}

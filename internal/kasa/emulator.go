package kasa

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"safehome/internal/device"
)

// Emulator serves a fleet of virtual smart plugs over a single TCP listener,
// speaking the Kasa wire protocol. It is the stand-in for the TP-Link
// HS105/HS110 devices of the paper's deployment: the hub's Driver cannot tell
// the difference.
//
// Failed devices (device.Fleet.Fail) do not answer: the emulator drops the
// connection without a reply, so drivers observe a timeout — exactly how an
// unplugged smart plug behaves.
type Emulator struct {
	fleet *device.Fleet

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Logf, if set, receives protocol trace lines (useful in the devices
	// binary with -verbose).
	Logf func(format string, args ...any)
}

// NewEmulator creates an emulator over the given simulated fleet.
func NewEmulator(fleet *device.Fleet) *Emulator {
	return &Emulator{fleet: fleet, conns: make(map[net.Conn]struct{})}
}

// Fleet returns the backing fleet (tests and the devices binary use it to
// inject failures).
func (e *Emulator) Fleet() *device.Fleet { return e.fleet }

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port) and
// serving requests until Close. It returns the bound address.
func (e *Emulator) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("kasa: emulator listen: %w", err)
	}
	e.mu.Lock()
	e.listener = ln
	e.closed = false
	e.mu.Unlock()

	e.wg.Add(1)
	go e.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the listener address (empty before Start).
func (e *Emulator) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.listener == nil {
		return ""
	}
	return e.listener.Addr().String()
}

// Close stops the listener and closes active connections.
func (e *Emulator) Close() error {
	e.mu.Lock()
	e.closed = true
	ln := e.listener
	for c := range e.conns {
		c.Close()
	}
	e.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	e.wg.Wait()
	return err
}

func (e *Emulator) acceptLoop(ln net.Listener) {
	defer e.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			e.logf("accept error: %v", err)
			continue
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.conns[conn] = struct{}{}
		e.mu.Unlock()

		e.wg.Add(1)
		go e.serveConn(conn)
	}
}

func (e *Emulator) serveConn(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()

	for {
		plain, err := ReadFrame(conn)
		if err != nil {
			return // EOF or broken frame: the client is done
		}
		reply, respond := e.handle(plain)
		if !respond {
			// Unreachable (failed) device: behave like a dead plug.
			return
		}
		if err := WriteFrame(conn, reply); err != nil {
			return
		}
	}
}

// handle processes one decoded request and returns the reply, plus whether a
// reply should be sent at all (false = simulate an unreachable device).
func (e *Emulator) handle(plain []byte) ([]byte, bool) {
	var req request
	if err := json.Unmarshal(plain, &req); err != nil {
		e.logf("bad request: %v", err)
		return mustJSON(response{System: systemResponse{GetSysinfo: &sysinfo{ErrCode: -1}}}), true
	}
	if req.Context == nil || req.Context.DeviceID == "" {
		return mustJSON(response{System: systemResponse{GetSysinfo: &sysinfo{ErrCode: -2}}}), true
	}
	id := device.ID(req.Context.DeviceID)

	// A failed device never answers; an unknown device answers with an error.
	if e.fleet.Failed(id) {
		e.logf("%s: unreachable", id)
		return nil, false
	}

	switch {
	case req.System.SetRelayState != nil:
		target := device.Off
		if req.System.SetRelayState.State != 0 {
			target = device.On
		}
		return e.apply(id, target, true), true
	case req.System.SetDeviceState != nil:
		return e.apply(id, device.State(req.System.SetDeviceState.State), false), true
	case req.System.GetSysinfo != nil:
		st, err := e.fleet.Status(id)
		if err != nil {
			return mustJSON(response{System: systemResponse{GetSysinfo: &sysinfo{ErrCode: -3}}}), true
		}
		info := &sysinfo{Alias: string(id), DeviceID: string(id), Model: "SafeHome.Emulated(US)", State: string(st)}
		if st == device.On {
			info.RelayState = 1
		}
		return mustJSON(response{System: systemResponse{GetSysinfo: info}}), true
	default:
		return mustJSON(response{System: systemResponse{GetSysinfo: &sysinfo{ErrCode: -4}}}), true
	}
}

func (e *Emulator) apply(id device.ID, target device.State, relay bool) []byte {
	result := &errOnly{}
	if err := e.fleet.Apply(id, target); err != nil {
		result.ErrCode = -3
		result.ErrMsg = err.Error()
	}
	e.logf("%s <- %s (err_code=%d)", id, target, result.ErrCode)
	resp := response{}
	if relay {
		resp.System.SetRelayState = result
	} else {
		resp.System.SetDeviceState = result
	}
	return mustJSON(resp)
}

func (e *Emulator) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		log.Panicf("kasa: marshalling response: %v", err)
	}
	return data
}

package kasa

import (
	"fmt"
	"net"
	"sync"
	"time"

	"safehome/internal/device"
)

// DefaultTimeout bounds one request/response exchange with a plug. The
// paper's failure detector declares a device failed after a 100 ms silence;
// the driver default is slightly larger to tolerate loopback scheduling
// hiccups without masking real failures.
const DefaultTimeout = 250 * time.Millisecond

// Driver drives smart plugs over the Kasa protocol and implements
// device.Actuator, so the live hub's controllers work identically over
// emulated plugs, real TP-Link plugs, or the in-memory fleet.
//
// Every device maps to a network address. Real plugs each have their own
// address (port 9999); the emulator serves every device on one address.
type Driver struct {
	mu       sync.RWMutex
	addrs    map[device.ID]string
	timeout  time.Duration
	timeouts map[device.ID]time.Duration // per-device overrides
}

// NewDriver builds a driver with the given device→address mapping.
func NewDriver(addrs map[device.ID]string) *Driver {
	cp := make(map[device.ID]string, len(addrs))
	for id, a := range addrs {
		cp[id] = a
	}
	return &Driver{
		addrs:    cp,
		timeout:  DefaultTimeout,
		timeouts: make(map[device.ID]time.Duration),
	}
}

// NewSingleEndpointDriver maps every listed device to one address (the
// emulator pattern).
func NewSingleEndpointDriver(addr string, ids []device.ID) *Driver {
	addrs := make(map[device.ID]string, len(ids))
	for _, id := range ids {
		addrs[id] = addr
	}
	return NewDriver(addrs)
}

// SetTimeout overrides the per-exchange timeout for every device without a
// per-device override.
func (d *Driver) SetTimeout(t time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t > 0 {
		d.timeout = t
	}
}

// SetDeviceTimeout overrides the per-exchange timeout for one device — a
// plug on a flaky Wi-Fi segment can get a longer budget without slowing
// failure detection for the rest of the fleet. A non-positive duration
// clears the override.
func (d *Driver) SetDeviceTimeout(id device.ID, t time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t > 0 {
		d.timeouts[id] = t
	} else {
		delete(d.timeouts, id)
	}
}

// AddDevice registers (or re-points) a device address.
func (d *Driver) AddDevice(id device.ID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.addrs[id] = addr
}

// Devices lists the devices the driver knows about.
func (d *Driver) Devices() []device.ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]device.ID, 0, len(d.addrs))
	for id := range d.addrs {
		out = append(out, id)
	}
	return out
}

func (d *Driver) lookup(id device.ID) (string, time.Duration, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	addr, ok := d.addrs[id]
	if !ok {
		return "", 0, fmt.Errorf("%w: %s", device.ErrUnknownDevice, id)
	}
	timeout := d.timeout
	if t, ok := d.timeouts[id]; ok {
		timeout = t
	}
	return addr, timeout, nil
}

// exchange performs one request/response round trip.
func (d *Driver) exchange(id device.ID, payload []byte) ([]byte, error) {
	addr, timeout, err := d.lookup(id)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", device.ErrUnavailable, id, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	_ = conn.SetDeadline(deadline)
	if err := WriteFrame(conn, payload); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", device.ErrUnavailable, id, err)
	}
	reply, err := ReadFrame(conn)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", device.ErrUnavailable, id, err)
	}
	return reply, nil
}

// Apply implements device.Actuator.
func (d *Driver) Apply(id device.ID, target device.State) error {
	payload, err := marshalSetState(id, target)
	if err != nil {
		return err
	}
	reply, err := d.exchange(id, payload)
	if err != nil {
		return err
	}
	return parseStateResponse(reply)
}

// Status implements device.Actuator.
func (d *Driver) Status(id device.ID) (device.State, error) {
	payload, err := marshalGetSysinfo(id)
	if err != nil {
		return device.StateUnknown, err
	}
	reply, err := d.exchange(id, payload)
	if err != nil {
		return device.StateUnknown, err
	}
	return parseSysinfoResponse(reply)
}

// Ping implements device.Actuator: a get_sysinfo round trip whose payload is
// discarded.
func (d *Driver) Ping(id device.ID) error {
	_, err := d.Status(id)
	return err
}

package kasa

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"safehome/internal/device"
)

func TestEncryptDecryptKnownVector(t *testing.T) {
	// The autokey cipher is its own inverse only through Decrypt; check a
	// small known vector computed by hand: 'a'(0x61)^171=0xCA, 'b'(0x62)^0xCA=0xA8.
	got := Encrypt([]byte("ab"))
	want := []byte{0xCA, 0xA8}
	if !bytes.Equal(got, want) {
		t.Fatalf("Encrypt(ab) = %x, want %x", got, want)
	}
	if back := Decrypt(got); string(back) != "ab" {
		t.Fatalf("Decrypt = %q, want ab", back)
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(Decrypt(Encrypt(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte(`{"system":{"get_sysinfo":{}}}`)
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("frame round trip = %q, want %q", got, msg)
	}
}

func TestReadFrameRejectsHugeFrames(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestMarshalSetStateUsesRelayForOnOff(t *testing.T) {
	onPayload, err := marshalSetState("plug-1", device.On)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(onPayload, []byte(`"set_relay_state":{"state":1}`)) {
		t.Errorf("ON payload should use set_relay_state: %s", onPayload)
	}
	brewPayload, err := marshalSetState("coffee", device.State("BREW"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(brewPayload, []byte(`"set_device_state":{"state":"BREW"}`)) {
		t.Errorf("BREW payload should use set_device_state: %s", brewPayload)
	}
}

// startEmulator spins up an emulator over a small fleet and returns it plus a
// connected driver.
func startEmulator(t *testing.T, ids ...device.ID) (*Emulator, *Driver) {
	t.Helper()
	reg := device.NewRegistry()
	for _, id := range ids {
		reg.Add(device.Info{ID: id, Kind: device.KindPlug, Initial: device.Off})
	}
	fleet := device.NewFleet(reg)
	em := NewEmulator(fleet)
	addr, err := em.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("starting emulator: %v", err)
	}
	t.Cleanup(func() { em.Close() })
	drv := NewSingleEndpointDriver(addr, ids)
	drv.SetTimeout(500 * time.Millisecond)
	return em, drv
}

func TestDriverApplyAndStatus(t *testing.T) {
	em, drv := startEmulator(t, "plug-1", "coffee")

	if err := drv.Apply("plug-1", device.On); err != nil {
		t.Fatalf("Apply(plug-1, ON): %v", err)
	}
	if st, err := drv.Status("plug-1"); err != nil || st != device.On {
		t.Fatalf("Status(plug-1) = %v, %v; want ON", st, err)
	}
	if got, _ := em.Fleet().State("plug-1"); got != device.On {
		t.Fatalf("fleet state = %q, want ON", got)
	}

	// Rich states go through the emulation extension.
	if err := drv.Apply("coffee", device.State("BREW:espresso")); err != nil {
		t.Fatalf("Apply(coffee, BREW): %v", err)
	}
	if st, _ := drv.Status("coffee"); st != device.State("BREW:espresso") {
		t.Fatalf("Status(coffee) = %q, want BREW:espresso", st)
	}
	if err := drv.Ping("plug-1"); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestDriverUnknownDevice(t *testing.T) {
	_, drv := startEmulator(t, "plug-1")
	if err := drv.Apply("ghost", device.On); !errors.Is(err, device.ErrUnknownDevice) {
		t.Fatalf("Apply(ghost) err = %v, want ErrUnknownDevice", err)
	}
	if _, err := drv.Status("ghost"); !errors.Is(err, device.ErrUnknownDevice) {
		t.Fatalf("Status(ghost) err = %v, want ErrUnknownDevice", err)
	}
}

func TestDriverFailedDeviceTimesOut(t *testing.T) {
	em, drv := startEmulator(t, "plug-1")
	drv.SetTimeout(150 * time.Millisecond)
	if err := em.Fleet().Fail("plug-1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := drv.Apply("plug-1", device.On)
	if !errors.Is(err, device.ErrUnavailable) {
		t.Fatalf("Apply to failed device err = %v, want ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("failed-device exchange took %v, want bounded by timeout", elapsed)
	}
	if err := em.Fleet().Restore("plug-1"); err != nil {
		t.Fatal(err)
	}
	if err := drv.Apply("plug-1", device.On); err != nil {
		t.Fatalf("Apply after restore: %v", err)
	}
}

func TestDriverAgainstStoppedEmulator(t *testing.T) {
	em, drv := startEmulator(t, "plug-1")
	em.Close()
	drv.SetTimeout(100 * time.Millisecond)
	if err := drv.Ping("plug-1"); !errors.Is(err, device.ErrUnavailable) {
		t.Fatalf("Ping with emulator down err = %v, want ErrUnavailable", err)
	}
}

func TestDriverAddDeviceAndList(t *testing.T) {
	_, drv := startEmulator(t, "plug-1")
	drv.AddDevice("plug-9", drv.mustAddr(t, "plug-1"))
	found := map[device.ID]bool{}
	for _, id := range drv.Devices() {
		found[id] = true
	}
	if !found["plug-1"] || !found["plug-9"] {
		t.Fatalf("Devices() = %v, want plug-1 and plug-9", drv.Devices())
	}
}

// mustAddr is a test helper to read back a device's address.
func (d *Driver) mustAddr(t *testing.T, id device.ID) string {
	t.Helper()
	addr, _, err := d.lookup(id)
	if err != nil {
		t.Fatalf("lookup(%s): %v", id, err)
	}
	return addr
}

func TestEmulatorConcurrentClients(t *testing.T) {
	_, drv := startEmulator(t, "plug-1", "plug-2", "plug-3")
	done := make(chan error, 30)
	for i := 0; i < 30; i++ {
		id := device.ID([]string{"plug-1", "plug-2", "plug-3"}[i%3])
		go func() {
			if err := drv.Apply(id, device.On); err != nil {
				done <- err
				return
			}
			_, err := drv.Status(id)
			done <- err
		}()
	}
	for i := 0; i < 30; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent exchange failed: %v", err)
		}
	}
}

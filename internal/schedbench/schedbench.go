// Package schedbench holds the scheduling-hot-path micro-benchmarks in
// library form, so the same workloads back both `go test -bench` (the
// repo-root bench_test.go) and the safehome-bench binary's `-out` mode,
// which records ns/op and allocs/op to a BENCH_*.json trajectory file.
//
// The headline case is TimelineInsertion — Algorithm 1's cost of placing one
// routine into an occupied lineage table (the paper's Fig 15d mechanism
// cost) — plus the sharded-manager end-to-end throughput and the precedence
// graph's AddEdge inner loop.
package schedbench

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/manager"
	"safehome/internal/order"
	"safehome/internal/routine"
	rt "safehome/internal/runtime"
	"safehome/internal/sim"
	"safehome/internal/visibility"
)

// Routine builds a deterministic pseudo-random bench routine with nCmds
// commands spread over a plug fleet of the given size.
func Routine(name string, nCmds, devices int, seed int64) *routine.Routine {
	r := routine.New(name)
	for c := 0; c < nCmds; c++ {
		r.Commands = append(r.Commands, routine.Command{
			Device:   device.ID(fmt.Sprintf("plug-%d", int(seed+int64(c*7))%devices)),
			Target:   device.On,
			Duration: time.Duration(1+(c%5)) * time.Minute,
		})
	}
	return r
}

// OccupiedController builds an EV/TL controller whose lineages are already
// busy with `routines` background routines over `devices` devices (the
// paper's Raspberry Pi configuration for Fig 15d).
func OccupiedController(devices, routines int) visibility.Controller {
	reg := device.Plugs(devices)
	fleet := device.NewFleet(reg)
	env := visibility.NewSimEnv(sim.NewAtEpoch(), fleet)
	ctrl := visibility.New(env, fleet.Snapshot(), visibility.DefaultOptions(visibility.EV))
	for i := 0; i < routines; i++ {
		ctrl.Submit(Routine(fmt.Sprintf("bg-%d", i), 3, devices, int64(i)))
	}
	return ctrl
}

// TimelineInsertion measures Algorithm 1's cost of placing one new routine
// with nCmds commands into a lineage table already occupied by 30 routines
// over 15 devices (Fig 15d).
func TimelineInsertion(nCmds int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ctrl := OccupiedController(15, 30)
			probe := Routine("probe", nCmds, 15, int64(i))
			b.StartTimer()
			ctrl.Submit(probe)
		}
	}
}

// ManagerThroughput measures the sharded HomeManager's end-to-end routine
// throughput — submit, EV-schedule, execute on the virtual clock, commit —
// with parallel API clients submitting to homes spread over every shard. It
// reports a routines/s extra metric.
func ManagerThroughput(shards, homes int) func(b *testing.B) {
	return func(b *testing.B) {
		managerThroughput(b, manager.Config{
			Shards: shards,
			Home:   manager.HomeConfig{Model: visibility.EV},
		}, homes)
	}
}

// ManagerThroughputJournaled is ManagerThroughput with durability on under
// the given tier: every home journals to a shared DataDir. sync pays one
// fsync per home per batch drain; group coalesces all of a shard's homes
// into one shared-writer fsync cycle; async acknowledges ahead of the disk.
// The sync-vs-group gap is the fsync wall this tier exists to collapse.
func ManagerThroughputJournaled(shards, homes int, mode journal.Mode) func(b *testing.B) {
	return func(b *testing.B) {
		// The bench is closed-loop: each parallel client blocks in Submit
		// until its commit's covering fsync lands. Many more clients than
		// cores keep every home busy during a sync, which is what gives the
		// group writer commits to coalesce — as real API traffic would.
		// Several clients per home also let the mailbox batch-drain coalesce
		// submissions, so a commit window covers whole batches, not single
		// operations.
		b.SetParallelism(256)
		managerThroughput(b, manager.Config{
			Shards:  shards,
			DataDir: b.TempDir(),
			Journal: journal.Options{Mode: mode},
			Home:    manager.HomeConfig{Model: visibility.EV},
		}, homes)
	}
}

func managerThroughput(b *testing.B, cfg manager.Config, homes int) {
	m := manager.New(cfg)
	defer m.Close()
	if cfg.DataDir != "" {
		if st := m.Status(); st.DurabilityError != "" {
			b.Fatalf("durability degraded to %s: %s", st.Durability, st.DurabilityError)
		}
	}
	if _, err := m.AddHomes("home", homes, 8); err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			id := manager.HomeID(fmt.Sprintf("home-%d", i%int64(homes)))
			r := Routine("bench", 3, 8, i)
			if !submitRetrying(b, func() error { _, err := m.Submit(id, r); return err }) {
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routines/s")
}

// submitRetrying runs one benchmark submission, retrying while the home's
// mailbox sheds it with ErrOverloaded (the home is draining; a real client
// would back off and retry). It reports false on any other error.
func submitRetrying(b *testing.B, submit func() error) bool {
	for {
		err := submit()
		if err == nil {
			return true
		}
		if errors.Is(err, rt.ErrOverloaded) {
			continue
		}
		b.Error(err)
		return false
	}
}

// RuntimeThroughput measures one home runtime's typed-mailbox round trip end
// to end — admit the op, batch-dequeue it on the loop goroutine, EV-schedule
// and execute on the virtual clock, deliver the reply — with parallel
// clients hammering a single mailbox. It isolates the seam the manager and
// hub both sit on, and reports a routines/s extra metric.
func RuntimeThroughput(batch int) func(b *testing.B) {
	return func(b *testing.B) {
		runtimeThroughput(b, rt.Config{
			ID:    "bench",
			Model: visibility.EV,
			Batch: batch,
		})
	}
}

// RuntimeThroughputJournaled is RuntimeThroughput with durability on: every
// batch drain is group-committed (one fsync) to a write-ahead journal in a
// temporary data directory before its replies are delivered. The delta
// against the memory-only rows is the price of crash safety — amortized per
// batch, so it shrinks as batch dequeue coalesces concurrent submissions.
func RuntimeThroughputJournaled(batch int) func(b *testing.B) {
	return RuntimeThroughputTiered(batch, journal.ModeSync)
}

// RuntimeThroughputTiered is RuntimeThroughputJournaled under an explicit
// durability tier. Group mode runs the single home over its own shared
// writer — the coalescing pipeline without cross-home traffic, so the row
// isolates the pipeline's cost; async shows the ceiling with acknowledgement
// decoupled from the disk.
func RuntimeThroughputTiered(batch int, mode journal.Mode) func(b *testing.B) {
	return func(b *testing.B) {
		dir := b.TempDir()
		cfg := rt.Config{
			ID:      "bench",
			Model:   visibility.EV,
			Batch:   batch,
			DataDir: dir,
			Journal: journal.Options{Mode: mode},
		}
		if mode == journal.ModeGroup {
			ws, err := journal.OpenWriters(filepath.Join(dir, "wal"), 1, journal.WriterOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer ws[0].Close()
			cfg.Journal.Writer = ws[0]
		}
		runtimeThroughput(b, cfg)
	}
}

func runtimeThroughput(b *testing.B, cfg rt.Config) {
	home, err := rt.NewSim(cfg, device.Plugs(8))
	if err != nil {
		b.Fatal(err)
	}
	defer home.Close()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := Routine("bench", 3, 8, next.Add(1))
			if !submitRetrying(b, func() error { _, err := home.Submit(r); return err }) {
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routines/s")
	if cfg.DataDir != "" {
		if err := home.JournalError(); err != nil {
			b.Fatalf("journal failed during bench: %v", err)
		}
	}
}

// QueryThroughput measures the read path under a mixed read/write workload:
// readPct% of parallel operations are status polls (Counts) against one home
// runtime, the rest are routine submissions (readPct=100 is pure parallel
// readers — the cost of a query itself). Under rt.ReadSnapshot (the default)
// reads load the loop's latest published snapshot and never touch the
// mailbox; under rt.ReadLinearizable every read posts an op and is answered
// on the loop goroutine — the baseline this PR's off-loop read path is
// measured against. Reports reads/s and writes/s extra metrics. Mixed runs
// are closed-loop: a virtual-clock write costs ~1000x a snapshot read, so on
// few-core machines their ns/op is write-bound and the read-path gap shows
// up undiluted in the reads=100 case.
func QueryThroughput(consistency rt.ReadConsistency, readPct int) func(b *testing.B) {
	return func(b *testing.B) {
		home, err := rt.NewSim(rt.Config{
			ID:              "bench",
			Model:           visibility.EV,
			ReadConsistency: consistency,
		}, device.Plugs(8))
		if err != nil {
			b.Fatal(err)
		}
		defer home.Close()
		// Seed some history so reads return real payloads.
		for i := 0; i < 64; i++ {
			if _, err := home.Submit(Routine("seed", 3, 8, int64(i))); err != nil {
				b.Fatal(err)
			}
		}
		var next, reads, writes atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				if int(i%100) < readPct {
					if c := home.Counts(); c.Routines == 0 {
						b.Error("query saw an empty home")
						return
					}
					reads.Add(1)
					continue
				}
				r := Routine("bench", 3, 8, i)
				if !submitRetrying(b, func() error { _, err := home.Submit(r); return err }) {
					return
				}
				writes.Add(1)
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(reads.Load())/b.Elapsed().Seconds(), "reads/s")
		b.ReportMetric(float64(writes.Load())/b.Elapsed().Seconds(), "writes/s")
	}
}

// DensityHomes returns the registered-fleet size for the HomeDensity
// benchmark: SAFEHOME_DENSITY_HOMES when set to an integer >= 100, else the
// full-size default of 100000.
func DensityHomes() int {
	if s := os.Getenv("SAFEHOME_DENSITY_HOMES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 100 {
			return n
		}
	}
	return 100_000
}

// HomeDensity measures the hibernation tentpole: register `homes` homes on a
// hibernating manager — every one lands cold (a frozen record, no runtime, no
// goroutines) — then wake a hotPct% hot set by first touch and report what
// the paper's "millions of registered homes in one process" claim rests on:
//
//	cold-B/home   resident heap bytes per registered-but-frozen home
//	live-B/home   incremental heap bytes per woken home — the all-live
//	              per-home cost the frozen representation is measured against
//	live/cold-x   the density win: how many times more homes fit frozen
//	wake-p50-ms / wake-p99-ms   first-touch reanimation latency
//
// Each b.N iteration builds the whole fleet from scratch; run with
// -benchtime=1x for the big configurations.
func HomeDensity(homes int, hotPct float64) func(b *testing.B) {
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			homeDensity(b, homes, hotPct)
		}
	}
}

func homeDensity(b *testing.B, homes int, hotPct float64) {
	m := manager.New(manager.Config{
		Shards:         8,
		DataDir:        b.TempDir(),
		HibernateAfter: time.Hour,
		Home:           manager.HomeConfig{Model: visibility.EV},
	})
	defer m.Close()

	heap := func() uint64 {
		goruntime.GC()
		var ms goruntime.MemStats
		goruntime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	base := heap()
	if _, err := m.AddHomes("home", homes, 4); err != nil {
		b.Fatal(err)
	}
	coldHeap := heap()
	coldBytes := float64(coldHeap-base) / float64(homes)
	if st := m.Status(); st.Frozen != homes {
		b.Fatalf("registered %d homes, %d are frozen", homes, st.Frozen)
	}

	// Wake the hot set by first touch, timing each reanimation — journal
	// recovery behind the singleflight guard, striding so the hot homes
	// spread over every shard.
	hot := int(float64(homes) * hotPct / 100)
	if hot < 1 {
		hot = 1
	}
	stride := homes / hot
	lat := make([]time.Duration, 0, hot)
	for i := 0; i < hot; i++ {
		id := manager.HomeID(fmt.Sprintf("home-%d", i*stride))
		start := time.Now()
		if _, err := m.Runtime(id); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	liveBytes := float64(heap()-coldHeap) / float64(hot)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[len(lat)/2]
	p99 := lat[len(lat)*99/100]
	if os.Getenv("SAFEHOME_DENSITY_HIST") != "" {
		printWakeHistogram(lat)
	}

	b.ReportMetric(coldBytes, "cold-B/home")
	b.ReportMetric(liveBytes, "live-B/home")
	if coldBytes > 0 {
		b.ReportMetric(liveBytes/coldBytes, "live/cold-x")
	}
	b.ReportMetric(float64(p50)/float64(time.Millisecond), "wake-p50-ms")
	b.ReportMetric(float64(p99)/float64(time.Millisecond), "wake-p99-ms")
}

// printWakeHistogram renders the first-touch wake-latency distribution as a
// log-scale bucket histogram on stderr (SAFEHOME_DENSITY_HIST=1) — the
// nightly density sweep captures it as an artifact alongside the p50/p99
// extras, since a tail regression hides inside two percentiles.
func printWakeHistogram(sorted []time.Duration) {
	buckets := []time.Duration{
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	}
	counts := make([]int, len(buckets)+1)
	for _, d := range sorted {
		i := sort.Search(len(buckets), func(i int) bool { return d < buckets[i] })
		counts[i]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	fmt.Fprintf(os.Stderr, "wake latency histogram (%d wakes, max %v):\n", len(sorted), sorted[len(sorted)-1])
	for i, c := range counts {
		label := fmt.Sprintf(">= %v", buckets[len(buckets)-1])
		if i < len(buckets) {
			label = fmt.Sprintf("< %v", buckets[i])
		}
		fmt.Fprintf(os.Stderr, "  %-10s %7d %s\n", label, c, strings.Repeat("#", c*40/max))
	}
}

// GraphAddEdge measures adding (and removing again) one precedence
// constraint — including the cycle-check DFS — on a layered graph of the
// given node count, the inner loop of every placement decision.
func GraphAddEdge(nodes int) func(b *testing.B) {
	return func(b *testing.B) {
		g := order.NewGraph()
		const layers = 8
		per := nodes / layers
		if per == 0 {
			per = 1
		}
		for i := 0; i < nodes-per; i++ {
			next := (i/per + 1) * per
			for j := next; j < next+per && j < nodes; j++ {
				if err := g.AddEdge(order.RoutineNode(routine.ID(i+1)), order.RoutineNode(routine.ID(j+1))); err != nil {
					b.Fatal(err)
				}
			}
		}
		probe := order.RoutineNode(routine.ID(nodes + 1))
		first := order.RoutineNode(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.AddEdge(first, probe); err != nil {
				b.Fatal(err)
			}
			g.Remove(probe)
		}
	}
}

// Case is one named benchmark the safehome-bench binary can run.
type Case struct {
	Name string
	Fn   func(b *testing.B)
}

// Cases returns the scheduler-hot-path suite recorded in BENCH_schedhot.json.
func Cases() []Case {
	var out []Case
	for _, n := range []int{2, 5, 10} {
		out = append(out, Case{Name: fmt.Sprintf("TimelineInsertion/commands=%d", n), Fn: TimelineInsertion(n)})
	}
	for _, n := range []int{16, 64, 256} {
		out = append(out, Case{Name: fmt.Sprintf("GraphAddEdge/nodes=%d", n), Fn: GraphAddEdge(n)})
	}
	for _, n := range []int{1, 32} {
		out = append(out, Case{Name: fmt.Sprintf("RuntimeThroughput/batch=%d", n), Fn: RuntimeThroughput(n)})
	}
	for _, n := range []int{1, 32} {
		out = append(out, Case{Name: fmt.Sprintf("RuntimeThroughput/batch=%d/journal=on", n), Fn: RuntimeThroughputJournaled(n)})
	}
	for _, md := range []journal.Mode{journal.ModeGroup, journal.ModeAsync} {
		out = append(out, Case{Name: fmt.Sprintf("RuntimeThroughput/batch=32/journal=%v", md), Fn: RuntimeThroughputTiered(32, md)})
	}
	for _, s := range []int{1, 2, 4, 8} {
		out = append(out, Case{Name: fmt.Sprintf("ManagerThroughput/shards=%d", s), Fn: ManagerThroughput(s, 64)})
	}
	for _, md := range []journal.Mode{journal.ModeSync, journal.ModeGroup, journal.ModeAsync} {
		out = append(out, Case{Name: fmt.Sprintf("ManagerThroughput/shards=8/journal=%v", md), Fn: ManagerThroughputJournaled(8, 64, md)})
	}
	// The hibernation density row: 100k registered homes, 1% hot. One
	// iteration builds and freezes the whole fleet, so at the default
	// benchtime this records a single full-size run. CI's recorder smoke
	// shrinks it through the same env knob the benchmark honours.
	homes := DensityHomes()
	out = append(out, Case{Name: fmt.Sprintf("HomeDensity/homes=%d/hot=1%%", homes), Fn: HomeDensity(homes, 1)})
	// Query throughput runs last: its read-heavy homes accumulate the most
	// per-home state of the suite, and recording it after the throughput
	// benchmarks keeps their GC environment comparable across trajectory
	// entries.
	for _, mix := range []int{100, 90, 50} {
		for _, mode := range []rt.ReadConsistency{rt.ReadSnapshot, rt.ReadLinearizable} {
			out = append(out, Case{
				Name: fmt.Sprintf("QueryThroughput/reads=%d/mode=%s", mix, mode),
				Fn:   QueryThroughput(mode, mix),
			})
		}
	}
	return out
}

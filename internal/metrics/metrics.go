// Package metrics implements the human-facing evaluation metrics of §7.1 of
// the paper: end-to-end latency, temporary incongruence, final incongruence,
// parallelism level, abort rate, rollback overhead, stretch factor, and order
// mismatch. A Recorder consumes controller events during a run; Finalize
// combines them with the per-routine results into a Report; Aggregate merges
// reports across trials.
package metrics

import (
	"fmt"
	"strings"
	"time"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// Recorder observes controller events during one run. It is not safe for
// concurrent use; in simulation runs everything is single-threaded, and the
// live hub serializes observers with the controller.
type Recorder struct {
	// DefaultShort is the assumed duration of zero-duration commands, used to
	// compute ideal routine run times (must match the controller's option).
	DefaultShort time.Duration

	active   map[routine.ID]bool
	modified map[routine.ID]map[device.ID]bool
	tempInc  map[routine.ID]bool

	parallelismSamples []float64
	events             int
}

// NewRecorder returns a recorder using the given default short-command
// duration for ideal-time computations.
func NewRecorder(defaultShort time.Duration) *Recorder {
	if defaultShort <= 0 {
		defaultShort = visibility.DefaultShortCommand
	}
	return &Recorder{
		DefaultShort: defaultShort,
		active:       make(map[routine.ID]bool),
		modified:     make(map[routine.ID]map[device.ID]bool),
		tempInc:      make(map[routine.ID]bool),
	}
}

// Observe implements visibility.Observer.
func (r *Recorder) Observe(e visibility.Event) {
	r.events++
	switch e.Kind {
	case visibility.EvStarted:
		r.active[e.Routine] = true
		r.sampleParallelism()
	case visibility.EvCommitted, visibility.EvAborted:
		delete(r.active, e.Routine)
		r.sampleParallelism()
	case visibility.EvCommandExecuted:
		// Temporary incongruence (§7.1): another active routine already
		// modified this device and has not finished yet — it now observes a
		// state it did not set.
		for other := range r.active {
			if other == e.Routine {
				continue
			}
			if r.modified[other][e.Device] {
				r.tempInc[other] = true
			}
		}
		if r.modified[e.Routine] == nil {
			r.modified[e.Routine] = make(map[device.ID]bool)
		}
		r.modified[e.Routine][e.Device] = true
	}
}

func (r *Recorder) sampleParallelism() {
	r.parallelismSamples = append(r.parallelismSamples, float64(len(r.active)))
}

// Events returns the number of events observed (useful in tests).
func (r *Recorder) Events() int { return r.events }

// Report is the set of per-run metrics for one trial.
type Report struct {
	Model     visibility.Model
	Scheduler visibility.SchedulerKind

	Routines  int
	Committed int
	Aborted   int

	// Latencies of committed routines (submission → completion).
	Latencies []time.Duration
	// NormalizedLatencies divide each committed routine's latency by its
	// ideal (no-wait) run time — the normalization of Figs 14a/15a.
	NormalizedLatencies []float64
	// StretchFactors divide each committed routine's actual start→finish time
	// by its ideal run time (Fig 15c).
	StretchFactors []float64

	// TempIncongruent counts routines that suffered at least one temporary
	// incongruence event; TempIncongruence is the fraction over all routines.
	TempIncongruent  int
	TempIncongruence float64

	// ParallelismSamples are the active-routine counts measured at every
	// routine start/finish point; Parallelism is their mean.
	ParallelismSamples []float64
	Parallelism        float64

	// AbortRate is Aborted / Routines.
	AbortRate float64
	// RollbackOverhead is the mean, over aborted routines, of the fraction of
	// their executed commands that were rolled back (§7.4).
	RollbackOverhead float64

	// OrderMismatch is the normalized swap distance between submission order
	// and the final serialization order of committed routines (§7.6).
	OrderMismatch float64

	// FinalCongruent reports whether the end state of the home was serially
	// equivalent to some order of the committed routines (set by the harness,
	// which has access to the device fleet's ground truth).
	FinalCongruent bool
}

// Finalize combines the recorder's observations with the controller's
// per-routine results and serialization order into a Report.
func (r *Recorder) Finalize(model visibility.Model, sched visibility.SchedulerKind,
	results []visibility.Result, serialization []order.Node) Report {

	rep := Report{
		Model:              model,
		Scheduler:          sched,
		Routines:           len(results),
		ParallelismSamples: append([]float64(nil), r.parallelismSamples...),
		FinalCongruent:     true,
	}

	var rollbackFractions []float64
	var submissionOrder, serialOrder []routine.ID

	for _, res := range results {
		switch res.Status {
		case visibility.StatusCommitted:
			rep.Committed++
			ideal := res.Routine.IdealDuration(r.DefaultShort)
			rep.Latencies = append(rep.Latencies, res.Latency())
			if ideal > 0 {
				rep.NormalizedLatencies = append(rep.NormalizedLatencies,
					float64(res.Latency())/float64(ideal))
				rep.StretchFactors = append(rep.StretchFactors,
					float64(res.RunTime())/float64(ideal))
			}
			submissionOrder = append(submissionOrder, res.ID)
		case visibility.StatusAborted:
			rep.Aborted++
			if res.Executed > 0 {
				// An in-flight command that actuated before the abort can make
				// RolledBack exceed Executed by one; clamp to "everything was
				// rolled back" so the overhead stays a fraction.
				frac := float64(res.RolledBack) / float64(res.Executed)
				if frac > 1 {
					frac = 1
				}
				rollbackFractions = append(rollbackFractions, frac)
			} else {
				rollbackFractions = append(rollbackFractions, 0)
			}
		}
		if r.tempInc[res.ID] {
			rep.TempIncongruent++
		}
	}

	for _, n := range serialization {
		if n.Kind == order.KindRoutine {
			serialOrder = append(serialOrder, n.Routine)
		}
	}

	if rep.Routines > 0 {
		rep.TempIncongruence = float64(rep.TempIncongruent) / float64(rep.Routines)
		rep.AbortRate = float64(rep.Aborted) / float64(rep.Routines)
	}
	rep.Parallelism = stats.Mean(rep.ParallelismSamples)
	rep.RollbackOverhead = stats.Mean(rollbackFractions)
	rep.OrderMismatch = order.OrderMismatch(submissionOrder, serialOrder)
	return rep
}

// --- aggregation across trials ------------------------------------------------

// Aggregate is the merge of many per-trial Reports for one configuration.
type Aggregate struct {
	Model     visibility.Model
	Scheduler visibility.SchedulerKind
	Trials    int

	Routines  int
	Committed int
	Aborted   int

	// Latency (milliseconds) and normalized latency summaries over all
	// committed routines of all trials.
	LatencyMS         stats.Summary
	NormalizedLatency stats.Summary
	Stretch           stats.Summary
	Parallelism       stats.Summary

	// Per-trial metric summaries.
	TempIncongruence stats.Summary
	AbortRate        stats.Summary
	RollbackOverhead stats.Summary
	OrderMismatch    stats.Summary

	// FinalIncongruence is the fraction of trials whose end state was not
	// serially equivalent (Fig 12b).
	FinalIncongruence float64

	// StretchValues retains the raw per-routine stretch factors so callers can
	// build CDFs (Fig 15c).
	StretchValues []float64
}

// Merge aggregates per-trial reports. All reports should come from the same
// configuration (model + scheduler); the first report's identity is used.
func Merge(reports []Report) Aggregate {
	agg := Aggregate{Trials: len(reports)}
	if len(reports) == 0 {
		return agg
	}
	agg.Model = reports[0].Model
	agg.Scheduler = reports[0].Scheduler

	var latencies, normLat, stretch, par []float64
	var tempInc, abortRate, rollback, mismatch []float64
	incongruentTrials := 0
	for _, rep := range reports {
		agg.Routines += rep.Routines
		agg.Committed += rep.Committed
		agg.Aborted += rep.Aborted
		for _, l := range rep.Latencies {
			latencies = append(latencies, float64(l)/float64(time.Millisecond))
		}
		normLat = append(normLat, rep.NormalizedLatencies...)
		stretch = append(stretch, rep.StretchFactors...)
		par = append(par, rep.ParallelismSamples...)
		tempInc = append(tempInc, rep.TempIncongruence)
		abortRate = append(abortRate, rep.AbortRate)
		rollback = append(rollback, rep.RollbackOverhead)
		mismatch = append(mismatch, rep.OrderMismatch)
		if !rep.FinalCongruent {
			incongruentTrials++
		}
	}
	agg.LatencyMS = stats.Summarize(latencies)
	agg.NormalizedLatency = stats.Summarize(normLat)
	agg.Stretch = stats.Summarize(stretch)
	agg.Parallelism = stats.Summarize(par)
	agg.TempIncongruence = stats.Summarize(tempInc)
	agg.AbortRate = stats.Summarize(abortRate)
	agg.RollbackOverhead = stats.Summarize(rollback)
	agg.OrderMismatch = stats.Summarize(mismatch)
	agg.FinalIncongruence = stats.Fraction(incongruentTrials, len(reports))
	agg.StretchValues = stretch
	return agg
}

// Label renders "EV(TL)" / "GSV" style configuration labels.
func (a Aggregate) Label() string {
	if a.Model == visibility.EV {
		return fmt.Sprintf("%s(%s)", a.Model, a.Scheduler)
	}
	return a.Model.String()
}

// String renders a one-line summary, convenient for logs and examples.
func (a Aggregate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s trials=%d routines=%d committed=%d aborted=%d", a.Label(),
		a.Trials, a.Routines, a.Committed, a.Aborted)
	fmt.Fprintf(&b, " latency(p50/p95)=%.0f/%.0fms", a.LatencyMS.P50, a.LatencyMS.P95)
	fmt.Fprintf(&b, " tempInc=%.1f%%", 100*a.TempIncongruence.Mean)
	fmt.Fprintf(&b, " finalInc=%.1f%%", 100*a.FinalIncongruence)
	fmt.Fprintf(&b, " parallelism=%.2f", a.Parallelism.Mean)
	return b.String()
}

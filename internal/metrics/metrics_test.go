package metrics

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

var epoch = time.Date(2021, 4, 26, 8, 0, 0, 0, time.UTC)

func event(kind visibility.EventKind, rid routine.ID, dev device.ID, at time.Duration) visibility.Event {
	return visibility.Event{Time: epoch.Add(at), Kind: kind, Routine: rid, Device: dev}
}

func simpleRoutine(id routine.ID, devs ...device.ID) *routine.Routine {
	r := routine.New("r")
	for _, d := range devs {
		r.Commands = append(r.Commands, routine.Command{Device: d, Target: device.On})
	}
	r.ID = id
	return r
}

func committedResult(id routine.ID, r *routine.Routine, submit, start, finish time.Duration) visibility.Result {
	return visibility.Result{
		ID: id, Routine: r, Status: visibility.StatusCommitted,
		Submitted: epoch.Add(submit), Started: epoch.Add(start), Finished: epoch.Add(finish),
		Executed: len(r.Commands),
	}
}

func TestRecorderTemporaryIncongruence(t *testing.T) {
	rec := NewRecorder(100 * time.Millisecond)
	// R1 modifies light-1, then R2 modifies the same device before R1
	// finishes: R1 suffers a temporary incongruence event.
	rec.Observe(event(visibility.EvStarted, 1, "", 0))
	rec.Observe(event(visibility.EvStarted, 2, "", 10*time.Millisecond))
	rec.Observe(event(visibility.EvCommandExecuted, 1, "light-1", 20*time.Millisecond))
	rec.Observe(event(visibility.EvCommandExecuted, 2, "light-1", 30*time.Millisecond))
	rec.Observe(event(visibility.EvCommitted, 1, "", 40*time.Millisecond))
	rec.Observe(event(visibility.EvCommitted, 2, "", 50*time.Millisecond))

	r1 := simpleRoutine(1, "light-1")
	r2 := simpleRoutine(2, "light-1")
	results := []visibility.Result{
		committedResult(1, r1, 0, 0, 40*time.Millisecond),
		committedResult(2, r2, 0, 10*time.Millisecond, 50*time.Millisecond),
	}
	ser := []order.Node{order.RoutineNode(1), order.RoutineNode(2)}
	rep := rec.Finalize(visibility.EV, visibility.SchedTL, results, ser)

	if rep.TempIncongruent != 1 {
		t.Errorf("TempIncongruent = %d, want 1 (only R1)", rep.TempIncongruent)
	}
	if rep.TempIncongruence != 0.5 {
		t.Errorf("TempIncongruence = %v, want 0.5", rep.TempIncongruence)
	}
	if rep.Committed != 2 || rep.Aborted != 0 {
		t.Errorf("committed/aborted = %d/%d, want 2/0", rep.Committed, rep.Aborted)
	}
	if len(rep.Latencies) != 2 {
		t.Errorf("latencies = %v, want 2 entries", rep.Latencies)
	}
	if rep.OrderMismatch != 0 {
		t.Errorf("OrderMismatch = %v, want 0 (serialized in submission order)", rep.OrderMismatch)
	}
}

func TestRecorderNoIncongruenceAfterFinish(t *testing.T) {
	rec := NewRecorder(100 * time.Millisecond)
	// R1 finishes before R2 touches the shared device: no incongruence.
	rec.Observe(event(visibility.EvStarted, 1, "", 0))
	rec.Observe(event(visibility.EvCommandExecuted, 1, "light-1", 10*time.Millisecond))
	rec.Observe(event(visibility.EvCommitted, 1, "", 20*time.Millisecond))
	rec.Observe(event(visibility.EvStarted, 2, "", 30*time.Millisecond))
	rec.Observe(event(visibility.EvCommandExecuted, 2, "light-1", 40*time.Millisecond))
	rec.Observe(event(visibility.EvCommitted, 2, "", 50*time.Millisecond))

	results := []visibility.Result{
		committedResult(1, simpleRoutine(1, "light-1"), 0, 0, 20*time.Millisecond),
		committedResult(2, simpleRoutine(2, "light-1"), 30*time.Millisecond, 30*time.Millisecond, 50*time.Millisecond),
	}
	rep := rec.Finalize(visibility.EV, visibility.SchedTL, results, nil)
	if rep.TempIncongruent != 0 {
		t.Errorf("TempIncongruent = %d, want 0", rep.TempIncongruent)
	}
}

func TestRecorderParallelismSamples(t *testing.T) {
	rec := NewRecorder(0)
	rec.Observe(event(visibility.EvStarted, 1, "", 0))   // 1 active
	rec.Observe(event(visibility.EvStarted, 2, "", 0))   // 2 active
	rec.Observe(event(visibility.EvCommitted, 1, "", 0)) // 1 active
	rec.Observe(event(visibility.EvCommitted, 2, "", 0)) // 0 active

	rep := rec.Finalize(visibility.EV, visibility.SchedTL, nil, nil)
	want := []float64{1, 2, 1, 0}
	if len(rep.ParallelismSamples) != len(want) {
		t.Fatalf("samples = %v, want %v", rep.ParallelismSamples, want)
	}
	for i, v := range want {
		if rep.ParallelismSamples[i] != v {
			t.Fatalf("samples = %v, want %v", rep.ParallelismSamples, want)
		}
	}
	if rep.Parallelism != 1.0 {
		t.Errorf("Parallelism = %v, want 1.0", rep.Parallelism)
	}
}

func TestFinalizeAbortsAndRollbackOverhead(t *testing.T) {
	rec := NewRecorder(100 * time.Millisecond)
	r1 := simpleRoutine(1, "a", "b")
	r2 := simpleRoutine(2, "c", "d")
	results := []visibility.Result{
		{ID: 1, Routine: r1, Status: visibility.StatusAborted,
			Submitted: epoch, Started: epoch, Finished: epoch.Add(time.Second),
			Executed: 2, RolledBack: 1},
		{ID: 2, Routine: r2, Status: visibility.StatusAborted,
			Submitted: epoch, Started: epoch, Finished: epoch.Add(time.Second),
			Executed: 4, RolledBack: 4},
	}
	rep := rec.Finalize(visibility.PSV, visibility.SchedTL, results, nil)
	if rep.AbortRate != 1.0 {
		t.Errorf("AbortRate = %v, want 1", rep.AbortRate)
	}
	if got, want := rep.RollbackOverhead, (0.5+1.0)/2; got != want {
		t.Errorf("RollbackOverhead = %v, want %v", got, want)
	}
	if len(rep.Latencies) != 0 {
		t.Errorf("aborted routines must not contribute latencies: %v", rep.Latencies)
	}
}

func TestFinalizeOrderMismatch(t *testing.T) {
	rec := NewRecorder(100 * time.Millisecond)
	r1, r2 := simpleRoutine(1, "a"), simpleRoutine(2, "b")
	results := []visibility.Result{
		committedResult(1, r1, 0, 0, time.Second),
		committedResult(2, r2, 0, 0, time.Second),
	}
	// Serialized in reverse of submission order: mismatch = 1 (the only pair
	// is discordant).
	ser := []order.Node{order.RoutineNode(2), order.RoutineNode(1)}
	rep := rec.Finalize(visibility.EV, visibility.SchedTL, results, ser)
	if rep.OrderMismatch != 1.0 {
		t.Errorf("OrderMismatch = %v, want 1.0", rep.OrderMismatch)
	}
}

func TestMergeAggregatesTrials(t *testing.T) {
	reports := []Report{
		{
			Model: visibility.EV, Scheduler: visibility.SchedTL,
			Routines: 2, Committed: 2,
			Latencies:           []time.Duration{100 * time.Millisecond, 300 * time.Millisecond},
			NormalizedLatencies: []float64{1, 3},
			StretchFactors:      []float64{1, 1.5},
			ParallelismSamples:  []float64{1, 2},
			TempIncongruence:    0.5,
			FinalCongruent:      true,
		},
		{
			Model: visibility.EV, Scheduler: visibility.SchedTL,
			Routines: 2, Committed: 1, Aborted: 1,
			Latencies:          []time.Duration{200 * time.Millisecond},
			ParallelismSamples: []float64{1},
			AbortRate:          0.5,
			RollbackOverhead:   1.0,
			FinalCongruent:     false,
		},
	}
	agg := Merge(reports)
	if agg.Trials != 2 || agg.Routines != 4 || agg.Committed != 3 || agg.Aborted != 1 {
		t.Errorf("aggregate counts wrong: %+v", agg)
	}
	if agg.FinalIncongruence != 0.5 {
		t.Errorf("FinalIncongruence = %v, want 0.5", agg.FinalIncongruence)
	}
	if agg.LatencyMS.Count != 3 {
		t.Errorf("latency count = %d, want 3", agg.LatencyMS.Count)
	}
	if agg.LatencyMS.P50 != 200 {
		t.Errorf("latency p50 = %v, want 200", agg.LatencyMS.P50)
	}
	if agg.Label() != "EV(TL)" {
		t.Errorf("Label = %q, want EV(TL)", agg.Label())
	}
	if agg.String() == "" {
		t.Error("String() should not be empty")
	}
}

func TestMergeEmpty(t *testing.T) {
	agg := Merge(nil)
	if agg.Trials != 0 || agg.FinalIncongruence != 0 {
		t.Errorf("empty merge should be zero-valued: %+v", agg)
	}
}

func TestLabelNonEV(t *testing.T) {
	agg := Merge([]Report{{Model: visibility.GSV}})
	if agg.Label() != "GSV" {
		t.Errorf("Label = %q, want GSV", agg.Label())
	}
}

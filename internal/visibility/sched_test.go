package visibility

// Scheduler tests: FCFS vs JiT vs Timeline (§5), lock-lease ablation
// (§7.5.1), and randomized serial-equivalence properties.

import (
	"fmt"
	"testing"
	"time"

	"safehome/internal/congruence"
	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/stats"
)

// evOptions builds EV options for a scheduler with selectable leasing.
func evOptions(k SchedulerKind, pre, post bool) Options {
	o := DefaultOptions(EV)
	o.Scheduler = k
	o.PreLease = pre
	o.PostLease = post
	return o
}

// headOfLineWorkload reproduces the party-scenario pathology: one long
// routine holding a device, then short routines on other devices that a good
// scheduler should not block behind it.
func headOfLineWorkload(h *testHome) {
	long := routine.New("party-ambiance",
		routine.Command{Device: "light-1", Target: device.On, Duration: 30 * time.Minute},
		routine.Command{Device: "light-2", Target: device.On},
	)
	h.submitAt(0, long)
	for i := 0; i < 4; i++ {
		h.submitAt(time.Duration(i+1)*time.Second, routine.New(fmt.Sprintf("serve-%d", i),
			routine.Command{Device: "coffee", Target: device.On},
			routine.Command{Device: "coffee", Target: device.Off},
		))
	}
}

func TestSchedulersCompleteHeadOfLineWorkload(t *testing.T) {
	for _, k := range []SchedulerKind{SchedFCFS, SchedJiT, SchedTL} {
		t.Run(k.String(), func(t *testing.T) {
			h := newTestHome(t, evOptions(k, true, true), homeDevices()...)
			headOfLineWorkload(h)
			h.run()
			h.finishedAll()
			for _, res := range h.ctrl.Results() {
				if res.Status != StatusCommitted {
					t.Errorf("routine %s: %v (%s)", res.Routine.Name, res.Status, res.AbortReason)
				}
			}
		})
	}
}

func TestSchedulerNameExposed(t *testing.T) {
	h := newTestHome(t, evOptions(SchedJiT, true, true), homeDevices()...)
	ev, ok := h.ctrl.(*evController)
	if !ok {
		t.Fatal("EV options should build an evController")
	}
	if ev.SchedulerName() != "JiT" {
		t.Errorf("SchedulerName = %q, want JiT", ev.SchedulerName())
	}
}

// pipelineLatency measures the mean committed-routine latency of the
// two-breakfast pipeline under a given scheduler/lease configuration.
func pipelineLatency(t *testing.T, k SchedulerKind, pre, post bool) time.Duration {
	t.Helper()
	h := newTestHome(t, evOptions(k, pre, post), homeDevices()...)
	h.submitAt(0, breakfastRoutine("user-1"))
	h.submitAt(time.Second, breakfastRoutine("user-2"))
	h.submitAt(2*time.Second, routine.New("window-check",
		routine.Command{Device: "window", Target: device.Closed}))
	h.run()
	h.finishedAll()
	var total time.Duration
	var n int
	for _, res := range h.ctrl.Results() {
		if res.Status != StatusCommitted {
			t.Fatalf("routine %s not committed: %v (%s)", res.Routine.Name, res.Status, res.AbortReason)
		}
		total += res.Latency()
		n++
	}
	return total / time.Duration(n)
}

func TestTimelineNoSlowerThanFCFS(t *testing.T) {
	tl := pipelineLatency(t, SchedTL, true, true)
	fcfs := pipelineLatency(t, SchedFCFS, true, true)
	jit := pipelineLatency(t, SchedJiT, true, true)
	if tl > fcfs {
		t.Errorf("TL mean latency %v should be <= FCFS %v", tl, fcfs)
	}
	if tl > jit {
		t.Errorf("TL mean latency %v should be <= JiT %v", tl, jit)
	}
}

// TestFCFSPreservesArrivalOrder checks that under FCFS, conflicting routines
// commit in submission order even when a later one is much shorter.
func TestFCFSPreservesArrivalOrder(t *testing.T) {
	h := newTestHome(t, evOptions(SchedFCFS, true, true), homeDevices()...)
	h.submitAt(0, routine.New("long-coffee",
		routine.Command{Device: "coffee", Target: device.On, Duration: 10 * time.Minute},
		routine.Command{Device: "coffee", Target: device.Off}))
	h.submitAt(time.Second, routine.New("quick-coffee",
		routine.Command{Device: "coffee", Target: device.On},
		routine.Command{Device: "coffee", Target: device.Off}))
	h.run()
	h.finishedAll()
	r1, r2 := h.result(1), h.result(2)
	if !r1.Finished.Before(r2.Finished) {
		t.Errorf("FCFS: R1 should finish before R2 (R1 %v, R2 %v)", r1.Finished, r2.Finished)
	}
	if r2.Latency() < 9*time.Minute {
		t.Errorf("FCFS: R2 latency %v should include waiting for R1 (~10m)", r2.Latency())
	}
}

// TestTimelinePreLeasePlacesShortRoutineAhead demonstrates the pre-lease: a
// short routine arriving later is slotted into a gap before a long routine's
// not-yet-reached access.
func TestTimelinePreLeasePlacesShortRoutineAhead(t *testing.T) {
	newHome := func(k SchedulerKind, pre bool) (*testHome, *routine.Routine) {
		h := newTestHome(t, evOptions(k, pre, true), homeDevices()...)
		// R1 runs the dishwasher for 30 minutes, then switches on light-1.
		h.submitAt(0, routine.New("chores",
			routine.Command{Device: "dishwasher", Target: device.On, Duration: 30 * time.Minute},
			routine.Command{Device: "dishwasher", Target: device.Off},
			routine.Command{Device: "light-1", Target: device.On},
		))
		// R2 just toggles light-1; with pre-leasing it need not wait 30 minutes.
		quick := routine.New("quick-light",
			routine.Command{Device: "light-1", Target: device.On},
			routine.Command{Device: "light-1", Target: device.Off},
		)
		h.submitAt(time.Second, quick)
		return h, quick
	}

	h, _ := newHome(SchedTL, true)
	h.run()
	h.finishedAll()
	withPre := h.result(2).Latency()

	h2, _ := newHome(SchedTL, false)
	h2.run()
	h2.finishedAll()
	withoutPre := h2.result(2).Latency()

	if withPre > time.Minute {
		t.Errorf("with pre-leasing the quick routine should finish fast, got %v", withPre)
	}
	if withoutPre < 29*time.Minute {
		t.Errorf("without pre-leasing the quick routine should wait ~30m, got %v", withoutPre)
	}
	if withPre >= withoutPre {
		t.Errorf("pre-leasing should reduce latency: with=%v without=%v", withPre, withoutPre)
	}
}

// TestJiTPreLease verifies the JiT eligibility test grants pre-leases too.
func TestJiTPreLease(t *testing.T) {
	h := newTestHome(t, evOptions(SchedJiT, true, true), homeDevices()...)
	h.submitAt(0, routine.New("chores",
		routine.Command{Device: "dishwasher", Target: device.On, Duration: 30 * time.Minute},
		routine.Command{Device: "dishwasher", Target: device.Off},
		routine.Command{Device: "light-1", Target: device.On},
	))
	h.submitAt(time.Second, routine.New("quick-light",
		routine.Command{Device: "light-1", Target: device.On},
		routine.Command{Device: "light-1", Target: device.Off},
	))
	h.run()
	h.finishedAll()
	if got := h.result(2).Latency(); got > time.Minute {
		t.Errorf("JiT pre-lease should let the quick routine finish fast, got %v", got)
	}
	// The pre-leased routine is serialized before the long routine.
	ordered := h.ctrl.Serialization()
	pos := map[string]int{}
	for i, n := range ordered {
		pos[n.String()] = i
	}
	if pos["R2"] > pos["R1"] {
		t.Errorf("pre-leased R2 should be serialized before R1: %v", ordered)
	}
}

// TestPostLeaseAblation verifies that disabling post-leases increases latency
// for pipelined conflicting routines (Fig 15a).
func TestPostLeaseAblation(t *testing.T) {
	bothOn := pipelineLatency(t, SchedTL, true, true)
	postOff := pipelineLatency(t, SchedTL, true, false)
	bothOff := pipelineLatency(t, SchedTL, false, false)

	if bothOn > postOff {
		// With post-leases a pipelined routine's locks free earlier.
		t.Errorf("latency with both leases (%v) should be <= post-lease off (%v)", bothOn, postOff)
	}
	if bothOn >= bothOff {
		t.Errorf("latency with both leases (%v) should be < both off (%v)", bothOn, bothOff)
	}
}

// TestJiTTTLPrioritizesStarvedRoutine exercises the anti-starvation TTL path.
func TestJiTTTLPrioritizesStarvedRoutine(t *testing.T) {
	opts := evOptions(SchedJiT, true, true)
	opts.JiTTTL = 5 * time.Second
	h := newTestHome(t, opts, homeDevices()...)
	// A stream of long routines on the coffee maker; a conflicting waiter
	// should eventually get prioritized rather than starve forever.
	for i := 0; i < 3; i++ {
		h.submitAt(time.Duration(i)*time.Second, routine.New(fmt.Sprintf("long-%d", i),
			routine.Command{Device: "coffee", Target: device.On, Duration: 2 * time.Minute},
			routine.Command{Device: "coffee", Target: device.Off}))
	}
	h.submitAt(1500*time.Millisecond, routine.New("starved",
		routine.Command{Device: "coffee", Target: device.On},
		routine.Command{Device: "coffee", Target: device.Off}))
	h.run()
	h.finishedAll()
	for _, res := range h.ctrl.Results() {
		if res.Status != StatusCommitted {
			t.Errorf("routine %s = %v, want committed", res.Routine.Name, res.Status)
		}
	}
}

// --- randomized serial-equivalence property ------------------------------------

// TestPropertyRandomWorkloadsAreSeriallyEquivalent submits randomized batches
// of conflicting routines (no failures) under every model except WV and every
// EV scheduler, and checks the end state is always serially equivalent and
// every routine commits.
func TestPropertyRandomWorkloadsAreSeriallyEquivalent(t *testing.T) {
	type config struct {
		name string
		opts Options
	}
	configs := []config{
		{"GSV", DefaultOptions(GSV)},
		{"PSV", DefaultOptions(PSV)},
		{"EV/TL", evOptions(SchedTL, true, true)},
		{"EV/FCFS", evOptions(SchedFCFS, true, true)},
		{"EV/JiT", evOptions(SchedJiT, true, true)},
		{"EV/TL-no-leases", evOptions(SchedTL, false, false)},
	}
	const trials = 25
	rng := stats.NewRNG(7)

	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				const nDev = 6
				h := newTestHome(t, cfg.opts, plugDevices(nDev)...)
				initial := h.fleet.Snapshot()
				nRoutines := 2 + rng.Intn(5)
				var all []*routine.Routine
				for i := 0; i < nRoutines; i++ {
					r := routine.New(fmt.Sprintf("r%d", i))
					nCmds := 1 + rng.Intn(4)
					for c := 0; c < nCmds; c++ {
						target := device.On
						if rng.Bool(0.5) {
							target = device.Off
						}
						var dur time.Duration
						if rng.Bool(0.2) {
							dur = time.Duration(1+rng.Intn(10)) * time.Second
						}
						r.Commands = append(r.Commands, routine.Command{
							Device:   device.ID(plugName(rng.Intn(nDev))),
							Target:   target,
							Duration: dur,
						})
					}
					all = append(all, r)
					h.submitAt(time.Duration(rng.Intn(2000))*time.Millisecond, r)
				}
				h.run()
				h.finishedAll()

				var committed []congruence.Writes
				for _, res := range h.ctrl.Results() {
					if res.Status != StatusCommitted {
						t.Fatalf("trial %d: routine %s = %v (%s); no failures were injected",
							trial, res.Routine.Name, res.Status, res.AbortReason)
					}
					committed = append(committed, congruence.FromRoutine(res.Routine))
				}
				check := congruence.Check(initial, committed, h.fleet.Snapshot())
				if !check.Congruent {
					t.Fatalf("trial %d (%s): end state not serially equivalent\nroutines: %v\nend: %v",
						trial, cfg.name, all, h.fleet.Snapshot())
				}
			}
		})
	}
}

// TestPropertyLineageInvariantsUnderRandomWorkloads runs random workloads with
// invariant checking enabled (the harness always enables it); reaching the end
// without a panic is the assertion.
func TestPropertyLineageInvariantsUnderRandomWorkloads(t *testing.T) {
	rng := stats.NewRNG(99)
	for _, k := range []SchedulerKind{SchedTL, SchedFCFS, SchedJiT} {
		t.Run(k.String(), func(t *testing.T) {
			for trial := 0; trial < 15; trial++ {
				h := newTestHome(t, evOptions(k, true, true), plugDevices(5)...)
				for i := 0; i < 6; i++ {
					r := routine.New(fmt.Sprintf("r%d", i))
					for c := 0; c < 1+rng.Intn(3); c++ {
						r.Commands = append(r.Commands, routine.Command{
							Device: device.ID(plugName(rng.Intn(5))),
							Target: device.On,
						})
					}
					h.submitAt(time.Duration(rng.Intn(500))*time.Millisecond, r)
				}
				// Sprinkle a failure/restart pair on a random device.
				victim := device.ID(plugName(rng.Intn(5)))
				h.failAt(time.Duration(rng.Intn(400))*time.Millisecond, victim)
				h.restoreAt(time.Duration(500+rng.Intn(400))*time.Millisecond, victim)
				h.run()
				h.finishedAll()
			}
		})
	}
}

package visibility

import (
	"fmt"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
)

// wvController implements Weak Visibility — today's status quo (§2.1). Every
// routine starts immediately upon submission and executes its commands
// back-to-back with no locking, no isolation and no atomicity: commands to
// failed devices are silently skipped and the routine always "completes".
// Failure and restart events are observed (for the event log) but have no
// effect on execution.
type wvController struct {
	base
	runs map[routine.ID]*wvRun
}

type wvRun struct {
	res *Result
	r   *routine.Routine
	idx int
}

func newWV(env Env, initial map[device.ID]device.State, opts Options) *wvController {
	return &wvController{
		base: newBase(env, initial, opts),
		runs: make(map[routine.ID]*wvRun),
	}
}

func (c *wvController) Model() Model { return WV }

func (c *wvController) Submit(r *routine.Routine) routine.ID {
	res, cp := c.assign(r)
	run := &wvRun{res: res, r: cp}
	c.runs[cp.ID] = run
	c.markStarted(res)
	c.step(run)
	return cp.ID
}

func (c *wvController) step(run *wvRun) {
	if run.idx >= len(run.r.Commands) {
		// WV always reports success, regardless of failed commands: there is
		// no atomicity to enforce.
		c.markCommitted(run.res)
		c.applyCommit(run.r)
		c.serial = append(c.serial, order.RoutineNode(run.res.ID))
		return
	}
	cmd := run.r.Commands[run.idx]
	if !c.conditionMet(cmd) {
		run.res.Skipped++
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandSkipped, Routine: run.res.ID, Device: cmd.Device})
		run.idx++
		c.step(run)
		return
	}
	idx := run.idx
	c.env.Exec(run.res.ID, cmd, c.opts.hold(cmd), func(err error) {
		c.commandDone(run, idx, err)
	})
}

func (c *wvController) commandDone(run *wvRun, idx int, err error) {
	cmd := run.r.Commands[idx]
	if err != nil {
		run.res.BestEffortFailures++
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandFailed, Routine: run.res.ID,
			Device: cmd.Device, Detail: fmt.Sprintf("skipped: %v", err)})
	} else {
		run.res.Executed++
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandExecuted, Routine: run.res.ID,
			Device: cmd.Device, State: cmd.Target})
	}
	run.idx++
	c.step(run)
}

func (c *wvController) NotifyFailure(d device.ID) { c.failureDetected(d) }

func (c *wvController) NotifyRestart(d device.ID) { c.restartDetected(d) }

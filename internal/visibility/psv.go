package visibility

import (
	"fmt"
	"sort"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
)

// psvController implements Partitioned Strict Visibility (§2.1, §3).
// Non-conflicting routines run concurrently; conflicting routines serialize.
// A routine acquires the (virtual) locks of all its devices before starting
// and holds them until it finishes — there is no leasing.
//
// Failure serialization follows the EV rules with case 3 replaced by 3*: a
// failure of a touched device can only be serialized after the routine if the
// device has recovered by the routine's finish point. Consequently PSV
// evaluates failures at the finish point, which is why its rollback overhead
// is higher than EV's (§7.4).
type psvController struct {
	base
	locks map[device.ID]routine.ID
	waitQ []*psvRun
	runs  map[routine.ID]*psvRun
}

type psvRun struct {
	res *Result
	r   *routine.Routine
	idx int

	executed []cmdRecord
	inflight *cmdRecord

	firstTouched  map[device.ID]bool
	lastTouchDone map[device.ID]bool
	// suspect marks touched devices whose failure was detected at a point
	// that cannot be serialized before the routine; doomedEarly marks devices
	// whose failure hit strictly between (or during) this routine's commands.
	suspect     map[device.ID]bool
	doomedEarly map[device.ID]bool
}

func newPSV(env Env, initial map[device.ID]device.State, opts Options) *psvController {
	return &psvController{
		base:  newBase(env, initial, opts),
		locks: make(map[device.ID]routine.ID),
		runs:  make(map[routine.ID]*psvRun),
	}
}

func (c *psvController) Model() Model { return PSV }

func (c *psvController) Submit(r *routine.Routine) routine.ID {
	res, cp := c.assign(r)
	run := &psvRun{
		res:           res,
		r:             cp,
		firstTouched:  make(map[device.ID]bool),
		lastTouchDone: make(map[device.ID]bool),
		suspect:       make(map[device.ID]bool),
		doomedEarly:   make(map[device.ID]bool),
	}
	c.runs[cp.ID] = run
	c.waitQ = append(c.waitQ, run)
	c.tryStart()
	return cp.ID
}

// tryStart begins every waiting routine whose devices are all unlocked,
// scanning in arrival order.
func (c *psvController) tryStart() {
	for {
		started := false
		for i, run := range c.waitQ {
			if !c.allFree(run.r) {
				continue
			}
			for _, d := range run.r.Devices() {
				c.locks[d] = run.res.ID
			}
			c.waitQ = append(c.waitQ[:i], c.waitQ[i+1:]...)
			c.markStarted(run.res)
			c.step(run)
			started = true
			break
		}
		if !started {
			return
		}
	}
}

func (c *psvController) allFree(r *routine.Routine) bool {
	for _, d := range r.Devices() {
		if holder, locked := c.locks[d]; locked && holder != routine.None {
			return false
		}
	}
	return true
}

func (c *psvController) unlock(run *psvRun) {
	for _, d := range run.r.Devices() {
		if c.locks[d] == run.res.ID {
			delete(c.locks, d)
		}
	}
}

func (c *psvController) step(run *psvRun) {
	if run.res.Status.Finished() {
		return
	}
	if run.idx >= len(run.r.Commands) {
		c.finish(run)
		return
	}
	cmd := run.r.Commands[run.idx]
	if !c.conditionMet(cmd) {
		run.res.Skipped++
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandSkipped, Routine: run.res.ID, Device: cmd.Device})
		c.noteTouchBoundary(run, run.idx)
		run.idx++
		c.step(run)
		return
	}
	idx := run.idx
	run.inflight = &cmdRecord{idx: idx, dev: cmd.Device, target: cmd.Target, prior: c.committed[cmd.Device]}
	c.env.Exec(run.res.ID, cmd, c.opts.hold(cmd), func(err error) {
		c.commandDone(run, idx, err)
	})
}

func (c *psvController) commandDone(run *psvRun, idx int, err error) {
	if run.res.Status.Finished() {
		return
	}
	cmd := run.r.Commands[idx]
	rec := run.inflight
	run.inflight = nil
	if err != nil {
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandFailed, Routine: run.res.ID,
			Device: cmd.Device, Detail: err.Error()})
		if cmd.Must() {
			c.abort(run, fmt.Sprintf("must command on %s failed: %v", cmd.Device, err))
			return
		}
		run.res.BestEffortFailures++
	} else {
		run.res.Executed++
		if rec != nil {
			run.executed = append(run.executed, *rec)
		}
		run.firstTouched[cmd.Device] = true
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandExecuted, Routine: run.res.ID,
			Device: cmd.Device, State: cmd.Target})
	}
	c.noteTouchBoundary(run, idx)
	run.idx++
	c.step(run)
}

func (c *psvController) noteTouchBoundary(run *psvRun, idx int) {
	d := run.r.Commands[idx].Device
	if idx == run.r.LastIndexOn(d) {
		run.lastTouchDone[d] = true
	}
}

// finish is the routine's finish point: PSV's failure rule 3* is evaluated
// here — the routine commits only if every touched device that failed has
// recovered, and no failure hit in the middle of its accesses.
func (c *psvController) finish(run *psvRun) {
	var bad []string
	for _, d := range run.r.Devices() {
		switch {
		case run.doomedEarly[d]:
			bad = append(bad, fmt.Sprintf("%s failed between accesses", d))
		case run.suspect[d] && c.failed[d]:
			bad = append(bad, fmt.Sprintf("%s still failed at finish point", d))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		c.abort(run, fmt.Sprintf("finish-point check: %v", bad))
		return
	}
	c.markCommitted(run.res)
	c.applyCommit(run.r)
	c.serial = append(c.serial, order.RoutineNode(run.res.ID))
	c.unlock(run)
	c.tryStart()
}

func (c *psvController) abort(run *psvRun, reason string) {
	if run.res.Status.Finished() {
		return
	}
	c.markAborted(run.res, reason)

	records := append([]cmdRecord(nil), run.executed...)
	if run.inflight != nil {
		records = append(records, *run.inflight)
		run.inflight = nil
	}
	restored := make(map[device.ID]bool)
	for i := len(records) - 1; i >= 0; i-- {
		rec := records[i]
		run.res.RolledBack++
		if restored[rec.dev] {
			continue
		}
		restored[rec.dev] = true
		if rec.prior == device.StateUnknown {
			continue
		}
		c.emit(Event{Time: c.env.Now(), Kind: EvRolledBack, Routine: run.res.ID, Device: rec.dev, State: rec.prior})
		c.env.Exec(run.res.ID, routine.Command{Device: rec.dev, Target: rec.prior}, c.opts.DefaultShort, func(error) {})
	}

	c.unlock(run)
	c.tryStart()
}

func (c *psvController) NotifyFailure(d device.ID) {
	c.failureDetected(d)
	for _, id := range c.submitted {
		run := c.runs[id]
		if run.res.Status != StatusRunning || !run.r.Touches(d) {
			continue
		}
		switch {
		case run.lastTouchDone[d]:
			// Failure after the routine's last touch of d: commit is still
			// possible if d recovers by the finish point (rule 3*).
			run.suspect[d] = true
		case run.firstTouched[d] || (run.inflight != nil && run.inflight.dev == d):
			// Failure in the middle of this routine's accesses to d: cannot be
			// serialized before or after the routine; it must abort (decided
			// at the finish point, in PSV style).
			run.doomedEarly[d] = true
		default:
			// Not touched yet: if d restarts before the routine's first
			// command on d, the failure serializes before the routine;
			// otherwise that command will fail and abort the routine.
		}
	}
}

func (c *psvController) NotifyRestart(d device.ID) {
	c.restartDetected(d)
}

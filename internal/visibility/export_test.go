package visibility

import (
	"fmt"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/sim"
)

func exportHarness(t *testing.T, model Model, plugs int) (*sim.Sim, *device.Fleet, Controller) {
	t.Helper()
	reg := device.Plugs(plugs)
	fleet := device.NewFleet(reg)
	s := sim.NewAtEpoch()
	ctrl := New(NewSimEnv(s, fleet), fleet.Snapshot(), DefaultOptions(model))
	return s, fleet, ctrl
}

func benchRoutine(name string, plug int) *routine.Routine {
	return routine.New(name, routine.Command{
		Device:   device.ID(fmt.Sprintf("plug-%d", plug)),
		Target:   device.On,
		Duration: time.Minute,
	})
}

// assertExportMatches cross-checks an export against the controller's direct
// (loop-side) query methods.
func assertExportMatches(t *testing.T, ctrl Controller, ex *StateExport) {
	t.Helper()
	direct := ctrl.Results()
	if ex.Routines != len(direct) || ex.Results.Len() != len(direct) {
		t.Fatalf("export routines = %d / results len %d, controller has %d",
			ex.Routines, ex.Results.Len(), len(direct))
	}
	exported := ex.Results.AppendTo(nil)
	for i := range direct {
		if exported[i].ID != direct[i].ID || exported[i].Status != direct[i].Status ||
			exported[i].Executed != direct[i].Executed || exported[i].Finished != direct[i].Finished {
			t.Fatalf("result %d: export %+v != direct %+v", i, exported[i], direct[i])
		}
		if got := ex.Results.At(i); got.ID != direct[i].ID || got.Status != direct[i].Status {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, direct[i])
		}
	}
	if ex.Pending != ctrl.PendingCount() || ex.Active != ctrl.ActiveCount() {
		t.Fatalf("export counts pending=%d active=%d, controller %d/%d",
			ex.Pending, ex.Active, ctrl.PendingCount(), ctrl.ActiveCount())
	}
	states := ctrl.CommittedStates()
	got := ex.Committed.AppendTo(nil)
	if len(got) != len(states) {
		t.Fatalf("export committed has %d devices, controller %d (%v vs %v)", len(got), len(states), got, states)
	}
	for d, st := range states {
		if got[d] != st {
			t.Fatalf("committed[%s] = %q in export, %q in controller", d, got[d], st)
		}
		if one, ok := ex.Committed.Get(d); !ok || one != st {
			t.Fatalf("Committed.Get(%s) = %q,%v, want %q", d, one, ok, st)
		}
	}
}

func TestExportTracksControllerAcrossModels(t *testing.T) {
	for _, model := range Models {
		t.Run(model.String(), func(t *testing.T) {
			s, _, ctrl := exportHarness(t, model, 4)
			assertExportMatches(t, ctrl, ctrl.Export())

			// Spread enough routines to cross a results-chunk boundary, with
			// exports cut at ragged points in between.
			for i := 0; i < 3*resultChunkSize/2; i++ {
				ctrl.Submit(benchRoutine(fmt.Sprintf("r-%d", i), i%4))
				s.Run()
				if i%17 == 0 {
					assertExportMatches(t, ctrl, ctrl.Export())
				}
			}
			assertExportMatches(t, ctrl, ctrl.Export())
		})
	}
}

func TestExportIsImmutableAfterLaterMutations(t *testing.T) {
	s, _, ctrl := exportHarness(t, EV, 4)
	ctrl.Submit(benchRoutine("first", 0))
	s.Run()
	old := ctrl.Export()
	oldResults := old.Results.AppendTo(nil)
	oldStates := old.Committed.AppendTo(nil)

	for i := 0; i < 2*resultChunkSize; i++ {
		ctrl.Submit(benchRoutine(fmt.Sprintf("later-%d", i), 1+i%3))
		s.Run()
		ctrl.Export()
	}

	if old.Results.Len() != 1 || old.Routines != 1 {
		t.Fatalf("old export grew: %d results", old.Results.Len())
	}
	again := old.Results.AppendTo(nil)
	for i := range oldResults {
		if again[i] != oldResults[i] {
			t.Fatalf("old export result %d changed: %+v -> %+v", i, oldResults[i], again[i])
		}
	}
	for d, st := range old.Committed.AppendTo(nil) {
		if oldStates[d] != st {
			t.Fatalf("old export committed[%s] changed: %q -> %q", d, oldStates[d], st)
		}
	}
}

func TestExportSharesFinalChunksAndSkipsOverlay(t *testing.T) {
	s, _, ctrl := exportHarness(t, EV, 4)
	for i := 0; i < 2*resultChunkSize; i++ {
		ctrl.Submit(benchRoutine(fmt.Sprintf("r-%d", i), i%4))
		s.Run()
	}
	a := ctrl.Export()
	ctrl.Submit(benchRoutine("one-more", 0))
	s.Run()
	b := ctrl.Export()

	// Finished outcomes are write-once: consecutive exports share the same
	// chunk pointers, nothing is re-copied.
	for ci := range a.Results.chunks {
		if a.Results.chunks[ci] != b.Results.chunks[ci] {
			t.Fatalf("final chunk %d was re-copied between exports", ci)
		}
	}
	// Nothing was open at either export, so neither carries an overlay.
	if len(a.Results.overlay) != 0 || len(b.Results.overlay) != 0 {
		t.Fatalf("overlays = %d/%d entries, want empty (no open routines)",
			len(a.Results.overlay), len(b.Results.overlay))
	}
}

func TestExportOverlayCarriesOpenRoutines(t *testing.T) {
	// A paced-style setup where nothing drains: submitted routines stay open,
	// so exports must carry them in the overlay and later exports must not
	// have their (still-unwritten) final slots observed.
	reg := device.Plugs(2)
	fleet := device.NewFleet(reg)
	s := sim.NewAtEpoch()
	ctrl := New(NewSimEnv(s, fleet), fleet.Snapshot(), DefaultOptions(EV))

	ctrl.Submit(benchRoutine("open-1", 0))
	ctrl.Submit(benchRoutine("open-2", 1))
	ex := ctrl.Export()
	if len(ex.Results.overlay) != 2 {
		t.Fatalf("overlay has %d entries, want 2 open routines", len(ex.Results.overlay))
	}
	for i := 0; i < ex.Results.Len(); i++ {
		if res := ex.Results.At(i); res.Status.Finished() {
			t.Fatalf("open routine %d reads as finished: %+v", i+1, res)
		}
	}
	// Drain and re-export: the overlay empties, the slots become final.
	s.Run()
	ex2 := ctrl.Export()
	if len(ex2.Results.overlay) != 0 {
		t.Fatalf("overlay still has %d entries after drain", len(ex2.Results.overlay))
	}
	assertExportMatches(t, ctrl, ex2)
	// The old export still reports them open (immutability).
	if res := ex.Results.At(0); res.Status.Finished() {
		t.Fatalf("old export's routine 1 mutated to %v", res.Status)
	}
}

func TestExportUnchangedCommittedIsShared(t *testing.T) {
	_, _, ctrl := exportHarness(t, EV, 4)
	a := ctrl.Export()
	b := ctrl.Export()
	if len(a.Committed.chunks) > 0 && a.Committed.chunks[0] != b.Committed.chunks[0] {
		t.Fatal("committed chunk re-copied with no state change in between")
	}
	if a.Committed.Len() != 4 {
		t.Fatalf("initial committed export has %d devices, want 4", a.Committed.Len())
	}
}

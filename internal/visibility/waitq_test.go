package visibility

// Regression tests for the scheduler wait queue: finished (done/aborted) and
// dequeued entries must be compacted out by the schedulers' single-pass
// scans, so a long-lived controller under submit/commit churn keeps a small
// queue instead of accumulating stale entries (the old splice-per-restart
// loop removed entries but cost O(n²) per scan; a naive mark-only queue
// would leak). See ISSUE 2, satellite "done-entry leak window".

import (
	"fmt"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// churnWaitQueue drives many rounds of conflicting submissions through a
// long-lived controller and watches the wait queue between rounds.
func churnWaitQueue(t *testing.T, kind SchedulerKind) {
	t.Helper()
	opts := DefaultOptions(EV)
	opts.Scheduler = kind
	h := newTestHome(t, opts, homeDevices()...)
	ctrl, ok := h.ctrl.(*evController)
	if !ok {
		t.Fatalf("EV options produced %T", h.ctrl)
	}

	const rounds = 40
	const perRound = 15
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRound; i++ {
			// Everyone fights over the same two devices so most submissions
			// wait in the queue before starting.
			r := routine.New(fmt.Sprintf("churn-%d-%d", round, i),
				routine.Command{Device: "coffee", Target: device.On, Duration: time.Minute},
				routine.Command{Device: "pancake", Target: device.On, Duration: time.Minute},
			)
			h.submitAt(time.Duration(round)*time.Hour+time.Duration(i)*time.Second, r)
		}
	}
	h.run()
	h.finishedAll()

	if got := len(ctrl.waitQ); got != 0 {
		t.Fatalf("%v: wait queue holds %d entries after full drain", kind, got)
	}
	// The queue's backing array must stay bounded by the burst size, not
	// grow with the total number of routines ever submitted.
	if got := cap(ctrl.waitQ); got > 4*perRound {
		t.Fatalf("%v: wait queue capacity grew to %d after %d routines (leak)",
			kind, got, rounds*perRound)
	}
}

func TestWaitQueueDoesNotLeakUnderChurnJiT(t *testing.T)  { churnWaitQueue(t, SchedJiT) }
func TestWaitQueueDoesNotLeakUnderChurnFCFS(t *testing.T) { churnWaitQueue(t, SchedFCFS) }

// TestWaitQueueCompactsDoneEntries pins the specific leak window: a routine
// that aborts while queued is only mark-dequeued; the next scheduler scan
// must physically drop it so the queue slice does not retain the run.
func TestWaitQueueCompactsDoneEntries(t *testing.T) {
	opts := DefaultOptions(EV)
	opts.Scheduler = SchedFCFS
	h := newTestHome(t, opts, homeDevices()...)
	ctrl := h.ctrl.(*evController)

	// A long-running holder keeps the device busy so followers queue up.
	h.submitAt(0, dishwashRoutine(30*time.Minute))
	for i := 0; i < 5; i++ {
		h.submitAt(time.Duration(i+1)*time.Second, dishwashRoutine(time.Minute))
	}
	// The device fails mid-run: queued followers that never touched it keep
	// waiting; the holder aborts. After the restart everything drains.
	h.failAt(2*time.Minute, "dishwasher")
	h.restoreAt(4*time.Minute, "dishwasher")
	h.run()
	h.finishedAll()
	if got := len(ctrl.waitQ); got != 0 {
		t.Fatalf("wait queue holds %d stale entries after drain", got)
	}
}

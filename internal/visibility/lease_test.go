package visibility

// Tests for lock-lease revocation (§4.1) and lineage-table hygiene after
// commits and aborts.

import (
	"strings"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/lineage"
	"safehome/internal/routine"
)

// TestPreLeaseRevocationAbortsSlowDestination builds the starvation case the
// revocation timeout exists for: a routine is pre-leased a lock, gets stuck
// behind an unrelated long routine in the middle of its span, and the lease
// source ends up waiting. Once the source is blocked and the destination has
// exceeded its estimated span, the lease is revoked and the destination
// aborts; everything else commits.
func TestPreLeaseRevocationAbortsSlowDestination(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)

	// R1 occupies the coffee maker for 10 minutes.
	blocker := routine.New("blocker",
		routine.Command{Device: "coffee", Target: device.On, Duration: 10 * time.Minute},
		routine.Command{Device: "coffee", Target: device.Off})
	// R2 runs the dishwasher for 5 minutes and then needs light-1.
	long := routine.New("chores",
		routine.Command{Device: "dishwasher", Target: device.On, Duration: 5 * time.Minute},
		routine.Command{Device: "dishwasher", Target: device.Off},
		routine.Command{Device: "light-1", Target: device.On})
	// R3 takes light-1 (pre-leased from R2, whose access is far in the
	// future), then blocks on the coffee maker, stretching its hold on
	// light-1 way past the estimate.
	slow := routine.New("slow-guest",
		routine.Command{Device: "light-1", Target: device.On},
		routine.Command{Device: "coffee", Target: device.On},
		routine.Command{Device: "light-1", Target: device.Off})

	h.submitAt(0, blocker)
	h.submitAt(10*time.Millisecond, long)
	h.submitAt(20*time.Millisecond, slow)
	h.run()
	h.finishedAll()

	h.wantStatus(1, StatusCommitted)
	h.wantStatus(2, StatusCommitted)
	h.wantStatus(3, StatusAborted)
	if reason := h.result(3).AbortReason; !strings.Contains(reason, "revoked") {
		t.Errorf("slow guest abort reason = %q, want a lease revocation", reason)
	}
	// The revocation let the chores routine finish with its light.
	h.wantState("light-1", device.On)
	if !h.endStateSeriallyEquivalent(map[device.ID]device.State{
		"coffee": device.Off, "dishwasher": device.Off, "light-1": device.Off,
	}) {
		t.Errorf("end state not serially equivalent: %v", h.fleet.Snapshot())
	}
}

// TestNoRevocationWhenNobodyWaits checks the flip side: a pre-leased routine
// that exceeds its estimate but blocks no one keeps its lease and commits.
func TestNoRevocationWhenNobodyWaits(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)

	// R1 will touch light-1 only at the very end of a long run.
	long := routine.New("chores",
		routine.Command{Device: "dishwasher", Target: device.On, Duration: 30 * time.Minute},
		routine.Command{Device: "dishwasher", Target: device.Off},
		routine.Command{Device: "light-1", Target: device.On})
	// R2 is pre-leased light-1 and stretches (blocked on the coffee maker held
	// by R3 for 2 minutes) — but R1 does not need light-1 for 30 minutes, so
	// no revocation should fire.
	slow := routine.New("slow-guest",
		routine.Command{Device: "light-1", Target: device.On},
		routine.Command{Device: "coffee", Target: device.On},
		routine.Command{Device: "light-1", Target: device.Off})
	blocker := routine.New("short-blocker",
		routine.Command{Device: "coffee", Target: device.On, Duration: 2 * time.Minute},
		routine.Command{Device: "coffee", Target: device.Off})

	h.submitAt(0, long)
	h.submitAt(time.Millisecond, blocker)
	h.submitAt(2*time.Millisecond, slow)
	h.run()
	h.finishedAll()
	for id := routine.ID(1); id <= 3; id++ {
		h.wantStatus(id, StatusCommitted)
	}
}

// TestLineageTableEmptyAfterAllCommits checks commit compaction leaves no
// stale lock-accesses behind once every routine has finished.
func TestLineageTableEmptyAfterAllCommits(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	h.submitAt(0, breakfastRoutine("user-1"))
	h.submitAt(0, breakfastRoutine("user-2"))
	h.submitAt(time.Second, coolingRoutine())
	h.submitAt(2*time.Second, leaveHomeRoutine())
	h.run()
	h.finishedAll()

	ev := h.ctrl.(*evController)
	for _, d := range ev.Table().Devices() {
		if accs := ev.Table().Lineage(d).Accesses; len(accs) != 0 {
			t.Errorf("device %s still has %d lock-accesses after all routines finished: %v", d, len(accs), accs)
		}
	}
	// Committed states reflect the last writes.
	if got := ev.Table().Committed("door"); got != device.Locked {
		t.Errorf("committed door state = %q, want LOCKED", got)
	}
}

// TestLineageTableCleanAfterAbort checks an aborted routine leaves no
// lock-accesses or graph residue that would block later routines.
func TestLineageTableCleanAfterAbort(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	h.failAt(0, "ac")
	h.submitAt(10*time.Millisecond, coolingRoutine()) // aborts: ac is dead
	h.submitAt(20*time.Millisecond, routine.New("window-only",
		routine.Command{Device: "window", Target: device.Closed}))
	h.run()
	h.finishedAll()

	h.wantStatus(1, StatusAborted)
	h.wantStatus(2, StatusCommitted)
	ev := h.ctrl.(*evController)
	for _, d := range ev.Table().Devices() {
		for _, acc := range ev.Table().Lineage(d).Accesses {
			if acc.Routine == 1 {
				t.Errorf("aborted routine still present in %s lineage: %v", d, acc)
			}
		}
	}
	// The aborted routine must not appear in the serialization order (§3).
	for _, n := range h.ctrl.Serialization() {
		if n.String() == "R1" {
			t.Errorf("aborted routine appears in serialization order: %v", h.ctrl.Serialization())
		}
	}
}

// TestPostLeaseBlockedByDirtyRead verifies the §4.1 restriction: a routine
// that wrote a device does not hand the lock early to a successor that reads
// the device through a condition.
func TestPostLeaseBlockedByDirtyRead(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	// R1 closes the window, then runs the dishwasher for 10 minutes.
	writer := routine.New("close-and-wash",
		routine.Command{Device: "window", Target: device.Closed},
		routine.Command{Device: "dishwasher", Target: device.On, Duration: 10 * time.Minute},
		routine.Command{Device: "dishwasher", Target: device.Off})
	// R2 turns the AC on only if the window is closed — it reads the window.
	reader := routine.New("ac-if-closed",
		routine.Command{Device: "window", Target: device.Closed},
		routine.Command{
			Device: "ac", Target: device.On,
			Condition: &routine.Condition{Device: "window", Equals: device.Closed},
		})

	h.submitAt(0, writer)
	h.submitAt(time.Millisecond, reader)
	h.run()
	h.finishedAll()

	// The reader must wait for the writer to finish (no early hand-off of the
	// window lock), so its latency includes the 10-minute dishwasher cycle.
	if got := h.result(2).Latency(); got < 9*time.Minute {
		t.Errorf("reader latency = %v; dirty-read rule should delay it past the writer's finish", got)
	}
	h.wantStatus(2, StatusCommitted)
	h.wantState("ac", device.On)
}

// TestAccessStatusLifecycle spot-checks the Scheduled→Acquired→Released
// transitions through the controller's own lineage table.
func TestAccessStatusLifecycle(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	ev := h.ctrl.(*evController)

	h.submitAt(0, dishwashRoutine(10*time.Minute))
	h.sim.After(time.Minute, func() {
		st, ok := ev.Table().Status("dishwasher", 1)
		if !ok || st != lineage.Acquired {
			t.Errorf("mid-run dishwasher access status = %v (%v), want Acquired", st, ok)
		}
	})
	h.run()
	if got := len(ev.Table().Lineage("dishwasher").Accesses); got != 0 {
		t.Errorf("dishwasher lineage should be compacted after commit, has %d accesses", got)
	}
}

package visibility

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
	"safehome/internal/stats"
)

func TestParseModelAndScheduler(t *testing.T) {
	cases := map[string]Model{"wv": WV, "GSV": GSV, "s-gsv": SGSV, "psv": PSV, "Eventual": EV}
	for in, want := range cases {
		got, err := ParseModel(in)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseModel("nope"); err == nil {
		t.Error("ParseModel(nope) should fail")
	}
	scheds := map[string]SchedulerKind{"fcfs": SchedFCFS, "JiT": SchedJiT, "timeline": SchedTL}
	for in, want := range scheds {
		got, err := ParseScheduler(in)
		if err != nil || got != want {
			t.Errorf("ParseScheduler(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScheduler("nope"); err == nil {
		t.Error("ParseScheduler(nope) should fail")
	}
}

func TestModelStrings(t *testing.T) {
	for _, m := range Models {
		if m.String() == "" || len(m.String()) > 6 {
			t.Errorf("Model %d has odd String %q", int(m), m.String())
		}
	}
	if EV.String() != "EV" || SGSV.String() != "S-GSV" {
		t.Errorf("unexpected model names: %s %s", EV, SGSV)
	}
}

// --- single-routine sanity across every model --------------------------------

func TestSingleRoutineCompletesUnderEveryModel(t *testing.T) {
	for _, m := range Models {
		for _, sched := range []SchedulerKind{SchedTL, SchedFCFS, SchedJiT} {
			if m != EV && sched != SchedTL {
				continue // scheduler only matters for EV
			}
			opts := DefaultOptions(m)
			opts.Scheduler = sched
			name := m.String() + "/" + sched.String()
			t.Run(name, func(t *testing.T) {
				h := newTestHome(t, opts, homeDevices()...)
				h.submitAt(0, coolingRoutine())
				h.run()
				h.wantStatus(1, StatusCommitted)
				h.wantState("window", device.Closed)
				h.wantState("ac", device.On)
				res := h.result(1)
				if res.Executed != 2 {
					t.Errorf("Executed = %d, want 2", res.Executed)
				}
				if res.Latency() <= 0 {
					t.Errorf("latency = %v, want > 0", res.Latency())
				}
				if got := h.ctrl.CommittedStates()["ac"]; got != device.On {
					t.Errorf("committed ac state = %q, want ON", got)
				}
			})
		}
	}
}

// --- GSV: one routine at a time ----------------------------------------------

func TestGSVSerializesEverything(t *testing.T) {
	h := newTestHome(t, DefaultOptions(GSV), homeDevices()...)
	h.submitAt(0, dishwashRoutine(40*time.Minute))
	h.submitAt(0, dryerRoutine(20*time.Minute))
	elapsed := h.run()

	h.wantStatus(1, StatusCommitted)
	h.wantStatus(2, StatusCommitted)
	// Disjoint devices, but GSV still serializes: total time is at least the
	// sum of both run times (~60 minutes).
	if elapsed < 60*time.Minute {
		t.Errorf("GSV elapsed = %v, want >= 60m (serial execution)", elapsed)
	}
	// The dryer routine waits for the dishwasher routine to finish.
	if got := h.result(2).Latency(); got < 60*time.Minute {
		t.Errorf("dryer routine latency = %v, want >= 60m under GSV", got)
	}
}

func TestPSVRunsDisjointRoutinesConcurrently(t *testing.T) {
	h := newTestHome(t, DefaultOptions(PSV), homeDevices()...)
	h.submitAt(0, dishwashRoutine(40*time.Minute))
	h.submitAt(0, dryerRoutine(20*time.Minute))
	elapsed := h.run()

	h.wantStatus(1, StatusCommitted)
	h.wantStatus(2, StatusCommitted)
	// PSV overlaps the two non-conflicting routines: ~40 minutes total.
	if elapsed > 45*time.Minute {
		t.Errorf("PSV elapsed = %v, want ~40m (concurrent execution)", elapsed)
	}
	if got := h.result(2).Latency(); got > 25*time.Minute {
		t.Errorf("dryer latency = %v, want ~20m under PSV", got)
	}
}

func TestPSVSerializesConflictingRoutines(t *testing.T) {
	h := newTestHome(t, DefaultOptions(PSV), homeDevices()...)
	h.submitAt(0, breakfastRoutine("user-1"))
	h.submitAt(0, breakfastRoutine("user-2"))
	elapsed := h.run()

	h.wantStatus(1, StatusCommitted)
	h.wantStatus(2, StatusCommitted)
	// Both routines touch coffee and pancake: PSV runs them back-to-back
	// (~18 minutes), like GSV would.
	if elapsed < 18*time.Minute {
		t.Errorf("PSV elapsed = %v, want >= 18m for conflicting routines", elapsed)
	}
}

// --- EV: pipelining of conflicting routines (the breakfast example) ----------

func TestEVPipelinesConflictingRoutines(t *testing.T) {
	run := func(m Model) time.Duration {
		h := newTestHome(t, DefaultOptions(m), homeDevices()...)
		h.submitAt(0, breakfastRoutine("user-1"))
		h.submitAt(0, breakfastRoutine("user-2"))
		elapsed := h.run()
		h.wantStatus(1, StatusCommitted)
		h.wantStatus(2, StatusCommitted)
		h.wantState("coffee", device.Off)
		h.wantState("pancake", device.Off)
		return elapsed
	}
	evTime := run(EV)
	gsvTime := run(GSV)

	// EV pipelines the two breakfasts (one user's pancakes overlap the other
	// user's coffee): ~14 minutes vs ~18 minutes serial.
	if evTime >= gsvTime {
		t.Errorf("EV elapsed %v should beat GSV elapsed %v", evTime, gsvTime)
	}
	if evTime > 15*time.Minute {
		t.Errorf("EV elapsed = %v, want ~14m (pipelined)", evTime)
	}
	if gsvTime < 18*time.Minute {
		t.Errorf("GSV elapsed = %v, want >= 18m (serialized)", gsvTime)
	}
}

func TestEVEndStateSeriallyEquivalent(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	initial := h.fleet.Snapshot()
	h.submitAt(0, coolingRoutine())
	h.submitAt(10*time.Millisecond, routine.New("warm",
		routine.Command{Device: "window", Target: device.Open},
		routine.Command{Device: "ac", Target: device.Off}))
	h.submitAt(20*time.Millisecond, routine.New("lights-on",
		routine.Command{Device: "light-1", Target: device.On},
		routine.Command{Device: "light-2", Target: device.On}))
	h.run()
	h.finishedAll()
	if !h.endStateSeriallyEquivalent(initial) {
		t.Fatalf("EV end state not serially equivalent:\n%v", h.fleet.Snapshot())
	}
}

// --- WV: fast but incongruent (Fig 1) ----------------------------------------

func TestWVProducesIncongruentEndStates(t *testing.T) {
	// Two conflicting routines (all ON vs all OFF) over 8 plugs, the second
	// starting shortly after the first, with jittery device latencies — the
	// Fig 1 experiment. WV must yield some incongruent end states across
	// trials; EV must yield none.
	const devices = 8
	const trials = 40
	incongruent := func(m Model) int {
		bad := 0
		rng := stats.NewRNG(42)
		for trial := 0; trial < trials; trial++ {
			h := newTestHome(t, DefaultOptions(m), plugDevices(devices)...)
			h.env.Jitter = func() time.Duration {
				return time.Duration(rng.Intn(80)) * time.Millisecond
			}
			initial := h.fleet.Snapshot()
			h.submitAt(0, allLightsRoutine("all-on", devices, device.On))
			h.submitAt(50*time.Millisecond, allLightsRoutine("all-off", devices, device.Off))
			h.run()
			h.finishedAll()
			if !h.endStateSeriallyEquivalent(initial) {
				bad++
			}
		}
		return bad
	}

	if badWV := incongruent(WV); badWV == 0 {
		t.Errorf("WV produced 0 incongruent end states over %d jittery trials; expected some", trials)
	}
	if badEV := incongruent(EV); badEV != 0 {
		t.Errorf("EV produced %d incongruent end states, want 0", badEV)
	}
}

func TestWVIsFastButIgnoresFailures(t *testing.T) {
	h := newTestHome(t, DefaultOptions(WV), homeDevices()...)
	h.failAt(0, "ac")
	h.submitAt(10*time.Millisecond, coolingRoutine())
	h.run()

	// WV always "completes", even though the AC command failed: the window is
	// closed but the AC stayed off — the incongruent outcome of §1.
	h.wantStatus(1, StatusCommitted)
	h.wantState("window", device.Closed)
	h.wantState("ac", device.Off)
	res := h.result(1)
	if res.Executed != 1 || res.BestEffortFailures != 1 {
		t.Errorf("WV executed=%d failures=%d, want 1 and 1", res.Executed, res.BestEffortFailures)
	}
}

// --- parallelism / active counts ----------------------------------------------

func TestActiveCountTracksConcurrency(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	h.submitAt(0, dishwashRoutine(10*time.Minute))
	h.submitAt(0, dryerRoutine(10*time.Minute))
	h.sim.After(time.Minute, func() {
		if got := h.ctrl.ActiveCount(); got != 2 {
			t.Errorf("ActiveCount after 1m = %d, want 2", got)
		}
		if got := h.ctrl.PendingCount(); got != 2 {
			t.Errorf("PendingCount after 1m = %d, want 2", got)
		}
	})
	h.run()
	if got := h.ctrl.ActiveCount(); got != 0 {
		t.Errorf("ActiveCount at end = %d, want 0", got)
	}
	if got := h.ctrl.PendingCount(); got != 0 {
		t.Errorf("PendingCount at end = %d, want 0", got)
	}
}

// --- serialization order -------------------------------------------------------

func TestSerializationContainsCommittedRoutines(t *testing.T) {
	for _, m := range Models {
		t.Run(m.String(), func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(m), homeDevices()...)
			h.submitAt(0, coolingRoutine())
			h.submitAt(5*time.Millisecond, leaveHomeRoutine())
			h.run()
			h.finishedAll()
			nodes := h.ctrl.Serialization()
			routines := 0
			for _, n := range nodes {
				if n.Kind == order.KindRoutine {
					routines++
				}
			}
			if routines != 2 {
				t.Errorf("%s serialization contains %d routines, want 2 (%v)", m, routines, nodes)
			}
		})
	}
}

// --- conditional commands ------------------------------------------------------

func TestConditionalCommandSkipped(t *testing.T) {
	for _, m := range []Model{WV, GSV, PSV, EV} {
		t.Run(m.String(), func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(m), homeDevices()...)
			// Turn the AC on only if the window is closed; the window starts open.
			r := routine.New("ac-if-closed",
				routine.Command{
					Device: "ac", Target: device.On,
					Condition: &routine.Condition{Device: "window", Equals: device.Closed},
				},
				routine.Command{Device: "light-1", Target: device.On},
			)
			h.submitAt(0, r)
			h.run()
			h.wantStatus(1, StatusCommitted)
			h.wantState("ac", device.Off)
			h.wantState("light-1", device.On)
			if got := h.result(1).Skipped; got != 1 {
				t.Errorf("Skipped = %d, want 1", got)
			}
		})
	}
}

func TestConditionalCommandExecutesWhenMet(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	r := routine.New("close-then-cool",
		routine.Command{Device: "window", Target: device.Closed},
		routine.Command{
			Device: "ac", Target: device.On,
			Condition: &routine.Condition{Device: "window", Equals: device.Closed},
		},
	)
	h.submitAt(0, r)
	h.run()
	h.wantStatus(1, StatusCommitted)
	h.wantState("ac", device.On)
	if got := h.result(1).Skipped; got != 0 {
		t.Errorf("Skipped = %d, want 0", got)
	}
}

package visibility

// Shared test scaffolding: a miniature smart home driven by the discrete
// event simulator, with helpers to submit routines, inject failures and
// restarts at chosen virtual times, and interrogate the end state.

import (
	"testing"
	"time"

	"safehome/internal/congruence"
	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/sim"
)

type testHome struct {
	t     *testing.T
	sim   *sim.Sim
	reg   *device.Registry
	fleet *device.Fleet
	env   *SimEnv
	ctrl  Controller

	events  []Event
	submits []*routine.Routine // in submission order (for congruence checks)
}

// newTestHome builds a home with the given devices and a controller with the
// given options. If opts.Observer is nil the harness records events itself.
func newTestHome(t *testing.T, opts Options, devices ...device.Info) *testHome {
	t.Helper()
	h := &testHome{t: t, sim: sim.NewAtEpoch(), reg: device.NewRegistry(devices...)}
	h.fleet = device.NewFleet(h.reg)
	h.env = NewSimEnv(h.sim, h.fleet)
	if opts.Observer == nil {
		opts.Observer = func(e Event) { h.events = append(h.events, e) }
	}
	opts.CheckInvariants = true
	h.ctrl = New(h.env, h.fleet.Snapshot(), opts)
	return h
}

// homeDevices is the default device set used by most controller tests.
func homeDevices() []device.Info {
	return []device.Info{
		{ID: "window", Kind: device.KindWindow, Initial: device.Open},
		{ID: "ac", Kind: device.KindAC, Initial: device.Off},
		{ID: "coffee", Kind: device.KindCoffeeMaker, Initial: device.Off},
		{ID: "pancake", Kind: device.KindPancake, Initial: device.Off},
		{ID: "light-1", Kind: device.KindLight, Initial: device.Off},
		{ID: "light-2", Kind: device.KindLight, Initial: device.Off},
		{ID: "door", Kind: device.KindDoorLock, Initial: device.Unlocked},
		{ID: "dryer", Kind: device.KindDryer, Initial: device.Off},
		{ID: "dishwasher", Kind: device.KindDishwasher, Initial: device.Off},
	}
}

// submitAt schedules a routine submission at virtual offset d from the epoch.
func (h *testHome) submitAt(d time.Duration, r *routine.Routine) {
	h.t.Helper()
	h.submits = append(h.submits, r)
	h.sim.After(d, func() { h.ctrl.Submit(r) })
}

// failAt injects a fail-stop failure of dev at virtual offset d: the fleet
// stops responding and the controller is notified (as the failure detector
// would).
func (h *testHome) failAt(d time.Duration, dev device.ID) {
	h.t.Helper()
	h.sim.After(d, func() {
		if err := h.fleet.Fail(dev); err != nil {
			h.t.Fatalf("fail %s: %v", dev, err)
		}
		h.ctrl.NotifyFailure(dev)
	})
}

// restoreAt injects a device restart at virtual offset d.
func (h *testHome) restoreAt(d time.Duration, dev device.ID) {
	h.t.Helper()
	h.sim.After(d, func() {
		if err := h.fleet.Restore(dev); err != nil {
			h.t.Fatalf("restore %s: %v", dev, err)
		}
		h.ctrl.NotifyRestart(dev)
	})
}

// run drains the simulation and returns total virtual time elapsed.
func (h *testHome) run() time.Duration {
	h.t.Helper()
	start := h.sim.Now()
	h.sim.Run()
	return h.sim.Now().Sub(start)
}

// result fetches the outcome of the n-th submitted routine (1-based ID).
func (h *testHome) result(id routine.ID) Result {
	h.t.Helper()
	res, ok := h.ctrl.Result(id)
	if !ok {
		h.t.Fatalf("no result for routine %d", id)
	}
	return res
}

// wantStatus asserts a routine's final status.
func (h *testHome) wantStatus(id routine.ID, want RoutineStatus) {
	h.t.Helper()
	if got := h.result(id).Status; got != want {
		h.t.Errorf("routine %d status = %v, want %v (reason %q)", id, got, want, h.result(id).AbortReason)
	}
}

// wantState asserts a device's ground-truth end state.
func (h *testHome) wantState(d device.ID, want device.State) {
	h.t.Helper()
	got, err := h.fleet.Status(d)
	if err != nil {
		// Failed devices keep their last physical state; State still reads it.
		got, _ = h.fleet.State(d)
	}
	if got != want {
		h.t.Errorf("device %s end state = %q, want %q", d, got, want)
	}
}

// endStateSeriallyEquivalent checks the home's end state against all
// committed routines using the congruence checker.
func (h *testHome) endStateSeriallyEquivalent(initial map[device.ID]device.State) bool {
	h.t.Helper()
	var committed []congruence.Writes
	for _, res := range h.ctrl.Results() {
		if res.Status == StatusCommitted {
			committed = append(committed, congruence.FromRoutine(res.Routine))
		}
	}
	return congruence.Check(initial, committed, h.fleet.Snapshot()).Congruent
}

// countEvents returns how many recorded events have the given kind.
func (h *testHome) countEvents(kind EventKind) int {
	n := 0
	for _, e := range h.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// finishedAll asserts every submitted routine reached a terminal state.
func (h *testHome) finishedAll() {
	h.t.Helper()
	for _, res := range h.ctrl.Results() {
		if !res.Status.Finished() {
			h.t.Errorf("routine %d (%s) did not finish: status %v", res.ID, res.Routine.Name, res.Status)
		}
	}
}

// --- canonical routines from the paper --------------------------------------

// coolingRoutine is Rcooling = {window:CLOSE; ac:ON} (§1).
func coolingRoutine() *routine.Routine {
	return routine.New("cooling",
		routine.Command{Device: "window", Target: device.Closed},
		routine.Command{Device: "ac", Target: device.On},
	)
}

// breakfastRoutine is Rbreakfast = {coffee 4 min; pancake 5 min} (§2.1).
func breakfastRoutine(name string) *routine.Routine {
	return routine.New(name,
		routine.Command{Device: "coffee", Target: device.On, Duration: 4 * time.Minute},
		routine.Command{Device: "coffee", Target: device.Off},
		routine.Command{Device: "pancake", Target: device.On, Duration: 5 * time.Minute},
		routine.Command{Device: "pancake", Target: device.Off},
	)
}

// leaveHomeRoutine is {lights:OFF (best-effort); door:LOCK (must)} (§2.2).
func leaveHomeRoutine() *routine.Routine {
	return routine.New("leave-home",
		routine.Command{Device: "light-1", Target: device.Off, BestEffort: true},
		routine.Command{Device: "light-2", Target: device.Off, BestEffort: true},
		routine.Command{Device: "door", Target: device.Locked},
	)
}

// dishwashRoutine and dryerRoutine are the GSV amperage example (§2.1).
func dishwashRoutine(d time.Duration) *routine.Routine {
	return routine.New("dishwash",
		routine.Command{Device: "dishwasher", Target: device.On, Duration: d},
		routine.Command{Device: "dishwasher", Target: device.Off},
	)
}

func dryerRoutine(d time.Duration) *routine.Routine {
	return routine.New("dryer",
		routine.Command{Device: "dryer", Target: device.On, Duration: d},
		routine.Command{Device: "dryer", Target: device.Off},
	)
}

// allLightsRoutine drives n plugs to the target state (the Fig 1 workload).
func allLightsRoutine(name string, n int, target device.State) *routine.Routine {
	r := routine.New(name)
	for i := 0; i < n; i++ {
		r.Commands = append(r.Commands, routine.Command{
			Device: device.ID(plugName(i)),
			Target: target,
		})
	}
	return r
}

func plugName(i int) string {
	return "plug-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func plugDevices(n int) []device.Info {
	out := make([]device.Info, n)
	for i := 0; i < n; i++ {
		out[i] = device.Info{ID: device.ID(plugName(i)), Kind: device.KindPlug, Initial: device.Off}
	}
	return out
}

package visibility

// Failure-handling tests: the failure/restart serialization rules of §3
// (Fig 3 and Table 2), must vs best-effort commands (§2.2), and abort
// rollbacks (§4.3).

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// The cooling routine has two short commands: window:CLOSE completes at
// ~100ms and ac:ON completes at ~200ms of virtual time (submission at t=0).
// The scenarios below place the window failure (and optional restart) at the
// six interesting instants of Fig 3 and assert the per-model verdicts from
// §3's worked example.

type failureCase struct {
	name      string
	failAt    time.Duration
	restartAt time.Duration // zero = no restart
	submitAt  time.Duration
	want      map[Model]RoutineStatus
}

func failureCases() []failureCase {
	committed := StatusCommitted
	aborted := StatusAborted
	return []failureCase{
		{
			// Failure and restart both strictly before the routine starts:
			// every model serializes them before the routine and executes it.
			name:      "fail+restart before routine",
			failAt:    10 * time.Millisecond,
			restartAt: 40 * time.Millisecond,
			submitAt:  100 * time.Millisecond,
			want:      map[Model]RoutineStatus{GSV: committed, SGSV: committed, PSV: committed, EV: committed},
		},
		{
			// Failure before the routine's first command with no restart: the
			// window command itself fails, so the routine aborts everywhere.
			name:     "fail before first command, no restart",
			failAt:   10 * time.Millisecond,
			submitAt: 100 * time.Millisecond,
			want:     map[Model]RoutineStatus{GSV: aborted, SGSV: aborted, PSV: aborted, EV: aborted},
		},
		{
			// Failure while the window command is executing (case 4 of EV):
			// nobody can serialize around it; abort everywhere.
			name:     "fail during window command",
			failAt:   50 * time.Millisecond,
			submitAt: 0,
			want:     map[Model]RoutineStatus{GSV: aborted, SGSV: aborted, PSV: aborted, EV: aborted},
		},
		{
			// Failure after the window's last touch, still failed at finish:
			// GSV aborts (failure during execution), PSV aborts (rule 3*:
			// not recovered at the finish point), EV commits (failure is
			// serialized after the routine).
			name:     "fail after window touch, still down at finish",
			failAt:   150 * time.Millisecond,
			submitAt: 0,
			want:     map[Model]RoutineStatus{GSV: aborted, SGSV: aborted, PSV: aborted, EV: committed},
		},
		{
			// Failure after the window's last touch but recovered before the
			// finish point: GSV still aborts, PSV and EV commit.
			name:      "fail after window touch, recovered before finish",
			failAt:    110 * time.Millisecond,
			restartAt: 150 * time.Millisecond,
			submitAt:  0,
			want:      map[Model]RoutineStatus{GSV: aborted, SGSV: aborted, PSV: committed, EV: committed},
		},
		{
			// Failure of a device the routine never touches: GSV commits
			// (loose GSV only aborts for touched devices) but S-GSV aborts.
			name:     "fail unrelated device during execution",
			failAt:   50 * time.Millisecond,
			submitAt: 0,
			want:     map[Model]RoutineStatus{GSV: committed, SGSV: aborted, PSV: committed, EV: committed},
		},
	}
}

func TestFailureSerializationMatrix(t *testing.T) {
	for _, tc := range failureCases() {
		failDev := device.ID("window")
		if tc.name == "fail unrelated device during execution" {
			failDev = "light-1"
		}
		for _, m := range []Model{GSV, SGSV, PSV, EV} {
			want := tc.want[m]
			t.Run(tc.name+"/"+m.String(), func(t *testing.T) {
				h := newTestHome(t, DefaultOptions(m), homeDevices()...)
				h.submitAt(tc.submitAt, coolingRoutine())
				h.failAt(tc.failAt, failDev)
				if tc.restartAt > 0 {
					h.restoreAt(tc.restartAt, failDev)
				}
				h.run()
				h.wantStatus(1, want)

				if want == StatusCommitted && failDev == "window" {
					// A committed cooling routine must have closed the window
					// and switched the AC on (serial equivalence of §1).
					h.wantState("window", device.Closed)
					h.wantState("ac", device.On)
				}
			})
		}
	}
}

func TestWVIgnoresFailuresEntirely(t *testing.T) {
	for _, tc := range failureCases() {
		t.Run(tc.name, func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(WV), homeDevices()...)
			h.submitAt(tc.submitAt, coolingRoutine())
			h.failAt(tc.failAt, "window")
			if tc.restartAt > 0 {
				h.restoreAt(tc.restartAt, "window")
			}
			h.run()
			// Weak visibility never aborts anything.
			h.wantStatus(1, StatusCommitted)
		})
	}
}

// --- must vs best-effort (§2.2, Table 2 "leave home") -------------------------

func TestBestEffortCommandFailureDoesNotAbort(t *testing.T) {
	for _, m := range []Model{GSV, SGSV, PSV, EV} {
		t.Run(m.String(), func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(m), homeDevices()...)
			h.failAt(0, "light-1") // the best-effort light is unresponsive
			h.submitAt(10*time.Millisecond, leaveHomeRoutine())
			h.run()

			// The door must still lock even though a best-effort light failed.
			h.wantStatus(1, StatusCommitted)
			h.wantState("door", device.Locked)
			res := h.result(1)
			if res.BestEffortFailures != 1 {
				t.Errorf("BestEffortFailures = %d, want 1", res.BestEffortFailures)
			}
		})
	}
}

func TestMustCommandFailureAborts(t *testing.T) {
	for _, m := range []Model{GSV, SGSV, PSV, EV} {
		t.Run(m.String(), func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(m), homeDevices()...)
			h.failAt(0, "door") // the must-lock door is unresponsive
			h.submitAt(10*time.Millisecond, leaveHomeRoutine())
			h.run()

			h.wantStatus(1, StatusAborted)
			res := h.result(1)
			if res.AbortReason == "" {
				t.Error("aborted routine should carry an abort reason")
			}
			// The best-effort lights that were switched off must be rolled
			// back (restored to their pre-routine state).
			h.wantState("light-1", device.Off)
			h.wantState("light-2", device.Off)
		})
	}
}

// --- rollback behaviour ---------------------------------------------------------

func TestAbortRollsBackExecutedCommands(t *testing.T) {
	for _, m := range []Model{GSV, SGSV, PSV, EV} {
		t.Run(m.String(), func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(m), homeDevices()...)
			// Window closes successfully, then the AC turns out to be dead:
			// the routine aborts and the window must be re-opened.
			h.failAt(0, "ac")
			h.submitAt(10*time.Millisecond, coolingRoutine())
			h.run()

			h.wantStatus(1, StatusAborted)
			h.wantState("window", device.Open)
			res := h.result(1)
			if res.RolledBack == 0 {
				t.Errorf("RolledBack = 0, want > 0 (the window close must be undone)")
			}
			if h.countEvents(EvRolledBack) == 0 {
				t.Error("expected at least one rolled-back event")
			}
		})
	}
}

func TestEVAbortsEarlierThanPSV(t *testing.T) {
	// The window fails right after its command; the routine has a long AC
	// command afterwards. EV aborts routines affected by mid-execution
	// failures as soon as the failure is detected; PSV waits until the finish
	// point (§7.4: "EV aborts affected routines earlier rather than later").
	longCooling := routine.New("cooling-long",
		routine.Command{Device: "ac", Target: device.On, Duration: 10 * time.Minute},
		routine.Command{Device: "window", Target: device.Closed},
		routine.Command{Device: "light-1", Target: device.On},
	)
	finishTime := func(m Model) time.Duration {
		h := newTestHome(t, DefaultOptions(m), homeDevices()...)
		h.submitAt(0, longCooling)
		// The AC fails mid-way through its long command.
		h.failAt(1*time.Minute, "ac")
		h.run()
		h.wantStatus(1, StatusAborted)
		return h.result(1).Finished.Sub(h.result(1).Submitted)
	}

	evFinish := finishTime(EV)
	psvFinish := finishTime(PSV)
	if evFinish >= psvFinish {
		t.Errorf("EV abort time %v should be earlier than PSV abort time %v", evFinish, psvFinish)
	}
}

func TestSGSVAbortsOnUnrelatedFailureGSVDoesNot(t *testing.T) {
	// The manufacturing-pipeline scenario of Table 2: under S-GSV any stage
	// failure stops the running routine, even when untouched by it.
	run := func(m Model) RoutineStatus {
		h := newTestHome(t, DefaultOptions(m), homeDevices()...)
		h.submitAt(0, dishwashRoutine(10*time.Minute))
		h.failAt(1*time.Minute, "light-2")
		h.run()
		return h.result(1).Status
	}
	if got := run(GSV); got != StatusCommitted {
		t.Errorf("GSV with unrelated failure = %v, want committed", got)
	}
	if got := run(SGSV); got != StatusAborted {
		t.Errorf("S-GSV with unrelated failure = %v, want aborted", got)
	}
}

func TestFailureAndRestartAppearInSerialization(t *testing.T) {
	for _, m := range []Model{GSV, PSV, EV} {
		t.Run(m.String(), func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(m), homeDevices()...)
			h.submitAt(0, coolingRoutine())
			h.failAt(500*time.Millisecond, "light-1")
			h.restoreAt(600*time.Millisecond, "light-1")
			h.run()

			var haveFail, haveRestart bool
			for _, n := range h.ctrl.Serialization() {
				switch n.String() {
				case "F[light-1]#0":
					haveFail = true
				case "Re[light-1]#0":
					haveRestart = true
				}
			}
			if !haveFail || !haveRestart {
				t.Errorf("%s serialization missing failure/restart events: %v", m, h.ctrl.Serialization())
			}
		})
	}
}

func TestEVFailureAfterLastTouchSerializedAfterRoutine(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	h.submitAt(0, coolingRoutine())
	// Window fails after its command completed (~100ms) but before the
	// routine finishes (~200ms): EV serializes the failure after the routine.
	h.failAt(150*time.Millisecond, "window")
	h.run()

	h.wantStatus(1, StatusCommitted)
	nodes := h.ctrl.Serialization()
	posRoutine, posFailure := -1, -1
	for i, n := range nodes {
		switch n.String() {
		case "R1":
			posRoutine = i
		case "F[window]#0":
			posFailure = i
		}
	}
	if posRoutine == -1 || posFailure == -1 {
		t.Fatalf("serialization missing nodes: %v", nodes)
	}
	if posRoutine > posFailure {
		t.Errorf("routine serialized after its trailing failure event: %v", nodes)
	}
}

func TestRestartedDeviceUsableByLaterRoutines(t *testing.T) {
	for _, m := range []Model{GSV, PSV, EV} {
		t.Run(m.String(), func(t *testing.T) {
			h := newTestHome(t, DefaultOptions(m), homeDevices()...)
			h.failAt(0, "window")
			h.restoreAt(2*time.Second, "window")
			// Submitted well after the restart: must run normally.
			h.submitAt(3*time.Second, coolingRoutine())
			h.run()
			h.wantStatus(1, StatusCommitted)
			h.wantState("window", device.Closed)
		})
	}
}

func TestMultipleFailuresAbortOnlyAffectedRoutinesUnderEV(t *testing.T) {
	h := newTestHome(t, DefaultOptions(EV), homeDevices()...)
	// Routine 1 uses the dishwasher (long); routine 2 uses the dryer (long).
	h.submitAt(0, dishwashRoutine(20*time.Minute))
	h.submitAt(0, dryerRoutine(20*time.Minute))
	// The dryer dies mid-run; the dishwasher routine must be unaffected.
	h.failAt(5*time.Minute, "dryer")
	h.run()

	h.wantStatus(1, StatusCommitted)
	h.wantStatus(2, StatusAborted)
}

// Package visibility implements SafeHome's concurrency controllers — one per
// visibility model of §2.1/§3 of the paper — together with the scheduling
// policies for Eventual Visibility (§5).
//
// The models are:
//
//   - WV  (Weak Visibility): today's status quo; routines run immediately and
//     best-effort, with no isolation, atomicity or failure handling.
//   - GSV (Global Strict Visibility): at most one routine executes at a time;
//     a failure/restart of a touched device during execution aborts it.
//   - S-GSV (Strong GSV): like GSV but any device failure aborts the
//     currently executing routine.
//   - PSV (Partitioned Strict Visibility): non-conflicting routines run
//     concurrently; conflicting routines serialize; failures are evaluated at
//     the routine's finish point (rule 3* of §3).
//   - EV  (Eventual Visibility): the paper's main contribution — virtual
//     locks with a lineage table, pre-/post-leasing, commit compaction, and a
//     pluggable scheduler (FCFS, Just-in-Time, or Timeline).
//
// Controllers are single-threaded state machines: all entry points (Submit,
// NotifyFailure, NotifyRestart and the callbacks delivered by the Env) must
// be invoked from one goroutine or otherwise serialized. The discrete-event
// SimEnv serializes naturally; the hub and the multi-tenant manager both
// serialize through the home runtime (internal/runtime), whose loop
// goroutine applies every operation — including live-environment callbacks —
// from a typed mailbox.
//
// See ARCHITECTURE.md at the repository root for how the controllers sit
// between the hub/manager layer and the lineage/sim/device machinery.
package visibility

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
)

// Model selects a visibility model.
type Model int

const (
	// WV is Weak Visibility, today's best-effort status quo.
	WV Model = iota
	// GSV is (loose) Global Strict Visibility.
	GSV
	// SGSV is Strong Global Strict Visibility.
	SGSV
	// PSV is Partitioned Strict Visibility.
	PSV
	// EV is Eventual Visibility.
	EV
)

// Models lists every supported model, in increasing order of permissiveness.
var Models = []Model{GSV, SGSV, PSV, EV, WV}

func (m Model) String() string {
	switch m {
	case WV:
		return "WV"
	case GSV:
		return "GSV"
	case SGSV:
		return "S-GSV"
	case PSV:
		return "PSV"
	case EV:
		return "EV"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// ParseModel parses a model name ("EV", "s-gsv", ...).
func ParseModel(s string) (Model, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "WV", "WEAK":
		return WV, nil
	case "GSV":
		return GSV, nil
	case "SGSV", "S-GSV", "STRONG-GSV":
		return SGSV, nil
	case "PSV":
		return PSV, nil
	case "EV", "EVENTUAL":
		return EV, nil
	default:
		return WV, fmt.Errorf("visibility: unknown model %q", s)
	}
}

// SchedulerKind selects the Eventual Visibility scheduling policy (§5).
type SchedulerKind int

const (
	// SchedTL is Timeline scheduling (gap placement via Algorithm 1).
	SchedTL SchedulerKind = iota
	// SchedFCFS is First-Come-First-Serve scheduling.
	SchedFCFS
	// SchedJiT is Just-in-Time scheduling.
	SchedJiT
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedFCFS:
		return "FCFS"
	case SchedJiT:
		return "JiT"
	case SchedTL:
		return "TL"
	default:
		return fmt.Sprintf("sched(%d)", int(k))
	}
}

// ParseScheduler parses a scheduler name.
func ParseScheduler(s string) (SchedulerKind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "FCFS":
		return SchedFCFS, nil
	case "JIT", "JUST-IN-TIME":
		return SchedJiT, nil
	case "TL", "TIMELINE":
		return SchedTL, nil
	default:
		return SchedTL, fmt.Errorf("visibility: unknown scheduler %q", s)
	}
}

// RoutineStatus is a routine's lifecycle state as seen by the controller.
type RoutineStatus int

const (
	// StatusWaiting means the routine has been submitted but not started.
	StatusWaiting RoutineStatus = iota
	// StatusRunning means the routine has started executing commands.
	StatusRunning
	// StatusCommitted means the routine completed successfully.
	StatusCommitted
	// StatusAborted means the routine was aborted and its effects rolled back.
	StatusAborted
)

func (s RoutineStatus) String() string {
	switch s {
	case StatusWaiting:
		return "waiting"
	case StatusRunning:
		return "running"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Finished reports whether the status is terminal.
func (s RoutineStatus) Finished() bool { return s == StatusCommitted || s == StatusAborted }

// Result is the per-routine outcome record a controller maintains.
type Result struct {
	ID      routine.ID
	Routine *routine.Routine
	Status  RoutineStatus

	Submitted time.Time
	Started   time.Time
	Finished  time.Time

	// Executed counts commands that had an effect on the home.
	Executed int
	// Skipped counts commands skipped because their condition did not hold.
	Skipped int
	// BestEffortFailures counts best-effort commands that failed but did not
	// abort the routine.
	BestEffortFailures int
	// RolledBack counts executed commands whose effect was undone because the
	// routine aborted.
	RolledBack int
	// AbortReason describes why the routine aborted (empty otherwise).
	AbortReason string
}

// Latency is the end-to-end latency (submission to finish). It is only
// meaningful for committed routines.
func (r Result) Latency() time.Duration {
	if r.Finished.IsZero() || r.Submitted.IsZero() {
		return 0
	}
	return r.Finished.Sub(r.Submitted)
}

// RunTime is the time between actual start and finish (the numerator of the
// stretch-factor metric of Fig 15c).
func (r Result) RunTime() time.Duration {
	if r.Finished.IsZero() || r.Started.IsZero() {
		return 0
	}
	return r.Finished.Sub(r.Started)
}

// EventKind identifies an observable controller event.
type EventKind int

const (
	// EvSubmitted fires when a routine is submitted.
	EvSubmitted EventKind = iota
	// EvStarted fires when a routine begins executing.
	EvStarted
	// EvCommandExecuted fires when a command has successfully driven a device.
	EvCommandExecuted
	// EvCommandFailed fires when a command failed (device down).
	EvCommandFailed
	// EvCommandSkipped fires when a command was skipped (condition not met).
	EvCommandSkipped
	// EvCommitted fires when a routine completes successfully.
	EvCommitted
	// EvAborted fires when a routine aborts.
	EvAborted
	// EvRolledBack fires for every device restored during an abort rollback.
	EvRolledBack
	// EvFailureDetected fires when the controller learns of a device failure.
	EvFailureDetected
	// EvRestartDetected fires when the controller learns of a device restart.
	EvRestartDetected
)

func (k EventKind) String() string {
	switch k {
	case EvSubmitted:
		return "submitted"
	case EvStarted:
		return "started"
	case EvCommandExecuted:
		return "command-executed"
	case EvCommandFailed:
		return "command-failed"
	case EvCommandSkipped:
		return "command-skipped"
	case EvCommitted:
		return "committed"
	case EvAborted:
		return "aborted"
	case EvRolledBack:
		return "rolled-back"
	case EvFailureDetected:
		return "failure-detected"
	case EvRestartDetected:
		return "restart-detected"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one observable controller event, consumed by the metrics recorder
// and by the hub's activity log.
type Event struct {
	Time    time.Time
	Kind    EventKind
	Routine routine.ID
	Device  device.ID
	State   device.State
	Detail  string
}

// Observer receives controller events. A nil observer is allowed.
type Observer func(Event)

// Options configures a controller.
type Options struct {
	// Model selects the visibility model.
	Model Model
	// Scheduler selects the EV scheduling policy (EV only).
	Scheduler SchedulerKind
	// PreLease / PostLease enable lock leasing (EV only; both default on).
	PreLease  bool
	PostLease bool
	// DefaultShort is the assumed exclusive-hold duration of a command with
	// no explicit duration (the paper's τ_timeout, 100 ms).
	DefaultShort time.Duration
	// LeaseLeniency multiplies lease-revocation timeouts (paper: 1.1).
	LeaseLeniency float64
	// JiTTTL is the per-routine time-to-live after which a waiting routine is
	// prioritized by the JiT scheduler to avoid starvation.
	JiTTTL time.Duration
	// CheckInvariants makes the EV controller verify the lineage-table
	// invariants after every mutation (used by tests; expensive).
	CheckInvariants bool
	// Observer receives controller events (may be nil).
	Observer Observer
	// StateSink, if set, receives every committed-state change (after it is
	// folded into the controller's committed view). The home runtime uses it
	// to journal committed states for crash recovery; like the Observer it
	// runs on the controller's owning goroutine. Initial states passed to New
	// are not reported — they are re-derivable from the device registry.
	StateSink func(device.ID, device.State)
}

// Defaults mirror the paper's implementation constants (§4.3, §6).
const (
	DefaultShortCommand = 100 * time.Millisecond
	DefaultLeniency     = 1.1
	DefaultJiTTTL       = 30 * time.Second
)

// DefaultOptions returns the options used throughout the paper's evaluation
// for the given model: Timeline scheduling with both leases enabled.
func DefaultOptions(m Model) Options {
	return Options{
		Model:         m,
		Scheduler:     SchedTL,
		PreLease:      true,
		PostLease:     true,
		DefaultShort:  DefaultShortCommand,
		LeaseLeniency: DefaultLeniency,
		JiTTTL:        DefaultJiTTTL,
	}
}

func (o Options) normalized() Options {
	if o.DefaultShort <= 0 {
		o.DefaultShort = DefaultShortCommand
	}
	if o.LeaseLeniency <= 0 {
		o.LeaseLeniency = DefaultLeniency
	}
	if o.JiTTTL <= 0 {
		o.JiTTTL = DefaultJiTTTL
	}
	return o
}

// hold returns the effective exclusive-hold duration of a command.
func (o Options) hold(c routine.Command) time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	return o.DefaultShort
}

// Controller is the interface every visibility-model implementation
// satisfies. Controllers are not safe for concurrent use; see the package
// comment.
type Controller interface {
	// Model returns the controller's visibility model.
	Model() Model
	// Submit registers a routine for execution and returns its assigned ID.
	// The routine is cloned; the caller's copy is never mutated.
	Submit(r *routine.Routine) routine.ID
	// NotifyFailure informs the controller that a device failure was detected.
	NotifyFailure(d device.ID)
	// NotifyRestart informs the controller that a device restart was detected.
	NotifyRestart(d device.ID)
	// Results returns per-routine outcomes in submission order.
	Results() []Result
	// RoutineCount returns the number of routines ever submitted (cheaper
	// than len(Results()) — no per-result copying).
	RoutineCount() int
	// Result returns the outcome of one routine.
	Result(id routine.ID) (Result, bool)
	// Serialization returns the serially-equivalent order of committed
	// routines, failure events and restart events established so far.
	Serialization() []order.Node
	// ActiveCount returns the number of routines currently executing.
	ActiveCount() int
	// PendingCount returns the number of submitted routines not yet finished.
	PendingCount() int
	// CommittedStates returns the controller's view of the last committed
	// state of every device it has touched.
	CommittedStates() map[device.ID]device.State
	// Export returns an immutable, internally consistent snapshot of the
	// controller's observable state (results, counts, committed states),
	// built incrementally from the previous export. It must be called from
	// the goroutine that owns the controller; the result may be read from
	// any goroutine. See export.go.
	Export() *StateExport
	// Preload seeds the controller with an already-finished routine history
	// recovered from durable storage: results keep their original IDs (which
	// must be dense, ascending and start at 1), statuses and counters, and
	// new submissions continue the ID sequence after them. Every preloaded
	// result must be terminal; recovery converts in-flight routines to
	// Aborted before preloading. Preload must be called before any Submit.
	Preload(results []Result)
}

// New builds a controller for the options' model. initial seeds the
// controller's committed-state view of the home (typically the device
// fleet's snapshot at time zero).
func New(env Env, initial map[device.ID]device.State, opts Options) Controller {
	opts = opts.normalized()
	switch opts.Model {
	case WV:
		return newWV(env, initial, opts)
	case GSV:
		return newGSV(env, initial, opts, false)
	case SGSV:
		return newGSV(env, initial, opts, true)
	case PSV:
		return newPSV(env, initial, opts)
	case EV:
		return newEV(env, initial, opts)
	default:
		panic(fmt.Sprintf("visibility: unknown model %v", opts.Model))
	}
}

// --- shared controller plumbing -------------------------------------------

// cmdRecord remembers an executed command for rollback accounting.
type cmdRecord struct {
	idx    int
	dev    device.ID
	target device.State
	prior  device.State
}

// base carries the bookkeeping shared by all controllers.
type base struct {
	env    Env
	opts   Options
	nextID routine.ID

	results   map[routine.ID]*Result
	submitted []routine.ID
	finished  int // results with a terminal status (PendingCount is O(1))

	committed map[device.ID]device.State
	failed    map[device.ID]bool
	failSeq   map[device.ID]int
	restSeq   map[device.ID]int

	serial []order.Node
	active int

	// export carries the dirty tracking and shared spines behind Export
	// (the off-loop read path; see export.go).
	export *exportState
}

func newBase(env Env, initial map[device.ID]device.State, opts Options) base {
	committed := make(map[device.ID]device.State, len(initial))
	export := newExportState()
	ids := make([]device.ID, 0, len(initial))
	for d := range initial {
		ids = append(ids, d)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, d := range ids {
		committed[d] = initial[d]
		export.noteCommittedState(d)
	}
	return base{
		env:       env,
		opts:      opts,
		results:   make(map[routine.ID]*Result),
		committed: committed,
		failed:    make(map[device.ID]bool),
		failSeq:   make(map[device.ID]int),
		restSeq:   make(map[device.ID]int),
		export:    export,
	}
}

// setCommitted folds one device's committed state and marks it dirty for the
// next Export. Every committed-state write must go through here. A write
// that changes nothing (routines re-asserting a state, the common case under
// steady load) marks nothing, so Export shares the previous states.
func (b *base) setCommitted(d device.ID, s device.State) {
	if cur, exists := b.committed[d]; exists && cur == s {
		if _, interned := b.export.slots[d]; interned {
			return
		}
	}
	b.committed[d] = s
	b.export.noteCommittedState(d)
	if b.opts.StateSink != nil {
		b.opts.StateSink(d, s)
	}
}

// assign registers a newly submitted routine and returns its Result record.
// The routine is cloned and stamped with its ID and submission time.
func (b *base) assign(r *routine.Routine) (*Result, *routine.Routine) {
	b.nextID++
	cp := r.Clone()
	cp.ID = b.nextID
	cp.Submitted = b.env.Now()
	res := &Result{
		ID:        cp.ID,
		Routine:   cp,
		Status:    StatusWaiting,
		Submitted: cp.Submitted,
	}
	b.results[cp.ID] = res
	b.submitted = append(b.submitted, cp.ID)
	b.export.noteOpen(cp.ID)
	b.emit(Event{Time: cp.Submitted, Kind: EvSubmitted, Routine: cp.ID, Detail: cp.Name})
	return res, cp
}

func (b *base) emit(e Event) {
	if b.opts.Observer != nil {
		b.opts.Observer(e)
	}
}

func (b *base) markStarted(res *Result) {
	res.Status = StatusRunning
	res.Started = b.env.Now()
	b.active++
	b.emit(Event{Time: res.Started, Kind: EvStarted, Routine: res.ID})
}

func (b *base) markCommitted(res *Result) {
	res.Status = StatusCommitted
	res.Finished = b.env.Now()
	b.active--
	b.finished++
	b.export.noteFinished(res.ID)
	b.emit(Event{Time: res.Finished, Kind: EvCommitted, Routine: res.ID})
}

func (b *base) markAborted(res *Result, reason string) {
	res.Status = StatusAborted
	res.Finished = b.env.Now()
	res.AbortReason = reason
	if res.Started.IsZero() {
		res.Started = res.Finished
	} else {
		b.active--
	}
	b.finished++
	b.export.noteFinished(res.ID)
	b.emit(Event{Time: res.Finished, Kind: EvAborted, Routine: res.ID, Detail: reason})
}

// applyCommit folds a committed routine's final writes into the controller's
// committed-state view.
func (b *base) applyCommit(r *routine.Routine) {
	for _, d := range r.Devices() {
		if st, ok := r.LastWriteTo(d); ok {
			b.setCommitted(d, st)
		}
	}
}

// failureDetected records a failure event and returns its serialization node.
func (b *base) failureDetected(d device.ID) order.Node {
	n := order.FailureNode(d, b.failSeq[d])
	b.failSeq[d]++
	b.failed[d] = true
	b.serial = append(b.serial, n)
	b.emit(Event{Time: b.env.Now(), Kind: EvFailureDetected, Device: d})
	return n
}

// restartDetected records a restart event and returns its serialization node.
func (b *base) restartDetected(d device.ID) order.Node {
	n := order.RestartNode(d, b.restSeq[d])
	b.restSeq[d]++
	b.failed[d] = false
	b.serial = append(b.serial, n)
	b.emit(Event{Time: b.env.Now(), Kind: EvRestartDetected, Device: d})
	return n
}

// Results reads live records for open (or not-yet-exported) routines and the
// write-once export slots for everything else — a finished, exported outcome
// is stored exactly once (see export.go).
func (b *base) Results() []Result {
	out := make([]Result, 0, len(b.submitted))
	for _, id := range b.submitted {
		if res, ok := b.results[id]; ok {
			out = append(out, *res)
		} else {
			out = append(out, *b.export.slot(id))
		}
	}
	return out
}

func (b *base) Result(id routine.ID) (Result, bool) {
	if res, ok := b.results[id]; ok {
		return *res, true
	}
	if id < 1 || int64(id) > int64(len(b.submitted)) {
		return Result{}, false
	}
	return *b.export.slot(id), true
}

// Preload implements Controller.Preload for every model: recovered routines
// are terminal, so they never interact with scheduling state — they only
// seed the result history (write-once export slots included) and the ID
// sequence. The routine is cloned so the recovered record stays decoupled
// from later reads.
func (b *base) Preload(results []Result) {
	for i := range results {
		res := results[i]
		if !res.Status.Finished() {
			panic(fmt.Sprintf("visibility: Preload of unfinished routine %d (%s)", res.ID, res.Status))
		}
		if int64(res.ID) != int64(b.nextID)+1 {
			panic(fmt.Sprintf("visibility: Preload out of order: routine %d after %d", res.ID, b.nextID))
		}
		if res.Routine != nil {
			cp := res.Routine.Clone()
			cp.ID = res.ID
			res.Routine = cp
		}
		b.nextID = res.ID
		rec := res
		b.results[res.ID] = &rec
		b.submitted = append(b.submitted, res.ID)
		b.finished++
		b.export.noteOpen(res.ID)
		b.export.noteFinished(res.ID)
	}
}

func (b *base) RoutineCount() int { return len(b.submitted) }

func (b *base) ActiveCount() int { return b.active }

func (b *base) PendingCount() int { return len(b.submitted) - b.finished }

func (b *base) CommittedStates() map[device.ID]device.State {
	out := make(map[device.ID]device.State, len(b.committed))
	for d, s := range b.committed {
		out[d] = s
	}
	return out
}

func (b *base) Serialization() []order.Node {
	return append([]order.Node(nil), b.serial...)
}

// conditionMet evaluates a command's optional condition against the
// controller's best current knowledge of the home (committed states), falling
// back to querying the environment. It is used by the non-EV controllers; EV
// uses the lineage table's current-state inference instead.
func (b *base) conditionMet(c routine.Command) bool {
	if c.Condition == nil {
		return true
	}
	if st, err := b.env.DeviceState(c.Condition.Device); err == nil {
		return st == c.Condition.Equals
	}
	return b.committed[c.Condition.Device] == c.Condition.Equals
}

package visibility_test

// Differential ("golden") scheduling tests: the full observable scheduling
// behaviour — every controller event, the lineage-table contents after every
// placement, the final serialization order and the final committed states —
// is captured on the three trace scenarios (Morning, Party, Factory) under
// every EV scheduling policy and lease configuration, and compared against a
// recording checked into testdata/.
//
// The recording was produced by the original map-based scheduler
// implementation, so these tests prove that the allocation-free rewrite of
// the scheduling hot path (interned precedence graph, scratch pre/post sets,
// index wait queue) makes exactly the same scheduling decisions.
//
// Regenerate with:
//
//	go test ./internal/visibility -run TestGoldenScheduling -update-golden

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/lineage"
	"safehome/internal/sim"
	"safehome/internal/stats"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/sched_golden.json from the current implementation")

const goldenPath = "testdata/sched_golden.json"

// goldenEntry is the stored fingerprint of one (scenario, config, seed) run.
type goldenEntry struct {
	// TraceSHA is a digest over the full trace: every event plus a lineage
	// table snapshot after every submission (i.e. after every placement
	// decision).
	TraceSHA string `json:"trace_sha"`
	// Lines is the number of trace lines (for quick divergence triage).
	Lines int `json:"lines"`
	// Serialization is the final serialization order, verbatim.
	Serialization string `json:"serialization"`
	// Committed is the final committed-state view, sorted by device.
	Committed string `json:"committed"`
}

// goldenConfig is one controller configuration exercised by the suite.
type goldenConfig struct {
	name string
	opts visibility.Options
}

func goldenConfigs() []goldenConfig {
	mk := func(k visibility.SchedulerKind, pre, post bool) visibility.Options {
		o := visibility.DefaultOptions(visibility.EV)
		o.Scheduler = k
		o.PreLease = pre
		o.PostLease = post
		return o
	}
	return []goldenConfig{
		{"TL", mk(visibility.SchedTL, true, true)},
		{"TL-preoff", mk(visibility.SchedTL, false, true)},
		{"TL-postoff", mk(visibility.SchedTL, true, false)},
		{"FCFS", mk(visibility.SchedFCFS, true, true)},
		{"JiT", mk(visibility.SchedJiT, true, true)},
		{"JiT-leaseoff", mk(visibility.SchedJiT, false, false)},
	}
}

func goldenScenarios() map[string]func(seed int64) workload.Spec {
	return map[string]func(seed int64) workload.Spec{
		"morning": workload.Morning,
		"party":   workload.Party,
		"factory": func(seed int64) workload.Spec {
			p := workload.DefaultFactoryParams()
			p.Stages = 8
			p.Seed = seed
			return workload.Factory(p)
		},
	}
}

// runGoldenTrace replays a workload spec against one controller configuration
// and returns the full trace plus the final fingerprints.
func runGoldenTrace(spec workload.Spec, opts visibility.Options, seed int64) goldenEntry {
	s := sim.NewAtEpoch()
	fleet := device.NewFleet(spec.Registry())
	env := visibility.NewSimEnv(s, fleet)
	if spec.JitterMax > 0 {
		rng := stats.NewRNG(seed)
		env.Jitter = func() time.Duration { return rng.UniformDuration(0, spec.JitterMax) }
	}

	epoch := s.Now()
	var trace strings.Builder
	opts.CheckInvariants = true
	opts.Observer = func(e visibility.Event) {
		fmt.Fprintf(&trace, "t=%v %v r=%d d=%s st=%s detail=%q\n",
			e.Time.Sub(epoch), e.Kind, e.Routine, e.Device, e.State, e.Detail)
	}

	ctrl := visibility.New(env, fleet.Snapshot(), opts)
	table := ctrl.(interface{ Table() *lineage.Table }).Table()

	for _, sub := range spec.Submissions {
		r := sub.Routine
		s.After(sub.At, func() {
			ctrl.Submit(r)
			// Snapshot the lineage table right after the placement decision:
			// this pins down gap choices, lease insertions and append
			// fallbacks, not just their downstream effects.
			trace.WriteString("table after submit:\n")
			trace.WriteString(table.String())
		})
	}
	for _, f := range spec.Failures {
		f := f
		s.After(f.At, func() {
			if f.Restart {
				_ = fleet.Restore(f.Device)
				ctrl.NotifyRestart(f.Device)
			} else {
				_ = fleet.Fail(f.Device)
				ctrl.NotifyFailure(f.Device)
			}
		})
	}
	s.Run()

	var serial []string
	for _, n := range ctrl.Serialization() {
		serial = append(serial, n.String())
	}
	committed := ctrl.CommittedStates()
	devs := make([]string, 0, len(committed))
	for d := range committed {
		devs = append(devs, string(d))
	}
	sort.Strings(devs)
	var cb strings.Builder
	for _, d := range devs {
		fmt.Fprintf(&cb, "%s=%s ", d, committed[device.ID(d)])
	}

	text := trace.String()
	return goldenEntry{
		TraceSHA:      fmt.Sprintf("%x", sha256.Sum256([]byte(text))),
		Lines:         strings.Count(text, "\n"),
		Serialization: strings.Join(serial, " "),
		Committed:     strings.TrimSpace(cb.String()),
	}
}

func TestGoldenScheduling(t *testing.T) {
	got := make(map[string]goldenEntry)
	for name, gen := range goldenScenarios() {
		for _, cfg := range goldenConfigs() {
			for seed := int64(1); seed <= 3; seed++ {
				key := fmt.Sprintf("%s/%s/seed=%d", name, cfg.name, seed)
				got[key] = runGoldenTrace(gen(seed), cfg.opts, seed)
			}
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}

	if len(got) != len(want) {
		t.Errorf("golden suite shape changed: got %d entries, golden has %d", len(got), len(want))
	}
	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: missing from golden file", k)
			continue
		}
		g := got[k]
		if g.Serialization != w.Serialization {
			t.Errorf("%s: serialization order diverged\n got: %s\nwant: %s", k, g.Serialization, w.Serialization)
		}
		if g.Committed != w.Committed {
			t.Errorf("%s: committed states diverged\n got: %s\nwant: %s", k, g.Committed, w.Committed)
		}
		if g.TraceSHA != w.TraceSHA {
			t.Errorf("%s: event/lineage trace diverged (got %d lines sha %s, want %d lines sha %s)",
				k, g.Lines, g.TraceSHA[:12], w.Lines, w.TraceSHA[:12])
		}
	}
}

// TestGoldenDeterminism guards the golden harness itself: the same seed must
// produce the same trace twice, otherwise digest comparisons are meaningless.
func TestGoldenDeterminism(t *testing.T) {
	spec := workload.Morning(7)
	opts := visibility.DefaultOptions(visibility.EV)
	a := runGoldenTrace(spec, opts, 7)
	b := runGoldenTrace(workload.Morning(7), opts, 7)
	if a != b {
		t.Fatalf("same seed produced different traces: %+v vs %+v", a, b)
	}
}

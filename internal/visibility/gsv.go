package visibility

import (
	"fmt"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
)

// gsvController implements Global Strict Visibility and its strong variant
// (§2.1, §3). At most one routine executes at any time; the rest queue in
// arrival order. While a routine is executing:
//
//   - GSV (loose): a detected failure or restart of a device the routine
//     touches aborts it;
//   - S-GSV (strong): any detected failure or restart aborts it.
//
// Aborts roll back every executed command to the pre-routine committed state.
type gsvController struct {
	base
	strong bool

	queue []*gsvRun
	cur   *gsvRun
	runs  map[routine.ID]*gsvRun
}

type gsvRun struct {
	res *Result
	r   *routine.Routine
	idx int

	executed    []cmdRecord
	inflight    *cmdRecord
	rollbacks   int // outstanding rollback commands
	rollingBack bool
}

func newGSV(env Env, initial map[device.ID]device.State, opts Options, strong bool) *gsvController {
	return &gsvController{
		base:   newBase(env, initial, opts),
		strong: strong,
		runs:   make(map[routine.ID]*gsvRun),
	}
}

func (c *gsvController) Model() Model {
	if c.strong {
		return SGSV
	}
	return GSV
}

func (c *gsvController) Submit(r *routine.Routine) routine.ID {
	res, cp := c.assign(r)
	run := &gsvRun{res: res, r: cp}
	c.runs[cp.ID] = run
	c.queue = append(c.queue, run)
	c.startNext()
	return cp.ID
}

// startNext begins the next waiting routine if the home is idle.
func (c *gsvController) startNext() {
	if c.cur != nil || len(c.queue) == 0 {
		return
	}
	run := c.queue[0]
	c.queue = c.queue[1:]
	c.cur = run
	c.markStarted(run.res)
	c.step(run)
}

func (c *gsvController) step(run *gsvRun) {
	if run != c.cur || run.res.Status.Finished() {
		return
	}
	if run.idx >= len(run.r.Commands) {
		c.commit(run)
		return
	}
	cmd := run.r.Commands[run.idx]
	if !c.conditionMet(cmd) {
		run.res.Skipped++
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandSkipped, Routine: run.res.ID, Device: cmd.Device})
		run.idx++
		c.step(run)
		return
	}
	idx := run.idx
	run.inflight = &cmdRecord{idx: idx, dev: cmd.Device, target: cmd.Target, prior: c.committed[cmd.Device]}
	c.env.Exec(run.res.ID, cmd, c.opts.hold(cmd), func(err error) {
		c.commandDone(run, idx, err)
	})
}

func (c *gsvController) commandDone(run *gsvRun, idx int, err error) {
	if run.res.Status.Finished() {
		return // aborted while the command was in flight
	}
	cmd := run.r.Commands[idx]
	rec := run.inflight
	run.inflight = nil
	if err != nil {
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandFailed, Routine: run.res.ID,
			Device: cmd.Device, Detail: err.Error()})
		if cmd.Must() {
			c.abort(run, fmt.Sprintf("must command on %s failed: %v", cmd.Device, err))
			return
		}
		run.res.BestEffortFailures++
	} else {
		run.res.Executed++
		if rec != nil {
			run.executed = append(run.executed, *rec)
		}
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandExecuted, Routine: run.res.ID,
			Device: cmd.Device, State: cmd.Target})
	}
	run.idx++
	c.step(run)
}

func (c *gsvController) commit(run *gsvRun) {
	c.markCommitted(run.res)
	c.applyCommit(run.r)
	c.serial = append(c.serial, order.RoutineNode(run.res.ID))
	c.cur = nil
	c.startNext()
}

// abort rolls back every executed (and in-flight) command of the current
// routine to the pre-routine committed state, then starts the next routine.
func (c *gsvController) abort(run *gsvRun, reason string) {
	if run.res.Status.Finished() {
		return
	}
	c.markAborted(run.res, reason)

	records := append([]cmdRecord(nil), run.executed...)
	if run.inflight != nil {
		// The in-flight command may already have actuated the device; include
		// it conservatively in the rollback.
		records = append(records, *run.inflight)
		run.inflight = nil
	}
	// Restore each touched device once, to its pre-routine state; count every
	// executed command on a restored device as rolled back.
	restored := make(map[device.ID]bool)
	for i := len(records) - 1; i >= 0; i-- {
		rec := records[i]
		run.res.RolledBack++
		if restored[rec.dev] {
			continue
		}
		restored[rec.dev] = true
		target := rec.prior
		if target == device.StateUnknown {
			continue
		}
		c.emit(Event{Time: c.env.Now(), Kind: EvRolledBack, Routine: run.res.ID, Device: rec.dev, State: target})
		restore := routine.Command{Device: rec.dev, Target: target}
		c.env.Exec(run.res.ID, restore, c.opts.DefaultShort, func(error) {})
	}

	c.cur = nil
	c.startNext()
}

func (c *gsvController) NotifyFailure(d device.ID) {
	c.failureDetected(d)
	if c.cur == nil {
		return
	}
	if c.strong || c.cur.r.Touches(d) {
		c.abort(c.cur, fmt.Sprintf("device %s failed during execution (%s)", d, c.Model()))
	}
}

func (c *gsvController) NotifyRestart(d device.ID) {
	c.restartDetected(d)
	if c.cur == nil {
		return
	}
	// Restart events are also visible to users; strict visibility treats them
	// like failures (§3: "if any device failure event or restart event were to
	// occur while a routine is executing ... the routine must be aborted").
	if c.strong || c.cur.r.Touches(d) {
		c.abort(c.cur, fmt.Sprintf("device %s restarted during execution (%s)", d, c.Model()))
	}
}

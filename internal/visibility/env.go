// Environment abstraction: the seam between a concurrency controller and the
// world that executes its commands. A discrete-event simulation environment
// (SimEnv) drives all experiments and most tests; the live hub provides a
// real-time implementation over networked devices.
package visibility

import (
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/sim"
)

// Env is the execution environment a controller runs against.
//
// Exec and After deliver their callbacks in the same serialized context that
// invokes the controller's entry points; a controller never needs its own
// locking.
type Env interface {
	// Now returns the current (virtual or wall-clock) time.
	Now() time.Time
	// After schedules fn to run after d and returns a cancellation func.
	After(d time.Duration, fn func()) (cancel func())
	// Exec asynchronously executes one command: it drives the device to
	// cmd.Target and keeps it busy for hold, then invokes done. done receives
	// a non-nil error if the device was unreachable or unknown (in which case
	// the command had no effect).
	Exec(rid routine.ID, cmd routine.Command, hold time.Duration, done func(error))
	// DeviceState reports a device's current ground-truth state (used for
	// conditional commands outside EV, and by tests).
	DeviceState(d device.ID) (device.State, error)
}

// SimEnv is the discrete-event simulation environment: commands actuate a
// simulated device fleet and complete after their hold duration of virtual
// time. All callbacks run on the simulator's single thread.
type SimEnv struct {
	// Sim is the virtual clock and event queue.
	Sim *sim.Sim
	// Fleet is the simulated device fleet commands actuate.
	Fleet *device.Fleet
	// ActuationLatency is added to every command completion (and failure),
	// modelling network + device round-trip time. Zero is allowed.
	ActuationLatency time.Duration
	// Jitter, if non-nil, returns an extra per-command delay, modelling the
	// variable device/network latency real smart plugs exhibit. It is what
	// makes Weak Visibility's races (Fig 1) observable under emulation.
	Jitter func() time.Duration
}

// NewSimEnv wires a simulator and a fleet into an environment.
func NewSimEnv(s *sim.Sim, fleet *device.Fleet) *SimEnv {
	return &SimEnv{Sim: s, Fleet: fleet}
}

// Now implements Env.
func (e *SimEnv) Now() time.Time { return e.Sim.Now() }

// After implements Env.
func (e *SimEnv) After(d time.Duration, fn func()) (cancel func()) { return e.Sim.After(d, fn) }

// Exec implements Env. The device's state changes at the moment the command
// is issued (a plug switches on immediately); the command's completion — and
// therefore the lock-hold — lasts for hold plus the actuation latency.
// Failures are reported through done, never synchronously, so controller
// callbacks are uniformly re-entered via the event queue.
func (e *SimEnv) Exec(rid routine.ID, cmd routine.Command, hold time.Duration, done func(error)) {
	err := e.Fleet.Apply(cmd.Device, cmd.Target)
	delay := hold + e.ActuationLatency
	if err != nil {
		// A rejected command fails fast: only the round-trip is spent.
		delay = e.ActuationLatency
	}
	if e.Jitter != nil {
		delay += e.Jitter()
	}
	e.Sim.After(delay, func() { done(err) })
}

// DeviceState implements Env.
func (e *SimEnv) DeviceState(d device.ID) (device.State, error) { return e.Fleet.Status(d) }

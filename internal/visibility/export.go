package visibility

import (
	"sort"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// This file is the visibility half of SafeHome's off-loop read path: the
// controller (single-threaded, loop-owned) maintains cheap dirty-tracking as
// it mutates state, and Export folds only what changed since the previous
// export into an immutable StateExport that the home runtime publishes
// through an atomic pointer. Readers then answer Results/Counts/state
// queries from the latest export without ever entering the runtime's
// mailbox.
//
// The contract for every structure here is the same:
//
//   - Everything reachable from a *StateExport is immutable once the export
//     is returned. Readers on any goroutine may traverse it freely.
//   - Building export N+1 from export N is O(changes since N), never
//     O(total history).
//
// Two idioms make that cheap:
//
//   - Write-once slots. A routine's Result can only change while the routine
//     is unfinished. Finished results are written into a chunked slot array
//     exactly once (at the first export after they finish) and shared by
//     every later export; the handful of still-open routines ride in a small
//     per-export overlay instead. Nothing is ever re-copied.
//   - Bounded prefixes. Shared backing arrays only grow: an export records
//     how many entries it may read, and the single writer only writes at
//     indexes beyond every published bound, so disjoint-index access needs
//     no synchronization beyond the atomic publish itself.

// resultChunkShift sizes result chunks at 64 entries (~9 KB of final
// outcomes per chunk, allocated once per 64 routines).
const (
	resultChunkShift = 6
	resultChunkSize  = 1 << resultChunkShift
)

// resultChunk is one fixed-size block of final per-routine outcomes. Slot
// i holds routine ID (chunkIndex<<shift)+i+1, written exactly once, at the
// first export after that routine finished.
type resultChunk [resultChunkSize]Result

// ResultsExport is an immutable view of per-routine outcomes in submission
// order. Routine IDs are assigned densely from 1, so result i (0-based)
// belongs to routine ID i+1 and single-result lookup is O(1) — plus a
// binary search over the (usually tiny) open-routine overlay.
type ResultsExport struct {
	// chunks is the shared spine of write-once final outcomes, bounded by n.
	chunks []*resultChunk
	n      int
	// overlay carries the routines that were still unfinished at export
	// time, in ascending ID order: their final slots are not written yet, so
	// their current records are captured here instead.
	overlay []Result
}

// Len returns the number of results.
func (e *ResultsExport) Len() int { return e.n }

// At returns result i (0-based, submission order).
func (e *ResultsExport) At(i int) Result {
	rid := routine.ID(i + 1)
	if len(e.overlay) > 0 {
		o := sort.Search(len(e.overlay), func(j int) bool { return e.overlay[j].ID >= rid })
		if o < len(e.overlay) && e.overlay[o].ID == rid {
			return e.overlay[o]
		}
	}
	return e.chunks[i>>resultChunkShift][i&(resultChunkSize-1)]
}

// AppendTo materializes the results into dst and returns the extended slice.
func (e *ResultsExport) AppendTo(dst []Result) []Result {
	o := 0
	for i := 0; i < e.n; i++ {
		if o < len(e.overlay) && e.overlay[o].ID == routine.ID(i+1) {
			dst = append(dst, e.overlay[o])
			o++
			continue
		}
		dst = append(dst, e.chunks[i>>resultChunkShift][i&(resultChunkSize-1)])
	}
	return dst
}

// stateChunkSize sizes device-state chunks; homes have tens of devices, so
// the spine is one or two pointers and a dirty chunk copy is 16 entries.
const (
	stateChunkShift = 4
	stateChunkSize  = 1 << stateChunkShift
)

type stateChunk [stateChunkSize]device.State

// StatesExport is a persistent copy-on-write map of committed device states:
// slots are interned per device (append-only), states live in fixed-size
// chunks, and an export shares every chunk the commits since the previous
// export did not touch. Re-asserting an unchanged state marks nothing, so
// steady workloads share the whole structure between exports.
type StatesExport struct {
	keys   []device.ID // slot -> device; shared append-only array, bounded by n
	chunks []*stateChunk
	slots  map[device.ID]int // immutable; replaced (copied) only when a device is added
	n      int
}

// Len returns the number of devices with a committed state.
func (e *StatesExport) Len() int { return e.n }

// Get returns the committed state of one device.
func (e *StatesExport) Get(d device.ID) (device.State, bool) {
	slot, ok := e.slots[d]
	if !ok || slot >= e.n {
		return device.StateUnknown, false
	}
	return e.chunks[slot>>stateChunkShift][slot&(stateChunkSize-1)], true
}

// AppendTo materializes the committed states into dst (allocating it if nil)
// and returns the map.
func (e *StatesExport) AppendTo(dst map[device.ID]device.State) map[device.ID]device.State {
	if dst == nil {
		dst = make(map[device.ID]device.State, e.n)
	}
	for slot := 0; slot < e.n; slot++ {
		dst[e.keys[slot]] = e.chunks[slot>>stateChunkShift][slot&(stateChunkSize-1)]
	}
	return dst
}

// StateExport is one epoch's immutable view of a controller: results,
// counts and committed device states, all captured at the same instant on
// the loop goroutine, so readers get an internally consistent picture
// (Routines always equals Results.Len(), Pending never disagrees with the
// statuses in the same export).
type StateExport struct {
	Results   ResultsExport
	Committed StatesExport

	Routines int
	Pending  int
	Active   int

	// Now is the controller clock at export time.
	Now time.Time
}

// exportState is the controller-side scratch behind Export: dirty tracking
// plus the mutable twins of the shared spines.
type exportState struct {
	prev *StateExport

	// open tracks unfinished routines (their records may change at any time,
	// so each export captures them in its overlay); finishedDirty lists the
	// routines that finished since the last export, whose final slots the
	// next export writes.
	open          map[routine.ID]struct{}
	finishedDirty []routine.ID

	// chunks is the writer's view of the shared final-outcome spine; slots
	// and spine entries beyond the latest published bound are invisible to
	// every published export.
	chunks []*resultChunk

	// Committed-state twins: keys is the shared slot->device array, slots the
	// current device->slot index (copied into exports on growth), dirtySlots
	// the slots written since the last export, slotsGrown whether a device
	// was added since the last export.
	keys       []device.ID
	slots      map[device.ID]int
	dirtySlots []int
	slotsGrown bool
}

func newExportState() *exportState {
	return &exportState{
		open:  make(map[routine.ID]struct{}),
		slots: make(map[device.ID]int),
	}
}

// slot returns the final-outcome slot of a routine (valid once the spine
// covers it).
func (x *exportState) slot(rid routine.ID) *Result {
	return &x.chunks[(int64(rid)-1)>>resultChunkShift][(int64(rid)-1)&(resultChunkSize-1)]
}

// noteOpen records a newly submitted routine (its record will keep changing
// until it finishes).
func (x *exportState) noteOpen(rid routine.ID) { x.open[rid] = struct{}{} }

// noteFinished moves a routine from the open set to the finished-dirty list.
func (x *exportState) noteFinished(rid routine.ID) {
	delete(x.open, rid)
	x.finishedDirty = append(x.finishedDirty, rid)
}

// noteCommittedState interns a slot for d and marks it dirty.
func (x *exportState) noteCommittedState(d device.ID) int {
	slot, ok := x.slots[d]
	if !ok {
		slot = len(x.keys)
		x.keys = append(x.keys, d)
		x.slots[d] = slot
		x.slotsGrown = true
	}
	x.dirtySlots = append(x.dirtySlots, slot)
	return slot
}

// Export returns an immutable snapshot of the controller's observable state.
// It must be called from the goroutine that owns the controller (the home
// runtime's loop); the returned export may be read from any goroutine.
// Consecutive calls share everything that did not change in between, so the
// cost is proportional to the routines touched since the previous call.
func (b *base) Export() *StateExport {
	x := b.export
	n := len(b.submitted)

	out := &StateExport{
		Routines: n,
		Pending:  b.PendingCount(),
		Active:   b.active,
		Now:      b.env.Now(),
	}

	b.exportResults(out, n)
	b.exportCommitted(out)

	x.finishedDirty = x.finishedDirty[:0]
	x.dirtySlots = x.dirtySlots[:0]
	x.slotsGrown = false
	x.prev = out
	return out
}

func (b *base) exportResults(out *StateExport, n int) {
	x := b.export

	// Grow the spine to cover every submitted routine. Appends only touch
	// indexes beyond previously published bounds (and a reallocation leaves
	// old exports' arrays untouched), so sharing the slice is safe.
	for len(x.chunks)<<resultChunkShift < n {
		x.chunks = append(x.chunks, new(resultChunk))
	}

	// Write the final slots of routines that finished since the last export,
	// and retire their live records: the slot is now the (only) storage of a
	// finished outcome, shared by the controller's own reads and every later
	// export, so memory and GC scan work don't double. Older exports carried
	// these routines in their overlays (they were open when those exports
	// were cut), so no published reader resolves a slot before this write is
	// published.
	for _, rid := range x.finishedDirty {
		if res, ok := b.results[rid]; ok {
			*x.slot(rid) = *res
			delete(b.results, rid)
		}
	}

	// Capture the still-open routines in this export's overlay.
	var overlay []Result
	if len(x.open) > 0 {
		overlay = make([]Result, 0, len(x.open))
		for rid := range x.open {
			overlay = append(overlay, *b.results[rid])
		}
		sort.Slice(overlay, func(i, j int) bool { return overlay[i].ID < overlay[j].ID })
	}

	out.Results = ResultsExport{chunks: x.chunks, n: n, overlay: overlay}
}

func (b *base) exportCommitted(out *StateExport) {
	x := b.export
	if x.prev != nil && len(x.dirtySlots) == 0 && !x.slotsGrown {
		out.Committed = x.prev.Committed
		return
	}

	nSlots := len(x.keys)
	nChunks := (nSlots + stateChunkSize - 1) >> stateChunkShift
	var prev *StatesExport
	if x.prev != nil {
		prev = &x.prev.Committed
	}

	dirty := make(map[int]struct{}, len(x.dirtySlots))
	for _, slot := range x.dirtySlots {
		dirty[slot>>stateChunkShift] = struct{}{}
	}
	prevChunks := 0
	if prev != nil {
		prevChunks = (prev.n + stateChunkSize - 1) >> stateChunkShift
	}

	chunks := make([]*stateChunk, nChunks)
	for ci := 0; ci < nChunks; ci++ {
		_, isDirty := dirty[ci]
		if !isDirty && ci < prevChunks && (ci+1)<<stateChunkShift <= prev.n {
			chunks[ci] = prev.chunks[ci] // untouched full chunk: share it
			continue
		}
		c := new(stateChunk)
		if ci < prevChunks {
			*c = *prev.chunks[ci]
		}
		first := ci << stateChunkShift
		last := first + stateChunkSize
		if last > nSlots {
			last = nSlots
		}
		for slot := first; slot < last; slot++ {
			if isDirty || slot >= prevSlotBound(prev) {
				c[slot&(stateChunkSize-1)] = b.committed[x.keys[slot]]
			}
		}
		chunks[ci] = c
	}

	var slots map[device.ID]int
	if !x.slotsGrown && prev != nil {
		slots = prev.slots
	} else {
		// The live index mutated since the last export (or this is the first
		// export): publish a private copy and keep mutating the live one.
		slots = make(map[device.ID]int, len(x.slots))
		for d, s := range x.slots {
			slots[d] = s
		}
	}

	out.Committed = StatesExport{keys: x.keys, chunks: chunks, slots: slots, n: nSlots}
}

func prevSlotBound(prev *StatesExport) int {
	if prev == nil {
		return 0
	}
	return prev.n
}

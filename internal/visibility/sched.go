// Eventual-Visibility scheduling policies (§5 of the paper): First Come
// First Serve, Just-in-Time, and Timeline scheduling.
package visibility

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/lineage"
	"safehome/internal/order"
	"safehome/internal/routine"
)

// --- FCFS --------------------------------------------------------------------

// fcfsScheduler serializes routines in arrival order: lock-accesses are
// appended to every lineage at submission, pre-leases are never used (they
// would contradict arrival order), and a routine starts once every device it
// needs is acquirable. Post-leases (early release after a routine's last
// touch) still apply, performed by the controller.
type fcfsScheduler struct {
	c *evController
}

func (s *fcfsScheduler) kind() SchedulerKind { return SchedFCFS }

func (s *fcfsScheduler) onSubmit(run *evRun) {
	s.c.placeAtEnd(run)
	s.c.waitQ = append(s.c.waitQ, run)
	s.tryStart()
}

func (s *fcfsScheduler) onFree(device.ID) { s.tryStart() }
func (s *fcfsScheduler) onRoutineDone()   { s.tryStart() }

// tryStart begins every waiting routine whose devices are all acquirable.
// Because accesses were appended in arrival order, starting a later routine
// early never violates the serialization order — it simply exploits
// non-conflicting parallelism.
func (s *fcfsScheduler) tryStart() {
	for restart := true; restart; {
		restart = false
		for i, run := range s.c.waitQ {
			if run.done {
				s.c.waitQ = append(s.c.waitQ[:i], s.c.waitQ[i+1:]...)
				restart = true
				break
			}
			ready := true
			for _, d := range run.r.Devices() {
				if !s.c.table.CanAcquire(d, run.id) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			s.c.waitQ = append(s.c.waitQ[:i], s.c.waitQ[i+1:]...)
			s.c.startRun(run)
			restart = true
			break
		}
	}
}

// --- Just-in-Time -------------------------------------------------------------

// jitScheduler greedily starts a routine at the earliest moment it can
// acquire all its locks — right away, or via pre-leases and post-leases. The
// eligibility test runs on every routine arrival and on every lock release.
// A per-routine TTL prevents starvation: once it expires, the routine is
// prioritized and other waiting routines are held back until it starts.
type jitScheduler struct {
	c *evController
}

func (s *jitScheduler) kind() SchedulerKind { return SchedJiT }

func (s *jitScheduler) onSubmit(run *evRun) {
	if s.hasPrioritizedWaiter() {
		// A starved routine goes first; newcomers queue behind it.
		s.enqueue(run)
		return
	}
	if s.tryPlace(run) {
		s.c.startRun(run)
		return
	}
	s.enqueue(run)
}

func (s *jitScheduler) enqueue(run *evRun) {
	s.c.waitQ = append(s.c.waitQ, run)
	ttl := s.c.opts.JiTTTL
	run.ttlCancel = s.c.env.After(ttl, func() {
		if run.done || run.running {
			return
		}
		run.prioritized = true
		s.scan()
	})
}

func (s *jitScheduler) onFree(device.ID) { s.scan() }
func (s *jitScheduler) onRoutineDone()   { s.scan() }

func (s *jitScheduler) hasPrioritizedWaiter() bool {
	for _, run := range s.c.waitQ {
		if run.prioritized && !run.done && !run.running {
			return true
		}
	}
	return false
}

// scan retries the eligibility test on waiting routines: prioritized routines
// first (in arrival order), then the rest in arrival order. While any
// prioritized routine is still waiting, non-prioritized routines are held
// back so the starved routine gets the next available locks.
func (s *jitScheduler) scan() {
	for restart := true; restart; {
		restart = false
		prioritized := s.hasPrioritizedWaiter()
		for i, run := range s.c.waitQ {
			if run.done || run.running {
				s.c.waitQ = append(s.c.waitQ[:i], s.c.waitQ[i+1:]...)
				restart = true
				break
			}
			if prioritized && !run.prioritized {
				continue
			}
			if !s.tryPlace(run) {
				continue
			}
			s.c.startRun(run)
			restart = true
			break
		}
	}
}

// jitPlacement is one device's placement decision during the eligibility test.
type jitPlacement struct {
	dev    device.ID
	mode   int // 0 = append, 1 = post-lease (insert after anchor), 2 = pre-lease (insert before anchor)
	anchor routine.ID
	pre    []routine.ID
	post   []routine.ID
}

// tryPlace runs the JiT eligibility test (§5): the routine is placed — and
// may start — only if every device it needs can be obtained immediately,
// either because the lock is free, or through a post-lease from a routine
// that is done with the device, or through a pre-lease from a routine that
// has not used it yet. Placement is rejected if the implied preSet and
// postSet intersect or contradict the existing serialization order.
func (s *jitScheduler) tryPlace(run *evRun) bool {
	var plans []jitPlacement
	preAll := make(map[routine.ID]bool)
	postAll := make(map[routine.ID]bool)

	for _, d := range run.r.Devices() {
		l := s.c.table.Lineage(d)
		fi := -1
		nonReleased := 0
		for i, a := range l.Accesses {
			if a.Status != lineage.Released {
				if fi == -1 {
					fi = i
				}
				nonReleased++
			}
		}
		switch {
		case fi == -1:
			// Lock free (possibly via earlier post-leases): take it at the end.
			p := jitPlacement{dev: d, mode: 0, pre: accessRoutines(l.Accesses)}
			plans = append(plans, p)
			addAll(preAll, p.pre)

		case nonReleased == 1:
			owner := l.Accesses[fi]
			ownerRun, ok := s.c.runs[owner.Routine]
			if !ok {
				return false
			}
			switch {
			case s.c.opts.PostLease && ownerRun.lastTouchDone[d] && s.postLeaseOK(ownerRun, run, d):
				p := jitPlacement{dev: d, mode: 1, anchor: owner.Routine, pre: accessRoutines(l.Accesses[:fi+1])}
				plans = append(plans, p)
				addAll(preAll, p.pre)
			case s.c.opts.PreLease && owner.Status == lineage.Scheduled && !ownerRun.firstTouched[d] &&
				!(ownerRun.inflight && ownerRun.inflightDev == d):
				p := jitPlacement{dev: d, mode: 2, anchor: owner.Routine,
					pre: accessRoutines(l.Accesses[:fi]), post: accessRoutines(l.Accesses[fi:])}
				plans = append(plans, p)
				addAll(preAll, p.pre)
				addAll(postAll, p.post)
			default:
				return false
			}

		default:
			// Two or more routines already queued for the device: the lock
			// cannot be obtained right now.
			return false
		}
	}

	for id := range preAll {
		if postAll[id] {
			return false
		}
	}

	// Verify against (and record in) the precedence graph; every new edge is
	// incident to this routine, so removing its node undoes a failed attempt.
	node := order.RoutineNode(run.id)
	s.c.graph.AddNode(node)
	if !addEdges(s.c.graph, preAll, node, postAll) {
		s.c.graph.Remove(node)
		return false
	}

	for _, p := range plans {
		// JiT placements carry no time estimates: the routine starts using its
		// devices immediately, so positional order alone defines the schedule.
		acc := lineage.Access{Routine: run.id, Status: lineage.Scheduled}
		var err error
		switch p.mode {
		case 0:
			_, err = s.c.table.Append(p.dev, acc)
		case 1:
			_, _, err = s.c.table.InsertAfter(p.dev, acc, p.anchor)
			if err == nil {
				// The post-lease hand-off: the source's lock-access is released.
				err = s.c.table.SetStatus(p.dev, p.anchor, lineage.Released)
			}
		case 2:
			_, _, err = s.c.table.InsertBefore(p.dev, acc, p.anchor)
			if err == nil {
				run.preLeasedFrom[p.dev] = p.anchor
			}
		}
		if err != nil {
			panic(fmt.Sprintf("visibility: jit placement: %v", err))
		}
	}
	run.placed = true
	s.c.removeFromWaitQ(run)
	return true
}

// postLeaseOK enforces the dirty-read restriction of §4.1 for an explicit
// post-lease from src to dst on device d.
func (s *jitScheduler) postLeaseOK(src, dst *evRun, d device.ID) bool {
	if !src.firstTouched[d] {
		return true
	}
	for _, rd := range dst.r.ReadDevices() {
		if rd == d {
			return false
		}
	}
	return true
}

// --- Timeline -----------------------------------------------------------------

// tlScheduler speculatively places every new routine into the lineage table
// immediately, using estimated lock-hold durations to find gaps (Fig 9,
// Algorithm 1). A placement is valid only if, across all of the routine's
// devices, the union of routines placed before it and the union placed after
// it do not intersect. If no gap placement is consistent, the routine is
// appended at the end of every lineage.
type tlScheduler struct {
	c *evController
}

func (s *tlScheduler) kind() SchedulerKind { return SchedTL }

func (s *tlScheduler) onSubmit(run *evRun) {
	if placements, ok := s.search(run); ok {
		s.apply(run, placements)
	} else {
		s.c.placeAtEnd(run)
	}
	s.c.startRun(run)
}

func (s *tlScheduler) onFree(device.ID) {}
func (s *tlScheduler) onRoutineDone()   {}

// tlPlacement is the chosen gap for one device of the routine being placed.
type tlPlacement struct {
	dev   device.ID
	index int
	start time.Time
	dur   time.Duration
	pre   []routine.ID
	post  []routine.ID
}

// tlSearchBudget bounds Algorithm 1's backtracking. Realistic lineage tables
// produce a handful of gaps per device and the search finishes in tens of
// steps; the budget only exists to keep pathological workloads (very long
// routines over crowded lineages) from exploding — when exhausted the routine
// simply falls back to appending at the end of every lineage.
const tlSearchBudget = 4096

// search implements Algorithm 1: a backtracking walk over the routine's
// devices in first-touch order, trying lineage gaps in temporal order and
// validating the preSet/postSet disjointness at every step.
func (s *tlScheduler) search(run *evRun) ([]tlPlacement, bool) {
	devs := run.r.Devices()
	now := s.c.env.Now()
	out := make([]tlPlacement, 0, len(devs))
	budget := tlSearchBudget

	var rec func(i int, earliest time.Time, pre, post map[routine.ID]bool) bool
	rec = func(i int, earliest time.Time, pre, post map[routine.ID]bool) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if i == len(devs) {
			return true
		}
		d := devs[i]
		dur := run.r.HoldEstimate(d, s.c.opts.DefaultShort)
		l := s.c.table.Lineage(d)
		for _, gap := range s.c.table.Gaps(d, now) {
			if !s.c.opts.PreLease && gap.Index < len(l.Accesses) {
				// Placing ahead of an already-scheduled access is a pre-lease;
				// with pre-leasing disabled only the tail gap is allowed.
				continue
			}
			start, fits := gap.Fits(earliest, dur)
			if !fits {
				continue
			}
			gapPre := accessRoutines(l.Accesses[:gap.Index])
			gapPost := accessRoutines(l.Accesses[gap.Index:])
			newPre := unionSets(pre, gapPre)
			newPost := unionSets(post, gapPost)
			if setsIntersect(newPre, newPost) {
				continue // try the next gap (the backtracking step of Algo 1)
			}
			out = append(out, tlPlacement{dev: d, index: gap.Index, start: start, dur: dur, pre: gapPre, post: gapPost})
			if rec(i+1, start.Add(dur), newPre, newPost) {
				return true
			}
			out = out[:len(out)-1]
		}
		return false
	}

	if rec(0, now, make(map[routine.ID]bool), make(map[routine.ID]bool)) {
		return out, true
	}
	return nil, false
}

// apply inserts the chosen placements into the lineage table and the
// precedence graph. If the graph rejects an edge (the placement would
// contradict ordering constraints not visible in the lineages alone), the
// routine falls back to appending at the end of every lineage.
func (s *tlScheduler) apply(run *evRun, placements []tlPlacement) {
	node := order.RoutineNode(run.id)
	s.c.graph.AddNode(node)
	pre := make(map[routine.ID]bool)
	post := make(map[routine.ID]bool)
	for _, p := range placements {
		addAll(pre, p.pre)
		addAll(post, p.post)
	}
	if !addEdges(s.c.graph, pre, node, post) {
		s.c.graph.Remove(node)
		s.c.placeAtEnd(run)
		return
	}
	for _, p := range placements {
		acc := lineage.Access{Routine: run.id, Status: lineage.Scheduled, Start: p.start, Duration: p.dur}
		_, postRoutines, err := s.c.table.InsertAt(p.dev, p.index, acc)
		if err != nil {
			panic(fmt.Sprintf("visibility: timeline placement: %v", err))
		}
		if len(postRoutines) > 0 && s.c.opts.PreLease {
			// Being placed ahead of an already-scheduled access is a pre-lease
			// from that access's routine; the revocation clock is armed when
			// this routine actually acquires the device.
			run.preLeasedFrom[p.dev] = postRoutines[0]
		}
	}
	run.placed = true
}

// --- shared helpers -----------------------------------------------------------

func accessRoutines(accs []lineage.Access) []routine.ID {
	out := make([]routine.ID, 0, len(accs))
	for _, a := range accs {
		out = append(out, a.Routine)
	}
	return out
}

func addAll(dst map[routine.ID]bool, ids []routine.ID) {
	for _, id := range ids {
		dst[id] = true
	}
}

func unionSets(a map[routine.ID]bool, b []routine.ID) map[routine.ID]bool {
	out := make(map[routine.ID]bool, len(a)+len(b))
	for id := range a {
		out[id] = true
	}
	for _, id := range b {
		out[id] = true
	}
	return out
}

func setsIntersect(a, b map[routine.ID]bool) bool {
	small, big := a, b
	if len(b) < len(a) {
		small, big = b, a
	}
	for id := range small {
		if big[id] {
			return true
		}
	}
	return false
}

// addEdges adds pre→node and node→post edges, reporting whether every edge
// was consistent with the existing order. Duplicate edges are fine.
func addEdges(g *order.Graph, pre map[routine.ID]bool, node order.Node, post map[routine.ID]bool) bool {
	for id := range pre {
		if err := g.AddEdge(order.RoutineNode(id), node); err != nil {
			return false
		}
	}
	for id := range post {
		if err := g.AddEdge(node, order.RoutineNode(id)); err != nil {
			return false
		}
	}
	return true
}

// Eventual-Visibility scheduling policies (§5 of the paper): First Come
// First Serve, Just-in-Time, and Timeline scheduling.
//
// The schedulers sit on the controller's hot path — every submission runs a
// placement search and every lock release a wake-up scan — so they keep all
// search state in reusable scratch structures: epoch-stamped routine-ID sets
// for the preSet/postSet disjointness tests, pooled placement and gap
// buffers, and a mark-dequeue wait queue compacted in a single pass. In
// steady state a placement attempt performs no map or slice allocation.
package visibility

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/lineage"
	"safehome/internal/order"
	"safehome/internal/routine"
)

// --- scratch routine-ID sets -------------------------------------------------

// idSet is a reusable set of routine IDs. Routine IDs are dense (assigned
// sequentially per controller), so membership is an epoch-stamped slice
// indexed by ID: reset is O(1), and steady-state add/has/membership walks
// allocate nothing. The members are also kept in insertion order so the set
// can be iterated deterministically (maps would randomize edge-insertion
// order).
type idSet struct {
	stamp []uint32
	epoch uint32
	ids   []routine.ID
}

// reset empties the set in O(1) by advancing the epoch.
func (s *idSet) reset() {
	s.epoch++
	if s.epoch == 0 { // wrap: clear stamps so stale epochs cannot collide
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.ids = s.ids[:0]
}

func (s *idSet) has(id routine.ID) bool {
	return int(id) < len(s.stamp) && s.stamp[id] == s.epoch
}

// add inserts id, reporting whether it was newly added.
func (s *idSet) add(id routine.ID) bool {
	if int(id) >= len(s.stamp) {
		grown := make([]uint32, int(id)+16)
		copy(grown, s.stamp)
		s.stamp = grown
	}
	if s.stamp[id] == s.epoch {
		return false
	}
	s.stamp[id] = s.epoch
	s.ids = append(s.ids, id)
	return true
}

// truncate undoes every add after the ids slice had length mark (the
// Timeline search's backtracking step).
func (s *idSet) truncate(mark int) {
	for _, id := range s.ids[mark:] {
		s.stamp[id] = 0
	}
	s.ids = s.ids[:mark]
}

// addEdgesSet adds pre→node and node→post edges, reporting whether every
// edge was consistent with the existing order. Duplicate edges are fine.
// Iteration follows set insertion order, which is deterministic; acceptance
// of the whole batch is order-independent (all edges are incident to node,
// so the batch fails iff the combined graph has a cycle, regardless of
// insertion order).
// foldedPre adds each touched device's folded baseline writer (the routine
// whose access commit compaction removed from the lineage) to the pre set:
// its write is the device's committed state, so any new placement must
// serialize after it even though the lineage no longer shows it.
func (c *evController) foldedPre(run *evRun, pre *idSet) {
	for _, d := range run.r.Devices() {
		if lf := c.table.LastFolded(d); lf != routine.None && lf != run.id && c.graph.Has(order.RoutineNode(lf)) {
			pre.add(lf)
		}
	}
}

func addEdgesSet(g *order.Graph, pre *idSet, node order.Node, post *idSet) bool {
	for _, id := range pre.ids {
		if g.AddEdge(order.RoutineNode(id), node) != nil {
			return false
		}
	}
	for _, id := range post.ids {
		if g.AddEdge(node, order.RoutineNode(id)) != nil {
			return false
		}
	}
	return true
}

// --- FCFS --------------------------------------------------------------------

// fcfsScheduler serializes routines in arrival order: lock-accesses are
// appended to every lineage at submission, pre-leases are never used (they
// would contradict arrival order), and a routine starts once every device it
// needs is acquirable. Post-leases (early release after a routine's last
// touch) still apply, performed by the controller.
type fcfsScheduler struct {
	c *evController
	// scanning/rescan guard tryStart against reentrancy: starting a routine
	// can synchronously complete it (condition-skipped commands), which
	// releases locks and re-triggers the scheduler mid-scan. The inner call
	// just flags a rescan; the outer pass restarts, matching the semantics of
	// the old restart-from-zero splice loop without its O(n²) splicing.
	scanning bool
	rescan   bool
}

func (s *fcfsScheduler) kind() SchedulerKind { return SchedFCFS }

func (s *fcfsScheduler) onSubmit(run *evRun) {
	s.c.placeAtEnd(run)
	s.c.enqueueWait(run)
	s.tryStart()
}

func (s *fcfsScheduler) onFree(device.ID) { s.tryStart() }
func (s *fcfsScheduler) onRoutineDone()   { s.tryStart() }

// tryStart begins every waiting routine whose devices are all acquirable.
// Because accesses were appended in arrival order, starting a later routine
// early never violates the serialization order — it simply exploits
// non-conflicting parallelism. Finished and dequeued entries are compacted
// out of the wait queue in the same single pass (no per-entry splicing).
func (s *fcfsScheduler) tryStart() {
	if s.scanning {
		s.rescan = true
		return
	}
	s.scanning = true
	defer func() { s.scanning = false }()
	for {
		s.rescan = false
		q := s.c.waitQ
		w := 0
		for r := 0; r < len(q); r++ {
			run := q[r]
			if !run.queued || run.done || run.running {
				run.queued = false
				continue // compact finished/dequeued entries out
			}
			ready := true
			for _, d := range run.r.Devices() {
				if !s.c.table.CanAcquire(d, run.id) {
					ready = false
					break
				}
			}
			if !ready {
				q[w] = run
				w++
				continue
			}
			run.queued = false
			s.c.startRun(run)
			if s.rescan {
				// The start synchronously released locks; earlier entries may
				// have become ready. Keep the unexamined tail and restart.
				w += copy(q[w:], q[r+1:])
				break
			}
		}
		for i := w; i < len(q); i++ {
			q[i] = nil // drop references so finished runs can be collected
		}
		s.c.waitQ = q[:w]
		if !s.rescan {
			return
		}
	}
}

// --- Just-in-Time -------------------------------------------------------------

// jitScheduler greedily starts a routine at the earliest moment it can
// acquire all its locks — right away, or via pre-leases and post-leases. The
// eligibility test runs on every routine arrival and on every lock release.
// A per-routine TTL prevents starvation: once it expires, the routine is
// prioritized and other waiting routines are held back until it starts.
type jitScheduler struct {
	c        *evController
	scanning bool
	rescan   bool

	// Scratch for tryPlace: the accumulated preSet/postSet and the per-device
	// placement plan, reused across eligibility tests.
	pre   idSet
	post  idSet
	plans []jitPlacement
}

func (s *jitScheduler) kind() SchedulerKind { return SchedJiT }

func (s *jitScheduler) onSubmit(run *evRun) {
	if s.hasPrioritizedWaiter() {
		// A starved routine goes first; newcomers queue behind it.
		s.enqueue(run)
		return
	}
	if s.tryPlace(run) {
		s.c.startRun(run)
		return
	}
	s.enqueue(run)
}

func (s *jitScheduler) enqueue(run *evRun) {
	s.c.enqueueWait(run)
	ttl := s.c.opts.JiTTTL
	run.ttlCancel = s.c.env.After(ttl, func() {
		if run.done || run.running {
			return
		}
		run.prioritized = true
		s.scan()
	})
}

func (s *jitScheduler) onFree(device.ID) { s.scan() }
func (s *jitScheduler) onRoutineDone()   { s.scan() }

func (s *jitScheduler) hasPrioritizedWaiter() bool {
	for _, run := range s.c.waitQ {
		if run.queued && run.prioritized && !run.done && !run.running {
			return true
		}
	}
	return false
}

// scan retries the eligibility test on waiting routines: prioritized routines
// first (in arrival order), then the rest in arrival order. While any
// prioritized routine is still waiting, non-prioritized routines are held
// back so the starved routine gets the next available locks. Each successful
// start mutates the lineage table, so the pass restarts after every start
// (preserving arrival-order preference); finished entries are compacted out
// in the same sweep.
func (s *jitScheduler) scan() {
	if s.scanning {
		s.rescan = true
		return
	}
	s.scanning = true
	defer func() { s.scanning = false }()
	for {
		s.rescan = false
		prioritized := s.hasPrioritizedWaiter()
		q := s.c.waitQ
		w := 0
		started := false
		for r := 0; r < len(q); r++ {
			run := q[r]
			if !run.queued || run.done || run.running {
				run.queued = false
				continue
			}
			if prioritized && !run.prioritized {
				q[w] = run
				w++
				continue
			}
			if !s.tryPlace(run) {
				q[w] = run
				w++
				continue
			}
			s.c.startRun(run) // tryPlace already dequeued the run
			w += copy(q[w:], q[r+1:])
			started = true
			break
		}
		for i := w; i < len(q); i++ {
			q[i] = nil
		}
		s.c.waitQ = q[:w]
		if !started && !s.rescan {
			return
		}
	}
}

// jitPlacement is one device's placement decision during the eligibility
// test. The implied pre/post routines are accumulated directly into the
// scheduler's scratch sets rather than materialized per device.
type jitPlacement struct {
	dev    device.ID
	mode   int // 0 = append, 1 = post-lease (insert after anchor), 2 = pre-lease (insert before anchor)
	anchor routine.ID
}

// tryPlace runs the JiT eligibility test (§5): the routine is placed — and
// may start — only if every device it needs can be obtained immediately,
// either because the lock is free, or through a post-lease from a routine
// that is done with the device, or through a pre-lease from a routine that
// has not used it yet. Placement is rejected if the implied preSet and
// postSet intersect or contradict the existing serialization order.
func (s *jitScheduler) tryPlace(run *evRun) bool {
	s.plans = s.plans[:0]
	s.pre.reset()
	s.post.reset()

	for _, d := range run.r.Devices() {
		l := s.c.table.Lineage(d)
		fi := -1
		nonReleased := 0
		for i, a := range l.Accesses {
			if a.Status != lineage.Released {
				if fi == -1 {
					fi = i
				}
				nonReleased++
			}
		}
		switch {
		case fi == -1:
			// Lock free (possibly via earlier post-leases): take it at the end.
			s.plans = append(s.plans, jitPlacement{dev: d, mode: 0})
			for _, a := range l.Accesses {
				s.pre.add(a.Routine)
			}

		case nonReleased == 1:
			owner := l.Accesses[fi]
			ownerRun, ok := s.c.runs[owner.Routine]
			if !ok {
				return false
			}
			switch {
			case s.c.opts.PostLease && ownerRun.lastTouchDone[d] && s.postLeaseOK(ownerRun, run, d):
				s.plans = append(s.plans, jitPlacement{dev: d, mode: 1, anchor: owner.Routine})
				for _, a := range l.Accesses[:fi+1] {
					s.pre.add(a.Routine)
				}
			case s.c.opts.PreLease && owner.Status == lineage.Scheduled && !ownerRun.firstTouched[d] &&
				!(ownerRun.inflight && ownerRun.inflightDev == d):
				s.plans = append(s.plans, jitPlacement{dev: d, mode: 2, anchor: owner.Routine})
				for _, a := range l.Accesses[:fi] {
					s.pre.add(a.Routine)
				}
				for _, a := range l.Accesses[fi:] {
					s.post.add(a.Routine)
				}
			default:
				return false
			}

		default:
			// Two or more routines already queued for the device: the lock
			// cannot be obtained right now.
			return false
		}
	}

	s.c.foldedPre(run, &s.pre)
	for _, id := range s.pre.ids {
		if s.post.has(id) {
			return false
		}
	}

	// Verify against (and record in) the precedence graph; every new edge is
	// incident to this routine, so removing its node undoes a failed attempt.
	node := order.RoutineNode(run.id)
	s.c.graph.AddNode(node)
	if !addEdgesSet(s.c.graph, &s.pre, node, &s.post) {
		s.c.graph.Remove(node)
		return false
	}

	for _, p := range s.plans {
		// JiT placements carry no time estimates: the routine starts using its
		// devices immediately, so positional order alone defines the schedule.
		acc := lineage.Access{Routine: run.id, Status: lineage.Scheduled}
		var err error
		switch p.mode {
		case 0:
			err = s.c.table.PlaceAt(p.dev, len(s.c.table.Lineage(p.dev).Accesses), acc)
		case 1:
			idx := s.c.table.Find(p.dev, p.anchor)
			if idx < 0 {
				err = fmt.Errorf("%w: anchor R%d on %s", lineage.ErrNoSuchSlot, p.anchor, p.dev)
			} else if err = s.c.table.PlaceAt(p.dev, idx+1, acc); err == nil {
				// The post-lease hand-off: the source's lock-access is released.
				err = s.c.table.SetStatus(p.dev, p.anchor, lineage.Released)
			}
		case 2:
			idx := s.c.table.Find(p.dev, p.anchor)
			if idx < 0 {
				err = fmt.Errorf("%w: anchor R%d on %s", lineage.ErrNoSuchSlot, p.anchor, p.dev)
			} else if err = s.c.table.PlaceAt(p.dev, idx, acc); err == nil {
				run.setPreLeasedFrom(p.dev, p.anchor)
			}
		}
		if err != nil {
			panic(fmt.Sprintf("visibility: jit placement: %v", err))
		}
	}
	run.placed = true
	s.c.removeFromWaitQ(run)
	return true
}

// postLeaseOK enforces the dirty-read restriction of §4.1 for an explicit
// post-lease from src to dst on device d.
func (s *jitScheduler) postLeaseOK(src, dst *evRun, d device.ID) bool {
	if !src.firstTouched[d] {
		return true
	}
	for _, rd := range dst.r.ReadDevices() {
		if rd == d {
			return false
		}
	}
	return true
}

// --- Timeline -----------------------------------------------------------------

// tlScheduler speculatively places every new routine into the lineage table
// immediately, using estimated lock-hold durations to find gaps (Fig 9,
// Algorithm 1). A placement is valid only if, across all of the routine's
// devices, the union of routines placed before it and the union placed after
// it do not intersect. If no gap placement is consistent, the routine is
// appended at the end of every lineage.
type tlScheduler struct {
	c *evController

	// Scratch reused across searches: the accumulated preSet/postSet (with
	// truncate-based backtracking), the chosen placements, and one gap buffer
	// per search depth.
	pre        idSet
	post       idSet
	placements []tlPlacement
	gapBufs    [][]lineage.Gap
}

func (s *tlScheduler) kind() SchedulerKind { return SchedTL }

func (s *tlScheduler) onSubmit(run *evRun) {
	if placements, ok := s.search(run); ok {
		s.apply(run, placements)
	} else {
		s.c.placeAtEnd(run)
	}
	s.c.startRun(run)
}

func (s *tlScheduler) onFree(device.ID) {}
func (s *tlScheduler) onRoutineDone()   {}

// tlPlacement is the chosen gap for one device of the routine being placed.
type tlPlacement struct {
	dev   device.ID
	index int
	start time.Time
	dur   time.Duration
}

// tlSearchBudget bounds Algorithm 1's backtracking. Realistic lineage tables
// produce a handful of gaps per device and the search finishes in tens of
// steps; the budget only exists to keep pathological workloads (very long
// routines over crowded lineages) from exploding — when exhausted the routine
// simply falls back to appending at the end of every lineage.
const tlSearchBudget = 4096

// search implements Algorithm 1: a backtracking walk over the routine's
// devices in first-touch order, trying lineage gaps in temporal order and
// validating the preSet/postSet disjointness at every step.
//
// The preSet/postSet are maintained incrementally in the scheduler's scratch
// idSets: trying a gap tentatively adds that lineage's prefix routines to pre
// and suffix routines to post, checking each against the opposite set
// (equivalent to the full union-intersection test, since a routine appears at
// most once per lineage and the sets are disjoint by induction); rejecting or
// backtracking truncates the sets back to their marks. No per-gap map or
// slice is ever allocated. On success the sets hold exactly the routine's
// accumulated preSet/postSet, which apply() turns into precedence edges.
func (s *tlScheduler) search(run *evRun) ([]tlPlacement, bool) {
	devs := run.r.Devices()
	now := s.c.env.Now()
	s.placements = s.placements[:0]
	s.pre.reset()
	s.post.reset()
	for len(s.gapBufs) < len(devs) {
		s.gapBufs = append(s.gapBufs, make([]lineage.Gap, 0, 16))
	}
	budget := tlSearchBudget

	var rec func(i int, earliest time.Time) bool
	rec = func(i int, earliest time.Time) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if i == len(devs) {
			return true
		}
		d := devs[i]
		dur := run.r.HoldEstimate(d, s.c.opts.DefaultShort)
		l := s.c.table.Lineage(d)
		gaps := s.c.table.GapsInto(s.gapBufs[i][:0], d, now)
		s.gapBufs[i] = gaps
		for _, gap := range gaps {
			if !s.c.opts.PreLease && gap.Index < len(l.Accesses) {
				// Placing ahead of an already-scheduled access is a pre-lease;
				// with pre-leasing disabled only the tail gap is allowed.
				continue
			}
			start, fits := gap.Fits(earliest, dur)
			if !fits {
				continue
			}
			preMark, postMark := len(s.pre.ids), len(s.post.ids)
			ok := true
			for _, a := range l.Accesses[:gap.Index] {
				if s.post.has(a.Routine) {
					ok = false
					break
				}
				s.pre.add(a.Routine)
			}
			if ok {
				for _, a := range l.Accesses[gap.Index:] {
					if s.pre.has(a.Routine) {
						ok = false
						break
					}
					s.post.add(a.Routine)
				}
			}
			if ok {
				s.placements = append(s.placements, tlPlacement{dev: d, index: gap.Index, start: start, dur: dur})
				if rec(i+1, start.Add(dur)) {
					return true
				}
				s.placements = s.placements[:len(s.placements)-1]
			}
			// Backtrack: undo this gap's tentative additions (the next-gap
			// step of Algo 1).
			s.pre.truncate(preMark)
			s.post.truncate(postMark)
		}
		return false
	}

	if rec(0, now) {
		return s.placements, true
	}
	return nil, false
}

// apply inserts the chosen placements into the lineage table and the
// precedence graph, consuming the preSet/postSet the successful search left
// in the scratch sets. If the graph rejects an edge (the placement would
// contradict ordering constraints not visible in the lineages alone), the
// routine falls back to appending at the end of every lineage.
func (s *tlScheduler) apply(run *evRun, placements []tlPlacement) {
	node := order.RoutineNode(run.id)
	s.c.graph.AddNode(node)
	s.c.foldedPre(run, &s.pre)
	if !addEdgesSet(s.c.graph, &s.pre, node, &s.post) {
		s.c.graph.Remove(node)
		s.c.placeAtEnd(run)
		return
	}
	for _, p := range placements {
		l := s.c.table.Lineage(p.dev)
		leaseFrom := routine.None
		if p.index < len(l.Accesses) {
			// Being placed ahead of an already-scheduled access is a pre-lease
			// from that access's routine; the revocation clock is armed when
			// this routine actually acquires the device.
			leaseFrom = l.Accesses[p.index].Routine
		}
		acc := lineage.Access{Routine: run.id, Status: lineage.Scheduled, Start: p.start, Duration: p.dur}
		if err := s.c.table.PlaceAt(p.dev, p.index, acc); err != nil {
			panic(fmt.Sprintf("visibility: timeline placement: %v", err))
		}
		if leaseFrom != routine.None && s.c.opts.PreLease {
			run.setPreLeasedFrom(p.dev, leaseFrom)
		}
	}
	run.placed = true
}

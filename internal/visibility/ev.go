package visibility

import (
	"fmt"
	"time"

	"safehome/internal/device"
	"safehome/internal/lineage"
	"safehome/internal/order"
	"safehome/internal/routine"
)

// evController implements Eventual Visibility (§4–§5): virtual locks tracked
// in a lineage table, early (positional) lock acquisition, pre-/post-leasing,
// commit compaction, failure/restart serialization, and a pluggable
// scheduler (FCFS, JiT or Timeline).
type evController struct {
	base

	table *lineage.Table
	graph *order.Graph
	sched evScheduler

	runs map[routine.ID]*evRun
	// waitQ is the scheduler wait queue. Entries are dequeued by clearing
	// their queued flag (no splicing); the schedulers compact cleared and
	// finished entries out in a single pass during their scans, so queue
	// maintenance is O(n) per scan instead of one O(n) splice per removal.
	waitQ   []*evRun
	waiters map[device.ID][]*evRun
}

// evRun is the controller-side execution state of one routine.
type evRun struct {
	res *Result
	r   *routine.Routine
	id  routine.ID

	placed  bool // accesses are in the lineage table
	running bool // released to execute (scheduler decision)
	done    bool
	queued  bool // live entry in the controller's wait queue

	idx         int
	inflight    bool
	inflightDev device.ID

	executed []cmdRecord

	// The per-device maps below are allocated lazily (reads of a nil map are
	// fine; the mark/set helpers initialize on first write), so submitting a
	// routine allocates no maps — many routines finish without ever
	// pre-leasing or arming a timer.
	firstTouched  map[device.ID]bool
	lastTouchDone map[device.ID]bool

	doomed     bool
	doomReason string

	blockedOn device.ID

	// preLeasedFrom records, per device, the routine this run was pre-leased
	// the lock from (the lease source); used for revocation bookkeeping.
	preLeasedFrom map[device.ID]routine.ID
	leaseTimers   map[device.ID]func()

	prioritized bool
	ttlCancel   func()
}

func newEVRun(res *Result, r *routine.Routine) *evRun {
	return &evRun{res: res, r: r, id: res.ID}
}

func (run *evRun) markFirstTouched(d device.ID) {
	if run.firstTouched == nil {
		run.firstTouched = make(map[device.ID]bool, 4)
	}
	run.firstTouched[d] = true
}

func (run *evRun) markLastTouchDone(d device.ID) {
	if run.lastTouchDone == nil {
		run.lastTouchDone = make(map[device.ID]bool, 4)
	}
	run.lastTouchDone[d] = true
}

func (run *evRun) setPreLeasedFrom(d device.ID, src routine.ID) {
	if run.preLeasedFrom == nil {
		run.preLeasedFrom = make(map[device.ID]routine.ID, 2)
	}
	run.preLeasedFrom[d] = src
}

func (run *evRun) setLeaseTimer(d device.ID, cancel func()) {
	if run.leaseTimers == nil {
		run.leaseTimers = make(map[device.ID]func(), 2)
	}
	run.leaseTimers[d] = cancel
}

func newEV(env Env, initial map[device.ID]device.State, opts Options) *evController {
	c := &evController{
		base:    newBase(env, initial, opts),
		table:   lineage.NewTable(initial),
		graph:   order.NewGraph(),
		runs:    make(map[routine.ID]*evRun),
		waiters: make(map[device.ID][]*evRun),
	}
	switch opts.Scheduler {
	case SchedFCFS:
		c.sched = &fcfsScheduler{c: c}
	case SchedJiT:
		c.sched = &jitScheduler{c: c}
	default:
		c.sched = &tlScheduler{c: c}
	}
	return c
}

func (c *evController) Model() Model { return EV }

// SchedulerName reports the active scheduling policy.
func (c *evController) SchedulerName() string { return c.sched.kind().String() }

// Table exposes the lineage table for tests and the hub's inspection API.
func (c *evController) Table() *lineage.Table { return c.table }

func (c *evController) Submit(r *routine.Routine) routine.ID {
	res, cp := c.assign(r)
	run := newEVRun(res, cp)
	c.runs[cp.ID] = run
	c.sched.onSubmit(run)
	c.checkInvariants("submit")
	return cp.ID
}

// Serialization returns the current serialization order implied by the
// precedence graph: committed and in-flight routines, failure events, and
// restart events. Aborted routines never appear (§3).
func (c *evController) Serialization() []order.Node { return c.graph.Order() }

// CompactBefore folds released lock-access history whose estimated hold
// ended before t into the committed states (lineage.Table.CompactBefore) and
// keeps the controller's committed-state view in sync. The home runtime
// calls this on its HistoryHorizon cadence so per-device gap scans stay
// bounded under sustained load. It returns the number of accesses folded.
func (c *evController) CompactBefore(t time.Time) int {
	n := c.table.CompactBefore(t)
	if n > 0 {
		for _, d := range c.table.Devices() {
			if st := c.table.Committed(d); st != device.StateUnknown && c.committed[d] != st {
				c.setCommitted(d, st)
			}
		}
		c.checkInvariants("compact-before")
	}
	return n
}

// --- scheduler plumbing -----------------------------------------------------

// evScheduler is the strategy interface for §5's scheduling policies.
type evScheduler interface {
	kind() SchedulerKind
	// onSubmit decides where (and when) the new routine is placed.
	onSubmit(run *evRun)
	// onFree is invoked whenever a lock-access on d is released or removed.
	onFree(d device.ID)
	// onRoutineDone is invoked after a routine commits or aborts.
	onRoutineDone()
}

// placeAtEnd appends Scheduled accesses for every device the routine touches
// to the tail of the corresponding lineages, and records the implied
// precedence edges. Appending is always consistent with the existing order
// (the routine becomes a sink of the precedence graph).
func (c *evController) placeAtEnd(run *evRun) {
	now := c.env.Now()
	node := order.RoutineNode(run.id)
	c.graph.AddNode(node)
	for _, d := range run.r.Devices() {
		l := c.table.Lineage(d)
		start := c.table.TailStart(d, now)
		for _, a := range l.Accesses {
			// Ignore duplicate-edge errors; appending cannot create cycles.
			_ = c.graph.AddEdge(order.RoutineNode(a.Routine), node)
		}
		// Compaction may have emptied the lineage, but the folded baseline
		// writer still precedes every later access (the node being placed has
		// no outgoing edges yet, so this cannot cycle).
		if lf := c.table.LastFolded(d); lf != routine.None && lf != run.id && c.graph.Has(order.RoutineNode(lf)) {
			_ = c.graph.AddEdge(order.RoutineNode(lf), node)
		}
		err := c.table.PlaceAt(d, len(l.Accesses), lineage.Access{
			Routine:  run.id,
			Status:   lineage.Scheduled,
			Start:    start,
			Duration: run.r.HoldEstimate(d, c.opts.DefaultShort),
		})
		if err != nil {
			panic(fmt.Sprintf("visibility: placeAtEnd: %v", err))
		}
	}
	run.placed = true
}

// startRun releases the routine for execution; it will acquire each device's
// lock lazily as it reaches commands on that device.
func (c *evController) startRun(run *evRun) {
	if run.running || run.done {
		return
	}
	run.running = true
	if run.ttlCancel != nil {
		run.ttlCancel()
		run.ttlCancel = nil
	}
	c.advance(run)
}

// advance drives a routine's execution state machine: acquire the next
// command's lock (or block), evaluate its condition, and execute it.
func (c *evController) advance(run *evRun) {
	if run.done || !run.running || run.inflight {
		return
	}
	if run.doomed {
		c.abortRun(run)
		return
	}
	if run.idx >= len(run.r.Commands) {
		c.commitRun(run)
		return
	}
	cmd := run.r.Commands[run.idx]
	d := cmd.Device

	if !c.table.CanAcquire(d, run.id) {
		run.blockedOn = d
		c.waiters[d] = append(c.waiters[d], run)
		return
	}
	run.blockedOn = ""

	if st, _ := c.table.Status(d, run.id); st == lineage.Scheduled {
		if err := c.table.SetStatus(d, run.id, lineage.Acquired); err != nil {
			panic(fmt.Sprintf("visibility: acquire: %v", err))
		}
		if src, leased := run.preLeasedFrom[d]; leased {
			// The lease clock starts ticking when the destination actually
			// begins using the device.
			c.armPreLeaseRevocation(run, d, src)
		}
	}
	if run.res.Started.IsZero() {
		c.markStarted(run.res)
	}

	// Conditional commands read the home through the lineage table's inferred
	// current state (Fig 8) — never by querying devices.
	if cmd.Condition != nil && c.table.CurrentState(cmd.Condition.Device) != cmd.Condition.Equals {
		run.res.Skipped++
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandSkipped, Routine: run.id, Device: d})
		c.afterCommandOn(run, run.idx)
		run.idx++
		c.advance(run)
		return
	}

	idx := run.idx
	run.inflight = true
	run.inflightDev = d
	c.env.Exec(run.id, cmd, c.opts.hold(cmd), func(err error) {
		c.onCommandDone(run, idx, err)
	})
}

func (c *evController) onCommandDone(run *evRun, idx int, err error) {
	run.inflight = false
	run.inflightDev = ""
	if run.done {
		return
	}
	cmd := run.r.Commands[idx]
	d := cmd.Device
	if err != nil {
		c.emit(Event{Time: c.env.Now(), Kind: EvCommandFailed, Routine: run.id, Device: d, Detail: err.Error()})
		if cmd.Must() {
			c.doom(run, fmt.Sprintf("must command on %s failed: %v", d, err))
			c.advance(run)
			return
		}
		run.res.BestEffortFailures++
	} else {
		run.res.Executed++
		run.executed = append(run.executed, cmdRecord{idx: idx, dev: d, target: cmd.Target})
		run.markFirstTouched(d)
		if err := c.table.SetTarget(d, run.id, cmd.Target); err == nil {
			c.emit(Event{Time: c.env.Now(), Kind: EvCommandExecuted, Routine: run.id, Device: d, State: cmd.Target})
		}
	}
	c.afterCommandOn(run, idx)
	run.idx++
	c.advance(run)
	c.checkInvariants("command-done")
}

// afterCommandOn handles last-touch bookkeeping and post-leasing for the
// command at index idx.
func (c *evController) afterCommandOn(run *evRun, idx int) {
	d := run.r.Commands[idx].Device
	if idx != run.r.LastIndexOn(d) {
		return
	}
	run.markLastTouchDone(d)
	if timer, ok := run.leaseTimers[d]; ok {
		timer()
		delete(run.leaseTimers, d)
	}
	if c.opts.PostLease && c.canPostLease(run, d) {
		c.releaseAccess(run, d)
	}
}

// canPostLease checks the dirty-read restriction of §4.1: the lock may not be
// released early if this routine wrote the device and the next routine in the
// device's lineage reads it through a conditional command.
func (c *evController) canPostLease(run *evRun, d device.ID) bool {
	if !run.firstTouched[d] {
		return true // nothing was written; no dirty read possible
	}
	post := c.table.PostSet(d, run.id)
	if len(post) == 0 {
		return true
	}
	next, ok := c.runs[post[0]]
	if !ok {
		return true
	}
	for _, rd := range next.r.ReadDevices() {
		if rd == d {
			return false
		}
	}
	return true
}

// releaseAccess marks the routine's lock-access on d Released and wakes
// successors (the post-lease hand-off of Fig 6c).
func (c *evController) releaseAccess(run *evRun, d device.ID) {
	st, ok := c.table.Status(d, run.id)
	if !ok || st == lineage.Released {
		return
	}
	if err := c.table.SetStatus(d, run.id, lineage.Released); err != nil {
		panic(fmt.Sprintf("visibility: release: %v", err))
	}
	c.onFree(d)
}

// onFree wakes routines blocked on d and gives the scheduler a chance to
// start waiting routines.
func (c *evController) onFree(d device.ID) {
	blocked := c.waiters[d]
	if len(blocked) > 0 {
		// Detach the list before waking anyone: advance() may block runs on d
		// again, which must land in a fresh list, not the one being iterated.
		c.waiters[d] = nil
		for _, run := range blocked {
			c.advance(run)
		}
		if len(c.waiters[d]) == 0 {
			// Nobody re-blocked: hand the emptied backing array back so the
			// next block on d appends without allocating.
			for i := range blocked {
				blocked[i] = nil
			}
			c.waiters[d] = blocked[:0]
		}
	}
	c.sched.onFree(d)
}

// commitRun finalizes a successfully completed routine: committed states are
// updated and its lock-accesses compacted away (Fig 7).
func (c *evController) commitRun(run *evRun) {
	run.done = true
	run.running = false
	c.cancelTimers(run)
	c.markCommitted(run.res)

	devs := run.r.Devices()
	for _, d := range devs {
		// A Scheduled access means the routine never actually used the device
		// (e.g. every command on it was condition-skipped): drop the entry
		// without folding history beneath it.
		if st, ok := c.table.Status(d, run.id); ok && st == lineage.Scheduled {
			c.table.RemoveAccess(d, run.id)
		}
	}
	c.table.Compact(run.id)
	for _, d := range devs {
		c.setCommitted(d, c.table.Committed(d))
	}
	for _, d := range devs {
		c.onFree(d)
	}
	c.sched.onRoutineDone()
	c.checkInvariants("commit")
}

// doom marks a routine for abort; the abort happens as soon as no command is
// in flight.
func (c *evController) doom(run *evRun, reason string) {
	if run.done || run.doomed {
		return
	}
	run.doomed = true
	run.doomReason = reason
	if !run.inflight {
		c.abortRun(run)
	}
}

// abortRun aborts a routine: its executed commands are rolled back per §4.3
// (restore each device it was the last acquirer of to the previous lineage
// entry's state), its lock-accesses and graph node are removed, and waiting
// routines are given a chance to proceed.
func (c *evController) abortRun(run *evRun) {
	if run.done {
		return
	}
	run.done = true
	run.running = false
	c.cancelTimers(run)
	reason := run.doomReason
	if reason == "" {
		reason = "aborted"
	}
	c.markAborted(run.res, reason)

	// Devices this routine actually modified, in reverse touch order.
	modified := make(map[device.ID]int) // device -> executed-command count
	var revOrder []device.ID
	for i := len(run.executed) - 1; i >= 0; i-- {
		d := run.executed[i].dev
		if modified[d] == 0 {
			revOrder = append(revOrder, d)
		}
		modified[d]++
	}

	for _, d := range revOrder {
		if !c.table.LastAcquirerWas(d, run.id) {
			// Another routine has since acquired the device (it obtained the
			// lock via a lease); its effect supersedes ours — no restore.
			continue
		}
		target := c.table.RollbackTarget(d, run.id)
		run.res.RolledBack += modified[d]
		if target == device.StateUnknown || c.failed[d] {
			continue
		}
		if c.table.CurrentState(d) == target {
			continue
		}
		c.emit(Event{Time: c.env.Now(), Kind: EvRolledBack, Routine: run.id, Device: d, State: target})
		c.env.Exec(run.id, routine.Command{Device: d, Target: target}, c.opts.DefaultShort, func(error) {})
	}

	removed := c.table.RemoveRoutine(run.id)
	c.graph.Remove(order.RoutineNode(run.id))
	c.removeFromWaitQ(run)
	for _, d := range removed {
		c.onFree(d)
	}
	c.sched.onRoutineDone()
	c.checkInvariants("abort")
}

// enqueueWait adds a run to the scheduler wait queue (idempotent).
//
// Invariant: enqueueWait is only reachable from Submit (via the schedulers'
// onSubmit), never from the controller's internal callbacks, so it cannot
// run while a scheduler scan is compacting the queue. The scans rely on
// this: they rewrite c.waitQ in place and would silently drop an entry
// appended mid-scan.
func (c *evController) enqueueWait(run *evRun) {
	if run.queued {
		return
	}
	run.queued = true
	c.waitQ = append(c.waitQ, run)
}

// removeFromWaitQ dequeues a run by clearing its queued flag; the stale
// slice entry is compacted out by the next scheduler scan.
func (c *evController) removeFromWaitQ(run *evRun) {
	run.queued = false
}

func (c *evController) cancelTimers(run *evRun) {
	if run.ttlCancel != nil {
		run.ttlCancel()
		run.ttlCancel = nil
	}
	for d, cancel := range run.leaseTimers {
		cancel()
		delete(run.leaseTimers, d)
	}
}

// armPreLeaseRevocation starts the revocation timer for a pre-leased lock: if
// the destination routine has not finished with the device within the
// estimated span of its accesses to it (times the leniency factor) and
// another routine is blocked waiting for the device, the lease is revoked and
// the destination aborts (§4.1). When nobody is waiting the lease is simply
// extended for another interval — revocation exists to prevent starvation,
// not to punish slow routines that block no one.
func (c *evController) armPreLeaseRevocation(run *evRun, d device.ID, src routine.ID) {
	timeout := time.Duration(float64(run.r.SpanEstimate(d, c.opts.DefaultShort)) * c.opts.LeaseLeniency)
	if timeout <= 0 {
		timeout = c.opts.DefaultShort
	}
	var fire func()
	fire = func() {
		if run.done {
			return
		}
		st, ok := c.table.Status(d, run.id)
		if !ok || st == lineage.Released {
			return
		}
		if len(c.waiters[d]) == 0 {
			// No routine is blocked on the device: extend the lease.
			run.setLeaseTimer(d, c.env.After(timeout, fire))
			return
		}
		c.doom(run, fmt.Sprintf("pre-lease of %s from R%d revoked after %v", d, src, timeout))
		if !run.inflight {
			c.abortRun(run)
		}
	}
	run.setLeaseTimer(d, c.env.After(timeout, fire))
}

// --- failure / restart serialization (§3) -----------------------------------

func (c *evController) NotifyFailure(d device.ID) {
	n := c.failureDetected(d)
	c.graph.AddNode(n)

	for _, id := range c.submitted {
		run := c.runs[id]
		if run.done || !run.placed || !run.r.Touches(d) {
			continue // case 1: unrelated routines are unaffected
		}
		switch {
		case run.lastTouchDone[d]:
			// Case 3: the failure happened after this routine's last touch of
			// the device — serialize the failure event after the routine.
			_ = c.graph.AddEdge(order.RoutineNode(run.id), n)
		case run.firstTouched[d] || (run.inflight && run.inflightDev == d):
			// Case 4: the failure hit in the middle of this routine's
			// accesses; it cannot be serialized around the routine. Abort now
			// (EV aborts affected routines earlier rather than later, §7.4).
			c.doom(run, fmt.Sprintf("device %s failed during execution", d))
			if !run.inflight {
				c.abortRun(run)
			}
		default:
			// The routine has not touched the device yet. If the device
			// restarts before the routine's first command on it, the failure
			// and restart serialize before the routine (case 2); otherwise
			// that command will fail and the must/best-effort rules apply.
		}
	}
	c.checkInvariants("failure")
}

func (c *evController) NotifyRestart(d device.ID) {
	prevFail := order.FailureNode(d, c.failSeq[d]-1)
	n := c.restartDetected(d)
	c.graph.AddNode(n)
	if c.failSeq[d] > 0 {
		_ = c.graph.AddEdge(prevFail, n)
	}
	// Case 2: routines that have not yet touched the device serialize after
	// the failure/restart pair.
	for _, id := range c.submitted {
		run := c.runs[id]
		if run.done || !run.placed || !run.r.Touches(d) || run.firstTouched[d] {
			continue
		}
		_ = c.graph.AddEdge(n, order.RoutineNode(run.id))
	}
	// Devices come back in their pre-failure physical state; routines blocked
	// on commands need no special handling — their next Exec will succeed.
	c.checkInvariants("restart")
}

func (c *evController) checkInvariants(where string) {
	if !c.opts.CheckInvariants {
		return
	}
	if err := c.table.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("visibility: after %s: %v\n%s", where, err, c.table.String()))
	}
}

package visibility

import (
	"fmt"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/sim"
)

// gateRoutine touches the fast "data" device briefly and then holds the
// "gate" device for a long time — so under a stream of these, every routine
// quickly executes (and post-lease releases) the data device, then queues up
// behind its predecessors on the gate. The data device's lineage accumulates
// Released history exactly as fast as routines arrive.
func gateRoutine(i int) *routine.Routine {
	return routine.New(fmt.Sprintf("gate-%d", i),
		routine.Command{Device: "plug-0", Target: device.On, Duration: 100 * time.Millisecond},
		routine.Command{Device: "plug-1", Target: device.On, Duration: 5 * time.Minute},
	)
}

// TestCompactBeforeBoundsLineageUnderSustainedLoad is the regression test
// for unbounded lock-access history: without horizon compaction the data
// device's lineage grows with every queued routine (commit compaction only
// folds history beneath a committing routine, and the gate keeps later
// routines alive), while periodic CompactBefore keeps it bounded by the live
// window.
func TestCompactBeforeBoundsLineageUnderSustainedLoad(t *testing.T) {
	run := func(compact bool) int {
		reg := device.Plugs(2)
		fleet := device.NewFleet(reg)
		s := sim.NewAtEpoch()
		// Timeline scheduling: routines start immediately and acquire each
		// device lazily, so the whole stream executes (and releases) the data
		// device while queued on the gate. FCFS would hold the routines back
		// entirely and nothing would accumulate.
		ctrl := New(NewSimEnv(s, fleet), fleet.Snapshot(), DefaultOptions(EV)).(*evController)

		const n = 64
		for i := 0; i < n; i++ {
			ctrl.Submit(gateRoutine(i))
		}
		// Advance far enough that every routine has executed its data command
		// (they serialize at 100ms each) but only a few cleared the gate.
		s.RunUntil(s.Now().Add(20 * time.Minute))

		if compact {
			// A one-hour horizon at 20 minutes in folds nothing yet; the
			// maintenance cadence uses horizons comfortably past any live
			// hold. Here every data access ended within the first ~7 minutes,
			// so a 10-minute horizon is already safely behind the gate queue.
			ctrl.CompactBefore(s.Now().Add(-10 * time.Minute))
		}
		return len(ctrl.Table().Lineage("plug-0").Accesses)
	}

	grown := run(false)
	bounded := run(true)
	if grown < 32 {
		t.Fatalf("without compaction the data lineage has %d accesses; the scenario should accumulate ~60", grown)
	}
	if bounded >= grown/4 {
		t.Fatalf("CompactBefore left %d accesses (uncompacted: %d); history is not bounded", bounded, grown)
	}
}

// TestCompactBeforePreservesOutcomes re-runs the same sustained load with
// aggressive periodic compaction and checks the stream still commits every
// routine with the same end state — folding history must never change what
// the surviving routines do.
func TestCompactBeforePreservesOutcomes(t *testing.T) {
	run := func(compact bool) (int, map[device.ID]device.State) {
		reg := device.Plugs(2)
		fleet := device.NewFleet(reg)
		s := sim.NewAtEpoch()
		opts := DefaultOptions(EV)
		opts.CheckInvariants = true
		ctrl := New(NewSimEnv(s, fleet), fleet.Snapshot(), opts).(*evController)

		const n = 32
		for i := 0; i < n; i++ {
			ctrl.Submit(gateRoutine(i))
			if compact && i%4 == 0 {
				s.RunUntil(s.Now().Add(6 * time.Minute))
				ctrl.CompactBefore(s.Now().Add(-time.Minute))
			}
		}
		s.Run()
		committed := 0
		for _, res := range ctrl.Results() {
			if res.Status == StatusCommitted {
				committed++
			}
		}
		return committed, ctrl.CommittedStates()
	}

	plainCommitted, plainStates := run(false)
	compactCommitted, compactStates := run(true)
	if plainCommitted != 32 || compactCommitted != 32 {
		t.Fatalf("committed = %d (plain) / %d (compacting), want 32/32", plainCommitted, compactCommitted)
	}
	for d, st := range plainStates {
		if compactStates[d] != st {
			t.Fatalf("committed[%s] = %q with compaction, %q without", d, compactStates[d], st)
		}
	}
}

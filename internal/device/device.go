// Package device models the smart devices SafeHome manages: their identity
// and metadata (Registry), the Actuator interface the concurrency
// controllers issue commands through, and a simulated Fleet with fail-stop /
// fail-recovery injection used by the emulation experiments.
//
// SafeHome itself never requires logic on the devices; it drives them purely
// through their command API (here: Apply/Status/Ping). The simulated Fleet
// and the kasa TCP driver both implement Actuator, so the controllers are
// oblivious to whether they are talking to an emulation or to networked
// plugs.
package device

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ID uniquely identifies a device within the home.
type ID string

// State is a device's externally visible state. SafeHome treats states as
// opaque comparable values; conventional values for on/off devices are On
// and Off, while richer devices use free-form values such as "BREW",
// "HEAT:400F" or "LEVEL:25".
type State string

// Conventional states.
const (
	StateUnknown State = ""
	On           State = "ON"
	Off          State = "OFF"
	Open         State = "OPEN"
	Closed       State = "CLOSED"
	Locked       State = "LOCKED"
	Unlocked     State = "UNLOCKED"
)

// Kind is a coarse device category, used by workload generators and the hub
// UI; the controllers themselves are kind-agnostic.
type Kind string

// Device kinds that appear in the paper's motivating examples and the
// trace-based scenarios.
const (
	KindPlug        Kind = "plug"
	KindLight       Kind = "light"
	KindSwitch      Kind = "switch"
	KindThermostat  Kind = "thermostat"
	KindAC          Kind = "ac"
	KindWindow      Kind = "window"
	KindShade       Kind = "shade"
	KindDoorLock    Kind = "door-lock"
	KindGarage      Kind = "garage"
	KindCoffeeMaker Kind = "coffee-maker"
	KindPancake     Kind = "pancake-maker"
	KindToaster     Kind = "toaster"
	KindDishwasher  Kind = "dishwasher"
	KindDryer       Kind = "dryer"
	KindVacuum      Kind = "vacuum"
	KindMop         Kind = "mop"
	KindSprinkler   Kind = "sprinkler"
	KindSpeaker     Kind = "speaker"
	KindOven        Kind = "oven"
	KindAlarm       Kind = "alarm"
	KindCamera      Kind = "camera"
	KindTrashCan    Kind = "trash-can"
	KindStation     Kind = "assembly-station"
)

// Info is a device's static metadata.
type Info struct {
	ID   ID     `json:"id"`
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Room string `json:"room"`
	// Initial is the state a fresh (or factory-reset) device starts in.
	Initial State `json:"initial,omitempty"`
}

// Errors returned by actuators.
var (
	// ErrUnknownDevice indicates a command addressed a device that is not
	// registered with the actuator.
	ErrUnknownDevice = errors.New("device: unknown device")
	// ErrUnavailable indicates the device is failed/unreachable; the command
	// had no effect.
	ErrUnavailable = errors.New("device: unavailable")
)

// Actuator is the device-facing API used by the concurrency controllers and
// the failure detector. Implementations must be safe for concurrent use.
type Actuator interface {
	// Apply attempts to drive the device to the target state. It returns
	// ErrUnavailable if the device is down and ErrUnknownDevice if it is not
	// registered.
	Apply(id ID, target State) error
	// Status reports the device's current state (the "ground truth", which
	// may differ from SafeHome's committed state).
	Status(id ID) (State, error)
	// Ping checks reachability without changing state.
	Ping(id ID) error
}

// Registry holds device metadata for a home. The zero value is usable.
type Registry struct {
	mu      sync.RWMutex
	devices map[ID]Info
	order   []ID
}

// NewRegistry returns a registry pre-populated with the given devices.
func NewRegistry(devices ...Info) *Registry {
	r := &Registry{}
	for _, d := range devices {
		r.Add(d)
	}
	return r
}

// Add registers (or replaces) a device.
func (r *Registry) Add(d Info) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.devices == nil {
		r.devices = make(map[ID]Info)
	}
	if _, exists := r.devices[d.ID]; !exists {
		r.order = append(r.order, d.ID)
	}
	r.devices[d.ID] = d
}

// Get returns the metadata for id.
func (r *Registry) Get(id ID) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.devices[id]
	return d, ok
}

// Len returns the number of registered devices.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.devices)
}

// IDs returns device IDs in registration order.
func (r *Registry) IDs() []ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]ID(nil), r.order...)
}

// All returns metadata for every device in registration order.
func (r *Registry) All() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.devices[id])
	}
	return out
}

// Plugs returns a registry of n generic smart plugs named plug-0..plug-n-1,
// all initially Off. Useful for microbenchmarks and tests.
func Plugs(n int) *Registry {
	r := NewRegistry()
	for i := 0; i < n; i++ {
		r.Add(Info{
			ID:      ID(fmt.Sprintf("plug-%d", i)),
			Name:    fmt.Sprintf("Smart Plug %d", i),
			Kind:    KindPlug,
			Room:    "lab",
			Initial: Off,
		})
	}
	return r
}

// Fleet is an in-memory simulated device fleet implementing Actuator, with
// fail-stop / fail-recovery injection. It is the stand-in for the physical
// TP-Link devices used in the paper's deployment.
type Fleet struct {
	mu      sync.Mutex
	devices map[ID]*simDevice
	order   []ID
	// version counts state-changing mutations (Apply/ForceState), so readers
	// that cache a Snapshot can skip re-snapshotting an unchanged fleet.
	version uint64
}

type simDevice struct {
	info   Info
	state  State
	failed bool
	// counters for observability / tests
	applies  int
	rejects  int
	pings    int
	failures int
}

// NewFleet builds a fleet with one simulated device per registry entry, each
// starting in its Initial state (Off when unspecified).
func NewFleet(reg *Registry) *Fleet {
	f := &Fleet{devices: make(map[ID]*simDevice)}
	for _, info := range reg.All() {
		st := info.Initial
		if st == StateUnknown {
			st = Off
		}
		f.devices[info.ID] = &simDevice{info: info, state: st}
		f.order = append(f.order, info.ID)
	}
	return f
}

func (f *Fleet) get(id ID) (*simDevice, error) {
	d, ok := f.devices[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownDevice, id)
	}
	return d, nil
}

// Apply implements Actuator.
func (f *Fleet) Apply(id ID, target State) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return err
	}
	if d.failed {
		d.rejects++
		return fmt.Errorf("%w: %s", ErrUnavailable, id)
	}
	d.applies++
	if d.state != target {
		d.state = target
		f.version++
	}
	return nil
}

// Status implements Actuator.
func (f *Fleet) Status(id ID) (State, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return StateUnknown, err
	}
	if d.failed {
		return StateUnknown, fmt.Errorf("%w: %s", ErrUnavailable, id)
	}
	return d.state, nil
}

// Ping implements Actuator.
func (f *Fleet) Ping(id ID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return err
	}
	d.pings++
	if d.failed {
		return fmt.Errorf("%w: %s", ErrUnavailable, id)
	}
	return nil
}

// Fail marks the device as failed (fail-stop): subsequent Apply/Status/Ping
// calls return ErrUnavailable until Restore is called. The device's state is
// preserved (a crashed plug keeps whatever physical state it had).
func (f *Fleet) Fail(id ID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return err
	}
	if !d.failed {
		d.failed = true
		d.failures++
	}
	return nil
}

// Restore brings a failed device back (fail-recovery).
func (f *Fleet) Restore(id ID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return err
	}
	d.failed = false
	return nil
}

// Failed reports whether the device is currently failed.
func (f *Fleet) Failed(id ID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return false
	}
	return d.failed
}

// ForceState sets a device's state directly, bypassing failure checks. Used
// by tests and by workload setup to establish initial conditions.
func (f *Fleet) ForceState(id ID, s State) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return err
	}
	if d.state != s {
		d.state = s
		f.version++
	}
	return nil
}

// State returns one device's ground-truth state (including failed devices,
// whose last physical state is preserved) without materializing a full
// snapshot map. The bool reports whether the device is known.
func (f *Fleet) State(id ID) (State, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return StateUnknown, false
	}
	return d.state, true
}

// Version counts the fleet's state-changing mutations so far. Two equal
// versions bracket an unchanged fleet, so a cached Snapshot taken at the
// first is still current at the second.
func (f *Fleet) Version() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

// Snapshot returns the ground-truth state of every device (including failed
// ones, whose last physical state is preserved), keyed by ID.
func (f *Fleet) Snapshot() map[ID]State {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[ID]State, len(f.devices))
	for id, d := range f.devices {
		out[id] = d.state
	}
	return out
}

// IDs returns the device IDs in registration order.
func (f *Fleet) IDs() []ID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]ID(nil), f.order...)
}

// Stats describes a simulated device's activity counters.
type Stats struct {
	Applies  int // successful state changes
	Rejects  int // commands rejected because the device was down
	Pings    int
	Failures int // number of injected fail-stop events
}

// DeviceStats returns activity counters for a device.
func (f *Fleet) DeviceStats(id ID) (Stats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, err := f.get(id)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Applies: d.applies, Rejects: d.rejects, Pings: d.pings, Failures: d.failures}, nil
}

// SortedIDs returns the IDs sorted lexicographically; convenient for stable
// test output.
func SortedIDs(m map[ID]State) []ID {
	ids := make([]ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

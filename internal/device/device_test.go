package device

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRegistryAddGet(t *testing.T) {
	r := NewRegistry(
		Info{ID: "light-1", Name: "Kitchen Light", Kind: KindLight, Room: "kitchen"},
		Info{ID: "ac-1", Name: "Living Room AC", Kind: KindAC, Room: "living"},
	)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	got, ok := r.Get("light-1")
	if !ok || got.Kind != KindLight {
		t.Fatalf("Get(light-1) = %+v, %v", got, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get of unknown device should report !ok")
	}
	ids := r.IDs()
	if len(ids) != 2 || ids[0] != "light-1" || ids[1] != "ac-1" {
		t.Fatalf("IDs = %v, want registration order", ids)
	}
}

func TestRegistryReplaceKeepsOrder(t *testing.T) {
	r := NewRegistry(Info{ID: "a"}, Info{ID: "b"})
	r.Add(Info{ID: "a", Name: "renamed"})
	if r.Len() != 2 {
		t.Fatalf("replacing should not grow registry, Len=%d", r.Len())
	}
	got, _ := r.Get("a")
	if got.Name != "renamed" {
		t.Fatalf("replace did not take effect: %+v", got)
	}
	if ids := r.IDs(); ids[0] != "a" {
		t.Fatalf("order changed on replace: %v", ids)
	}
}

func TestPlugsHelper(t *testing.T) {
	r := Plugs(5)
	if r.Len() != 5 {
		t.Fatalf("Plugs(5) registered %d devices", r.Len())
	}
	info, ok := r.Get("plug-3")
	if !ok || info.Initial != Off || info.Kind != KindPlug {
		t.Fatalf("plug-3 = %+v, ok=%v", info, ok)
	}
}

func TestFleetApplyStatus(t *testing.T) {
	f := NewFleet(Plugs(2))
	if st, err := f.Status("plug-0"); err != nil || st != Off {
		t.Fatalf("initial status = %v, %v", st, err)
	}
	if err := f.Apply("plug-0", On); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.Status("plug-0"); st != On {
		t.Fatalf("status after apply = %v, want ON", st)
	}
	if st, _ := f.Status("plug-1"); st != Off {
		t.Fatalf("plug-1 should be untouched, got %v", st)
	}
}

func TestFleetUnknownDevice(t *testing.T) {
	f := NewFleet(Plugs(1))
	if err := f.Apply("ghost", On); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("Apply(ghost) err = %v, want ErrUnknownDevice", err)
	}
	if _, err := f.Status("ghost"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("Status(ghost) err = %v", err)
	}
	if err := f.Ping("ghost"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("Ping(ghost) err = %v", err)
	}
	if err := f.Fail("ghost"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("Fail(ghost) err = %v", err)
	}
}

func TestFleetFailureInjection(t *testing.T) {
	f := NewFleet(Plugs(1))
	if err := f.Apply("plug-0", On); err != nil {
		t.Fatal(err)
	}
	if err := f.Fail("plug-0"); err != nil {
		t.Fatal(err)
	}
	if !f.Failed("plug-0") {
		t.Fatal("Failed should report true after Fail")
	}
	if err := f.Apply("plug-0", Off); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Apply to failed device err = %v, want ErrUnavailable", err)
	}
	if err := f.Ping("plug-0"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Ping failed device err = %v", err)
	}
	// Physical state is preserved across the failure.
	if snap := f.Snapshot(); snap["plug-0"] != On {
		t.Fatalf("failed device lost its physical state: %v", snap["plug-0"])
	}
	if err := f.Restore("plug-0"); err != nil {
		t.Fatal(err)
	}
	if f.Failed("plug-0") {
		t.Fatal("device should be healthy after Restore")
	}
	if err := f.Apply("plug-0", Off); err != nil {
		t.Fatalf("Apply after restore: %v", err)
	}
}

func TestFleetStatsCounters(t *testing.T) {
	f := NewFleet(Plugs(1))
	_ = f.Apply("plug-0", On)
	_ = f.Ping("plug-0")
	_ = f.Fail("plug-0")
	_ = f.Fail("plug-0") // double-fail counted once
	_ = f.Apply("plug-0", Off)
	st, err := f.DeviceStats("plug-0")
	if err != nil {
		t.Fatal(err)
	}
	if st.Applies != 1 || st.Rejects != 1 || st.Pings != 1 || st.Failures != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

func TestFleetInitialStates(t *testing.T) {
	r := NewRegistry(
		Info{ID: "door", Kind: KindDoorLock, Initial: Locked},
		Info{ID: "win", Kind: KindWindow, Initial: Open},
		Info{ID: "plug", Kind: KindPlug}, // defaults to Off
	)
	f := NewFleet(r)
	snap := f.Snapshot()
	if snap["door"] != Locked || snap["win"] != Open || snap["plug"] != Off {
		t.Fatalf("initial snapshot wrong: %v", snap)
	}
}

func TestForceState(t *testing.T) {
	f := NewFleet(Plugs(1))
	_ = f.Fail("plug-0")
	if err := f.ForceState("plug-0", On); err != nil {
		t.Fatal(err)
	}
	if snap := f.Snapshot(); snap["plug-0"] != On {
		t.Fatal("ForceState should bypass failure")
	}
	if err := f.ForceState("ghost", On); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("ForceState(ghost) err = %v", err)
	}
}

func TestSortedIDs(t *testing.T) {
	m := map[ID]State{"b": On, "a": Off, "c": On}
	ids := SortedIDs(m)
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("SortedIDs = %v", ids)
	}
}

func TestFleetConcurrentAccess(t *testing.T) {
	f := NewFleet(Plugs(8))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ID(fmt.Sprintf("plug-%d", w))
			for i := 0; i < 200; i++ {
				_ = f.Apply(id, On)
				_, _ = f.Status(id)
				_ = f.Ping(id)
				if i%50 == 0 {
					_ = f.Fail(id)
					_ = f.Restore(id)
				}
			}
		}(w)
	}
	wg.Wait()
	snap := f.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot size %d", len(snap))
	}
}

var _ Actuator = (*Fleet)(nil)

// Package congruence decides whether a smart home's end state is serially
// equivalent to *some* sequential execution of a set of routines — the
// paper's "final incongruence" metric (§7.1, Fig 12b), and the property that
// GSV/PSV/EV guarantee while Weak Visibility does not.
//
// Routines only write devices (reads happen through conditions, which do not
// affect the end state), so the question reduces to: is there a total order
// of the committed routines in which, for every device, the last routine to
// write it writes the observed final state? That can be decided greedily by
// building the order backwards: a routine may be placed last if and only if
// every not-yet-explained device it writes ends in that routine's final write
// — placing it "covers" those devices, and the argument repeats on the rest.
// The greedy choice is safe (an exchange argument shows any eligible routine
// can be placed last whenever some valid order exists), so the check runs in
// O(routines² × writes) instead of exploring orders.
package congruence

import (
	"sort"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Writes captures the effect one committed routine has on the home: for each
// device it touches, the final state that routine drives the device to.
type Writes struct {
	ID    routine.ID
	Final map[device.ID]device.State
}

// FromRoutine extracts a Writes record from a routine definition.
func FromRoutine(r *routine.Routine) Writes {
	w := Writes{ID: r.ID, Final: make(map[device.ID]device.State)}
	for _, d := range r.Devices() {
		if st, ok := r.LastWriteTo(d); ok {
			w.Final[d] = st
		}
	}
	return w
}

// FromRoutines maps FromRoutine over a slice.
func FromRoutines(rs []*routine.Routine) []Writes {
	out := make([]Writes, 0, len(rs))
	for _, r := range rs {
		out = append(out, FromRoutine(r))
	}
	return out
}

// Result explains a congruence decision.
type Result struct {
	Congruent bool
	// Witness is one serial order of routine IDs that produces the observed
	// end state (only set when Congruent).
	Witness []routine.ID
	// BadDevices lists devices whose final state cannot be explained by any
	// serial order (unwritable values, or devices whose required last writers
	// form a cycle).
	BadDevices []device.ID
}

// Check reports whether the observed end state `final` is equal to the end
// state of some serial execution of `committed` starting from `initial`.
//
// Only devices present in `final` are checked. A device written by no
// committed routine must retain its initial state; a device with writers must
// end in the last-write state of one of them, consistently orderable across
// all devices.
func Check(initial map[device.ID]device.State, committed []Writes, final map[device.ID]device.State) Result {
	res := Result{}

	// writers[d] = routines that write d.
	writers := make(map[device.ID][]int)
	for i, w := range committed {
		for d := range w.Final {
			writers[d] = append(writers[d], i)
		}
	}

	// Devices that still need a "last writer" matching the final state.
	uncovered := make(map[device.ID]bool)
	for _, d := range device.SortedIDs(final) {
		want := final[d]
		ws := writers[d]
		if len(ws) == 0 {
			if init, ok := initial[d]; ok && init != want {
				res.BadDevices = append(res.BadDevices, d)
			}
			continue
		}
		explainable := false
		for _, i := range ws {
			if committed[i].Final[d] == want {
				explainable = true
				break
			}
		}
		if !explainable {
			res.BadDevices = append(res.BadDevices, d)
			continue
		}
		uncovered[d] = true
	}
	if len(res.BadDevices) > 0 {
		return res
	}

	// Build the serial order backwards: repeatedly place (latest first) any
	// remaining routine whose writes to still-uncovered devices all match the
	// final state. Prefer the largest routine ID so the witness stays close
	// to submission order.
	remaining := make([]int, len(committed))
	for i := range committed {
		remaining[i] = i
	}
	reversed := make([]routine.ID, 0, len(committed))
	for len(remaining) > 0 {
		pick := -1
		for idx, i := range remaining {
			ok := true
			for d, st := range committed[i].Final {
				if uncovered[d] && final[d] != st {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if pick == -1 || committed[i].ID > committed[remaining[pick]].ID {
				pick = idx
			}
		}
		if pick == -1 {
			// No routine can be the latest among the rest: the required last
			// writers contradict each other.
			for d := range uncovered {
				res.BadDevices = append(res.BadDevices, d)
			}
			sort.Slice(res.BadDevices, func(i, j int) bool { return res.BadDevices[i] < res.BadDevices[j] })
			return res
		}
		chosen := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		reversed = append(reversed, committed[chosen].ID)
		for d := range committed[chosen].Final {
			delete(uncovered, d)
		}
	}

	res.Congruent = true
	res.Witness = make([]routine.ID, 0, len(reversed))
	for i := len(reversed) - 1; i >= 0; i-- {
		res.Witness = append(res.Witness, reversed[i])
	}
	return res
}

// SerialEndState computes the end state of executing the routines serially
// in the given order, starting from initial. Useful in tests and for
// constructing expected outcomes.
func SerialEndState(initial map[device.ID]device.State, rs []*routine.Routine, serial []routine.ID) map[device.ID]device.State {
	out := make(map[device.ID]device.State, len(initial))
	for d, s := range initial {
		out[d] = s
	}
	byID := make(map[routine.ID]*routine.Routine, len(rs))
	for _, r := range rs {
		byID[r.ID] = r
	}
	for _, id := range serial {
		r, ok := byID[id]
		if !ok {
			continue
		}
		for _, c := range r.Commands {
			out[c.Device] = c.Target
		}
	}
	return out
}

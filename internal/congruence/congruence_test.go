package congruence

import (
	"testing"
	"testing/quick"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/stats"
)

func rw(id routine.ID, pairs ...any) Writes {
	w := Writes{ID: id, Final: make(map[device.ID]device.State)}
	for i := 0; i < len(pairs); i += 2 {
		w.Final[pairs[i].(device.ID)] = pairs[i+1].(device.State)
	}
	return w
}

func TestUntouchedDevicesMustKeepInitialState(t *testing.T) {
	initial := map[device.ID]device.State{"a": device.Off, "b": device.Off}
	final := map[device.ID]device.State{"a": device.Off, "b": device.On}
	res := Check(initial, nil, final)
	if res.Congruent {
		t.Fatal("device b changed with no writers; should be incongruent")
	}
	if len(res.BadDevices) != 1 || res.BadDevices[0] != "b" {
		t.Fatalf("BadDevices = %v", res.BadDevices)
	}
	// Same final as initial is congruent.
	res = Check(initial, nil, initial)
	if !res.Congruent {
		t.Fatal("unchanged home should be congruent")
	}
}

func TestSingleRoutineEndState(t *testing.T) {
	initial := map[device.ID]device.State{"light": device.Off}
	writes := []Writes{rw(1, device.ID("light"), device.On)}
	if !Check(initial, writes, map[device.ID]device.State{"light": device.On}).Congruent {
		t.Fatal("end state matching the single routine should be congruent")
	}
	res := Check(initial, writes, map[device.ID]device.State{"light": device.Off})
	if res.Congruent {
		t.Fatal("light OFF cannot be explained once routine 1 committed")
	}
}

func TestAllOnAllOffSerialEquivalence(t *testing.T) {
	// Fig 1's workload: R1 turns all lights ON, R2 turns all OFF. A serial
	// order ends either all-ON or all-OFF; anything mixed is incongruent.
	n := 4
	initial := make(map[device.ID]device.State)
	var devs []device.ID
	for i := 0; i < n; i++ {
		d := device.ID(rune('a' + i))
		devs = append(devs, d)
		initial[d] = device.Off
	}
	r1 := Writes{ID: 1, Final: map[device.ID]device.State{}}
	r2 := Writes{ID: 2, Final: map[device.ID]device.State{}}
	for _, d := range devs {
		r1.Final[d] = device.On
		r2.Final[d] = device.Off
	}
	allOn := map[device.ID]device.State{}
	allOff := map[device.ID]device.State{}
	mixed := map[device.ID]device.State{}
	for i, d := range devs {
		allOn[d] = device.On
		allOff[d] = device.Off
		if i%2 == 0 {
			mixed[d] = device.On
		} else {
			mixed[d] = device.Off
		}
	}
	if !Check(initial, []Writes{r1, r2}, allOn).Congruent {
		t.Fatal("all-ON should be congruent (order R2;R1)")
	}
	if !Check(initial, []Writes{r1, r2}, allOff).Congruent {
		t.Fatal("all-OFF should be congruent (order R1;R2)")
	}
	if Check(initial, []Writes{r1, r2}, mixed).Congruent {
		t.Fatal("interleaved ON/OFF end state must be incongruent")
	}
}

func TestWitnessProducesFinalState(t *testing.T) {
	r1 := routine.New("r1",
		routine.Command{Device: "a", Target: device.On},
		routine.Command{Device: "b", Target: device.On})
	r1.ID = 1
	r2 := routine.New("r2",
		routine.Command{Device: "b", Target: device.Off},
		routine.Command{Device: "c", Target: device.On})
	r2.ID = 2
	initial := map[device.ID]device.State{"a": device.Off, "b": device.Off, "c": device.Off}
	final := map[device.ID]device.State{"a": device.On, "b": device.Off, "c": device.On}
	res := Check(initial, FromRoutines([]*routine.Routine{r1, r2}), final)
	if !res.Congruent {
		t.Fatal("expected congruent")
	}
	replay := SerialEndState(initial, []*routine.Routine{r1, r2}, res.Witness)
	for d, want := range final {
		if replay[d] != want {
			t.Fatalf("witness %v does not reproduce final state: %s=%v want %v", res.Witness, d, replay[d], want)
		}
	}
}

func TestConflictingLastWriterChoices(t *testing.T) {
	// R1: x=ON, y=OFF. R2: x=OFF, y=ON.
	// Final x=ON, y=ON would require R1 after R2 (for x) and R2 after R1
	// (for y) — a cycle, hence incongruent.
	writes := []Writes{
		rw(1, device.ID("x"), device.On, device.ID("y"), device.Off),
		rw(2, device.ID("x"), device.Off, device.ID("y"), device.On),
	}
	initial := map[device.ID]device.State{"x": device.Off, "y": device.Off}
	bad := map[device.ID]device.State{"x": device.On, "y": device.On}
	if Check(initial, writes, bad).Congruent {
		t.Fatal("cyclic last-writer requirement must be incongruent")
	}
	good := map[device.ID]device.State{"x": device.Off, "y": device.On}
	if !Check(initial, writes, good).Congruent {
		t.Fatal("R1;R2 order should explain x=OFF,y=ON")
	}
}

func TestThreeRoutinesChain(t *testing.T) {
	// R1 writes a; R2 writes a and b; R3 writes b.
	writes := []Writes{
		rw(1, device.ID("a"), device.State("1")),
		rw(2, device.ID("a"), device.State("2"), device.ID("b"), device.State("2")),
		rw(3, device.ID("b"), device.State("3")),
	}
	initial := map[device.ID]device.State{"a": "0", "b": "0"}
	// a=1 requires R1 after R2; b=2 requires R2 after R3: order R3,R2,R1 works.
	ok := map[device.ID]device.State{"a": "1", "b": "2"}
	res := Check(initial, writes, ok)
	if !res.Congruent {
		t.Fatalf("expected congruent, got %+v", res)
	}
	// a=2 requires R2 after R1, b=3 requires R3 after R2 → order R1,R2,R3; fine.
	ok2 := map[device.ID]device.State{"a": "2", "b": "3"}
	if !Check(initial, writes, ok2).Congruent {
		t.Fatal("expected congruent for natural order")
	}
	// a=1 (R1 last on a) and b=3 (R3 last on b) → R2 before R1 and before R3; fine.
	ok3 := map[device.ID]device.State{"a": "1", "b": "3"}
	if !Check(initial, writes, ok3).Congruent {
		t.Fatal("expected congruent")
	}
	// A state value no routine writes is incongruent.
	bad := map[device.ID]device.State{"a": "9", "b": "3"}
	if Check(initial, writes, bad).Congruent {
		t.Fatal("unwritable value must be incongruent")
	}
}

func TestFromRoutineTakesLastWrite(t *testing.T) {
	r := routine.New("coffee",
		routine.Command{Device: "coffee", Target: device.On},
		routine.Command{Device: "coffee", Target: device.Off})
	r.ID = 7
	w := FromRoutine(r)
	if w.Final["coffee"] != device.Off {
		t.Fatalf("final write should be OFF, got %v", w.Final["coffee"])
	}
}

// Property: the end state of an actual serial execution is always judged
// congruent, for random routines over a small device universe.
func TestSerialExecutionAlwaysCongruentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		devs := []device.ID{"d0", "d1", "d2", "d3", "d4"}
		states := []device.State{"A", "B", "C"}
		initial := map[device.ID]device.State{}
		for _, d := range devs {
			initial[d] = "INIT"
		}
		nRoutines := rng.Intn(5) + 1
		var rs []*routine.Routine
		var ids []routine.ID
		for i := 0; i < nRoutines; i++ {
			r := &routine.Routine{ID: routine.ID(i + 1), Name: "r"}
			nCmds := rng.Intn(4) + 1
			for c := 0; c < nCmds; c++ {
				r.Commands = append(r.Commands, routine.Command{
					Device: devs[rng.Intn(len(devs))],
					Target: states[rng.Intn(len(states))],
				})
			}
			rs = append(rs, r)
			ids = append(ids, r.ID)
		}
		// Random serial order.
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		final := SerialEndState(initial, rs, ids)
		return Check(initial, FromRoutines(rs), final).Congruent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping one written device to a value that no routine's last
// write produces makes the state incongruent.
func TestUnexplainableValueIncongruentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		devs := []device.ID{"d0", "d1", "d2"}
		initial := map[device.ID]device.State{}
		for _, d := range devs {
			initial[d] = "INIT"
		}
		var rs []*routine.Routine
		var ids []routine.ID
		for i := 0; i < 3; i++ {
			r := &routine.Routine{ID: routine.ID(i + 1), Name: "r"}
			r.Commands = append(r.Commands, routine.Command{
				Device: devs[rng.Intn(len(devs))],
				Target: device.State([]string{"A", "B"}[rng.Intn(2)]),
			})
			rs = append(rs, r)
			ids = append(ids, r.ID)
		}
		final := SerialEndState(initial, rs, ids)
		// Poison one device that some routine wrote.
		target := rs[rng.Intn(len(rs))].Commands[0].Device
		final[target] = "IMPOSSIBLE"
		return !Check(initial, FromRoutines(rs), final).Congruent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

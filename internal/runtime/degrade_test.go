package runtime

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"safehome/internal/device"
	"safehome/internal/journal"
)

// failingConfig is a journaled runtime whose journal starts failing the given
// operation once armed.
func failingConfig(dir, op string, armed *atomic.Bool) Config {
	cfg := journaledConfig(dir)
	cfg.Journal = journal.Options{
		TestInjectErr: func(got string) error {
			if got == op && armed.Load() {
				return errors.New("injected: device out of space")
			}
			return nil
		},
	}
	return cfg
}

// TestJournalDegradeOnAppendError: when the journal can no longer write, the
// home degrades to memory-only — availability over durability — and keeps
// serving. Everything acknowledged before the degrade recovers; nothing
// after it does (the failed append never reached the disk).
func TestJournalDegradeOnAppendError(t *testing.T) {
	dir := t.TempDir()
	var armed atomic.Bool
	rt, err := NewSim(failingConfig(dir, "append", &armed), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	const durable = 5
	for i := 0; i < durable; i++ {
		if _, err := rt.Submit(benchRoutine("pre", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !rt.Durable() {
		t.Fatalf("home not durable before injection: %v", rt.JournalError())
	}
	acked := rt.Results()
	states := rt.CommittedStates()

	armed.Store(true)
	// The home must keep serving through and after the journal failure.
	for i := 0; i < 3; i++ {
		if _, err := rt.Submit(benchRoutine("post", int64(100+i))); err != nil {
			t.Fatalf("submit after journal failure: %v", err)
		}
	}
	if rt.Durable() {
		t.Fatal("home still claims durable after a failed append")
	}
	jerr := rt.JournalError()
	if jerr == nil || !strings.Contains(jerr.Error(), "injected") {
		t.Fatalf("JournalError = %v, want the injected error", jerr)
	}
	if got := len(rt.Results()); got != durable+3 {
		t.Fatalf("degraded home serves %d results, want %d", got, durable+3)
	}
	rt.Crash()

	armed.Store(false)
	rec, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !rec.Durable() {
		t.Fatalf("reopened home not durable: %v", rec.JournalError())
	}
	got := rec.Results()
	if len(got) != durable {
		t.Fatalf("recovered %d results, want the %d acknowledged before the degrade", len(got), durable)
	}
	for i, want := range acked {
		if got[i].ID != want.ID || got[i].Status != want.Status {
			t.Fatalf("result %d diverged: %+v vs %+v", want.ID, got[i], want)
		}
	}
	recStates := rec.CommittedStates()
	for d, s := range states {
		if recStates[d] != s {
			t.Fatalf("committed state of %s = %q, want pre-degrade %q", d, recStates[d], s)
		}
	}
}

// TestJournalDegradeOnCommitError: a failed group-commit fsync degrades the
// home the same way. The batch whose sync failed may or may not survive (its
// bytes were written, never synced); anything submitted after the degrade
// must not.
func TestJournalDegradeOnCommitError(t *testing.T) {
	dir := t.TempDir()
	var armed atomic.Bool
	rt, err := NewSim(failingConfig(dir, "commit", &armed), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	const durable = 4
	for i := 0; i < durable; i++ {
		if _, err := rt.Submit(benchRoutine("pre", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	armed.Store(true)
	if _, err := rt.Submit(benchRoutine("edge", 50)); err != nil {
		t.Fatalf("submit during failing commit: %v", err)
	}
	if rt.Durable() {
		t.Fatal("home still claims durable after a failed commit")
	}
	if _, err := rt.Submit(benchRoutine("post", 51)); err != nil {
		t.Fatalf("submit after degrade: %v", err)
	}
	rt.Crash()

	armed.Store(false)
	rec, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got := rec.Results()
	// The edge batch was appended but its sync failed — either outcome is a
	// correct crash story; the post-degrade routine must be gone.
	if len(got) < durable || len(got) > durable+1 {
		t.Fatalf("recovered %d results, want %d or %d", len(got), durable, durable+1)
	}
	for _, res := range got {
		if res.Routine.Name == "post" {
			t.Fatal("routine submitted after the degrade was recovered")
		}
	}
}

// TestJournalDegradeOnCheckpointError: a failing checkpoint write also
// degrades the home, but the already-committed journal segments stay on disk
// — every acknowledged batch before the degrade still recovers.
func TestJournalDegradeOnCheckpointError(t *testing.T) {
	dir := t.TempDir()
	var armed atomic.Bool
	cfg := failingConfig(dir, "checkpoint", &armed)
	// Checkpoint after every ~1KiB of journal so the injection point is hit
	// mid-workload.
	cfg.Journal.CheckpointBytes = 1 << 10
	rt, err := NewSim(cfg, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	const durable = 3
	for i := 0; i < durable; i++ {
		if _, err := rt.Submit(benchRoutine("pre", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	armed.Store(true)
	// Enough work to cross the checkpoint threshold and trip the injection.
	i := 0
	for rt.JournalError() == nil && i < 50 {
		if _, err := rt.Submit(benchRoutine("more", int64(200+i))); err != nil {
			t.Fatalf("submit: %v", err)
		}
		i++
	}
	if rt.JournalError() == nil {
		t.Fatal("checkpoint threshold never tripped the injected error")
	}
	if rt.Durable() {
		t.Fatal("home still claims durable after a failed checkpoint")
	}
	ackedBefore := len(rt.Results())
	rt.Crash()

	armed.Store(false)
	rec, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got := rec.Results()
	// Every batch acknowledged before the degrade was group-committed to the
	// segments; only work after the degrade (none here) may be missing.
	if len(got) < durable {
		t.Fatalf("recovered %d results, want >= %d", len(got), durable)
	}
	if len(got) > ackedBefore {
		t.Fatalf("recovered %d results, more than the %d ever acknowledged", len(got), ackedBefore)
	}
}

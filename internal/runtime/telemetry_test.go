package runtime

import (
	"testing"

	"safehome/internal/device"
	"safehome/internal/telemetry"
	"safehome/internal/visibility"
)

// TestMeteredSubmitDoesNotAllocate guards the hot path: attaching
// LoopMetrics must not add a single allocation per submit. The histogram
// Observe is a bucket scan over atomics plus a CAS on the sum, and the
// stage tap rides the observer chain the journal already uses — so the
// metered and unmetered allocs/op must be identical.
func TestMeteredSubmitDoesNotAllocate(t *testing.T) {
	run := func(cfg Config) float64 {
		rt, err := NewSim(cfg, device.Plugs(2))
		if err != nil {
			t.Fatalf("NewSim: %v", err)
		}
		defer rt.Close()
		// Warm up so lazy one-time allocations don't skew the measurement.
		for i := 0; i < 10; i++ {
			if _, err := rt.Submit(plugRoutine("warm", device.On, 0)); err != nil {
				t.Fatalf("warm-up submit: %v", err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := rt.Submit(plugRoutine("measured", device.On, 0)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		})
	}

	bare := run(Config{Model: visibility.EV})
	metered := run(Config{Model: visibility.EV, Metrics: NewLoopMetrics(telemetry.NewRegistry())})
	if metered > bare {
		t.Errorf("metered submit allocates more: %.1f allocs/op vs %.1f bare", metered, bare)
	}
	t.Logf("allocs/op: bare=%.1f metered=%.1f", bare, metered)
}

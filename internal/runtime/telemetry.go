package runtime

import (
	"safehome/internal/telemetry"
	"safehome/internal/visibility"
)

// LoopMetrics is the set of instruments a home loop bumps in-line as it
// works: routine stage-latency histograms and the snapshot publish counter.
// Recording happens on the loop goroutine with single atomic operations — no
// locks, no allocation — and scraping reads the same atomics, so a scrape
// never touches a mailbox (the PR 4 off-loop read discipline applied to
// metrics).
//
// One LoopMetrics is shared by every home of a manager: per-home label sets
// at 100k-home density would be a cardinality bomb, and the histograms are
// concurrency-safe, so fleet-wide stage distributions cost nothing extra.
// A nil *LoopMetrics (Config.Metrics unset) disables recording with a single
// nil check on the hot path.
type LoopMetrics struct {
	// StagePlace observes the wall-clock cost of admission + scheduler
	// placement: the time Controller.Submit spends deciding where the
	// routine's commands land (the submit→placed stage).
	StagePlace *telemetry.Histogram
	// StageStart observes Started−Submitted on the home's clock: how long a
	// routine waited from acceptance to its first command executing (the
	// placed→started stage, measured from submission because placement is
	// instantaneous on the home clock).
	StageStart *telemetry.Histogram
	// StageDone observes Finished−Submitted on the home's clock: the full
	// routine latency through commit or abort (the submit→done span).
	StageDone *telemetry.Histogram
	// SnapshotPublishes counts immutable snapshots published by the loop —
	// the rate at which the off-loop read path advances.
	SnapshotPublishes *telemetry.Counter
}

// NewLoopMetrics registers the loop instrument families on reg. Both the hub
// and the manager call this, so the family names and bucket ladders agree
// across every /metrics surface.
func NewLoopMetrics(reg *telemetry.Registry) *LoopMetrics {
	const stageName = "safehome_routine_stage_seconds"
	const stageHelp = "Routine stage latency on the home clock: place = scheduler placement cost at submit, start = submitted to first command executing, done = submitted to commit/abort."
	buckets := telemetry.DefBuckets()
	return &LoopMetrics{
		StagePlace:        reg.Histogram(stageName, stageHelp, buckets, telemetry.L("stage", "place")),
		StageStart:        reg.Histogram(stageName, stageHelp, buckets, telemetry.L("stage", "start")),
		StageDone:         reg.Histogram(stageName, stageHelp, buckets, telemetry.L("stage", "done")),
		SnapshotPublishes: reg.Counter("safehome_snapshot_publishes_total", "Immutable snapshots published by home loops (the off-loop read path's advance rate)."),
	}
}

// recordStage derives the start/done stage observations from controller
// events. It runs on the loop goroutine as part of the observer chain;
// Result is a read of loop-owned state, so the lookup is safe and free of
// synchronization. The visibility layer finalizes a routine's Result before
// emitting its event, so the timestamps are already in place.
func (rt *HomeRuntime) recordStage(e visibility.Event) {
	m := rt.cfg.Metrics
	switch e.Kind {
	case visibility.EvStarted:
		if res, ok := rt.ctrl.Result(e.Routine); ok && !res.Started.IsZero() && !res.Submitted.IsZero() {
			m.StageStart.Observe(res.Started.Sub(res.Submitted).Seconds())
		}
	case visibility.EvCommitted, visibility.EvAborted:
		if res, ok := rt.ctrl.Result(e.Routine); ok && !res.Finished.IsZero() && !res.Submitted.IsZero() {
			m.StageDone.Observe(res.Finished.Sub(res.Submitted).Seconds())
		}
	}
}

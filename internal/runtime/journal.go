package runtime

import (
	"fmt"
	"sort"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// This file wires the write-ahead journal (internal/journal) into the home
// runtime's loop. Durability rides the existing batch drain: while the loop
// applies a batch, journal collectors (an observer tap and the controller's
// StateSink) accumulate what the batch produced — accepted submissions,
// finished outcomes, committed-state changes, sequenced activity events —
// and journalFlush turns the accumulation into ONE journal record with ONE
// fsync (group commit), strictly before the batch's replies are delivered.
// An operation whose reply the caller has seen is therefore durable: after
// a crash, recovery rebuilds exactly the acknowledged state, and routines
// that were still in flight are aborted with rollback per the paper's
// failure semantics (their writes never reached the committed view, which
// is precisely what recovery restores).
//
// Checkpoints are cut from the already-immutable published Snapshot once
// enough journal has accumulated, after which older segments are truncated;
// see ARCHITECTURE.md ("Durability") for the lifecycle.

// journalState is the loop-owned accumulation between flushes.
type journalState struct {
	jrn      *journal.Journal
	submits  []routine.ID
	finishes []routine.ID
	states   []journal.StateEntry
	stateIdx map[device.ID]int // device -> index in states (last write wins)
	events   []journal.EventRecord
	firstSeq uint64 // sequence of events[0]

	bank        []journal.BankRecord
	bankIdx     map[string]int // routine name -> index in bank (last write wins)
	trigArms    []journal.TriggerRecord
	trigArmIdx  map[TriggerHandle]int // handle -> index in trigArms (last arm wins)
	trigCancels []int64
}

// openJournal opens the runtime's data directory and recovers its durable
// state. Called from the constructors before the controller exists.
func (rt *HomeRuntime) openJournal() (*journal.Recovered, error) {
	if rt.cfg.DataDir == "" {
		return nil, nil
	}
	opts := rt.cfg.Journal
	if opts.HomeID == "" {
		opts.HomeID = rt.cfg.ID // shared-writer frames must carry the home ID
	}
	j, rec, err := journal.Open(rt.cfg.DataDir, opts)
	if err != nil {
		return nil, fmt.Errorf("runtime: home %q: %w", rt.cfg.ID, err)
	}
	rt.j = &journalState{
		jrn:        j,
		stateIdx:   make(map[device.ID]int),
		bankIdx:    make(map[string]int),
		trigArmIdx: make(map[TriggerHandle]int),
	}
	return rec, nil
}

// collectJournal is the observer tap: it notes submissions and finishes (the
// outcome records are resolved from the controller at flush time, when they
// are final) and captures activity events with their sequence numbers.
func (rt *HomeRuntime) collectJournal(e visibility.Event) {
	switch e.Kind {
	case visibility.EvSubmitted:
		rt.j.submits = append(rt.j.submits, e.Routine)
	case visibility.EvCommitted, visibility.EvAborted:
		rt.j.finishes = append(rt.j.finishes, e.Routine)
	}
	if rt.cfg.EventLog > 0 {
		if len(rt.j.events) == 0 {
			// recordEvent runs after this tap, so nextSeqLive is still the
			// sequence this event will get.
			rt.j.firstSeq = rt.elog.nextSeqLive()
		}
		rt.j.events = append(rt.j.events, journal.FromEvent(e))
	}
}

// noteStateChange is the controller's StateSink: committed-state changes are
// deduplicated per batch (last write wins — recovery only needs the final
// value).
func (rt *HomeRuntime) noteStateChange(d device.ID, s device.State) {
	if i, ok := rt.j.stateIdx[d]; ok {
		rt.j.states[i].State = s
		return
	}
	rt.j.stateIdx[d] = len(rt.j.states)
	rt.j.states = append(rt.j.states, journal.StateEntry{Device: d, State: s})
}

// noteBankPut journals one bank store (last write per name wins within a
// batch). Runs on the loop goroutine.
func (rt *HomeRuntime) noteBankPut(r *routine.Routine) {
	rec := journal.BankRecord{Name: r.Name, User: r.User, Commands: r.Commands}
	if i, ok := rt.j.bankIdx[r.Name]; ok {
		rt.j.bank[i] = rec
		return
	}
	rt.j.bankIdx[r.Name] = len(rt.j.bank)
	rt.j.bank = append(rt.j.bank, rec)
}

// noteTriggerArm journals one trigger arm — a fresh schedule or a recurring
// trigger's re-arm (last arm per handle wins within a batch).
func (rt *HomeRuntime) noteTriggerArm(spec ScheduledTrigger) {
	rec := triggerRecord(spec)
	if i, ok := rt.j.trigArmIdx[spec.Handle]; ok {
		rt.j.trigArms[i] = rec
		return
	}
	rt.j.trigArmIdx[spec.Handle] = len(rt.j.trigArms)
	rt.j.trigArms = append(rt.j.trigArms, rec)
}

// noteTriggerCancel journals a trigger's retirement (explicit cancel, or a
// one-shot trigger having fired). An arm of the same handle earlier in the
// batch is moot but harmless: replay applies arms before cancels.
func (rt *HomeRuntime) noteTriggerCancel(handle TriggerHandle) {
	rt.j.trigCancels = append(rt.j.trigCancels, int64(handle))
}

func (rt *HomeRuntime) journalEmpty() bool {
	return len(rt.j.submits) == 0 && len(rt.j.finishes) == 0 &&
		len(rt.j.states) == 0 && len(rt.j.events) == 0 &&
		len(rt.j.bank) == 0 && len(rt.j.trigArms) == 0 && len(rt.j.trigCancels) == 0
}

func (rt *HomeRuntime) journalReset() {
	rt.j.submits = rt.j.submits[:0]
	rt.j.finishes = rt.j.finishes[:0]
	rt.j.states = rt.j.states[:0]
	clear(rt.j.stateIdx)
	rt.j.events = rt.j.events[:0]
	rt.j.firstSeq = 0
	rt.j.bank = rt.j.bank[:0]
	clear(rt.j.bankIdx)
	rt.j.trigArms = rt.j.trigArms[:0]
	clear(rt.j.trigArmIdx)
	rt.j.trigCancels = rt.j.trigCancels[:0]
}

// resolveRecords materializes the current outcome records of the given
// routines from the controller.
func (rt *HomeRuntime) resolveRecords(ids []routine.ID) []journal.RoutineRecord {
	if len(ids) == 0 {
		return nil
	}
	out := make([]journal.RoutineRecord, 0, len(ids))
	for _, id := range ids {
		if res, ok := rt.ctrl.Result(id); ok {
			out = append(out, journal.FromResult(res))
		}
	}
	return out
}

// journalFlush group-commits everything the batch accumulated: one record,
// one fsync, called on the loop goroutine strictly before the batch's
// replies are delivered.
func (rt *HomeRuntime) journalFlush() {
	if rt.j == nil || rt.journalEmpty() {
		return
	}
	// The batch borrows the accumulation buffers: Append marshals it to JSON
	// synchronously and retains nothing, so the buffers are reset (not
	// copied) afterwards — no per-commit slice copies on the durable path.
	b := &journal.Batch{
		Submits:     rt.resolveRecords(rt.j.submits),
		Finishes:    rt.resolveRecords(rt.j.finishes),
		States:      rt.j.states,
		FirstSeq:    rt.j.firstSeq,
		Events:      rt.j.events,
		Bank:        rt.j.bank,
		TrigArms:    rt.j.trigArms,
		TrigCancels: rt.j.trigCancels,
	}
	if err := rt.j.jrn.Append(b); err != nil {
		rt.journalFail(err) // sets rt.j = nil; nothing left to reset
		return
	}
	err := rt.j.jrn.Commit()
	rt.journalReset()
	if err != nil {
		rt.journalFail(err)
	}
}

// maybeCheckpoint cuts a checkpoint once enough journal has accumulated. It
// runs right after publish, so the snapshot it reads covers everything up to
// and including the journal's last record.
func (rt *HomeRuntime) maybeCheckpoint() {
	if rt.j == nil || !rt.j.jrn.ShouldCheckpoint() {
		return
	}
	rt.checkpointNow()
}

// checkpointNow derives a durable image from the latest published Snapshot
// (results including open routines, committed states, the retained event
// window) and hands it to the journal, which truncates the segments the
// checkpoint covers.
//
// The routine history is written incrementally, riding the export spine's
// write-once chunks: every aligned DefaultSealSize run of terminal results
// beyond the already-sealed prefix is sealed into an immutable chunk object
// first (each such run is serialized exactly once in the home's lifetime),
// and the checkpoint image itself carries only the unsealed tail. Cutting a
// checkpoint is therefore O(new finishes since the last one) instead of
// O(history) — cheap enough for the hibernation freezer to run it as every
// idle home's final act.
func (rt *HomeRuntime) checkpointNow() {
	if rt.j == nil {
		return
	}
	s := rt.snap.Load()
	results := s.state.Results
	n := results.Len()
	sealed := rt.j.jrn.SealedRoutines()
	sealSize := rt.j.jrn.SealedChunkSize()
	if sealSize <= 0 {
		sealSize = journal.DefaultSealSize
	}
	var chunk []journal.RoutineRecord
	for sealed+sealSize <= n {
		complete := true
		chunk = chunk[:0]
		for i := sealed; i < sealed+sealSize; i++ {
			res := results.At(i)
			if !res.Status.Finished() {
				complete = false
				break
			}
			chunk = append(chunk, journal.FromResult(res))
		}
		if !complete {
			break // an open routine pins the seal frontier; retry next time
		}
		if err := rt.j.jrn.SealChunk(sealed/sealSize, chunk); err != nil {
			rt.journalFail(err)
			return
		}
		sealed += sealSize
	}
	ck := &journal.Checkpoint{}
	if sealed > 0 {
		ck.Sealed, ck.SealSize = sealed, sealSize
	}
	ck.Routines = make([]journal.RoutineRecord, 0, n-sealed)
	for i := sealed; i < n; i++ {
		ck.Routines = append(ck.Routines, journal.FromResult(results.At(i)))
	}
	for d, st := range s.CommittedStates() {
		ck.States = append(ck.States, journal.StateEntry{Device: d, State: st})
	}
	first, _ := s.EventSeqRange()
	ck.FirstSeq = first
	events := s.Events()
	ck.Events = make([]journal.EventRecord, 0, len(events))
	for _, e := range events {
		ck.Events = append(ck.Events, journal.FromEvent(e))
	}
	for _, name := range rt.bank.Names() {
		if r, ok := rt.bank.Get(name); ok {
			ck.Bank = append(ck.Bank, journal.BankRecord{Name: r.Name, User: r.User, Commands: r.Commands})
		}
	}
	// Live triggers plus the ones a clean Close retired: both must re-arm on
	// the next start.
	for _, tr := range rt.triggers {
		ck.Triggers = append(ck.Triggers, triggerRecord(tr.spec))
	}
	for _, spec := range rt.retiredTriggers {
		ck.Triggers = append(ck.Triggers, triggerRecord(spec))
	}
	ck.NextTrigger = int64(rt.nextTrigger)
	if err := rt.j.jrn.Checkpoint(ck); err != nil {
		rt.journalFail(err)
	}
}

func triggerRecord(spec ScheduledTrigger) journal.TriggerRecord {
	return journal.TriggerRecord{
		Handle:   int64(spec.Handle),
		Routine:  spec.Routine,
		Interval: spec.Interval,
		NextFire: spec.NextFire,
		Fired:    spec.Fired,
	}
}

// journalFail disables journaling after an I/O error (disk full, permission
// flip, ...). The home keeps serving from memory — availability over
// durability — and the error is surfaced through JournalError.
func (rt *HomeRuntime) journalFail(err error) {
	rt.jErr.Store(err)
	rt.j.jrn.Abandon()
	rt.j = nil
}

// JournalError reports the error that disabled journaling, if any. A nil
// return with a configured DataDir means every acknowledged batch so far is
// durable.
func (rt *HomeRuntime) JournalError() error {
	if v := rt.jErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Durable reports whether the runtime is journaling (a DataDir was
// configured and no journal I/O error has occurred).
func (rt *HomeRuntime) Durable() bool { return rt.cfg.DataDir != "" && rt.JournalError() == nil }

// recoverFrom seeds the freshly built controller, event log and observer
// chain from a journal recovery. It runs in the constructors, before the
// loop starts. Routines that were in flight at the crash are terminated per
// the paper's failure semantics: aborted, with their effects rolled back to
// the pre-routine committed states (which is exactly the recovered committed
// view — an unfinished routine's writes never entered it), and surfaced as
// Aborted outcomes plus EvAborted activity events.
func (rt *HomeRuntime) recoverFrom(rec *journal.Recovered) {
	now := rt.env.Now()
	results := make([]visibility.Result, 0, len(rec.Routines))
	var aborted []visibility.Result
	for _, rr := range rec.Routines {
		res := rr.ToResult()
		if !res.Status.Finished() {
			res.Status = visibility.StatusAborted
			res.AbortReason = "hub restart: in flight at crash, rolled back"
			if res.Started.IsZero() {
				res.Started = res.Submitted
			}
			res.Finished = now
			aborted = append(aborted, res)
		}
		results = append(results, res)
	}
	rt.ctrl.Preload(results)

	if rt.cfg.EventLog > 0 {
		events := make([]visibility.Event, 0, len(rec.Events))
		for _, er := range rec.Events {
			events = append(events, er.ToEvent())
		}
		rt.elog.restore(rec.FirstSeq, events)
	}
	// Announce the crash-aborts through the observer chain: they land in the
	// event log (with post-restart sequence numbers), the owner's counters,
	// and the journal collectors — the post-recovery checkpoint makes them
	// durable.
	for _, res := range aborted {
		rt.observe(visibility.Event{
			Time:    now,
			Kind:    visibility.EvAborted,
			Routine: res.ID,
			Detail:  res.AbortReason,
		})
	}

	// Re-seed the routine bank in first-store order, then re-arm recovered
	// triggers so automations survive the restart: a trigger whose deadline
	// passed while the home was down fires as soon as the clock advances.
	for _, b := range rec.Bank {
		_ = rt.bank.Store(&routine.Routine{Name: b.Name, User: b.User, Commands: b.Commands})
	}
	rt.nextTrigger = TriggerHandle(rec.NextTrigger)
	handles := make([]int64, 0, len(rec.Triggers))
	for h := range rec.Triggers {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(a, b int) bool { return handles[a] < handles[b] })
	for _, h := range handles {
		tr := rec.Triggers[h]
		if TriggerHandle(tr.Handle) > rt.nextTrigger {
			rt.nextTrigger = TriggerHandle(tr.Handle)
		}
		if tr.Interval > 0 && rt.cfg.Clock == ClockVirtual {
			continue // recurring triggers cannot run on a virtual clock
		}
		delay := tr.NextFire.Sub(now)
		if delay < 0 {
			delay = 0
		}
		nf := tr.NextFire
		if nf.Before(now) {
			nf = now
		}
		handle := TriggerHandle(tr.Handle)
		t := &trigger{spec: ScheduledTrigger{
			Handle:   handle,
			Routine:  tr.Routine,
			Interval: tr.Interval,
			NextFire: nf,
			Fired:    tr.Fired,
		}}
		t.cancel = rt.armTrigger(handle, delay)
		rt.triggers[handle] = t
	}
}

// finishRecovery publishes the recovered snapshot and immediately cuts a
// fresh checkpoint, so the pre-crash segments are truncated and the next
// recovery replays only what happens from here on. Runs before the loop
// starts.
func (rt *HomeRuntime) finishRecovery() {
	rt.checkpointNow()
	if rt.j != nil {
		rt.journalReset()
	}
}

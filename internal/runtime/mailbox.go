package runtime

import (
	"errors"
	"sync"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Errors surfaced by the mailbox admission path.
var (
	// ErrOverloaded is returned when a mutating operation is rejected because
	// the home's mailbox is full. The caller should back off and retry; the
	// HTTP layers translate it to 429 Too Many Requests.
	ErrOverloaded = errors.New("runtime: home mailbox full")
	// ErrClosed is returned by mutating operations after Close.
	ErrClosed = errors.New("runtime: closed")
	// ErrPoisoned is returned to callers whose operations were queued or in
	// flight when a panic killed the home's loop. The home is torn down
	// crash-style (nothing in the poisoned batch was acknowledged); an owner
	// with a supervisor restarts it from its journal.
	ErrPoisoned = errors.New("runtime: home poisoned by panic")
)

// opKind tags one mailbox operation. Every entry point into a home — user
// submissions, failure injections, live command completions, timer callbacks,
// clock pumps, trigger firings — is one of these tagged structs, so the
// runtime goroutine is the only code that ever touches the controller. The
// mailbox deliberately carries op values, not func() closures: the hot path
// (Submit) moves a flat struct through a bounded ring with zero allocations.
type opKind uint8

const (
	opInvalid opKind = iota

	// External mutations: admission-controlled (TryPost, ErrOverloaded).
	opSubmit        // r, reply        → rid, err
	opSubmitAfter   // r, delay, reply → err
	opFailDevice    // dev, reply      → err
	opRestoreDevice // dev, reply      → err
	opScheduleTrig  // name, delay, every, reply → handle, err
	opCancelTrig    // handle, reply   → err
	opStoreRoutine  // r, reply        → err (bank store, journaled)

	// External queries: posted blocking (they cannot be load-shed without
	// breaking read APIs; the loop drains continuously so the wait is bounded
	// by queue depth). After Close they evaluate inline on the quiesced state.
	opResults         // reply → []visibility.Result
	opResult          // rid, reply → (visibility.Result, ok)
	opCounts          // reply → Counts
	opDeviceStates    // reply → map[device.ID]device.State
	opCommittedStates // reply → map[device.ID]device.State
	opEvents          // reply → []visibility.Event
	opTriggers        // reply → []ScheduledTrigger

	// Internal deliveries: posted blocking from dedicated goroutines (live
	// command completions, wall-clock timers — including trigger firings,
	// which ride opTimer through env.After — the failure detector, the shard
	// pumper, and shutdown). Never load-shed — dropping one would wedge the
	// controller's state machine.
	opCompletion    // done, err
	opTimer         // fn
	opNotifyFailure // dev
	opNotifyRestart // dev
	opPump          // now
	opSuspend       // gate, release
	opBarrier       // reply: answers once everything queued before it ran
	opStopTriggers  // reply: cancels every trigger, refuses new ones
	opCompactNow    // reply: folds all released lock-access history (freeze path)
)

// op is one tagged mailbox entry. The struct is moved by value through the
// ring; payload fields overlap across kinds (a tagged union).
type op struct {
	kind    opKind
	r       *routine.Routine
	delay   time.Duration
	every   time.Duration
	dev     device.ID
	rid     routine.ID
	name    string
	handle  TriggerHandle
	err     error
	done    func(error)
	fn      func()
	now     time.Time
	gate    chan struct{}
	release <-chan struct{}
	reply   *reply
}

// result is the uniform answer shape delivered through a reply slot.
type result struct {
	rid    routine.ID
	err    error
	ok     bool
	handle TriggerHandle
	any    any
}

// reply is a pooled single-use answer channel, so the submit hot path does
// not allocate a fresh channel per operation.
type reply struct {
	ch chan result
}

var replyPool = sync.Pool{New: func() any { return &reply{ch: make(chan result, 1)} }}

func newReply() *reply { return replyPool.Get().(*reply) }

func (r *reply) send(res result) { r.ch <- res }

// await blocks for the answer and recycles the slot.
func (r *reply) await() result {
	res := <-r.ch
	replyPool.Put(r)
	return res
}

// discard recycles a slot whose op was never admitted.
func (r *reply) discard() { replyPool.Put(r) }

// MailboxStats reports a home mailbox's admission counters and current
// occupancy.
type MailboxStats struct {
	// Accepted and Rejected count mutating operations admitted to /
	// load-shed from the mailbox since the runtime started.
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	// Depth is the current number of queued operations; Capacity is the ring
	// size (the Config.MailboxDepth knob).
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// tryPost admits a mutating operation, shedding load when the ring is full.
func (rt *HomeRuntime) tryPost(o op) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	select {
	case rt.ch <- o:
		rt.accepted.Inc()
		// Any admitted mutation resets the idle clock the hibernation
		// freezer watches; queries deliberately do not (status polls must
		// not keep a home resident).
		rt.lastActive.Store(time.Now().UnixNano())
		return nil
	default:
		rt.rejected.Inc()
		return ErrOverloaded
	}
}

// post delivers an operation that must not be load-shed (queries and internal
// callbacks), blocking while the ring is full. The loop goroutine drains
// continuously, so the wait is bounded by queue depth; after Close it returns
// ErrClosed without delivering.
func (rt *HomeRuntime) post(o op) error {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	rt.ch <- o
	return nil
}

// postPump enqueues a clock pump without blocking and without touching the
// admission counters; a shed pump is retried on the next tick.
func (rt *HomeRuntime) postPump(o op) bool {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	if rt.closed {
		return false
	}
	select {
	case rt.ch <- o:
		return true
	default:
		return false
	}
}

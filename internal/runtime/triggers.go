package runtime

import (
	"fmt"
	"time"
)

// Triggers are the automation half of the routine dispatcher (Fig 11): a
// stored routine can be dispatched once after a delay ("run the trash
// routine at 11 pm") or repeatedly at a fixed interval ("every Monday
// night"), without a user in the loop. Triggers reference routines by name,
// so editing the stored definition affects future firings.
//
// Trigger state is owned by the loop goroutine — scheduling, firing and
// cancellation are all mailbox operations, so the single-writer invariant
// has no exceptions. Timing rides the runtime's environment: on the wall
// clock the live env's timers post the firing back into the mailbox, and on
// a simulated clock the firing runs inline during a pump. Recurring
// triggers are rejected on ClockVirtual, where a self-re-arming event would
// make the pump's run-to-quiescence non-terminating.

// TriggerHandle identifies a scheduled trigger.
type TriggerHandle int64

// ScheduledTrigger describes one active trigger.
type ScheduledTrigger struct {
	Handle    TriggerHandle `json:"handle"`
	Routine   string        `json:"routine"`
	Interval  time.Duration `json:"interval,omitempty"` // zero for one-shot triggers
	NextFire  time.Time     `json:"next_fire"`
	Fired     int           `json:"fired"`
	LastError string        `json:"last_error,omitempty"`
}

type trigger struct {
	spec   ScheduledTrigger
	cancel func()
}

// ScheduleAfter dispatches the named stored routine once, after the delay.
func (rt *HomeRuntime) ScheduleAfter(name string, delay time.Duration) (TriggerHandle, error) {
	return rt.schedule(name, delay, 0)
}

// ScheduleEvery dispatches the named stored routine repeatedly at the given
// interval, starting one interval from now.
func (rt *HomeRuntime) ScheduleEvery(name string, interval time.Duration) (TriggerHandle, error) {
	if interval <= 0 {
		return 0, fmt.Errorf("runtime: trigger interval must be positive")
	}
	return rt.schedule(name, interval, interval)
}

func (rt *HomeRuntime) schedule(name string, delay, interval time.Duration) (TriggerHandle, error) {
	if delay < 0 {
		delay = 0
	}
	rp := newReply()
	if err := rt.tryPost(op{kind: opScheduleTrig, name: name, delay: delay, every: interval, reply: rp}); err != nil {
		rp.discard()
		return 0, err
	}
	res := rp.await()
	return res.handle, res.err
}

// CancelTrigger stops a scheduled trigger; it is not an error if the handle
// is unknown or already fired. Returns ErrOverloaded/ErrClosed if the
// cancellation could not be enqueued.
func (rt *HomeRuntime) CancelTrigger(handle TriggerHandle) error {
	rp := newReply()
	if err := rt.tryPost(op{kind: opCancelTrig, handle: handle, reply: rp}); err != nil {
		rp.discard()
		return err
	}
	rp.await()
	return nil
}

// Triggers lists active scheduled triggers.
func (rt *HomeRuntime) Triggers() []ScheduledTrigger {
	return rt.query(op{kind: opTriggers}).any.([]ScheduledTrigger)
}

// scheduleTrigger runs on the loop goroutine.
func (rt *HomeRuntime) scheduleTrigger(name string, delay, interval time.Duration) (TriggerHandle, error) {
	if rt.triggersStopped {
		return 0, fmt.Errorf("runtime: trigger scheduler is stopped")
	}
	if interval > 0 && rt.cfg.Clock == ClockVirtual {
		// A virtual clock drains its event queue to empty on every pump; a
		// self-re-arming trigger would make that drain non-terminating
		// ("every d" has no meaning when time is infinitely fast).
		return 0, fmt.Errorf("runtime: recurring triggers require a live or paced clock")
	}
	if _, ok := rt.bank.Get(name); !ok {
		return 0, fmt.Errorf("runtime: no stored routine named %q", name)
	}
	rt.nextTrigger++
	handle := rt.nextTrigger
	tr := &trigger{spec: ScheduledTrigger{
		Handle:   handle,
		Routine:  name,
		Interval: interval,
		NextFire: rt.env.Now().Add(delay),
	}}
	tr.cancel = rt.armTrigger(handle, delay)
	rt.triggers[handle] = tr
	if rt.j != nil {
		rt.noteTriggerArm(tr.spec)
	}
	return handle, nil
}

// armTrigger schedules the next firing on the home's clock. On the wall
// clock the live env's timer posts the callback into the mailbox; on a
// simulated clock it fires inline during a pump — either way fireTrigger
// runs in the loop's serialized context.
func (rt *HomeRuntime) armTrigger(handle TriggerHandle, delay time.Duration) (cancel func()) {
	return rt.env.After(delay, func() { rt.fireTrigger(handle) })
}

// fireTrigger runs on the loop goroutine: dispatch the stored routine,
// record the outcome, and re-arm recurring triggers.
func (rt *HomeRuntime) fireTrigger(handle TriggerHandle) {
	tr, ok := rt.triggers[handle]
	if !ok {
		return
	}
	var err error
	r, ok := rt.bank.Get(tr.spec.Routine)
	if !ok {
		err = fmt.Errorf("runtime: no stored routine named %q", tr.spec.Routine)
	} else if err = r.Validate(rt.reg); err == nil {
		rt.ctrl.Submit(r)
	}
	tr.spec.Fired++
	if err != nil {
		tr.spec.LastError = err.Error()
	} else {
		tr.spec.LastError = ""
	}
	if tr.spec.Interval > 0 {
		tr.spec.NextFire = rt.env.Now().Add(tr.spec.Interval)
		tr.cancel = rt.armTrigger(handle, tr.spec.Interval)
		if rt.j != nil {
			rt.noteTriggerArm(tr.spec)
		}
	} else {
		delete(rt.triggers, handle)
		if rt.j != nil {
			rt.noteTriggerCancel(handle)
		}
	}
}

// cancelTrigger runs on the loop goroutine.
func (rt *HomeRuntime) cancelTrigger(handle TriggerHandle) {
	if tr, ok := rt.triggers[handle]; ok {
		tr.cancel()
		delete(rt.triggers, handle)
		if rt.j != nil {
			rt.noteTriggerCancel(handle)
		}
	}
}

// stopAllTriggers runs on the loop goroutine (from Close's opStopTriggers,
// and again — idempotently — at loop exit): cancel every armed trigger and
// refuse new schedules. A timer firing already queued behind this op finds
// its handle gone and is a no-op.
func (rt *HomeRuntime) stopAllTriggers() {
	rt.triggersStopped = true
	for handle, tr := range rt.triggers {
		tr.cancel()
		delete(rt.triggers, handle)
		// Retirement is not a cancellation: a journaled home keeps the spec
		// so the final checkpoint re-arms it on the next start.
		if rt.j != nil {
			rt.retiredTriggers = append(rt.retiredTriggers, tr.spec)
		}
	}
}

package runtime

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// This file is the shared half of self-healing supervision: the owner of a
// home (a manager shard, the single-home hub) wires Config.OnPoison to a
// Supervisor, which drives the poison → restart → quarantine state machine.
// The runtime itself only knows how to die cleanly (poison.go); policy —
// backoff, restart budget, quarantine — lives here so every owner applies
// the same rules and exposes the same health vocabulary.

// HomeHealth is the supervision-level health of one home.
type HomeHealth string

const (
	// HealthOK: serving, journaling (if configured) intact.
	HealthOK HomeHealth = "ok"
	// HealthDegraded: serving, but a journal I/O error disabled durability
	// (the home runs memory-only until restarted).
	HealthDegraded HomeHealth = "degraded"
	// HealthRestarting: a panic poisoned the home; the supervisor is
	// rebuilding it from its journal. Mutations fail with 503 + Retry-After.
	HealthRestarting HomeHealth = "restarting"
	// HealthQuarantined: the restart budget is exhausted; the home stays down
	// until an operator intervenes (e.g. re-adds it).
	HealthQuarantined HomeHealth = "quarantined"
	// HealthFrozen: hibernated — the home took its final checkpoint and
	// released its runtime; the manager holds only a FrozenHome record. Any
	// submit, query or due trigger reanimates it from checkpoint + journal
	// tail. Reported without waking the home.
	HealthFrozen HomeHealth = "frozen"
)

// Supervisor restart-policy defaults.
const (
	// DefaultMaxRestarts is the consecutive-failure budget before quarantine.
	DefaultMaxRestarts = 5
	// DefaultRestartBackoff is the base of the exponential restart backoff.
	DefaultRestartBackoff = 50 * time.Millisecond
	// DefaultRestartBackoffCap caps the exponential restart backoff.
	DefaultRestartBackoffCap = 5 * time.Second
	// DefaultHealthyWindow is how long a home must stay up after a restart
	// for its consecutive-failure count to reset.
	DefaultHealthyWindow = time.Minute
)

// SupervisorConfig tunes the automatic restart of poisoned homes.
type SupervisorConfig struct {
	// MaxRestarts quarantines a home after this many consecutive failures —
	// poisons within HealthyWindow of the previous one, or rebuilds that
	// errored. 0 means DefaultMaxRestarts; negative quarantines on the first
	// poison.
	MaxRestarts int
	// Backoff is the base of the capped, jittered exponential delay before
	// each restart attempt (0 = DefaultRestartBackoff).
	Backoff time.Duration
	// BackoffCap bounds the exponential delay (0 = DefaultRestartBackoffCap).
	BackoffCap time.Duration
	// HealthyWindow resets the consecutive-failure count once a restarted
	// home stays up this long (0 = DefaultHealthyWindow).
	HealthyWindow time.Duration
	// Disable turns supervision off: a poisoned home stays down (callers get
	// ErrClosed/ErrPoisoned) until its owner rebuilds it by hand.
	Disable bool
}

// Normalized fills defaults into zero fields.
func (c SupervisorConfig) Normalized() SupervisorConfig {
	if c.MaxRestarts == 0 {
		c.MaxRestarts = DefaultMaxRestarts
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultRestartBackoff
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = DefaultRestartBackoffCap
	}
	if c.HealthyWindow <= 0 {
		c.HealthyWindow = DefaultHealthyWindow
	}
	return c
}

// Supervisor tracks one home's poison/restart lifecycle on behalf of its
// owner. Health, counters and NotePoison are safe from any goroutine;
// Restart must be called from the owner's single supervision goroutine.
type Supervisor struct {
	cfg      SupervisorConfig
	state    atomic.Int32 // supOK | supRestarting | supQuarantined
	poisons  atomic.Int64
	restarts atomic.Int64
	lastErr  atomic.Value

	// Owned by the supervision goroutine:
	consecutive int
	lastPoison  time.Time
}

const (
	supOK int32 = iota
	supRestarting
	supQuarantined
)

// NewSupervisor builds a Supervisor with the given (zero-filled) policy.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	return &Supervisor{cfg: cfg.Normalized()}
}

// NotePoison records a poison event and flips health to restarting. Safe to
// call from the dying loop goroutine (Config.OnPoison).
func (s *Supervisor) NotePoison(err error) {
	s.lastErr.Store(err)
	s.poisons.Add(1)
	s.state.Store(supRestarting)
}

// Health folds the supervision state with the home's durability: a home
// whose journal died serves degraded until its next restart.
func (s *Supervisor) Health(durable bool) HomeHealth {
	switch s.state.Load() {
	case supRestarting:
		return HealthRestarting
	case supQuarantined:
		return HealthQuarantined
	}
	if !durable {
		return HealthDegraded
	}
	return HealthOK
}

// Serving reports whether the home should accept operations (ok or degraded).
func (s *Supervisor) Serving() bool { return s.state.Load() == supOK }

// Quarantined reports whether the restart budget is exhausted.
func (s *Supervisor) Quarantined() bool { return s.state.Load() == supQuarantined }

// Poisons counts panic events observed over the home's lifetime.
func (s *Supervisor) Poisons() int64 { return s.poisons.Load() }

// Restarts counts successful supervised restarts.
func (s *Supervisor) Restarts() int64 { return s.restarts.Load() }

// LastError returns the most recent poison or rebuild error.
func (s *Supervisor) LastError() error {
	if v := s.lastErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Restart drives one poison event through the restart policy: capped
// jittered exponential backoff before each attempt, rebuild retried until it
// succeeds or the consecutive-failure budget quarantines the home. stop
// aborts the wait (owner shutdown) leaving the home down. Reports whether
// the home is serving again.
func (s *Supervisor) Restart(stop <-chan struct{}, rebuild func() error) bool {
	now := time.Now()
	if !s.lastPoison.IsZero() && now.Sub(s.lastPoison) > s.cfg.HealthyWindow {
		s.consecutive = 0 // stayed up long enough: forgive earlier failures
	}
	s.lastPoison = now
	for {
		s.consecutive++
		if s.consecutive > s.cfg.MaxRestarts {
			s.state.Store(supQuarantined)
			return false
		}
		select {
		case <-stop:
			return false
		case <-time.After(s.backoff(s.consecutive)):
		}
		if err := rebuild(); err != nil {
			s.lastErr.Store(err)
			continue
		}
		s.restarts.Add(1)
		s.state.Store(supOK)
		return true
	}
}

// backoff computes the jittered exponential delay for the n-th consecutive
// attempt (n >= 1).
func (s *Supervisor) backoff(n int) time.Duration {
	d := s.cfg.Backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= s.cfg.BackoffCap {
			d = s.cfg.BackoffCap
			break
		}
	}
	// Up to +25% jitter so a shard's homes don't restart in lockstep.
	return d + time.Duration(rand.Int63n(int64(d)/4+1))
}

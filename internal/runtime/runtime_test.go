package runtime

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

func plugRoutine(name string, target device.State, plugs ...int) *routine.Routine {
	r := routine.New(name)
	for _, p := range plugs {
		r.Commands = append(r.Commands, routine.Command{
			Device:   device.ID(fmt.Sprintf("plug-%d", p)),
			Target:   target,
			Duration: time.Minute,
		})
	}
	return r
}

func newVirtual(t *testing.T, cfg Config, plugs int) *HomeRuntime {
	t.Helper()
	if cfg.Model == visibility.WV {
		cfg.Model = visibility.EV
	}
	rt, err := NewSim(cfg, device.Plugs(plugs))
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestVirtualSubmitRunsToCompletion(t *testing.T) {
	rt := newVirtual(t, Config{}, 4)
	rid, err := rt.Submit(plugRoutine("morning", device.On, 0, 1, 2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, ok := rt.Result(rid)
	if !ok || res.Status != visibility.StatusCommitted {
		t.Fatalf("result = %+v, %v; want committed on return (virtual clock)", res, ok)
	}
	states := rt.DeviceStates()
	for _, p := range []device.ID{"plug-0", "plug-1", "plug-2"} {
		if states[p] != device.On {
			t.Errorf("%s = %q, want ON", p, states[p])
		}
	}
	if c := rt.Counts(); c.Routines != 1 || c.Pending != 0 {
		t.Errorf("Counts = %+v", c)
	}
}

func TestSubmitValidatesAgainstRegistry(t *testing.T) {
	rt := newVirtual(t, Config{}, 2)
	if _, err := rt.Submit(plugRoutine("ghost", device.On, 9)); err == nil {
		t.Fatal("routine naming an unknown device was accepted")
	}
}

func TestFailureInjectionRoundTrip(t *testing.T) {
	rt := newVirtual(t, Config{Model: visibility.SGSV}, 2)
	if err := rt.FailDevice("plug-0"); err != nil {
		t.Fatal(err)
	}
	rid, err := rt.Submit(plugRoutine("hit-failed", device.On, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := rt.Result(rid); res.Status != visibility.StatusAborted {
		t.Errorf("routine on failed device = %v, want aborted", res.Status)
	}
	if err := rt.RestoreDevice("plug-0"); err != nil {
		t.Fatal(err)
	}
	rid, err = rt.Submit(plugRoutine("after-restore", device.On, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := rt.Result(rid); res.Status != visibility.StatusCommitted {
		t.Errorf("post-restore routine = %v, want committed", res.Status)
	}
}

func TestCloseDrainsAndAnswersInline(t *testing.T) {
	rt, err := NewSim(Config{Model: visibility.EV, Clock: ClockPaced}, device.Plugs(2))
	if err != nil {
		t.Fatal(err)
	}
	// Paced clock: the submission is in flight (nothing pumps it) until
	// Close drains the simulator to quiescence.
	if err := rt.SubmitAfter(time.Millisecond, plugRoutine("drain", device.On, 0, 1)); err != nil {
		t.Fatal(err)
	}
	rt.Close()

	results := rt.Results() // inline read on the quiesced state
	if len(results) != 1 || !results[0].Status.Finished() {
		t.Fatalf("results after Close = %+v, want one finished routine", results)
	}
	if _, err := rt.Submit(plugRoutine("late", device.On, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	rt.Close() // idempotent
}

func TestEventLogRecordsAndCaps(t *testing.T) {
	rt := newVirtual(t, Config{EventLog: 8}, 2)
	for i := 0; i < 10; i++ {
		if _, err := rt.Submit(plugRoutine("evgen", device.On, 0)); err != nil {
			t.Fatal(err)
		}
	}
	events := rt.Events()
	if len(events) == 0 || len(events) > 8 {
		t.Fatalf("event log length = %d, want (0, 8]", len(events))
	}
}

func TestObserverReceivesEvents(t *testing.T) {
	var mu sync.Mutex
	kinds := make(map[visibility.EventKind]int)
	rt := newVirtual(t, Config{Observer: func(e visibility.Event) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	}}, 2)
	if _, err := rt.Submit(plugRoutine("obs", device.On, 0, 1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if kinds[visibility.EvSubmitted] != 1 || kinds[visibility.EvCommitted] != 1 {
		t.Errorf("observer saw %v, want one submitted and one committed", kinds)
	}
}

// --- backpressure ----------------------------------------------------------------

// fillMailbox parks the loop, then saturates the ring with concurrent
// submissions. It returns the resume function and a WaitGroup that joins the
// blocked submitters.
func fillMailbox(t *testing.T, rt *HomeRuntime, depth int) (resume func(), wg *sync.WaitGroup) {
	t.Helper()
	resume, err := rt.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	wg = &sync.WaitGroup{}
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Submit(plugRoutine("filler", device.On, 0)); err != nil {
				t.Errorf("admitted submit failed: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.Mailbox().Depth < depth {
		if time.Now().After(deadline) {
			resume()
			t.Fatalf("mailbox depth = %d, never reached %d", rt.Mailbox().Depth, depth)
		}
		time.Sleep(time.Millisecond)
	}
	return resume, wg
}

func TestOverloadShedsAndRecovers(t *testing.T) {
	const depth = 8
	rt := newVirtual(t, Config{MailboxDepth: depth}, 2)

	resume, wg := fillMailbox(t, rt, depth)

	// The ring is full and the loop is parked: mutating ops are load-shed.
	if _, err := rt.Submit(plugRoutine("shed", device.On, 0)); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Submit on full mailbox = %v, want ErrOverloaded", err)
	}
	// ...but an invalid routine still gets its validation error (it can
	// never succeed, so "back off and retry" would loop forever).
	if _, err := rt.Submit(plugRoutine("bad", device.On, 99)); err == nil || errors.Is(err, ErrOverloaded) {
		t.Errorf("invalid Submit under overload = %v, want a validation error", err)
	}
	if err := rt.FailDevice("plug-0"); !errors.Is(err, ErrOverloaded) {
		t.Errorf("FailDevice on full mailbox = %v, want ErrOverloaded", err)
	}
	mb := rt.Mailbox()
	if mb.Rejected != 2 {
		t.Errorf("rejected counter = %d, want 2", mb.Rejected)
	}
	if mb.Accepted != depth {
		t.Errorf("accepted counter = %d, want %d", mb.Accepted, depth)
	}
	if mb.Depth != depth || mb.Capacity != depth {
		t.Errorf("mailbox = %+v, want depth == capacity == %d", mb, depth)
	}

	// Drain: every admitted op completes and the runtime accepts again.
	resume()
	wg.Wait()
	rid, err := rt.Submit(plugRoutine("after-drain", device.On, 1))
	if err != nil {
		t.Fatalf("Submit after drain = %v, want accepted", err)
	}
	if res, _ := rt.Result(rid); res.Status != visibility.StatusCommitted {
		t.Errorf("post-drain routine = %v, want committed", res.Status)
	}
	if got := rt.Mailbox(); got.Accepted != depth+1 {
		t.Errorf("accepted counter after drain = %d, want %d", got.Accepted, depth+1)
	}
}

func TestBatchDrainPreservesOrder(t *testing.T) {
	// Park the loop, queue a full batch of submissions, release: all must be
	// applied, and in arrival order (routine IDs are assigned in op order).
	const depth = 16
	rt := newVirtual(t, Config{MailboxDepth: depth, Batch: depth}, 2)
	resume, wg := fillMailbox(t, rt, depth)
	resume()
	wg.Wait()
	results := rt.Results()
	if len(results) != depth {
		t.Fatalf("results = %d, want %d", len(results), depth)
	}
	for i, res := range results {
		if res.Status != visibility.StatusCommitted {
			t.Errorf("routine %d = %v, want committed", i, res.Status)
		}
		if int(res.ID) != i+1 {
			t.Errorf("result %d has ID %d, want %d (arrival order)", i, res.ID, i+1)
		}
	}
}

func TestPumpIfDueSkipsIdleHomes(t *testing.T) {
	rt, err := NewSim(Config{Model: visibility.EV, Clock: ClockPaced}, device.Plugs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Nothing scheduled: no pump should be posted, ever.
	if rt.PumpIfDue(time.Now().Add(time.Hour)) {
		t.Error("PumpIfDue pumped an idle home")
	}

	// Schedule work 50ms out: due in the future, still no pump...
	if err := rt.SubmitAfter(50*time.Millisecond, plugRoutine("later", device.On, 0)); err != nil {
		t.Fatal(err)
	}
	waitNextDue := time.Now().Add(2 * time.Second)
	for rt.nextDue.Load() == 0 {
		if time.Now().After(waitNextDue) {
			t.Fatal("runtime never published its next deadline")
		}
		time.Sleep(time.Millisecond)
	}
	if rt.PumpIfDue(time.Now()) {
		t.Error("PumpIfDue pumped a home whose next event is in the future")
	}
	// ...but once the horizon passes the deadline, the home is pumped.
	if !rt.PumpIfDue(time.Now().Add(time.Second)) {
		t.Error("PumpIfDue skipped a home with a due event")
	}
}

func TestLiveCloseDrainsChainedCommands(t *testing.T) {
	// A wall-clock routine executes its commands one at a time: each
	// completion (delivered through the mailbox) chains the next Exec. Close
	// must wait out the whole cascade — both devices actuated, the routine
	// finished — not just the first in-flight command.
	reg := device.Plugs(2)
	fleet := device.NewFleet(reg)
	home, err := NewLive(Config{Model: visibility.EV}, reg, fleet)
	if err != nil {
		t.Fatal(err)
	}
	r := routine.New("chain",
		routine.Command{Device: "plug-0", Target: device.On, Duration: 20 * time.Millisecond},
		routine.Command{Device: "plug-1", Target: device.On, Duration: 20 * time.Millisecond},
	)
	if _, err := home.Submit(r); err != nil {
		t.Fatal(err)
	}
	home.Close()

	results := home.Results()
	if len(results) != 1 || results[0].Status != visibility.StatusCommitted {
		t.Fatalf("results after Close = %+v, want one committed routine", results)
	}
	for _, p := range []device.ID{"plug-0", "plug-1"} {
		if st, _ := fleet.Status(p); st != device.On {
			t.Errorf("%s = %q after Close, want ON (cascade cut short)", p, st)
		}
	}
}

func TestRecurringTriggerRejectedOnVirtualClock(t *testing.T) {
	// On a virtual clock every pump runs the simulator to quiescence; a
	// self-re-arming trigger would make that loop non-terminating, so
	// ScheduleEvery must refuse. One-shot triggers are fine.
	rt := newVirtual(t, Config{}, 1)
	if err := rt.Bank().Store(plugRoutine("night", device.On, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ScheduleEvery("night", 10*time.Millisecond); err == nil {
		t.Error("ScheduleEvery on a virtual clock was accepted")
	}
	if _, err := rt.ScheduleAfter("night", 10*time.Millisecond); err != nil {
		t.Errorf("one-shot ScheduleAfter on a virtual clock = %v, want accepted", err)
	}
	// The next pump fires the one-shot trigger and terminates.
	if _, err := rt.Submit(plugRoutine("pump", device.On, 0)); err != nil {
		t.Fatal(err)
	}
	if c := rt.Counts(); c.Routines != 2 {
		t.Errorf("routines after pump = %d, want 2 (submit + fired trigger)", c.Routines)
	}
}

func TestCloseStopsRecurringTriggerFeedingCascade(t *testing.T) {
	// A recurring trigger whose routine hold overlaps its interval keeps the
	// live env permanently busy; Close must stop the trigger scheduler
	// before quiescing or it would wait forever for an idle that never
	// comes.
	reg := device.Plugs(1)
	home, err := NewLive(Config{Model: visibility.EV}, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatal(err)
	}
	hold := routine.New("hold", routine.Command{
		Device: "plug-0", Target: device.On, Duration: 80 * time.Millisecond,
	})
	if err := home.Bank().Store(hold); err != nil {
		t.Fatal(err)
	}
	if _, err := home.ScheduleEvery("hold", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let it fire at least once

	closed := make(chan struct{})
	go func() {
		home.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: recurring trigger kept the cascade alive")
	}
	if _, err := home.ScheduleAfter("hold", time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("ScheduleAfter after Close = %v, want ErrClosed", err)
	}
}

func TestSuspendAfterCloseFails(t *testing.T) {
	rt := newVirtual(t, Config{}, 1)
	rt.Close()
	if _, err := rt.Suspend(); !errors.Is(err, ErrClosed) {
		t.Errorf("Suspend after Close = %v, want ErrClosed", err)
	}
}

package runtime

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// journaledConfig is a virtual-clock EV runtime persisting into dir.
func journaledConfig(dir string) Config {
	return Config{
		ID:       "durable",
		Model:    visibility.EV,
		EventLog: 64,
		DataDir:  dir,
	}
}

func benchRoutine(name string, seed int64) *routine.Routine {
	r := routine.New(name)
	for c := 0; c < 3; c++ {
		r.Commands = append(r.Commands, routine.Command{
			Device:   device.ID(fmt.Sprintf("plug-%d", int(seed+int64(c*3))%8)),
			Target:   device.On,
			Duration: time.Duration(1+c) * time.Minute,
		})
	}
	return r
}

// TestKillRecoverLosesNoAcknowledgedOp is the headline durability drill: a
// SIGKILL-equivalent stop mid-workload, then a reopen from the same data
// dir. Every result the caller saw committed must be present after recovery
// with identical outcome, the committed device states must match, and new
// submissions must continue the routine-ID sequence.
func TestKillRecoverLosesNoAcknowledgedOp(t *testing.T) {
	dir := t.TempDir()
	rt, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := rt.Submit(benchRoutine(fmt.Sprintf("r-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Everything the callers saw: under the virtual clock each Submit
	// returned only after its routine finished and the batch group-committed.
	acked := rt.Results()
	states := rt.CommittedStates()
	ground := rt.DeviceStates()
	rt.Crash()

	rec, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	got := rec.Results()
	if len(got) != len(acked) {
		t.Fatalf("recovered %d results, acked %d", len(got), len(acked))
	}
	for i, want := range acked {
		have := got[i]
		if have.ID != want.ID || have.Status != want.Status ||
			have.Executed != want.Executed || have.RolledBack != want.RolledBack ||
			have.AbortReason != want.AbortReason || !have.Finished.Equal(want.Finished) {
			t.Fatalf("result %d diverged:\n  acked     %+v\n  recovered %+v", want.ID, want, have)
		}
		if have.Routine == nil || have.Routine.Name != want.Routine.Name {
			t.Fatalf("result %d lost its routine: %+v", want.ID, have.Routine)
		}
	}
	recStates := rec.CommittedStates()
	for d, s := range states {
		if recStates[d] != s {
			t.Fatalf("committed state of %s = %q, want %q", d, recStates[d], s)
		}
	}
	recGround := rec.DeviceStates()
	for d, s := range ground {
		if recGround[d] != s {
			t.Fatalf("ground truth of %s = %q, want %q", d, recGround[d], s)
		}
	}

	// New work continues the ID sequence after the recovered history.
	rid, err := rec.Submit(benchRoutine("post", 99))
	if err != nil {
		t.Fatal(err)
	}
	if rid != routine.ID(n+1) {
		t.Fatalf("post-recovery routine ID = %d, want %d", rid, n+1)
	}
}

// TestKillRecoverAbortsInFlight crashes a paced-clock home with routines
// still open: recovery must surface them as Aborted (with the restart
// reason) and roll the home back to its pre-routine committed states.
func TestKillRecoverAbortsInFlight(t *testing.T) {
	dir := t.TempDir()
	cfg := journaledConfig(dir)
	cfg.Clock = ClockPaced
	rt, err := NewSim(cfg, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	// First, a routine pumped to completion (an acknowledged commit).
	if _, err := rt.Submit(benchRoutine("done", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.PendingCount() > 0 {
		rt.PumpIfDue(time.Now().Add(time.Hour))
		if time.Now().After(deadline) {
			t.Fatal("routine never finished under pumping")
		}
		time.Sleep(time.Millisecond)
	}
	committedBefore := rt.CommittedStates()
	// Then two routines left in flight: accepted and journaled, never run.
	if _, err := rt.Submit(benchRoutine("open-1", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(benchRoutine("open-2", 3)); err != nil {
		t.Fatal(err)
	}
	rt.Crash()

	rec, err := NewSim(cfg, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	results := rec.Results()
	if len(results) != 3 {
		t.Fatalf("recovered %d results, want 3", len(results))
	}
	if results[0].Status != visibility.StatusCommitted {
		t.Fatalf("finished routine recovered as %s", results[0].Status)
	}
	for _, res := range results[1:] {
		if res.Status != visibility.StatusAborted {
			t.Fatalf("in-flight routine %d recovered as %s, want aborted", res.ID, res.Status)
		}
		if res.AbortReason == "" {
			t.Fatalf("in-flight routine %d has no abort reason", res.ID)
		}
	}
	if rec.PendingCount() != 0 {
		t.Fatalf("pending after recovery = %d", rec.PendingCount())
	}
	// Rollback semantics: the aborted routines' writes never reached the
	// committed view, so it matches the pre-routine state exactly.
	recStates := rec.CommittedStates()
	for d, s := range committedBefore {
		if recStates[d] != s {
			t.Fatalf("committed state of %s = %q, want pre-routine %q", d, recStates[d], s)
		}
	}
	for d, s := range recStates {
		if committedBefore[d] != s {
			t.Fatalf("committed state of %s = %q appeared after recovery", d, s)
		}
	}
}

// TestEventCursorsSurviveRestart checks GET /api/events?since=N semantics
// across a crash: sequence numbers stay strictly monotonic, and a poller's
// cursor from before the crash fetches exactly the post-crash tail.
func TestEventCursorsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	rt, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(benchRoutine("a", 1)); err != nil {
		t.Fatal(err)
	}
	before, cursor := rt.EventsSince(0)
	if len(before) == 0 || cursor == 0 {
		t.Fatalf("no events before crash (cursor %d)", cursor)
	}
	rt.Crash()

	rec, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	// The recovered log replays the same window: the old cursor is valid.
	replayed, cursor2 := rec.EventsSince(0)
	if cursor2 < cursor {
		t.Fatalf("cursor went backwards across restart: %d -> %d", cursor, cursor2)
	}
	if len(replayed) < len(before) {
		t.Fatalf("event window shrank: %d -> %d", len(before), len(replayed))
	}
	if _, err := rec.Submit(benchRoutine("b", 2)); err != nil {
		t.Fatal(err)
	}
	tail, cursor3 := rec.EventsSince(cursor)
	if cursor3 <= cursor2 {
		t.Fatalf("cursor not strictly monotonic: %d then %d", cursor2, cursor3)
	}
	if len(tail) == 0 {
		t.Fatal("pre-crash cursor returned no post-crash tail")
	}
	// The tail must contain only post-cursor events: replaying EventsSince
	// from 0 and slicing at the cursor gives the same records.
	all, _ := rec.EventsSince(0)
	wantTail := all[len(all)-len(tail):]
	for i := range tail {
		if tail[i] != wantTail[i] {
			t.Fatalf("tail[%d] = %+v, want %+v", i, tail[i], wantTail[i])
		}
	}
}

// TestCleanCloseThenReopen: a graceful Close writes a final checkpoint, so
// reopening replays nothing and aborts nothing.
func TestCleanCloseThenReopen(t *testing.T) {
	dir := t.TempDir()
	rt, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rt.Submit(benchRoutine(fmt.Sprintf("r-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := rt.Results()
	rt.Close()

	rec, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got := rec.Results()
	if len(got) != len(want) {
		t.Fatalf("recovered %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Status != want[i].Status || got[i].ID != want[i].ID {
			t.Fatalf("result %d: %s, want %s", want[i].ID, got[i].Status, want[i].Status)
		}
		if got[i].Status == visibility.StatusAborted {
			t.Fatalf("clean close produced an aborted recovery: %+v", got[i])
		}
	}
}

// TestRecoveryAfterCheckpointTruncation drives enough journal through a tiny
// checkpoint threshold that multiple checkpoints (and segment truncations)
// happen mid-workload, then crashes and verifies the recovery is still
// exact.
func TestRecoveryAfterCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	cfg := journaledConfig(dir)
	cfg.Journal = journal.Options{SegmentBytes: 2048, CheckpointBytes: 4096}
	rt, err := NewSim(cfg, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := rt.Submit(benchRoutine(fmt.Sprintf("r-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.JournalError(); err != nil {
		t.Fatalf("journal failed mid-workload: %v", err)
	}
	acked := rt.Results()
	rt.Crash()

	// The workload must have outgrown one segment several times over; the
	// checkpoints should have kept the directory bounded.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 8 {
		t.Fatalf("checkpointing never truncated: %d files in %s", len(entries), dir)
	}

	rec, err := NewSim(cfg, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got := rec.Results()
	if len(got) != n {
		t.Fatalf("recovered %d results, want %d", len(got), n)
	}
	for i := range acked {
		if got[i].Status != acked[i].Status || got[i].ID != acked[i].ID {
			t.Fatalf("result %d: %s, want %s", acked[i].ID, got[i].Status, acked[i].Status)
		}
	}
}

// TestCrashDuringConcurrentSubmits crashes while parallel clients are
// submitting: afterwards, every submission that was acknowledged without
// error must be present in the recovery (the group commit ran before the
// reply), and every ErrClosed reply must stay consistent with a dense
// recovered history.
func TestCrashDuringConcurrentSubmits(t *testing.T) {
	dir := t.TempDir()
	rt, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		acked []routine.ID
		wg    sync.WaitGroup
	)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rid, err := rt.Submit(benchRoutine(fmt.Sprintf("w%d-%d", w, i), int64(i)))
				if err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					if errors.Is(err, ErrOverloaded) {
						continue
					}
					t.Error(err)
					return
				}
				mu.Lock()
				acked = append(acked, rid)
				mu.Unlock()
			}
		}(w)
	}
	time.Sleep(30 * time.Millisecond)
	rt.Crash()
	close(stop)
	wg.Wait()

	rec, err := NewSim(journaledConfig(dir), device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	results := rec.Results()
	for _, rid := range acked {
		if int64(rid) > int64(len(results)) {
			t.Fatalf("acknowledged routine %d missing from %d recovered results", rid, len(results))
		}
		if res := results[rid-1]; !res.Status.Finished() {
			t.Fatalf("acknowledged routine %d recovered unfinished: %s", rid, res.Status)
		}
	}
}

// TestNoDataDirWritesNothing: without DataDir the runtime must not create
// files or change behavior (Durable reports false).
func TestNoDataDirWritesNothing(t *testing.T) {
	rt, err := NewSim(Config{ID: "mem", Model: visibility.EV, EventLog: 16}, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Durable() {
		t.Fatal("memory-only runtime claims durability")
	}
	if _, err := rt.Submit(benchRoutine("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.JournalError(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveRuntimeRecovery covers the wall-clock (hub) shape: a live home
// journals through the same path, and recovery restores results and
// committed states over the actuator-backed controller.
func TestLiveRuntimeRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := device.Plugs(4)
	fleet := device.NewFleet(reg)
	cfg := Config{ID: "live", Model: visibility.EV, EventLog: 64, DataDir: dir, FailureInterval: time.Hour}
	rt, err := NewLive(cfg, reg, fleet)
	if err != nil {
		t.Fatal(err)
	}
	r := routine.New("lights",
		routine.Command{Device: "plug-0", Target: device.On},
		routine.Command{Device: "plug-1", Target: device.On},
	)
	if _, err := rt.Submit(r); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.PendingCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("live routine never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := rt.Results()
	rt.Crash()

	rec, err := NewLive(cfg, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	got := rec.Results()
	if len(got) != len(want) || got[0].Status != visibility.StatusCommitted {
		t.Fatalf("live recovery: got %+v, want %+v", got, want)
	}
	states := rec.CommittedStates()
	if states["plug-0"] != device.On || states["plug-1"] != device.On {
		t.Fatalf("live committed states not recovered: %v", states)
	}
}

// TestTornRuntimeTailDropsOnlyUnacked truncates the newest journal segment
// behind the runtime's back (a torn write at the crash instant) and checks
// recovery still yields a dense, internally consistent prefix.
func TestTornRuntimeTailDropsOnlyUnacked(t *testing.T) {
	dir := t.TempDir()
	cfg := journaledConfig(dir)
	// No checkpoints: keep every batch in the tail so the tear hits a batch.
	cfg.Journal = journal.Options{CheckpointBytes: 1 << 40}
	rt, err := NewSim(cfg, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := rt.Submit(benchRoutine(fmt.Sprintf("r-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rt.Crash()

	// Tear bytes off the newest segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var newest string
	for _, e := range entries {
		if name := e.Name(); len(name) > 4 && name[len(name)-4:] == ".seg" && name > newest {
			newest = name
		}
	}
	if newest == "" {
		t.Fatal("no segments written")
	}
	path := dir + "/" + newest
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) < 8 {
		t.Skip("tail segment too small to tear")
	}
	if err := os.WriteFile(path, buf[:len(buf)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := NewSim(cfg, device.Plugs(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	results := rec.Results()
	if len(results) == 0 || len(results) >= n {
		t.Fatalf("torn tail recovered %d results, want a proper prefix of %d", len(results), n)
	}
	for i, res := range results {
		if int64(res.ID) != int64(i+1) {
			t.Fatalf("recovered history not dense at %d: %+v", i, res)
		}
	}
}

package runtime

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// TestFreezeWakeRoundTrip: everything acknowledged before a freeze — results,
// committed states, bank definitions — comes back exactly on wake, and the
// frozen record carries the status fields the manager reports without waking.
func TestFreezeWakeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ID: "igloo", Model: visibility.EV, DataDir: dir, EventLog: 64}
	rt, err := NewSim(cfg, device.Plugs(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r := routine.New(fmt.Sprintf("r-%d", i),
			routine.Command{Device: "plug-0", Target: device.On, Duration: time.Second},
			routine.Command{Device: "plug-1", Target: device.Off, Duration: time.Second},
		)
		if _, err := rt.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.StoreRoutine(routine.New("stored", routine.Command{Device: "plug-2", Target: device.On})); err != nil {
		t.Fatal(err)
	}
	before := rt.Results()
	states := rt.CommittedStates()

	fr, err := rt.Freeze()
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if fr.ID != "igloo" || fr.Routines != 5 || fr.Devices != 3 || fr.DataDir != dir {
		t.Fatalf("frozen record = %+v", fr)
	}
	if !fr.NextFire.IsZero() {
		t.Fatalf("no triggers were armed but NextFire = %v", fr.NextFire)
	}
	if err := WriteFrozenRecord(fr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrozenRecord(dir)
	if err != nil || got == nil {
		t.Fatalf("ReadFrozenRecord: %+v, %v", got, err)
	}
	if got.ID != fr.ID || got.Routines != fr.Routines || !got.FrozenAt.Equal(fr.FrozenAt) {
		t.Fatalf("frozen record round-trip: wrote %+v, read %+v", fr, got)
	}

	// Wake: remove the marker first (crash mid-wake must look like a live
	// crash, not a frozen home), then recover from checkpoint + tail.
	if err := RemoveFrozenRecord(dir); err != nil {
		t.Fatal(err)
	}
	rt2, err := NewSim(cfg, device.Plugs(3))
	if err != nil {
		t.Fatalf("wake: %v", err)
	}
	defer rt2.Close()
	after := rt2.Results()
	if len(after) != len(before) {
		t.Fatalf("woke with %d results, froze with %d", len(after), len(before))
	}
	for i := range before {
		if before[i].ID != after[i].ID || before[i].Status != after[i].Status ||
			!before[i].Finished.Equal(after[i].Finished) {
			t.Fatalf("result %d changed across freeze/wake:\n  froze %+v\n  woke  %+v", i, before[i], after[i])
		}
	}
	if got := rt2.CommittedStates(); !reflect.DeepEqual(got, states) {
		t.Fatalf("committed states changed across freeze/wake: froze %v, woke %v", states, got)
	}
	if _, ok := rt2.Bank().Get("stored"); !ok {
		t.Fatal("bank definition lost across freeze/wake")
	}
	if again, err := ReadFrozenRecord(dir); err != nil || again != nil {
		t.Fatalf("marker survived the wake: %+v, %v", again, err)
	}
}

// TestFreezeCarriesTriggerDeadline: a scheduled trigger that retires into
// the final checkpoint surfaces its deadline in the frozen record, so the
// manager's deadline heap can wake the home on time; the wake re-arms it.
func TestFreezeCarriesTriggerDeadline(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ID: "alarm", Model: visibility.EV, DataDir: dir}
	rt, err := NewSim(cfg, device.Plugs(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreRoutine(routine.New("wakeup", routine.Command{Device: "plug-0", Target: device.On})); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ScheduleAfter("wakeup", time.Hour); err != nil {
		t.Fatal(err)
	}
	deadline := rt.Counts().Now.Add(time.Hour)

	fr, err := rt.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if fr.NextFire.IsZero() {
		t.Fatal("frozen record lost the trigger deadline")
	}
	if fr.NextFire.Sub(deadline) > time.Second || deadline.Sub(fr.NextFire) > time.Second {
		t.Fatalf("NextFire = %v, want ~%v", fr.NextFire, deadline)
	}

	rt2, err := NewSim(cfg, device.Plugs(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if trigs := rt2.Triggers(); len(trigs) != 1 {
		t.Fatalf("woke with %d triggers, want 1 re-armed", len(trigs))
	}
}

// TestFreezeCompactsLineage is the hibernation satellite's regression test:
// the freeze path folds released lock-access history (lineage.CompactBefore
// via opCompactNow, then commit compaction during the drain) before the
// final checkpoint even when horizon compaction is disabled, so a
// freeze/wake cycle bounds lineage size instead of freezing stale history
// into the record. The gate pattern (touch plug-0 briefly, hold plug-1 for
// minutes) grows plug-0's lineage with released accesses of still-live
// routines — exactly the history CompactBefore exists for.
func TestFreezeCompactsLineage(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		ID:             "tidy",
		Model:          visibility.EV,
		Clock:          ClockPaced,
		DataDir:        dir,
		HistoryHorizon: -1, // horizon compaction off: only the freeze path may fold
		MailboxDepth:   256,
	}
	rt, err := NewSim(cfg, device.Plugs(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	for i := 0; i < n; i++ {
		r := routine.New(fmt.Sprintf("gate-%d", i),
			routine.Command{Device: "plug-0", Target: device.On, Duration: 100 * time.Millisecond},
			routine.Command{Device: "plug-1", Target: device.On, Duration: 5 * time.Minute},
		)
		if _, err := rt.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	// Advance the home 20 minutes: most routines clear plug-0 (access
	// Released) and queue on the plug-1 gate, still alive.
	base := rt.Counts().Now
	for step := 1; step <= 20; step++ {
		rt.PumpIfDue(base.Add(time.Duration(step) * time.Minute))
		resume, err := rt.Suspend()
		if err != nil {
			t.Fatal(err)
		}
		resume()
	}
	grown := dataLineageLen(t, rt)
	if grown < n/2 {
		t.Fatalf("with compaction disabled plug-0 holds %d accesses; the gate scenario should accumulate ~%d", grown, n-4)
	}
	if _, err := rt.Freeze(); err != nil {
		t.Fatal(err)
	}
	// The loop has exited; the quiesced controller is inline-readable.
	frozen := len(rt.ctrl.(tableExposer).Table().Lineage("plug-0").Accesses)
	if frozen > 2 {
		t.Fatalf("freeze left %d lineage accesses (pre-freeze %d); the freeze path must compact", frozen, grown)
	}

	rt2, err := NewSim(cfg, device.Plugs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if woke := len(rt2.ctrl.(tableExposer).Table().Lineage("plug-0").Accesses); woke > 2 {
		t.Fatalf("wake resurrected %d lineage accesses", woke)
	}
	if got := len(rt2.Results()); got != n {
		t.Fatalf("woke with %d results, want %d", got, n)
	}
}

// TestFreezeRequiresDurability: a memory-only home has nothing to wake from,
// so Freeze must refuse rather than silently discard state.
func TestFreezeRequiresDurability(t *testing.T) {
	rt, err := NewSim(Config{ID: "ram", Model: visibility.EV}, device.Plugs(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Freeze(); err == nil {
		t.Fatal("froze a memory-only home")
	}
}

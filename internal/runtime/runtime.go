// Package runtime implements the home runtime every SafeHome deployment
// shape shares: one event-loop goroutine that exclusively owns a single
// home's concurrency controller, execution environment, clock, device fleet,
// routine bank, activity log and failure-detector wiring.
//
// All access is funneled through a typed operation mailbox — tagged op
// structs in a bounded ring, not func() closures — so the visibility
// controllers' single-threaded contract holds with no locks anywhere above
// them: internal/hub fronts one wall-clock runtime, internal/manager shards
// front many simulated-clock runtimes, and internal/live posts actuator
// completions and timer callbacks into the same mailbox instead of
// re-entering a hub mutex.
//
// The loop drains up to Config.Batch operations per wakeup to amortize
// channel signaling, and the mailbox applies admission control: when the
// ring is full, mutating operations fail fast with ErrOverloaded (the HTTP
// layers answer 429) instead of blocking callers indefinitely, with
// accepted/rejected counters exposed through MailboxStats.
//
// See ARCHITECTURE.md at the repository root for how the runtime layers
// between the hub/manager front-ends and the visibility controllers.
package runtime

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/device"
	"safehome/internal/failure"
	"safehome/internal/journal"
	"safehome/internal/live"
	"safehome/internal/routine"
	"safehome/internal/sim"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// Clock selects how a home runtime experiences time.
type Clock int

const (
	// ClockVirtual drains the home's discrete-event simulator after every
	// mutating operation: routines run to completion at virtual speed.
	ClockVirtual Clock = iota
	// ClockPaced runs the simulator against the wall clock: time advances
	// only when an owner (the manager's shard pumper) posts Pump operations.
	ClockPaced
	// ClockWall is real time over a device actuator (the live hub).
	ClockWall
)

// Config configures a HomeRuntime.
type Config struct {
	// ID names the home (diagnostics only).
	ID string
	// Clock selects virtual, paced or wall-clock time. NewLive forces
	// ClockWall.
	Clock Clock
	// Model is the visibility model; Scheduler the EV scheduling policy.
	Model     visibility.Model
	Scheduler visibility.SchedulerKind
	// DefaultShort is the assumed hold of zero-duration commands.
	DefaultShort time.Duration
	// ActuationLatency adds a fixed per-command latency (simulated clocks).
	ActuationLatency time.Duration
	// FailureInterval is the failure detector's probe period (wall clock).
	FailureInterval time.Duration
	// EventLog caps the in-memory activity log; 0 disables the log (the
	// multi-tenant manager disables it by default, the hub keeps ~1k events).
	EventLog int
	// MailboxDepth bounds the operation ring (default 128).
	MailboxDepth int
	// Batch is the maximum operations drained per loop wakeup (default 32).
	Batch int
	// ReadConsistency selects how queries are answered: ReadSnapshot (the
	// default) reads the latest published snapshot without touching the
	// mailbox; ReadLinearizable posts every query through the mailbox.
	ReadConsistency ReadConsistency
	// HistoryHorizon bounds how long an EV home retains released lock-access
	// history: once per horizon the loop folds fully released accesses older
	// than it into the committed states (lineage.Table.CompactBefore), so
	// long-lived homes don't grow their per-device gap scans with history.
	// 0 means DefaultHistoryHorizon; negative disables compaction.
	HistoryHorizon time.Duration
	// DataDir enables durability: accepted mutating operations, routine
	// outcomes, committed device states and sequenced activity events are
	// group-committed to a write-ahead journal in this directory (one fsync
	// per batch drain, not per operation), checkpointed periodically, and
	// recovered on the next construction with the same DataDir — finished
	// results, committed states and event cursors come back exactly, while
	// routines in flight at the crash are aborted with rollback. Empty (the
	// default) keeps the runtime memory-only with an unchanged hot path.
	DataDir string
	// Journal tunes the write-ahead journal (segment rotation, checkpoint
	// cadence, fsync). Only meaningful with DataDir set.
	Journal journal.Options
	// Observer additionally receives every controller event (e.g. the
	// manager's cross-shard counters). It runs on the loop goroutine.
	Observer visibility.Observer
	// OnSimEvents, if set, receives the number of newly processed simulator
	// events after every pump (the manager's sim_events counter).
	OnSimEvents func(n int)
	// Actuation tunes the live environment's device path (per-attempt
	// timeout, retry backoff, circuit breaker). Wall-clock runtimes only.
	Actuation live.Options
	// OnPoison, if set, is called once from the dying loop goroutine after a
	// panic has torn the home down (mailbox closed, journal abandoned). An
	// owner uses it to trigger a supervised restart; it must not block on the
	// poisoned runtime other than Close, which merely joins the dead loop.
	OnPoison func(err error)
	// Metrics, if set, receives in-loop telemetry (stage-latency histograms,
	// snapshot publish counts) recorded with single atomic operations on the
	// loop goroutine. One LoopMetrics is shared by every home of a manager;
	// nil disables recording with one nil check on the hot path.
	Metrics *LoopMetrics
}

const (
	// DefaultMailboxDepth is the default operation-ring capacity.
	DefaultMailboxDepth = 128
	// DefaultBatch is the default maximum ops drained per loop wakeup.
	DefaultBatch = 32
	// DefaultHistoryHorizon is the default lock-access history retention on
	// the home's clock (see Config.HistoryHorizon). An hour is far beyond any
	// live routine's span, so folding history that old never changes what a
	// rollback would restore in practice.
	DefaultHistoryHorizon = time.Hour
)

func (c Config) normalized() Config {
	if c.MailboxDepth < 1 {
		c.MailboxDepth = DefaultMailboxDepth
	}
	if c.Batch < 1 {
		c.Batch = DefaultBatch
	}
	if c.FailureInterval <= 0 {
		c.FailureInterval = failure.DefaultInterval
	}
	if c.HistoryHorizon == 0 {
		c.HistoryHorizon = DefaultHistoryHorizon
	}
	return c
}

func (c Config) options() visibility.Options {
	opts := visibility.DefaultOptions(c.Model)
	opts.Scheduler = c.Scheduler
	if c.DefaultShort > 0 {
		opts.DefaultShort = c.DefaultShort
	}
	return opts
}

// HomeRuntime owns one home end to end: controller, env, clock, fleet, bank,
// activity log, triggers and failure-detector wiring. All fields below the
// mailbox are owned by the loop goroutine while the runtime is open; once
// Close has drained the loop they may be read inline.
type HomeRuntime struct {
	cfg Config
	reg *device.Registry

	// Exactly one environment is wired per runtime:
	simc  *sim.Sim      // ClockVirtual / ClockPaced
	fleet *device.Fleet // simulated clocks only
	lenv  *live.Env     // ClockWall only

	env       visibility.Env
	ctrl      visibility.Controller
	compacter historyCompacter // ctrl, when it supports history compaction (EV)
	bank      *routine.Bank
	detector  *failure.Detector // ClockWall only

	ch   chan op
	done chan struct{}

	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once

	cancelDetect context.CancelFunc
	started      time.Time

	accepted stats.Counter
	rejected stats.Counter

	// nextDue publishes the earliest pending simulator event (unix nanos,
	// 0 = none) so a paced-clock pumper can skip idle homes without touching
	// loop-owned state. pumpQueued bounds in-flight pumps to one.
	nextDue    atomic.Int64
	pumpQueued atomic.Bool

	// lastActive is the wall time (unix nanos) of the last admitted mutating
	// operation — the idle clock the manager's hibernation freezer watches.
	// Queries do not bump it: a home polled for status but never commanded
	// is still idle.
	lastActive atomic.Int64

	// snap is the off-loop read path: the loop publishes an immutable
	// Snapshot here once per batch drain (see snapshot.go), and queries under
	// ReadSnapshot consistency answer from it without entering the mailbox.
	snap atomic.Pointer[Snapshot]

	// crashed turns Close's graceful drain into a SIGKILL-equivalent stop
	// (see Crash); jErr records the error that disabled journaling, if any.
	crashed atomic.Bool
	jErr    atomic.Value

	// poisoned is set when a panic killed the loop; panicErr records the
	// recovered panic value and poisonRec the full forensics record —
	// message plus goroutine stack — also persisted to DataDir/poison.json
	// (see poison.go). panicStack is loop-owned scratch between the runBatch
	// recover and poison.
	poisoned   atomic.Bool
	panicErr   atomic.Value
	poisonRec  atomic.Pointer[PoisonRecord]
	panicStack string

	// Loop-owned state:
	j               *journalState       // write-ahead journal (nil without DataDir)
	observe         visibility.Observer // the full observer chain (journal tap, event log, user)
	elog            *eventLog
	snapDirty       bool      // an op since the last publish changed observable state
	fleetVersion    uint64    // fleet.Version() at the last ground-truth capture
	lastCompact     time.Time // home-clock time of the last history compaction
	simDrained      int       // sim.Processed at the last OnSimEvents flush
	nextTrigger     TriggerHandle
	triggers        map[TriggerHandle]*trigger
	triggersStopped bool // Close ran opStopTriggers; refuse new schedules
	// retiredTriggers keeps the specs stopAllTriggers cleared so the final
	// checkpoint of a clean Close still carries them: a trigger armed before
	// a graceful restart must re-arm afterwards, exactly as after a crash.
	retiredTriggers []ScheduledTrigger
}

// NewSim builds a runtime over an in-memory simulated fleet: ClockVirtual
// (experiments, benchmarks, the manager's default) or ClockPaced (the
// manager's serving mode). The loop goroutine starts immediately.
func NewSim(cfg Config, reg *device.Registry) (*HomeRuntime, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, fmt.Errorf("runtime: home %q needs at least one device", cfg.ID)
	}
	cfg = cfg.normalized()
	if cfg.Clock == ClockWall {
		return nil, fmt.Errorf("runtime: NewSim cannot run on the wall clock; use NewLive")
	}
	rt := newRuntime(cfg, reg)
	rec, err := rt.openJournal()
	if err != nil {
		return nil, err
	}
	rt.fleet = device.NewFleet(reg)
	if cfg.Clock == ClockPaced {
		rt.simc = sim.New(time.Now())
	} else {
		rt.simc = sim.NewAtEpoch()
	}
	if rec != nil {
		// Rollback-to-committed ground truth: after a crash the fleet comes
		// back in the last committed states — in-flight routines' partial
		// effects are undone, per the paper's abort semantics.
		for d, s := range rec.States {
			_ = rt.fleet.ForceState(d, s) // devices gone from the registry are skipped
		}
	}
	env := visibility.NewSimEnv(rt.simc, rt.fleet)
	env.ActuationLatency = cfg.ActuationLatency
	rt.env = env
	rt.ctrl = visibility.New(env, rt.fleet.Snapshot(), rt.controllerOptions())
	rt.compacter, _ = rt.ctrl.(historyCompacter)
	if rec != nil {
		rt.recoverFrom(rec)
	}
	rt.publish(true) // initial snapshot: readers never see a nil pointer
	if rec != nil {
		rt.finishRecovery()
	}
	// Publish the first simulator deadline before the loop exists: a
	// recovered home whose re-armed triggers are its only pending work would
	// otherwise sit at nextDue 0 — invisible to the shard pumper — until
	// some unrelated op ran a batch, and its triggers would never fire.
	rt.publishNextDue()
	go rt.loop()
	return rt, nil
}

// NewLive builds a wall-clock runtime over a device actuator, with the live
// environment posting completions and timer callbacks into the mailbox and a
// failure detector wired to the controller. The loop goroutine starts
// immediately; Start launches the detector's probe loop.
func NewLive(cfg Config, reg *device.Registry, actuator device.Actuator) (*HomeRuntime, error) {
	if reg == nil || reg.Len() == 0 {
		return nil, fmt.Errorf("runtime: home %q needs at least one device", cfg.ID)
	}
	if actuator == nil {
		return nil, fmt.Errorf("runtime: nil actuator")
	}
	cfg = cfg.normalized()
	cfg.Clock = ClockWall
	rt := newRuntime(cfg, reg)
	rec, err := rt.openJournal()
	if err != nil {
		return nil, err
	}
	rt.lenv = live.NewWithOptions(rt, actuator, cfg.Actuation)
	rt.env = rt.lenv

	// Seed the controller's committed-state view from the devices' initial
	// metadata; unknown initial states are left for the first routines to
	// set. Recovered committed states override the factory defaults.
	initial := make(map[device.ID]device.State)
	for _, info := range reg.All() {
		if info.Initial != device.StateUnknown {
			initial[info.ID] = info.Initial
		}
	}
	if rec != nil {
		for d, s := range rec.States {
			if _, ok := reg.Get(d); ok {
				initial[d] = s
			}
		}
	}
	rt.ctrl = visibility.New(rt.env, initial, rt.controllerOptions())
	rt.compacter, _ = rt.ctrl.(historyCompacter)
	if rec != nil {
		rt.recoverFrom(rec)
	}

	rt.detector = failure.NewDetector(actuator, reg.IDs(), failure.Options{
		Interval:  cfg.FailureInterval,
		OnFailure: func(id device.ID) { _ = rt.post(op{kind: opNotifyFailure, dev: id}) },
		OnRestart: func(id device.ID) { _ = rt.post(op{kind: opNotifyRestart, dev: id}) },
	})
	rt.lenv.OnContact = func(id device.ID, ok bool) {
		if ok {
			rt.detector.ReportContact(id)
		} else {
			rt.detector.ReportSilence(id)
		}
	}
	rt.publish(true) // initial snapshot: readers never see a nil pointer
	if rec != nil {
		rt.finishRecovery()
	}
	go rt.loop()
	return rt, nil
}

func newRuntime(cfg Config, reg *device.Registry) *HomeRuntime {
	rt := &HomeRuntime{
		cfg:      cfg,
		reg:      reg,
		bank:     routine.NewBank(),
		ch:       make(chan op, cfg.MailboxDepth),
		done:     make(chan struct{}),
		started:  time.Now(),
		triggers: make(map[TriggerHandle]*trigger),
		elog:     newEventLog(cfg.EventLog),
	}
	rt.lastActive.Store(rt.started.UnixNano())
	return rt
}

// controllerOptions chains the journal tap and the runtime's activity log in
// front of the configured observer, and wires the journal's committed-state
// sink. The whole chain runs on the loop goroutine only.
func (rt *HomeRuntime) controllerOptions() visibility.Options {
	opts := rt.cfg.options()
	user := rt.cfg.Observer
	journaled := rt.j != nil
	metered := rt.cfg.Metrics != nil
	if journaled || metered || rt.cfg.EventLog > 0 {
		opts.Observer = func(e visibility.Event) {
			if rt.j != nil {
				rt.collectJournal(e)
			}
			if rt.cfg.EventLog > 0 {
				rt.recordEvent(e)
			}
			if metered {
				rt.recordStage(e)
			}
			if user != nil {
				user(e)
			}
		}
	} else {
		opts.Observer = user
	}
	rt.observe = opts.Observer
	if journaled {
		opts.StateSink = func(d device.ID, s device.State) {
			if rt.j != nil {
				rt.noteStateChange(d, s)
			}
		}
	}
	return opts
}

func (rt *HomeRuntime) recordEvent(e visibility.Event) { rt.elog.append(e) }

// --- lifecycle ------------------------------------------------------------------

// Start launches background activity (the wall-clock failure detector's
// probe loop). Simulated-clock runtimes have no background activity.
func (rt *HomeRuntime) Start() {
	if rt.detector == nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt.cancelDetect = cancel
	go rt.detector.Run(ctx)
}

// Close stops background activity, waits for in-flight routines' command
// cascades to finish, drains the mailbox and the simulator to quiescence,
// and joins the loop goroutine. Close is idempotent; read-only queries keep
// working on the quiesced state afterwards, while mutations return
// ErrClosed.
func (rt *HomeRuntime) Close() {
	rt.closeOnce.Do(func() {
		if rt.cancelDetect != nil {
			rt.cancelDetect()
		}
		// Stop the trigger scheduler before quiescing: a recurring trigger
		// whose routine hold overlaps its interval would otherwise keep
		// feeding new commands into the cascade and Wait would never settle.
		rp := newReply()
		if err := rt.post(op{kind: opStopTriggers, reply: rp}); err != nil {
			rp.discard()
		} else {
			rp.await()
		}
		if rt.lenv != nil {
			// Quiesce the command cascade: Wait returns once every in-flight
			// command goroutine has posted its completion, the barrier makes
			// the loop apply those completions — which may chain a routine's
			// next command or an abort rollback, i.e. new Exec goroutines —
			// and Idle detects that case, so we go around again until a full
			// round spawns nothing.
			for {
				rt.lenv.Wait()
				rp := newReply()
				if err := rt.post(op{kind: opBarrier, reply: rp}); err != nil {
					rp.discard()
					break
				}
				rp.await()
				if rt.lenv.Idle() {
					break
				}
			}
		}
		rt.closeMu.Lock()
		rt.closed = true
		close(rt.ch)
		rt.closeMu.Unlock()
	})
	<-rt.done
}

// Crash is the SIGKILL-equivalent stop used by crash drills and recovery
// tests: no graceful drain, no trigger teardown, no final journal flush or
// checkpoint. Queued-but-unapplied operations are answered with ErrClosed
// (their callers were never acknowledged), the loop exits immediately, and
// only what the journal group-committed before the crash survives — which
// is exactly what a recovery from the same DataDir restores. The runtime is
// unusable afterwards; Close becomes a no-op.
func (rt *HomeRuntime) Crash() {
	rt.closeOnce.Do(func() {
		rt.crashed.Store(true)
		if rt.cancelDetect != nil {
			rt.cancelDetect()
		}
		rt.closeMu.Lock()
		rt.closed = true
		close(rt.ch)
		rt.closeMu.Unlock()
	})
	<-rt.done
	// The loop has exited without touching the journal (no flush, no
	// checkpoint); release its file descriptors and directory lock the way
	// process death would, so the data directory can be reopened.
	if rt.j != nil {
		rt.j.jrn.Abandon()
		rt.j = nil
	}
}

// pendingReply is one deferred answer: the loop applies a whole batch,
// publishes the resulting snapshot, and only then delivers replies, so a
// caller whose mutation returned is guaranteed to find its effect in the
// published snapshot (read-your-writes under ReadSnapshot consistency).
type pendingReply struct {
	rp  *reply
	res result
}

// loop is the home's event loop: batch-dequeue up to cfg.Batch operations per
// wakeup, apply them in arrival order, publish one snapshot for the whole
// batch, then deliver the batch's replies and the next simulator deadline for
// the pumper. When the ring closes it drains every queued operation, cancels
// triggers, runs the simulator to quiescence, publishes the final snapshot
// and exits.
func (rt *HomeRuntime) loop() {
	defer close(rt.done)
	batch := make([]op, 0, rt.cfg.Batch)
	replies := make([]pendingReply, 0, rt.cfg.Batch)
	open := true
	for open {
		o, ok := <-rt.ch
		if !ok {
			break
		}
		if rt.crashed.Load() {
			rt.drainCrashed(o)
			return
		}
		batch = append(batch[:0], o)
	fill:
		for len(batch) < rt.cfg.Batch {
			select {
			case next, ok := <-rt.ch:
				if !ok {
					open = false
					break fill
				}
				batch = append(batch, next)
			default:
				break fill
			}
		}
		if err := rt.runBatch(batch, &replies); err != nil {
			rt.poison(err)
			return
		}
	}
	if rt.crashed.Load() {
		return // SIGKILL-equivalent: no drain, no final flush or checkpoint
	}
	rt.shutdown()
}

// runBatch applies one dequeued batch and the post-batch machinery (history
// compaction, group commit, snapshot publish, checkpoint, replies). A panic
// anywhere inside is recovered and returned as an error: the op that panicked
// and everything behind it — including replies already collected but not yet
// delivered — are answered with ErrPoisoned, since none of them were
// acknowledged and none will be journaled.
func (rt *HomeRuntime) runBatch(batch []op, replies *[]pendingReply) (err error) {
	i := 0
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// The stack must be captured here, inside the recovering deferred
		// call, or the panic frames are gone; poison persists it.
		rt.panicStack = string(debug.Stack())
		err = fmt.Errorf("runtime: home %q poisoned by panic: %v", rt.cfg.ID, r)
		for ; i < len(batch); i++ {
			failOp(&batch[i], ErrPoisoned)
			batch[i] = op{}
		}
		for j := range *replies {
			(*replies)[j].rp.send(result{err: ErrPoisoned})
			(*replies)[j] = pendingReply{}
		}
		*replies = (*replies)[:0]
	}()
	for ; i < len(batch); i++ {
		if batch[i].kind == opSuspend {
			// Journal, publish and deliver everything applied so far
			// before parking: a parked loop must not hold earlier
			// callers' replies (or their durability, or their snapshot
			// visibility) hostage.
			rt.journalFlush()
			rt.publish(false)
			*replies = flushReplies(*replies)
		}
		if res, rp := rt.apply(&batch[i]); rp != nil {
			*replies = append(*replies, pendingReply{rp: rp, res: res})
		}
		batch[i] = op{} // release payloads (routines, closures) once applied
	}
	rt.compactHistory()
	// Group commit before the batch's replies: an acknowledged operation
	// is a durable operation. The snapshot publish follows the journal
	// write, so readers never observe state that a crash could lose.
	rt.journalFlush()
	rt.publish(false)
	rt.maybeCheckpoint()
	rt.publishNextDue()
	*replies = flushReplies(*replies)
	return nil
}

// drainCrashed is the SIGKILL-equivalent loop exit: the first queued op (and
// everything behind it) is answered with ErrClosed without being applied, so
// no caller was acknowledged and none hangs. Nothing is drained, journaled
// or checkpointed — recovery sees exactly what the last group commit made
// durable.
func (rt *HomeRuntime) drainCrashed(first op) {
	o := first
	for {
		if o.reply != nil {
			o.reply.send(result{err: ErrClosed})
		}
		if o.kind == opSuspend {
			close(o.gate) // never parks: the caller's resume is a no-op
		}
		var ok bool
		o, ok = <-rt.ch
		if !ok {
			return
		}
	}
}

// flushReplies delivers the batch's deferred answers and returns the
// emptied (reusable) buffer.
func flushReplies(replies []pendingReply) []pendingReply {
	for i := range replies {
		replies[i].rp.send(replies[i].res)
		replies[i] = pendingReply{}
	}
	return replies[:0]
}

// shutdown runs on the loop goroutine after the ring has fully drained.
func (rt *HomeRuntime) shutdown() {
	rt.stopAllTriggers()
	if rt.simc != nil {
		// Finish every home's in-flight work (graceful drain): queued
		// routines run to completion at virtual speed.
		rt.simc.Run()
		rt.flushSimEvents()
	}
	// Group-commit whatever the final drain produced, then cut a final
	// checkpoint: a restart after a clean Close replays nothing.
	rt.journalFlush()
	// The final snapshot: post-Close snapshot reads observe the quiesced
	// state, exactly like the inline fallback of linearizable reads.
	rt.publish(true)
	if rt.j != nil {
		rt.checkpointNow()
		_ = rt.j.jrn.Close()
		rt.j = nil
	}
}

// apply executes one operation on the loop goroutine. It returns the
// operation's answer and reply slot (nil for reply-less internal ops); the
// loop delivers answers only after publishing the batch's snapshot. Ops that
// can change observable state mark the snapshot dirty.
func (rt *HomeRuntime) apply(o *op) (result, *reply) {
	switch o.kind {
	case opSubmit:
		rt.snapDirty = true
		var rid routine.ID
		if m := rt.cfg.Metrics; m != nil {
			// The submit→placed stage: wall-clock cost of admission plus
			// scheduler placement, measured around the Submit call itself.
			t0 := time.Now()
			rid = rt.ctrl.Submit(o.r)
			m.StagePlace.Observe(time.Since(t0).Seconds())
		} else {
			rid = rt.ctrl.Submit(o.r)
		}
		rt.pumpVirtual()
		return result{rid: rid}, o.reply
	case opSubmitAfter:
		rt.snapDirty = true
		r := o.r
		rt.env.After(o.delay, func() { rt.ctrl.Submit(r) })
		rt.pumpVirtual()
		return result{}, o.reply
	case opFailDevice:
		rt.snapDirty = true
		return result{err: rt.injectFailure(o.dev, true)}, o.reply
	case opRestoreDevice:
		rt.snapDirty = true
		return result{err: rt.injectFailure(o.dev, false)}, o.reply
	case opScheduleTrig:
		handle, err := rt.scheduleTrigger(o.name, o.delay, o.every)
		return result{handle: handle, err: err}, o.reply
	case opCancelTrig:
		rt.cancelTrigger(o.handle)
		return result{}, o.reply
	case opStoreRoutine:
		err := rt.bank.Store(o.r)
		if err == nil && rt.j != nil {
			rt.noteBankPut(o.r)
		}
		return result{err: err}, o.reply
	case opResults, opResult, opCounts, opDeviceStates, opCommittedStates, opEvents, opTriggers:
		return rt.evalQuery(o), o.reply
	case opCompletion:
		rt.snapDirty = true
		o.done(o.err)
		return result{}, nil
	case opTimer:
		rt.snapDirty = true
		o.fn()
		return result{}, nil
	case opNotifyFailure:
		rt.snapDirty = true
		rt.ctrl.NotifyFailure(o.dev)
		return result{}, nil
	case opNotifyRestart:
		rt.snapDirty = true
		rt.ctrl.NotifyRestart(o.dev)
		return result{}, nil
	case opPump:
		rt.snapDirty = true
		rt.simc.RunUntil(o.now)
		rt.flushSimEvents()
		rt.pumpQueued.Store(false)
		return result{}, nil
	case opSuspend:
		close(o.gate)
		<-o.release
		return result{}, nil
	case opBarrier:
		return result{}, o.reply
	case opStopTriggers:
		rt.stopAllTriggers()
		return result{}, o.reply
	case opCompactNow:
		// The freeze path's history bound: fold every fully released
		// lock-access entry into the committed states regardless of the
		// HistoryHorizon cadence, so the final checkpoint (and the frozen
		// record behind it) never carries stale lineage.
		if rt.compacter != nil {
			now := rt.env.Now()
			rt.lastCompact = now
			if rt.compacter.CompactBefore(now) > 0 {
				rt.snapDirty = true
			}
		}
		return result{}, o.reply
	default:
		panic(fmt.Sprintf("runtime: unknown op kind %d", o.kind))
	}
}

// injectFailure runs a fail-stop failure (or the matching restart) of a
// simulated device through the fleet and the controller.
func (rt *HomeRuntime) injectFailure(dev device.ID, fail bool) error {
	if rt.fleet == nil {
		return fmt.Errorf("runtime: home %q has no simulated fleet to inject failures into", rt.cfg.ID)
	}
	if fail {
		if err := rt.fleet.Fail(dev); err != nil {
			return err
		}
		rt.ctrl.NotifyFailure(dev)
	} else {
		if err := rt.fleet.Restore(dev); err != nil {
			return err
		}
		rt.ctrl.NotifyRestart(dev)
	}
	rt.pumpVirtual()
	return nil
}

// pumpVirtual drains the simulator after a mutating operation under the
// virtual clock, so the operation's routines run to completion before the
// reply is delivered. Paced and wall clocks advance elsewhere.
func (rt *HomeRuntime) pumpVirtual() {
	if rt.cfg.Clock != ClockVirtual {
		return
	}
	rt.simc.Run()
	rt.flushSimEvents()
}

// flushSimEvents folds newly processed simulator events into the owner's
// counter.
func (rt *HomeRuntime) flushSimEvents() {
	if rt.cfg.OnSimEvents == nil || rt.simc == nil {
		return
	}
	if p := rt.simc.Processed(); p > rt.simDrained {
		rt.cfg.OnSimEvents(p - rt.simDrained)
		rt.simDrained = p
	}
}

// historyCompacter is implemented by controllers (EV) that can fold released
// lock-access history older than a horizon into their committed states.
type historyCompacter interface {
	CompactBefore(t time.Time) int
}

// compactHistory runs on the loop goroutine once per HistoryHorizon of home
// time: it folds lock-access history older than the horizon into the
// committed states, so a long-lived home's per-device gap scans are bounded
// by the live window instead of growing with history.
func (rt *HomeRuntime) compactHistory() {
	if rt.cfg.HistoryHorizon <= 0 || rt.compacter == nil {
		return
	}
	now := rt.env.Now()
	if !rt.lastCompact.IsZero() && now.Sub(rt.lastCompact) < rt.cfg.HistoryHorizon {
		return
	}
	rt.lastCompact = now
	if rt.compacter.CompactBefore(now.Add(-rt.cfg.HistoryHorizon)) > 0 {
		rt.snapDirty = true
	}
}

// publishNextDue exposes the earliest pending simulator deadline to the
// paced-clock pumper.
func (rt *HomeRuntime) publishNextDue() {
	if rt.simc == nil || rt.cfg.Clock != ClockPaced {
		return
	}
	if at, ok := rt.simc.NextEventAt(); ok {
		rt.nextDue.Store(at.UnixNano())
	} else {
		rt.nextDue.Store(0)
	}
}

// PumpIfDue posts a clock pump if the home has simulator work due at or
// before now, bounding in-flight pumps to one. It reports whether a pump was
// enqueued; homes with nothing due are skipped entirely.
func (rt *HomeRuntime) PumpIfDue(now time.Time) bool {
	due := rt.nextDue.Load()
	if due == 0 || due > now.UnixNano() {
		return false
	}
	if !rt.pumpQueued.CompareAndSwap(false, true) {
		return false
	}
	if !rt.postPump(op{kind: opPump, now: now}) {
		rt.pumpQueued.Store(false)
		return false
	}
	return true
}

// --- live.Poster ----------------------------------------------------------------

// PostCompletion implements live.Poster: an actuator command's completion is
// delivered to the controller through the mailbox. Completions arriving
// after Close are dropped (the home is quiescing).
func (rt *HomeRuntime) PostCompletion(done func(error), err error) {
	_ = rt.post(op{kind: opCompletion, done: done, err: err})
}

// PostTimer implements live.Poster: a wall-clock timer callback is delivered
// to the controller through the mailbox.
func (rt *HomeRuntime) PostTimer(fn func()) {
	_ = rt.post(op{kind: opTimer, fn: fn})
}

// --- mutations ------------------------------------------------------------------

// Submit validates the routine against the home's registry and submits it.
// Under ClockVirtual the routine has finished by the time Submit returns.
// Returns ErrOverloaded when the mailbox is full. Validation happens before
// admission — the registry is immutable after construction — so an invalid
// routine gets its validation error (HTTP 400) even under overload, and
// never consumes a mailbox slot.
func (rt *HomeRuntime) Submit(r *routine.Routine) (routine.ID, error) {
	if err := r.Validate(rt.reg); err != nil {
		return routine.None, err
	}
	rp := newReply()
	if err := rt.tryPost(op{kind: opSubmit, r: r, reply: rp}); err != nil {
		rp.discard()
		return routine.None, err
	}
	res := rp.await()
	if res.err != nil {
		return routine.None, res.err
	}
	return res.rid, nil
}

// SubmitAfter schedules a routine submission after the given delay on the
// home's clock. Like Submit, it validates before admission.
func (rt *HomeRuntime) SubmitAfter(d time.Duration, r *routine.Routine) error {
	if err := r.Validate(rt.reg); err != nil {
		return err
	}
	rp := newReply()
	if err := rt.tryPost(op{kind: opSubmitAfter, r: r, delay: d, reply: rp}); err != nil {
		rp.discard()
		return err
	}
	return rp.await().err
}

// FailDevice injects a fail-stop failure of a simulated device.
func (rt *HomeRuntime) FailDevice(dev device.ID) error {
	rp := newReply()
	if err := rt.tryPost(op{kind: opFailDevice, dev: dev, reply: rp}); err != nil {
		rp.discard()
		return err
	}
	return rp.await().err
}

// RestoreDevice injects a restart of a previously failed simulated device.
func (rt *HomeRuntime) RestoreDevice(dev device.ID) error {
	rp := newReply()
	if err := rt.tryPost(op{kind: opRestoreDevice, dev: dev, reply: rp}); err != nil {
		rp.discard()
		return err
	}
	return rp.await().err
}

// StoreRoutine validates the routine against the home's registry and saves it
// in the bank through the mailbox, so a journaled home persists the
// definition and a recovered home still knows it. Direct Bank().Store calls
// remain possible but are memory-only.
func (rt *HomeRuntime) StoreRoutine(r *routine.Routine) error {
	if err := r.Validate(rt.reg); err != nil {
		return err
	}
	rp := newReply()
	if err := rt.tryPost(op{kind: opStoreRoutine, r: r, reply: rp}); err != nil {
		rp.discard()
		return err
	}
	return rp.await().err
}

// --- queries --------------------------------------------------------------------

// Counts is the runtime's live summary.
type Counts struct {
	Model     string
	Scheduler string
	Routines  int
	Pending   int
	Active    int
	Now       time.Time
}

// query posts a read; after Close it evaluates inline on the quiesced state
// (safe: the loop goroutine has exited, and <-rt.done orders its writes
// before the inline read). A query the loop refused to answer — it was
// queued when Crash() drained the ring — takes the same inline path, so
// linearizable readers never see a zero-value answer.
func (rt *HomeRuntime) query(o op) result {
	rp := newReply()
	o.reply = rp
	if err := rt.post(o); err != nil {
		rp.discard()
		<-rt.done
		return rt.answerInline(&o)
	}
	if res := rp.await(); res.err == nil {
		return res
	}
	<-rt.done
	return rt.answerInline(&o)
}

// evalQuery answers one read-only op. It runs on the loop goroutine while
// the runtime is open, or inline once it has quiesced.
func (rt *HomeRuntime) evalQuery(o *op) result {
	switch o.kind {
	case opResults:
		return result{any: rt.ctrl.Results()}
	case opResult:
		res, ok := rt.ctrl.Result(o.rid)
		return result{any: res, ok: ok}
	case opCounts:
		return result{any: Counts{
			Model:     rt.ctrl.Model().String(),
			Scheduler: rt.cfg.Scheduler.String(),
			Routines:  rt.ctrl.RoutineCount(),
			Pending:   rt.ctrl.PendingCount(),
			Active:    rt.ctrl.ActiveCount(),
			Now:       rt.env.Now(),
		}}
	case opDeviceStates:
		if rt.fleet == nil {
			return result{any: map[device.ID]device.State(nil)}
		}
		return result{any: rt.fleet.Snapshot()}
	case opCommittedStates:
		return result{any: rt.ctrl.CommittedStates()}
	case opEvents:
		return result{any: rt.elog.view()}
	case opTriggers:
		out := make([]ScheduledTrigger, 0, len(rt.triggers))
		for _, tr := range rt.triggers {
			out = append(out, tr.spec)
		}
		return result{any: out}
	default:
		panic(fmt.Sprintf("runtime: evalQuery on non-query op %d", o.kind))
	}
}

// linearizable reports whether queries must round-trip through the mailbox.
func (rt *HomeRuntime) linearizable() bool {
	return rt.cfg.ReadConsistency == ReadLinearizable
}

// Results returns per-routine outcomes in submission order.
func (rt *HomeRuntime) Results() []visibility.Result {
	if rt.linearizable() {
		return rt.query(op{kind: opResults}).any.([]visibility.Result)
	}
	return rt.Snapshot().Results()
}

// Result returns one routine's outcome.
func (rt *HomeRuntime) Result(id routine.ID) (visibility.Result, bool) {
	if rt.linearizable() {
		res := rt.query(op{kind: opResult, rid: id})
		return res.any.(visibility.Result), res.ok
	}
	return rt.Snapshot().Result(id)
}

// Counts returns the runtime's live summary.
func (rt *HomeRuntime) Counts() Counts {
	if rt.linearizable() {
		return rt.query(op{kind: opCounts}).any.(Counts)
	}
	return rt.Snapshot().Counts()
}

// PendingCount returns the number of unfinished routines.
func (rt *HomeRuntime) PendingCount() int { return rt.Counts().Pending }

// DeviceStates returns the ground-truth state of every simulated device
// (nil for wall-clock runtimes, whose ground truth lives in the devices).
func (rt *HomeRuntime) DeviceStates() map[device.ID]device.State {
	if rt.linearizable() {
		return rt.query(op{kind: opDeviceStates}).any.(map[device.ID]device.State)
	}
	return rt.Snapshot().DeviceStates()
}

// CommittedStates returns the controller's committed-state view.
func (rt *HomeRuntime) CommittedStates() map[device.ID]device.State {
	if rt.linearizable() {
		return rt.query(op{kind: opCommittedStates}).any.(map[device.ID]device.State)
	}
	return rt.Snapshot().CommittedStates()
}

// Events returns a copy of the recent activity log.
func (rt *HomeRuntime) Events() []visibility.Event {
	ev, _ := rt.EventsSince(0)
	return ev
}

// EventsSince returns the retained events with sequence number >= since —
// the tail a poller has not seen yet — and the cursor to pass on the next
// call. The first event ever gets sequence 1; passing 0 returns everything
// retained.
func (rt *HomeRuntime) EventsSince(since uint64) ([]visibility.Event, uint64) {
	if rt.linearizable() {
		v := rt.query(op{kind: opEvents}).any.(eventsView)
		return v.since(nil, since), v.nextSeq()
	}
	return rt.Snapshot().EventsSince(since)
}

// --- accessors ------------------------------------------------------------------

// ID returns the home's identifier.
func (rt *HomeRuntime) ID() string { return rt.cfg.ID }

// Model returns the home's visibility model.
func (rt *HomeRuntime) Model() visibility.Model { return rt.cfg.Model }

// Registry returns the device registry.
func (rt *HomeRuntime) Registry() *device.Registry { return rt.reg }

// Bank returns the home's routine bank (safe for concurrent use).
func (rt *HomeRuntime) Bank() *routine.Bank { return rt.bank }

// Detector exposes the failure detector (wall-clock runtimes; nil otherwise).
func (rt *HomeRuntime) Detector() *failure.Detector { return rt.detector }

// Breakers reports the live environment's per-device circuit-breaker states
// (wall-clock runtimes; nil otherwise).
func (rt *HomeRuntime) Breakers() []live.BreakerStats {
	if rt.lenv == nil {
		return nil
	}
	return rt.lenv.Breakers()
}

// BreakerState reports one device's actuation breaker position (always
// closed for simulated homes, which have no live environment).
func (rt *HomeRuntime) BreakerState(id device.ID) live.BreakerState {
	if rt.lenv == nil {
		return live.BreakerClosed
	}
	return rt.lenv.BreakerState(id)
}

// Since returns the runtime's creation time.
func (rt *HomeRuntime) Since() time.Time { return rt.started }

// IdleSince returns the wall time of the last admitted mutating operation
// (construction time if none): the idle clock the hibernation freezer
// compares against Config.HibernateAfter. Queries never advance it.
func (rt *HomeRuntime) IdleSince() time.Time {
	return time.Unix(0, rt.lastActive.Load())
}

// NextDueAt returns the earliest pending simulator deadline the loop has
// published (zero time = nothing pending). The freezer uses it to skip homes
// with imminent work; the paced-clock pumper uses the same value through
// PumpIfDue.
func (rt *HomeRuntime) NextDueAt() time.Time {
	due := rt.nextDue.Load()
	if due == 0 {
		return time.Time{}
	}
	return time.Unix(0, due)
}

// Mailbox reports the mailbox's admission counters and occupancy.
func (rt *HomeRuntime) Mailbox() MailboxStats {
	return MailboxStats{
		Accepted: rt.accepted.Load(),
		Rejected: rt.rejected.Load(),
		Depth:    len(rt.ch),
		Capacity: cap(rt.ch),
	}
}

// Suspend blocks the loop goroutine until the returned resume function is
// called, returning once the loop is actually parked. A parked loop is the
// only deterministic way to observe a full mailbox, which is what the
// overload/backpressure tests need; it also serves as a quiesce point for
// maintenance (e.g. state snapshots).
func (rt *HomeRuntime) Suspend() (resume func(), err error) {
	gate := make(chan struct{})
	release := make(chan struct{})
	if err := rt.post(op{kind: opSuspend, gate: gate, release: release}); err != nil {
		return nil, err
	}
	<-gate
	var once sync.Once
	return func() { once.Do(func() { close(release) }) }, nil
}

package runtime

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

func TestSnapshotReadYourWrites(t *testing.T) {
	rt := newVirtual(t, Config{EventLog: 64}, 4)
	for i := 0; i < 10; i++ {
		rid, err := rt.Submit(plugRoutine(fmt.Sprintf("ryw-%d", i), device.On, i%4))
		if err != nil {
			t.Fatal(err)
		}
		// The loop publishes before replying: a completed Submit must be
		// visible in the very next snapshot read, with no mailbox round trip.
		res, ok := rt.Result(rid)
		if !ok || res.Status != visibility.StatusCommitted {
			t.Fatalf("submit %d returned but its snapshot read = %+v, %v", i, res, ok)
		}
		if c := rt.Counts(); c.Routines != i+1 {
			t.Fatalf("counts after submit %d = %d routines", i, c.Routines)
		}
	}
	if states := rt.DeviceStates(); states["plug-0"] != device.On {
		t.Fatalf("plug-0 = %q in snapshot, want ON", states["plug-0"])
	}
	if ev := rt.Events(); len(ev) == 0 {
		t.Fatal("snapshot event log is empty")
	}
}

// TestSnapshotReadersAreMonotonicAndConsistent hammers one home with
// concurrent mutators and snapshot readers (run it with -race). Every reader
// checks, on each snapshot it loads, that
//
//   - reads are monotonic: the routine count never decreases between
//     consecutive loads, and a result observed once never disappears;
//   - the snapshot is internally consistent: the counts and the results
//     were cut at the same instant, so Routines == len(Results), Pending
//     matches the unfinished statuses in the same snapshot, and result IDs
//     are dense in submission order;
//   - event cursors are monotonic.
func TestSnapshotReadersAreMonotonicAndConsistent(t *testing.T) {
	rt := newVirtual(t, Config{EventLog: 256, MailboxDepth: 1024}, 4)

	const (
		writers     = 4
		readers     = 4
		perWriter   = 150
		totalWrites = writers * perWriter
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r := plugRoutine(fmt.Sprintf("w%d-%d", w, i), device.On, i%4)
				for {
					_, err := rt.Submit(r)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}

	readErr := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastRoutines int
			var lastCursor uint64
			seen := make(map[routine.ID]bool)
			for {
				snap := rt.Snapshot()
				c := snap.Counts()
				results := snap.Results()

				if c.Routines < lastRoutines {
					readErr <- fmt.Errorf("routine count went backwards: %d -> %d", lastRoutines, c.Routines)
					return
				}
				lastRoutines = c.Routines
				if len(results) != c.Routines {
					readErr <- fmt.Errorf("snapshot inconsistent: %d results but Routines=%d", len(results), c.Routines)
					return
				}
				pending := 0
				for i, res := range results {
					if int64(res.ID) != int64(i+1) {
						readErr <- fmt.Errorf("result %d has ID %d; submission order broken", i, res.ID)
						return
					}
					if !res.Status.Finished() {
						pending++
					}
					seen[res.ID] = true
				}
				if pending != c.Pending {
					readErr <- fmt.Errorf("snapshot inconsistent: %d unfinished results but Pending=%d", pending, c.Pending)
					return
				}
				for rid := range seen {
					if int64(rid) > int64(len(results)) {
						readErr <- fmt.Errorf("result %d observed earlier has disappeared (len %d)", rid, len(results))
						return
					}
				}
				_, next := snap.EventsSince(lastCursor)
				if next < lastCursor {
					readErr <- fmt.Errorf("event cursor went backwards: %d -> %d", lastCursor, next)
					return
				}
				lastCursor = next
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.Now().Add(10 * time.Second)
		for rt.Counts().Routines < totalWrites {
			if time.Now().After(deadline) {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-done
	close(stop)
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}

	if got := rt.Counts().Routines; got != totalWrites {
		t.Fatalf("routines = %d, want %d", got, totalWrites)
	}
	if pending := rt.PendingCount(); pending != 0 {
		t.Fatalf("pending = %d after virtual-clock drain, want 0", pending)
	}
}

// TestLinearizableQueriesStillWork pins the ReadLinearizable path: queries
// round-trip the mailbox, match the snapshot path's answers, and fall back
// inline after Close.
func TestLinearizableQueriesStillWork(t *testing.T) {
	rt := newVirtual(t, Config{ReadConsistency: ReadLinearizable, EventLog: 64}, 2)
	rid, err := rt.Submit(plugRoutine("lin", device.On, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, ok := rt.Result(rid)
	if !ok || res.Status != visibility.StatusCommitted {
		t.Fatalf("linearizable Result = %+v, %v", res, ok)
	}
	if c := rt.Counts(); c.Routines != 1 || c.Pending != 0 {
		t.Fatalf("linearizable Counts = %+v", c)
	}
	if ev, next := rt.EventsSince(0); len(ev) == 0 || next == 0 {
		t.Fatalf("linearizable EventsSince = %d events, next %d", len(ev), next)
	}
	rt.Close()
	if got := rt.Counts().Routines; got != 1 {
		t.Fatalf("post-Close inline Counts.Routines = %d, want 1", got)
	}
}

// TestEventsSinceCursorFetchesOnlyTail covers the poller contract: a second
// call with the returned cursor sees exactly the events appended in between.
func TestEventsSinceCursorFetchesOnlyTail(t *testing.T) {
	rt := newVirtual(t, Config{EventLog: 256}, 2)
	if _, err := rt.Submit(plugRoutine("first", device.On, 0)); err != nil {
		t.Fatal(err)
	}
	all, cursor := rt.EventsSince(0)
	if len(all) == 0 {
		t.Fatal("no events after first submit")
	}
	if tail, next := rt.EventsSince(cursor); len(tail) != 0 || next != cursor {
		t.Fatalf("tail after cursor = %d events (next %d, cursor %d), want none", len(tail), next, cursor)
	}
	if _, err := rt.Submit(plugRoutine("second", device.On, 1)); err != nil {
		t.Fatal(err)
	}
	tail, next := rt.EventsSince(cursor)
	if len(tail) == 0 || next <= cursor {
		t.Fatalf("tail after second submit = %d events, next %d", len(tail), next)
	}
	for _, e := range tail {
		if e.Detail == "first" {
			t.Fatalf("tail re-delivered an event from before the cursor: %+v", e)
		}
	}
	// A poller that fell behind eviction just gets the oldest retained tail.
	if ev, _ := rt.EventsSince(1); len(ev) == 0 {
		t.Fatal("EventsSince(1) returned nothing")
	}
}

// TestEventLogRetainsMostOfCapAcrossEviction pins the eviction policy:
// chunks are a quarter of the cap, so even right after dropping the oldest
// chunk the log retains at least ~3/4 of the configured window (a cap of
// exactly one preferred chunk size must not collapse to a single event).
func TestEventLogRetainsMostOfCapAcrossEviction(t *testing.T) {
	for _, capEvents := range []int{8, 128, 200, 1024} {
		l := newEventLog(capEvents)
		for i := 0; i < 3*capEvents+1; i++ {
			l.append(visibility.Event{Routine: 1})
		}
		if l.n > capEvents {
			t.Errorf("cap %d: log holds %d events, over cap", capEvents, l.n)
		}
		if min := capEvents - capEvents/4; l.n < min {
			t.Errorf("cap %d: log holds %d events right after eviction, want >= %d", capEvents, l.n, min)
		}
	}
}

// TestSuspendReleasesEarlierBatchReplies pins the batching edge the loop
// must not get wrong: when a submit and a suspend drain in the same batch,
// the submitter's reply (and the snapshot carrying its effect) must be
// delivered before the loop parks, not held until resume.
func TestSuspendReleasesEarlierBatchReplies(t *testing.T) {
	rt := newVirtual(t, Config{Batch: 8}, 2)

	// Park the loop so the next submit and suspend queue into one batch.
	resume1, err := rt.Suspend()
	if err != nil {
		t.Fatal(err)
	}
	type submitResult struct {
		rid routine.ID
		err error
	}
	submitted := make(chan submitResult, 1)
	go func() {
		rid, err := rt.Submit(plugRoutine("wedged", device.On, 0))
		submitted <- submitResult{rid, err}
	}()
	waitDepth := time.Now().Add(2 * time.Second)
	for rt.Mailbox().Depth < 1 {
		if time.Now().After(waitDepth) {
			t.Fatal("submit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resumed2 := make(chan func(), 1)
	go func() {
		resume2, err := rt.Suspend()
		if err != nil {
			t.Error(err)
			resumed2 <- func() {}
			return
		}
		resumed2 <- resume2
	}()
	// Release the first suspension: the loop drains [submit, suspend] as one
	// batch and parks again — with the submit answered first.
	resume1()
	resume2 := <-resumed2
	defer resume2()

	select {
	case res := <-submitted:
		if res.err != nil {
			t.Fatalf("submit in suspend batch: %v", res.err)
		}
		if r, ok := rt.Result(res.rid); !ok || r.Status != visibility.StatusCommitted {
			t.Fatalf("snapshot during suspension = %+v, %v; want the pre-park publish to cover the submit", r, ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("submit reply held hostage by a suspend later in the same batch")
	}
}

package runtime

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// The routine bank and scheduled triggers are home state just like results
// and device states: StoreRoutine and ScheduleAfter are journaled, so
// automations survive both a crash and a clean restart.

func TestBankSurvivesCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := journaledConfig(dir)
	rt, err := NewSim(cfg, device.Plugs(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreRoutine(plugRoutine("night", device.Off, 0, 1)); err != nil {
		t.Fatalf("StoreRoutine: %v", err)
	}
	if err := rt.StoreRoutine(plugRoutine("morning", device.On, 2)); err != nil {
		t.Fatalf("StoreRoutine: %v", err)
	}
	// Last write per name wins across the crash.
	if err := rt.StoreRoutine(plugRoutine("night", device.Off, 0, 1, 3)); err != nil {
		t.Fatalf("StoreRoutine update: %v", err)
	}
	rt.Crash()

	rec, err := NewSim(cfg, device.Plugs(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	names := rec.Bank().Names()
	if len(names) != 2 {
		t.Fatalf("recovered bank = %v, want [morning night]", names)
	}
	night, ok := rec.Bank().Get("night")
	if !ok || len(night.Commands) != 3 {
		t.Fatalf("recovered night = %+v, %v; want the 3-command update", night, ok)
	}
	// The recovered definition is dispatchable.
	if _, err := rec.Submit(night); err != nil {
		t.Errorf("Submit recovered routine: %v", err)
	}
}

func TestBankSurvivesCleanClose(t *testing.T) {
	dir := t.TempDir()
	cfg := journaledConfig(dir)
	rt, err := NewSim(cfg, device.Plugs(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.StoreRoutine(plugRoutine("movie", device.Off, 0)); err != nil {
		t.Fatal(err)
	}
	rt.Close() // checkpoint path, not tail replay

	rec, err := NewSim(cfg, device.Plugs(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if _, ok := rec.Bank().Get("movie"); !ok {
		t.Errorf("bank entry lost across clean close: %v", rec.Bank().Names())
	}
}

func TestScheduledTriggerSurvivesCrashAndFires(t *testing.T) {
	dir := t.TempDir()
	reg := device.Plugs(2)
	cfg := Config{ID: "trig", Model: visibility.EV, EventLog: 64, DataDir: dir,
		FailureInterval: time.Hour, DefaultShort: time.Millisecond}
	rt, err := NewLive(cfg, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatal(err)
	}
	r := routine.New("lights", routine.Command{Device: "plug-0", Target: device.On})
	if err := rt.StoreRoutine(r); err != nil {
		t.Fatal(err)
	}
	// Scheduled well past the crash: the arm is journaled, the home dies,
	// and the restarted home must still fire it.
	if _, err := rt.ScheduleAfter("lights", 100*time.Millisecond); err != nil {
		t.Fatalf("ScheduleAfter: %v", err)
	}
	rt.Crash()

	rec, err := NewLive(cfg, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	trigs := rec.Triggers()
	if len(trigs) != 1 || trigs[0].Routine != "lights" {
		t.Fatalf("recovered triggers = %+v, want the pre-crash arm", trigs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if results := rec.Results(); len(results) > 0 &&
			results[0].Status == visibility.StatusCommitted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered trigger never fired its routine")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// One-shot: once fired it is retired, also in the journal.
	fireDeadline := time.Now().Add(5 * time.Second)
	for len(rec.Triggers()) != 0 {
		if time.Now().After(fireDeadline) {
			t.Fatalf("fired one-shot trigger still armed: %+v", rec.Triggers())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFiredTriggerNotRearmedAfterRestart(t *testing.T) {
	dir := t.TempDir()
	reg := device.Plugs(2)
	cfg := Config{ID: "trig2", Model: visibility.EV, EventLog: 64, DataDir: dir,
		FailureInterval: time.Hour, DefaultShort: time.Millisecond}
	rt, err := NewLive(cfg, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatal(err)
	}
	r := routine.New("lights", routine.Command{Device: "plug-0", Target: device.On})
	if err := rt.StoreRoutine(r); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ScheduleAfter("lights", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.Results()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("trigger never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for rt.PendingCount() > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	rt.Crash()

	rec, err := NewLive(cfg, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if trigs := rec.Triggers(); len(trigs) != 0 {
		t.Errorf("fired one-shot trigger re-armed after restart: %+v", trigs)
	}
	// Give any wrongly re-armed firing a moment to show up.
	time.Sleep(20 * time.Millisecond)
	if n := len(rec.Results()); n != 1 {
		t.Errorf("recovered %d results, want exactly the original firing", n)
	}
}

package runtime

import (
	"encoding/json"
	"os"
	"path/filepath"
	"time"
)

// Panic isolation: a panic inside the loop (a controller bug, a bad timer
// callback, a corrupt routine) must cost exactly one home, not the process.
// runBatch recovers the panic and hands the error to poison, which tears the
// home down crash-style: the mailbox closes, every parked or queued caller is
// answered with ErrPoisoned, the journal's file descriptors and directory
// lock are released without flushing the poisoned batch (nothing in it was
// acknowledged, so durable truth is the last group commit — the same contract
// as a process kill), and the owner's OnPoison callback fires so a supervisor
// can rebuild the home from its journal.
//
// Forensics ride along: the panic message and the full goroutine stack are
// persisted to DataDir/poison.json (tmp+rename, best-effort) before OnPoison
// fires, surface in the owners' Status JSON as the home's last poison, and
// are cleared once a supervised restart brings the home back clean — so an
// operator can still see *why* a home died after the supervisor has already
// hidden the symptom.

// PoisonRecord is the persisted forensics of one poisoning panic.
type PoisonRecord struct {
	Time    time.Time `json:"time"`
	Home    string    `json:"home"`
	Message string    `json:"message"`
	Stack   string    `json:"stack,omitempty"`
}

const poisonFileName = "poison.json"

// LoadPoisonRecord reads the poison record persisted under dir, or nil if
// there is none (or it is unreadable — forensics never block a start).
func LoadPoisonRecord(dir string) *PoisonRecord {
	buf, err := os.ReadFile(filepath.Join(dir, poisonFileName))
	if err != nil {
		return nil
	}
	var rec PoisonRecord
	if json.Unmarshal(buf, &rec) != nil {
		return nil
	}
	return &rec
}

// ClearPoisonRecord removes the poison record persisted under dir — the
// supervisor calls it after a clean restart.
func ClearPoisonRecord(dir string) {
	_ = os.Remove(filepath.Join(dir, poisonFileName))
}

// writePoisonRecord persists rec under dir via tmp+rename. Best-effort: a
// home dying on a full disk must still finish poisoning.
func writePoisonRecord(dir string, rec *PoisonRecord) {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, poisonFileName+".tmp")
	if os.WriteFile(tmp, buf, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(dir, poisonFileName))
}

// failOp answers an operation that will never be applied.
func failOp(o *op, err error) {
	if o.reply != nil {
		o.reply.send(result{err: err})
	}
	if o.kind == opSuspend {
		close(o.gate) // never parks: the caller's resume is a no-op
	}
}

// poison runs on the loop goroutine after runBatch recovered a panic. The
// loop cannot close its own channel directly: a sender blocked on a full ring
// holds closeMu.RLock and only completes once the loop drains, so the close
// happens on a helper goroutine while this goroutine keeps receiving.
func (rt *HomeRuntime) poison(err error) {
	rt.panicErr.Store(err)
	rt.poisoned.Store(true)
	go rt.closeOnce.Do(func() {
		if rt.cancelDetect != nil {
			rt.cancelDetect()
		}
		rt.closeMu.Lock()
		rt.closed = true
		close(rt.ch)
		rt.closeMu.Unlock()
	})
	// If a concurrent Close won closeOnce, its graceful body still ends in
	// close(rt.ch); either way this drain terminates, answering everything
	// queued behind the poisoned batch.
	for o := range rt.ch {
		failOp(&o, ErrPoisoned)
	}
	if rt.j != nil {
		rt.j.jrn.Abandon()
		rt.j = nil
	}
	rec := &PoisonRecord{
		Time:    time.Now(),
		Home:    rt.cfg.ID,
		Message: err.Error(),
		Stack:   rt.panicStack,
	}
	rt.poisonRec.Store(rec)
	if rt.cfg.DataDir != "" {
		writePoisonRecord(rt.cfg.DataDir, rec)
	}
	if rt.cfg.OnPoison != nil {
		rt.cfg.OnPoison(err)
	}
}

// PoisonRecord returns the forensics record of the panic that poisoned the
// home, or nil if it never panicked. Set strictly before OnPoison fires, so
// a supervisor's callback always sees it.
func (rt *HomeRuntime) PoisonRecord() *PoisonRecord { return rt.poisonRec.Load() }

// Poisoned reports whether a panic killed the home's loop. A poisoned runtime
// answers queries from its last published snapshot, rejects mutations with
// ErrClosed/ErrPoisoned, and can be rebuilt from the same DataDir.
func (rt *HomeRuntime) Poisoned() bool { return rt.poisoned.Load() }

// PanicError returns the error recorded when a panic poisoned the home, or
// nil if the home never panicked.
func (rt *HomeRuntime) PanicError() error {
	if v := rt.panicErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// answerInline answers a query after the loop goroutine has exited: on the
// quiesced state after a clean Close, or from the last published snapshot
// when the loop died poisoned — the controller may have been mid-mutation
// when it panicked and must never be touched again.
func (rt *HomeRuntime) answerInline(o *op) result {
	if !rt.poisoned.Load() {
		return rt.evalQuery(o)
	}
	s := rt.snap.Load()
	switch o.kind {
	case opResults:
		return result{any: s.Results()}
	case opResult:
		res, ok := s.Result(o.rid)
		return result{any: res, ok: ok}
	case opCounts:
		return result{any: s.Counts()}
	case opDeviceStates:
		return result{any: s.DeviceStates()}
	case opCommittedStates:
		return result{any: s.CommittedStates()}
	case opEvents:
		return result{any: s.events}
	case opTriggers:
		return result{any: []ScheduledTrigger(nil)}
	default:
		return result{err: ErrPoisoned}
	}
}

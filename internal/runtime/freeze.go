// Hibernation: an idle home's runtime — loop goroutine, mailbox ring,
// controller with its lineage, fleet, event chunks, journal descriptors —
// collapses to a FrozenHome record of a few hundred bytes. The freeze rides
// the ordinary graceful Close: triggers retire into the final checkpoint,
// the mailbox drains (everything already acknowledged is journaled), the
// simulator quiesces, and the last checkpoint lands before the journal
// closes. Reanimation is exactly journal recovery, so the PR 5 contract —
// acknowledged results, committed states and event cursors come back
// exactly — is the freeze/wake contract too, verified by the same drills.
package runtime

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"safehome/internal/journal"
)

// FrozenHome is everything the manager keeps resident for a hibernated
// home: identity, where its durable state lives, the earliest scheduled
// trigger deadline (so a manager-level deadline heap can wake it on time),
// and the last observed counters for no-wake status reporting.
type FrozenHome struct {
	ID      string `json:"id"`
	DataDir string `json:"data_dir"`
	Model   string `json:"model"`
	// NextFire is the earliest deadline among the scheduled triggers that
	// retired into the final checkpoint (zero = none). Recovery re-arms a
	// past deadline with zero delay, so waking the home at NextFire fires
	// the trigger on time.
	NextFire time.Time `json:"next_fire,omitempty"`
	// Status-without-waking fields, captured at the freeze instant.
	Routines int       `json:"routines"`
	Devices  int       `json:"devices"`
	Accepted int64     `json:"accepted"`
	Rejected int64     `json:"rejected"`
	Created  time.Time `json:"created"`
	FrozenAt time.Time `json:"frozen_at"`
}

// Freeze takes the home's final checkpoint and reduces it to a FrozenHome
// record. It runs the full graceful Close — lineage compaction first, then
// trigger retirement, mailbox drain, simulator quiesce, final group commit
// and checkpoint — and then reads the quiesced loop-owned state inline.
//
// Freeze fails (after the Close, which is irrevocable) if the home was
// poisoned mid-drain or its journal died before the final checkpoint
// landed: a frozen record without a complete checkpoint behind it would
// wake into less state than was acknowledged. The caller owns the slot
// transition; on error it must rebuild the runtime from disk instead.
func (rt *HomeRuntime) Freeze() (*FrozenHome, error) {
	if !rt.Durable() {
		return nil, fmt.Errorf("runtime: home %q cannot freeze without a durable journal", rt.cfg.ID)
	}
	// Bound the frozen lineage before the final checkpoint: fold every
	// fully released lock access into the committed states, so the record
	// the home wakes from carries no stale history. Best-effort — a home
	// already closing skips it.
	rp := newReply()
	if err := rt.post(op{kind: opCompactNow, reply: rp}); err != nil {
		rp.discard()
	} else {
		rp.await()
	}
	rt.Close()
	if rt.poisoned.Load() {
		return nil, fmt.Errorf("runtime: home %q was poisoned during freeze: %v", rt.cfg.ID, rt.panicErr.Load())
	}
	if err := rt.JournalError(); err != nil {
		return nil, fmt.Errorf("runtime: home %q freeze lost its journal: %w", rt.cfg.ID, err)
	}

	// The loop has exited (<-rt.done inside Close orders its writes before
	// these reads); loop-owned state is inline-readable now.
	counts := rt.Snapshot().Counts()
	fr := &FrozenHome{
		ID:       rt.cfg.ID,
		DataDir:  rt.cfg.DataDir,
		Model:    rt.cfg.Model.String(),
		Routines: counts.Routines,
		Devices:  rt.reg.Len(),
		Accepted: rt.accepted.Load(),
		Rejected: rt.rejected.Load(),
		Created:  rt.started,
		FrozenAt: time.Now(),
	}
	for _, spec := range rt.retiredTriggers {
		if fr.NextFire.IsZero() || spec.NextFire.Before(fr.NextFire) {
			fr.NextFire = spec.NextFire
		}
	}
	return fr, nil
}

// frozenName is the marker file distinguishing "cleanly hibernated" from
// "crashed while live" in a home's data directory across a hub restart:
// present ⇒ stay cold (the final checkpoint is complete; wake on demand);
// journal state without it ⇒ the home died live and must recover live.
const frozenName = "frozen.json"

// WriteFrozenRecord durably publishes the frozen marker in the home's data
// directory. It is written strictly after the final checkpoint (Freeze
// returned) — a crash between the two leaves a live-recoverable journal and
// no marker, which is exactly the CrashMidFreeze drill's assertion.
func WriteFrozenRecord(fr *FrozenHome) error {
	buf, err := json.MarshalIndent(fr, "", "  ")
	if err != nil {
		return fmt.Errorf("runtime: encoding frozen record: %w", err)
	}
	if err := (journal.DirStore{Dir: fr.DataDir}).Put(frozenName, buf); err != nil {
		return fmt.Errorf("runtime: writing frozen record: %w", err)
	}
	return nil
}

// ReadFrozenRecord loads a home's frozen marker, returning (nil, nil) when
// the home is not hibernated.
func ReadFrozenRecord(dir string) (*FrozenHome, error) {
	buf, err := os.ReadFile(filepath.Join(dir, frozenName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runtime: reading frozen record: %w", err)
	}
	var fr FrozenHome
	if err := json.Unmarshal(buf, &fr); err != nil {
		return nil, fmt.Errorf("runtime: decoding frozen record: %w", err)
	}
	if fr.DataDir == "" {
		fr.DataDir = dir
	}
	return &fr, nil
}

// RemoveFrozenRecord deletes the frozen marker. The waker calls it before
// building the runtime, so a crash mid-wake leaves journal state with no
// marker — an ordinary live recovery on the next start, never a stale
// "frozen" claim over a home that already reanimated.
func RemoveFrozenRecord(dir string) error {
	err := os.Remove(filepath.Join(dir, frozenName))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("runtime: removing frozen record: %w", err)
	}
	return nil
}

package runtime

import (
	"fmt"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/lineage"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// tableExposer is implemented by the EV controller; the test peeks at the
// lineage table while the loop is parked (Suspend orders the loop's writes
// before our reads).
type tableExposer interface {
	Table() *lineage.Table
}

// dataLineageLen parks the loop and reads the data device's lineage length.
func dataLineageLen(t *testing.T, rt *HomeRuntime) int {
	t.Helper()
	resume, err := rt.Suspend()
	if err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	defer resume()
	return len(rt.ctrl.(tableExposer).Table().Lineage("plug-0").Accesses)
}

// TestLoopCompactsHistoryOnHorizon drives a paced-clock home with the
// gate-pattern workload (touch plug-0 briefly, hold plug-1 for minutes):
// without horizon compaction plug-0's lineage grows with every queued
// routine; with a short HistoryHorizon the loop folds the released history
// and the lineage stays bounded by the live window.
func TestLoopCompactsHistoryOnHorizon(t *testing.T) {
	run := func(horizon time.Duration) int {
		rt, err := NewSim(Config{
			ID:             "compact",
			Model:          visibility.EV,
			Clock:          ClockPaced,
			HistoryHorizon: horizon,
			MailboxDepth:   256,
		}, device.Plugs(2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)

		const n = 48
		for i := 0; i < n; i++ {
			r := routine.New(fmt.Sprintf("gate-%d", i),
				routine.Command{Device: "plug-0", Target: device.On, Duration: 100 * time.Millisecond},
				routine.Command{Device: "plug-1", Target: device.On, Duration: 5 * time.Minute},
			)
			if _, err := rt.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		// Advance the home 20 minutes in pump steps: every routine executes
		// its plug-0 command within the first seconds, then waits on the
		// gate; a few clear the gate per step. Each pump batch ends with a
		// compactHistory check on the loop.
		base := rt.Counts().Now
		for step := 1; step <= 20; step++ {
			target := base.Add(time.Duration(step) * time.Minute)
			rt.PumpIfDue(target)
			// A suspend round-trip serializes behind the pump: once it
			// returns, the pump (and its batch-end compaction) has run.
			resume, err := rt.Suspend()
			if err != nil {
				t.Fatal(err)
			}
			resume()
		}
		return dataLineageLen(t, rt)
	}

	grown := run(-1)            // compaction disabled
	bounded := run(time.Minute) // fold anything a minute past its estimated end
	if grown < 24 {
		t.Fatalf("without compaction plug-0 has %d accesses; the gate scenario should accumulate ~44", grown)
	}
	if bounded >= grown/4 {
		t.Fatalf("with a 1m horizon plug-0 still has %d accesses (uncompacted: %d)", bounded, grown)
	}
}

package runtime

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/visibility"
)

// waitPoisoned polls until the runtime reports poisoned or the deadline
// passes. The panic travels loop → recover → poison on another goroutine,
// so tests must wait for the flag rather than assert it synchronously.
func waitPoisoned(t *testing.T, rt *HomeRuntime) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !rt.Poisoned() {
		if time.Now().After(deadline) {
			t.Fatal("injected panic never poisoned the home")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPanicPoisonsHomeAndRecordsError(t *testing.T) {
	rt := newVirtual(t, Config{EventLog: 64}, 4)
	rid, err := rt.Submit(plugRoutine("before", device.On, 0))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	rt.PostTimer(func() { panic("test: injected fault") })
	waitPoisoned(t, rt)

	if perr := rt.PanicError(); perr == nil {
		t.Error("PanicError() = nil after poison")
	} else if !strings.Contains(perr.Error(), "injected fault") {
		t.Errorf("PanicError() = %v, want the injected panic value", perr)
	}
	// Mutations are refused — the loop is gone.
	if _, err := rt.Submit(plugRoutine("after", device.On, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after poison = %v, want ErrClosed", err)
	}
	// Reads still answer, from the last published snapshot: the pre-panic
	// commit is visible even though the loop died.
	res, ok := rt.Result(rid)
	if !ok || res.Status != visibility.StatusCommitted {
		t.Errorf("post-poison Result = %+v, %v; want the pre-panic commit", res, ok)
	}
	if states := rt.DeviceStates(); states["plug-0"] != device.On {
		t.Errorf("post-poison DeviceStates[plug-0] = %q, want ON", states["plug-0"])
	}
}

func TestOnPoisonFiresWithPanicError(t *testing.T) {
	var got atomic.Value
	fired := make(chan struct{})
	rt := newVirtual(t, Config{OnPoison: func(err error) {
		got.Store(err)
		close(fired)
	}}, 2)

	rt.PostTimer(func() { panic("test: supervisor hook") })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnPoison never fired")
	}
	err, _ := got.Load().(error)
	if err == nil || !strings.Contains(err.Error(), "supervisor hook") {
		t.Errorf("OnPoison error = %v, want the panic value", err)
	}
}

func TestPoisonedHomeRebuildsFromJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := journaledConfig(dir)
	rt, err := NewSim(cfg, device.Plugs(4))
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	rid, err := rt.Submit(plugRoutine("acked", device.On, 0, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rt.PostTimer(func() { panic("test: die, then rise") })
	waitPoisoned(t, rt)
	rt.Close() // idempotent on a poisoned home

	rec, err := NewSim(cfg, device.Plugs(4))
	if err != nil {
		t.Fatalf("rebuild from journal: %v", err)
	}
	defer rec.Close()
	if rec.Poisoned() {
		t.Error("rebuilt home still reports poisoned")
	}
	res, ok := rec.Result(rid)
	if !ok || res.Status != visibility.StatusCommitted {
		t.Errorf("rebuilt Result = %+v, %v; want pre-panic commit recovered", res, ok)
	}
	if _, err := rec.Submit(plugRoutine("fresh", device.Off, 2)); err != nil {
		t.Errorf("Submit on rebuilt home: %v", err)
	}
}

func TestPoisonAnswersConcurrentMutations(t *testing.T) {
	// Ops queued behind the poisoned batch must be answered (ErrPoisoned or
	// ErrClosed), never leaked: every submitter goroutine must return.
	rt := newVirtual(t, Config{MailboxDepth: 256}, 4)
	stop := make(chan struct{})
	done := make(chan struct{}, 8)
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := rt.Submit(plugRoutine("spin", device.On, 0))
				if errors.Is(err, ErrClosed) || errors.Is(err, ErrPoisoned) {
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	rt.PostTimer(func() { panic("test: poison under load") })
	waitPoisoned(t, rt)

	deadline := time.After(5 * time.Second)
	for g := 0; g < 8; g++ {
		select {
		case <-done:
		case <-deadline:
			close(stop)
			t.Fatal("a submitter never returned after the poison")
		}
	}
	close(stop)
}

// TestPoisonForensicsPersistAndClear: a poisoning panic leaves a forensics
// record — in memory via PoisonRecord() (set before OnPoison fires) and on
// disk as poison.json — carrying the panic message and the goroutine stack,
// so the cause survives the supervisor hiding the symptom. LoadPoisonRecord
// reads it back across a process restart; ClearPoisonRecord retires it.
func TestPoisonForensicsPersistAndClear(t *testing.T) {
	dir := t.TempDir()
	rt, err := NewSim(journaledConfig(dir), device.Plugs(4))
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	rt.PostTimer(func() { panic("test: forensic fault") })
	waitPoisoned(t, rt)
	rt.Close()

	rec := rt.PoisonRecord()
	if rec == nil {
		t.Fatal("PoisonRecord() = nil after poison")
	}
	if !strings.Contains(rec.Message, "forensic fault") {
		t.Errorf("record message = %q, want the panic value", rec.Message)
	}
	if !strings.Contains(rec.Stack, "goroutine") {
		t.Errorf("record stack = %q, want a captured goroutine stack", rec.Stack)
	}
	if rec.Home != "durable" || rec.Time.IsZero() {
		t.Errorf("record identity = home %q time %v", rec.Home, rec.Time)
	}

	// The record survives as poison.json, as a fresh process would see it.
	disk := LoadPoisonRecord(dir)
	if disk == nil {
		t.Fatal("LoadPoisonRecord = nil, want the persisted record")
	}
	if disk.Message != rec.Message || !strings.Contains(disk.Stack, "TestPoisonForensicsPersistAndClear") {
		t.Errorf("persisted record = %+v, want message %q with the faulting frame", disk, rec.Message)
	}

	ClearPoisonRecord(dir)
	if LoadPoisonRecord(dir) != nil {
		t.Error("poison record survived ClearPoisonRecord")
	}
}

// TestNoPoisonRecordWithoutPanic: clean lifecycles leave no forensics.
func TestNoPoisonRecordWithoutPanic(t *testing.T) {
	dir := t.TempDir()
	rt, err := NewSim(journaledConfig(dir), device.Plugs(4))
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	rt.Close()
	if rt.PoisonRecord() != nil {
		t.Error("clean close left an in-memory poison record")
	}
	if LoadPoisonRecord(dir) != nil {
		t.Error("clean close left a poison.json")
	}
}

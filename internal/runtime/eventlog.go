package runtime

import (
	"safehome/internal/visibility"
)

// eventLog is the home's activity log, stored as fixed-size append-only
// chunks so the read path can expose it without copying it on every poll:
// the loop goroutine appends events and occasionally drops the oldest chunk;
// a published view shares the chunks and bounds how far into the open chunk
// a reader may look. Every event has a monotonically increasing sequence
// number, so pollers can fetch only the tail with EventsSince.
//
// Entries below a published bound are never rewritten (eviction drops whole
// chunks from a private spine copy, never mutates one), which is what makes
// the shared chunks safe to read from any goroutine.

// eventChunkCap is the maximum chunk size. Chunks are sized to a quarter of
// the configured cap (clamped to [1, eventChunkCap]): eviction drops whole
// chunks, so the retained window dips to cap-chunkSize+1 right after an
// eviction — quarter-cap chunks guarantee at least ~3/4 of the configured
// window is always retained.
const eventChunkCap = 128

type eventChunk struct {
	ev []visibility.Event // fixed length; [i] written once by the loop
}

// eventsView is an immutable window over the log: the chunk spine is a
// private copy, and n bounds how many events (from firstSeq on) the holder
// may read.
type eventsView struct {
	chunks    []*eventChunk
	chunkSize int
	firstSeq  uint64 // sequence number of chunks[0].ev[0]; the first event ever is seq 1
	n         int    // events readable across the window
}

// eventLog is loop-owned; only view results escape to other goroutines.
type eventLog struct {
	capEvents int
	chunkSize int
	chunks    []*eventChunk
	firstSeq  uint64
	n         int
	dirty     bool // appended since the last view() — publish can skip clean logs
	last      eventsView
}

func newEventLog(capEvents int) *eventLog {
	if capEvents <= 0 {
		return nil
	}
	chunkSize := capEvents / 4
	if chunkSize > eventChunkCap {
		chunkSize = eventChunkCap
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	return &eventLog{capEvents: capEvents, chunkSize: chunkSize, firstSeq: 1}
}

// append records one event, evicting the oldest chunk when the log exceeds
// its cap. Runs on the loop goroutine.
func (l *eventLog) append(e visibility.Event) {
	if l.n == len(l.chunks)*l.chunkSize {
		l.chunks = append(l.chunks, &eventChunk{ev: make([]visibility.Event, l.chunkSize)})
	}
	l.chunks[l.n/l.chunkSize].ev[l.n%l.chunkSize] = e
	l.n++
	if l.n > l.capEvents {
		// The head chunk is necessarily full (chunks fill in order and
		// chunkSize <= capEvents): drop it whole. The spine slice is private
		// to the loop — views hold their own copies — so reslicing is safe.
		l.chunks = l.chunks[1:]
		l.n -= l.chunkSize
		l.firstSeq += uint64(l.chunkSize)
	}
	l.dirty = true
}

// nextSeqLive returns the sequence number the next appended event will get.
// Unlike eventsView.nextSeq it reads the live log, so the loop can stamp
// journal records before the next publish.
func (l *eventLog) nextSeqLive() uint64 {
	if l == nil {
		return 1
	}
	return l.firstSeq + uint64(l.n)
}

// restore seeds a fresh log with a recovered event window: firstSeq is the
// sequence number of events[0], so cursors handed out before the crash stay
// valid and strictly monotonic afterwards. Must run before any append (the
// constructors call it during journal recovery).
func (l *eventLog) restore(firstSeq uint64, events []visibility.Event) {
	if l == nil || len(events) == 0 {
		return
	}
	if firstSeq == 0 {
		firstSeq = 1
	}
	l.firstSeq = firstSeq
	for _, e := range events {
		l.append(e)
	}
}

// view returns an immutable window over the current log contents, reusing
// the previous window when nothing was appended since.
func (l *eventLog) view() eventsView {
	if l == nil {
		return eventsView{firstSeq: 1}
	}
	if !l.dirty {
		return l.last
	}
	l.last = eventsView{
		chunks:    append([]*eventChunk(nil), l.chunks...),
		chunkSize: l.chunkSize,
		firstSeq:  l.firstSeq,
		n:         l.n,
	}
	l.dirty = false
	return l.last
}

// nextSeq returns the sequence number the next appended event will get,
// i.e. the cursor a poller should pass to resume after this view.
func (v eventsView) nextSeq() uint64 { return v.firstSeq + uint64(v.n) }

// since appends the events with sequence number >= since to dst and returns
// the extended slice. Passing 0 (or anything below the retained window)
// returns everything retained.
func (v eventsView) since(dst []visibility.Event, since uint64) []visibility.Event {
	skip := 0
	if since > v.firstSeq {
		skip = int(since - v.firstSeq)
		if skip > v.n {
			skip = v.n
		}
	}
	for i := skip; i < v.n; i++ {
		dst = append(dst, v.chunks[i/v.chunkSize].ev[i%v.chunkSize])
	}
	return dst
}

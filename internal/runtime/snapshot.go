package runtime

import (
	"fmt"
	"strings"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
)

// This file is the off-loop read path: once per batch drain (not per
// operation) the loop goroutine folds what changed into an immutable
// Snapshot and publishes it through an atomic pointer; queries under the
// default ReadSnapshot consistency answer from the latest Snapshot without
// posting anything into the mailbox. A burst of status polls therefore costs
// the loop nothing — it cannot delay placement or shed mutating operations.
//
// The loop publishes *before* delivering the batch's replies, so a caller
// whose mutation has returned is guaranteed to observe it in subsequent
// snapshot reads (read-your-writes for sequential callers). Concurrent
// readers get the usual snapshot guarantees: reads are monotonic (snapshots
// are published in order through one atomic pointer) and each snapshot is
// internally consistent (counts, results and states were captured at the
// same loop instant).

// ReadConsistency selects how a runtime answers read-only queries.
type ReadConsistency int

const (
	// ReadSnapshot (the default) answers queries from the latest published
	// snapshot: lock-free, never touching the mailbox, at most one batch
	// stale. A caller always observes its own completed mutations.
	ReadSnapshot ReadConsistency = iota
	// ReadLinearizable posts every query through the mailbox and answers it
	// on the loop goroutine, serialized against all mutations — the pre-PR-4
	// behavior. Queries queue behind (and steal loop time from) placement.
	ReadLinearizable
)

func (c ReadConsistency) String() string {
	switch c {
	case ReadSnapshot:
		return "snapshot"
	case ReadLinearizable:
		return "linearizable"
	default:
		return fmt.Sprintf("consistency(%d)", int(c))
	}
}

// ParseReadConsistency parses a consistency name ("snapshot",
// "linearizable").
func ParseReadConsistency(s string) (ReadConsistency, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "snapshot":
		return ReadSnapshot, nil
	case "linearizable", "linear":
		return ReadLinearizable, nil
	default:
		return ReadSnapshot, fmt.Errorf("runtime: unknown read consistency %q", s)
	}
}

// Snapshot is one epoch's immutable view of a home: everything a query can
// ask for, captured at the same loop instant. Snapshots are cheap to hold
// and safe to read from any goroutine; a snapshot never changes after it is
// published.
type Snapshot struct {
	state  *visibility.StateExport
	events eventsView

	// devStates is the simulated fleet's ground truth at publish time (nil
	// for wall-clock runtimes, whose ground truth lives in the devices).
	devStates map[device.ID]device.State

	mailbox   MailboxStats
	model     string
	scheduler string
	wall      bool // substitute time.Now() for Counts.Now on the wall clock
}

// Results materializes per-routine outcomes in submission order.
func (s *Snapshot) Results() []visibility.Result {
	return s.state.Results.AppendTo(make([]visibility.Result, 0, s.state.Results.Len()))
}

// Result returns one routine's outcome. Routine IDs are dense, so the lookup
// is O(1).
func (s *Snapshot) Result(id routine.ID) (visibility.Result, bool) {
	if id < 1 || int64(id) > int64(s.state.Results.Len()) {
		return visibility.Result{}, false
	}
	return s.state.Results.At(int(id - 1)), true
}

// Counts returns the snapshot's summary counters.
func (s *Snapshot) Counts() Counts {
	now := s.state.Now
	if s.wall {
		now = time.Now()
	}
	return Counts{
		Model:     s.model,
		Scheduler: s.scheduler,
		Routines:  s.state.Routines,
		Pending:   s.state.Pending,
		Active:    s.state.Active,
		Now:       now,
	}
}

// CommittedStates materializes the controller's committed-state view.
func (s *Snapshot) CommittedStates() map[device.ID]device.State {
	return s.state.Committed.AppendTo(nil)
}

// CommittedState returns one device's committed state without materializing
// the map.
func (s *Snapshot) CommittedState(d device.ID) (device.State, bool) {
	return s.state.Committed.Get(d)
}

// DeviceStates materializes the simulated fleet's ground truth (nil for
// wall-clock runtimes).
func (s *Snapshot) DeviceStates() map[device.ID]device.State {
	if s.devStates == nil {
		return nil
	}
	out := make(map[device.ID]device.State, len(s.devStates))
	for d, st := range s.devStates {
		out[d] = st
	}
	return out
}

// Events materializes the retained activity log.
func (s *Snapshot) Events() []visibility.Event {
	return s.events.since(make([]visibility.Event, 0, s.events.n), 0)
}

// EventsSince appends the events with sequence >= since and returns them
// together with the cursor to pass next time. FirstSeq of the retained
// window may have advanced past `since` if the poller fell behind the log's
// eviction; it then simply gets the oldest retained events.
func (s *Snapshot) EventsSince(since uint64) ([]visibility.Event, uint64) {
	return s.events.since(nil, since), s.events.nextSeq()
}

// EventSeqRange returns the sequence number of the first retained event and
// the cursor one past the last.
func (s *Snapshot) EventSeqRange() (first, next uint64) {
	return s.events.firstSeq, s.events.nextSeq()
}

// Mailbox returns the admission counters captured when the snapshot was
// published. HomeRuntime.Mailbox reads the live counters instead.
func (s *Snapshot) Mailbox() MailboxStats { return s.mailbox }

// Snapshot returns the latest published snapshot. It is never nil: the
// runtime publishes an initial snapshot before the loop starts, a new one
// after every batch that changed anything, and a final one at quiesce — so
// post-Close reads observe the drained state.
func (rt *HomeRuntime) Snapshot() *Snapshot { return rt.snap.Load() }

// publish cuts a new snapshot on the loop goroutine. Unless forced (initial
// and final snapshots), it is a no-op when no operation since the last
// publish could have changed observable state.
func (rt *HomeRuntime) publish(force bool) {
	if !force && !rt.snapDirty {
		return
	}
	s := &Snapshot{
		state:     rt.ctrl.Export(),
		events:    rt.elog.view(),
		mailbox:   rt.Mailbox(),
		model:     rt.cfg.Model.String(),
		scheduler: rt.cfg.Scheduler.String(),
		wall:      rt.cfg.Clock == ClockWall,
	}
	if rt.fleet != nil {
		if prev := rt.snap.Load(); prev != nil && rt.fleetVersion == rt.fleet.Version() {
			s.devStates = prev.devStates // fleet untouched: share the map
		} else {
			rt.fleetVersion = rt.fleet.Version()
			s.devStates = rt.fleet.Snapshot()
		}
	}
	rt.snap.Store(s)
	rt.snapDirty = false
	if m := rt.cfg.Metrics; m != nil {
		m.SnapshotPublishes.Inc()
	}
}

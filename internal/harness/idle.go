// Idle-home oracle: the generative sweep marks a slice of homes Idle — all
// their work lands in a setup burst, then silence. Those are exactly the
// homes hibernation exists for, so each idle spec additionally runs through
// a durable home that is frozen after the burst and woken from its final
// checkpoint, demanding that every acknowledged result and committed state
// survives the freeze→wake round trip bit-for-bit.
package harness

import (
	"fmt"
	"os"
	"time"

	"safehome/internal/runtime"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// CheckFreezeWake replays an idle spec's submissions into a durable
// paced-clock home, pumps it dry, freezes it through the hibernation path
// (final checkpoint + frozen marker), wakes it the way the manager does
// (consume marker, rebuild from checkpoint + journal tail), and verifies the
// woken home's history and committed states match the pre-freeze ones
// exactly. Failure injections are not replayed: the oracle isolates the
// freeze/wake contract, which the crash drills already test under faults.
func CheckFreezeWake(spec workload.Spec, sched visibility.SchedulerKind) ([]Violation, error) {
	dir, err := os.MkdirTemp("", "safehome-idle-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	cfg := runtime.Config{
		ID:        spec.Name,
		Clock:     runtime.ClockPaced,
		Model:     visibility.EV,
		Scheduler: sched,
		DataDir:   dir,
	}
	home, err := runtime.NewSim(cfg, spec.Registry())
	if err != nil {
		return nil, fmt.Errorf("harness: idle oracle open: %w", err)
	}
	for _, sub := range spec.Submissions {
		if _, err := home.Submit(sub.Routine); err != nil {
			home.Close()
			return nil, fmt.Errorf("harness: idle oracle submit: %w", err)
		}
	}
	if err := pumpDry(home, time.Now().Add(30*time.Second)); err != nil {
		home.Close()
		return nil, err
	}
	before := home.Results()
	beforeStates := home.CommittedStates()

	fr, err := home.Freeze()
	if err != nil {
		home.Close()
		return nil, fmt.Errorf("harness: idle oracle freeze: %w", err)
	}
	if err := runtime.WriteFrozenRecord(fr); err != nil {
		return nil, fmt.Errorf("harness: idle oracle marker: %w", err)
	}

	var out []Violation
	if fr.Routines != len(before) {
		out = append(out, Violation{"frozen-record-diverged",
			fmt.Sprintf("frozen record claims %d routines, home acknowledged %d", fr.Routines, len(before))})
	}

	// The wake path: the marker is consumed before the rebuild so a crash
	// mid-wake recovers live instead of trusting a stale frozen claim.
	marker, err := runtime.ReadFrozenRecord(dir)
	if err != nil {
		return nil, fmt.Errorf("harness: idle oracle read marker: %w", err)
	}
	if marker == nil {
		out = append(out, Violation{"frozen-marker-lost",
			"freeze published no frozen record"})
	}
	if err := runtime.RemoveFrozenRecord(dir); err != nil {
		return nil, fmt.Errorf("harness: idle oracle consume marker: %w", err)
	}
	woke, err := runtime.NewSim(cfg, spec.Registry())
	if err != nil {
		return nil, fmt.Errorf("harness: idle oracle wake: %w", err)
	}
	defer woke.Close()

	after := woke.Results()
	if len(after) != len(before) {
		out = append(out, Violation{"recovered-count",
			fmt.Sprintf("woke with %d results, froze with %d", len(after), len(before))})
	}
	byID := make(map[int]visibility.Result, len(after))
	for _, res := range after {
		byID[int(res.ID)] = res
	}
	for _, want := range before {
		have, ok := byID[int(want.ID)]
		if !ok {
			out = append(out, Violation{"lost-acked",
				fmt.Sprintf("acknowledged routine %d missing after wake", want.ID)})
			continue
		}
		if have.Status != want.Status || have.Executed != want.Executed ||
			!have.Finished.Equal(want.Finished) || have.AbortReason != want.AbortReason {
			out = append(out, Violation{"acked-diverged",
				fmt.Sprintf("routine %d woke as {%v exec=%d fin=%v %q}, froze as {%v exec=%d fin=%v %q}",
					want.ID, have.Status, have.Executed, have.Finished, have.AbortReason,
					want.Status, want.Executed, want.Finished, want.AbortReason)})
		}
	}
	afterStates := woke.CommittedStates()
	for d, s := range beforeStates {
		if afterStates[d] != s {
			out = append(out, Violation{"state-diverged",
				fmt.Sprintf("committed state of %s = %q after wake, froze with %q", d, afterStates[d], s)})
		}
	}
	if !woke.Durable() {
		out = append(out, Violation{"not-durable",
			fmt.Sprintf("woken home reports journal error: %v", woke.JournalError())})
	}
	return out, nil
}

// Property-based sweeps: run generated workloads against the controllers and
// check the two invariants every visibility model ≥ GSV promises — the end
// state is serially equivalent to some order of the committed routines
// (congruence), and the controller's own claimed serialization actually
// produces the observed end state with every committed routine placed exactly
// once (weak ordering). Failing seeds are shrunk to a minimal reproducer.
package harness

import (
	"fmt"

	"safehome/internal/congruence"
	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/routine"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// Violation is one invariant breach found by Verify.
type Violation struct {
	// Kind is a stable tag: lost-routine, unfinished, incongruent,
	// serial-missing, serial-duplicate, serial-extra, serial-mismatch.
	Kind   string
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// initialState computes the fleet's state at t=0 for a spec.
func initialState(spec workload.Spec) map[device.ID]device.State {
	return device.NewFleet(spec.Registry()).Snapshot()
}

// Verify checks one finished trial against the spec it ran.
//
// Always checked: every submission reached a terminal result, and the
// claimed serialization names each committed routine exactly once and no
// uncommitted one. When the spec injects no device failures, two stronger
// checks apply: the end state must be congruent (explainable by *some* serial
// order of the committed routines), and replaying the controller's *claimed*
// serialization must reproduce the observed end state exactly. Both use the
// routines' definition-based writes, which are only accurate when no
// best-effort command can fail — i.e. when no device ever goes down.
func Verify(spec workload.Spec, tr TrialResult) []Violation {
	var out []Violation

	if len(tr.Results) != len(spec.Submissions) {
		out = append(out, Violation{"lost-routine",
			fmt.Sprintf("%d submissions but %d results", len(spec.Submissions), len(tr.Results))})
	}
	committed := make(map[routine.ID]*routine.Routine)
	var committedRoutines []*routine.Routine
	var committedWrites []congruence.Writes
	for _, res := range tr.Results {
		if !res.Status.Finished() {
			out = append(out, Violation{"unfinished",
				fmt.Sprintf("routine %d (%s) ended %v", res.ID, res.Routine.Name, res.Status)})
			continue
		}
		if res.Status == visibility.StatusCommitted {
			committed[res.ID] = res.Routine
			committedRoutines = append(committedRoutines, res.Routine)
			committedWrites = append(committedWrites, congruence.FromRoutine(res.Routine))
		}
	}

	pure := len(spec.Failures) == 0
	initial := initialState(spec)

	if pure {
		if res := congruence.Check(initial, committedWrites, tr.EndState); !res.Congruent {
			out = append(out, Violation{"incongruent",
				fmt.Sprintf("end state of devices %v unexplained by any serial order of %d committed routines",
					res.BadDevices, len(committedWrites))})
		}
	}

	// Weak ordering, part 1: the serialization's routine nodes are exactly
	// the committed routines, each once.
	seen := make(map[routine.ID]int)
	var serialIDs []routine.ID
	for _, n := range tr.Serialization {
		if n.Kind != order.KindRoutine {
			continue
		}
		seen[n.Routine]++
		serialIDs = append(serialIDs, n.Routine)
	}
	clean := true
	for id := range committed {
		if seen[id] == 0 {
			clean = false
			out = append(out, Violation{"serial-missing",
				fmt.Sprintf("committed routine %d absent from serialization", id)})
		}
	}
	for id, n := range seen {
		if n > 1 {
			clean = false
			out = append(out, Violation{"serial-duplicate",
				fmt.Sprintf("routine %d appears %d times in serialization", id, n)})
		}
		if _, ok := committed[id]; !ok {
			clean = false
			out = append(out, Violation{"serial-extra",
				fmt.Sprintf("serialization names routine %d, which did not commit", id)})
		}
	}

	// Weak ordering, part 2: the claimed order reproduces the end state.
	if pure && clean {
		want := congruence.SerialEndState(initial, committedRoutines, serialIDs)
		for _, d := range device.SortedIDs(tr.EndState) {
			if want[d] != tr.EndState[d] {
				out = append(out, Violation{"serial-mismatch",
					fmt.Sprintf("device %s is %s but the claimed serialization yields %s",
						d, tr.EndState[d], want[d])})
			}
		}
	}
	return out
}

// SweepParams configures a generator sweep: Seeds consecutive seeds starting
// at Params.Seed, each run under every listed scheduler (EV model).
type SweepParams struct {
	Params     workload.GenParams
	Seeds      int
	Schedulers []visibility.SchedulerKind
	// Factory substitutes the controller under test (nil = production).
	Factory ControllerFactory
	// NoShrink skips minimizing failing specs (sweeps that only need a
	// verdict, e.g. CI smoke on many seeds).
	NoShrink bool
}

// SweepFailure is one failing (seed, scheduler) cell with its shrunk
// reproducer.
type SweepFailure struct {
	Seed       int64
	Scheduler  visibility.SchedulerKind
	Violations []Violation
	// Minimal is the shrunk spec (equal to the full spec when NoShrink).
	Minimal workload.Spec
	// MinimalViolations are the violations the minimal spec still triggers.
	MinimalViolations []Violation
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	Runs     int
	Routines int
	// IdleHomes counts generated specs marked Idle (IdlePct > 0); each also
	// ran the hibernation freeze/wake oracle.
	IdleHomes int
	Failures  []SweepFailure
}

// DefaultSchedulers are the three EV scheduling policies the sweep exercises.
func DefaultSchedulers() []visibility.SchedulerKind {
	return []visibility.SchedulerKind{visibility.SchedTL, visibility.SchedFCFS, visibility.SchedJiT}
}

// Sweep generates Seeds workloads and verifies each under every scheduler,
// shrinking failures to minimal reproducers.
func Sweep(p SweepParams) SweepResult {
	if p.Seeds <= 0 {
		p.Seeds = 1
	}
	scheds := p.Schedulers
	if len(scheds) == 0 {
		scheds = DefaultSchedulers()
	}
	var res SweepResult
	for i := 0; i < p.Seeds; i++ {
		gp := p.Params
		gp.Seed = p.Params.Seed + int64(i)
		spec := workload.Generate(gp)
		if spec.Idle {
			// Idle homes are hibernation's home turf: beyond the controller
			// invariants below, the quiesced home must survive a freeze/wake
			// round trip exactly. Once per seed — the oracle checks the
			// journal path, which is scheduler-independent.
			res.IdleHomes++
			fwViols, err := CheckFreezeWake(spec, scheds[0])
			if err != nil {
				fwViols = append(fwViols, Violation{"freeze-wake-error", err.Error()})
			}
			if len(fwViols) > 0 {
				res.Failures = append(res.Failures, SweepFailure{
					Seed: gp.Seed, Scheduler: scheds[0],
					Violations: fwViols, Minimal: spec, MinimalViolations: fwViols,
				})
			}
		}
		for _, sched := range scheds {
			opts := visibility.DefaultOptions(visibility.EV)
			opts.Scheduler = sched
			tr := RunWith(spec, opts, gp.Seed, p.Factory)
			res.Runs++
			res.Routines += len(tr.Results)
			viols := Verify(spec, tr)
			if len(viols) == 0 {
				continue
			}
			fail := SweepFailure{Seed: gp.Seed, Scheduler: sched, Violations: viols}
			fail.Minimal = spec
			fail.MinimalViolations = viols
			if !p.NoShrink {
				fail.Minimal = workload.Shrink(spec, func(s workload.Spec) bool {
					return len(Verify(s, RunWith(s, opts, gp.Seed, p.Factory))) > 0
				})
				fail.MinimalViolations = Verify(fail.Minimal, RunWith(fail.Minimal, opts, gp.Seed, p.Factory))
			}
			res.Failures = append(res.Failures, fail)
		}
	}
	return res
}

// Trace record & replay: capture a run's visibility event stream in the
// hub's cursor format (workload.Trace) and feed the trace back through a
// fresh home. Both directions run on the deterministic discrete-event
// simulator starting at the epoch, so a faithful controller reproduces the
// event stream byte for byte — CheckReplay is the acceptance oracle.
package harness

import (
	"bytes"
	"fmt"

	"safehome/internal/device"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// Record runs the spec and captures the full visibility event stream as a
// self-contained trace (the spec, the controller configuration, and every
// event in cursor shape, sequence-stamped from 1).
func Record(spec workload.Spec, opts visibility.Options, seed int64) (*workload.Trace, TrialResult) {
	tr := &workload.Trace{
		Name:      spec.Name,
		Model:     opts.Model.String(),
		Scheduler: opts.Scheduler.String(),
		Seed:      seed,
		JitterMax: spec.JitterMax,
		Devices:   append([]device.Info(nil), spec.Devices...),
		Options: workload.TraceOptions{
			PreLease:      boolPtr(opts.PreLease),
			PostLease:     boolPtr(opts.PostLease),
			DefaultShort:  opts.DefaultShort,
			LeaseLeniency: opts.LeaseLeniency,
			JiTTTL:        opts.JiTTTL,
		},
	}
	for _, sub := range spec.Submissions {
		tr.Submissions = append(tr.Submissions, workload.TraceSubmission{
			At: sub.At, User: sub.User, Routine: sub.Routine.Clone(),
		})
	}
	for _, f := range spec.Failures {
		tr.Failures = append(tr.Failures, workload.TraceFailure{At: f.At, Device: f.Device, Restart: f.Restart})
	}

	seq := uint64(0)
	prev := opts.Observer
	opts.Observer = func(e visibility.Event) {
		seq++
		tr.Events = append(tr.Events, workload.TraceEvent{
			Seq:     seq,
			Time:    e.Time,
			Kind:    e.Kind.String(),
			Routine: int64(e.Routine),
			Device:  string(e.Device),
			State:   string(e.State),
			Detail:  e.Detail,
		})
		if prev != nil {
			prev(e)
		}
	}
	res := Run(spec, opts, seed)
	return tr, res
}

// Replay reconstructs the recorded run's spec and controller options and
// re-records it through a fresh home. The returned trace is what the fresh
// home produced; compare EventBytes against the original for byte identity.
func Replay(t *workload.Trace) (*workload.Trace, TrialResult, error) {
	model, err := visibility.ParseModel(t.Model)
	if err != nil {
		return nil, TrialResult{}, fmt.Errorf("harness: replay: %w", err)
	}
	opts := visibility.DefaultOptions(model)
	if t.Scheduler != "" {
		sched, err := visibility.ParseScheduler(t.Scheduler)
		if err != nil {
			return nil, TrialResult{}, fmt.Errorf("harness: replay: %w", err)
		}
		opts.Scheduler = sched
	}
	if t.Options.PreLease != nil {
		opts.PreLease = *t.Options.PreLease
	}
	if t.Options.PostLease != nil {
		opts.PostLease = *t.Options.PostLease
	}
	if t.Options.DefaultShort > 0 {
		opts.DefaultShort = t.Options.DefaultShort
	}
	if t.Options.LeaseLeniency > 0 {
		opts.LeaseLeniency = t.Options.LeaseLeniency
	}
	if t.Options.JiTTTL > 0 {
		opts.JiTTTL = t.Options.JiTTTL
	}
	re, res := Record(t.Spec(), opts, t.Seed)
	return re, res, nil
}

// CheckReplay replays the trace and byte-compares the visibility streams.
// It returns nil when the replay is byte-identical, otherwise an error
// locating the first divergent event line.
func CheckReplay(t *workload.Trace) error {
	re, _, err := Replay(t)
	if err != nil {
		return err
	}
	a, b := t.EventBytes(), re.EventBytes()
	if bytes.Equal(a, b) {
		return nil
	}
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Errorf("harness: replay diverged at event %d:\n recorded: %s\n replayed: %s",
				i+1, al[i], bl[i])
		}
	}
	return fmt.Errorf("harness: replay diverged in length: recorded %d events, replayed %d",
		len(t.Events), len(re.Events))
}

func boolPtr(b bool) *bool { return &b }

package harness

import "testing"

func TestFlapDrill(t *testing.T) {
	rep, err := RunFlapDrill()
	if err != nil {
		t.Fatalf("flap drill: %v", err)
	}
	t.Logf("%v", rep)
	for _, v := range rep.Violations {
		t.Errorf("violation %s: %s", v.Kind, v.Detail)
	}
	if rep.Opens == 0 || rep.FlapAborted == 0 || rep.HealthyCommitted == 0 || !rep.Reclosed {
		t.Errorf("drill did not exercise the full breaker lifecycle: %v", rep)
	}
}

func TestJournalFlapDrill(t *testing.T) {
	rep, err := RunJournalFlapDrill(t.TempDir())
	if err != nil {
		t.Fatalf("journal-flap drill: %v", err)
	}
	t.Logf("%v", rep)
	for _, v := range rep.Violations {
		t.Errorf("violation %s: %s", v.Kind, v.Detail)
	}
	if rep.DegradedServing == 0 || rep.RecoveredAcked == 0 {
		t.Errorf("drill did not exercise degrade + recovery: %v", rep)
	}
}

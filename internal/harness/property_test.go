package harness

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/order"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// rogueWriteFactory builds the production controller but schedules a write
// behind its back, long after all routine activity: the end state can no
// longer be explained by any serial order of the committed routines.
func rogueWriteFactory(env *visibility.SimEnv, initial map[device.ID]device.State, opts visibility.Options) visibility.Controller {
	env.Sim.After(1000*time.Hour, func() { _ = env.Fleet.Apply("plug-00", device.State("rogue")) })
	return visibility.New(env, initial, opts)
}

// serialDropper wraps a real controller but omits the last routine node from
// its claimed serialization.
type serialDropper struct {
	visibility.Controller
}

func (d serialDropper) Serialization() []order.Node {
	s := d.Controller.Serialization()
	for i := len(s) - 1; i >= 0; i-- {
		if s[i].Kind == order.KindRoutine {
			out := append([]order.Node(nil), s[:i]...)
			return append(out, s[i+1:]...)
		}
	}
	return s
}

func serialDropperFactory(env *visibility.SimEnv, initial map[device.ID]device.State, opts visibility.Options) visibility.Controller {
	return serialDropper{visibility.New(env, initial, opts)}
}

// TestSweepGeneratedWorkloads is the main property sweep: 50 generated homes
// of 120 devices, each verified under all three EV schedulers against the
// congruence and weak-ordering oracles.
func TestSweepGeneratedWorkloads(t *testing.T) {
	p := SweepParams{
		Params: workload.DefaultGenParams(),
		Seeds:  50,
	}
	p.Params.Seed = 1000
	if testing.Short() {
		p.Seeds = 8
	}
	res := Sweep(p)
	t.Logf("sweep: %d runs, %d routine executions, %d failing cells",
		res.Runs, res.Routines, len(res.Failures))
	for _, f := range res.Failures {
		t.Errorf("seed %d / %v: %d violations; minimal repro %q (%d submissions, %d commands): %v",
			f.Seed, f.Scheduler, len(f.Violations), f.Minimal.Name,
			len(f.Minimal.Submissions), f.Minimal.TotalCommands(), f.MinimalViolations)
	}
	if want := p.Seeds * 3; res.Runs != want {
		t.Errorf("runs = %d, want %d", res.Runs, want)
	}
}

// TestSweepIdleHomesFreezeWake exercises the idle-skew knob end to end: every
// seed is idle, so each spec runs both the controller oracles and the
// hibernation freeze/wake identity check.
func TestSweepIdleHomesFreezeWake(t *testing.T) {
	p := SweepParams{
		Params: workload.DefaultGenParams(),
		Seeds:  3,
	}
	p.Params.Seed = 8000
	p.Params.Routines = 40
	p.Params.IdlePct = 100
	res := Sweep(p)
	if res.IdleHomes != p.Seeds {
		t.Errorf("IdleHomes = %d, want %d (IdlePct=100)", res.IdleHomes, p.Seeds)
	}
	for _, f := range res.Failures {
		t.Errorf("seed %d / %v: %v", f.Seed, f.Scheduler, f.Violations)
	}
}

// TestSweepWithDeviceFailures exercises the failure-injection path; with
// failures present only the completeness and serialization-set oracles apply.
func TestSweepWithDeviceFailures(t *testing.T) {
	p := SweepParams{
		Params: workload.DefaultGenParams(),
		Seeds:  6,
	}
	p.Params.Seed = 7000
	p.Params.FailedPct = 15
	p.Params.RestartPct = 50
	res := Sweep(p)
	for _, f := range res.Failures {
		t.Errorf("seed %d / %v: %v", f.Seed, f.Scheduler, f.Violations)
	}
}

// TestSweepCatchesRogueWriteController proves the congruence oracle fires on
// a controller whose home drifts from everything it committed, and that the
// failing spec shrinks to a trivial reproducer.
func TestSweepCatchesRogueWriteController(t *testing.T) {
	p := SweepParams{
		Params:     workload.DefaultGenParams(),
		Seeds:      1,
		Schedulers: []visibility.SchedulerKind{visibility.SchedTL},
		Factory:    rogueWriteFactory,
	}
	p.Params.Seed = 300
	p.Params.Routines = 40
	res := Sweep(p)
	if len(res.Failures) != 1 {
		t.Fatalf("rogue-write controller produced %d failing cells, want 1", len(res.Failures))
	}
	f := res.Failures[0]
	found := false
	for _, v := range f.Violations {
		if v.Kind == "incongruent" {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not include incongruent", f.Violations)
	}
	// The rogue write reproduces with no workload at all, so the shrunk spec
	// must be (near) empty.
	if len(f.Minimal.Submissions) > 2 {
		t.Errorf("minimal repro kept %d submissions, want <= 2", len(f.Minimal.Submissions))
	}
	if len(f.MinimalViolations) == 0 {
		t.Error("minimal spec no longer violates")
	}
	t.Logf("rogue write shrunk to %d submissions / %d commands: %v",
		len(f.Minimal.Submissions), f.Minimal.TotalCommands(), f.MinimalViolations)
}

// TestSweepCatchesSerializationDropper proves the weak-ordering oracle fires
// when a controller's claimed serialization omits a committed routine.
func TestSweepCatchesSerializationDropper(t *testing.T) {
	p := SweepParams{
		Params:     workload.DefaultGenParams(),
		Seeds:      1,
		Schedulers: []visibility.SchedulerKind{visibility.SchedFCFS},
		Factory:    serialDropperFactory,
	}
	p.Params.Seed = 301
	p.Params.Routines = 30
	res := Sweep(p)
	if len(res.Failures) != 1 {
		t.Fatalf("serialization dropper produced %d failing cells, want 1", len(res.Failures))
	}
	f := res.Failures[0]
	found := false
	for _, v := range f.Violations {
		if v.Kind == "serial-missing" {
			found = true
		}
	}
	if !found {
		t.Errorf("violations %v do not include serial-missing", f.Violations)
	}
	if len(f.Minimal.Submissions) > 2 {
		t.Errorf("minimal repro kept %d submissions, want <= 2", len(f.Minimal.Submissions))
	}
}

// TestVerifyCleanOnPaperScenarios sanity-checks the oracles against the
// hand-written paper workloads.
func TestVerifyCleanOnPaperScenarios(t *testing.T) {
	specs := []workload.Spec{workload.Figure2(), workload.Morning(1), workload.Party(1)}
	for _, spec := range specs {
		for _, sched := range DefaultSchedulers() {
			opts := visibility.DefaultOptions(visibility.EV)
			opts.Scheduler = sched
			tr := Run(spec, opts, 1)
			if viols := Verify(spec, tr); len(viols) != 0 {
				t.Errorf("%s under %v: %v", spec.Name, sched, viols)
			}
		}
	}
}

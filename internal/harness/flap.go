// Device-flap and journal-flap drills: the self-healing counterparts of the
// kill/recover drills in drill.go. A flap drill runs a wall-clock home
// against an actuator whose device fails mid-routine and verifies the
// actuation path's circuit breaker — the flapping device's routine aborts
// without stalling the loop, commands to the device fail fast while the
// breaker is open, healthy devices keep committing, and the breaker
// re-closes once the device recovers. A journal-flap drill kills the
// journal's commit path mid-run and verifies the home degrades to
// memory-only instead of dying, then recovers its pre-degrade state on
// restart.
package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/live"
	"safehome/internal/routine"
	"safehome/internal/runtime"
	"safehome/internal/visibility"
)

// flapActuator is an in-memory actuator whose devices can be flipped
// between healthy and failing. While a device is down every exchange —
// actuation and ping alike — fails, modelling a plug that dropped off the
// network.
type flapActuator struct {
	mu   sync.Mutex
	st   map[device.ID]device.State
	down map[device.ID]bool
}

func newFlapActuator(reg *device.Registry) *flapActuator {
	a := &flapActuator{
		st:   make(map[device.ID]device.State),
		down: make(map[device.ID]bool),
	}
	for _, info := range reg.All() {
		a.st[info.ID] = info.Initial
	}
	return a
}

func (a *flapActuator) setDown(id device.ID, down bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.down[id] = down
}

func (a *flapActuator) Apply(id device.ID, target device.State) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.down[id] {
		return fmt.Errorf("%w: %s: device is flapping", device.ErrUnavailable, id)
	}
	a.st[id] = target
	return nil
}

func (a *flapActuator) Status(id device.ID) (device.State, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.down[id] {
		return device.StateUnknown, fmt.Errorf("%w: %s: device is flapping", device.ErrUnavailable, id)
	}
	return a.st[id], nil
}

func (a *flapActuator) Ping(id device.ID) error {
	_, err := a.Status(id)
	return err
}

// FlapReport is one device-flap drill's outcome.
type FlapReport struct {
	// Opens is how many times the flapping device's breaker opened.
	Opens int64
	// FlapAborted is the number of routines against the flapping device that
	// terminated (aborted) while it was down.
	FlapAborted int
	// HealthyCommitted is the number of healthy-device routines that
	// committed while the flapping device's breaker was open.
	HealthyCommitted int
	// Reclosed reports whether the breaker returned to closed after the
	// device recovered.
	Reclosed bool
	// Violations lists contract breaches (empty = drill passed).
	Violations []Violation
}

func (r FlapReport) String() string {
	return fmt.Sprintf("device-flap    opens=%-2d flap-aborted=%-2d healthy-committed=%-2d reclosed=%-5v violations=%d",
		r.Opens, r.FlapAborted, r.HealthyCommitted, r.Reclosed, len(r.Violations))
}

// oneCommand builds a single zero-duration command routine for the device.
func oneCommand(name string, id device.ID) *routine.Routine {
	r := routine.New(name)
	r.Commands = append(r.Commands, routine.Command{Device: id, Target: device.On})
	return r
}

// awaitTerminal polls one routine's result until it reaches a terminal
// status or the deadline passes.
func awaitTerminal(rt *runtime.HomeRuntime, rid routine.ID, deadline time.Time) (visibility.Result, error) {
	for {
		if res, ok := rt.Result(rid); ok &&
			(res.Status == visibility.StatusCommitted || res.Status == visibility.StatusAborted) {
			return res, nil
		}
		if time.Now().After(deadline) {
			return visibility.Result{}, fmt.Errorf("harness: routine %d never finished", rid)
		}
		time.Sleep(time.Millisecond)
	}
}

// RunFlapDrill exercises the actuation path's self-healing on a wall-clock
// home: plug-1 flaps while plug-0 stays healthy.
func RunFlapDrill() (FlapReport, error) {
	var rep FlapReport
	reg := device.Plugs(2)
	act := newFlapActuator(reg)
	const flapping = device.ID("plug-1")

	rt, err := runtime.NewLive(runtime.Config{
		ID:           "flap-drill",
		Model:        visibility.EV,
		DefaultShort: 5 * time.Millisecond,
		// Probe far apart so the failure detector cannot abort the flapped
		// routine before its second actuation attempt: the breaker must open
		// from the actuation path's own failures, deterministically.
		FailureInterval: 5 * time.Second,
		EventLog:        256,
		Actuation: live.Options{
			Timeout:          100 * time.Millisecond,
			Retries:          1,
			RetryBackoff:     5 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  150 * time.Millisecond,
		},
	}, reg, act)
	if err != nil {
		return rep, err
	}
	defer rt.Close()
	rt.Start()

	// Baseline: a healthy routine commits.
	rid, err := rt.Submit(oneCommand("baseline", "plug-0"))
	if err != nil {
		return rep, err
	}
	if res, err := awaitTerminal(rt, rid, time.Now().Add(5*time.Second)); err != nil {
		return rep, err
	} else if res.Status != visibility.StatusCommitted {
		rep.Violations = append(rep.Violations, Violation{"baseline-not-committed",
			fmt.Sprintf("baseline routine ended %v", res.Status)})
	}

	// The device starts flapping mid-run. A routine against it must abort
	// (timeout/refusal), not hang — with Retries=1 and BreakerThreshold=2,
	// one routine's two failed attempts open the breaker.
	act.setDown(flapping, true)
	rid, err = rt.Submit(oneCommand("flapped", flapping))
	if err != nil {
		return rep, err
	}
	res, err := awaitTerminal(rt, rid, time.Now().Add(5*time.Second))
	if err != nil {
		return rep, errors.New("harness: routine against flapping device stalled the loop")
	}
	if res.Status != visibility.StatusAborted {
		rep.Violations = append(rep.Violations, Violation{"flap-not-aborted",
			fmt.Sprintf("routine against flapping device ended %v, want aborted", res.Status)})
	} else {
		rep.FlapAborted++
	}
	if st := rt.BreakerState(flapping); st != live.BreakerOpen {
		rep.Violations = append(rep.Violations, Violation{"breaker-not-open",
			fmt.Sprintf("breaker is %v after %d consecutive failures, want open", st, 2)})
	}

	// With the breaker open: commands to the flapping device fail fast and
	// healthy devices keep committing — the flap never monopolizes the loop.
	rid, err = rt.Submit(oneCommand("fast-fail", flapping))
	if err != nil {
		return rep, err
	}
	if res, err := awaitTerminal(rt, rid, time.Now().Add(5*time.Second)); err != nil {
		return rep, err
	} else if res.Status == visibility.StatusAborted {
		rep.FlapAborted++
	}
	rid, err = rt.Submit(oneCommand("healthy", "plug-0"))
	if err != nil {
		return rep, err
	}
	if res, err := awaitTerminal(rt, rid, time.Now().Add(5*time.Second)); err != nil {
		return rep, err
	} else if res.Status != visibility.StatusCommitted {
		rep.Violations = append(rep.Violations, Violation{"healthy-starved",
			fmt.Sprintf("healthy routine ended %v while the breaker was open", res.Status)})
	} else {
		rep.HealthyCommitted++
	}

	// Recovery: the device comes back, the detector's pings rediscover it,
	// and after the cooldown the next command half-open-probes the breaker
	// closed. A freshly restored device may need a few attempts while the
	// controller catches up with the restart notification.
	act.setDown(flapping, false)
	time.Sleep(200 * time.Millisecond) // cooldown + a detector probe period
	deadline := time.Now().Add(5 * time.Second)
	for !rep.Reclosed {
		if time.Now().After(deadline) {
			rep.Violations = append(rep.Violations, Violation{"breaker-stuck-open",
				"breaker never re-closed after the device recovered"})
			break
		}
		rid, err = rt.Submit(oneCommand("recovered", flapping))
		if err != nil {
			return rep, err
		}
		res, err := awaitTerminal(rt, rid, time.Now().Add(5*time.Second))
		if err != nil {
			return rep, err
		}
		if res.Status == visibility.StatusCommitted && rt.BreakerState(flapping) == live.BreakerClosed {
			rep.Reclosed = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, b := range rt.Breakers() {
		if b.Device == flapping {
			rep.Opens = b.Opens
		}
	}
	if rep.Opens == 0 {
		rep.Violations = append(rep.Violations, Violation{"opens-unrecorded",
			"breaker stats record zero opens for the flapping device"})
	}
	return rep, nil
}

// JournalFlapReport is one journal-flap drill's outcome.
type JournalFlapReport struct {
	// DegradedServing is the number of routines committed after the journal
	// died.
	DegradedServing int
	// RecoveredAcked is the number of pre-degrade routines recovered by a
	// restart on the same directory.
	RecoveredAcked int
	// Violations lists contract breaches (empty = drill passed).
	Violations []Violation
}

func (r JournalFlapReport) String() string {
	return fmt.Sprintf("journal-flap   degraded-serving=%-2d recovered-acked=%-2d violations=%d",
		r.DegradedServing, r.RecoveredAcked, len(r.Violations))
}

// RunJournalFlapDrill kills the journal's group-commit path mid-run and
// verifies availability-over-durability: the home degrades to memory-only
// (health "degraded") but keeps serving, and a restart on the same
// directory recovers exactly the work acknowledged before the degrade.
func RunJournalFlapDrill(dir string) (JournalFlapReport, error) {
	var rep JournalFlapReport
	if dir == "" {
		return rep, errors.New("harness: journal-flap drill needs a data dir")
	}
	var failCommits atomic.Bool
	cfg := runtime.Config{
		ID:       "journal-flap",
		Clock:    runtime.ClockPaced,
		Model:    visibility.EV,
		EventLog: 256,
		DataDir:  dir,
		Journal: journal.Options{
			TestInjectErr: func(op string) error {
				if op == "commit" && failCommits.Load() {
					return errors.New("harness: injected journal fault")
				}
				return nil
			},
		},
	}
	reg := device.Plugs(4)
	rt, err := runtime.NewSim(cfg, reg)
	if err != nil {
		return rep, err
	}

	// Phase 1: acknowledged, journaled work.
	const acked = 4
	for i := 0; i < acked; i++ {
		if _, err := rt.Submit(oneCommand(fmt.Sprintf("acked-%d", i), device.ID(fmt.Sprintf("plug-%d", i)))); err != nil {
			return rep, err
		}
	}
	if err := pumpDry(rt, time.Now().Add(10*time.Second)); err != nil {
		return rep, err
	}
	if !rt.Durable() {
		return rep, fmt.Errorf("harness: home not durable before the journal flap: %v", rt.JournalError())
	}

	// Phase 2: the journal dies. The home must degrade, not die: submits
	// keep committing in memory and the runtime reports the journal error.
	failCommits.Store(true)
	for i := 0; i < 3; i++ {
		rid, err := rt.Submit(oneCommand(fmt.Sprintf("degraded-%d", i), "plug-0"))
		if err != nil {
			rep.Violations = append(rep.Violations, Violation{"degraded-not-serving",
				fmt.Sprintf("submit after journal death failed: %v", err)})
			continue
		}
		if err := pumpDry(rt, time.Now().Add(10*time.Second)); err != nil {
			return rep, err
		}
		if res, ok := rt.Result(rid); ok && res.Status == visibility.StatusCommitted {
			rep.DegradedServing++
		}
	}
	if rt.Durable() {
		rep.Violations = append(rep.Violations, Violation{"degrade-unreported",
			"journal fault injected but the home still reports durable"})
	}
	if rt.JournalError() == nil {
		rep.Violations = append(rep.Violations, Violation{"journal-error-lost",
			"degraded home reports no journal error"})
	}
	rt.Crash()

	// Phase 3: restart on the same directory. Pre-degrade work recovers;
	// post-degrade work was memory-only by contract and is gone.
	failCommits.Store(false)
	rec, err := runtime.NewSim(cfg, device.Plugs(4))
	if err != nil {
		return rep, fmt.Errorf("harness: journal-flap recovery: %w", err)
	}
	defer rec.Close()
	for _, res := range rec.Results() {
		if res.Status == visibility.StatusCommitted {
			rep.RecoveredAcked++
		}
	}
	if rep.RecoveredAcked < acked {
		rep.Violations = append(rep.Violations, Violation{"lost-acked",
			fmt.Sprintf("recovered %d committed routines, want at least %d journaled before the flap",
				rep.RecoveredAcked, acked)})
	}
	if !rec.Durable() {
		rep.Violations = append(rep.Violations, Violation{"not-durable",
			fmt.Sprintf("recovered home reports journal error: %v", rec.JournalError())})
	}
	return rep, nil
}

// Parameterized kill/recover drills: crash a journaled home runtime at a
// chosen instant — after acknowledgements, with routines in flight, mid
// mailbox batch, or mid checkpoint write — reopen the same data directory,
// and check the durability contract of the write-ahead journal:
// acknowledged ⇒ recovered identically, in flight ⇒ aborted with rollback,
// unacknowledged ⇒ absent. Each drill also measures recovery time against
// the journal tail it had to scan.
package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/routine"
	"safehome/internal/runtime"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// CrashPoint selects the instant a drill kills the home.
type CrashPoint int

const (
	// CrashPostAck crashes after every submitted routine committed and was
	// acknowledged — the pure "nothing may be lost" case.
	CrashPostAck CrashPoint = iota
	// CrashInFlight crashes with long routines accepted (acknowledged as
	// submitted) but still executing — they must recover as aborted.
	CrashInFlight
	// CrashMidBatch crashes with submissions parked in the mailbox behind a
	// suspended loop — never acknowledged, so they must not recover.
	CrashMidBatch
	// CrashMidCheckpoint crashes post-ack and additionally simulates death
	// midway through a checkpoint rewrite (a garbage checkpoint.tmp) plus a
	// torn frame at the newest segment's tail; recovery must ignore both.
	CrashMidCheckpoint
	// CrashPanic kills the home with a software fault instead of a process
	// kill: a panic injected into the loop goroutine, with long routines
	// still executing. The runtime must isolate the panic (poison the home,
	// record the panic error, release the journal) and recovery must see
	// exactly the crash contract — acked intact, in flight aborted.
	CrashPanic
)

func (p CrashPoint) String() string {
	switch p {
	case CrashPostAck:
		return "post-ack"
	case CrashInFlight:
		return "in-flight"
	case CrashMidBatch:
		return "mid-batch"
	case CrashMidCheckpoint:
		return "mid-checkpoint"
	case CrashPanic:
		return "crash-panic"
	default:
		return fmt.Sprintf("crash-point(%d)", int(p))
	}
}

// DrillParams configures one kill/recover drill.
type DrillParams struct {
	// Dir is the journal data directory (required; use a fresh temp dir).
	Dir string
	// Point selects the crash instant.
	Point CrashPoint
	// Acked is the number of routines driven to commit before the crash
	// (default 8).
	Acked int
	// InFlight is the number of long routines left executing at the crash
	// (CrashInFlight only; default 2).
	InFlight int
	// Unacked is the number of submissions parked in the mailbox at the
	// crash (CrashMidBatch only; default 4).
	Unacked int
	// Devices is the fleet size (default 16).
	Devices int
	// Scheduler is the EV scheduling policy (default TL).
	Scheduler visibility.SchedulerKind
	// Journal tunes segment rotation and checkpoint cadence; the zero value
	// uses the journal package defaults.
	Journal journal.Options
	// Seed drives the generated routines.
	Seed int64
}

func (p DrillParams) normalized() DrillParams {
	if p.Acked <= 0 {
		p.Acked = 8
	}
	if p.InFlight <= 0 {
		p.InFlight = 2
	}
	if p.Unacked <= 0 {
		p.Unacked = 4
	}
	if p.Devices <= 0 {
		p.Devices = 16
	}
	return p
}

// DrillReport is one drill's outcome: what the home held at the crash, what
// recovery cost, and any contract violations.
type DrillReport struct {
	Point    CrashPoint
	Acked    int
	InFlight int
	Unacked  int
	// TailBytes is the total size of the journal segments recovery scanned.
	TailBytes int64
	// RecoveryTime is the wall time of reopening the home from the journal.
	RecoveryTime time.Duration
	// Recovered is the number of results present after recovery.
	Recovered int
	// Violations lists durability-contract breaches (empty = drill passed).
	Violations []Violation
}

func (r DrillReport) String() string {
	return fmt.Sprintf("%-14s acked=%-3d inflight=%-2d unacked=%-2d tail=%-8d recovery=%-12v violations=%d",
		r.Point, r.Acked, r.InFlight, r.Unacked, r.TailBytes, r.RecoveryTime, len(r.Violations))
}

// drillRoutine builds a short routine over the drill fleet.
func drillRoutine(rng *stats.RNG, devices int, name string, dur time.Duration) *routine.Routine {
	r := routine.New(name)
	n := 1 + rng.Intn(3)
	for c := 0; c < n; c++ {
		target := device.On
		if rng.Bool(0.5) {
			target = device.Off
		}
		r.Commands = append(r.Commands, routine.Command{
			Device:   device.ID(fmt.Sprintf("plug-%d", rng.Intn(devices))),
			Target:   target,
			Duration: dur,
		})
	}
	return r
}

// pumpDry pumps a paced-clock runtime far into the future until no routine
// is pending (or the wall-clock deadline passes).
func pumpDry(rt *runtime.HomeRuntime, deadline time.Time) error {
	for rt.PendingCount() > 0 {
		rt.PumpIfDue(time.Now().Add(24 * time.Hour))
		if time.Now().After(deadline) {
			return errors.New("harness: drill routines never finished under pumping")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// journalTailBytes sums the sizes of the journal's segment files.
func journalTailBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			if info, err := e.Info(); err == nil {
				total += info.Size()
			}
		}
	}
	return total
}

// RunDrill executes one kill/recover drill and verifies the durability
// contract on the recovered home.
func RunDrill(p DrillParams) (DrillReport, error) {
	p = p.normalized()
	if p.Dir == "" {
		return DrillReport{}, errors.New("harness: drill needs a data dir")
	}
	rng := stats.NewRNG(p.Seed)
	cfg := runtime.Config{
		ID:        "drill",
		Clock:     runtime.ClockPaced,
		Model:     visibility.EV,
		Scheduler: p.Scheduler,
		EventLog:  256,
		DataDir:   p.Dir,
		Journal:   p.Journal,
	}
	reg := device.Plugs(p.Devices)
	rt, err := runtime.NewSim(cfg, reg)
	if err != nil {
		return DrillReport{}, err
	}

	rep := DrillReport{Point: p.Point, Acked: p.Acked}

	// Phase 1 (all points): commit and acknowledge a batch of short routines.
	for i := 0; i < p.Acked; i++ {
		r := drillRoutine(rng, p.Devices, fmt.Sprintf("acked-%03d", i), time.Duration(1+rng.Intn(20))*time.Second)
		if _, err := rt.Submit(r); err != nil {
			return rep, fmt.Errorf("harness: drill submit: %w", err)
		}
	}
	if err := pumpDry(rt, time.Now().Add(10*time.Second)); err != nil {
		return rep, err
	}
	ackedResults := rt.Results()
	ackedStates := rt.CommittedStates()

	// Phase 2: put the home in the crash-point state.
	var inFlightIDs []routine.ID
	var unackedErrs []error
	switch p.Point {
	case CrashInFlight:
		rep.InFlight = p.InFlight
		for i := 0; i < p.InFlight; i++ {
			r := drillRoutine(rng, p.Devices, fmt.Sprintf("inflight-%02d", i), time.Hour)
			rid, err := rt.Submit(r)
			if err != nil {
				return rep, fmt.Errorf("harness: drill in-flight submit: %w", err)
			}
			inFlightIDs = append(inFlightIDs, rid)
		}
		// A small pump starts execution without finishing the hour-long
		// holds: the crash lands mid-routine, not merely mid-queue.
		rt.PumpIfDue(time.Now().Add(time.Second))
		rt.Crash()

	case CrashPanic:
		rep.InFlight = p.InFlight
		for i := 0; i < p.InFlight; i++ {
			r := drillRoutine(rng, p.Devices, fmt.Sprintf("inflight-%02d", i), time.Hour)
			rid, err := rt.Submit(r)
			if err != nil {
				return rep, fmt.Errorf("harness: drill in-flight submit: %w", err)
			}
			inFlightIDs = append(inFlightIDs, rid)
		}
		rt.PumpIfDue(time.Now().Add(time.Second))
		// Die by software fault instead of process kill: the panic lands in
		// the loop goroutine, whose recovery must poison the home rather
		// than unwind the process.
		rt.PostTimer(func() { panic("harness: injected fault") })
		for deadline := time.Now().Add(5 * time.Second); !rt.Poisoned(); {
			if time.Now().After(deadline) {
				return rep, errors.New("harness: injected panic never poisoned the home")
			}
			time.Sleep(time.Millisecond)
		}
		if rt.PanicError() == nil {
			rep.Violations = append(rep.Violations, Violation{"panic-unrecorded",
				"poisoned home records no panic error"})
		}
		// Close joins the already-dead loop; the poison teardown released the
		// journal, so recovery below reopens the same directory.
		rt.Close()

	case CrashMidBatch:
		rep.Unacked = p.Unacked
		resume, err := rt.Suspend()
		if err != nil {
			return rep, fmt.Errorf("harness: drill suspend: %w", err)
		}
		// With the loop parked, the submissions below queue in the mailbox
		// and block; the crash must answer every one of them ErrClosed.
		var wg sync.WaitGroup
		errs := make([]error, p.Unacked)
		for i := 0; i < p.Unacked; i++ {
			r := drillRoutine(rng, p.Devices, fmt.Sprintf("unacked-%02d", i), time.Second)
			wg.Add(1)
			go func(i int, r *routine.Routine) {
				defer wg.Done()
				_, errs[i] = rt.Submit(r)
			}(i, r)
		}
		for deadline := time.Now().Add(5 * time.Second); rt.Mailbox().Depth < p.Unacked; {
			if time.Now().After(deadline) {
				resume()
				return rep, errors.New("harness: drill submissions never queued")
			}
			time.Sleep(time.Millisecond)
		}
		crashDone := make(chan struct{})
		go func() { rt.Crash(); close(crashDone) }()
		// Crash closes the mailbox immediately but blocks until the loop
		// exits, which needs the resume below.
		time.Sleep(10 * time.Millisecond)
		resume()
		<-crashDone
		wg.Wait()
		unackedErrs = errs

	case CrashMidCheckpoint:
		rt.Crash()
		// Death mid-checkpoint: a half-written checkpoint.tmp that rename
		// never promoted, plus a torn frame at the newest segment's tail.
		if err := os.WriteFile(filepath.Join(p.Dir, "checkpoint.tmp"), []byte("torn checkpoint garbage"), 0o644); err != nil {
			return rep, err
		}
		if seg := newestSegment(p.Dir); seg != "" {
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return rep, err
			}
			if _, err := f.Write([]byte{0x17, 0x2a, 0x00, 0xfe, 0x9b}); err != nil {
				f.Close()
				return rep, err
			}
			f.Close()
		}

	default: // CrashPostAck
		rt.Crash()
	}

	// Phase 3: reopen and verify.
	rep.TailBytes = journalTailBytes(p.Dir)
	begin := time.Now()
	rec, err := runtime.NewSim(cfg, device.Plugs(p.Devices))
	rep.RecoveryTime = time.Since(begin)
	if err != nil {
		return rep, fmt.Errorf("harness: drill recovery: %w", err)
	}
	defer rec.Close()

	results := rec.Results()
	rep.Recovered = len(results)
	byID := make(map[routine.ID]visibility.Result, len(results))
	for _, res := range results {
		byID[res.ID] = res
	}

	// Acknowledged ⇒ recovered with the identical outcome.
	for _, want := range ackedResults {
		have, ok := byID[want.ID]
		if !ok {
			rep.Violations = append(rep.Violations, Violation{"lost-acked",
				fmt.Sprintf("acknowledged routine %d missing after recovery", want.ID)})
			continue
		}
		if have.Status != want.Status || have.Executed != want.Executed ||
			!have.Finished.Equal(want.Finished) || have.AbortReason != want.AbortReason {
			rep.Violations = append(rep.Violations, Violation{"acked-diverged",
				fmt.Sprintf("routine %d recovered as {%v exec=%d fin=%v %q}, acknowledged {%v exec=%d fin=%v %q}",
					want.ID, have.Status, have.Executed, have.Finished, have.AbortReason,
					want.Status, want.Executed, want.Finished, want.AbortReason)})
		}
	}
	// In flight ⇒ aborted.
	for _, rid := range inFlightIDs {
		have, ok := byID[rid]
		if !ok {
			rep.Violations = append(rep.Violations, Violation{"lost-inflight",
				fmt.Sprintf("accepted in-flight routine %d missing after recovery", rid)})
			continue
		}
		if have.Status != visibility.StatusAborted {
			rep.Violations = append(rep.Violations, Violation{"inflight-not-aborted",
				fmt.Sprintf("in-flight routine %d recovered as %v, want aborted", rid, have.Status)})
		}
	}
	// Unacknowledged ⇒ absent: every parked submission was answered
	// ErrClosed, and the recovered history holds exactly the acknowledged
	// (plus in-flight) routines.
	for i, err := range unackedErrs {
		if err == nil {
			rep.Violations = append(rep.Violations, Violation{"unacked-acked",
				fmt.Sprintf("parked submission %d was acknowledged during the crash", i)})
		} else if !errors.Is(err, runtime.ErrClosed) {
			rep.Violations = append(rep.Violations, Violation{"unacked-error",
				fmt.Sprintf("parked submission %d failed with %v, want ErrClosed", i, err)})
		}
	}
	if want := len(ackedResults) + len(inFlightIDs); len(results) != want {
		rep.Violations = append(rep.Violations, Violation{"recovered-count",
			fmt.Sprintf("recovered %d results, want %d", len(results), want)})
	}
	if n := rec.PendingCount(); n != 0 {
		rep.Violations = append(rep.Violations, Violation{"pending-after-recovery",
			fmt.Sprintf("%d routines still pending after recovery", n)})
	}
	// Committed states: aborted in-flight routines rolled back, so the
	// recovered committed view matches the acknowledged one exactly.
	recStates := rec.CommittedStates()
	for d, s := range ackedStates {
		if recStates[d] != s {
			rep.Violations = append(rep.Violations, Violation{"state-diverged",
				fmt.Sprintf("committed state of %s = %q after recovery, acknowledged %q", d, recStates[d], s)})
		}
	}
	if !rec.Durable() {
		rep.Violations = append(rep.Violations, Violation{"not-durable",
			fmt.Sprintf("recovered home reports journal error: %v", rec.JournalError())})
	}
	return rep, nil
}

// newestSegment returns the path of the highest-numbered journal segment.
func newestSegment(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	newest := ""
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		return ""
	}
	return filepath.Join(dir, newest)
}

// Parameterized kill/recover drills: crash a journaled home runtime at a
// chosen instant — after acknowledgements, with routines in flight, mid
// mailbox batch, or mid checkpoint write — reopen the same data directory,
// and check the durability contract of the write-ahead journal:
// acknowledged ⇒ recovered identically, in flight ⇒ aborted with rollback,
// unacknowledged ⇒ absent. Each drill also measures recovery time against
// the journal tail it had to scan.
//
// Drills run under any durability tier (DrillParams.Journal.Mode). Sync and
// group mode assert the full contract above — group drills own the shared
// writer the way a hub process would, abandon it at the crash and reopen a
// fresh one (fresh epoch) for recovery. Async mode acknowledges ahead of the
// disk, so its contract is weaker and the drill checks exactly that: after
// the crash every segment is truncated to its last fsync'd offset (the bytes
// an OS crash would really keep), and recovery must yield a dense prefix of
// the acknowledged history — identical where present, never reordered, with
// the lost suffix bounded by the async window. Async drills support the
// post-ack crash point only.
package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"safehome/internal/device"
	"safehome/internal/journal"
	"safehome/internal/routine"
	"safehome/internal/runtime"
	"safehome/internal/stats"
	"safehome/internal/visibility"
)

// CrashPoint selects the instant a drill kills the home.
type CrashPoint int

const (
	// CrashPostAck crashes after every submitted routine committed and was
	// acknowledged — the pure "nothing may be lost" case.
	CrashPostAck CrashPoint = iota
	// CrashInFlight crashes with long routines accepted (acknowledged as
	// submitted) but still executing — they must recover as aborted.
	CrashInFlight
	// CrashMidBatch crashes with submissions parked in the mailbox behind a
	// suspended loop — never acknowledged, so they must not recover.
	CrashMidBatch
	// CrashMidCheckpoint crashes post-ack and additionally simulates death
	// midway through a checkpoint rewrite (a garbage checkpoint.tmp) plus a
	// torn frame at the newest segment's tail; recovery must ignore both.
	CrashMidCheckpoint
	// CrashPanic kills the home with a software fault instead of a process
	// kill: a panic injected into the loop goroutine, with long routines
	// still executing. The runtime must isolate the panic (poison the home,
	// record the panic error, release the journal) and recovery must see
	// exactly the crash contract — acked intact, in flight aborted.
	CrashPanic
	// CrashMidFreeze kills the process in hibernation's dangerous window:
	// the freeze's final checkpoint landed (Freeze returned) but the frozen
	// marker was never published and the slot never unloaded. The directory
	// then holds journal state with no marker — the next boot must treat
	// the home as crashed-live and recover it exactly, never claim it
	// frozen.
	CrashMidFreeze
	// CrashPostFreeze kills the process right after a clean hibernation
	// (final checkpoint and frozen marker both durable). Recovery is the
	// wake path: the marker must be present and faithful, the waker removes
	// it before rebuilding, and the woken home must hold every acknowledged
	// result and state exactly.
	CrashPostFreeze
)

func (p CrashPoint) String() string {
	switch p {
	case CrashPostAck:
		return "post-ack"
	case CrashInFlight:
		return "in-flight"
	case CrashMidBatch:
		return "mid-batch"
	case CrashMidCheckpoint:
		return "mid-checkpoint"
	case CrashPanic:
		return "crash-panic"
	case CrashMidFreeze:
		return "mid-freeze"
	case CrashPostFreeze:
		return "post-freeze"
	default:
		return fmt.Sprintf("crash-point(%d)", int(p))
	}
}

// DrillParams configures one kill/recover drill.
type DrillParams struct {
	// Dir is the journal data directory (required; use a fresh temp dir).
	Dir string
	// Point selects the crash instant.
	Point CrashPoint
	// Acked is the number of routines driven to commit before the crash
	// (default 8).
	Acked int
	// InFlight is the number of long routines left executing at the crash
	// (CrashInFlight only; default 2).
	InFlight int
	// Unacked is the number of submissions parked in the mailbox at the
	// crash (CrashMidBatch only; default 4).
	Unacked int
	// Devices is the fleet size (default 16).
	Devices int
	// Scheduler is the EV scheduling policy (default TL).
	Scheduler visibility.SchedulerKind
	// Journal tunes segment rotation, checkpoint cadence and the durability
	// tier (Journal.Mode: sync, group or async); the zero value uses the
	// journal package defaults with sync durability. In group mode the
	// drill owns the shared writer; in async mode only CrashPostAck is
	// supported and the drill verifies the bounded-loss contract instead of
	// exact recovery.
	Journal journal.Options
	// Seed drives the generated routines.
	Seed int64
}

func (p DrillParams) normalized() DrillParams {
	if p.Acked <= 0 {
		p.Acked = 8
	}
	if p.InFlight <= 0 {
		p.InFlight = 2
	}
	if p.Unacked <= 0 {
		p.Unacked = 4
	}
	if p.Devices <= 0 {
		p.Devices = 16
	}
	return p
}

// DrillReport is one drill's outcome: what the home held at the crash, what
// recovery cost, and any contract violations.
type DrillReport struct {
	Point    CrashPoint
	Acked    int
	InFlight int
	Unacked  int
	// TailBytes is the total size of the journal segments recovery scanned.
	TailBytes int64
	// RecoveryTime is the wall time of reopening the home from the journal.
	RecoveryTime time.Duration
	// Recovered is the number of results present after recovery.
	Recovered int
	// LostBytes is how much acknowledged journal tail the simulated OS crash
	// discarded (async mode only; must stay within the async window).
	LostBytes int64
	// Violations lists durability-contract breaches (empty = drill passed).
	Violations []Violation
}

func (r DrillReport) String() string {
	return fmt.Sprintf("%-14s acked=%-3d inflight=%-2d unacked=%-2d tail=%-8d recovery=%-12v violations=%d",
		r.Point, r.Acked, r.InFlight, r.Unacked, r.TailBytes, r.RecoveryTime, len(r.Violations))
}

// drillRoutine builds a short routine over the drill fleet.
func drillRoutine(rng *stats.RNG, devices int, name string, dur time.Duration) *routine.Routine {
	r := routine.New(name)
	n := 1 + rng.Intn(3)
	for c := 0; c < n; c++ {
		target := device.On
		if rng.Bool(0.5) {
			target = device.Off
		}
		r.Commands = append(r.Commands, routine.Command{
			Device:   device.ID(fmt.Sprintf("plug-%d", rng.Intn(devices))),
			Target:   target,
			Duration: dur,
		})
	}
	return r
}

// pumpDry pumps a paced-clock runtime far into the future until no routine
// is pending (or the wall-clock deadline passes).
func pumpDry(rt *runtime.HomeRuntime, deadline time.Time) error {
	for rt.PendingCount() > 0 {
		rt.PumpIfDue(time.Now().Add(24 * time.Hour))
		if time.Now().After(deadline) {
			return errors.New("harness: drill routines never finished under pumping")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// segmentFiles lists every journal segment under dir: per-home wal-*.seg
// files in dir itself plus shared log-*.seg files anywhere under dir/wal.
// The returned paths sort ascending, which for both layouts is append order
// (zero-padded sequence numbers; epochs sort after the ones they succeed).
func segmentFiles(dir string) []string {
	var segs []string
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
				segs = append(segs, filepath.Join(dir, e.Name()))
			}
		}
	}
	_ = filepath.WalkDir(filepath.Join(dir, "wal"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), "log-") && strings.HasSuffix(d.Name(), ".seg") {
			segs = append(segs, path)
		}
		return nil
	})
	sort.Strings(segs)
	return segs
}

// journalTailBytes sums the sizes of the journal's segment files (both the
// per-home and the shared-log layout).
func journalTailBytes(dir string) int64 {
	var total int64
	for _, path := range segmentFiles(dir) {
		if info, err := os.Stat(path); err == nil {
			total += info.Size()
		}
	}
	return total
}

// truncateUnsynced simulates the OS view after a machine crash in async
// mode: every segment keeps exactly the bytes covered by its last fsync
// (segments never synced keep nothing). Returns how many bytes were cut.
func truncateUnsynced(dir string, synced map[string]int64) (int64, error) {
	var lost int64
	for _, path := range segmentFiles(dir) {
		info, err := os.Stat(path)
		if err != nil {
			return lost, err
		}
		keep := synced[path]
		if info.Size() <= keep {
			continue
		}
		if err := os.Truncate(path, keep); err != nil {
			return lost, err
		}
		lost += info.Size() - keep
	}
	return lost, nil
}

// RunDrill executes one kill/recover drill and verifies the durability
// contract on the recovered home.
func RunDrill(p DrillParams) (DrillReport, error) {
	p = p.normalized()
	if p.Dir == "" {
		return DrillReport{}, errors.New("harness: drill needs a data dir")
	}
	mode := journal.ResolveMode(p.Journal, journal.ModeSync)
	if mode == journal.ModeAsync && p.Point != CrashPostAck {
		return DrillReport{}, fmt.Errorf("harness: async drills support the post-ack crash point only, not %v", p.Point)
	}
	rng := stats.NewRNG(p.Seed)

	jopts := p.Journal
	jopts.Mode = mode

	// Async: record each segment's last fsync'd offset so the crash below can
	// cut the files back to what an OS crash would really have kept.
	var syncMu sync.Mutex
	syncedBytes := make(map[string]int64)
	if mode == journal.ModeAsync {
		jopts.OnSync = func(path string, n int64) {
			syncMu.Lock()
			syncedBytes[path] = n
			syncMu.Unlock()
		}
	}

	// Group: the drill plays the hub process — it owns the shared writer the
	// runtime attaches to, abandons it at the crash (no final sync: only
	// fsync-covered bytes survive a kill), and opens a fresh one (fresh
	// epoch) for recovery.
	openWriter := func() (*journal.GroupWriter, error) {
		ws, err := journal.OpenWriters(filepath.Join(p.Dir, "wal"), 1,
			journal.WriterOptions{SegmentBytes: p.Journal.SegmentBytes})
		if err != nil {
			return nil, fmt.Errorf("harness: drill group writer: %w", err)
		}
		return ws[0], nil
	}
	if mode == journal.ModeGroup {
		w, err := openWriter()
		if err != nil {
			return DrillReport{}, err
		}
		jopts.Writer = w
	}

	cfg := runtime.Config{
		ID:        "drill",
		Clock:     runtime.ClockPaced,
		Model:     visibility.EV,
		Scheduler: p.Scheduler,
		EventLog:  256,
		DataDir:   p.Dir,
		Journal:   jopts,
	}
	reg := device.Plugs(p.Devices)
	rt, err := runtime.NewSim(cfg, reg)
	if err != nil {
		if jopts.Writer != nil {
			jopts.Writer.Abandon()
		}
		return DrillReport{}, err
	}
	crash := func() {
		rt.Crash()
		if jopts.Writer != nil {
			jopts.Writer.Abandon()
		}
	}

	rep := DrillReport{Point: p.Point, Acked: p.Acked}

	// Phase 1 (all points): commit and acknowledge a batch of short routines.
	for i := 0; i < p.Acked; i++ {
		r := drillRoutine(rng, p.Devices, fmt.Sprintf("acked-%03d", i), time.Duration(1+rng.Intn(20))*time.Second)
		if _, err := rt.Submit(r); err != nil {
			return rep, fmt.Errorf("harness: drill submit: %w", err)
		}
	}
	if err := pumpDry(rt, time.Now().Add(10*time.Second)); err != nil {
		return rep, err
	}
	ackedResults := rt.Results()
	ackedStates := rt.CommittedStates()

	// Phase 2: put the home in the crash-point state.
	var inFlightIDs []routine.ID
	var unackedErrs []error
	switch p.Point {
	case CrashInFlight:
		rep.InFlight = p.InFlight
		for i := 0; i < p.InFlight; i++ {
			r := drillRoutine(rng, p.Devices, fmt.Sprintf("inflight-%02d", i), time.Hour)
			rid, err := rt.Submit(r)
			if err != nil {
				return rep, fmt.Errorf("harness: drill in-flight submit: %w", err)
			}
			inFlightIDs = append(inFlightIDs, rid)
		}
		// A small pump starts execution without finishing the hour-long
		// holds: the crash lands mid-routine, not merely mid-queue.
		rt.PumpIfDue(time.Now().Add(time.Second))
		crash()

	case CrashPanic:
		rep.InFlight = p.InFlight
		for i := 0; i < p.InFlight; i++ {
			r := drillRoutine(rng, p.Devices, fmt.Sprintf("inflight-%02d", i), time.Hour)
			rid, err := rt.Submit(r)
			if err != nil {
				return rep, fmt.Errorf("harness: drill in-flight submit: %w", err)
			}
			inFlightIDs = append(inFlightIDs, rid)
		}
		rt.PumpIfDue(time.Now().Add(time.Second))
		// Die by software fault instead of process kill: the panic lands in
		// the loop goroutine, whose recovery must poison the home rather
		// than unwind the process.
		rt.PostTimer(func() { panic("harness: injected fault") })
		for deadline := time.Now().Add(5 * time.Second); !rt.Poisoned(); {
			if time.Now().After(deadline) {
				return rep, errors.New("harness: injected panic never poisoned the home")
			}
			time.Sleep(time.Millisecond)
		}
		if rt.PanicError() == nil {
			rep.Violations = append(rep.Violations, Violation{"panic-unrecorded",
				"poisoned home records no panic error"})
		}
		// Close joins the already-dead loop; the poison teardown released the
		// journal, so recovery below reopens the same directory.
		rt.Close()
		if jopts.Writer != nil {
			jopts.Writer.Abandon()
		}

	case CrashMidBatch:
		rep.Unacked = p.Unacked
		resume, err := rt.Suspend()
		if err != nil {
			return rep, fmt.Errorf("harness: drill suspend: %w", err)
		}
		// With the loop parked, the submissions below queue in the mailbox
		// and block; the crash must answer every one of them ErrClosed.
		var wg sync.WaitGroup
		errs := make([]error, p.Unacked)
		for i := 0; i < p.Unacked; i++ {
			r := drillRoutine(rng, p.Devices, fmt.Sprintf("unacked-%02d", i), time.Second)
			wg.Add(1)
			go func(i int, r *routine.Routine) {
				defer wg.Done()
				_, errs[i] = rt.Submit(r)
			}(i, r)
		}
		for deadline := time.Now().Add(5 * time.Second); rt.Mailbox().Depth < p.Unacked; {
			if time.Now().After(deadline) {
				resume()
				return rep, errors.New("harness: drill submissions never queued")
			}
			time.Sleep(time.Millisecond)
		}
		crashDone := make(chan struct{})
		go func() { crash(); close(crashDone) }()
		// Crash closes the mailbox immediately but blocks until the loop
		// exits, which needs the resume below.
		time.Sleep(10 * time.Millisecond)
		resume()
		<-crashDone
		wg.Wait()
		unackedErrs = errs

	case CrashMidCheckpoint:
		crash()
		// Death mid-checkpoint: a half-written checkpoint.tmp that rename
		// never promoted, plus a torn frame at the newest segment's tail.
		if err := os.WriteFile(filepath.Join(p.Dir, "checkpoint.tmp"), []byte("torn checkpoint garbage"), 0o644); err != nil {
			return rep, err
		}
		if seg := newestSegment(p.Dir); seg != "" {
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				return rep, err
			}
			if _, err := f.Write([]byte{0x17, 0x2a, 0x00, 0xfe, 0x9b}); err != nil {
				f.Close()
				return rep, err
			}
			f.Close()
		}

	case CrashMidFreeze, CrashPostFreeze:
		// Freeze runs the graceful close — lineage compaction, trigger
		// retirement, final flush and checkpoint — and returns once the
		// checkpoint is durable. The "crash" is the process dying in the
		// window after it: before the marker publish (mid-freeze) or after
		// (post-freeze, where recovery is the wake path).
		fr, err := rt.Freeze()
		if err != nil {
			return rep, fmt.Errorf("harness: drill freeze: %w", err)
		}
		if p.Point == CrashPostFreeze {
			if err := runtime.WriteFrozenRecord(fr); err != nil {
				return rep, fmt.Errorf("harness: drill frozen marker: %w", err)
			}
		}
		if jopts.Writer != nil {
			jopts.Writer.Abandon()
		}

	default: // CrashPostAck
		crash()
	}

	// Async: the home acknowledged ahead of the disk; simulate the machine
	// crash by discarding every byte the kernel had not yet fsync'd.
	if mode == journal.ModeAsync {
		lost, err := truncateUnsynced(p.Dir, syncedBytes)
		if err != nil {
			return rep, fmt.Errorf("harness: drill async truncate: %w", err)
		}
		rep.LostBytes = lost
		window := jopts.AsyncWindowBytes
		if window == 0 {
			window = journal.DefaultAsyncWindowBytes
		}
		if window >= 0 && lost > window {
			rep.Violations = append(rep.Violations, Violation{"async-over-window",
				fmt.Sprintf("crash lost %d acknowledged bytes, async window allows %d", lost, window)})
		}
	}

	// Freeze points: check the marker discipline before reopening. A crash
	// before the marker publish must leave no frozen claim (the home is
	// crashed-live); a crash after must leave a faithful marker, which the
	// wake path consumes before rebuilding — so a crash mid-wake degrades
	// to an ordinary live recovery, never a stale frozen claim.
	switch p.Point {
	case CrashMidFreeze:
		if fr, err := runtime.ReadFrozenRecord(p.Dir); err != nil {
			return rep, fmt.Errorf("harness: drill frozen marker read: %w", err)
		} else if fr != nil {
			rep.Violations = append(rep.Violations, Violation{"stale-frozen-marker",
				"crash before the marker publish left a frozen claim over a live-crashed home"})
			_ = runtime.RemoveFrozenRecord(p.Dir)
		}
	case CrashPostFreeze:
		fr, err := runtime.ReadFrozenRecord(p.Dir)
		if err != nil {
			return rep, fmt.Errorf("harness: drill frozen marker read: %w", err)
		}
		if fr == nil {
			rep.Violations = append(rep.Violations, Violation{"frozen-marker-lost",
				"clean hibernation left no durable frozen marker"})
		} else {
			if fr.Routines != len(ackedResults) {
				rep.Violations = append(rep.Violations, Violation{"frozen-record-diverged",
					fmt.Sprintf("frozen record reports %d routines, %d were acknowledged", fr.Routines, len(ackedResults))})
			}
			if err := runtime.RemoveFrozenRecord(p.Dir); err != nil {
				return rep, fmt.Errorf("harness: drill wake marker removal: %w", err)
			}
		}
	}

	// Phase 3: reopen and verify. A group-mode restart means a new process
	// image: a fresh shared writer (fresh epoch) that recovery tails the old
	// epochs through. Its Close is deferred before the runtime's so it runs
	// after — homes detach before the writer goes away.
	if mode == journal.ModeGroup {
		w, err := openWriter()
		if err != nil {
			return rep, err
		}
		defer w.Close()
		cfg.Journal.Writer = w
	}
	rep.TailBytes = journalTailBytes(p.Dir)
	begin := time.Now()
	rec, err := runtime.NewSim(cfg, device.Plugs(p.Devices))
	rep.RecoveryTime = time.Since(begin)
	if err != nil {
		return rep, fmt.Errorf("harness: drill recovery: %w", err)
	}
	defer rec.Close()

	results := rec.Results()
	rep.Recovered = len(results)
	byID := make(map[routine.ID]visibility.Result, len(results))
	for _, res := range results {
		byID[res.ID] = res
	}

	// Acknowledged ⇒ recovered with the identical outcome. Async weakens this
	// to: the recovered history is a dense prefix of the acknowledged one —
	// the crash may cut the tail (within the window, checked above) but may
	// never lose a routine that a later recovered one depends on, reorder, or
	// rewrite an outcome.
	if mode == journal.ModeAsync {
		acked := append([]visibility.Result(nil), ackedResults...)
		sort.Slice(acked, func(i, j int) bool { return acked[i].ID < acked[j].ID })
		recd := append([]visibility.Result(nil), results...)
		sort.Slice(recd, func(i, j int) bool { return recd[i].ID < recd[j].ID })
		if len(recd) > len(acked) {
			rep.Violations = append(rep.Violations, Violation{"async-not-prefix",
				fmt.Sprintf("recovered %d results, only %d were acknowledged", len(recd), len(acked))})
		} else {
			for i, have := range recd {
				want := acked[i]
				if have.ID != want.ID {
					rep.Violations = append(rep.Violations, Violation{"async-not-prefix",
						fmt.Sprintf("recovered history has routine %d at position %d, acknowledged order has %d — a hole or reorder", have.ID, i, want.ID)})
					break
				}
				if have.Status != want.Status || have.Executed != want.Executed ||
					!have.Finished.Equal(want.Finished) || have.AbortReason != want.AbortReason {
					rep.Violations = append(rep.Violations, Violation{"acked-diverged",
						fmt.Sprintf("routine %d recovered as {%v exec=%d fin=%v %q}, acknowledged {%v exec=%d fin=%v %q}",
							want.ID, have.Status, have.Executed, have.Finished, have.AbortReason,
							want.Status, want.Executed, want.Finished, want.AbortReason)})
				}
			}
		}
	} else {
		for _, want := range ackedResults {
			have, ok := byID[want.ID]
			if !ok {
				rep.Violations = append(rep.Violations, Violation{"lost-acked",
					fmt.Sprintf("acknowledged routine %d missing after recovery", want.ID)})
				continue
			}
			if have.Status != want.Status || have.Executed != want.Executed ||
				!have.Finished.Equal(want.Finished) || have.AbortReason != want.AbortReason {
				rep.Violations = append(rep.Violations, Violation{"acked-diverged",
					fmt.Sprintf("routine %d recovered as {%v exec=%d fin=%v %q}, acknowledged {%v exec=%d fin=%v %q}",
						want.ID, have.Status, have.Executed, have.Finished, have.AbortReason,
						want.Status, want.Executed, want.Finished, want.AbortReason)})
			}
		}
	}
	// In flight ⇒ aborted.
	for _, rid := range inFlightIDs {
		have, ok := byID[rid]
		if !ok {
			rep.Violations = append(rep.Violations, Violation{"lost-inflight",
				fmt.Sprintf("accepted in-flight routine %d missing after recovery", rid)})
			continue
		}
		if have.Status != visibility.StatusAborted {
			rep.Violations = append(rep.Violations, Violation{"inflight-not-aborted",
				fmt.Sprintf("in-flight routine %d recovered as %v, want aborted", rid, have.Status)})
		}
	}
	// Unacknowledged ⇒ absent: every parked submission was answered
	// ErrClosed, and the recovered history holds exactly the acknowledged
	// (plus in-flight) routines.
	for i, err := range unackedErrs {
		if err == nil {
			rep.Violations = append(rep.Violations, Violation{"unacked-acked",
				fmt.Sprintf("parked submission %d was acknowledged during the crash", i)})
		} else if !errors.Is(err, runtime.ErrClosed) {
			rep.Violations = append(rep.Violations, Violation{"unacked-error",
				fmt.Sprintf("parked submission %d failed with %v, want ErrClosed", i, err)})
		}
	}
	// Async recovery legitimately holds a shorter history; the prefix check
	// above already pinned its exact shape.
	if want := len(ackedResults) + len(inFlightIDs); mode != journal.ModeAsync && len(results) != want {
		rep.Violations = append(rep.Violations, Violation{"recovered-count",
			fmt.Sprintf("recovered %d results, want %d", len(results), want)})
	}
	if n := rec.PendingCount(); n != 0 {
		rep.Violations = append(rep.Violations, Violation{"pending-after-recovery",
			fmt.Sprintf("%d routines still pending after recovery", n)})
	}
	// Committed states: aborted in-flight routines rolled back, so the
	// recovered committed view matches the acknowledged one exactly. With an
	// async tail cut the states reflect the recovered prefix, so the exact
	// comparison only applies when nothing was lost.
	if mode != journal.ModeAsync || len(results) == len(ackedResults) {
		recStates := rec.CommittedStates()
		for d, s := range ackedStates {
			if recStates[d] != s {
				rep.Violations = append(rep.Violations, Violation{"state-diverged",
					fmt.Sprintf("committed state of %s = %q after recovery, acknowledged %q", d, recStates[d], s)})
			}
		}
	}
	if !rec.Durable() {
		rep.Violations = append(rep.Violations, Violation{"not-durable",
			fmt.Sprintf("recovered home reports journal error: %v", rec.JournalError())})
	}
	return rep, nil
}

// newestSegment returns the path of the newest journal segment in either
// layout — the last file in append order, where a torn tail would land.
func newestSegment(dir string) string {
	segs := segmentFiles(dir)
	if len(segs) == 0 {
		return ""
	}
	return segs[len(segs)-1]
}

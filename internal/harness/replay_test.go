package harness

import (
	"strings"
	"testing"
	"time"

	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// TestReplayByteIdentical records generated workloads (with per-command
// jitter, so the seed matters) and asserts a fresh home reproduces the
// visibility event stream byte for byte under every scheduler.
func TestReplayByteIdentical(t *testing.T) {
	p := workload.DefaultGenParams()
	p.Devices = 40
	p.Routines = 60
	p.Seed = 90
	spec := workload.Generate(p)
	spec.JitterMax = 120 * time.Millisecond
	for _, sched := range DefaultSchedulers() {
		opts := visibility.DefaultOptions(visibility.EV)
		opts.Scheduler = sched
		tr, _ := Record(spec, opts, p.Seed)
		if len(tr.Events) == 0 {
			t.Fatalf("%v: recorded no events", sched)
		}
		if err := CheckReplay(tr); err != nil {
			t.Errorf("%v: %v", sched, err)
		}
	}
}

// TestReplayAfterEncodeDecode pushes the trace through its file format first:
// record -> serialize -> parse -> replay must still be byte-identical.
func TestReplayAfterEncodeDecode(t *testing.T) {
	p := workload.DefaultGenParams()
	p.Devices = 30
	p.Routines = 40
	p.Seed = 91
	p.FailedPct = 10
	spec := workload.Generate(p)
	opts := visibility.DefaultOptions(visibility.EV)
	tr, _ := Record(spec, opts, p.Seed)
	b, err := workload.EncodeTrace(tr)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	parsed, err := workload.DecodeTrace(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := CheckReplay(parsed); err != nil {
		t.Errorf("replay of round-tripped trace: %v", err)
	}
}

// TestReplayRestoresOptions records under non-default controller knobs and
// checks replay restores them rather than silently reverting to defaults.
func TestReplayRestoresOptions(t *testing.T) {
	spec := workload.Figure2()
	opts := visibility.DefaultOptions(visibility.EV)
	opts.Scheduler = visibility.SchedJiT
	opts.PreLease = false
	opts.DefaultShort = 3 * time.Second
	tr, _ := Record(spec, opts, 5)
	if tr.Options.PreLease == nil || *tr.Options.PreLease {
		t.Fatalf("trace did not record PreLease=false: %+v", tr.Options)
	}
	if err := CheckReplay(tr); err != nil {
		t.Errorf("replay under recorded options diverged: %v", err)
	}
}

// TestCheckReplayDetectsTamper flips one recorded event and expects the
// byte-identity oracle to locate the divergence.
func TestCheckReplayDetectsTamper(t *testing.T) {
	spec := workload.Figure2()
	tr, _ := Record(spec, visibility.DefaultOptions(visibility.EV), 1)
	if len(tr.Events) < 3 {
		t.Fatalf("recorded only %d events", len(tr.Events))
	}
	tr.Events[2].Detail = "tampered"
	err := CheckReplay(tr)
	if err == nil {
		t.Fatal("tampered trace replayed as byte-identical")
	}
	if !strings.Contains(err.Error(), "event 3") {
		t.Errorf("divergence not located at event 3: %v", err)
	}
}

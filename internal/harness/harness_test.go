package harness

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/routine"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

func twoRoutineSpec() workload.Spec {
	return workload.Spec{
		Name: "two",
		Devices: []device.Info{
			{ID: "a", Kind: device.KindPlug, Initial: device.Off},
			{ID: "b", Kind: device.KindPlug, Initial: device.Off},
		},
		Submissions: []workload.Submission{
			{At: 0, Routine: routine.New("r1",
				routine.Command{Device: "a", Target: device.On},
				routine.Command{Device: "b", Target: device.On})},
			{At: 50 * time.Millisecond, Routine: routine.New("r2",
				routine.Command{Device: "b", Target: device.Off})},
		},
	}
}

func TestRunSingleTrial(t *testing.T) {
	for _, m := range visibility.Models {
		t.Run(m.String(), func(t *testing.T) {
			res := Run(twoRoutineSpec(), visibility.DefaultOptions(m), 1)
			if res.Report.Routines != 2 {
				t.Fatalf("routines = %d, want 2", res.Report.Routines)
			}
			if res.Report.Committed != 2 {
				t.Fatalf("committed = %d, want 2 (no failures injected)", res.Report.Committed)
			}
			if !res.Report.FinalCongruent {
				t.Errorf("end state should be serially equivalent: %v", res.EndState)
			}
			if res.Elapsed <= 0 {
				t.Errorf("elapsed = %v, want > 0", res.Elapsed)
			}
			if res.EndState["a"] != device.On {
				t.Errorf("device a = %q, want ON", res.EndState["a"])
			}
			if len(res.Report.Latencies) != 2 {
				t.Errorf("latencies = %v, want 2 entries", res.Report.Latencies)
			}
		})
	}
}

func TestRunWithFailureInjection(t *testing.T) {
	spec := twoRoutineSpec()
	spec.Failures = []workload.FailureEvent{{At: 10 * time.Millisecond, Device: "b"}}
	res := Run(spec, visibility.DefaultOptions(EVOptionsForTest().Model), 1)
	// r1's must command on b fails -> abort; r2's only command on b fails -> abort.
	if res.Report.Aborted == 0 {
		t.Errorf("expected aborts when device b is failed, got %+v", res.Report)
	}
	if !res.Report.FinalCongruent {
		t.Errorf("end state must stay serially equivalent w.r.t. committed routines")
	}
}

// EVOptionsForTest returns EV defaults (helper keeps the test table tidy).
func EVOptionsForTest() visibility.Options { return visibility.DefaultOptions(visibility.EV) }

func TestRunWithRestartInjection(t *testing.T) {
	spec := twoRoutineSpec()
	spec.Failures = []workload.FailureEvent{
		{At: 5 * time.Millisecond, Device: "b"},
		{At: 10 * time.Millisecond, Device: "b", Restart: true},
	}
	// Submissions at 0 and 50ms: by the time either routine touches b
	// (>=100ms), it has recovered, so everything commits.
	res := Run(spec, visibility.DefaultOptions(visibility.EV), 1)
	if res.Report.Committed != 2 {
		t.Errorf("committed = %d, want 2 after restart", res.Report.Committed)
	}
}

func TestRunTrialsAggregates(t *testing.T) {
	gen := func(seed int64) workload.Spec {
		p := workload.DefaultMicroParams()
		p.Routines = 10
		p.Devices = 8
		p.LongPct = 0
		p.ShortMean = time.Second
		p.Seed = seed
		return workload.Micro(p)
	}
	agg := RunTrials(gen, visibility.DefaultOptions(visibility.EV), 5, 1)
	if agg.Trials != 5 {
		t.Fatalf("trials = %d, want 5", agg.Trials)
	}
	if agg.Routines != 50 {
		t.Fatalf("routines = %d, want 50", agg.Routines)
	}
	if agg.Committed != 50 {
		t.Fatalf("committed = %d, want 50 (no failures)", agg.Committed)
	}
	if agg.FinalIncongruence != 0 {
		t.Errorf("EV final incongruence = %v, want 0", agg.FinalIncongruence)
	}
	if agg.LatencyMS.Count != 50 {
		t.Errorf("latency samples = %d, want 50", agg.LatencyMS.Count)
	}
}

func TestRunTrialsZeroTrialsClamped(t *testing.T) {
	agg := RunTrials(Fixed(twoRoutineSpec()), visibility.DefaultOptions(visibility.WV), 0, 1)
	if agg.Trials != 1 {
		t.Errorf("trials = %d, want clamped to 1", agg.Trials)
	}
}

func TestCompareRunsEveryConfig(t *testing.T) {
	aggs := Compare(Fixed(twoRoutineSpec()), StandardConfigs(), 2, 1)
	if len(aggs) != 4 {
		t.Fatalf("aggregates = %d, want 4", len(aggs))
	}
	labels := map[string]bool{}
	for _, a := range aggs {
		labels[a.Label()] = true
		if a.Trials != 2 {
			t.Errorf("%s trials = %d, want 2", a.Label(), a.Trials)
		}
	}
	for _, want := range []string{"WV", "GSV", "PSV", "EV(TL)"} {
		if !labels[want] {
			t.Errorf("missing aggregate for %s: %v", want, labels)
		}
	}
}

func TestConfigSetShapes(t *testing.T) {
	if got := len(StandardConfigs()); got != 4 {
		t.Errorf("StandardConfigs = %d, want 4", got)
	}
	if got := len(FailureConfigs()); got != 4 {
		t.Errorf("FailureConfigs = %d, want 4", got)
	}
	if got := len(SchedulerConfigs()); got != 3 {
		t.Errorf("SchedulerConfigs = %d, want 3", got)
	}
	if got := len(LeaseConfigs()); got != 4 {
		t.Errorf("LeaseConfigs = %d, want 4", got)
	}
	for _, cfg := range LeaseConfigs() {
		if cfg.Options.Model != visibility.EV {
			t.Errorf("lease config %s model = %v, want EV", cfg.Label, cfg.Options.Model)
		}
	}
}

func TestObserverChainingPreserved(t *testing.T) {
	var seen int
	opts := visibility.DefaultOptions(visibility.EV)
	opts.Observer = func(visibility.Event) { seen++ }
	Run(twoRoutineSpec(), opts, 1)
	if seen == 0 {
		t.Error("caller-provided observer should still receive events")
	}
}

func TestMorningScenarioUnderAllModels(t *testing.T) {
	// A smoke test of the full Morning scenario under every standard model:
	// everything commits (no failures) and end states are serially equivalent.
	gen := func(seed int64) workload.Spec { return workload.Morning(seed) }
	for _, cfg := range StandardConfigs() {
		t.Run(cfg.Label, func(t *testing.T) {
			agg := RunTrials(gen, cfg.Options, 2, 1)
			if agg.Committed != agg.Routines {
				t.Errorf("%s: committed %d of %d routines", cfg.Label, agg.Committed, agg.Routines)
			}
			if cfg.Label != "WV" && agg.FinalIncongruence != 0 {
				t.Errorf("%s: final incongruence = %v, want 0", cfg.Label, agg.FinalIncongruence)
			}
		})
	}
}

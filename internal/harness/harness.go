// Package harness wires a workload specification, a simulated device fleet,
// a visibility-model controller and a metrics recorder into a single
// deterministic trial, and aggregates many trials into the statistics the
// paper's figures report.
package harness

import (
	"time"

	"safehome/internal/congruence"
	"safehome/internal/device"
	"safehome/internal/metrics"
	"safehome/internal/order"
	"safehome/internal/sim"
	"safehome/internal/stats"
	"safehome/internal/visibility"
	"safehome/internal/workload"
)

// TrialResult is the outcome of one simulated run.
type TrialResult struct {
	Report   metrics.Report
	Results  []visibility.Result
	EndState map[device.ID]device.State
	// Serialization is the serially-equivalent order the controller claims
	// for the run (committed routines plus failure/restart events).
	Serialization []order.Node
	// Elapsed is the virtual time between the first submission and the last
	// processed event.
	Elapsed time.Duration
	// Events is the number of simulator events processed (a proxy for work).
	Events int
}

// ControllerFactory builds the controller a trial runs. The production
// factory wraps visibility.New; tests substitute deliberately broken
// controllers to prove the oracles catch them.
type ControllerFactory func(env *visibility.SimEnv, initial map[device.ID]device.State, opts visibility.Options) visibility.Controller

// Run executes one trial of the workload under the given controller options.
// The seed only affects per-command latency jitter (when the spec requests
// it); workload content randomness lives in the workload generators.
func Run(spec workload.Spec, opts visibility.Options, seed int64) TrialResult {
	return RunWith(spec, opts, seed, nil)
}

// RunWith is Run with an explicit controller factory (nil means the real
// visibility controllers).
func RunWith(spec workload.Spec, opts visibility.Options, seed int64, factory ControllerFactory) TrialResult {
	s := sim.NewAtEpoch()
	fleet := device.NewFleet(spec.Registry())
	env := visibility.NewSimEnv(s, fleet)
	if spec.JitterMax > 0 {
		rng := stats.NewRNG(seed)
		env.Jitter = func() time.Duration { return rng.UniformDuration(0, spec.JitterMax) }
	}

	rec := metrics.NewRecorder(opts.DefaultShort)
	prev := opts.Observer
	opts.Observer = func(e visibility.Event) {
		rec.Observe(e)
		if prev != nil {
			prev(e)
		}
	}

	initial := fleet.Snapshot()
	var ctrl visibility.Controller
	if factory != nil {
		ctrl = factory(env, initial, opts)
	} else {
		ctrl = visibility.New(env, initial, opts)
	}

	for _, sub := range spec.Submissions {
		r := sub.Routine
		s.After(sub.At, func() { ctrl.Submit(r) })
	}
	for _, f := range spec.Failures {
		f := f
		s.After(f.At, func() {
			if f.Restart {
				_ = fleet.Restore(f.Device)
				ctrl.NotifyRestart(f.Device)
			} else {
				_ = fleet.Fail(f.Device)
				ctrl.NotifyFailure(f.Device)
			}
		})
	}

	start := s.Now()
	events := s.Run()

	results := ctrl.Results()
	serial := ctrl.Serialization()
	rep := rec.Finalize(opts.Model, opts.Scheduler, results, serial)

	var committed []congruence.Writes
	for _, res := range results {
		if res.Status == visibility.StatusCommitted {
			committed = append(committed, congruence.FromRoutine(res.Routine))
		}
	}
	end := fleet.Snapshot()
	rep.FinalCongruent = congruence.Check(initial, committed, end).Congruent

	return TrialResult{
		Report:        rep,
		Results:       results,
		EndState:      end,
		Serialization: serial,
		Elapsed:       s.Now().Sub(start),
		Events:        events,
	}
}

// Generator produces a (possibly randomized) workload for a trial seed.
type Generator func(seed int64) workload.Spec

// Fixed adapts a constant spec into a Generator.
func Fixed(spec workload.Spec) Generator {
	return func(int64) workload.Spec { return spec }
}

// RunTrials executes `trials` independent runs (seeds baseSeed, baseSeed+1,
// ...) and merges their reports.
func RunTrials(gen Generator, opts visibility.Options, trials int, baseSeed int64) metrics.Aggregate {
	if trials <= 0 {
		trials = 1
	}
	reports := make([]metrics.Report, 0, trials)
	for i := 0; i < trials; i++ {
		seed := baseSeed + int64(i)
		res := Run(gen(seed), opts, seed)
		reports = append(reports, res.Report)
	}
	return metrics.Merge(reports)
}

// Config pairs a human-readable label with controller options; experiments
// sweep over configs.
type Config struct {
	Label   string
	Options visibility.Options
}

// StandardConfigs returns the four models the paper's scenario experiments
// compare (Fig 12): WV, GSV, PSV and EV with Timeline scheduling.
func StandardConfigs() []Config {
	return []Config{
		{Label: "WV", Options: visibility.DefaultOptions(visibility.WV)},
		{Label: "GSV", Options: visibility.DefaultOptions(visibility.GSV)},
		{Label: "PSV", Options: visibility.DefaultOptions(visibility.PSV)},
		{Label: "EV", Options: visibility.DefaultOptions(visibility.EV)},
	}
}

// FailureConfigs returns the models compared in the failure experiments
// (Fig 13): GSV, S-GSV, PSV and EV.
func FailureConfigs() []Config {
	return []Config{
		{Label: "GSV", Options: visibility.DefaultOptions(visibility.GSV)},
		{Label: "S-GSV", Options: visibility.DefaultOptions(visibility.SGSV)},
		{Label: "PSV", Options: visibility.DefaultOptions(visibility.PSV)},
		{Label: "EV", Options: visibility.DefaultOptions(visibility.EV)},
	}
}

// SchedulerConfigs returns EV under each scheduling policy (Fig 14).
func SchedulerConfigs() []Config {
	mk := func(k visibility.SchedulerKind) visibility.Options {
		o := visibility.DefaultOptions(visibility.EV)
		o.Scheduler = k
		return o
	}
	return []Config{
		{Label: "FCFS", Options: mk(visibility.SchedFCFS)},
		{Label: "JiT", Options: mk(visibility.SchedJiT)},
		{Label: "TL", Options: mk(visibility.SchedTL)},
	}
}

// LeaseConfigs returns the lease-ablation configurations of Fig 15a/b: both
// leases on, pre-lease off, post-lease off, both off — all under EV/TL.
func LeaseConfigs() []Config {
	mk := func(pre, post bool) visibility.Options {
		o := visibility.DefaultOptions(visibility.EV)
		o.PreLease = pre
		o.PostLease = post
		return o
	}
	return []Config{
		{Label: "Both-on", Options: mk(true, true)},
		{Label: "Pre-off", Options: mk(false, true)},
		{Label: "Post-off", Options: mk(true, false)},
		{Label: "Both-off", Options: mk(false, false)},
	}
}

// Compare runs every config for the same generator and returns the aggregates
// in config order.
func Compare(gen Generator, configs []Config, trials int, baseSeed int64) []metrics.Aggregate {
	out := make([]metrics.Aggregate, 0, len(configs))
	for _, cfg := range configs {
		out = append(out, RunTrials(gen, cfg.Options, trials, baseSeed))
	}
	return out
}

package harness

import (
	"testing"

	"safehome/internal/journal"
)

// TestDrillFamily runs one drill per crash point and asserts the durability
// contract holds: acknowledged routines recover identically, in-flight
// routines recover aborted, parked submissions are rejected and absent.
func TestDrillFamily(t *testing.T) {
	points := []CrashPoint{CrashPostAck, CrashInFlight, CrashMidBatch, CrashMidCheckpoint, CrashPanic}
	for _, pt := range points {
		pt := pt
		t.Run(pt.String(), func(t *testing.T) {
			t.Parallel()
			rep, err := RunDrill(DrillParams{
				Dir:   t.TempDir(),
				Point: pt,
				Seed:  int64(401 + pt),
			})
			if err != nil {
				t.Fatalf("drill: %v", err)
			}
			t.Logf("drill %v", rep)
			for _, v := range rep.Violations {
				t.Errorf("violation %s: %s", v.Kind, v.Detail)
			}
			if rep.Recovered == 0 {
				t.Errorf("recovered no results")
			}
		})
	}
}

// TestDrillRecoveryVsTail sweeps the acknowledged-batch size with checkpoints
// disabled (huge threshold) so the journal tail recovery must scan grows with
// the batch, and logs recovery time against tail length.
func TestDrillRecoveryVsTail(t *testing.T) {
	sizes := []int{4, 16, 64}
	if testing.Short() {
		sizes = []int{4, 16}
	}
	t.Logf("%-8s %-12s %-12s", "acked", "tail-bytes", "recovery")
	for _, n := range sizes {
		rep, err := RunDrill(DrillParams{
			Dir:     t.TempDir(),
			Point:   CrashPostAck,
			Acked:   n,
			Seed:    int64(500 + n),
			Journal: journal.Options{CheckpointBytes: 1 << 30},
		})
		if err != nil {
			t.Fatalf("drill acked=%d: %v", n, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("acked=%d violation %s: %s", n, v.Kind, v.Detail)
		}
		t.Logf("%-8d %-12d %-12v", rep.Acked, rep.TailBytes, rep.RecoveryTime)
	}
}

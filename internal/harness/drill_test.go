package harness

import (
	"testing"

	"safehome/internal/journal"
)

// TestDrillFamily runs one drill per crash point and asserts the durability
// contract holds: acknowledged routines recover identically, in-flight
// routines recover aborted, parked submissions are rejected and absent.
func TestDrillFamily(t *testing.T) {
	points := []CrashPoint{CrashPostAck, CrashInFlight, CrashMidBatch, CrashMidCheckpoint, CrashPanic, CrashMidFreeze, CrashPostFreeze}
	for _, pt := range points {
		pt := pt
		t.Run(pt.String(), func(t *testing.T) {
			t.Parallel()
			rep, err := RunDrill(DrillParams{
				Dir:   t.TempDir(),
				Point: pt,
				Seed:  int64(401 + pt),
			})
			if err != nil {
				t.Fatalf("drill: %v", err)
			}
			t.Logf("drill %v", rep)
			for _, v := range rep.Violations {
				t.Errorf("violation %s: %s", v.Kind, v.Detail)
			}
			if rep.Recovered == 0 {
				t.Errorf("recovered no results")
			}
		})
	}
}

// TestDrillFamilyGroup reruns the full drill family under group durability:
// commits ride the shared writer's coalesced fsync cycle, the crash abandons
// the writer, and recovery tails the old epoch through a fresh one. The
// contract is the same as sync — acknowledged means durable.
func TestDrillFamilyGroup(t *testing.T) {
	points := []CrashPoint{CrashPostAck, CrashInFlight, CrashMidBatch, CrashMidCheckpoint, CrashPanic, CrashMidFreeze, CrashPostFreeze}
	for _, pt := range points {
		pt := pt
		t.Run(pt.String(), func(t *testing.T) {
			t.Parallel()
			rep, err := RunDrill(DrillParams{
				Dir:     t.TempDir(),
				Point:   pt,
				Seed:    int64(601 + pt),
				Journal: journal.Options{Mode: journal.ModeGroup},
			})
			if err != nil {
				t.Fatalf("drill: %v", err)
			}
			t.Logf("drill %v", rep)
			for _, v := range rep.Violations {
				t.Errorf("violation %s: %s", v.Kind, v.Detail)
			}
			if rep.Recovered == 0 {
				t.Errorf("recovered no results")
			}
		})
	}
}

// TestDrillAsync checks the async tier's weaker contract at both ends of the
// window: a tiny window forces near-sync behavior (little may be lost), an
// unbounded one may cut the whole tail — in both cases recovery must be a
// dense prefix of the acknowledged history and lose no more than the window.
func TestDrillAsync(t *testing.T) {
	for _, tc := range []struct {
		name   string
		window int64
	}{
		{"default-window", 0},
		{"tiny-window", 64},
		{"unbounded", -1},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunDrill(DrillParams{
				Dir:   t.TempDir(),
				Point: CrashPostAck,
				Acked: 16,
				Seed:  701,
				Journal: journal.Options{
					Mode:             journal.ModeAsync,
					AsyncWindowBytes: tc.window,
				},
			})
			if err != nil {
				t.Fatalf("drill: %v", err)
			}
			t.Logf("drill %v lost=%d", rep, rep.LostBytes)
			for _, v := range rep.Violations {
				t.Errorf("violation %s: %s", v.Kind, v.Detail)
			}
		})
	}
}

// TestDrillAsyncRejectsOtherPoints pins the async drill surface: crash points
// that depend on exact recovery are refused rather than reported as bogus
// violations.
func TestDrillAsyncRejectsOtherPoints(t *testing.T) {
	_, err := RunDrill(DrillParams{
		Dir:     t.TempDir(),
		Point:   CrashInFlight,
		Journal: journal.Options{Mode: journal.ModeAsync},
	})
	if err == nil {
		t.Fatal("async in-flight drill unexpectedly accepted")
	}
}

// TestDrillRecoveryVsTail sweeps the acknowledged-batch size with checkpoints
// disabled (huge threshold) so the journal tail recovery must scan grows with
// the batch, and logs recovery time against tail length.
func TestDrillRecoveryVsTail(t *testing.T) {
	sizes := []int{4, 16, 64}
	if testing.Short() {
		sizes = []int{4, 16}
	}
	t.Logf("%-8s %-12s %-12s", "acked", "tail-bytes", "recovery")
	for _, n := range sizes {
		rep, err := RunDrill(DrillParams{
			Dir:     t.TempDir(),
			Point:   CrashPostAck,
			Acked:   n,
			Seed:    int64(500 + n),
			Journal: journal.Options{CheckpointBytes: 1 << 30},
		})
		if err != nil {
			t.Fatalf("drill acked=%d: %v", n, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("acked=%d violation %s: %s", n, v.Kind, v.Detail)
		}
		t.Logf("%-8d %-12d %-12v", rep.Acked, rep.TailBytes, rep.RecoveryTime)
	}
}

package order

import (
	"errors"
	"testing"
	"testing/quick"

	"safehome/internal/routine"
	"safehome/internal/stats"
)

func TestAddEdgeAndPath(t *testing.T) {
	g := NewGraph()
	a, b, c := RoutineNode(1), RoutineNode(2), RoutineNode(3)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if !g.HasPath(a, c) {
		t.Fatal("transitive path a->c missing")
	}
	if g.HasPath(c, a) {
		t.Fatal("reverse path should not exist")
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestCycleRejected(t *testing.T) {
	g := NewGraph()
	a, b, c := RoutineNode(1), RoutineNode(2), RoutineNode(3)
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	if err := g.AddEdge(c, a); !errors.Is(err, ErrCycle) {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
	// Graph must be unchanged by the failed insertion.
	if g.HasPath(c, a) {
		t.Fatal("rejected edge left residue")
	}
	if err := g.AddEdge(a, a); !errors.Is(err, ErrCycle) {
		t.Fatalf("self edge should be rejected, got %v", err)
	}
	if !g.CanOrder(a, c) || g.CanOrder(c, a) {
		t.Fatal("CanOrder disagrees with constraints")
	}
	if g.CanOrder(a, a) {
		t.Fatal("CanOrder(a,a) should be false")
	}
}

func TestDuplicateEdgeIdempotent(t *testing.T) {
	g := NewGraph()
	a, b := RoutineNode(1), RoutineNode(2)
	mustEdge(t, g, a, b)
	mustEdge(t, g, a, b)
	if got := g.Successors(a); len(got) != 1 {
		t.Fatalf("duplicate edge created extra successor: %v", got)
	}
}

func TestRemove(t *testing.T) {
	g := NewGraph()
	a, b, c := RoutineNode(1), RoutineNode(2), RoutineNode(3)
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	g.Remove(b)
	if g.Has(b) {
		t.Fatal("b still present")
	}
	if g.HasPath(a, c) {
		t.Fatal("path through removed node should be gone")
	}
	// After removal, an order contradicting the old constraint is allowed.
	if err := g.AddEdge(c, a); err != nil {
		t.Fatalf("edge after removal should succeed: %v", err)
	}
	g.Remove(Node{Kind: KindRoutine, Routine: 99}) // removing absent node is a no-op
}

func TestFailureAndRestartNodes(t *testing.T) {
	g := NewGraph()
	r := RoutineNode(1)
	f := FailureNode("window", 0)
	re := RestartNode("window", 0)
	mustEdge(t, g, r, f)  // failure serialized after routine (EV case 3)
	mustEdge(t, g, f, re) // restart after failure
	ord := g.Order()
	if len(ord) != 3 || ord[0] != r || ord[1] != f || ord[2] != re {
		t.Fatalf("Order = %v", ord)
	}
	if f.String() != "F[window]#0" || re.String() != "Re[window]#0" || r.String() != "R1" {
		t.Fatalf("string forms: %v %v %v", f, re, r)
	}
	if KindRoutine.String() != "routine" || KindFailure.String() != "failure" || KindRestart.String() != "restart" {
		t.Fatal("Kind.String wrong")
	}
}

func TestOrderPrefersSubmissionOrder(t *testing.T) {
	g := NewGraph()
	// Register in reverse so insertion order disagrees with routine IDs.
	for id := routine.ID(5); id >= 1; id-- {
		g.AddNode(RoutineNode(id))
	}
	// Single constraint: 4 before 2.
	mustEdge(t, g, RoutineNode(4), RoutineNode(2))
	got := g.RoutineOrder()
	want := []routine.ID{1, 3, 4, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("order %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RoutineOrder = %v, want %v", got, want)
		}
	}
}

func TestPredecessorsSuccessorsAncestors(t *testing.T) {
	g := NewGraph()
	a, b, c, d := RoutineNode(1), RoutineNode(2), RoutineNode(3), RoutineNode(4)
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	mustEdge(t, g, a, d)
	if got := g.Predecessors(c); len(got) != 1 || got[0] != b {
		t.Fatalf("Predecessors(c) = %v", got)
	}
	if got := g.Successors(a); len(got) != 2 {
		t.Fatalf("Successors(a) = %v", got)
	}
	anc := g.Ancestors(c)
	if !anc[a] || !anc[b] || anc[d] {
		t.Fatalf("Ancestors(c) = %v", anc)
	}
	desc := g.Descendants(a)
	if !desc[b] || !desc[c] || !desc[d] {
		t.Fatalf("Descendants(a) = %v", desc)
	}
	if len(g.Ancestors(Node{Kind: KindRoutine, Routine: 42})) != 0 {
		t.Fatal("ancestors of unknown node should be empty")
	}
}

func TestKendallTau(t *testing.T) {
	a := []routine.ID{1, 2, 3, 4}
	if d := KendallTau(a, a); d != 0 {
		t.Fatalf("identical orders distance = %d", d)
	}
	rev := []routine.ID{4, 3, 2, 1}
	if d := KendallTau(a, rev); d != 6 {
		t.Fatalf("reverse distance = %d, want 6", d)
	}
	if d := KendallTau(a, []routine.ID{1, 2, 4, 3}); d != 1 {
		t.Fatalf("one swap distance = %d", d)
	}
	// Elements missing from one order are ignored.
	if d := KendallTau([]routine.ID{1, 2, 3}, []routine.ID{3, 1}); d != 1 {
		t.Fatalf("partial overlap distance = %d", d)
	}
}

func TestOrderMismatch(t *testing.T) {
	sub := []routine.ID{1, 2, 3, 4}
	if m := OrderMismatch(sub, sub); m != 0 {
		t.Fatalf("mismatch of identical orders = %v", m)
	}
	if m := OrderMismatch(sub, []routine.ID{4, 3, 2, 1}); m != 1 {
		t.Fatalf("mismatch of reversed orders = %v", m)
	}
	if m := OrderMismatch(sub, []routine.ID{2, 1, 3, 4}); m != 1.0/6.0 {
		t.Fatalf("single swap mismatch = %v", m)
	}
	if m := OrderMismatch([]routine.ID{1}, []routine.ID{1}); m != 0 {
		t.Fatal("single-element mismatch should be 0")
	}
	if m := OrderMismatch(nil, nil); m != 0 {
		t.Fatal("empty mismatch should be 0")
	}
}

// Property: Order() is always a valid topological order (every edge's tail
// precedes its head), for random DAGs built by inserting edges from lower to
// higher IDs.
func TestOrderRespectsEdgesProperty(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		g := NewGraph()
		type edge struct{ from, to Node }
		var edges []edge
		for _, p := range pairs {
			lo, hi := p[0]%20, p[1]%20
			if lo == hi {
				continue
			}
			if lo > hi {
				lo, hi = hi, lo
			}
			from, to := RoutineNode(routine.ID(lo)), RoutineNode(routine.ID(hi))
			if err := g.AddEdge(from, to); err != nil {
				return false // edges always go low->high, so no cycle possible
			}
			edges = append(edges, edge{from, to})
		}
		pos := make(map[Node]int)
		for i, n := range g.Order() {
			pos[n] = i
		}
		for _, e := range edges {
			if pos[e.from] >= pos[e.to] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddEdge never allows a cycle — after arbitrary random edge
// insertions (some rejected), Order() must not panic and must include every
// node exactly once.
func TestNoCycleEverProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := stats.NewRNG(seed)
		g := NewGraph()
		nodes := int(n%15) + 2
		for i := 0; i < 40; i++ {
			a := RoutineNode(routine.ID(rng.Intn(nodes)))
			b := RoutineNode(routine.ID(rng.Intn(nodes)))
			_ = g.AddEdge(a, b) // errors are fine; graph must stay acyclic
		}
		ord := g.Order()
		seen := make(map[Node]bool)
		for _, nd := range ord {
			if seen[nd] {
				return false
			}
			seen[nd] = true
		}
		return len(ord) == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustEdge(t *testing.T, g *Graph, a, b Node) {
	t.Helper()
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge(%v,%v): %v", a, b, err)
	}
}

package order

// Differential tests for the interned precedence graph: a naive
// map-of-maps + map-DFS reference implementation (the package's original
// code, kept verbatim as the oracle) is driven with the same randomized
// edge/remove sequences as the interned Graph, and both must accept/reject
// exactly the same edges and emit exactly the same Order(). The same file
// keeps the original O(n²) KendallTau pair loop as the oracle for the
// merge-sort inversion count.

import (
	"sort"
	"testing"

	"safehome/internal/routine"
	"safehome/internal/stats"
)

// --- naive reference implementation (the pre-interning Graph) ---------------

type refGraph struct {
	nodes   map[Node]int
	nextSeq int
	succ    map[Node]map[Node]bool
	pred    map[Node]map[Node]bool
}

func newRefGraph() *refGraph {
	return &refGraph{
		nodes: make(map[Node]int),
		succ:  make(map[Node]map[Node]bool),
		pred:  make(map[Node]map[Node]bool),
	}
}

func (g *refGraph) addNode(n Node) {
	if _, ok := g.nodes[n]; ok {
		return
	}
	g.nodes[n] = g.nextSeq
	g.nextSeq++
	g.succ[n] = make(map[Node]bool)
	g.pred[n] = make(map[Node]bool)
}

func (g *refGraph) has(n Node) bool {
	_, ok := g.nodes[n]
	return ok
}

// addEdge reports whether the edge was accepted (nil error in the real API).
func (g *refGraph) addEdge(before, after Node) bool {
	if before == after {
		return false
	}
	g.addNode(before)
	g.addNode(after)
	if g.succ[before][after] {
		return true
	}
	if g.hasPath(after, before) {
		return false
	}
	g.succ[before][after] = true
	g.pred[after][before] = true
	return true
}

func (g *refGraph) hasPath(from, to Node) bool {
	if !g.has(from) || !g.has(to) || from == to {
		return false
	}
	stack := []Node{from}
	visited := map[Node]bool{from: true}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.succ[n] {
			if next == to {
				return true
			}
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

func (g *refGraph) remove(n Node) {
	if !g.has(n) {
		return
	}
	for p := range g.pred[n] {
		delete(g.succ[p], n)
	}
	for s := range g.succ[n] {
		delete(g.pred[s], n)
	}
	delete(g.succ, n)
	delete(g.pred, n)
	delete(g.nodes, n)
}

// tieKeys mirrors Graph.tieKeys naively: every node keys by insertion
// sequence, with routine-node sequences reassigned among themselves in
// routine-ID order.
func (g *refGraph) tieKeys() map[Node]int {
	keys := make(map[Node]int, len(g.nodes))
	var routines []Node
	var rseqs []int
	for n, s := range g.nodes {
		keys[n] = s
		if n.Kind == KindRoutine {
			routines = append(routines, n)
			rseqs = append(rseqs, s)
		}
	}
	sort.Ints(rseqs)
	sort.Slice(routines, func(a, b int) bool { return routines[a].Routine < routines[b].Routine })
	for i, n := range routines {
		keys[n] = rseqs[i]
	}
	return keys
}

func (g *refGraph) order() []Node {
	indeg := make(map[Node]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	ready := make([]Node, 0, len(g.nodes))
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	keys := g.tieKeys()
	less := func(a, b Node) bool { return keys[a] < keys[b] }
	var out []Node
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		panic("refGraph: cycle")
	}
	return out
}

// --- the differential property test -----------------------------------------

// randomNode draws from a small universe of routine, failure and restart
// nodes so collisions (duplicate edges, re-added nodes) are frequent.
func randomNode(rng *stats.RNG, universe int) Node {
	switch rng.Intn(4) {
	case 0:
		return FailureNode("dev", rng.Intn(3))
	case 1:
		return RestartNode("dev", rng.Intn(3))
	default:
		return RoutineNode(routine.ID(rng.Intn(universe) + 1))
	}
}

// TestGraphMatchesReferenceProperty drives ≥1k randomized operation
// sequences (edge insertions with occasional node removals — the
// abort/commit churn pattern the controllers generate) through both
// implementations, asserting identical accept/reject decisions on every
// AddEdge, identical HasPath/Has/Len observations, and identical Order().
func TestGraphMatchesReferenceProperty(t *testing.T) {
	const sequences = 1500
	for seq := 0; seq < sequences; seq++ {
		rng := stats.NewRNG(int64(seq) + 1)
		g := NewGraph()
		ref := newRefGraph()
		universe := rng.Intn(12) + 3
		steps := rng.Intn(60) + 10
		for i := 0; i < steps; i++ {
			switch rng.Intn(10) {
			case 0: // occasional removal (routine abort / commit compaction)
				n := randomNode(rng, universe)
				g.Remove(n)
				ref.remove(n)
			case 1: // bare registration
				n := randomNode(rng, universe)
				g.AddNode(n)
				ref.addNode(n)
			default:
				a, b := randomNode(rng, universe), randomNode(rng, universe)
				err := g.AddEdge(a, b)
				accepted := ref.addEdge(a, b)
				if (err == nil) != accepted {
					t.Fatalf("seq %d step %d: AddEdge(%v,%v) interned err=%v, reference accepted=%v",
						seq, i, a, b, err, accepted)
				}
				// Cross-check path queries in both directions.
				if g.HasPath(a, b) != ref.hasPath(a, b) || g.HasPath(b, a) != ref.hasPath(b, a) {
					t.Fatalf("seq %d step %d: HasPath disagreement after AddEdge(%v,%v)", seq, i, a, b)
				}
			}
			if g.Len() != len(ref.nodes) {
				t.Fatalf("seq %d step %d: Len = %d, reference %d", seq, i, g.Len(), len(ref.nodes))
			}
		}
		got, want := g.Order(), ref.order()
		if len(got) != len(want) {
			t.Fatalf("seq %d: Order length %d, reference %d", seq, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seq %d: Order[%d] = %v, reference %v\n got: %v\nwant: %v",
					seq, i, got[i], want[i], got, want)
			}
		}
	}
}

// --- KendallTau oracle -------------------------------------------------------

// kendallTauNaive is the original O(n²) pair loop, kept as the oracle for the
// merge-sort inversion count.
func kendallTauNaive(a, b []routine.ID) int {
	posB := make(map[routine.ID]int, len(b))
	for i, id := range b {
		posB[id] = i
	}
	var common []routine.ID
	for _, id := range a {
		if _, ok := posB[id]; ok {
			common = append(common, id)
		}
	}
	inversions := 0
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			if posB[common[i]] > posB[common[j]] {
				inversions++
			}
		}
	}
	return inversions
}

func TestKendallTauMatchesNaiveProperty(t *testing.T) {
	for seq := 0; seq < 500; seq++ {
		rng := stats.NewRNG(int64(seq) + 1)
		n := rng.Intn(60)
		perm := make([]routine.ID, n)
		for i := range perm {
			perm[i] = routine.ID(i + 1)
		}
		a := append([]routine.ID(nil), perm...)
		b := append([]routine.ID(nil), perm...)
		shuffle := func(s []routine.ID) {
			for i := len(s) - 1; i > 0; i-- {
				j := rng.Intn(i + 1)
				s[i], s[j] = s[j], s[i]
			}
		}
		shuffle(a)
		shuffle(b)
		// Drop a random suffix from b so the partial-overlap path is covered.
		b = b[:n-rng.Intn(n/2+1)]
		if got, want := KendallTau(a, b), kendallTauNaive(a, b); got != want {
			t.Fatalf("seq %d: KendallTau = %d, naive oracle = %d (a=%v b=%v)", seq, got, want, a, b)
		}
	}
}

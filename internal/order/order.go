// Package order maintains SafeHome's serialization order: a precedence
// graph over routines, device failure events and device restart events.
//
// The controllers use it to (a) record "serialize-before" relationships
// implied by lineage placement and lock leases, (b) refuse leases that would
// contradict an already-established order (the preSet/postSet test of
// Algorithm 1 and §4.1), and (c) extract the final serially-equivalent order
// and the order-mismatch metric (§7.6).
//
// The graph sits on the scheduling hot path (every Timeline gap trial and
// every JiT eligibility test ends in AddEdge/HasPath calls), so nodes are
// interned to dense int32 slots and adjacency is kept in index-keyed slices.
// Cycle checks reuse an epoch-stamped visited array instead of allocating a
// map per query; in steady state AddEdge, CanOrder and HasPath perform no
// allocation at all. The Node-based API is a thin veneer over the interned
// representation.
package order

import (
	"errors"
	"fmt"
	"sort"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Kind distinguishes the three event types that appear in a serialization
// order (§3: failure and restart events are serialized alongside routines).
type Kind int

const (
	// KindRoutine is a routine node.
	KindRoutine Kind = iota
	// KindFailure is a device failure event node.
	KindFailure
	// KindRestart is a device restart event node.
	KindRestart
)

func (k Kind) String() string {
	switch k {
	case KindRoutine:
		return "routine"
	case KindFailure:
		return "failure"
	case KindRestart:
		return "restart"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node identifies one entry of the serialization order.
type Node struct {
	Kind    Kind
	Routine routine.ID // set for KindRoutine
	Device  device.ID  // set for failure/restart events
	Seq     int        // distinguishes repeated failure/restart of one device
}

// RoutineNode returns the node for a routine.
func RoutineNode(id routine.ID) Node { return Node{Kind: KindRoutine, Routine: id} }

// FailureNode returns the node for the seq-th failure event of a device.
func FailureNode(dev device.ID, seq int) Node {
	return Node{Kind: KindFailure, Device: dev, Seq: seq}
}

// RestartNode returns the node for the seq-th restart event of a device.
func RestartNode(dev device.ID, seq int) Node {
	return Node{Kind: KindRestart, Device: dev, Seq: seq}
}

// String renders the node in the paper's notation (R3, F[ac]#0, Re[ac]#0).
func (n Node) String() string {
	switch n.Kind {
	case KindRoutine:
		return fmt.Sprintf("R%d", n.Routine)
	case KindFailure:
		return fmt.Sprintf("F[%s]#%d", n.Device, n.Seq)
	case KindRestart:
		return fmt.Sprintf("Re[%s]#%d", n.Device, n.Seq)
	default:
		return "?"
	}
}

// ErrCycle is returned when adding a precedence edge would create a cycle,
// i.e. contradict the already-established serialization order.
var ErrCycle = errors.New("order: edge would create a cycle")

// freeSeq marks a slot whose node has been removed; the slot is recycled by
// the next interning.
const freeSeq = -1

// Graph is a precedence DAG over serialization-order nodes. The zero value
// is not usable; call NewGraph. Graph is not safe for concurrent use (the
// controllers are single-threaded).
//
// Internally every node is interned to a dense int32 slot. Removed nodes
// leave free slots that are recycled, so long-lived graphs under
// submit/commit churn stay compact.
type Graph struct {
	index map[Node]int32 // node -> slot
	nodes []Node         // slot -> node
	seq   []int          // slot -> insertion sequence (freeSeq when vacant)
	succ  [][]int32      // slot -> successor slots
	pred  [][]int32      // slot -> predecessor slots
	free  []int32        // recycled slots
	live  int
	next  int // next insertion sequence

	// Reusable scratch for traversals; visited[i] == epoch means slot i was
	// seen by the current query.
	visited []uint32
	epoch   uint32
	stack   []int32
	indeg   []int32
	ready   []int32
	keys    []int
	rslots  []int32
	rseqs   []int
}

// graphSlab is the node capacity pre-allocated by NewGraph, sized for a
// typical busy home (tens of in-flight routines plus failure events) so
// steady-state interning never grows the slot arrays.
const graphSlab = 64

// NewGraph returns an empty precedence graph.
func NewGraph() *Graph {
	return &Graph{
		index:   make(map[Node]int32, graphSlab),
		nodes:   make([]Node, 0, graphSlab),
		seq:     make([]int, 0, graphSlab),
		succ:    make([][]int32, 0, graphSlab),
		pred:    make([][]int32, 0, graphSlab),
		visited: make([]uint32, 0, graphSlab),
	}
}

// intern returns the slot for n, allocating (or recycling) one if needed.
func (g *Graph) intern(n Node) int32 {
	if i, ok := g.index[n]; ok {
		return i
	}
	var i int32
	if len(g.free) > 0 {
		i = g.free[len(g.free)-1]
		g.free = g.free[:len(g.free)-1]
		g.nodes[i] = n
	} else {
		i = int32(len(g.nodes))
		g.nodes = append(g.nodes, n)
		g.seq = append(g.seq, 0)
		g.succ = append(g.succ, nil)
		g.pred = append(g.pred, nil)
		g.visited = append(g.visited, 0)
	}
	g.seq[i] = g.next
	g.next++
	g.index[n] = i
	g.live++
	return i
}

// AddNode registers a node (idempotent).
func (g *Graph) AddNode(n Node) { g.intern(n) }

// Has reports whether the node is registered.
func (g *Graph) Has(n Node) bool {
	_, ok := g.index[n]
	return ok
}

// Len returns the number of registered nodes.
func (g *Graph) Len() int { return g.live }

// AddEdge records that `before` is serialized before `after`. Both nodes are
// registered if needed. It returns ErrCycle (and leaves the graph unchanged)
// if the edge would contradict existing constraints; self-edges are also
// rejected.
func (g *Graph) AddEdge(before, after Node) error {
	if before == after {
		return fmt.Errorf("%w: self edge %v", ErrCycle, before)
	}
	bi := g.intern(before)
	ai := g.intern(after)
	for _, s := range g.succ[bi] {
		if s == ai {
			return nil
		}
	}
	if g.hasPath(ai, bi) {
		return fmt.Errorf("%w: %v -> %v contradicts existing order", ErrCycle, before, after)
	}
	g.succ[bi] = appendEdge(g.succ[bi], ai)
	g.pred[ai] = appendEdge(g.pred[ai], bi)
	return nil
}

// appendEdge appends to an adjacency list, seeding a small capacity on first
// use so typical fan-outs (a handful of serialize-before constraints per
// node) settle after one allocation; recycled slots keep their capacity.
func appendEdge(list []int32, v int32) []int32 {
	if list == nil {
		list = make([]int32, 0, 8)
	}
	return append(list, v)
}

// CanOrder reports whether an edge before→after could be added without
// contradicting the current constraints (without adding it).
func (g *Graph) CanOrder(before, after Node) bool {
	if before == after {
		return false
	}
	bi, okB := g.index[before]
	ai, okA := g.index[after]
	if !okB || !okA {
		return true
	}
	return !g.hasPath(ai, bi)
}

// HasPath reports whether `from` reaches `to` through precedence edges
// (i.e. from is serialized before to, transitively).
func (g *Graph) HasPath(from, to Node) bool {
	fi, okF := g.index[from]
	ti, okT := g.index[to]
	if !okF || !okT {
		return false
	}
	return g.hasPath(fi, ti)
}

// nextEpoch advances the visited stamp, clearing the array on the (rare)
// wrap-around so stale stamps can never collide with the current epoch.
func (g *Graph) nextEpoch() uint32 {
	g.epoch++
	if g.epoch == 0 {
		for i := range g.visited {
			g.visited[i] = 0
		}
		g.epoch = 1
	}
	return g.epoch
}

// hasPath runs an iterative DFS over interned slots using the epoch-stamped
// visited array; no per-call allocation in steady state.
func (g *Graph) hasPath(from, to int32) bool {
	if from == to {
		return false
	}
	epoch := g.nextEpoch()
	g.stack = append(g.stack[:0], from)
	g.visited[from] = epoch
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		for _, next := range g.succ[n] {
			if next == to {
				return true
			}
			if g.visited[next] != epoch {
				g.visited[next] = epoch
				g.stack = append(g.stack, next)
			}
		}
	}
	return false
}

// dropIdx removes value v from slice (order-insensitive swap-remove;
// adjacency order is never observable through the API).
func dropIdx(slice []int32, v int32) []int32 {
	for i, x := range slice {
		if x == v {
			slice[i] = slice[len(slice)-1]
			return slice[:len(slice)-1]
		}
	}
	return slice
}

// Remove deletes a node and all its edges, e.g. when a routine aborts and
// therefore does not appear in the final serialization order.
func (g *Graph) Remove(n Node) {
	i, ok := g.index[n]
	if !ok {
		return
	}
	for _, p := range g.pred[i] {
		g.succ[p] = dropIdx(g.succ[p], i)
	}
	for _, s := range g.succ[i] {
		g.pred[s] = dropIdx(g.pred[s], i)
	}
	g.succ[i] = g.succ[i][:0]
	g.pred[i] = g.pred[i][:0]
	g.seq[i] = freeSeq
	delete(g.index, n)
	g.free = append(g.free, i)
	g.live--
}

// Predecessors returns the direct predecessors of n.
func (g *Graph) Predecessors(n Node) []Node {
	return g.neighbors(n, g.pred)
}

// Successors returns the direct successors of n.
func (g *Graph) Successors(n Node) []Node {
	return g.neighbors(n, g.succ)
}

func (g *Graph) neighbors(n Node, adj [][]int32) []Node {
	i, ok := g.index[n]
	if !ok {
		return nil
	}
	out := make([]Node, 0, len(adj[i]))
	for _, x := range adj[i] {
		out = append(out, g.nodes[x])
	}
	sort.Slice(out, func(a, b int) bool { return g.seq[g.index[out[a]]] < g.seq[g.index[out[b]]] })
	return out
}

// Ancestors returns every node serialized before n (transitively). Used as
// the preSet in lease/gap legality checks.
func (g *Graph) Ancestors(n Node) map[Node]bool {
	return g.reach(n, g.pred)
}

// Descendants returns every node serialized after n (transitively). Used as
// the postSet in lease/gap legality checks.
func (g *Graph) Descendants(n Node) map[Node]bool {
	return g.reach(n, g.succ)
}

func (g *Graph) reach(start Node, adj [][]int32) map[Node]bool {
	out := make(map[Node]bool)
	si, ok := g.index[start]
	if !ok {
		return out
	}
	epoch := g.nextEpoch()
	g.stack = append(g.stack[:0], si)
	g.visited[si] = epoch
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		for _, next := range adj[n] {
			if g.visited[next] != epoch {
				g.visited[next] = epoch
				out[g.nodes[next]] = true
				g.stack = append(g.stack, next)
			}
		}
	}
	return out
}

// tieKeys computes a total tie-break key per live slot: every node's key is
// its insertion sequence, except that the routine nodes' sequences are
// reassigned among themselves in routine-ID order. Routines therefore
// tie-break by ID (i.e. submission order) and events by insertion sequence —
// the documented contract — through one totally-ordered numeric key.
//
// (The previous implementation compared routine pairs by ID but mixed pairs
// by insertion sequence, which is an intransitive relation whenever routine
// registration order disagrees with ID order; sort results then depended on
// map iteration order. In controller usage routines are registered in ID
// order, so this key is identical to the old behaviour wherever the old
// behaviour was well-defined.)
func (g *Graph) tieKeys() []int {
	if cap(g.keys) < len(g.nodes) {
		g.keys = make([]int, len(g.nodes))
	}
	g.keys = g.keys[:len(g.nodes)]
	g.rslots = g.rslots[:0]
	g.rseqs = g.rseqs[:0]
	for i := range g.nodes {
		if g.seq[i] == freeSeq {
			continue
		}
		g.keys[i] = g.seq[i]
		if g.nodes[i].Kind == KindRoutine {
			g.rslots = append(g.rslots, int32(i))
			g.rseqs = append(g.rseqs, g.seq[i])
		}
	}
	sort.Ints(g.rseqs)
	sort.Slice(g.rslots, func(a, b int) bool {
		return g.nodes[g.rslots[a]].Routine < g.nodes[g.rslots[b]].Routine
	})
	for k, slot := range g.rslots {
		g.keys[slot] = g.rseqs[k]
	}
	return g.keys
}

// Order returns a topological order of all registered nodes consistent with
// the precedence edges. Ties are broken by routine ID (i.e. submission
// order) for routines and by insertion sequence for failure/restart events
// (see tieKeys), which yields the minimum-order-mismatch serialization among
// valid ones for the common case.
func (g *Graph) Order() []Node {
	if cap(g.indeg) < len(g.nodes) {
		g.indeg = make([]int32, len(g.nodes))
	}
	g.indeg = g.indeg[:len(g.nodes)]
	g.ready = g.ready[:0]
	for i := range g.nodes {
		if g.seq[i] == freeSeq {
			continue
		}
		g.indeg[i] = int32(len(g.pred[i]))
		if g.indeg[i] == 0 {
			g.ready = append(g.ready, int32(i))
		}
	}
	keys := g.tieKeys()
	less := func(a, b int32) bool { return keys[a] < keys[b] }
	out := make([]Node, 0, g.live)
	ready := g.ready
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
		n := ready[0]
		ready = ready[1:]
		out = append(out, g.nodes[n])
		for _, s := range g.succ[n] {
			g.indeg[s]--
			if g.indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != g.live {
		// Should be impossible: AddEdge prevents cycles.
		panic("order: graph contains a cycle")
	}
	return out
}

// RoutineOrder returns only the routine IDs from Order, in serialization
// order.
func (g *Graph) RoutineOrder() []routine.ID {
	var out []routine.ID
	for _, n := range g.Order() {
		if n.Kind == KindRoutine {
			out = append(out, n.Routine)
		}
	}
	return out
}

// --- order mismatch -------------------------------------------------------

// KendallTau returns the swap distance between two orderings of the same
// routine set: the number of pairs whose relative order differs. Elements
// present in only one of the slices are ignored.
//
// The count is computed as the number of inversions of b-positions taken in
// a-order, via a merge-sort inversion count — O(n log n), versus the naive
// O(n²) pair loop it replaced (kept as the oracle in the package tests). It
// runs once per experiment trial over full routine sets, which at
// multi-tenant scale made the quadratic loop measurable.
func KendallTau(a, b []routine.ID) int {
	posB := make(map[routine.ID]int, len(b))
	for i, id := range b {
		posB[id] = i
	}
	seq := make([]int, 0, len(a))
	for _, id := range a {
		if p, ok := posB[id]; ok {
			seq = append(seq, p)
		}
	}
	buf := make([]int, len(seq))
	return countInversions(seq, buf)
}

// countInversions counts pairs i<j with seq[i] > seq[j] by merge sort,
// mutating seq and using buf as merge scratch.
func countInversions(seq, buf []int) int {
	n := len(seq)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := countInversions(seq[:mid], buf[:mid]) + countInversions(seq[mid:], buf[mid:])
	// Merge the two sorted halves, counting cross-half inversions: when an
	// element of the right half is placed before remaining left elements,
	// each remaining left element forms one discordant pair with it.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if seq[i] <= seq[j] {
			buf[k] = seq[i]
			i++
		} else {
			buf[k] = seq[j]
			j++
			inv += mid - i
		}
		k++
	}
	copy(buf[k:], seq[i:mid])
	copy(buf[k+mid-i:], seq[j:])
	copy(seq, buf)
	return inv
}

// OrderMismatch returns the normalized swap distance in [0,1]: KendallTau
// divided by the maximum possible number of discordant pairs. It is the
// paper's "order mismatch" metric (§7.6).
func OrderMismatch(submission, serialization []routine.ID) float64 {
	posB := make(map[routine.ID]int, len(serialization))
	for i, id := range serialization {
		posB[id] = i
	}
	n := 0
	for _, id := range submission {
		if _, ok := posB[id]; ok {
			n++
		}
	}
	if n < 2 {
		return 0
	}
	maxPairs := n * (n - 1) / 2
	return float64(KendallTau(submission, serialization)) / float64(maxPairs)
}

// Package order maintains SafeHome's serialization order: a precedence
// graph over routines, device failure events and device restart events.
//
// The controllers use it to (a) record "serialize-before" relationships
// implied by lineage placement and lock leases, (b) refuse leases that would
// contradict an already-established order (the preSet/postSet test of
// Algorithm 1 and §4.1), and (c) extract the final serially-equivalent order
// and the order-mismatch metric (§7.6).
package order

import (
	"errors"
	"fmt"
	"sort"

	"safehome/internal/device"
	"safehome/internal/routine"
)

// Kind distinguishes the three event types that appear in a serialization
// order (§3: failure and restart events are serialized alongside routines).
type Kind int

const (
	// KindRoutine is a routine node.
	KindRoutine Kind = iota
	// KindFailure is a device failure event node.
	KindFailure
	// KindRestart is a device restart event node.
	KindRestart
)

func (k Kind) String() string {
	switch k {
	case KindRoutine:
		return "routine"
	case KindFailure:
		return "failure"
	case KindRestart:
		return "restart"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node identifies one entry of the serialization order.
type Node struct {
	Kind    Kind
	Routine routine.ID // set for KindRoutine
	Device  device.ID  // set for failure/restart events
	Seq     int        // distinguishes repeated failure/restart of one device
}

// RoutineNode returns the node for a routine.
func RoutineNode(id routine.ID) Node { return Node{Kind: KindRoutine, Routine: id} }

// FailureNode returns the node for the seq-th failure event of a device.
func FailureNode(dev device.ID, seq int) Node {
	return Node{Kind: KindFailure, Device: dev, Seq: seq}
}

// RestartNode returns the node for the seq-th restart event of a device.
func RestartNode(dev device.ID, seq int) Node {
	return Node{Kind: KindRestart, Device: dev, Seq: seq}
}

// String renders the node in the paper's notation (R3, F[ac]#0, Re[ac]#0).
func (n Node) String() string {
	switch n.Kind {
	case KindRoutine:
		return fmt.Sprintf("R%d", n.Routine)
	case KindFailure:
		return fmt.Sprintf("F[%s]#%d", n.Device, n.Seq)
	case KindRestart:
		return fmt.Sprintf("Re[%s]#%d", n.Device, n.Seq)
	default:
		return "?"
	}
}

// ErrCycle is returned when adding a precedence edge would create a cycle,
// i.e. contradict the already-established serialization order.
var ErrCycle = errors.New("order: edge would create a cycle")

// Graph is a precedence DAG over serialization-order nodes. The zero value
// is not usable; call NewGraph. Graph is not safe for concurrent use (the
// controllers are single-threaded).
type Graph struct {
	nodes   map[Node]int // node -> insertion sequence (tie-break for Order)
	nextSeq int
	succ    map[Node]map[Node]bool
	pred    map[Node]map[Node]bool
}

// NewGraph returns an empty precedence graph.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[Node]int),
		succ:  make(map[Node]map[Node]bool),
		pred:  make(map[Node]map[Node]bool),
	}
}

// AddNode registers a node (idempotent).
func (g *Graph) AddNode(n Node) {
	if _, ok := g.nodes[n]; ok {
		return
	}
	g.nodes[n] = g.nextSeq
	g.nextSeq++
	g.succ[n] = make(map[Node]bool)
	g.pred[n] = make(map[Node]bool)
}

// Has reports whether the node is registered.
func (g *Graph) Has(n Node) bool {
	_, ok := g.nodes[n]
	return ok
}

// Len returns the number of registered nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// AddEdge records that `before` is serialized before `after`. Both nodes are
// registered if needed. It returns ErrCycle (and leaves the graph unchanged)
// if the edge would contradict existing constraints; self-edges are also
// rejected.
func (g *Graph) AddEdge(before, after Node) error {
	if before == after {
		return fmt.Errorf("%w: self edge %v", ErrCycle, before)
	}
	g.AddNode(before)
	g.AddNode(after)
	if g.succ[before][after] {
		return nil
	}
	if g.HasPath(after, before) {
		return fmt.Errorf("%w: %v -> %v contradicts existing order", ErrCycle, before, after)
	}
	g.succ[before][after] = true
	g.pred[after][before] = true
	return nil
}

// CanOrder reports whether an edge before→after could be added without
// contradicting the current constraints (without adding it).
func (g *Graph) CanOrder(before, after Node) bool {
	if before == after {
		return false
	}
	if !g.Has(before) || !g.Has(after) {
		return true
	}
	return !g.HasPath(after, before)
}

// HasPath reports whether `from` reaches `to` through precedence edges
// (i.e. from is serialized before to, transitively).
func (g *Graph) HasPath(from, to Node) bool {
	if !g.Has(from) || !g.Has(to) {
		return false
	}
	if from == to {
		return false
	}
	// Iterative DFS; graphs are small (tens of nodes).
	stack := []Node{from}
	visited := map[Node]bool{from: true}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range g.succ[n] {
			if next == to {
				return true
			}
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// Remove deletes a node and all its edges, e.g. when a routine aborts and
// therefore does not appear in the final serialization order.
func (g *Graph) Remove(n Node) {
	if !g.Has(n) {
		return
	}
	for p := range g.pred[n] {
		delete(g.succ[p], n)
	}
	for s := range g.succ[n] {
		delete(g.pred[s], n)
	}
	delete(g.succ, n)
	delete(g.pred, n)
	delete(g.nodes, n)
}

// Predecessors returns the direct predecessors of n.
func (g *Graph) Predecessors(n Node) []Node {
	var out []Node
	for p := range g.pred[n] {
		out = append(out, p)
	}
	sortNodes(g, out)
	return out
}

// Successors returns the direct successors of n.
func (g *Graph) Successors(n Node) []Node {
	var out []Node
	for s := range g.succ[n] {
		out = append(out, s)
	}
	sortNodes(g, out)
	return out
}

// Ancestors returns every node serialized before n (transitively). Used as
// the preSet in lease/gap legality checks.
func (g *Graph) Ancestors(n Node) map[Node]bool {
	return g.reach(n, g.pred)
}

// Descendants returns every node serialized after n (transitively). Used as
// the postSet in lease/gap legality checks.
func (g *Graph) Descendants(n Node) map[Node]bool {
	return g.reach(n, g.succ)
}

func (g *Graph) reach(start Node, adj map[Node]map[Node]bool) map[Node]bool {
	out := make(map[Node]bool)
	if !g.Has(start) {
		return out
	}
	stack := []Node{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range adj[n] {
			if !out[next] {
				out[next] = true
				stack = append(stack, next)
			}
		}
	}
	return out
}

func sortNodes(g *Graph, ns []Node) {
	sort.Slice(ns, func(i, j int) bool { return g.nodes[ns[i]] < g.nodes[ns[j]] })
}

// Order returns a topological order of all registered nodes consistent with
// the precedence edges. Ties are broken by routine ID (i.e. submission
// order) and then by insertion sequence, which yields the
// minimum-order-mismatch serialization among valid ones for the common case.
func (g *Graph) Order() []Node {
	indeg := make(map[Node]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	ready := make([]Node, 0, len(g.nodes))
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	less := func(a, b Node) bool {
		if a.Kind == KindRoutine && b.Kind == KindRoutine {
			return a.Routine < b.Routine
		}
		return g.nodes[a] < g.nodes[b]
	}
	var out []Node
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		// Should be impossible: AddEdge prevents cycles.
		panic("order: graph contains a cycle")
	}
	return out
}

// RoutineOrder returns only the routine IDs from Order, in serialization
// order.
func (g *Graph) RoutineOrder() []routine.ID {
	var out []routine.ID
	for _, n := range g.Order() {
		if n.Kind == KindRoutine {
			out = append(out, n.Routine)
		}
	}
	return out
}

// --- order mismatch -------------------------------------------------------

// KendallTau returns the swap distance between two orderings of the same
// routine set: the number of pairs whose relative order differs. Elements
// present in only one of the slices are ignored.
func KendallTau(a, b []routine.ID) int {
	posB := make(map[routine.ID]int, len(b))
	for i, id := range b {
		posB[id] = i
	}
	var common []routine.ID
	for _, id := range a {
		if _, ok := posB[id]; ok {
			common = append(common, id)
		}
	}
	inversions := 0
	for i := 0; i < len(common); i++ {
		for j := i + 1; j < len(common); j++ {
			if posB[common[i]] > posB[common[j]] {
				inversions++
			}
		}
	}
	return inversions
}

// OrderMismatch returns the normalized swap distance in [0,1]: KendallTau
// divided by the maximum possible number of discordant pairs. It is the
// paper's "order mismatch" metric (§7.6).
func OrderMismatch(submission, serialization []routine.ID) float64 {
	posB := make(map[routine.ID]int, len(serialization))
	for i, id := range serialization {
		posB[id] = i
	}
	n := 0
	for _, id := range submission {
		if _, ok := posB[id]; ok {
			n++
		}
	}
	if n < 2 {
		return 0
	}
	maxPairs := n * (n - 1) / 2
	return float64(KendallTau(submission, serialization)) / float64(maxPairs)
}

package order

// Micro-benchmarks for the precedence-graph hot path. Every Timeline gap
// trial and every JiT eligibility test ends in AddEdge (which embeds a
// cycle-check DFS), so this is the inner loop the interned representation
// exists for. Run with -benchmem to see that steady-state AddEdge and
// HasPath perform no per-call map allocation.

import (
	"fmt"
	"testing"

	"safehome/internal/routine"
)

// buildLayeredGraph links n routine nodes into `layers` sequential layers
// (every node of layer i precedes every node of layer i+1), the shape the EV
// controllers produce for batches of conflicting routines.
func buildLayeredGraph(n, layers int) *Graph {
	g := NewGraph()
	per := n / layers
	if per == 0 {
		per = 1
	}
	for i := 0; i < n-per; i++ {
		next := (i/per + 1) * per
		for j := next; j < next+per && j < n; j++ {
			if err := g.AddEdge(RoutineNode(routine.ID(i+1)), RoutineNode(routine.ID(j+1))); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// BenchmarkGraphAddEdge measures adding one more constraint (including its
// cycle-check DFS) to an already-populated graph, plus the matching Remove
// so the graph does not grow across iterations.
func BenchmarkGraphAddEdge(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			g := buildLayeredGraph(size, 8)
			probe := RoutineNode(routine.ID(size + 1))
			first := RoutineNode(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.AddEdge(first, probe); err != nil {
					b.Fatal(err)
				}
				g.Remove(probe)
			}
		})
	}
}

// BenchmarkGraphHasPath measures the epoch-stamped DFS on its own, probing
// the longest path in the layered graph (worst-case traversal).
func BenchmarkGraphHasPath(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("nodes=%d", size), func(b *testing.B) {
			g := buildLayeredGraph(size, 8)
			from, to := RoutineNode(1), RoutineNode(routine.ID(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !g.HasPath(from, to) {
					b.Fatal("expected path")
				}
			}
		})
	}
}

// BenchmarkGraphRejectedEdge measures the cost of a rejected (cycle-forming)
// edge — the common case during Timeline backtracking, where placements are
// probed and discarded.
func BenchmarkGraphRejectedEdge(b *testing.B) {
	g := buildLayeredGraph(64, 8)
	last, first := RoutineNode(64), RoutineNode(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.AddEdge(last, first); err == nil {
			b.Fatal("expected cycle rejection")
		}
	}
}

func BenchmarkKendallTau(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := make([]routine.ID, n)
			rev := make([]routine.ID, n)
			for i := 0; i < n; i++ {
				a[i] = routine.ID(i + 1)
				rev[i] = routine.ID(n - i)
			}
			want := n * (n - 1) / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := KendallTau(a, rev); got != want {
					b.Fatalf("KendallTau = %d, want %d", got, want)
				}
			}
		})
	}
}

package hub

import (
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/visibility"
)

// newDurableHub builds a hub journaling into dir over a fresh fleet.
func newDurableHub(t *testing.T, dir string) *Hub {
	t.Helper()
	reg := testRegistry()
	h, err := New(Config{Model: visibility.EV, DefaultShort: 5 * time.Millisecond,
		FailureInterval: time.Hour, DataDir: dir}, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

// TestHubRecoversAcrossRestart drives the whole single-home stack: a durable
// hub commits a routine, restarts from the same data dir, and serves the
// recovered results, committed states and event cursors.
func TestHubRecoversAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	h := newDurableHub(t, dir)
	if !h.Status().Durable {
		t.Fatal("durable hub reports Durable=false")
	}
	if _, err := h.SubmitRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, h)
	_, cursor := h.EventsSince(0)
	h.Close()

	h2 := newDurableHub(t, dir)
	defer h2.Close()
	results := h2.Results()
	if len(results) != 1 || results[0].Status != visibility.StatusCommitted {
		t.Fatalf("recovered results = %+v", results)
	}
	// Committed states survive into the device view.
	var window, ac device.State
	for _, d := range h2.Devices() {
		switch d.Info.ID {
		case "window":
			window = d.State
		case "ac":
			ac = d.State
		}
	}
	if window != device.Closed || ac != device.On {
		t.Fatalf("recovered device view: window=%s ac=%s", window, ac)
	}
	// A pre-restart cursor keeps working and stays monotonic.
	_, cursor2 := h2.EventsSince(cursor)
	if cursor2 < cursor {
		t.Fatalf("event cursor went backwards: %d -> %d", cursor, cursor2)
	}
	if _, err := h2.SubmitRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, h2)
	tail, cursor3 := h2.EventsSince(cursor2)
	if len(tail) == 0 || cursor3 <= cursor2 {
		t.Fatalf("post-restart events not visible past the old cursor (%d events, cursor %d)", len(tail), cursor3)
	}
}

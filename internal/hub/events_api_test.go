package hub

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"safehome/internal/device"
	"safehome/internal/manager"
	"safehome/internal/visibility"
)

type eventsPageJSON struct {
	Events []struct {
		Seq  uint64 `json:"seq"`
		Kind string `json:"kind"`
	} `json:"events"`
	Next uint64 `json:"next"`
}

func getPage(t *testing.T, url string) eventsPageJSON {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	var page eventsPageJSON
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page
}

func TestHubEventsSinceCursor(t *testing.T) {
	h, _ := newTestHub(t)
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	if _, err := h.SubmitRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, h)

	first := getPage(t, srv.URL+"/api/events?since=0")
	if len(first.Events) == 0 || first.Next == 0 {
		t.Fatalf("first page = %+v, want events and a cursor", first)
	}
	for i, e := range first.Events {
		if i > 0 && e.Seq != first.Events[i-1].Seq+1 {
			t.Fatalf("event seqs not consecutive: %+v", first.Events)
		}
	}
	if last := first.Events[len(first.Events)-1]; last.Seq+1 != first.Next {
		t.Fatalf("next cursor %d does not follow last seq %d", first.Next, last.Seq)
	}

	// Nothing new: the tail poll is empty and the cursor stable.
	again := getPage(t, fmt.Sprintf("%s/api/events?since=%d", srv.URL, first.Next))
	if len(again.Events) != 0 || again.Next != first.Next {
		t.Fatalf("empty tail poll = %+v", again)
	}

	// New activity: the poller sees only the tail.
	if _, err := h.SubmitRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	waitIdle(t, h)
	tail := getPage(t, fmt.Sprintf("%s/api/events?since=%d", srv.URL, first.Next))
	if len(tail.Events) == 0 {
		t.Fatal("tail poll after new submit returned nothing")
	}
	if tail.Events[0].Seq < first.Next {
		t.Fatalf("tail re-delivered seq %d (cursor was %d)", tail.Events[0].Seq, first.Next)
	}

	// A bad cursor is a 400; the un-cursored endpoint still returns the
	// plain array shape.
	if resp, err := http.Get(srv.URL + "/api/events?since=nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad since = %d, want 400", resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var plain []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&plain); err != nil {
		t.Fatalf("plain /api/events is no longer an array: %v", err)
	}
}

func TestManagerEventsSinceCursor(t *testing.T) {
	m := manager.New(manager.Config{Shards: 2, EventLog: 64,
		Home: manager.HomeConfig{Model: visibility.EV}})
	t.Cleanup(m.Close)
	srv := httptest.NewServer(ManagerHandler(m, 2))
	defer srv.Close()

	if err := m.AddHome("apt-1", device.Plugs(2).All()...); err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"routine_name":"lights","commands":[{"device":"plug-0","action":"ON"}]}`)
	if _, err := m.SubmitSpec("apt-1", spec); err != nil {
		t.Fatal(err)
	}

	page := getPage(t, srv.URL+"/homes/apt-1/events?since=0")
	if len(page.Events) == 0 {
		t.Fatal("no events for a home with an event log")
	}
	tail := getPage(t, fmt.Sprintf("%s/homes/apt-1/events?since=%d", srv.URL, page.Next))
	if len(tail.Events) != 0 {
		t.Fatalf("tail poll re-delivered %d events", len(tail.Events))
	}

	// Unknown home: 404. Events on a log-less manager: empty but valid.
	if resp, err := http.Get(srv.URL + "/homes/ghost/events"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown home events = %d, want 404", resp.StatusCode)
		}
	}
}

func TestManagerWithoutEventLogServesEmptyEvents(t *testing.T) {
	m := manager.New(manager.Config{Shards: 1})
	t.Cleanup(m.Close)
	if err := m.AddHome("apt-1", device.Plugs(1).All()...); err != nil {
		t.Fatal(err)
	}
	spec := []byte(`{"routine_name":"lights","commands":[{"device":"plug-0","action":"ON"}]}`)
	if _, err := m.SubmitSpec("apt-1", spec); err != nil {
		t.Fatal(err)
	}
	ev, next, err := m.Events("apt-1", 0)
	if err != nil || len(ev) != 0 || next != 1 {
		t.Fatalf("Events on a log-less manager = %d events, next %d, err %v; want empty", len(ev), next, err)
	}
}

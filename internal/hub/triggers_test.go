package hub

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"safehome/internal/device"
	"safehome/internal/visibility"
)

func TestScheduleAfterFiresOnce(t *testing.T) {
	h, _ := newTestHub(t)
	if err := h.StoreRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	handle, err := h.ScheduleAfter("cooling", 10*time.Millisecond)
	if err != nil {
		t.Fatalf("ScheduleAfter: %v", err)
	}
	if len(h.Triggers()) != 1 {
		t.Fatalf("Triggers = %v, want 1 active", h.Triggers())
	}

	deadline := time.Now().Add(3 * time.Second)
	for len(h.Results()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scheduled trigger never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitIdle(t, h)
	res := h.Results()[0]
	if res.Status != visibility.StatusCommitted {
		t.Fatalf("triggered routine = %v (%s)", res.Status, res.AbortReason)
	}
	// One-shot triggers disappear once fired.
	deadline = time.Now().Add(time.Second)
	for len(h.Triggers()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("one-shot trigger still active: %v", h.Triggers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = handle
}

func TestScheduleEveryRepeats(t *testing.T) {
	h, _ := newTestHub(t)
	if err := h.StoreRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	handle, err := h.ScheduleEvery("cooling", 15*time.Millisecond)
	if err != nil {
		t.Fatalf("ScheduleEvery: %v", err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for len(h.Results()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("recurring trigger fired %d times, want >= 2", len(h.Results()))
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.CancelTrigger(handle)
	fired := len(h.Results())
	time.Sleep(60 * time.Millisecond)
	if extra := len(h.Results()) - fired; extra > 1 {
		t.Errorf("trigger kept firing after cancellation (%d extra submissions)", extra)
	}
	if len(h.Triggers()) != 0 {
		t.Errorf("Triggers after cancel = %v, want none", h.Triggers())
	}
	waitIdle(t, h)
}

func TestScheduleValidation(t *testing.T) {
	h, _ := newTestHub(t)
	if _, err := h.ScheduleAfter("missing", time.Millisecond); err == nil {
		t.Error("scheduling an unknown routine should fail")
	}
	if err := h.StoreRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ScheduleEvery("cooling", 0); err == nil {
		t.Error("a non-positive interval should be rejected")
	}
}

func TestTriggerHTTPEndpoints(t *testing.T) {
	h, _ := newTestHub(t)
	if err := h.StoreRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/api/bank/cooling/schedule?every=50ms", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("schedule: %v %v", resp.StatusCode, err)
	}
	var created struct {
		Handle int64 `json:"handle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var triggers []ScheduledTrigger
	resp, err = http.Get(srv.URL + "/api/triggers")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&triggers); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(triggers) != 1 || triggers[0].Routine != "cooling" {
		t.Fatalf("triggers = %+v", triggers)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/api/triggers/%d", srv.URL, created.Handle), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	if len(h.Triggers()) != 0 {
		t.Fatalf("triggers after cancel = %v", h.Triggers())
	}

	// Bad requests.
	resp, _ = http.Post(srv.URL+"/api/bank/cooling/schedule", "application/json", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("schedule without duration = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/api/bank/missing/schedule?after=1s", "application/json", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("schedule unknown routine = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	waitIdle(t, h)
}

func TestCloseCancelsTriggers(t *testing.T) {
	reg := testRegistry()
	h, err := New(Config{Model: visibility.EV, DefaultShort: time.Millisecond}, reg, device.NewFleet(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.StoreRoutine(coolingRoutine()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ScheduleEvery("cooling", 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	h.Close()
	if len(h.Triggers()) != 0 {
		t.Errorf("triggers after Close = %v, want none", h.Triggers())
	}
	if _, err := h.ScheduleAfter("cooling", time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("scheduling after Close = %v, want ErrClosed", err)
	}
	h.Close() // idempotent
}

package hub

import (
	"time"

	"safehome/internal/journal"
	rt "safehome/internal/runtime"
	"safehome/internal/telemetry"
)

// hubTelemetry owns the single-home hub's /metrics surface. The same family
// names as the manager's (NewLoopMetrics and the journal counters are
// shared), so dashboards work unchanged against either mode; the hub adds
// the per-device breaker families the simulated manager homes don't have.
type hubTelemetry struct {
	reg  *telemetry.Registry
	loop *rt.LoopMetrics
	// jstats outlives runtime generations: a supervised restart keeps
	// appending to the same journal totals.
	jstats       journal.Stats
	cycleBytes   *telemetry.Histogram
	cycleCommits *telemetry.Histogram
}

// newHubTelemetry registers the hub's families. Called once from New, before
// the group writer opens and before the first runtime generation is built.
func newHubTelemetry(h *Hub) *hubTelemetry {
	t := &hubTelemetry{reg: telemetry.NewRegistry()}
	t.loop = rt.NewLoopMetrics(t.reg)

	t.reg.CounterFunc("safehome_supervision_poisons_total", "Home loops torn down by a panic.", h.sup.Poisons)
	t.reg.CounterFunc("safehome_supervision_restarts_total", "Supervised restarts that came back clean.", h.sup.Restarts)

	t.reg.CounterFunc("safehome_mailbox_accepted_total", "Operations accepted into the home mailbox.", func() int64 {
		return h.cur.Load().Mailbox().Accepted
	})
	t.reg.CounterFunc("safehome_mailbox_rejected_total", "Operations shed (HTTP 429) by the full home mailbox.", func() int64 {
		return h.cur.Load().Mailbox().Rejected
	})
	t.reg.GaugeFunc("safehome_mailbox_depth", "Operations currently queued in the home mailbox.", func() float64 {
		return float64(h.cur.Load().Mailbox().Depth)
	})

	t.reg.CounterFunc("safehome_journal_appends_total", "Batch records appended to the write-ahead journal.", t.jstats.Appends.Load)
	t.reg.CounterFunc("safehome_journal_appended_bytes_total", "Framed bytes appended to the write-ahead journal.", t.jstats.AppendedBytes.Load)
	t.reg.CounterFunc("safehome_journal_fsyncs_total", "Journal data fsyncs: standalone syncs plus shared-writer cycles.", t.jstats.Fsyncs.Load)
	t.reg.CounterFunc("safehome_journal_checkpoints_total", "Checkpoint images durably published.", t.jstats.Checkpoints.Load)
	t.reg.GaugeFunc("safehome_journal_checkpoint_age_seconds", "Seconds since the most recent checkpoint (-1 until one lands).", func() float64 {
		return checkpointAge(&t.jstats)
	})

	t.cycleBytes = t.reg.Histogram("safehome_journal_group_cycle_bytes",
		"Bytes made durable per shared-writer fsync cycle.",
		telemetry.ExponentialBuckets(256, 4, 10))
	t.cycleCommits = t.reg.Histogram("safehome_journal_group_cycle_commits",
		"Commit tickets released per shared-writer fsync cycle.",
		telemetry.ExponentialBuckets(1, 2, 10))

	// Per-device breaker families: dynamic label sets, so a collector walks
	// the current runtime's breaker stats at scrape time (Env-lock read, no
	// mailbox involved).
	t.reg.Collect(func(e *telemetry.Emitter) {
		stats := h.cur.Load().Breakers()
		e.Family("safehome_breaker_opens_total", telemetry.TypeCounter, "Times a device's circuit breaker tripped open.")
		for _, b := range stats {
			e.Value(float64(b.Opens), "device", string(b.Device))
		}
		e.Family("safehome_breaker_half_opens_total", telemetry.TypeCounter, "Times an open breaker admitted a half-open probe.")
		for _, b := range stats {
			e.Value(float64(b.HalfOpens), "device", string(b.Device))
		}
		e.Family("safehome_breaker_short_circuits_total", telemetry.TypeCounter, "Commands failed fast on an open breaker, per device.")
		for _, b := range stats {
			e.Value(float64(b.ShortCircuits), "device", string(b.Device))
		}
		e.Family("safehome_breaker_open", telemetry.TypeGauge, "1 when the device's breaker is open or half-open, 0 when closed.")
		for _, b := range stats {
			v := 0.0
			if b.State != "closed" {
				v = 1
			}
			e.Value(v, "device", string(b.Device))
		}
	})
	return t
}

// checkpointAge derives the checkpoint-age gauge from a journal.Stats
// timestamp; -1 means no checkpoint has landed yet.
func checkpointAge(s *journal.Stats) float64 {
	last := s.LastCheckpointUnixNano.Load()
	if last == 0 {
		return -1
	}
	return time.Since(time.Unix(0, last)).Seconds()
}

// Telemetry returns the hub's metrics registry — the handler behind
// `GET /metrics` in single-home mode.
func (h *Hub) Telemetry() *telemetry.Registry { return h.tel.reg }
